(* Cross-engine differential fuzzer with greedy counterexample
   shrinking. See fuzz.mli for the contract. *)

module Protocol = Stateless_core.Protocol
module Schedule = Stateless_core.Schedule
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Batch = Stateless_core.Batch
module Eventsim = Stateless_core.Eventsim
module Proptest = Stateless_core.Proptest
module Digraph = Stateless_graph.Digraph
module Checker = Stateless_checker.Checker
module Value = Stateless_campaign.Value
module Netlab = Stateless_netlab.Netlab
module Byzlab = Stateless_byzlab.Byzlab

type sched_kind = Sync | Rr | Fair of int
type mutant = Stale_read | Dropped_write

type scenario = {
  seed : int;
  nodes : int;
  extra : int;
  card : int;
  steps : int;
  sched : sched_kind;
  loss : float;
  dup : float;
  budget_k : int;
  byz : int;
}

type divergence = {
  scenario : scenario;
  pair : string * string;
  step : int;
  detail : string;
}

let mutant_name = function
  | Stale_read -> "stale_read"
  | Dropped_write -> "dropped_write"

let mutant_of_name = function
  | "stale_read" -> Some Stale_read
  | "dropped_write" -> Some Dropped_write
  | _ -> None

let sched_name = function
  | Sync -> "sync"
  | Rr -> "rr"
  | Fair k -> Printf.sprintf "fair:%d" k

let sched_of_name s =
  match s with
  | "sync" -> Some Sync
  | "rr" -> Some Rr
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "fair" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some k -> Some (Fair k)
          | None -> None)
      | _ -> None)

(* The structural weight the shrinker minimizes. Every candidate move
   strictly decreases it, so shrinking terminates. *)
let size s =
  s.nodes + s.extra + s.card + s.steps + s.budget_k + s.byz
  + (if s.loss > 0.0 then 1 else 0)
  + (if s.dup > 0.0 then 1 else 0)
  + (match s.sched with Sync -> 0 | Rr -> 1 | Fair _ -> 2)

(* ------------------------------------------------------------------ *)
(* Building a scenario's world                                         *)
(* ------------------------------------------------------------------ *)

let build s =
  let p, input =
    Proptest.protocol_of ~seed:s.seed ~nodes:s.nodes ~extra:s.extra
      ~card:s.card ()
  in
  let st = Random.State.make [| 0x1417; s.seed |] in
  let init = Proptest.random_config p st in
  let schedule =
    match s.sched with
    | Sync -> Schedule.synchronous s.nodes
    | Rr -> Schedule.round_robin s.nodes
    | Fair k -> Schedule.random_fair ~seed:(s.seed + k) ~r:2 s.nodes
  in
  (p, input, init, schedule)

let digest p (c : _ Protocol.config) =
  Protocol.config_key p c
  ^ "/"
  ^ String.concat "," (Array.to_list (Array.map string_of_int c.outputs))

(* ------------------------------------------------------------------ *)
(* Trajectories: one digest per step, per engine                       *)
(* ------------------------------------------------------------------ *)

let traj_engine p ~input ~init ~schedule ~steps =
  Array.of_list
    (List.map (digest p) (Engine.trace p ~input ~init ~schedule ~steps))

let traj_kernel p ~input ~init ~schedule ~steps =
  let kern = Kernel.create p ~input in
  let out = Array.make (steps + 1) "" in
  let c = ref init in
  out.(0) <- digest p init;
  for t = 0 to steps - 1 do
    c := Kernel.step kern !c ~active:(schedule.Schedule.active t);
    out.(t + 1) <- digest p !c
  done;
  out

let traj_batch p ~input ~init ~schedule ~steps =
  let kern = Kernel.create p ~input in
  let b = Batch.create kern in
  Batch.load_block b [| init |];
  let out = Array.make (steps + 1) "" in
  out.(0) <- digest p init;
  for t = 0 to steps - 1 do
    Batch.step b ~active:(schedule.Schedule.active t);
    out.(t + 1) <- digest p (Batch.store b ~j:0)
  done;
  out

let traj_eventsim p ~input ~init ~steps =
  (* Synchronous anchor mode: horizon [t] is exactly [t] lock-step
     rounds, and the resumable clock lets us sample every step. *)
  let sim = Eventsim.create ~sync:true ~seed:1 p ~input ~init in
  let out = Array.make (steps + 1) "" in
  out.(0) <- digest p init;
  for t = 1 to steps do
    ignore (Eventsim.run sim ~horizon:(float_of_int t));
    out.(t) <- digest p (Eventsim.config sim)
  done;
  out

(* The deliberately broken steppers used to validate the fuzzer. Both
   are classic engine bugs:
   - [Stale_read] serializes the activation set: later nodes react to
     configurations already updated by earlier nodes this step, instead
     of to the common previous configuration.
   - [Dropped_write] loses node 0's first out-edge write (the old label
     survives) whenever node 0 is scheduled. *)
let mutant_step mutant p ~input c ~active =
  match mutant with
  | Stale_read ->
      List.fold_left
        (fun acc i -> Engine.step p ~input acc ~active:[ i ])
        c active
  | Dropped_write ->
      let c' = Engine.step p ~input c ~active in
      (if List.mem 0 active then
         let oe = Digraph.out_edges p.Protocol.graph 0 in
         if Array.length oe > 0 then
           c'.Protocol.labels.(oe.(0)) <- c.Protocol.labels.(oe.(0)));
      c'

let traj_mutant mutant p ~input ~init ~schedule ~steps =
  let out = Array.make (steps + 1) "" in
  out.(0) <- digest p init;
  let c = ref init in
  for t = 0 to steps - 1 do
    c := mutant_step mutant p ~input !c ~active:(schedule.Schedule.active t);
    out.(t + 1) <- digest p !c
  done;
  out

let first_diff a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then None
    else if String.equal a.(i) b.(i) then go (i + 1)
    else Some i
  in
  go 0

(* ------------------------------------------------------------------ *)
(* The differential pairs                                              *)
(* ------------------------------------------------------------------ *)

(* Runs every applicable pair for [s]; returns the pair count and the
   first divergence. The boxed engine is the reference for the core
   group; the channel and Byzantine layers compare their boxed/packed
   twins; small labeling spaces compare the production checker against
   the naive oracle. *)
let check_counted ?mutant (s : scenario) : int * divergence option =
  let p, input, init, schedule = build s in
  let steps = s.steps in
  let pairs = ref 0 in
  let found = ref None in
  let core_pair name traj =
    if !found = None then begin
      incr pairs;
      let reference = traj_engine p ~input ~init ~schedule ~steps in
      match first_diff reference (traj ()) with
      | Some t ->
          found :=
            Some
              {
                scenario = s;
                pair = ("engine", name);
                step = t;
                detail = Printf.sprintf "configs differ from step %d" t;
              }
      | None -> ()
    end
  in
  core_pair "kernel" (fun () -> traj_kernel p ~input ~init ~schedule ~steps);
  core_pair "batch" (fun () -> traj_batch p ~input ~init ~schedule ~steps);
  if s.sched = Sync then
    core_pair "eventsim" (fun () -> traj_eventsim p ~input ~init ~steps);
  (match mutant with
  | Some m ->
      core_pair
        ("mutant:" ^ mutant_name m)
        (fun () -> traj_mutant m p ~input ~init ~schedule ~steps)
  | None -> ());
  (* Channel twins under the scenario's fault budget. *)
  if !found = None then begin
    incr pairs;
    let rates = Netlab.rates ~loss:s.loss ~dup:s.dup () in
    let budget = { Netlab.k = s.budget_k; window = 4 } in
    let boxed =
      Netlab.Boxed.create p ~input ~rates ~budget ~schedule ~seed:s.seed ~init
    in
    let packed =
      Netlab.Packed.create p ~input ~rates ~budget ~schedule ~seed:s.seed
        ~init
    in
    (try
       for t = 1 to steps do
         Netlab.Boxed.step boxed;
         Netlab.Packed.step packed;
         if
           not
             (Proptest.config_eq p
                (Netlab.Boxed.config boxed)
                (Netlab.Packed.config packed))
         then begin
           found :=
             Some
               {
                 scenario = s;
                 pair = ("netlab-boxed", "netlab-packed");
                 step = t;
                 detail = "channel twins diverged";
               };
           raise Exit
         end
       done;
       if
         Netlab.Boxed.faults_injected boxed
         <> Netlab.Packed.faults_injected packed
       then
         found :=
           Some
             {
               scenario = s;
               pair = ("netlab-boxed", "netlab-packed");
               step = steps;
               detail = "fault counts differ";
             }
     with Exit -> ())
  end;
  (* Byzantine twins when the scenario places adversaries. *)
  if !found = None && s.byz > 0 then begin
    incr pairs;
    let byz = List.init (min s.byz s.nodes) Fun.id in
    let boxed =
      Byzlab.Boxed.create p ~input ~byz ~strategy:Byzlab.Seeded_random
        ~schedule ~seed:s.seed ~init
    in
    let packed =
      Byzlab.Packed.create p ~input ~byz ~strategy:Byzlab.Seeded_random
        ~schedule ~seed:s.seed ~init
    in
    Byzlab.Boxed.run boxed ~steps;
    Byzlab.Packed.run packed ~steps;
    if
      (not
         (Proptest.config_eq p
            (Byzlab.Boxed.config boxed)
            (Byzlab.Packed.config packed)))
      || Byzlab.Boxed.writes_done boxed <> Byzlab.Packed.writes_done packed
    then
      found :=
        Some
          {
            scenario = s;
            pair = ("byz-boxed", "byz-packed");
            step = steps;
            detail = "byzantine twins diverged";
          }
  end;
  (* Checker against the naive oracle, gated to small labeling spaces. *)
  (if !found = None then
     match Protocol.labelings_count p with
     | Some n when n <= 2048 ->
         incr pairs;
         let kind = function
           | Checker.Stabilizing -> "stabilizing"
           | Checker.Oscillating _ -> "oscillating"
           | Checker.Too_large _ -> "too_large"
         in
         let fast = Checker.check_label p ~input ~r:1 ~max_states:20000 in
         let naive =
           Checker.Naive.check_label p ~input ~r:1 ~max_states:20000
         in
         if kind fast <> kind naive then
           found :=
             Some
               {
                 scenario = s;
                 pair = ("checker", "naive");
                 step = 0;
                 detail =
                   Printf.sprintf "verdicts differ: %s vs %s" (kind fast)
                     (kind naive);
               }
     | Some _ | None -> ());
  (!pairs, !found)

let check ?mutant s = snd (check_counted ?mutant s)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* One-step reductions along the shrink lattice: truncate the schedule,
   drop nodes and extra edges, shrink the label alphabet, zero the
   fault budgets, drop Byzantine nodes, simplify the schedule. Every
   candidate has strictly smaller {!size}. *)
let candidates s =
  let clamp_byz s = { s with byz = min s.byz s.nodes } in
  List.concat
    [
      (if s.steps > 1 then
         [ { s with steps = s.steps / 2 }; { s with steps = s.steps - 1 } ]
       else []);
      (if s.nodes > 2 then [ clamp_byz { s with nodes = s.nodes - 1 } ]
       else []);
      (if s.extra > 0 then
         [ { s with extra = 0 }; { s with extra = s.extra - 1 } ]
       else []);
      (if s.card > 2 then [ { s with card = s.card - 1 } ] else []);
      (if s.loss > 0.0 then [ { s with loss = 0.0 } ] else []);
      (if s.dup > 0.0 then [ { s with dup = 0.0 } ] else []);
      (if s.budget_k > 0 then [ { s with budget_k = 0 } ] else []);
      (if s.byz > 0 then [ { s with byz = s.byz - 1 } ] else []);
      (match s.sched with
      | Fair _ -> [ { s with sched = Sync }; { s with sched = Rr } ]
      | Rr -> [ { s with sched = Sync } ]
      | Sync -> []);
    ]

(* Greedy first-improvement descent: adopt any candidate that still
   diverges (possibly on a different pair — any divergence is a bug)
   and restart from it. [max_checks] bounds the predicate calls, so a
   pathological lattice cannot stall a CI run. *)
let shrink ?mutant ?(max_checks = 400) (d : divergence) =
  let checks = ref 0 in
  let rec descend d =
    let next =
      List.find_map
        (fun s' ->
          if !checks >= max_checks then None
          else begin
            incr checks;
            check ?mutant s'
          end)
        (candidates d.scenario)
    in
    match next with Some d' -> descend d' | None -> d
  in
  descend d

let shrink_ratio ~original ~shrunk =
  let a = size original.scenario and b = size shrunk.scenario in
  if a = 0 then 1.0 else float_of_int b /. float_of_int a

(* ------------------------------------------------------------------ *)
(* Witness serialization and replay                                    *)
(* ------------------------------------------------------------------ *)

let scenario_to_value s =
  Value.Obj
    [
      ("seed", Value.Int s.seed);
      ("nodes", Value.Int s.nodes);
      ("extra", Value.Int s.extra);
      ("card", Value.Int s.card);
      ("steps", Value.Int s.steps);
      ("sched", Value.String (sched_name s.sched));
      ("loss", Value.Float s.loss);
      ("dup", Value.Float s.dup);
      ("budget_k", Value.Int s.budget_k);
      ("byz", Value.Int s.byz);
    ]

let scenario_of_value v =
  let int k = Option.bind (Value.member k v) Value.to_int in
  let flt k =
    Option.bind (Value.member k v) (function
      | Value.Float f -> Some f
      | Value.Int n -> Some (float_of_int n)
      | _ -> None)
  in
  let str k =
    Option.bind (Value.member k v) (function
      | Value.String s -> Some s
      | _ -> None)
  in
  match
    ( int "seed",
      int "nodes",
      int "extra",
      int "card",
      int "steps",
      Option.bind (str "sched") sched_of_name,
      flt "loss",
      flt "dup",
      int "budget_k",
      int "byz" )
  with
  | ( Some seed,
      Some nodes,
      Some extra,
      Some card,
      Some steps,
      Some sched,
      Some loss,
      Some dup,
      Some budget_k,
      Some byz ) ->
      Some { seed; nodes; extra; card; steps; sched; loss; dup; budget_k; byz }
  | _ -> None

let witness_to_value ?mutant (d : divergence) =
  Value.Obj
    [
      ("scenario", scenario_to_value d.scenario);
      ( "mutant",
        match mutant with
        | Some m -> Value.String (mutant_name m)
        | None -> Value.Null );
      ( "pair",
        Value.List [ Value.String (fst d.pair); Value.String (snd d.pair) ] );
      ("step", Value.Int d.step);
      ("detail", Value.String d.detail);
    ]

(* Replaying a witness re-runs the full differential check on its
   scenario (under its recorded mutant, if any): the divergence must
   reproduce from the serialized record alone. *)
let replay v =
  match Option.bind (Value.member "scenario" v) scenario_of_value with
  | None -> Error "witness: bad or missing scenario"
  | Some s ->
      let mutant =
        match Value.member "mutant" v with
        | Some (Value.String m) -> mutant_of_name m
        | _ -> None
      in
      Ok (check ?mutant s)

(* ------------------------------------------------------------------ *)
(* The fuzz loop                                                       *)
(* ------------------------------------------------------------------ *)

let gen ~seed i =
  let st = Random.State.make [| 0xf0a2; seed; i |] in
  let nodes = 2 + Random.State.int st 3 in
  let extra = Random.State.int st 3 in
  let card = 2 + Random.State.int st 3 in
  let steps = 1 + Random.State.int st 24 in
  let sched =
    match Random.State.int st 3 with
    | 0 -> Sync
    | 1 -> Rr
    | _ -> Fair (1 + Random.State.int st 997)
  in
  let loss =
    if Random.State.bool st then 0.0 else Random.State.float st 0.4
  in
  let dup = if Random.State.bool st then 0.0 else Random.State.float st 0.3 in
  let budget_k = Random.State.int st 4 in
  let byz = Random.State.int st (min 3 nodes) in
  {
    seed = (seed * 1_000_003) + i;
    nodes;
    extra;
    card;
    steps;
    sched;
    loss;
    dup;
    budget_k;
    byz;
  }

type found = { original : divergence; shrunk : divergence }

type report = {
  seed : int;
  budget : int;
  tried : int;
  comparisons : int;
  found : found list;
  mean_shrink_ratio : float;  (** 1.0 when nothing diverged *)
}

let run ?mutant ?(shrink_found = true) ~seed ~budget () =
  let comparisons = ref 0 in
  let found = ref [] in
  for i = 0 to budget - 1 do
    let s = gen ~seed i in
    let pairs, d = check_counted ?mutant s in
    comparisons := !comparisons + pairs;
    match d with
    | None -> ()
    | Some d ->
        let shrunk = if shrink_found then shrink ?mutant d else d in
        found := { original = d; shrunk } :: !found
  done;
  let found = List.rev !found in
  let mean_shrink_ratio =
    match found with
    | [] -> 1.0
    | l ->
        List.fold_left
          (fun acc f ->
            acc +. shrink_ratio ~original:f.original ~shrunk:f.shrunk)
          0.0 l
        /. float_of_int (List.length l)
  in
  {
    seed;
    budget;
    tried = budget;
    comparisons = !comparisons;
    found;
    mean_shrink_ratio;
  }
