(** Storm campaigns: the orchestrator's crash-tolerance invariants under
    seeded fault-injection storms.

    The CI kill-and-resume smoke proves resume identity for {e one}
    scripted SIGKILL. This module universally quantifies that check:
    {!run_storms} arms a {!Stateless_core.Chaos} plan derived from a
    seed — worker crashes and stalls in the domain pool, torn/duplicated/
    dropped journal appends, short journal reads, clock jumps — and runs
    each lab's campaign matrix through several storm rounds, resuming
    after every simulated death. After the storm it disarms the plan and
    performs one clean resume; the merged outcome must be {b identical}
    (same keys, statuses and encoded results) to an uninterrupted
    reference run computed before the storm. Graceful degradation is
    observed on the way: rounds may retire cells as [Timeout]/[Error]
    (counted in [degraded]) and whole rounds may die mid-flight (counted
    in [crashes]) without ever corrupting the final merge.

    All four lab codecs (faults, netlab, byz, sim) ride through the same
    driver, so every journal decoder is exercised against torn, short,
    duplicated and interleaved records. *)

type leg_report = {
  leg : string;
  rounds : int;  (** storm rounds attempted *)
  crashes : int;  (** rounds killed mid-flight by an injected crash *)
  degraded : int;  (** non-[Ok] records observed across surviving rounds *)
  injections : (string * int) list;  (** {!Stateless_core.Chaos.tally} *)
  identical : bool;  (** clean resume merged bit-identical to reference *)
}

(** Total injections in a report's tally. *)
val injected : (string * int) list -> int

(** One lab matrix (cells + codec) behind an existential, so the storm
    driver runs every codec through the same machinery. [cells] must
    rebuild the matrix on every call (cell closures own per-domain
    measurement contexts). *)
type leg =
  | Leg : {
      name : string;
      codec : 'r Stateless_campaign.Campaign.codec;
      cells : unit -> 'r Stateless_campaign.Campaign.cell array;
    }
      -> leg

(** Small instances of all four labs — the default storm targets. *)
val default_legs : unit -> leg list

(** The storm plan for a seed: every site armed with [Prob] rules whose
    probabilities and parameters are drawn from the seed. *)
val storm_rules : seed:int -> Stateless_core.Chaos.rule list

(** [run_leg ~seed leg] storms one leg: reference run, [rounds] (default
    4) journaled rounds under the armed plan (resuming after each
    crash), then a clean resume compared against the reference.
    [domains] defaults to 2 so the pool site actually fires. The plan is
    always disarmed on exit, even if the leg raises. *)
val run_leg : ?domains:int -> ?rounds:int -> seed:int -> leg -> leg_report

(** {!run_leg} over [legs] (default {!default_legs}), with per-leg seeds
    derived from [seed]. *)
val run_storms :
  ?domains:int ->
  ?rounds:int ->
  ?legs:leg list ->
  seed:int ->
  unit ->
  leg_report list

(** Report as a {!Stateless_campaign.Value} record (for the CLI and the
    chaos bench JSON). *)
val report_to_value : leg_report -> Stateless_campaign.Value.t
