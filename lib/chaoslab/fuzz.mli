(** Cross-engine differential fuzzer with automatic counterexample
    shrinking.

    A {!scenario} is a random protocol × topology × schedule ×
    fault/Byzantine configuration, generated from a seed through
    {!Stateless_core.Proptest.protocol_of}. {!check} runs it through
    every applicable differential pair:

    - boxed {!Stateless_core.Engine} (the reference) against the packed
      {!Stateless_core.Kernel}, the batched SoA {!Stateless_core.Batch},
      and — on synchronous schedules — {!Stateless_core.Eventsim} in its
      synchronous anchor mode;
    - the channel twins [Netlab.Boxed]/[Netlab.Packed] under the
      scenario's loss/duplication rates and adversary budget;
    - the Byzantine twins [Byzlab.Boxed]/[Byzlab.Packed] when the
      scenario places adversaries;
    - the production checker against the naive oracle ([r = 1]) when
      the labeling space is small enough to enumerate.

    Any divergence is greedily shrunk along a lattice of reductions
    (truncate the schedule, drop nodes and extra edges, shrink the label
    alphabet, zero the fault budgets, drop Byzantine nodes, simplify the
    schedule) to a locally minimal witness, serialized as a replayable
    {!Stateless_campaign.Value} record.

    To validate the fuzzer itself, {!check} can run a deliberately
    broken stepper ({!mutant}) alongside the real engines: the fuzzer
    must find and shrink the planted bug.

    Everything is a pure function of the scenario (and thus of the run
    seed): a witness replays bit-identically on any machine. *)

type sched_kind = Sync | Rr | Fair of int

(** Planted engine bugs: [Stale_read] serializes the activation set so
    later nodes react to already-updated state; [Dropped_write] loses
    node 0's first out-edge write whenever node 0 is scheduled. *)
type mutant = Stale_read | Dropped_write

type scenario = {
  seed : int;  (** protocol / init / fault-stream seed *)
  nodes : int;
  extra : int;  (** extra edges beyond the strongly-connected base *)
  card : int;  (** label alphabet size *)
  steps : int;  (** schedule length *)
  sched : sched_kind;
  loss : float;  (** channel loss rate (netlab pair) *)
  dup : float;  (** channel duplication rate (netlab pair) *)
  budget_k : int;  (** adversary fault budget per window (netlab pair) *)
  byz : int;  (** Byzantine node count (byzlab pair) *)
}

type divergence = {
  scenario : scenario;
  pair : string * string;  (** the two runners that disagreed *)
  step : int;  (** first diverging step (0 for verdict pairs) *)
  detail : string;
}

val mutant_name : mutant -> string
val mutant_of_name : string -> mutant option
val sched_name : sched_kind -> string
val sched_of_name : string -> sched_kind option

(** The structural weight the shrinker minimizes (strictly decreasing
    along every candidate move, so shrinking terminates). *)
val size : scenario -> int

(** Run every applicable differential pair; [None] means all engines
    agreed. [mutant] adds the planted-bug stepper to the core group. *)
val check : ?mutant:mutant -> scenario -> divergence option

(** Greedy first-improvement descent along the shrink lattice: adopts
    any strictly smaller scenario that still diverges (possibly on a
    different pair) and restarts from it. [max_checks] (default 400)
    bounds the total predicate calls. *)
val shrink : ?mutant:mutant -> ?max_checks:int -> divergence -> divergence

(** [size shrunk / size original]. *)
val shrink_ratio : original:divergence -> shrunk:divergence -> float

val scenario_to_value : scenario -> Stateless_campaign.Value.t
val scenario_of_value : Stateless_campaign.Value.t -> scenario option

(** The replayable witness record: scenario, the mutant it was found
    under (if any), the diverging pair, step and detail. *)
val witness_to_value :
  ?mutant:mutant -> divergence -> Stateless_campaign.Value.t

(** Re-run {!check} on a serialized witness's scenario (under its
    recorded mutant): [Ok (Some _)] means the divergence reproduces,
    [Ok None] that it no longer does, [Error _] that the record is not
    a witness. *)
val replay :
  Stateless_campaign.Value.t -> (divergence option, string) result

(** The [i]-th scenario of a fuzz run — deterministic in [(seed, i)]. *)
val gen : seed:int -> int -> scenario

type found = { original : divergence; shrunk : divergence }

type report = {
  seed : int;
  budget : int;
  tried : int;
  comparisons : int;  (** differential pairs executed *)
  found : found list;
  mean_shrink_ratio : float;  (** 1.0 when nothing diverged *)
}

(** [run ~seed ~budget ()] checks [budget] generated scenarios,
    shrinking every divergence (disable with [~shrink_found:false]). *)
val run :
  ?mutant:mutant ->
  ?shrink_found:bool ->
  seed:int ->
  budget:int ->
  unit ->
  report
