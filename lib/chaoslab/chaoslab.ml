(* Storm campaigns: run every lab's matrix under a seeded injection
   storm and prove the orchestrator's invariants survived. See
   chaoslab.mli for the contract. *)

module Chaos = Stateless_core.Chaos
module Eventsim = Stateless_core.Eventsim
module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value
module Faultlab = Stateless_faultlab.Faultlab
module Netlab = Stateless_netlab.Netlab
module Byzlab = Stateless_byzlab.Byzlab
module Simlab = Stateless_simlab.Simlab

type leg_report = {
  leg : string;
  rounds : int;
  crashes : int;
  degraded : int;
  injections : (string * int) list;
  identical : bool;
}

let injected t = List.fold_left (fun a (_, n) -> a + n) 0 t

(* A leg packages one lab's matrix with its codec behind an existential,
   so the storm driver is written once and exercises all four journal
   codecs. [cells] rebuilds the matrix per run — cell closures carry
   per-domain measurement contexts that must not leak across runs. *)
type leg =
  | Leg : {
      name : string;
      codec : 'r Campaign.codec;
      cells : unit -> 'r Campaign.cell array;
    }
      -> leg

(* Identity is over what the campaign computed, not how: key, status and
   encoded result — never [attempts] or [replayed], which legitimately
   differ between a stormed-and-resumed run and an uninterrupted one. *)
let digest (type r) (codec : r Campaign.codec) (o : r Campaign.outcome) =
  let b = Buffer.create 256 in
  Array.iter
    (fun (rc : r Campaign.record) ->
      Buffer.add_string b rc.key;
      Buffer.add_char b '=';
      (match rc.status with
      | Campaign.Ok -> Buffer.add_string b "ok:"
      | Campaign.Timeout -> Buffer.add_string b "timeout:"
      | Campaign.Error m ->
          Buffer.add_string b "error(";
          Buffer.add_string b m;
          Buffer.add_string b "):");
      (match rc.result with
      | Some r -> Buffer.add_string b (Value.to_string (codec.encode r))
      | None -> Buffer.add_string b "-");
      Buffer.add_char b '\n')
    o.records;
  Buffer.contents b

let default_legs () =
  [
    Leg
      {
        name = "faults";
        codec = Faultlab.codec;
        cells =
          (fun () ->
            Faultlab.cells ~fractions:[ 0.25; 0.75 ] ~seeds:3 ~max_steps:2000
              (Faultlab.example1 ~n:4 ()));
      };
    Leg
      {
        name = "netlab";
        codec = Netlab.codec;
        cells =
          (fun () ->
            let levels =
              match Netlab.default_levels with
              | a :: b :: _ -> [ a; b ]
              | l -> l
            in
            Netlab.cells ~levels ~seeds:2 ~storm:100 ~max_steps:2000
              ~budget:{ Netlab.k = 2; window = 4 }
              (Netlab.example1 ~n:4 ()));
      };
    Leg
      {
        name = "byz";
        codec = Byzlab.codec;
        cells =
          (fun () ->
            Byzlab.cells
              ~placements:[ []; [ 0 ] ]
              ~seeds:2 ~max_steps:1000 ~strategy:Byzlab.Seeded_random
              (Byzlab.example1 ~n:4 ()));
      };
    Leg
      {
        name = "sim";
        codec = Simlab.codec;
        cells =
          (fun () ->
            let inst =
              Simlab.build
                (Simlab.Contagion { threshold = 0.5; seed_frac = 0.3 })
                Simlab.Ring ~graph_seed:1 ~nodes:64 ~rate:1.0
                ~latency:(Eventsim.Exp 1.0) ~faults:Eventsim.no_faults
            in
            Simlab.cells inst ~seed0:1 ~runs:4 ~horizon:6.0);
      };
  ]

let storm_rules ~seed =
  let st = Random.State.make [| 0xc4a05; seed |] in
  let p hi = Random.State.float st hi in
  [
    (* Two scripted injections so every storm is a storm even on a tiny
       matrix: the second journal append is duplicated, the first
       journal load comes back short. The [Prob] rules supply the
       seed-dependent variability on top. *)
    {
      Chaos.site = Chaos.Journal_write;
      trigger = Chaos.At [ 1 ];
      action = Chaos.Duplicate;
    };
    {
      Chaos.site = Chaos.Journal_read;
      trigger = Chaos.At [ 0 ];
      action = Chaos.Short_read (1 + Random.State.int st 40);
    };
    { Chaos.site = Chaos.Pool_chunk; trigger = Chaos.Prob (p 0.12); action = Chaos.Crash };
    {
      Chaos.site = Chaos.Pool_chunk;
      trigger = Chaos.Prob (p 0.1);
      action = Chaos.Stall (0.0005 +. p 0.002);
    };
    {
      Chaos.site = Chaos.Journal_write;
      trigger = Chaos.Prob (p 0.12);
      action = Chaos.Torn (1 + Random.State.int st 48);
    };
    { Chaos.site = Chaos.Journal_write; trigger = Chaos.Prob (p 0.1); action = Chaos.Enospc };
    {
      Chaos.site = Chaos.Journal_write;
      trigger = Chaos.Prob (p 0.1);
      action = Chaos.Duplicate;
    };
    { Chaos.site = Chaos.Journal_write; trigger = Chaos.Prob (p 0.06); action = Chaos.Crash };
    {
      Chaos.site = Chaos.Journal_read;
      trigger = Chaos.Prob (p 0.35);
      action = Chaos.Short_read (1 + Random.State.int st 80);
    };
    {
      Chaos.site = Chaos.Clock_read;
      trigger = Chaos.Prob (p 0.02);
      action = Chaos.Jump (if Random.State.bool st then -2.5 else p 40.0);
    };
  ]

let run_leg ?(domains = 2) ?(rounds = 4) ~seed (Leg { name; codec; cells }) =
  (* Reference first, before any plan is armed: the uninterrupted run the
     stormed campaign must merge back to. *)
  let reference = Campaign.run ~domains ~codec (cells ()) in
  let ref_digest = digest codec reference in
  let path = Filename.temp_file "chaoslab" ".jsonl" in
  let crashes = ref 0 and degraded = ref 0 in
  Chaos.arm ~seed (storm_rules ~seed);
  Fun.protect ~finally:Chaos.disarm (fun () ->
      for round = 0 to rounds - 1 do
        let policy =
          {
            Campaign.journal = Some path;
            resume = round > 0 || !crashes > 0;
            cell_deadline = Some 20.0;
            retries = 1;
          }
        in
        match Campaign.run ~domains ~policy ~codec (cells ()) with
        | o ->
            Array.iter
              (fun (rc : _ Campaign.record) ->
                match rc.status with
                | Campaign.Ok -> ()
                | Campaign.Timeout | Campaign.Error _ -> incr degraded)
              o.records
        | exception Chaos.Injected _ -> incr crashes
      done);
  let injections = Chaos.tally () in
  (* The storm is over; one clean resume from whatever the journal holds
     must reconstruct the reference bit-exactly. *)
  let final =
    Campaign.run ~domains
      ~policy:
        {
          Campaign.journal = Some path;
          resume = true;
          cell_deadline = None;
          retries = 0;
        }
      ~codec (cells ())
  in
  let identical = String.equal (digest codec final) ref_digest in
  (try Sys.remove path with Sys_error _ -> ());
  {
    leg = name;
    rounds;
    crashes = !crashes;
    degraded = !degraded;
    injections;
    identical;
  }

let run_storms ?domains ?rounds ?(legs = default_legs ()) ~seed () =
  List.mapi
    (fun i leg -> run_leg ?domains ?rounds ~seed:((seed * 31) + i) leg)
    legs

let report_to_value r =
  Value.Obj
    [
      ("leg", Value.String r.leg);
      ("rounds", Value.Int r.rounds);
      ("crashes", Value.Int r.crashes);
      ("degraded", Value.Int r.degraded);
      ("injections", Value.Int (injected r.injections));
      ( "tally",
        Value.Obj (List.map (fun (k, n) -> (k, Value.Int n)) r.injections) );
      ("identical", Value.Bool r.identical);
    ]
