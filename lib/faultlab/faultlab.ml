module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Fault = Stateless_core.Fault
module Clique_example = Stateless_core.Clique_example
module D_counter = Stateless_counter.D_counter
module Feedback = Stateless_games.Feedback

type scenario = {
  name : string;
  schedule_name : string;
  recover : fraction:float -> seed:int -> max_steps:int -> int option;
}

type fraction_stats = {
  fraction : float;
  runs : int;
  recovered : int;
  mean : float;
  p50 : int;
  p95 : int;
  worst : int;
}

type campaign = {
  scenario_name : string;
  schedule : string;
  runs_per_fraction : int;
  stats : fraction_stats list;
}

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let example1 ?(n = 4) () =
  let n = max 3 n in
  let p = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init p in
  let schedule = Schedule.synchronous n in
  {
    name = Printf.sprintf "example1_k%d" n;
    schedule_name = schedule.Schedule.name;
    recover =
      (fun ~fraction ~seed ~max_steps ->
        Option.map snd
          (Fault.recovery_time p ~input ~init ~schedule ~seed ~fraction
             ~max_steps));
  }

(* The D-counter's outputs tick forever, so recovery is re-locking: the
   first step from which [agreed] holds for [d] consecutive synchronous
   steps after the steady (burned-in) configuration is corrupted. *)
let d_counter ?(n = 5) ?(d = 8) () =
  let t = D_counter.make ~n ~d () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let schedule = Schedule.synchronous n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p (p.Protocol.space.Label.decode 0))
      ~schedule ~steps:(D_counter.burn_in t)
  in
  let window = d in
  let everyone = List.init n Fun.id in
  {
    name = Printf.sprintf "d_counter_n%d_d%d" n d;
    schedule_name = schedule.Schedule.name;
    recover =
      (fun ~fraction ~seed ~max_steps ->
        let damaged = Fault.corrupt p ~seed ~fraction steady in
        let config = ref damaged in
        let run_len = ref 0 in
        let found = ref None in
        let s = ref 0 in
        while !found = None && !s <= max_steps do
          if D_counter.agreed t !config then begin
            incr run_len;
            if !run_len >= window then found := Some (!s - window + 1)
          end
          else run_len := 0;
          config := Engine.step p ~input !config ~active:everyone;
          incr s
        done;
        !found);
  }

(* The ring oscillator never output-stabilizes by design; recovery is the
   time until the corrupted run provably re-enters a periodic orbit (the
   [entered] bound of the engine's oscillation verdict) under round-robin,
   whose periodicity makes the verdict exact. *)
let ring_oscillator ?(n = 5) () =
  let n = if n mod 2 = 0 then n + 1 else max 3 n in
  let p = Feedback.ring_oscillator n in
  let input = Array.make n () in
  let schedule = Schedule.round_robin n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p false)
      ~schedule ~steps:(4 * n)
  in
  {
    name = Printf.sprintf "ring_oscillator_%d" n;
    schedule_name = schedule.Schedule.name;
    recover =
      (fun ~fraction ~seed ~max_steps ->
        let damaged = Fault.corrupt p ~seed ~fraction steady in
        match
          Engine.run_until_stable p ~input ~init:damaged ~schedule ~max_steps
        with
        | Engine.Oscillating { entered; _ } -> Some entered
        | Engine.Stabilized { rounds; _ } -> Some rounds
        | Engine.Exhausted _ -> None);
  }

let default_scenarios () = [ example1 (); d_counter (); ring_oscillator () ]

let scenario_names = [ "example1"; "counter"; "oscillator" ]

let scenario_by_name ?n name =
  match name with
  | "example1" -> Some (example1 ?n ())
  | "counter" -> Some (d_counter ?n ())
  | "oscillator" -> Some (ring_oscillator ?n ())
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Campaign runner                                                     *)
(* ------------------------------------------------------------------ *)

let default_fractions = [ 0.1; 0.25; 0.5; 0.75; 1.0 ]

(* Nearest-rank percentile over the sorted recovery times. *)
let percentile sorted q =
  let k = Array.length sorted in
  if k = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float k)) - 1 in
    sorted.(max 0 (min (k - 1) rank))

let run ?(fractions = default_fractions) ?(seeds = 30) ?(max_steps = 10_000)
    sc =
  let stats =
    List.map
      (fun fraction ->
        let times = ref [] and recovered = ref 0 in
        for seed = 1 to seeds do
          match sc.recover ~fraction ~seed ~max_steps with
          | Some t ->
              incr recovered;
              times := t :: !times
          | None -> ()
        done;
        let arr = Array.of_list !times in
        Array.sort compare arr;
        let k = Array.length arr in
        let mean =
          if k = 0 then 0.
          else float (Array.fold_left ( + ) 0 arr) /. float k
        in
        {
          fraction;
          runs = seeds;
          recovered = !recovered;
          mean;
          p50 = percentile arr 0.5;
          p95 = percentile arr 0.95;
          worst = (if k = 0 then 0 else arr.(k - 1));
        })
      fractions
  in
  {
    scenario_name = sc.name;
    schedule = sc.schedule_name;
    runs_per_fraction = seeds;
    stats;
  }

let print_campaign oc c =
  Printf.fprintf oc "  %s (schedule: %s, %d runs per fraction)\n"
    c.scenario_name c.schedule c.runs_per_fraction;
  Printf.fprintf oc "    %10s %10s %10s %8s %8s %8s\n" "fraction" "recovered"
    "mean" "p50" "p95" "worst";
  List.iter
    (fun s ->
      Printf.fprintf oc "    %10.2f %7d/%-2d %10.2f %8d %8d %8d\n" s.fraction
        s.recovered s.runs s.mean s.p50 s.p95 s.worst)
    c.stats

let write_json oc campaigns =
  Printf.fprintf oc "{\n  \"benchmark\": \"faults\",\n  \"campaigns\": [\n";
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "    { \"scenario\": %S, \"schedule\": %S, \"runs_per_fraction\": \
         %d,\n\
        \      \"fractions\": [\n"
        c.scenario_name c.schedule c.runs_per_fraction;
      List.iteri
        (fun j s ->
          Printf.fprintf oc
            "        { \"fraction\": %.3f, \"runs\": %d, \"recovered\": %d, \
             \"mean_steps\": %.3f, \"p50_steps\": %d, \"p95_steps\": %d, \
             \"worst_steps\": %d }%s\n"
            s.fraction s.runs s.recovered s.mean s.p50 s.p95 s.worst
            (if j = List.length c.stats - 1 then "" else ","))
        c.stats;
      Printf.fprintf oc "      ] }%s\n"
        (if i = List.length campaigns - 1 then "" else ","))
    campaigns;
  Printf.fprintf oc "  ]\n}\n"
