module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Batch = Stateless_core.Batch
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Fault = Stateless_core.Fault
module Bench_json = Stateless_core.Bench_json
module Clique_example = Stateless_core.Clique_example
module D_counter = Stateless_counter.D_counter
module Feedback = Stateless_games.Feedback
module Digraph = Stateless_graph.Digraph
module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value

type recover_fn = fraction:float -> seed:int -> max_steps:int -> int option

type batch_fn =
  fractions:float array -> seeds:int array -> max_steps:int -> int option array

type scenario = {
  name : string;
  schedule_name : string;
  fresh : unit -> recover_fn;
  fresh_batch : unit -> batch_fn;
  recover : recover_fn;
}

type fraction_stats = {
  fraction : float;
  runs : int;
  recovered : int;
  mean : float;
  p50 : int;
  p95 : int;
  worst : int;
}

type campaign = {
  scenario_name : string;
  schedule : string;
  runs_per_fraction : int;
  stats : fraction_stats list;
}

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

(* Each scenario's [fresh] builds a measurement context — a packed
   {!Kernel} plus its buffers — and returns a closure measuring one
   corrupted run with it. [fresh_batch] builds the batched twin: a
   {!Batch} over the same kernel, measuring a whole contiguous block of
   the fraction × seed grid in lock-step (bit-identical per index to
   [fresh]'s closure). Kernels hold domain-private scratch, so the
   campaign runner calls [fresh]/[fresh_batch] once per domain; [recover]
   is one [fresh] instance for callers that measure single runs from one
   domain. *)

let scenario name schedule_name fresh fresh_batch =
  { name; schedule_name; fresh; fresh_batch; recover = fresh () }

let example1 ?(n = 4) () =
  let n = max 3 n in
  let p = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init p in
  let schedule = Schedule.synchronous n in
  let fresh () =
    let kern = Kernel.create p ~input in
    fun ~fraction ~seed ~max_steps ->
      (* [Fault.recovery_time] through the kernel: certify the healthy
         settle, corrupt its horizon configuration, re-settle. *)
      match Kernel.settle kern ~init ~schedule ~max_steps with
      | None -> None
      | Some healthy -> (
          let damaged =
            Fault.corrupt p ~seed ~fraction healthy.Engine.horizon_config
          in
          match Kernel.settle kern ~init:damaged ~schedule ~max_steps with
          | Some recovered -> Some recovered.Engine.settle_time
          | None -> None)
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    fun ~fractions ~seeds ~max_steps ->
      let b = Array.length seeds in
      (* The healthy settle is corruption-independent, so one certification
         per block replaces the per-run one — same deterministic values. *)
      match Kernel.settle kern ~init ~schedule ~max_steps with
      | None -> Array.make b None
      | Some healthy ->
          let inits =
            Array.init b (fun t ->
                Fault.corrupt p ~seed:seeds.(t) ~fraction:fractions.(t)
                  healthy.Engine.horizon_config)
          in
          Batch.settle bt ~inits ~schedule ~max_steps
          |> Array.map (function
               | Some recovered -> Some recovered.Engine.settle_time
               | None -> None)
  in
  scenario
    (Printf.sprintf "example1_k%d" n)
    schedule.Schedule.name fresh fresh_batch

(* The D-counter's outputs tick forever, so recovery is re-locking: the
   first step from which [agreed] holds for [d] consecutive synchronous
   steps after the steady (burned-in) configuration is corrupted. *)
let d_counter ?(n = 5) ?(d = 8) () =
  let t = D_counter.make ~n ~d () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let schedule = Schedule.synchronous n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p (p.Protocol.space.Label.decode 0))
      ~schedule ~steps:(D_counter.burn_in t)
  in
  let window = d in
  let everyone = List.init n Fun.id in
  let m = Protocol.num_edges p in
  (* [D_counter.agreed] reads the counter off each node's first outgoing
     edge; precompute those edge ids so the packed loop can agree-check
     label codes without materializing a configuration. *)
  let first_out =
    Array.init n (fun j -> (Digraph.out_edges p.Protocol.graph j).(0))
  in
  let fresh () =
    let kern = Kernel.create p ~input in
    let bufs = Array.init 2 (fun _ -> Array.make m 0) in
    let obufs = Array.init 2 (fun _ -> Array.make n 0) in
    let counter_at labels j =
      let _, (_, _, c) = Kernel.decode_label kern labels.(first_out.(j)) in
      c
    in
    let agreed labels =
      let c0 = counter_at labels 0 in
      let rec go j = j >= n || (counter_at labels j = c0 && go (j + 1)) in
      go 1
    in
    fun ~fraction ~seed ~max_steps ->
      let damaged = Fault.corrupt p ~seed ~fraction steady in
      let cur = ref bufs.(0) and curo = ref obufs.(0) in
      let nxt = ref bufs.(1) and nxto = ref obufs.(1) in
      Kernel.load kern damaged ~labels:!cur ~outputs:!curo;
      let run_len = ref 0 in
      let found = ref None in
      let s = ref 0 in
      while !found = None && !s <= max_steps do
        if agreed !cur then begin
          incr run_len;
          if !run_len >= window then found := Some (!s - window + 1)
        end
        else run_len := 0;
        Kernel.step_into kern ~src:!cur ~src_outputs:!curo ~dst:!nxt
          ~dst_outputs:!nxto ~active:everyone;
        let tl = !cur and to_ = !curo in
        cur := !nxt;
        curo := !nxto;
        nxt := tl;
        nxto := to_;
        incr s
      done;
      !found
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    let counter_at j nd =
      let _, (_, _, c) =
        Kernel.decode_label kern (Batch.label_code bt ~j first_out.(nd))
      in
      c
    in
    let agreed j =
      let c0 = counter_at j 0 in
      let rec go nd = nd >= n || (counter_at j nd = c0 && go (nd + 1)) in
      go 1
    in
    fun ~fractions ~seeds ~max_steps ->
      let b = Array.length seeds in
      let inits =
        Array.init b (fun t ->
            Fault.corrupt p ~seed:seeds.(t) ~fraction:fractions.(t) steady)
      in
      Batch.load_block bt inits;
      let found = Array.make b None in
      let run_len = Array.make b 0 in
      let s = ref 0 in
      while Batch.live_count bt > 0 && !s <= max_steps do
        for j = 0 to b - 1 do
          if Batch.is_live bt ~j then
            if agreed j then begin
              run_len.(j) <- run_len.(j) + 1;
              if run_len.(j) >= window then begin
                found.(j) <- Some (!s - window + 1);
                (* The per-instance loop steps once more before exiting;
                   retiring here instead cannot change [found], which is
                   already recorded. *)
                Batch.retire bt ~j
              end
            end
            else run_len.(j) <- 0
        done;
        Batch.step bt ~active:everyone;
        incr s
      done;
      found
  in
  scenario
    (Printf.sprintf "d_counter_n%d_d%d" n d)
    schedule.Schedule.name fresh fresh_batch

(* The ring oscillator never output-stabilizes by design; recovery is the
   time until the corrupted run provably re-enters a periodic orbit (the
   [entered] bound of the engine's oscillation verdict) under round-robin,
   whose periodicity makes the verdict exact. *)
let ring_oscillator ?(n = 5) () =
  let n = if n mod 2 = 0 then n + 1 else max 3 n in
  let p = Feedback.ring_oscillator n in
  let input = Array.make n () in
  let schedule = Schedule.round_robin n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p false)
      ~schedule ~steps:(4 * n)
  in
  let fresh () =
    let kern = Kernel.create p ~input in
    fun ~fraction ~seed ~max_steps ->
      let damaged = Fault.corrupt p ~seed ~fraction steady in
      match Kernel.run_until_stable kern ~init:damaged ~schedule ~max_steps with
      | Engine.Oscillating { entered; _ } -> Some entered
      | Engine.Stabilized { rounds; _ } -> Some rounds
      | Engine.Exhausted _ -> None
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    fun ~fractions ~seeds ~max_steps ->
      let inits =
        Array.init (Array.length seeds) (fun t ->
            Fault.corrupt p ~seed:seeds.(t) ~fraction:fractions.(t) steady)
      in
      Batch.run_until_stable bt ~inits ~schedule ~max_steps
      |> Array.map (function
           | Engine.Oscillating { entered; _ } -> Some entered
           | Engine.Stabilized { rounds; _ } -> Some rounds
           | Engine.Exhausted _ -> None)
  in
  scenario
    (Printf.sprintf "ring_oscillator_%d" n)
    schedule.Schedule.name fresh fresh_batch

let default_scenarios () = [ example1 (); d_counter (); ring_oscillator () ]

let scenario_names = [ "example1"; "counter"; "oscillator" ]

let scenario_by_name ?n name =
  match name with
  | "example1" -> Some (example1 ?n ())
  | "counter" -> Some (d_counter ?n ())
  | "oscillator" -> Some (ring_oscillator ?n ())
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Campaign runner                                                     *)
(* ------------------------------------------------------------------ *)

let default_fractions = [ 0.1; 0.25; 0.5; 0.75; 1.0 ]

(* Nearest-rank percentile over the sorted recovery times. *)
let percentile sorted q =
  let k = Array.length sorted in
  if k = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float k)) - 1 in
    sorted.(max 0 (min (k - 1) rank))

(* One matrix cell per fraction row covering its whole seed block: fine
   enough that a resumed campaign skips completed rows, coarse enough
   that a row's batched lock-step stepping stays intact. The config
   string names everything the row's results depend on — domains and
   batch are deliberately absent, because results are identical across
   both by the determinism contract, so a journal written at one domain
   count replays at any other. *)
let codec : int option array Campaign.codec =
  {
    encode =
      (fun row ->
        Value.List
          (Array.to_list
             (Array.map
                (function Some t -> Value.Int t | None -> Value.Null)
                row)));
    decode =
      (fun v ->
        Option.map
          (fun items ->
            Array.of_list items)
          (Value.opt_int_list v));
  }

let cells ?(fractions = default_fractions) ?(seeds = 30) ?(max_steps = 10_000)
    ?(seed0 = 1) ?(batch = 1) sc =
  Array.of_list
    (List.mapi
       (fun fi fraction ->
         {
           Campaign.key = Printf.sprintf "faults/%s/f%d" sc.name fi;
           config =
             Printf.sprintf
               "faults scenario=%s schedule=%s fraction=%.6g seeds=%d \
                seed0=%d max_steps=%d"
               sc.name sc.schedule_name fraction seeds seed0 max_steps;
           run =
             (fun ~deadline ~attempt ->
               (* Retries reseed: attempt [a] shifts the whole seed block
                  so a flaky row re-measures with fresh randomness. *)
               let seed0 = seed0 + (attempt * Campaign.reseed_stride) in
               if batch <= 1 then begin
                 let recover = sc.fresh () in
                 Array.init seeds (fun j ->
                     if deadline () then raise Campaign.Deadline_exceeded;
                     recover ~fraction ~seed:(seed0 + j) ~max_steps)
               end
               else begin
                 let bf = sc.fresh_batch () in
                 let out = Array.make seeds None in
                 let lo = ref 0 in
                 while !lo < seeds do
                   if deadline () then raise Campaign.Deadline_exceeded;
                   let hi = min seeds (!lo + batch) in
                   let len = hi - !lo in
                   let block =
                     bf
                       ~fractions:(Array.make len fraction)
                       ~seeds:(Array.init len (fun t -> seed0 + !lo + t))
                       ~max_steps
                   in
                   Array.blit block 0 out !lo len;
                   lo := hi
                 done;
                 out
               end);
         })
       fractions)

(* Aggregate one fraction row. A [None] row (the cell timed out or
   errored) degrades to zero recoveries — the merged campaign still has
   a deterministic row for it, so resumed and degraded merges stay
   shape-identical. *)
let stats_of_row ~seeds fraction row =
  let times = ref [] and recovered = ref 0 in
  (match row with
  | None -> ()
  | Some results ->
      for j = seeds - 1 downto 0 do
        match results.(j) with
        | Some t ->
            incr recovered;
            times := t :: !times
        | None -> ()
      done);
  let arr = Array.of_list !times in
  Array.sort compare arr;
  let k = Array.length arr in
  let mean =
    if k = 0 then 0. else float (Array.fold_left ( + ) 0 arr) /. float k
  in
  {
    fraction;
    runs = seeds;
    recovered = !recovered;
    mean;
    p50 = percentile arr 0.5;
    p95 = percentile arr 0.95;
    worst = (if k = 0 then 0 else arr.(k - 1));
  }

let run_matrix ?(fractions = default_fractions) ?(seeds = 30)
    ?(max_steps = 10_000) ?(domains = 1) ?(seed0 = 1) ?(batch = 1) ?policy sc =
  let cs = cells ~fractions ~seeds ~max_steps ~seed0 ~batch sc in
  let outcome = Campaign.run ~domains ?policy ~codec cs in
  let stats =
    List.mapi
      (fun fi fraction ->
        stats_of_row ~seeds fraction
          outcome.Campaign.records.(fi).Campaign.result)
      fractions
  in
  ( {
      scenario_name = sc.name;
      schedule = sc.schedule_name;
      runs_per_fraction = seeds;
      stats;
    },
    outcome.Campaign.counts )

let run ?fractions ?seeds ?max_steps ?domains ?seed0 ?batch sc =
  fst (run_matrix ?fractions ?seeds ?max_steps ?domains ?seed0 ?batch sc)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)


let print_campaign oc c =
  Printf.fprintf oc "  %s (schedule: %s, %d runs per fraction)\n"
    c.scenario_name c.schedule c.runs_per_fraction;
  Printf.fprintf oc "    %10s %10s %10s %8s %8s %8s\n" "fraction" "recovered"
    "mean" "p50" "p95" "worst";
  List.iter
    (fun s ->
      Printf.fprintf oc "    %10.2f %7d/%-2d %10.2f %8d %8d %8d\n" s.fraction
        s.recovered s.runs s.mean s.p50 s.p95 s.worst)
    c.stats

let write_json ?host ?batch ?cells oc campaigns =
  Bench_json.write ~benchmark:"faults" ?host ?batch ?cells oc (fun oc ->
      Printf.fprintf oc "  \"campaigns\": [\n";
      List.iteri
        (fun i c ->
          Printf.fprintf oc
            "    { \"scenario\": %S, \"schedule\": %S, \
             \"runs_per_fraction\": %d,\n\
            \      \"fractions\": [\n"
            c.scenario_name c.schedule c.runs_per_fraction;
          List.iteri
            (fun j s ->
              Printf.fprintf oc
                "        { \"fraction\": %.3f, \"runs\": %d, \"recovered\": \
                 %d, \"mean_steps\": %.3f, \"p50_steps\": %d, \"p95_steps\": \
                 %d, \"worst_steps\": %d }%s\n"
                s.fraction s.runs s.recovered s.mean s.p50 s.p95 s.worst
                (if j = List.length c.stats - 1 then "" else ","))
            c.stats;
          Printf.fprintf oc "      ] }%s\n"
            (if i = List.length campaigns - 1 then "" else ","))
        campaigns;
      Printf.fprintf oc "  ]\n")
