(** Fault-recovery campaigns: corrupt a steady state, measure recovery,
    aggregate over corruption fractions and seeds.

    Shared by the bench harness (which writes [BENCH_faults.json]) and the
    CLI's [faults] subcommand. Each {!scenario} fixes a protocol, a
    schedule and a steady state, and knows how to measure one corrupted
    run; the per-protocol recovery notions differ because the paper's
    fixtures converge in different senses (output stabilization for
    Example 1, re-locking for the D-counter, re-entering the periodic orbit
    for the ring oscillator).

    Measurements run on the packed {!Stateless_core.Kernel}; campaigns fan
    seeds out over domains through {!Stateless_core.Parrun} and aggregate in
    seed order, so results are identical for every domain count. *)

type recover_fn = fraction:float -> seed:int -> max_steps:int -> int option
(** Steps until one corrupted run has provably recovered; [None] when it
    did not within [max_steps]. *)

type batch_fn =
  fractions:float array -> seeds:int array -> max_steps:int -> int option array
(** Measures a contiguous block of the fraction × seed grid in lock-step
    through {!Stateless_core.Batch}: element [t] is exactly what
    {!recover_fn} returns for [(fractions.(t), seeds.(t))]. *)

type scenario = {
  name : string;
  schedule_name : string;
  fresh : unit -> recover_fn;
      (** Builds a measurement context (a packed kernel and its buffers)
          private to the calling domain. The campaign runner calls this
          once per domain. *)
  fresh_batch : unit -> batch_fn;
      (** The batched twin: a {!Stateless_core.Batch} over the same kernel
          measuring whole blocks in lock-step, bit-identical per index to
          [fresh]'s closure. Also once per domain. *)
  recover : recover_fn;
      (** One pre-built instance of [fresh ()], for callers measuring
          single runs from a single domain. *)
}

type fraction_stats = {
  fraction : float;  (** corruption fraction of this row *)
  runs : int;  (** seeds attempted *)
  recovered : int;  (** runs that recovered within the budget *)
  mean : float;  (** mean recovery steps over recovered runs *)
  p50 : int;  (** median recovery steps (nearest-rank) *)
  p95 : int;  (** 95th-percentile recovery steps (nearest-rank) *)
  worst : int;  (** maximum recovery steps among recovered runs *)
}

type campaign = {
  scenario_name : string;
  schedule : string;
  runs_per_fraction : int;
  stats : fraction_stats list;
}

(** Example 1 on [K_n] (default [n = 4]) under the synchronous schedule;
    recovery is output re-stabilization (the
    {!Stateless_core.Fault.recovery_time} measurement, run on the kernel). *)
val example1 : ?n:int -> unit -> scenario

(** The D-counter on an [n]-ring mod [d] (defaults [n = 5], [d = 8]):
    recovery is re-locking — the first step from which [agreed] holds for
    [d] consecutive synchronous steps. *)
val d_counter : ?n:int -> ?d:int -> unit -> scenario

(** The ring oscillator on [n] inverters (default [n = 5], forced odd):
    recovery is the time until the corrupted run provably re-enters a
    periodic orbit under round-robin. *)
val ring_oscillator : ?n:int -> unit -> scenario

(** The three scenarios above with default sizes — the bench campaign. *)
val default_scenarios : unit -> scenario list

(** CLI-facing names accepted by {!scenario_by_name}:
    ["example1"], ["counter"], ["oscillator"]. *)
val scenario_names : string list

val scenario_by_name : ?n:int -> string -> scenario option

(** The default corruption fractions [0.1; 0.25; 0.5; 0.75; 1.0]. *)
val default_fractions : float list

(** Journal codec for one fraction row ([int option array], one slot per
    seed): recovery times as [Int], unrecovered runs as [Null]. Exact
    round-trip, so replayed rows merge bit-identically. *)
val codec : int option array Stateless_campaign.Campaign.codec

(** [cells scenario] compiles the fraction sweep into matrix cells — one
    cell per fraction row, key ["faults/<scenario>/f<i>"], covering the
    row's whole seed block. The cell polls its deadline between seeds
    (or between lock-step blocks when [batch > 1]) and reseeds retries
    by [attempt * Campaign.reseed_stride]. Config strings exclude
    [domains] and [batch]: results are identical across both, so a
    journal written at one setting replays at any other. *)
val cells :
  ?fractions:float list ->
  ?seeds:int ->
  ?max_steps:int ->
  ?seed0:int ->
  ?batch:int ->
  scenario ->
  int option array Stateless_campaign.Campaign.cell array

(** [run_matrix scenario] runs the fraction sweep through the campaign
    orchestrator under [policy] (default
    {!Stateless_campaign.Campaign.default_policy}) and merges the
    records — in matrix order, so the campaign is bit-identical for
    every domain count, batch size, and kill/resume split — into the
    aggregated {!campaign} plus the ok/timeout/error counts. A row whose
    cell timed out or errored degrades to zero recoveries. *)
val run_matrix :
  ?fractions:float list ->
  ?seeds:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  ?policy:Stateless_campaign.Campaign.policy ->
  scenario ->
  campaign * Stateless_campaign.Campaign.counts

(** [run scenario] measures [seeds] corrupted runs (default 30) at each
    fraction (default {!default_fractions}) with the given step budget
    (default 10_000) and aggregates. [domains] (default 1) spreads the
    fraction rows over that many domains, each with its own kernel;
    the campaign is identical for every [domains] value. [seed0] (default
    1) is the first per-run seed — runs use [seed0 .. seed0 + seeds - 1],
    so the default reproduces the historical campaigns exactly. [batch]
    (default 1) steps blocks of that many seeds in lock-step through
    the scenario's batched context; every [batch] value yields the
    identical campaign, [batch <= 1] is the per-instance path.
    Equivalent to [fst (run_matrix ...)] under the default policy. *)
val run :
  ?fractions:float list ->
  ?seeds:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  scenario ->
  campaign

(** ASCII table of one campaign. *)
val print_campaign : out_channel -> campaign -> unit

(** Machine-readable JSON for a list of campaigns ([BENCH_faults.json]);
    [host] is the [Bench_json.host] provenance block. [batch], when given, is
    the lock-step batch size the campaigns were re-run at and whether they
    matched the per-instance campaigns exactly — CI greps for
    ["\"identical\": false"]. [cells] is the orchestrator's
    [(ok, timeout, error)] accounting. *)
val write_json :
  ?host:string ->
  ?batch:int * bool ->
  ?cells:int * int * int ->
  out_channel ->
  campaign list ->
  unit
