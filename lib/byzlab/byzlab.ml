(* Byzantine-node attack layer over the execution engines.

   Where Netlab's adversary corrupts the {e channels}, this module
   corrupts the {e nodes}: a designated set B runs an attack strategy
   instead of the protocol. One step of a Byzantine run, in order (both
   steppers follow this exactly, with identical RNG draw sequences):

     1. the protocol step: the scheduled {e correct} nodes react to the
        visible configuration (exactly {!Engine.step_into} /
        {!Kernel.step_into}); scheduled Byzantine nodes do not react;
     2. Byzantine writes: each scheduled Byzantine node overwrites its
        out-edges according to the strategy — [Seeded_random] draws one
        uniform label code per out-edge from the stepper's RNG (in
        activation-list order, then out-edge order), [Anti_majority]
        deterministically writes the label code rarest in the visible
        pre-step labeling (ties to the smallest code), and [Replay]
        plays a {!Byzcheck.witness}'s scripted write stream (prefix
        once, then the cycle forever).

   With B = ∅ no strategy ever acts: no RNG draw occurs and step 1 is
   the whole story — the steppers are bit-identical to the fault-free
   engines, which the differential tests in test_byzlab.ml pin down.
   The boxed stepper ({!Boxed}) runs on boxed configurations through
   {!Engine.step_into}; the packed stepper ({!Packed}) on int label
   codes through {!Kernel.step_into}. Both draw the same decisions from
   the same seed, so they are differential twins for every strategy.

   The campaign layer sweeps Byzantine placements over Example 1
   cliques, a relay ring and the D-counter, measuring per placement the
   deviant fraction of attack steps, the fraction of correct nodes that
   never deviated, the empirical containment radius (max hop distance
   from B of a deviating correct node) and the recovery time once the
   Byzantine nodes resume correct behavior. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Batch = Stateless_core.Batch
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Clique_example = Stateless_core.Clique_example
module Bench_json = Stateless_core.Bench_json
module D_counter = Stateless_counter.D_counter
module Digraph = Stateless_graph.Digraph
module Algorithms = Stateless_graph.Algorithms
module Builders = Stateless_graph.Builders
module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value

type strategy =
  | Seeded_random
  | Anti_majority
  | Replay of Byzcheck.witness

let strategy_name = function
  | Seeded_random -> "random"
  | Anti_majority -> "anti-majority"
  | Replay _ -> "replay"

let strategy_by_name = function
  | "random" -> Some Seeded_random
  | "anti-majority" -> Some Anti_majority
  | _ -> None

let strategy_names = [ "random"; "anti-majority" ]

(* Shared stepper scaffolding: the Byzantine set as a membership array,
   the script compiled from a Replay witness, and validation. *)
type plan = {
  byz : bool array;
  have_byz : bool;
  out_edges : int array array;
  strategy : strategy;
  s_prefix : Byzcheck.step array;
  s_cycle : Byzcheck.step array;
}

let plan_make p ~byz ~strategy =
  let n = Protocol.num_nodes p in
  let mem = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Byzlab: node %d out of range" i);
      if mem.(i) then
        invalid_arg (Printf.sprintf "Byzlab: duplicate Byzantine node %d" i);
      mem.(i) <- true)
    byz;
  let out_edges = Array.init n (Digraph.out_edges p.Protocol.graph) in
  let s_prefix, s_cycle =
    match strategy with
    | Replay w ->
        let owner = Array.make (Protocol.num_edges p) (-1) in
        Array.iteri
          (fun i es -> if mem.(i) then Array.iter (fun e -> owner.(e) <- i) es)
          out_edges;
        List.iter
          (fun (s : Byzcheck.step) ->
            List.iter
              (fun (w : Byzcheck.write) ->
                if w.Byzcheck.edge < 0 || w.Byzcheck.edge >= Array.length owner
                   || owner.(w.Byzcheck.edge) < 0
                then
                  invalid_arg
                    (Printf.sprintf
                       "Byzlab: scripted write on edge %d, not an out-edge \
                        of a Byzantine node"
                       w.Byzcheck.edge))
              s.Byzcheck.writes)
          (w.Byzcheck.prefix @ w.Byzcheck.cycle);
        (Array.of_list w.Byzcheck.prefix, Array.of_list w.Byzcheck.cycle)
    | _ -> ([||], [||])
  in
  {
    byz = mem;
    have_byz = Array.exists Fun.id mem;
    out_edges;
    strategy;
    s_prefix;
    s_cycle;
  }

let plan_writes_at plan t =
  let pl = Array.length plan.s_prefix in
  if t < pl then plan.s_prefix.(t).Byzcheck.writes
  else
    let cl = Array.length plan.s_cycle in
    if cl = 0 then [] else plan.s_cycle.((t - pl) mod cl).Byzcheck.writes

let correct_active plan active =
  if plan.have_byz then List.filter (fun i -> not plan.byz.(i)) active
  else active

(* ------------------------------------------------------------------ *)
(* Packed Byzantine stepper (over Kernel)                              *)
(* ------------------------------------------------------------------ *)

module Packed = struct
  type ('x, 'l) t = {
    kern : ('x, 'l) Kernel.t;
    schedule : Schedule.t;
    rng : Random.State.t;
    plan : plan;
    n : int;
    m : int;
    card : int;
    counts : int array;  (* scratch for Anti_majority, card cells *)
    mutable src : int array;
    mutable dst : int array;
    mutable src_o : int array;
    mutable dst_o : int array;
    mutable step_count : int;
    mutable writes_done : int;
  }

  let create ?kernel p ~input ~byz ~strategy ~schedule ~seed ~init =
    let n = Protocol.num_nodes p in
    let m = Protocol.num_edges p in
    let kern =
      match kernel with Some k -> k | None -> Kernel.create p ~input
    in
    let src = Array.make m 0 and dst = Array.make m 0 in
    let src_o = Array.make n 0 and dst_o = Array.make n 0 in
    Kernel.load kern init ~labels:src ~outputs:src_o;
    let card = p.Protocol.space.Label.card in
    {
      kern;
      schedule;
      rng = Random.State.make [| seed |];
      plan = plan_make p ~byz ~strategy;
      n;
      m;
      card;
      counts = Array.make card 0;
      src;
      dst;
      src_o;
      dst_o;
      step_count = 0;
      writes_done = 0;
    }

  (* The rarest label code in the visible pre-step labeling (ties to the
     smallest code) — the write that maximizes disagreement. *)
  let minority_code ch =
    Array.fill ch.counts 0 ch.card 0;
    for e = 0 to ch.m - 1 do
      ch.counts.(ch.src.(e)) <- ch.counts.(ch.src.(e)) + 1
    done;
    let best = ref 0 in
    for c = 1 to ch.card - 1 do
      if ch.counts.(c) < ch.counts.(!best) then best := c
    done;
    !best

  let step ch =
    let t = ch.step_count in
    let plan = ch.plan in
    let active = ch.schedule.Schedule.active t in
    Kernel.step_into ch.kern ~src:ch.src ~src_outputs:ch.src_o ~dst:ch.dst
      ~dst_outputs:ch.dst_o ~active:(correct_active plan active);
    if plan.have_byz then begin
      match plan.strategy with
      | Seeded_random ->
          List.iter
            (fun i ->
              if plan.byz.(i) then
                Array.iter
                  (fun e ->
                    ch.dst.(e) <- Random.State.int ch.rng ch.card;
                    ch.writes_done <- ch.writes_done + 1)
                  plan.out_edges.(i))
            active
      | Anti_majority ->
          if List.exists (fun i -> plan.byz.(i)) active then begin
            let c = minority_code ch in
            List.iter
              (fun i ->
                if plan.byz.(i) then
                  Array.iter
                    (fun e ->
                      ch.dst.(e) <- c;
                      ch.writes_done <- ch.writes_done + 1)
                    plan.out_edges.(i))
              active
          end
      | Replay _ ->
          List.iter
            (fun (w : Byzcheck.write) ->
              ch.dst.(w.Byzcheck.edge) <- w.Byzcheck.code;
              ch.writes_done <- ch.writes_done + 1)
            (plan_writes_at plan t)
    end;
    let tl = ch.src and tlo = ch.src_o in
    ch.src <- ch.dst;
    ch.src_o <- ch.dst_o;
    ch.dst <- tl;
    ch.dst_o <- tlo;
    ch.step_count <- t + 1

  let run ch ~steps =
    for _ = 1 to steps do
      step ch
    done

  let labels ch = ch.src
  let outputs ch = ch.src_o
  let steps_done ch = ch.step_count
  let writes_done ch = ch.writes_done
  let config ch = Kernel.store ch.kern ~labels:ch.src ~outputs:ch.src_o
end

(* ------------------------------------------------------------------ *)
(* Boxed Byzantine stepper (over Engine)                               *)
(* ------------------------------------------------------------------ *)

module Boxed = struct
  type ('x, 'l) t = {
    p : ('x, 'l) Protocol.t;
    input : 'x array;
    schedule : Schedule.t;
    rng : Random.State.t;
    plan : plan;
    n : int;
    m : int;
    card : int;
    encode : 'l -> int;
    decode : int -> 'l;
    counts : int array;
    mutable src : 'l Protocol.config;
    mutable dst : 'l Protocol.config;
    mutable step_count : int;
    mutable writes_done : int;
  }

  let create p ~input ~byz ~strategy ~schedule ~seed ~init =
    let n = Protocol.num_nodes p in
    let m = Protocol.num_edges p in
    let space = p.Protocol.space in
    let copy (c : 'l Protocol.config) =
      {
        Protocol.labels = Array.copy c.Protocol.labels;
        outputs = Array.copy c.Protocol.outputs;
      }
    in
    {
      p;
      input;
      schedule;
      rng = Random.State.make [| seed |];
      plan = plan_make p ~byz ~strategy;
      n;
      m;
      card = space.Label.card;
      encode = space.Label.encode;
      decode = space.Label.decode;
      counts = Array.make space.Label.card 0;
      src = copy init;
      dst = copy init;
      step_count = 0;
      writes_done = 0;
    }

  let minority_code ch =
    let src = ch.src.Protocol.labels in
    Array.fill ch.counts 0 ch.card 0;
    for e = 0 to ch.m - 1 do
      let c = ch.encode src.(e) in
      ch.counts.(c) <- ch.counts.(c) + 1
    done;
    let best = ref 0 in
    for c = 1 to ch.card - 1 do
      if ch.counts.(c) < ch.counts.(!best) then best := c
    done;
    !best

  let step ch =
    let t = ch.step_count in
    let plan = ch.plan in
    let active = ch.schedule.Schedule.active t in
    Engine.step_into ch.p ~input:ch.input ch.src
      ~active:(correct_active plan active) ~into:ch.dst;
    let dst = ch.dst.Protocol.labels in
    if plan.have_byz then begin
      match plan.strategy with
      | Seeded_random ->
          List.iter
            (fun i ->
              if plan.byz.(i) then
                Array.iter
                  (fun e ->
                    dst.(e) <- ch.decode (Random.State.int ch.rng ch.card);
                    ch.writes_done <- ch.writes_done + 1)
                  plan.out_edges.(i))
            active
      | Anti_majority ->
          if List.exists (fun i -> plan.byz.(i)) active then begin
            let c = ch.decode (minority_code ch) in
            List.iter
              (fun i ->
                if plan.byz.(i) then
                  Array.iter
                    (fun e ->
                      dst.(e) <- c;
                      ch.writes_done <- ch.writes_done + 1)
                    plan.out_edges.(i))
              active
          end
      | Replay _ ->
          List.iter
            (fun (w : Byzcheck.write) ->
              dst.(w.Byzcheck.edge) <- ch.decode w.Byzcheck.code;
              ch.writes_done <- ch.writes_done + 1)
            (plan_writes_at plan t)
    end;
    let tl = ch.src in
    ch.src <- ch.dst;
    ch.dst <- tl;
    ch.step_count <- t + 1

  let run ch ~steps =
    for _ = 1 to steps do
      step ch
    done

  let steps_done ch = ch.step_count
  let writes_done ch = ch.writes_done

  let config ch =
    {
      Protocol.labels = Array.copy ch.src.Protocol.labels;
      outputs = Array.copy ch.src.Protocol.outputs;
    }
end

(* ------------------------------------------------------------------ *)
(* Campaign: deviation during an attack, recovery after it             *)
(* ------------------------------------------------------------------ *)

type run_result = {
  deviant_steps : int;  (* attack steps where some correct node deviated *)
  deviant_nodes : int;  (* correct nodes that ever deviated *)
  max_radius : int;  (* max distance-from-B of a deviating node, -1 none *)
  recovery : int option;  (* steps to recover once B behaves, None = never *)
}

type measure_fn =
  byz:int list ->
  strategy:strategy ->
  attack:int ->
  seed:int ->
  max_steps:int ->
  run_result

(* The attack phase stays per-instance: each run's Byzantine RNG draw
   order ([Seeded_random]) and minority computation ([Anti_majority])
   are coupled to that run's own trajectory, so attacks cannot share a
   lock-step sweep. Only the fault-free post-attack recovery — the
   settle or re-lock loop, which dominates the step count — batches
   through {!Batch}. *)
type batch_measure_fn =
  byzs:int list array ->
  strategy:strategy ->
  attack:int ->
  seeds:int array ->
  max_steps:int ->
  run_result array

type scenario = {
  name : string;
  schedule_name : string;
  nodes : int;
  placements : int list list;
  fresh : unit -> measure_fn;
  fresh_batch : unit -> batch_measure_fn;
}

(* Hop distance from the Byzantine set (min over members); -1 for
   unreachable nodes and when B is empty. *)
let distances_from_byz g byz =
  let n = Digraph.num_nodes g in
  let dist = Array.make n (-1) in
  List.iter
    (fun b ->
      let d = Algorithms.bfs_distances g b in
      for i = 0 to n - 1 do
        if d.(i) >= 0 && (dist.(i) < 0 || d.(i) < dist.(i)) then
          dist.(i) <- d.(i)
      done)
    byz;
  dist

let result_of ~graph ~byz ~deviated ~deviant_steps ~recovery =
  let n = Array.length deviated in
  let dist = distances_from_byz graph byz in
  let deviant_nodes = ref 0 and radius = ref (-1) in
  for i = 0 to n - 1 do
    if deviated.(i) then begin
      incr deviant_nodes;
      if dist.(i) > !radius then radius := dist.(i)
    end
  done;
  { deviant_steps; deviant_nodes = !deviant_nodes; max_radius = !radius; recovery }

let byz_member n byz =
  let mem = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then mem.(i) <- true) byz;
  mem

(* Example 1 on K_n: the reference is the healthy run's settled outputs;
   an attack step is deviant when some correct node's output differs from
   it, and recovery is the post-attack output settle time. *)
let example1 ?(n = 4) () =
  let n = max 3 n in
  let p = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init p in
  let schedule = Schedule.synchronous n in
  let fresh () =
    let kern = Kernel.create p ~input in
    let healthy =
      match Kernel.settle kern ~init ~schedule ~max_steps:10_000 with
      | Some h -> h
      | None -> invalid_arg "Byzlab.example1: healthy run did not settle"
    in
    let reference = healthy.Engine.settled_outputs in
    let steady = healthy.Engine.horizon_config in
    fun ~byz ~strategy ~attack ~seed ~max_steps ->
      let ch =
        Packed.create ~kernel:kern p ~input ~byz ~strategy ~schedule ~seed
          ~init:steady
      in
      let mem = byz_member n byz in
      let deviated = Array.make n false in
      let deviant = ref 0 in
      for _ = 1 to attack do
        Packed.step ch;
        let outs = Packed.outputs ch in
        let bad = ref false in
        for i = 0 to n - 1 do
          if (not mem.(i)) && outs.(i) <> reference.(i) then begin
            deviated.(i) <- true;
            bad := true
          end
        done;
        if !bad then incr deviant
      done;
      let post = Packed.config ch in
      let recovery =
        match Kernel.settle kern ~init:post ~schedule ~max_steps with
        | Some s -> Some s.Engine.settle_time
        | None -> None
      in
      result_of ~graph:p.Protocol.graph ~byz ~deviated ~deviant_steps:!deviant
        ~recovery
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    let healthy =
      match Kernel.settle kern ~init ~schedule ~max_steps:10_000 with
      | Some h -> h
      | None -> invalid_arg "Byzlab.example1: healthy run did not settle"
    in
    let reference = healthy.Engine.settled_outputs in
    let steady = healthy.Engine.horizon_config in
    fun ~byzs ~strategy ~attack ~seeds ~max_steps ->
      let b = Array.length seeds in
      let deviated = Array.init b (fun _ -> Array.make n false) in
      let deviant = Array.make b 0 in
      let posts =
        Array.init b (fun t ->
            let ch =
              Packed.create ~kernel:kern p ~input ~byz:byzs.(t) ~strategy
                ~schedule ~seed:seeds.(t) ~init:steady
            in
            let mem = byz_member n byzs.(t) in
            for _ = 1 to attack do
              Packed.step ch;
              let outs = Packed.outputs ch in
              let bad = ref false in
              for i = 0 to n - 1 do
                if (not mem.(i)) && outs.(i) <> reference.(i) then begin
                  deviated.(t).(i) <- true;
                  bad := true
                end
              done;
              if !bad then deviant.(t) <- deviant.(t) + 1
            done;
            Packed.config ch)
      in
      let settled = Batch.settle bt ~inits:posts ~schedule ~max_steps in
      Array.init b (fun t ->
          let recovery =
            match settled.(t) with
            | Some s -> Some s.Engine.settle_time
            | None -> None
          in
          result_of ~graph:p.Protocol.graph ~byz:byzs.(t)
            ~deviated:deviated.(t) ~deviant_steps:deviant.(t) ~recovery)
  in
  {
    name = Printf.sprintf "example1_k%d" n;
    schedule_name = schedule.Schedule.name;
    nodes = n;
    placements = [ []; [ 0 ]; [ 0; 1 ] ];
    fresh;
    fresh_batch;
  }

(* A unidirectional relay ring: each node forwards the label it reads and
   outputs it. Healthy from the all-false labeling nothing ever changes;
   a Byzantine node's lies travel around the whole ring (worst-case
   containment), and injected labels keep circulating after the attack —
   the ring generally does not recover. *)
let relay_ring ?(n = 6) () =
  let n = max 3 n in
  let p =
    {
      Protocol.name = Printf.sprintf "relay_ring_%d" n;
      graph = Builders.ring_uni n;
      space = Label.bool;
      react =
        (fun _ () incoming ->
          ([| incoming.(0) |], if incoming.(0) then 1 else 0));
    }
  in
  let input = Array.make n () in
  let schedule = Schedule.synchronous n in
  let init = Protocol.uniform_config p false in
  let fresh () =
    let kern = Kernel.create p ~input in
    fun ~byz ~strategy ~attack ~seed ~max_steps ->
      let ch =
        Packed.create ~kernel:kern p ~input ~byz ~strategy ~schedule ~seed
          ~init
      in
      let mem = byz_member n byz in
      let deviated = Array.make n false in
      let deviant = ref 0 in
      for _ = 1 to attack do
        Packed.step ch;
        let outs = Packed.outputs ch in
        let bad = ref false in
        for i = 0 to n - 1 do
          if (not mem.(i)) && outs.(i) <> 0 then begin
            deviated.(i) <- true;
            bad := true
          end
        done;
        if !bad then incr deviant
      done;
      let post = Packed.config ch in
      let recovery =
        match Kernel.settle kern ~init:post ~schedule ~max_steps with
        | Some s -> Some s.Engine.settle_time
        | None -> None
      in
      result_of ~graph:p.Protocol.graph ~byz ~deviated ~deviant_steps:!deviant
        ~recovery
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    fun ~byzs ~strategy ~attack ~seeds ~max_steps ->
      let b = Array.length seeds in
      let deviated = Array.init b (fun _ -> Array.make n false) in
      let deviant = Array.make b 0 in
      let posts =
        Array.init b (fun t ->
            let ch =
              Packed.create ~kernel:kern p ~input ~byz:byzs.(t) ~strategy
                ~schedule ~seed:seeds.(t) ~init
            in
            let mem = byz_member n byzs.(t) in
            for _ = 1 to attack do
              Packed.step ch;
              let outs = Packed.outputs ch in
              let bad = ref false in
              for i = 0 to n - 1 do
                if (not mem.(i)) && outs.(i) <> 0 then begin
                  deviated.(t).(i) <- true;
                  bad := true
                end
              done;
              if !bad then deviant.(t) <- deviant.(t) + 1
            done;
            Packed.config ch)
      in
      let settled = Batch.settle bt ~inits:posts ~schedule ~max_steps in
      Array.init b (fun t ->
          let recovery =
            match settled.(t) with
            | Some s -> Some s.Engine.settle_time
            | None -> None
          in
          result_of ~graph:p.Protocol.graph ~byz:byzs.(t)
            ~deviated:deviated.(t) ~deviant_steps:deviant.(t) ~recovery)
  in
  {
    name = Printf.sprintf "relay_ring_%d" n;
    schedule_name = schedule.Schedule.name;
    nodes = n;
    placements = [ []; [ 0 ]; [ 0; 1 ]; [ 0; n / 2 ] ];
    fresh;
    fresh_batch;
  }

(* The D-counter: an attack step is deviant when the correct nodes'
   counters disagree; a node deviates when its counter differs from the
   most common value among correct nodes. Recovery is re-locking — the
   first post-attack step from which all counters agree for d consecutive
   synchronous steps. *)
let d_counter ?(n = 5) ?(d = 8) () =
  let t = D_counter.make ~n ~d () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let schedule = Schedule.synchronous n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p (p.Protocol.space.Label.decode 0))
      ~schedule ~steps:(D_counter.burn_in t)
  in
  let m = Protocol.num_edges p in
  let first_out =
    Array.init n (fun j -> (Digraph.out_edges p.Protocol.graph j).(0))
  in
  let fresh () =
    let kern = Kernel.create p ~input in
    let counter_at labels j =
      let _, (_, _, c) = Kernel.decode_label kern labels.(first_out.(j)) in
      c
    in
    let bufs = Array.init 2 (fun _ -> Array.make m 0) in
    let obufs = Array.init 2 (fun _ -> Array.make n 0) in
    let everyone = List.init n Fun.id in
    let agreed labels =
      let c0 = counter_at labels 0 in
      let rec go j = j >= n || (counter_at labels j = c0 && go (j + 1)) in
      go 1
    in
    fun ~byz ~strategy ~attack ~seed ~max_steps ->
      let ch =
        Packed.create ~kernel:kern p ~input ~byz ~strategy ~schedule ~seed
          ~init:steady
      in
      let mem = byz_member n byz in
      let deviated = Array.make n false in
      let deviant = ref 0 in
      let vals = Array.make n 0 in
      for _ = 1 to attack do
        Packed.step ch;
        let labels = Packed.labels ch in
        for i = 0 to n - 1 do
          vals.(i) <- counter_at labels i
        done;
        (* Most common counter value among correct nodes (ties to the
           smallest value), the per-step reference. *)
        let modal = ref 0 and modal_count = ref (-1) in
        for i = 0 to n - 1 do
          if not mem.(i) then begin
            let c = ref 0 in
            for j = 0 to n - 1 do
              if (not mem.(j)) && vals.(j) = vals.(i) then incr c
            done;
            if
              !c > !modal_count
              || (!c = !modal_count && vals.(i) < !modal)
            then begin
              modal := vals.(i);
              modal_count := !c
            end
          end
        done;
        let bad = ref false in
        for i = 0 to n - 1 do
          if (not mem.(i)) && vals.(i) <> !modal then begin
            deviated.(i) <- true;
            bad := true
          end
        done;
        if !bad then incr deviant
      done;
      let post = Packed.config ch in
      (* Re-lock loop, as in Netlab's d_counter scenario. *)
      let cur = ref bufs.(0) and curo = ref obufs.(0) in
      let nxt = ref bufs.(1) and nxto = ref obufs.(1) in
      Kernel.load kern post ~labels:!cur ~outputs:!curo;
      let run_len = ref 0 in
      let found = ref None in
      let s = ref 0 in
      while !found = None && !s <= max_steps do
        if agreed !cur then begin
          incr run_len;
          if !run_len >= d then found := Some (!s - d + 1)
        end
        else run_len := 0;
        Kernel.step_into kern ~src:!cur ~src_outputs:!curo ~dst:!nxt
          ~dst_outputs:!nxto ~active:everyone;
        let tl = !cur and to_ = !curo in
        cur := !nxt;
        curo := !nxto;
        nxt := tl;
        nxto := to_;
        incr s
      done;
      result_of ~graph:p.Protocol.graph ~byz ~deviated ~deviant_steps:!deviant
        ~recovery:!found
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    let counter_at labels j =
      let _, (_, _, c) = Kernel.decode_label kern labels.(first_out.(j)) in
      c
    in
    let counter_at_plane ~j i =
      let _, (_, _, c) =
        Kernel.decode_label kern (Batch.label_code bt ~j first_out.(i))
      in
      c
    in
    let agreed_plane ~j =
      let c0 = counter_at_plane ~j 0 in
      let rec go i = i >= n || (counter_at_plane ~j i = c0 && go (i + 1)) in
      go 1
    in
    let everyone = List.init n Fun.id in
    fun ~byzs ~strategy ~attack ~seeds ~max_steps ->
      let b = Array.length seeds in
      let deviated = Array.init b (fun _ -> Array.make n false) in
      let deviant = Array.make b 0 in
      let vals = Array.make n 0 in
      let posts =
        Array.init b (fun t ->
            let ch =
              Packed.create ~kernel:kern p ~input ~byz:byzs.(t) ~strategy
                ~schedule ~seed:seeds.(t) ~init:steady
            in
            let mem = byz_member n byzs.(t) in
            for _ = 1 to attack do
              Packed.step ch;
              let labels = Packed.labels ch in
              for i = 0 to n - 1 do
                vals.(i) <- counter_at labels i
              done;
              let modal = ref 0 and modal_count = ref (-1) in
              for i = 0 to n - 1 do
                if not mem.(i) then begin
                  let c = ref 0 in
                  for j = 0 to n - 1 do
                    if (not mem.(j)) && vals.(j) = vals.(i) then incr c
                  done;
                  if
                    !c > !modal_count
                    || (!c = !modal_count && vals.(i) < !modal)
                  then begin
                    modal := vals.(i);
                    modal_count := !c
                  end
                end
              done;
              let bad = ref false in
              for i = 0 to n - 1 do
                if (not mem.(i)) && vals.(i) <> !modal then begin
                  deviated.(t).(i) <- true;
                  bad := true
                end
              done;
              if !bad then deviant.(t) <- deviant.(t) + 1
            done;
            Packed.config ch)
      in
      (* Batched re-lock. The per-instance loop takes one more step after
         recording [found], so retiring at [found] cannot change it. *)
      Batch.load_block bt posts;
      let run_len = Array.make b 0 in
      let found = Array.make b None in
      let s = ref 0 in
      while Batch.live_count bt > 0 && !s <= max_steps do
        for t = 0 to b - 1 do
          if Batch.is_live bt ~j:t then
            if agreed_plane ~j:t then begin
              run_len.(t) <- run_len.(t) + 1;
              if run_len.(t) >= d then begin
                found.(t) <- Some (!s - d + 1);
                Batch.retire bt ~j:t
              end
            end
            else run_len.(t) <- 0
        done;
        Batch.step bt ~active:everyone;
        incr s
      done;
      Array.init b (fun t ->
          result_of ~graph:p.Protocol.graph ~byz:byzs.(t)
            ~deviated:deviated.(t) ~deviant_steps:deviant.(t)
            ~recovery:found.(t))
  in
  {
    name = Printf.sprintf "d_counter_n%d_d%d" n d;
    schedule_name = schedule.Schedule.name;
    nodes = n;
    placements = [ []; [ 0 ]; [ 0; 2 ] ];
    fresh;
    fresh_batch;
  }

let default_scenarios () = [ example1 (); relay_ring (); d_counter () ]
let scenario_names = [ "example1"; "ring"; "counter" ]

let scenario_by_name ?n name =
  match name with
  | "example1" -> Some (example1 ?n ())
  | "ring" -> Some (relay_ring ?n ())
  | "counter" -> Some (d_counter ?n ())
  | _ -> None

type level_stats = {
  byz : int list;
  runs : int;
  mean_deviant : float;  (* mean fraction of attack steps deviant *)
  mean_stabilized : float;  (* mean fraction of correct nodes undeviated *)
  worst_radius : int;  (* max empirical containment radius, -1 = contained *)
  recovered : int;
  mean_recovery : float;
  p50 : int;
  p95 : int;
  worst : int;
}

type campaign = {
  scenario_name : string;
  schedule : string;
  strategy : string;
  attack : int;
  runs_per_level : int;
  levels : level_stats list;
}

let percentile sorted q =
  let k = Array.length sorted in
  if k = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float k)) - 1 in
    sorted.(max 0 (min (k - 1) rank))

let string_of_byz byz =
  "[" ^ String.concat "," (List.map string_of_int byz) ^ "]"

(* One matrix cell per Byzantine placement covering its whole seed
   block. Each run journals as [[deviant_steps, deviant_nodes,
   max_radius, recovery]] (recovery null when never recovered) —
   int-only, so the round-trip is exact. *)
let codec : run_result array Campaign.codec =
  {
    encode =
      (fun row ->
        Value.List
          (Array.to_list
             (Array.map
                (fun r ->
                  Value.List
                    [
                      Value.Int r.deviant_steps;
                      Value.Int r.deviant_nodes;
                      Value.Int r.max_radius;
                      (match r.recovery with
                      | Some t -> Value.Int t
                      | None -> Value.Null);
                    ])
                row)));
    decode =
      (fun v ->
        match v with
        | Value.List items -> (
            try
              Some
                (Array.of_list
                   (List.map
                      (function
                        | Value.List
                            [ Value.Int ds; Value.Int dn; Value.Int mr; rv ]
                          ->
                            let recovery =
                              match rv with
                              | Value.Int t -> Some t
                              | Value.Null -> None
                              | _ -> raise Exit
                            in
                            {
                              deviant_steps = ds;
                              deviant_nodes = dn;
                              max_radius = mr;
                              recovery;
                            }
                        | _ -> raise Exit)
                      items))
            with Exit -> None)
        | _ -> None);
  }

(* [Replay] witnesses carry no stable textual form; a structural hash
   keeps distinct witnesses from fingerprint-colliding. Journaled replay
   cells are only replayed within the same witness anyway. *)
let strategy_config = function
  | Seeded_random -> "random"
  | Anti_majority -> "anti-majority"
  | Replay w -> Printf.sprintf "replay#%08x" (Hashtbl.hash w)

let cells ?placements ?(seeds = 20) ?(attack = 400) ?(max_steps = 10_000)
    ?(seed0 = 1) ?(batch = 1) ~strategy sc =
  let pls = match placements with Some p -> p | None -> sc.placements in
  Array.of_list
    (List.mapi
       (fun li byz ->
         {
           Campaign.key = Printf.sprintf "byz/%s/p%d" sc.name li;
           config =
             Printf.sprintf
               "byz scenario=%s schedule=%s byz=%s strategy=%s attack=%d \
                seeds=%d seed0=%d max_steps=%d"
               sc.name sc.schedule_name (string_of_byz byz)
               (strategy_config strategy) attack seeds seed0 max_steps;
           run =
             (fun ~deadline ~attempt ->
               let seed0 = seed0 + (attempt * Campaign.reseed_stride) in
               if batch <= 1 then begin
                 let measure = sc.fresh () in
                 Array.init seeds (fun j ->
                     if deadline () then raise Campaign.Deadline_exceeded;
                     measure ~byz ~strategy ~attack ~seed:(seed0 + j)
                       ~max_steps)
               end
               else begin
                 let bf = sc.fresh_batch () in
                 let out =
                   Array.make seeds
                     {
                       deviant_steps = 0;
                       deviant_nodes = 0;
                       max_radius = -1;
                       recovery = None;
                     }
                 in
                 let lo = ref 0 in
                 while !lo < seeds do
                   if deadline () then raise Campaign.Deadline_exceeded;
                   let hi = min seeds (!lo + batch) in
                   let len = hi - !lo in
                   let block =
                     bf
                       ~byzs:(Array.make len byz)
                       ~strategy ~attack
                       ~seeds:(Array.init len (fun t -> seed0 + !lo + t))
                       ~max_steps
                   in
                   Array.blit block 0 out !lo len;
                   lo := hi
                 done;
                 out
               end);
         })
       pls)

(* A [None] row (timed-out or errored cell) degrades to a fully
   stabilized, zero-deviation level — shape-identical merges. *)
let stats_of_row ~nodes ~seeds ~attack byz row =
  let correct = nodes - List.length byz in
  let times = ref [] and recovered = ref 0 in
  let dev = ref 0 and stab = ref 0. and radius = ref (-1) in
  (match row with
  | None -> stab := float seeds
  | Some results ->
      for j = seeds - 1 downto 0 do
        let r = results.(j) in
        dev := !dev + r.deviant_steps;
        stab :=
          !stab
          +.
          if correct = 0 then 1.0
          else float (correct - r.deviant_nodes) /. float correct;
        if r.max_radius > !radius then radius := r.max_radius;
        match r.recovery with
        | Some t ->
            incr recovered;
            times := t :: !times
        | None -> ()
      done);
  let arr = Array.of_list !times in
  Array.sort compare arr;
  let cnt = Array.length arr in
  let mean =
    if cnt = 0 then 0. else float (Array.fold_left ( + ) 0 arr) /. float cnt
  in
  {
    byz;
    runs = seeds;
    mean_deviant = float !dev /. float (seeds * max 1 attack);
    mean_stabilized = !stab /. float seeds;
    worst_radius = !radius;
    recovered = !recovered;
    mean_recovery = mean;
    p50 = percentile arr 0.5;
    p95 = percentile arr 0.95;
    worst = (if cnt = 0 then 0 else arr.(cnt - 1));
  }

let run_matrix ?placements ?(seeds = 20) ?(attack = 400) ?(max_steps = 10_000)
    ?(domains = 1) ?(seed0 = 1) ?(batch = 1) ?policy ~strategy sc =
  let pls = match placements with Some p -> p | None -> sc.placements in
  let cs =
    cells ~placements:pls ~seeds ~attack ~max_steps ~seed0 ~batch ~strategy sc
  in
  let outcome = Campaign.run ~domains ?policy ~codec cs in
  let levels =
    List.mapi
      (fun li byz ->
        stats_of_row ~nodes:sc.nodes ~seeds ~attack byz
          outcome.Campaign.records.(li).Campaign.result)
      pls
  in
  ( {
      scenario_name = sc.name;
      schedule = sc.schedule_name;
      strategy = strategy_name strategy;
      attack;
      runs_per_level = seeds;
      levels;
    },
    outcome.Campaign.counts )

let run ?placements ?seeds ?attack ?max_steps ?domains ?seed0 ?batch ~strategy
    sc =
  fst
    (run_matrix ?placements ?seeds ?attack ?max_steps ?domains ?seed0 ?batch
       ~strategy sc)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let print_campaign oc c =
  Printf.fprintf oc
    "  %s (schedule: %s, strategy: %s, attack %d steps, %d runs per level)\n"
    c.scenario_name c.schedule c.strategy c.attack c.runs_per_level;
  Printf.fprintf oc "    %10s %10s %10s %7s %10s %10s %6s %6s %6s\n" "byz"
    "deviant" "stabilized" "radius" "recovered" "mean" "p50" "p95" "worst";
  List.iter
    (fun s ->
      Printf.fprintf oc
        "    %10s %9.1f%% %9.1f%% %7d %7d/%-2d %10.2f %6d %6d %6d\n"
        (string_of_byz s.byz)
        (100. *. s.mean_deviant)
        (100. *. s.mean_stabilized)
        s.worst_radius s.recovered s.runs s.mean_recovery s.p50 s.p95 s.worst)
    c.levels

let write_json ?host ?batch ?cells ?certification oc campaigns =
  Bench_json.write ~benchmark:"byzlab" ?host ?batch ?cells ?certification oc
    (fun oc ->
      Printf.fprintf oc "  \"campaigns\": [\n";
      List.iteri
        (fun i c ->
          Printf.fprintf oc
            "    { \"scenario\": %S, \"schedule\": %S, \"strategy\": %S, \
             \"attack_steps\": %d, \"runs_per_level\": %d,\n\
            \      \"levels\": [\n"
            c.scenario_name c.schedule c.strategy c.attack c.runs_per_level;
          List.iteri
            (fun j s ->
              Printf.fprintf oc
                "        { \"byz\": %S, \"byz_count\": %d, \"runs\": %d, \
                 \"mean_deviant_fraction\": %.4f, \"stabilized_fraction\": \
                 %.4f, \"worst_radius\": %d, \"recovered\": %d, \
                 \"mean_recovery_steps\": %.3f, \"p50_steps\": %d, \
                 \"p95_steps\": %d, \"worst_steps\": %d }%s\n"
                (string_of_byz s.byz) (List.length s.byz) s.runs s.mean_deviant
                s.mean_stabilized s.worst_radius s.recovered s.mean_recovery
                s.p50 s.p95 s.worst
                (if j = List.length c.levels - 1 then "" else ","))
            c.levels;
          Printf.fprintf oc "      ] }%s\n"
            (if i = List.length campaigns - 1 then "" else ","))
        campaigns;
      Printf.fprintf oc "  ]\n")
