(** Exhaustive (r, B)-stabilization certification under Byzantine nodes.

    A designated set [B] of nodes is Byzantine: on every activation such a
    node writes arbitrary labels of its own choosing onto its out-edges
    instead of running the protocol. This checker decides whether the
    {e correct} nodes' labels (resp. outputs) stabilize under {e every}
    Byzantine behavior and every r-fair schedule, exhaustively over all
    initial labelings.

    The states-graph is exactly the plain checker's — a state is
    (labeling, fairness countdown) — and only the transition relation
    branches: an activation set containing Byzantine nodes yields one
    out-edge per assignment of labels to those nodes' out-edges.
    Byzantine activations tick the fairness countdown (writing back the
    current labels is one of the adversary's choices), divergence is
    judged on the correct nodes' reactions alone, and output conflicts
    are only collected at correct nodes. With [B = ∅] no branching
    happens and the graph coincides with the plain checker's, so verdicts
    agree with {!Stateless_checker.Checker} by construction (asserted
    differentially in [test_byzlab.ml]). *)

(** One Byzantine write: edge [edge] (an out-edge of a Byzantine node) is
    set to the label with code [code] immediately after the step's
    correct reactions land. *)
type write = { edge : int; code : int }

(** One step of a witness run: activate [active] (correct members react),
    then apply [writes]. *)
type step = { active : int list; writes : write list }

type witness = {
  init_code : int;  (** encoded initial labeling (mixed radix) *)
  prefix : step list;  (** from the initial labeling to the cycle *)
  cycle : step list;  (** returns to its starting labeling *)
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }
      (** the exploration needs a budget of [needed] (states times the
          worst per-activation Byzantine branching factor); raise
          [max_states] *)

type stats = { states : int; edges : int }

(** Size of the last explored graph ([None] before any exploration or
    after a [Too_large]). *)
val last_stats : unit -> stats option

(** [check_label p ~input ~byz ~r ~max_states] decides label
    r-stabilization of the correct nodes under the Byzantine set [byz],
    exhaustively over all initial labelings, r-fair schedules and
    Byzantine write choices.
    @raise Invalid_argument when [r < 1], [byz] contains an out-of-range
    or duplicate node, or the protocol has more than 20 nodes. *)
val check_label :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  byz:int list ->
  r:int ->
  max_states:int ->
  verdict

(** Output-stabilization analogue: some correct node can be made to emit
    two distinct outputs infinitely often. *)
val check_output :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  byz:int list ->
  r:int ->
  max_states:int ->
  verdict

(** The fate of one correct node: [distance] is its hop distance from the
    Byzantine set (min over members, -1 when [B] is empty or the node is
    unreachable from it), and [stabilizes] says no Byzantine behavior and
    schedule can make its output diverge forever. *)
type node_fate = { node : int; distance : int; stabilizes : bool }

type containment = {
  byz : int list;  (** the Byzantine set, sorted *)
  fates : node_fate list;  (** correct nodes, ascending *)
  stabilized_fraction : float;
      (** fraction of correct nodes that stabilize (1.0 when there are
          none) *)
  radius : int option;
      (** containment radius: the largest distance from [B] at which some
          correct node's output can be made to diverge; [None] when every
          correct node stabilizes *)
  witness : witness option;
      (** an oscillation witness for a diverging correct node at maximal
          distance, replayable with {!replay} / {!replay_packed} *)
}

(** [containment p ~input ~byz ~r ~max_states] decides, per correct node,
    whether its output stabilizes under every Byzantine behavior, and
    keys the damage by graph distance from [B]. [Error needed] when the
    exploration budget is exceeded (as in {!check_output}'s
    [Too_large]). *)
val containment :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  byz:int list ->
  r:int ->
  max_states:int ->
  (containment, int) result

(** [replay p ~input ~byz w] re-runs the witness on
    {!Stateless_core.Engine} — correct members of each activation set
    react, then the step's Byzantine writes land — and confirms the
    cycle returns to its starting labeling while the correct nodes
    change a label or some correct node emits two distinct outputs
    within it. *)
val replay :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  byz:int list ->
  witness ->
  bool

(** [replay_packed] is {!replay} through {!Stateless_core.Kernel} on
    packed int label codes — the witness must reproduce the same
    divergence on both execution engines. *)
val replay_packed :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  byz:int list ->
  witness ->
  bool
