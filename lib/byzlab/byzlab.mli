(** Byzantine-node attack layer over the execution engines.

    A designated set [B] of nodes runs an attack {!strategy} instead of
    the protocol: on each scheduled activation a Byzantine node
    overwrites its out-edges with labels of the strategy's choosing,
    immediately after the scheduled correct nodes' reactions land.

    The boxed stepper ({!Boxed}) runs on boxed configurations through
    {!Stateless_core.Engine.step_into}; the packed stepper ({!Packed})
    on int label codes through {!Stateless_core.Kernel.step_into}. Both
    consume identical RNG draw sequences, so one seed yields the same
    attack on both (differential twins), and with [B = ∅] neither
    strategy ever acts — no draw occurs and the steppers are
    bit-identical to the fault-free engines.

    The campaign layer sweeps Byzantine placements over Example 1
    cliques, a relay ring and the D-counter through
    {!Stateless_core.Parrun} (bit-identical for every domain count),
    measuring stabilized fraction, empirical containment radius and
    recovery time per placement. *)

type strategy =
  | Seeded_random
      (** one uniform label code per out-edge of each activated
          Byzantine node, drawn from the stepper's seeded RNG
          (activation order, then out-edge order) *)
  | Anti_majority
      (** deterministically write the label code rarest in the visible
          pre-step labeling (ties to the smallest code) *)
  | Replay of Byzcheck.witness
      (** play the witness's scripted write stream: prefix once, then
          the cycle forever (no RNG) *)

val strategy_name : strategy -> string

(** CLI-facing names: ["random"] and ["anti-majority"] ([Replay] carries
    a witness and is not nameable). *)
val strategy_by_name : string -> strategy option

val strategy_names : string list

(** Packed Byzantine stepper over {!Stateless_core.Kernel}. *)
module Packed : sig
  type ('x, 'l) t

  (** [create p ~input ~byz ~strategy ~schedule ~seed ~init] builds a
      stepper with Byzantine set [byz]. [kernel] reuses a prebuilt
      kernel (they are not domain-safe — one per domain).
      @raise Invalid_argument on an out-of-range or duplicate Byzantine
      node, or a [Replay] witness writing a non-Byzantine edge. *)
  val create :
    ?kernel:('x, 'l) Stateless_core.Kernel.t ->
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    byz:int list ->
    strategy:strategy ->
    schedule:Stateless_core.Schedule.t ->
    seed:int ->
    init:'l Stateless_core.Protocol.config ->
    ('x, 'l) t

  val step : ('x, 'l) t -> unit
  val run : ('x, 'l) t -> steps:int -> unit

  (** Read-only views of the current packed state (invalidated by the
      next {!step}). *)
  val labels : ('x, 'l) t -> int array

  val outputs : ('x, 'l) t -> int array
  val steps_done : ('x, 'l) t -> int

  (** Total Byzantine edge writes performed so far (0 forever when
      [byz = []]). *)
  val writes_done : ('x, 'l) t -> int

  val config : ('x, 'l) t -> 'l Stateless_core.Protocol.config
end

(** Boxed Byzantine stepper over {!Stateless_core.Engine} — the
    differential twin of {!Packed}. *)
module Boxed : sig
  type ('x, 'l) t

  val create :
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    byz:int list ->
    strategy:strategy ->
    schedule:Stateless_core.Schedule.t ->
    seed:int ->
    init:'l Stateless_core.Protocol.config ->
    ('x, 'l) t

  val step : ('x, 'l) t -> unit
  val run : ('x, 'l) t -> steps:int -> unit
  val steps_done : ('x, 'l) t -> int
  val writes_done : ('x, 'l) t -> int
  val config : ('x, 'l) t -> 'l Stateless_core.Protocol.config
end

(** One attacked run: [deviant_steps] attack steps had some correct node
    deviating from the scenario's reference, [deviant_nodes] correct
    nodes ever deviated, [max_radius] is the largest hop distance from
    [B] of a deviating correct node (-1 when none did), and [recovery]
    is the post-attack recovery time (the Byzantine nodes resume correct
    behavior; [None] = never recovered within the budget). *)
type run_result = {
  deviant_steps : int;
  deviant_nodes : int;
  max_radius : int;
  recovery : int option;
}

type measure_fn =
  byz:int list ->
  strategy:strategy ->
  attack:int ->
  seed:int ->
  max_steps:int ->
  run_result

type batch_measure_fn =
  byzs:int list array ->
  strategy:strategy ->
  attack:int ->
  seeds:int array ->
  max_steps:int ->
  run_result array
(** Measures a contiguous block of the placement × seed grid: element
    [t] is exactly what {!measure_fn} returns for
    [(byzs.(t), seeds.(t))]. Attacks stay per-instance (each run's
    strategy decisions are coupled to its own trajectory); the
    fault-free post-attack recovery phase runs in lock-step through
    {!Stateless_core.Batch}. *)

type scenario = {
  name : string;
  schedule_name : string;
  nodes : int;
  placements : int list list;  (** default Byzantine placements swept *)
  fresh : unit -> measure_fn;
      (** build per-domain measurement state (kernels are not
          domain-safe) *)
  fresh_batch : unit -> batch_measure_fn;
      (** the batched twin over a shared kernel, bit-identical per index
          to [fresh]'s closure; also once per domain *)
}

(** Example 1 on K_n (default [n = 4]): reference = the healthy run's
    settled outputs; recovery = post-attack output settle time. *)
val example1 : ?n:int -> unit -> scenario

(** A unidirectional relay ring (default [n = 6]): every node forwards
    and outputs the label it reads; reference = all-zero outputs.
    Injected labels keep circulating after the attack, so the ring
    generally does not recover — a containment worst case. *)
val relay_ring : ?n:int -> unit -> scenario

(** The D-counter (default [n = 5], [d = 8]): a node deviates when its
    counter differs from the most common value among correct nodes;
    recovery = re-locking (d consecutive agreed synchronous steps). *)
val d_counter : ?n:int -> ?d:int -> unit -> scenario

val default_scenarios : unit -> scenario list
val scenario_names : string list
val scenario_by_name : ?n:int -> string -> scenario option

type level_stats = {
  byz : int list;
  runs : int;
  mean_deviant : float;  (** mean fraction of attack steps deviant *)
  mean_stabilized : float;
      (** mean fraction of correct nodes that never deviated *)
  worst_radius : int;
      (** max empirical containment radius over runs (-1 = contained) *)
  recovered : int;
  mean_recovery : float;
  p50 : int;
  p95 : int;
  worst : int;
}

type campaign = {
  scenario_name : string;
  schedule : string;
  strategy : string;
  attack : int;
  runs_per_level : int;
  levels : level_stats list;
}

(** Journal codec for one placement row: each run stored as
    [[deviant_steps, deviant_nodes, max_radius, recovery]] ([recovery]
    null when the run never recovered). Int-only, exact round-trip. *)
val codec : run_result array Stateless_campaign.Campaign.codec

(** [cells ~strategy sc] compiles the placement sweep into matrix
    cells — one per Byzantine placement, key ["byz/<scenario>/p<i>"],
    covering the placement's whole seed block. Deadlines are polled
    between seeds (or lock-step blocks when [batch > 1]); retries reseed
    by [attempt * Campaign.reseed_stride]. [Replay] strategies enter the
    config as a structural hash of the witness — journal replay across
    processes is only meaningful for the nameable strategies. *)
val cells :
  ?placements:int list list ->
  ?seeds:int ->
  ?attack:int ->
  ?max_steps:int ->
  ?seed0:int ->
  ?batch:int ->
  strategy:strategy ->
  scenario ->
  run_result array Stateless_campaign.Campaign.cell array

(** [run_matrix ~strategy sc] runs the placement sweep through the
    campaign orchestrator under [policy] and merges records in matrix
    order into the aggregated {!campaign} plus ok/timeout/error counts.
    A placement whose cell timed out or errored degrades to a fully
    stabilized, zero-deviation level. *)
val run_matrix :
  ?placements:int list list ->
  ?seeds:int ->
  ?attack:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  ?policy:Stateless_campaign.Campaign.policy ->
  strategy:strategy ->
  scenario ->
  campaign * Stateless_campaign.Campaign.counts

(** [run ~strategy sc] sweeps [placements] (default [sc.placements]) ×
    [seeds] runs each (seeds [seed0 .. seed0 + seeds - 1], default
    [seed0 = 1]) through the campaign orchestrator — results are
    bit-identical for every [domains]. [batch] (default 1) measures
    blocks of that many seeds through the scenario's batched
    context; campaigns are identical for every [batch] value.
    Equivalent to [fst (run_matrix ...)] under the default policy. *)
val run :
  ?placements:int list list ->
  ?seeds:int ->
  ?attack:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  strategy:strategy ->
  scenario ->
  campaign

val print_campaign : out_channel -> campaign -> unit

(** [write_json ?host ?batch ?cells ?certification oc campaigns] renders
    BENCH_byz JSON: a host block, an optional batch block (the lock-step
    batch size campaigns were re-run at and whether they matched the
    per-instance campaigns exactly — CI greps for
    ["\"identical\": false"]), the orchestrator's [(ok, timeout, error)]
    cell accounting, certification rows (prebuilt JSON objects) and
    per-placement campaign rows. *)
val write_json :
  ?host:string ->
  ?batch:int * bool ->
  ?cells:int * int * int ->
  ?certification:string list ->
  out_channel ->
  campaign list ->
  unit
