(* Exhaustive certification of (r, B)-stabilization under Byzantine nodes.

   The plain checker ({!Stateless_checker.Checker}) decides whether a
   protocol r-stabilizes from every initial labeling under every r-fair
   schedule, assuming every node runs its reaction function. This module
   strengthens the adversary along the classic companion axis to
   self-stabilization: a designated set B of nodes is {e Byzantine} — on
   every activation such a node writes arbitrary labels of its own
   choosing onto its out-edges instead of running the protocol. The
   question becomes whether the {e correct} nodes' labels (resp.
   outputs) still stabilize under every Byzantine behavior and every
   r-fair schedule.

   The states-graph is exactly the plain checker's — a state is
   (labeling, fairness countdown), keyed [lab * cd_count + cd] — but the
   transition relation branches: an activation set that includes
   Byzantine nodes yields one out-edge per assignment of labels to the
   activated Byzantine nodes' out-edges (all of Σ per edge). Correct
   nodes in the set react through the transition cache as usual;
   Byzantine activations also tick the fairness countdown, because a
   schedule that activates a Byzantine node gives it its write
   opportunity (doing nothing is one of its choices, since rewriting the
   current label is an admissible assignment). The [changed] bit of an
   edge tracks only the correct nodes' step — Byzantine writes never
   count as protocol divergence — and output conflicts are only
   collected at correct nodes. With B = ∅ no branching happens, every
   mask keeps its single out-edge and the graph is literally the plain
   checker's states-graph, so verdicts agree by construction (the
   differential tests assert this on the standard small instances).

   Witnesses extend the checker's lassos with the Byzantine choices: a
   step is an activation set plus the (edge, code) writes the Byzantine
   nodes perform after the correct nodes' reactions land. {!replay}
   re-verifies a witness on the boxed engine and {!replay_packed} on the
   packed kernel.

   Beyond the global verdict, {!containment} reports each correct
   node's fate separately and keys it by graph distance from B: the
   containment radius is the largest distance at which some correct
   node can still be made to output-diverge. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Label = Stateless_core.Label
module Vec = Stateless_checker.Vec
module Csr = Stateless_checker.Csr
module Trans_cache = Stateless_checker.Trans_cache
module Digraph = Stateless_graph.Digraph
module Algorithms = Stateless_graph.Algorithms

type write = { edge : int; code : int }
type step = { active : int list; writes : write list }

type witness = {
  init_code : int;
  prefix : step list;
  cycle : step list;
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }

type stats = { states : int; edges : int }

let last_stats_ref : stats option ref = ref None
let last_stats () = !last_stats_ref

let ipow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let nodes_of_mask n mask =
  let rec loop i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i - 1) (i :: acc)
    else loop (i - 1) acc
  in
  loop (n - 1) []

(* Saturating arithmetic for the size estimate reported by Too_large. *)
let mul_sat a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let ipow_sat base e =
  let rec loop acc e = if e = 0 then acc else loop (mul_sat acc base) (e - 1) in
  loop 1 e

let byz_mask_of n byz =
  let mask = ref 0 in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Byzcheck: node %d out of range" i);
      if !mask land (1 lsl i) <> 0 then
        invalid_arg (Printf.sprintf "Byzcheck: duplicate Byzantine node %d" i);
      mask := !mask lor (1 lsl i))
    byz;
  !mask

(* The explored states-graph. State id -> key [lab * cd_count + cd] —
   exactly the plain checker's key space, whatever B is. Edge cells live
   in the CSR; [echoice] runs in lockstep with the CSR's flat cell buffer
   (one push per edge) and holds the Byzantine assignment taken on that
   edge — a mixed-radix code over the activated Byzantine nodes'
   out-edges (ascending node order, each node's out-edge order, first
   edge most significant) — or -1 when no Byzantine node was activated. *)
type ('x, 'l) explored = {
  n : int;
  m : int;
  card : int;
  r : int;
  byz : int list;
  byz_mask : int;
  lab_count : int;
  cd_count : int;  (* r^n *)
  keys : int Vec.t;
  csr : Csr.t;
  echoice : int Vec.t;
  parent : int Vec.t;
  parent_mask : int Vec.t;
  parent_choice : int Vec.t;
  cache : ('x, 'l) Trans_cache.t;
  weight : int array;  (* weight.(e) = card^(m-1-e): edge 0 most significant *)
  out_edges : int array array;
}

(* Concatenated out-edges of the Byzantine nodes in [bz] (a submask of
   byz_mask), ascending node order. *)
let byz_edges_of ex bz =
  let acc = ref [] in
  for i = ex.n - 1 downto 0 do
    if bz land (1 lsl i) <> 0 then
      for j = Array.length ex.out_edges.(i) - 1 downto 0 do
        acc := ex.out_edges.(i).(j) :: !acc
      done
  done;
  Array.of_list !acc

(* Decode assignment code [a] over edge list [edges] (first edge most
   significant) into (edge, code) writes. *)
let writes_of_choice ~card edges a =
  let l = Array.length edges in
  let rem = ref a in
  let out = ref [] in
  for i = l - 1 downto 0 do
    out := { edge = edges.(i); code = !rem mod card } :: !out;
    rem := !rem / card
  done;
  !out

let explore p ~input ~byz ~r ~max_states =
  let n = Protocol.num_nodes p in
  if n > 20 then invalid_arg "Byzcheck: too many nodes for subset enumeration";
  if r < 1 then invalid_arg "Byzcheck: r must be >= 1";
  let byz_mask = byz_mask_of n byz in
  match Protocol.labelings_count p with
  | None -> Error max_int
  | Some lab_count ->
      let m = Protocol.num_edges p in
      let card = p.Protocol.space.Label.card in
      let cd_count = ipow r n in
      let out_edges = Array.init n (Digraph.out_edges p.Protocol.graph) in
      (* Worst per-activation Byzantine branching factor: all of B active
         at once. The state space itself never grows with B, but the edge
         space does, so Too_large budgets states x branching. *)
      let byz_out =
        List.fold_left (fun acc i -> acc + Array.length out_edges.(i)) 0 byz
      in
      let branch = ipow_sat card byz_out in
      let total = mul_sat lab_count cd_count in
      if mul_sat total branch > max_states then
        Error (mul_sat total branch)
      else begin
        let csr = Csr.create ~n ~capacity:(min total 65536) () in
        if total - 1 > Csr.max_succ csr then
          invalid_arg "Byzcheck: state space too large for edge packing";
        let ex =
          {
            n;
            m;
            card;
            r;
            byz = List.sort_uniq compare byz;
            byz_mask;
            lab_count;
            cd_count;
            keys = Vec.create ~capacity:(min total 65536) ~dummy:0 ();
            csr;
            echoice = Vec.create ~capacity:1024 ~dummy:(-1) ();
            parent = Vec.create ~dummy:(-1) ();
            parent_mask = Vec.create ~dummy:0 ();
            parent_choice = Vec.create ~dummy:(-1) ();
            cache = Trans_cache.create p ~input ~lab_count;
            weight = Array.init m (fun e -> ipow card (m - 1 - e));
            out_edges;
          }
        in
        let state_of_key = Array.make total (-1) in
        let intern key ~parent ~mask ~choice =
          let id = Array.unsafe_get state_of_key key in
          if id >= 0 then id
          else begin
            let id = Vec.length ex.keys in
            Array.unsafe_set state_of_key key id;
            Vec.push ex.keys key;
            Vec.push ex.parent parent;
            Vec.push ex.parent_mask mask;
            Vec.push ex.parent_choice choice;
            id
          end
        in
        (* Initialization vertices: every labeling, full countdowns. *)
        for lab = 0 to lab_count - 1 do
          ignore
            (intern
               ((lab * cd_count) + (cd_count - 1))
               ~parent:(-1) ~mask:0 ~choice:(-1))
        done;
        (* Per-submask-of-B edge lists, memoized (2^|B| entries). *)
        let edges_tbl : (int, int array) Hashtbl.t = Hashtbl.create 16 in
        let edges_of bz =
          match Hashtbl.find_opt edges_tbl bz with
          | Some e -> e
          | None ->
              let e = byz_edges_of ex bz in
              Hashtbl.replace edges_tbl bz e;
              e
        in
        let rpow = Array.init n (fun i -> ipow r (n - 1 - i)) in
        let sum_rpow = Array.fold_left ( + ) 0 rpow in
        let add = Array.make n 0 in
        let pow2n = 1 lsl n in
        let corr_of = lnot byz_mask in
        let lo = ref 0 in
        while !lo < Vec.length ex.keys do
          let hi = Vec.length ex.keys in
          for id = !lo to hi - 1 do
            let key = Vec.unsafe_get ex.keys id in
            let cd = key mod cd_count in
            let lab = key / cd_count in
            let forced = ref 0 in
            for i = 0 to n - 1 do
              let d = cd / Array.unsafe_get rpow i mod r in
              Array.unsafe_set add i ((r - d) * Array.unsafe_get rpow i);
              if d = 0 then forced := !forced lor (1 lsl i)
            done;
            let forced = !forced in
            let base_cd = cd - sum_rpow in
            for mask = 1 to pow2n - 1 do
              if mask land forced = forced then begin
                (* Correct nodes react; an all-Byzantine activation set is
                   a pure adversarial step (mask 0 is a no-op for the
                   transition cache). *)
                let packed =
                  Trans_cache.step ex.cache ~lab_code:lab
                    ~mask:(mask land corr_of)
                in
                let lab1 = packed lsr 1 in
                let changed = packed land 1 in
                (* The countdown ticks for everybody activated: a schedule
                   that picks a Byzantine node has given it its turn. *)
                let cdsum = ref base_cd in
                for i = 0 to n - 1 do
                  if mask land (1 lsl i) <> 0 then
                    cdsum := !cdsum + Array.unsafe_get add i
                done;
                let cd' = !cdsum in
                let bz = mask land byz_mask in
                if bz = 0 then begin
                  let succ =
                    intern
                      ((lab1 * cd_count) + cd')
                      ~parent:id ~mask ~choice:(-1)
                  in
                  Csr.push_edge ex.csr ~succ ~mask ~changed;
                  Vec.push ex.echoice (-1)
                end
                else begin
                  (* Branch over every assignment of labels to the
                     activated Byzantine nodes' out-edges. *)
                  let edges = edges_of bz in
                  let l = Array.length edges in
                  let count = ipow card l in
                  for a = 0 to count - 1 do
                    let lab2 = ref lab1 in
                    let rem = ref a in
                    for i = l - 1 downto 0 do
                      let e = Array.unsafe_get edges i in
                      let c = !rem mod card in
                      rem := !rem / card;
                      let w = Array.unsafe_get ex.weight e in
                      let cur = lab1 / w mod card in
                      lab2 := !lab2 + ((c - cur) * w)
                    done;
                    let succ =
                      intern
                        ((!lab2 * cd_count) + cd')
                        ~parent:id ~mask ~choice:a
                    in
                    (* The changed bit tracks only the correct nodes'
                       step: Byzantine writes are not divergence. *)
                    Csr.push_edge ex.csr ~succ ~mask ~changed;
                    Vec.push ex.echoice a
                  done
                end
              end
            done;
            Csr.end_row ex.csr
          done;
          lo := hi
        done;
        last_stats_ref :=
          Some { states = Vec.length ex.keys; edges = Csr.num_edges ex.csr };
        Ok ex
      end

(* Iterative Tarjan over the CSR graph, as in the channel checker. *)
let scc_of_explored ex =
  let count = Vec.length ex.keys in
  let index = Array.make count (-1) in
  let lowlink = Array.make count 0 in
  let on_stack = Array.make count false in
  let comp = Array.make count (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let call = Stack.create () in
  let csr = ex.csr in
  for root = 0 to count - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, 0) call;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, child = Stack.pop call in
        if child < Csr.degree csr v then begin
          Stack.push (v, child + 1) call;
          let u = Csr.succ csr v child in
          if index.(u) < 0 then begin
            index.(u) <- !next_index;
            lowlink.(u) <- !next_index;
            incr next_index;
            Stack.push u stack;
            on_stack.(u) <- true;
            Stack.push (u, 0) call
          end
          else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let u = Stack.pop stack in
              on_stack.(u) <- false;
              comp.(u) <- !next_comp;
              if u = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  comp

(* Shortest intra-component path src -> dst as (mask, choice) pairs. *)
let path_within_scc ex comp ~src ~dst =
  if src = dst then Some []
  else begin
    let count = Vec.length ex.keys in
    let pred = Array.make count (-1) in
    let pred_mask = Array.make count 0 in
    let pred_choice = Array.make count (-1) in
    let queue = Queue.create () in
    pred.(src) <- src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let base = Csr.row_start ex.csr v in
      let deg = Csr.degree ex.csr v in
      let j = ref 0 in
      while (not !found) && !j < deg do
        let w = Csr.cell ex.csr (base + !j) in
        let u = Csr.succ_of_word ex.csr w in
        if comp.(u) = comp.(src) && pred.(u) < 0 then begin
          pred.(u) <- v;
          pred_mask.(u) <- Csr.mask_of_word ex.csr w;
          pred_choice.(u) <- Vec.get ex.echoice (base + !j);
          if u = dst then found := true else Queue.add u queue
        end;
        incr j
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then acc
        else walk pred.(v) ((pred_mask.(v), pred_choice.(v)) :: acc)
      in
      Some (walk dst [])
    end
  end

let step_of_pair ex (mask, choice) =
  let writes =
    if choice < 0 then []
    else writes_of_choice ~card:ex.card (byz_edges_of ex (mask land ex.byz_mask)) choice
  in
  { active = nodes_of_mask ex.n mask; writes }

let steps_of ex pairs = List.map (step_of_pair ex) pairs

let path_from_root ex id =
  let rec walk id acc =
    if Vec.get ex.parent id < 0 then (id, acc)
    else
      walk (Vec.get ex.parent id)
        ((Vec.get ex.parent_mask id, Vec.get ex.parent_choice id) :: acc)
  in
  let root, pairs = walk id [] in
  let lab = Vec.get ex.keys root / ex.cd_count in
  (lab, pairs)

let make_witness ex ~cycle_entry ~cycle_pairs =
  let init_code, prefix_pairs = path_from_root ex cycle_entry in
  {
    init_code;
    prefix = steps_of ex prefix_pairs;
    cycle = steps_of ex cycle_pairs;
  }

let check_label p ~input ~byz ~r ~max_states =
  match explore p ~input ~byz ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      (* A correct-step-changing edge inside an SCC: the correct nodes can
         be made to change labels infinitely often. *)
      let found = ref None in
      let count = Vec.length ex.keys in
      let id = ref 0 in
      while !found == None && !id < count do
        let base = Csr.row_start ex.csr !id in
        let deg = Csr.degree ex.csr !id in
        let cid = comp.(!id) in
        let j = ref 0 in
        while !found == None && !j < deg do
          let w = Csr.cell ex.csr (base + !j) in
          if Csr.changed_of_word w = 1 then begin
            let u = Csr.succ_of_word ex.csr w in
            if comp.(u) = cid then
              found :=
                Some
                  ( !id,
                    u,
                    (Csr.mask_of_word ex.csr w, Vec.get ex.echoice (base + !j))
                  )
          end;
          incr j
        done;
        incr id
      done;
      match !found with
      | None -> Stabilizing
      | Some (v, u, pair) -> (
          match path_within_scc ex comp ~src:u ~dst:v with
          | None -> assert false (* u, v lie in the same SCC *)
          | Some back ->
              Oscillating
                (make_witness ex ~cycle_entry:v ~cycle_pairs:(pair :: back))))

(* One output conflict at a correct node: two intra-SCC transitions where
   the node reacts and emits distinct outputs. *)
type conflict = {
  c_src0 : int;
  c_pair0 : int * int;
  c_src1 : int;
  c_pair1 : int * int;
  c_dst1 : int;
}

(* Build the two-conflict lasso cycle src0 -e0-> dst0 ~~> src1 -e1-> dst1
   ~~> src0, as in the channel checker. *)
let witness_of_conflict ex comp c =
  let mask0, choice0 = c.c_pair0 in
  let dst0 =
    let base = Csr.row_start ex.csr c.c_src0 in
    let rec find j =
      let w = Csr.cell ex.csr (base + j) in
      if
        Csr.mask_of_word ex.csr w = mask0
        && Vec.get ex.echoice (base + j) = choice0
        && comp.(Csr.succ_of_word ex.csr w) = comp.(c.c_src0)
      then Csr.succ_of_word ex.csr w
      else find (j + 1)
    in
    find 0
  in
  match
    ( path_within_scc ex comp ~src:dst0 ~dst:c.c_src1,
      path_within_scc ex comp ~src:c.c_dst1 ~dst:c.c_src0 )
  with
  | Some mid, Some back ->
      let cycle_pairs = ((mask0, choice0) :: mid) @ (c.c_pair1 :: back) in
      make_witness ex ~cycle_entry:c.c_src0 ~cycle_pairs
  | _ -> assert false

(* Scan every intra-SCC transition and record, per correct node, the first
   output conflict found ([stop_at_first] ends the scan at the very first
   conflict at any node, which is all the global verdict needs). *)
let conflict_scan ex comp ~stop_at_first =
  let count = Vec.length ex.keys in
  let seen : (int * int, int * (int * (int * int))) Hashtbl.t =
    Hashtbl.create 1024
  in
  let conflicts : (int, conflict) Hashtbl.t = Hashtbl.create 16 in
  let corr_of = lnot ex.byz_mask in
  let stop = ref false in
  let id = ref 0 in
  while (not !stop) && !id < count do
    let lab = Vec.unsafe_get ex.keys !id / ex.cd_count in
    let base = Csr.row_start ex.csr !id in
    let deg = Csr.degree ex.csr !id in
    let cid = comp.(!id) in
    let j = ref 0 in
    while (not !stop) && !j < deg do
      let w = Csr.cell ex.csr (base + !j) in
      let u = Csr.succ_of_word ex.csr w in
      if comp.(u) = cid then begin
        let mask = Csr.mask_of_word ex.csr w in
        let choice = Vec.get ex.echoice (base + !j) in
        List.iter
          (fun node ->
            if not (Hashtbl.mem conflicts node) then begin
              let y = Trans_cache.output ex.cache ~lab_code:lab ~node in
              match Hashtbl.find_opt seen (cid, node) with
              | None ->
                  Hashtbl.replace seen (cid, node)
                    (y, (!id, (mask, choice)))
              | Some (y0, (src0, pair0)) ->
                  if y0 <> y then begin
                    Hashtbl.replace conflicts node
                      {
                        c_src0 = src0;
                        c_pair0 = pair0;
                        c_src1 = !id;
                        c_pair1 = (mask, choice);
                        c_dst1 = u;
                      };
                    if stop_at_first then stop := true
                  end
            end)
          (nodes_of_mask ex.n (mask land corr_of))
      end;
      incr j
    done;
    incr id
  done;
  conflicts

let check_output p ~input ~byz ~r ~max_states =
  match explore p ~input ~byz ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      let conflicts = conflict_scan ex comp ~stop_at_first:true in
      match Hashtbl.fold (fun _ c _ -> Some c) conflicts None with
      | None -> Stabilizing
      | Some c -> Oscillating (witness_of_conflict ex comp c))

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

type node_fate = { node : int; distance : int; stabilizes : bool }

type containment = {
  byz : int list;
  fates : node_fate list;  (* correct nodes, ascending *)
  stabilized_fraction : float;
  radius : int option;  (* None when every correct node stabilizes *)
  witness : witness option;  (* diverging node at maximal distance *)
}

(* Hop distance from the Byzantine set (min over its members); -1 for
   unreachable nodes, and for every node when B is empty. *)
let distances_from_byz g byz =
  let n = Digraph.num_nodes g in
  let dist = Array.make n (-1) in
  List.iter
    (fun b ->
      let d = Algorithms.bfs_distances g b in
      for i = 0 to n - 1 do
        if d.(i) >= 0 && (dist.(i) < 0 || d.(i) < dist.(i)) then
          dist.(i) <- d.(i)
      done)
    byz;
  dist

let containment p ~input ~byz ~r ~max_states =
  match explore p ~input ~byz ~r ~max_states with
  | Error needed -> Error needed
  | Ok ex ->
      let comp = scc_of_explored ex in
      let conflicts = conflict_scan ex comp ~stop_at_first:false in
      let dist = distances_from_byz p.Protocol.graph ex.byz in
      let fates = ref [] in
      let stable = ref 0 and correct = ref 0 in
      let radius = ref (-1) in
      let worst = ref None in
      for node = ex.n - 1 downto 0 do
        if ex.byz_mask land (1 lsl node) = 0 then begin
          incr correct;
          let diverges = Hashtbl.mem conflicts node in
          if diverges then begin
            if dist.(node) > !radius then begin
              radius := dist.(node);
              worst := Some node
            end
          end
          else incr stable;
          fates :=
            { node; distance = dist.(node); stabilizes = not diverges }
            :: !fates
        end
      done;
      let witness =
        match !worst with
        | None -> None
        | Some node ->
            Some (witness_of_conflict ex comp (Hashtbl.find conflicts node))
      in
      Ok
        {
          byz = ex.byz;
          fates = !fates;
          stabilized_fraction =
            (if !correct = 0 then 1.0 else float !stable /. float !correct);
          radius = (if !worst = None then None else Some !radius);
          witness;
        }

(* ------------------------------------------------------------------ *)
(* Witness replay                                                      *)
(* ------------------------------------------------------------------ *)

(* Replay a witness on the boxed engine: the correct members of the
   activation set react, then the step's Byzantine writes land. The cycle
   must return to its starting labeling and the *correct nodes* must
   either change the labeling inside the cycle or emit two distinct
   outputs at some node. *)
let replay p ~input ~byz w =
  let n = Protocol.num_nodes p in
  let byz_mask = byz_mask_of n byz in
  let decode = p.Protocol.space.Label.decode in
  let correct_of active =
    List.filter (fun i -> byz_mask land (1 lsl i) = 0) active
  in
  let apply_writes (c : 'l Protocol.config) writes =
    List.iter
      (fun { edge; code } -> c.Protocol.labels.(edge) <- decode code)
      writes
  in
  let apply_step config { active; writes } =
    let next = Engine.step p ~input config ~active:(correct_of active) in
    apply_writes next writes;
    next
  in
  let init = Protocol.decode_config p w.init_code in
  let at_cycle = List.fold_left apply_step init w.prefix in
  let start_key = Protocol.config_key p at_cycle in
  let label_changed = ref false in
  let output_changed = ref false in
  let outputs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let config = ref at_cycle in
  List.iter
    (fun s ->
      let corr = correct_of s.active in
      let before = Protocol.config_key p !config in
      List.iter
        (fun node ->
          let _, y = Protocol.apply p ~input !config node in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        corr;
      (* Divergence is judged on the correct nodes' step alone, before
         the step's Byzantine writes are applied. *)
      let stepped = Engine.step p ~input !config ~active:corr in
      if not (String.equal before (Protocol.config_key p stepped)) then
        label_changed := true;
      apply_writes stepped s.writes;
      config := stepped)
    w.cycle;
  let returns = String.equal start_key (Protocol.config_key p !config) in
  returns && (!label_changed || !output_changed)

(* The packed twin: the same judgement through {!Kernel.step_into} on int
   label codes. *)
let replay_packed p ~input ~byz w =
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  let byz_mask = byz_mask_of n byz in
  let correct_of active =
    List.filter (fun i -> byz_mask land (1 lsl i) = 0) active
  in
  let kern = Kernel.create p ~input in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let src_o = Array.make n 0 and dst_o = Array.make n 0 in
  Kernel.load kern (Protocol.decode_config p w.init_code) ~labels:src
    ~outputs:src_o;
  let sref = ref src and dref = ref dst in
  let soref = ref src_o and doref = ref dst_o in
  let label_changed = ref false in
  let output_changed = ref false in
  let outputs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let do_step ~judge { active; writes } =
    let corr = correct_of active in
    Kernel.step_into kern ~src:!sref ~src_outputs:!soref ~dst:!dref
      ~dst_outputs:!doref ~active:corr;
    if judge then begin
      let changed = ref false in
      for e = 0 to m - 1 do
        if !dref.(e) <> !sref.(e) then changed := true
      done;
      if !changed then label_changed := true;
      List.iter
        (fun node ->
          let y = !doref.(node) in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        corr
    end;
    List.iter (fun { edge; code } -> !dref.(edge) <- code) writes;
    let tl = !sref and tlo = !soref in
    sref := !dref;
    soref := !doref;
    dref := tl;
    doref := tlo
  in
  List.iter (do_step ~judge:false) w.prefix;
  let start = Array.copy !sref in
  List.iter (do_step ~judge:true) w.cycle;
  let returns = ref true in
  for e = 0 to m - 1 do
    if start.(e) <> !sref.(e) then returns := false
  done;
  !returns && (!label_changed || !output_changed)
