(** Snakes in the box (induced cycles in hypercubes) — the combinatorial
    engine of Theorem 4.1's communication-complexity lower bound.

    A snake-in-the-box is an induced simple cycle of the hypercube [Q_d]
    (Definition B.2): consecutive vertices are adjacent, and no other pair
    of cycle vertices is adjacent. Abbott–Katchalski: the maximum length
    [s(d)] satisfies [λ 2^d ≤ s(d) ≤ 2^(d-1)] with [λ ≥ 0.3], which is what
    makes the Theorem 4.1 protocols exponentially hard to verify.

    Vertices are [d]-bit integers. *)

(** Raised by the reduction oscillation probes below when the engine reaches
    no verdict within their step bound — which, for these synchronous (and
    block-periodic) schedules, would indicate a miscalibrated bound rather
    than a property of the instance. Carries the reduction name, the
    hypercube dimension of the instance, and the exhausted bound. *)
exception
  Step_bound_exhausted of { reduction : string; d : int; max_steps : int }

(** [is_induced_cycle d cycle] — the verifier for Definition B.2: length at
    least 4, all vertices distinct, consecutive (and wrap-around) vertices
    adjacent, non-consecutive vertices non-adjacent. *)
val is_induced_cycle : int -> int list -> bool

(** [search d ~node_budget] finds a longest induced cycle through 0 and 1 by
    depth-first search, exact if the budget is not exhausted. Returns the
    cycle and whether the search completed exhaustively. *)
val search : int -> node_budget:int -> int list * bool

(** [best_known d] for [2 <= d <= 7]: 4, 6, 8, 14, 26, 48. *)
val best_known : int -> int

(** A good snake for experiments: exact search result for [d <= 5], a known
    optimal coil for [d = 6]. *)
val example : int -> int list

(** {2 The Theorem 4.1 protocols (communication hardness of verifying
    self-stabilization)} *)

(** The equality-based reduction of Theorem B.4 (regime [r ≤ 2^(n/2)],
    specialized to r = 1 as in the paper's warm-up): a protocol on the
    clique [K_n] (with [n = d + 2]) built from Alice's input [x] and Bob's
    input [y], both of length [|S|], such that the protocol is label
    1-stabilizing iff [x ≠ y]. Since equality needs [|S| = 2^Ω(n)] bits of
    communication, so does deciding label stabilization.

    Node 0 plays Alice (sends [x_i] when the other nodes spell snake vertex
    [s_i], else 1); node 1 plays Bob (sends [y_i], else 0); nodes 2..n-1
    each own one hypercube coordinate and walk the configuration along the
    snake while Alice and Bob agree, and collapse it to 0^d otherwise. *)
module Eq_reduction : sig
  type t = private {
    d : int;
    snake : int array;
    protocol : (unit, bool) Stateless_core.Protocol.t;
  }

  (** [make d ~x ~y] with [|x| = |y| =] length of {!example}[ d]. *)
  val make : int -> x:bool array -> y:bool array -> t

  val input : t -> unit array

  (** The oscillation seed from Claim B.6: labeling [(α, α, s_0)] with
      [α = x_0]. *)
  val snake_init : t -> bool Stateless_core.Protocol.config

  (** [synchronously_oscillates t] runs the synchronous schedule from
      {!snake_init} (and from the all-zeros labeling) and reports whether
      the labeling fails to converge — by Claims B.5/B.6 this happens iff
      [x = y]. *)
  val synchronously_oscillates : t -> bool

  (** Exhaustive version: tries every initial labeling (only for small
      [d]); true iff some synchronous run oscillates. *)
  val oscillates_from_some_labeling : t -> bool
end

(** The set-disjointness-based reduction of Theorem B.7 (regime
    [r ≥ 2^(n/2)]): Alice and Bob hold characteristic vectors [x, y] of set
    families; the protocol oscillates under a suitable r-fair schedule iff
    the sets intersect. The index map [I] folds the snake into [q] blocks;
    [q] must divide the snake length. *)
module Disj_reduction : sig
  type t = private {
    d : int;
    q : int;
    snake : int array;
    protocol : (unit, bool) Stateless_core.Protocol.t;
  }

  (** [make d ~q ~x ~y] with [|x| = |y| = q] and [q] dividing the length
      of {!example}[ d]. *)
  val make : int -> q:int -> x:bool array -> y:bool array -> t

  val input : t -> unit array

  (** The r-fairness the adversarial schedule respects: [q + 2]. *)
  val fairness : t -> int

  (** [oscillates_at t k] plays the proof's schedule targeting index [k]:
      park the configuration on the snake, advance it [q] steps per phase,
      and try to refresh the Alice/Bob labels at block index [k]. True iff
      the run oscillates — which happens iff [x_k && y_k]. *)
  val oscillates_at : t -> int -> bool

  (** True iff {!oscillates_at} succeeds for some index: iff the sets
      intersect. *)
  val oscillates : t -> bool
end
