module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Engine = Stateless_core.Engine
module Schedule = Stateless_core.Schedule
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

exception
  Step_bound_exhausted of { reduction : string; d : int; max_steps : int }

let neighbors d v = List.init d (fun b -> v lxor (1 lsl b))

let adjacent v w =
  let diff = v lxor w in
  diff <> 0 && diff land (diff - 1) = 0

let is_induced_cycle d cycle =
  let arr = Array.of_list cycle in
  let len = Array.length arr in
  len >= 4
  && Array.for_all (fun v -> v >= 0 && v < 1 lsl d) arr
  && List.length (List.sort_uniq compare cycle) = len
  && begin
       let ok = ref true in
       for i = 0 to len - 1 do
         for j = i + 1 to len - 1 do
           let consecutive = j = i + 1 || (i = 0 && j = len - 1) in
           if consecutive then begin
             if not (adjacent arr.(i) arr.(j)) then ok := false
           end
           else if adjacent arr.(i) arr.(j) then ok := false
         done
       done;
       !ok
     end

let search d ~node_budget =
  if d < 2 then invalid_arg "Snake.search: need d >= 2";
  let size = 1 lsl d in
  let count = Array.make size 0 in
  let used = Array.make size false in
  let path = Array.make (size + 1) 0 in
  let best = ref [] and best_len = ref 0 in
  let visited = ref 0 in
  let complete = ref true in
  let push v =
    used.(v) <- true;
    List.iter (fun u -> count.(u) <- count.(u) + 1) (neighbors d v)
  in
  let pop v =
    used.(v) <- false;
    List.iter (fun u -> count.(u) <- count.(u) - 1) (neighbors d v)
  in
  (* Canonical start: the cycle must pass through the edge 0 - 1, so fix
     path = [0; 1; ...]. *)
  push 0;
  push 1;
  path.(0) <- 0;
  path.(1) <- 1;
  let rec extend len =
    incr visited;
    if !visited > node_budget then complete := false
    else begin
      let v = path.(len - 1) in
      List.iter
        (fun u ->
          if not used.(u) then
            if count.(u) = 1 then begin
              (* Interior extension: u touches only its predecessor. *)
              path.(len) <- u;
              push u;
              extend (len + 1);
              pop u
            end
            else if
              (* Closing vertex: u touches exactly its predecessor and the
                 origin, completing an induced cycle of length len + 1. *)
              count.(u) = 2 && adjacent u 0 && len + 1 >= 4
              && len + 1 > !best_len
            then begin
              best_len := len + 1;
              path.(len) <- u;
              best := Array.to_list (Array.sub path 0 (len + 1))
            end)
        (neighbors d v)
    end
  in
  extend 2;
  (!best, !complete)

let best_known = function
  | 2 -> 4
  | 3 -> 6
  | 4 -> 8
  | 5 -> 14
  | 6 -> 26
  | 7 -> 48
  | d -> invalid_arg (Printf.sprintf "Snake.best_known: no entry for d = %d" d)

let example_cache : (int, int list) Hashtbl.t = Hashtbl.create 8

let example d =
  match Hashtbl.find_opt example_cache d with
  | Some s -> s
  | None ->
      let budget = if d <= 5 then max_int else 3_000_000 in
      let snake, _ = search d ~node_budget:budget in
      Hashtbl.replace example_cache d snake;
      snake

(* ------------------------------------------------------------------ *)
(* Shared machinery for the clique protocols of Theorem 4.1            *)
(* ------------------------------------------------------------------ *)

(* Translate the snake so that 0^d is off it (XOR is a hypercube
   automorphism). *)
let off_origin d snake =
  let on = Array.make (1 lsl d) false in
  List.iter (fun v -> on.(v) <- true) snake;
  let rec find u = if not on.(u) then u else find (u + 1) in
  let shift = find 0 in
  List.map (fun v -> v lxor shift) snake

let index_table d snake =
  let table = Array.make (1 lsl d) (-1) in
  Array.iteri (fun i v -> table.(v) <- i) snake;
  table

(* The successor-orientation bit function φ: node owning coordinate [c]
   computes its next bit from the other coordinates [u] (its own bit is
   invisible to it — reaction functions are stateless). The two completions
   of [u] differ along [c]; consistency holds because consecutive snake
   steps flip distinct coordinates (see Theorem B.4). *)
let phi snake index c u_bits =
  let len = Array.length snake in
  let v0 = u_bits land lnot (1 lsl c) in
  let v1 = u_bits lor (1 lsl c) in
  let i0 = index.(v0) and i1 = index.(v1) in
  if i0 >= 0 && i1 >= 0 then
    if snake.((i0 + 1) mod len) = v1 then true
    else if snake.((i1 + 1) mod len) = v0 then false
    else false
  else if i0 >= 0 then (snake.((i0 + 1) mod len) lsr c) land 1 = 1
  else if i1 >= 0 then (snake.((i1 + 1) mod len) lsr c) land 1 = 1
  else false

(* Incoming labels of node [i] on the clique, indexed by sender. *)
let by_sender g i incoming =
  let n = Digraph.num_nodes g in
  let labels = Array.make n false in
  Array.iteri
    (fun k e -> labels.(Digraph.src g e) <- incoming.(k))
    (Digraph.in_edges g i);
  labels

(* The hypercube vertex spelled by the coordinate nodes 2..n-1, optionally
   skipping the reader's own coordinate. *)
let vertex_of labels d ~skip =
  let v = ref 0 in
  for c = 0 to d - 1 do
    if c <> skip && labels.(c + 2) then v := !v lor (1 lsl c)
  done;
  !v

let uniform_init p (per_node : bool array) =
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  Array.iteri
    (fun i b ->
      Array.iter
        (fun e -> config.Protocol.labels.(e) <- b)
        (Digraph.out_edges g i))
    per_node;
  config

module Eq_reduction = struct
  type t = {
    d : int;
    snake : int array;
    protocol : (unit, bool) Protocol.t;
  }

  let make d ~x ~y =
    if d < 3 then invalid_arg "Eq_reduction.make: need d >= 3";
    let snake_list = off_origin d (example d) in
    let snake = Array.of_list snake_list in
    let len = Array.length snake in
    if Array.length x <> len || Array.length y <> len then
      invalid_arg
        (Printf.sprintf "Eq_reduction.make: inputs must have length %d" len);
    let index = index_table d snake in
    let n = d + 2 in
    let g = Builders.clique n in
    let react i () incoming =
      let labels = by_sender g i incoming in
      let bit =
        if i = 0 then begin
          let v = vertex_of labels d ~skip:(-1) in
          if index.(v) >= 0 then x.(index.(v)) else true
        end
        else if i = 1 then begin
          let v = vertex_of labels d ~skip:(-1) in
          if index.(v) >= 0 then y.(index.(v)) else false
        end
        else if not (Bool.equal labels.(0) labels.(1)) then false
        else phi snake index (i - 2) (vertex_of labels d ~skip:(i - 2))
      in
      (Array.map (fun _ -> bit) (Digraph.out_edges g i), if bit then 1 else 0)
    in
    let protocol =
      {
        Protocol.name = Printf.sprintf "eq-reduction-d%d" d;
        graph = g;
        space = Label.bool;
        react;
      }
    in
    { d; snake; protocol }

  let input t = Array.make (t.d + 2) ()

  let snake_init t =
    let n = t.d + 2 in
    let s0 = t.snake.(0) in
    let per_node =
      Array.init n (fun i ->
          if i <= 1 then true else (s0 lsr (i - 2)) land 1 = 1)
    in
    uniform_init t.protocol per_node

  let oscillates_from t init =
    let n = t.d + 2 in
    let max_steps = 16 * (1 lsl t.d) * n in
    match
      Engine.run_until_stable t.protocol ~input:(input t) ~init
        ~schedule:(Schedule.synchronous n) ~max_steps
    with
    | Engine.Oscillating _ -> true
    | Engine.Stabilized _ -> false
    | Engine.Exhausted _ ->
        raise
          (Step_bound_exhausted
             { reduction = "Eq_reduction"; d = t.d; max_steps })

  let synchronously_oscillates t = oscillates_from t (snake_init t)

  let oscillates_from_some_labeling t =
    (* Any synchronous run's tail is reached from a per-node-uniform
       configuration (after one round every sender is consistent), so
       enumerating the 2^n uniform starts decides oscillation. *)
    let n = t.d + 2 in
    let rec try_code code =
      if code >= 1 lsl n then false
      else
        let per_node = Array.init n (fun i -> (code lsr i) land 1 = 1) in
        if oscillates_from t (uniform_init t.protocol per_node) then true
        else try_code (code + 1)
    in
    try_code 0
end

module Disj_reduction = struct
  type t = {
    d : int;
    q : int;
    snake : int array;
    protocol : (unit, bool) Protocol.t;
  }

  let make d ~q ~x ~y =
    if d < 3 then invalid_arg "Disj_reduction.make: need d >= 3";
    let snake_list = off_origin d (example d) in
    let snake = Array.of_list snake_list in
    let len = Array.length snake in
    if q < 1 || len mod q <> 0 then
      invalid_arg
        (Printf.sprintf
           "Disj_reduction.make: q must divide the snake length %d" len);
    if Array.length x <> q || Array.length y <> q then
      invalid_arg "Disj_reduction.make: inputs must have length q";
    let index = index_table d snake in
    let n = d + 2 in
    let g = Builders.clique n in
    let react i () incoming =
      let labels = by_sender g i incoming in
      let bit =
        if i = 0 then begin
          let v = vertex_of labels d ~skip:(-1) in
          (not labels.(1)) && index.(v) >= 0 && x.(index.(v) mod q)
        end
        else if i = 1 then begin
          let v = vertex_of labels d ~skip:(-1) in
          (not labels.(0)) && index.(v) >= 0 && y.(index.(v) mod q)
        end
        else if labels.(0) && labels.(1) then
          phi snake index (i - 2) (vertex_of labels d ~skip:(i - 2))
        else false
      in
      (Array.map (fun _ -> bit) (Digraph.out_edges g i), if bit then 1 else 0)
    in
    let protocol =
      {
        Protocol.name = Printf.sprintf "disj-reduction-d%d-q%d" d q;
        graph = g;
        space = Label.bool;
        react;
      }
    in
    { d; q; snake; protocol }

  let input t = Array.make (t.d + 2) ()
  let fairness t = t.q + 2

  let oscillates_at t k =
    let n = t.d + 2 in
    let snake_nodes = List.init t.d (fun c -> c + 2) in
    let blocks =
      List.init t.q (fun _ -> snake_nodes) @ [ [ 0; 1 ]; [ 0; 1 ] ]
    in
    let schedule = Schedule.block_rounds blocks in
    let sk = t.snake.(k) in
    let per_node =
      Array.init n (fun i ->
          if i <= 1 then true else (sk lsr (i - 2)) land 1 = 1)
    in
    let init = uniform_init t.protocol per_node in
    let max_steps = 64 * Array.length t.snake * (t.q + 2) in
    match
      Engine.run_until_stable t.protocol ~input:(input t) ~init ~schedule
        ~max_steps
    with
    | Engine.Oscillating _ -> true
    | Engine.Stabilized _ -> false
    | Engine.Exhausted _ ->
        raise
          (Step_bound_exhausted
             { reduction = "Disj_reduction"; d = t.d; max_steps })

  let oscillates t =
    let rec loop k = k < t.q && (oscillates_at t k || loop (k + 1)) in
    loop 0
end
