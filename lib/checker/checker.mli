(** Exact verification of r-stabilization on small instances.

    Deciding whether a protocol is label r-stabilizing is PSPACE-complete in
    general (Theorem 4.2), but for a fixed small protocol it is a finite
    reachability question. This module builds, verbatim, the states-graph of
    the proof of Theorem 3.1: vertices are pairs [(ℓ, x)] of a labeling
    [ℓ ∈ Σ^E] and a countdown vector [x ∈ {1..r}^n] recording how many more
    steps each node may stay inactive; from each vertex there is one edge per
    admissible activation set (any nonempty [T] containing every node whose
    countdown expired). Every run of the protocol under an r-fair schedule is
    a path in this graph from an initialization vertex [(ℓ, rⁿ)], and
    conversely.

    The protocol fails to label r-stabilize iff some reachable cycle changes
    the labeling — equivalently, iff some reachable strongly connected
    component contains a label-changing transition. Output r-stabilization
    fails iff some reachable SCC activates a node with two different output
    values (any two edges of an SCC lie on a common cycle, and cycles in the
    states-graph correspond to infinitely-repeatable r-fair schedule
    segments).

    {b Performance.} The labeling successor, the label-changed bit and every
    node output of a states-graph edge depend only on the source labeling
    and the activation set — never on the countdown vector — so transitions
    are memoized per [(labeling, activation set)] ({!Trans_cache}), cutting
    reaction-function evaluations by a factor of up to [rⁿ]. Edges are
    stored in one flat compressed-sparse-row buffer ({!Csr}) that the SCC,
    witness-search and output-conflict passes read directly. Exploration can
    optionally expand each breadth-first level across multiple OCaml
    domains; results are bit-identical for every domain count because state
    interning stays sequential and ordered. *)

(** An explicit non-convergence certificate: starting from the initial
    labeling (given as a mixed-radix code over edge labels, as in
    [Protocol.encode_config]), play [prefix] once, then repeat [cycle]
    forever. Each element is one activation set. *)
type witness = {
  init_code : int;
  prefix : int list list;
  cycle : int list list;
}

type verdict =
  | Stabilizing  (** Converges on every r-fair schedule, from every initial
                     labeling: exhaustively verified. *)
  | Oscillating of witness  (** A concrete diverging run. *)
  | Too_large of { needed : int }
      (** The states-graph exceeds [max_states]; no verdict. *)

(** Counters from the most recent exploration (either checker), for
    benchmarking and regression tracking. *)
type stats = {
  states : int;  (** vertices of the explored states-graph *)
  full_states : int;
      (** vertices of the {e unreduced} states-graph the exploration
          certifies: equal to [states] without symmetry reduction, the sum
          of the interned representatives' orbit sizes with it *)
  edges : int;  (** transitions of the explored states-graph *)
  memo_hits : int;  (** transitions answered from the memo table *)
  memo_misses : int;  (** transitions computed (then cached) *)
  domains_used : int;
}

(** [last_stats ()] are the {!stats} of the most recent {!check_label} or
    {!check_output} call that actually explored (i.e. did not return
    [Too_large]), if any. *)
val last_stats : unit -> stats option

(** [check_label p ~input ~r ~max_states] decides label r-stabilization of
    [p] on the given input, exhaustively over all initial labelings and all
    r-fair schedules. [domains] (default [1]) expands breadth-first levels
    across that many OCaml domains; the verdict and witness are identical
    for every value.

    [symmetry] explores the quotient of the states-graph by the given
    node-automorphism group instead — one canonical representative per
    orbit — preserving the verdict while shrinking the graph by up to the
    group order (see DESIGN.md for the soundness argument). The protocol
    must be equivariant under the group ({!Symmetry.verify} is run first;
    @raise Invalid_argument on failure). [max_states] still budgets the
    {e unreduced} space, which the run certifies in full; {!last_stats}
    reports both [states] (explored) and [full_states] (certified).
    Oscillating verdicts lift the quotient cycle back to a concrete run, so
    witnesses stay {!replay}-checkable; the witness may differ from the
    unreduced explorer's, but the verdict never does. *)
val check_label :
  ?domains:int ->
  ?symmetry:Symmetry.t ->
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  max_states:int ->
  verdict

(** [check_output p ~input ~r ~max_states] decides output r-stabilization.
    The witness cycle exhibits a node whose output changes infinitely
    often. [domains] as in {!check_label}. *)
val check_output :
  ?domains:int ->
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  max_states:int ->
  verdict

(** [replay p ~input witness] replays a witness on the engine and reports
    whether the run indeed fails to converge: the cycle must return to its
    starting labeling while changing the labeling (for label witnesses) or
    some node's output (for output witnesses) along the way, making the
    divergence machine-checkable independently of the search. *)
val replay :
  ('x, 'l) Stateless_core.Protocol.t -> input:'x array -> witness -> bool

(** [max_stabilizing_r p ~input ~r_limit ~max_states] is the largest
    [r <= r_limit] such that [p] is label r-stabilizing (label r-stabilizing
    is antitone in [r]: more adversarial schedules are allowed as [r]
    grows), [0] if even [r = 1] oscillates. Returns [None] when a size
    budget was hit before reaching a verdict. [symmetry] as in
    {!check_label}. *)
val max_stabilizing_r :
  ?domains:int ->
  ?symmetry:Symmetry.t ->
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r_limit:int ->
  max_states:int ->
  int option

(** Exact worst-case recovery from transient corruption. *)
type recovery =
  | Worst_recovery of { steps : int; witness_code : int }
      (** The maximum synchronous output-stabilization time over {e all}
          [|Σ|^|E|] labelings — every state a transient fault can leave the
          system in — together with a labeling attaining it. *)
  | Never_settles of { init_code : int }
      (** Some reachable-after-corruption labeling leads to a cycle on which
          a node's output keeps changing: from [init_code] the outputs
          provably never settle under the synchronous schedule. *)
  | Recovery_too_large of { needed : int }
      (** [|Σ|^|E|] exceeds [max_states]; no verdict. *)

(** [worst_case_recovery p ~input ~max_states] computes, over the exhaustive
    synchronous states-graph (a functional graph on labelings, transitions
    and outputs memoized per labeling), the maximum output-stabilization
    time from any corrupted state. Exact, and by construction equal to the
    maximum of [Engine.output_stabilization_time] over all
    [Protocol.decode_config] initializations under the synchronous schedule
    — the simulation harness is its differential oracle (and vice versa).

    [domains] (default [1]) splits the per-labeling sweep into contiguous
    chunks run on that many domains (each with a private transition cache)
    and merges in range order; the verdict — including witness and
    diverging codes — is identical for every [domains] value. *)
val worst_case_recovery :
  ?domains:int ->
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  max_states:int ->
  recovery

(** The seed checker, kept verbatim as an independent oracle for
    differential testing and benchmark baselines: it re-derives every
    transition through [Engine.step] and stores per-state boxed edge arrays,
    sharing no exploration code with the memoized/CSR path. Exploration
    order is identical, so verdicts — including witnesses — must match the
    fast checker exactly. *)
module Naive : sig
  val check_label :
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    r:int ->
    max_states:int ->
    verdict

  val check_output :
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    r:int ->
    max_states:int ->
    verdict
end
