(** Growable arrays for the model checker's state tables.

    A [Vec.t] is an amortized-O(1)-append array with explicit capacity
    control: hot loops call {!reserve} once and then append through
    {!unsafe_push}, and read through {!unsafe_get}/{!unsafe_set}, skipping
    per-element bounds checks. The [dummy] element passed at creation fills
    unused capacity (it is never observable through the safe API). *)

type 'a t

(** [create ?capacity ~dummy ()] is an empty vector backed by [capacity]
    (default 16) preallocated slots.
    @raise Invalid_argument on negative capacity. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int

(** Append, growing the backing store geometrically when full. *)
val push : 'a t -> 'a -> unit

(** @raise Invalid_argument when the index is out of bounds. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument when the index is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** Hot-loop accessors: bounds are the caller's responsibility. *)

val unsafe_get : 'a t -> int -> 'a
val unsafe_set : 'a t -> int -> 'a -> unit

(** [reserve t extra] grows the backing store so at least [extra] more
    pushes fit without reallocation, enabling {!unsafe_push} in bulk-append
    loops. *)
val reserve : 'a t -> int -> unit

(** Append without the capacity check; a prior {!reserve} must cover it. *)
val unsafe_push : 'a t -> 'a -> unit

(** A fresh array of the first [length t] elements. *)
val to_array : 'a t -> 'a array

(** Forget the contents but keep the allocated storage for reuse. *)
val clear : 'a t -> unit
