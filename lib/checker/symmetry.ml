module Digraph = Stateless_graph.Digraph
module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine

type t = {
  n : int;
  m : int;
  node_perms : int array array;
  edge_perms : int array array;
  gens : int array array;
}

let order t = Array.length t.node_perms
let num_nodes t = t.n
let num_edges t = t.m
let node_perms t = t.node_perms
let edge_perms t = t.edge_perms
let generators t = t.gens

let is_permutation n p =
  Array.length p = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun i -> i >= 0 && i < n && not seen.(i) && (seen.(i) <- true; true))
    p

(* The edge permutation induced by node permutation [p], or [None] when
   [p] is not an automorphism of [g]. *)
let edge_perm_of g p =
  let m = Digraph.num_edges g in
  let ep = Array.make m (-1) in
  let ok = ref true in
  for e = 0 to m - 1 do
    let u, v = Digraph.edge g e in
    match Digraph.find_edge g ~src:p.(u) ~dst:p.(v) with
    | Some e' -> ep.(e) <- e'
    | None -> ok := false
  done;
  if !ok then Some ep else None

let perm_key p = String.init (Array.length p) (fun i -> Char.chr p.(i))

let identity n = Array.init n Fun.id
let is_identity p = Array.for_all2 ( = ) p (identity (Array.length p))

(* Assemble a [t] from node permutations known to form a group; moves the
   identity to index 0 and derives edge permutations (validating that each
   element is an automorphism on the way). *)
let make ~what g perms ~gens =
  let n = Digraph.num_nodes g in
  let id, rest = List.partition is_identity perms in
  if id = [] then
    invalid_arg (Printf.sprintf "Symmetry.%s: missing identity" what);
  let nps = Array.of_list (identity n :: rest) in
  let eps =
    Array.map
      (fun p ->
        match edge_perm_of g p with
        | Some ep -> ep
        | None ->
            invalid_arg
              (Printf.sprintf "Symmetry.%s: permutation is not an automorphism"
                 what))
      nps
  in
  { n; m = Digraph.num_edges g; node_perms = nps; edge_perms = eps; gens }

let of_node_perms g perms =
  let n = Digraph.num_nodes g in
  List.iter
    (fun p ->
      if not (is_permutation n p) then
        invalid_arg "Symmetry.of_node_perms: not a permutation of the nodes")
    perms;
  (* Dedupe and force the identity in. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace tbl (perm_key p) (Array.copy p))
    (identity n :: perms);
  let elems = Hashtbl.fold (fun _ p acc -> p :: acc) tbl [] in
  (* Closure under composition: for a finite subset of a finite group,
     closure under the (total) operation is exactly the subgroup test. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Array.init n (fun i -> a.(b.(i))) in
          if not (Hashtbl.mem tbl (perm_key c)) then
            invalid_arg
              "Symmetry.of_node_perms: set is not closed under composition")
        elems)
    elems;
  let gens = List.filter (fun p -> not (is_identity p)) elems in
  make ~what:"of_node_perms" g elems ~gens:(Array.of_list gens)

let clique g =
  let n = Digraph.num_nodes g in
  if n > 8 then invalid_arg "Symmetry.clique: n > 8 (group has n! elements)";
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && not (Digraph.mem_edge g ~src:i ~dst:j) then
        invalid_arg "Symmetry.clique: graph is not a clique"
    done
  done;
  (* All n! permutations by Heap's algorithm. S_n is a group by
     construction, so no closure check is needed (it would be n!^2). *)
  let perms = ref [] in
  let a = identity n in
  let rec heap k =
    if k <= 1 then perms := Array.copy a :: !perms
    else
      for i = 0 to k - 1 do
        heap (k - 1);
        if i < k - 1 then begin
          let j = if k land 1 = 0 then i else 0 in
          let tmp = a.(j) in
          a.(j) <- a.(k - 1);
          a.(k - 1) <- tmp
        end
      done
  in
  heap n;
  (* Adjacent transpositions generate S_n. *)
  let gens =
    Array.init (max 0 (n - 1)) (fun k ->
        let p = identity n in
        p.(k) <- k + 1;
        p.(k + 1) <- k;
        p)
  in
  make ~what:"clique" g !perms ~gens

let ring g =
  let n = Digraph.num_nodes g in
  let rotation k = Array.init n (fun i -> (i + k) mod n) in
  let reflection k = Array.init n (fun i -> ((k - i) mod n + n) mod n) in
  let candidates =
    List.init n rotation @ List.init n reflection
  in
  (* Aut(G) ∩ D_n is an intersection of groups, hence a group. *)
  let surviving =
    List.filter (fun p -> edge_perm_of g p <> None) candidates
  in
  if n >= 2 && edge_perm_of g (rotation 1) = None then
    invalid_arg "Symmetry.ring: rotation by 1 is not an automorphism";
  (* Dedupe (reflections coincide with rotations for n <= 2). *)
  let tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace tbl (perm_key p) p) surviving;
  let elems = Hashtbl.fold (fun _ p acc -> p :: acc) tbl [] in
  let gens = List.filter (fun p -> not (is_identity p)) elems in
  make ~what:"ring" g elems ~gens:(Array.of_list gens)

(* ------------------------------------------------------------------ *)
(* Equivariance check                                                  *)
(* ------------------------------------------------------------------ *)

let nodes_of_mask n mask =
  let rec loop i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i - 1) (i :: acc)
    else loop (i - 1) acc
  in
  loop (n - 1) []

let verify p ~input t =
  if Protocol.num_nodes p <> t.n || Protocol.num_edges p <> t.m then
    invalid_arg "Symmetry.verify: protocol graph shape does not match group";
  match Protocol.labelings_count p with
  | None -> invalid_arg "Symmetry.verify: label space too large to sample"
  | Some lab_count ->
      let g = p.Protocol.graph in
      let n = t.n in
      let pow2n = if n < 30 then 1 lsl n else max_int in
      let exhaustive = lab_count <= 4096 && n <= 6 in
      let lab_codes =
        if exhaustive then List.init lab_count Fun.id
        else
          (* Deterministic multiplicative stride spreads samples over the
             code space; always include the extremes. *)
          0 :: (lab_count - 1)
          :: List.init 62 (fun k ->
                 (k + 1) * 2654435761 land max_int mod lab_count)
      in
      let masks =
        if pow2n <= 64 then List.init (pow2n - 1) (fun m -> m + 1)
        else
          (pow2n - 1)
          :: List.init 63 (fun k ->
                 1 + ((k + 1) * 40503 land max_int mod (pow2n - 1)))
      in
      let permute_labels ep labels =
        let out = Array.copy labels in
        Array.iteri (fun e l -> out.(ep.(e)) <- l) labels;
        out
      in
      let code_of labels =
        Protocol.encode_config p { Protocol.labels; outputs = [||] }
      in
      let ok = ref true in
      Array.iter
        (fun np ->
          match edge_perm_of g np with
          | None -> ok := false
          | Some ep ->
              List.iter
                (fun code ->
                  if !ok then begin
                    let conf = Protocol.decode_config p code in
                    let pconf =
                      {
                        conf with
                        Protocol.labels = permute_labels ep conf.Protocol.labels;
                      }
                    in
                    List.iter
                      (fun mask ->
                        if !ok then begin
                          let active = nodes_of_mask n mask in
                          let pactive = List.map (fun i -> np.(i)) active in
                          let next = Engine.step p ~input conf ~active in
                          let pnext =
                            Engine.step p ~input pconf ~active:pactive
                          in
                          (* step then permute = permute then step *)
                          if
                            code_of (permute_labels ep next.Protocol.labels)
                            <> code_of pnext.Protocol.labels
                          then ok := false;
                          List.iter
                            (fun i ->
                              let _, y = Protocol.apply p ~input conf i in
                              let _, y' =
                                Protocol.apply p ~input pconf np.(i)
                              in
                              if y <> y' then ok := false)
                            active
                        end)
                      masks
                  end)
                lab_codes)
        t.gens;
      !ok
