(** Transition memoization for the states-graph explorer.

    A step of the states-graph from vertex (ℓ, x) under activation set T
    changes the labeling to δ_T(ℓ) and produces outputs that depend only on
    (ℓ, T) — never on the countdown vector x. The explorer visits each
    labeling ℓ under up to r^n distinct countdowns, so memoizing
    (lab_code, mask) → (next_lab, changed) removes a factor of up to r^n
    reaction-function evaluations from exploration.

    Per labeling the cache holds one block of [2n + 2^n] ints: [n] per-node
    mixed-radix label deltas (node [i] activated alone moves the labeling
    code by [blk.(off + i)]), then [n] per-node outputs
    ([blk.(off + n + i)]), then [2^n] memoized packed transitions
    ([next_lab * 2 + changed], [-1] when unfilled, at [blk.(off + 2n +
    mask)]). {!block} exposes the raw block so a fused explorer loop can
    inline {!step_in} by this layout; everything else should go through
    {!step} and {!output}.

    A cache instance carries mutable scratch and counters and is {b not}
    domain-safe: create one per domain (the multicore explorer does). *)

type ('x, 'l) t

(** [create p ~input ~lab_count] prepares a cache for the [lab_count]
    labeling codes of [p]. Blocks are filled lazily on first touch; they
    live interleaved in one flat array when [lab_count * (2n + 2^n)] is
    small enough, else as per-labeling arrays allocated on demand. *)
val create :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  lab_count:int ->
  ('x, 'l) t

(** [block t lab_code] is the memo block of [lab_code] (created on first
    touch) as [(backing_array, offset)], laid out as documented above. *)
val block : ('x, 'l) t -> int -> int array * int

(** [step_in t blk off ~lab_code ~mask] is {!step} with the block lookup
    hoisted out — callers stepping one labeling under many activation sets
    resolve {!block} once and reuse [(blk, off)]. *)
val step_in : ('x, 'l) t -> int array -> int -> lab_code:int -> mask:int -> int

(** [step t ~lab_code ~mask] is [next_lab * 2 + changed] for the transition
    of labeling [lab_code] under activation set [mask]. *)
val step : ('x, 'l) t -> lab_code:int -> mask:int -> int

(** [output t ~lab_code ~node] is the output value node [node] produces
    when activated on labeling [lab_code] — independent of the activation
    set. *)
val output : ('x, 'l) t -> lab_code:int -> node:int -> int

(** {2 Memo counters} — for {!Checker.stats} and regression tracking. *)

val hits : ('x, 'l) t -> int
val misses : ('x, 'l) t -> int

(** Fused explorer loops batch their counter updates locally and flush them
    here once per exploration. *)

val add_hits : ('x, 'l) t -> int -> unit
val add_misses : ('x, 'l) t -> int -> unit
