(** Node-automorphism groups for symmetry-reduced exploration.

    A group element is a node permutation [π] that is a graph automorphism;
    it induces an edge permutation [σ] ([σ(e)] is the edge from [π(src e)]
    to [π(dst e)]). When the protocol is equivariant under the group — every
    node runs the same reaction, inputs are constant along orbits — the
    group acts on checker states [(ℓ, x)] by relabeling positions, and the
    states-graph is invariant under that action. The explorer can then
    intern one canonical representative per orbit and explore the quotient,
    shrinking the reachable graph by up to the group order (n! on cliques,
    2n on rings) while preserving the stabilization verdict; see DESIGN.md
    for the soundness argument.

    Groups are closed under composition and contain the identity (element
    [0] of {!node_perms}); the constructors guarantee this. *)

type t

(** Number of group elements (identity included). *)
val order : t -> int

val num_nodes : t -> int
val num_edges : t -> int

(** [node_perms t] — element [g] maps node [i] to [(node_perms t).(g).(i)].
    Element [0] is the identity. Owned by [t]; callers must not mutate. *)
val node_perms : t -> int array array

(** [edge_perms t] — the edge permutation induced by each element, same
    indexing as {!node_perms}. Owned by [t]; callers must not mutate. *)
val edge_perms : t -> int array array

(** A generating set of node permutations (identity excluded; the whole
    group when no smaller set is known). {!verify} checks only generators:
    equivariance is closed under composition, so generator equivariance
    implies equivariance of every element. *)
val generators : t -> int array array

(** The full symmetric group S_n acting on a clique. Rejects graphs that
    are not cliques and [n > 8] (the group has [n!] elements).
    @raise Invalid_argument accordingly. *)
val clique : Stateless_graph.Digraph.t -> t

(** The dihedral candidates (n rotations, n reflections) filtered to the
    automorphisms of the given graph — all [2n] on a bidirectional ring,
    the [n] rotations on a unidirectional ring. The result is a group
    because it is the intersection of two groups.
    @raise Invalid_argument when no rotation except the identity survives
    (the graph is not a ring in the expected node numbering). *)
val ring : Stateless_graph.Digraph.t -> t

(** [of_node_perms g perms] builds a group from explicit node permutations:
    validates each is an automorphism of [g], adds the identity, dedupes,
    and checks closure under composition.
    @raise Invalid_argument on non-permutations, non-automorphisms, or a
    set that is not closed. *)
val of_node_perms : Stateless_graph.Digraph.t -> int array list -> t

(** [verify p ~input t] checks protocol equivariance under the group's
    {!generators}: for sampled labelings and activation sets (exhaustive
    when the label space is small), stepping then permuting equals
    permuting then stepping with the permuted activation set, and node
    outputs match at permuted positions. A [false] result proves the
    protocol is not equivariant; [true] is exhaustive evidence for label
    spaces of at most 4096 labelings on at most 6 nodes, and sampled
    evidence beyond.
    @raise Invalid_argument when the graph shape does not match [t]. *)
val verify : ('x, 'l) Stateless_core.Protocol.t -> input:'x array -> t -> bool
