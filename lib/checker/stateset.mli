(** Packed [state key -> id] interning map for the explorer.

    State keys are the checker's mixed-radix codes
    [lab_code * r^n + cd_code] — dense, bounded by the state-space size —
    so no boxing and no generic hashing: the map is either

    - {b direct}: an array of [universe] ints (id, or [-1] when absent),
      used when the universe fits the {!direct_cap} budget. Lookup is one
      load; hot loops may read the array through {!direct} without a call.
    - {b hashed}: open-addressing linear probing over parallel int arrays
      (power-of-two capacity, tombstone-free since keys are never removed),
      used for universes too large to direct-map — e.g. example1 on K5 at
      r=2 is 2^20 * 32 ≈ 33.5M states, K6 does not fit memory at all.
      Memory then scales with states {e reached}, not with the universe.

    A [t] is reused across explorations (it lives in the checker's
    per-domain scratch): {!reset} un-marks only the keys added since the
    previous reset (direct mode keeps an internal journal), so repeated
    small explorations never pay for clearing the whole universe. *)

type t

val create : unit -> t

(** Universes at or below this many keys are direct-mapped (the array costs
    8 bytes per key). *)
val direct_cap : int

(** Prepare for a new exploration over keys [0 .. universe - 1], forgetting
    all previous entries. Chooses direct or hashed mode from [universe]. *)
val reset : t -> universe:int -> unit

(** [find t key] is the id interned for [key], or [-1]. *)
val find : t -> int -> int

(** [add t ~key ~id] records [key -> id]. [key] must not be present. *)
val add : t -> key:int -> id:int -> unit

(** The direct-mapped array (indexable by any key of the current universe),
    or [[||]] in hashed mode. Hot loops branch on its length once and read
    ids straight out of it; they must still go through {!add} to insert. *)
val direct : t -> int array

(** [true] in hashed (open-addressing) mode — for tests. *)
val hashed : t -> bool

(** Current backing capacity (direct array length, or hashed slot count) —
    for tests. Hashed capacity is retained across resets only while it
    stays within 8x of the previous run's interned count; a {!reset} after
    a much smaller run rebuilds near that run's working size, so one huge
    exploration cannot permanently inflate every later reset to
    O(max-ever capacity). *)
val capacity : t -> int
