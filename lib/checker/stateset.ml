type t = {
  mutable darr : int array;  (* direct map; may outlive smaller universes *)
  mutable journal : int Vec.t;  (* keys marked in [darr] since last reset *)
  mutable keys : int array;  (* hashed mode: open-addressing slots, -1 empty *)
  mutable ids : int array;
  mutable mask : int;
  mutable count : int;
  mutable mode_direct : bool;
}

let direct_cap = 1 lsl 24
let initial_hash_cap = 1 lsl 16

let create () =
  {
    darr = [||];
    journal = Vec.create ~capacity:0 ~dummy:0 ();
    keys = [||];
    ids = [||];
    mask = 0;
    count = 0;
    mode_direct = true;
  }

let hashed t = not t.mode_direct
let direct t = if t.mode_direct then t.darr else [||]

let capacity t =
  if t.mode_direct then Array.length t.darr else Array.length t.keys

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (2 * c)

let reset t ~universe =
  if universe <= direct_cap then begin
    if Array.length t.darr < universe then begin
      (* The journal only describes the old array; a fresh allocation is
         already clear. *)
      t.darr <- Array.make universe (-1);
      Vec.clear t.journal
    end
    else begin
      (* Un-mark exactly the keys the previous direct run interned —
         hashed runs in between never touch [darr], so the journal stays
         accurate across mode switches. *)
      let d = t.darr and j = t.journal in
      for i = 0 to Vec.length j - 1 do
        Array.unsafe_set d (Vec.unsafe_get j i) (-1)
      done;
      Vec.clear j
    end;
    t.mode_direct <- true
  end
  else begin
    let cap = Array.length t.keys in
    (* A reset costs O(capacity), and [grow] never shrinks — one huge
       exploration would otherwise inflate every later small reset to
       O(max-ever). Rebuild near the last run's working size when the
       retained table wastes more than 8x of it (a fresh allocation is
       already clear, so a shrink costs no fill). *)
    let wasteful = cap > initial_hash_cap && cap > 8 * max 1 t.count in
    if cap = 0 || wasteful then begin
      let cap' =
        if cap = 0 then initial_hash_cap
        else max initial_hash_cap (ceil_pow2 (4 * max 1 t.count) 1)
      in
      t.keys <- Array.make cap' (-1);
      t.ids <- Array.make cap' 0;
      t.mask <- cap' - 1
    end
    else Array.fill t.keys 0 cap (-1);
    t.count <- 0;
    t.mode_direct <- false
  end

(* Fibonacci multiplicative hash folded with a high-bit xor: state keys are
   near-consecutive integers, so the multiply is what spreads them. *)
let[@inline] slot_of_key key mask =
  let h = key * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land mask

let find t key =
  if t.mode_direct then Array.unsafe_get t.darr key
  else begin
    let keys = t.keys and mask = t.mask in
    let rec probe i =
      let k = Array.unsafe_get keys i in
      if k = key then Array.unsafe_get t.ids i
      else if k = -1 then -1
      else probe ((i + 1) land mask)
    in
    probe (slot_of_key key mask)
  end

let insert_hashed keys ids mask key id =
  let rec probe i =
    if Array.unsafe_get keys i = -1 then begin
      Array.unsafe_set keys i key;
      Array.unsafe_set ids i id
    end
    else probe ((i + 1) land mask)
  in
  probe (slot_of_key key mask)

let grow t =
  let old_keys = t.keys and old_ids = t.ids in
  let cap = 2 * Array.length old_keys in
  let keys = Array.make cap (-1) and ids = Array.make cap 0 in
  let mask = cap - 1 in
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k <> -1 then insert_hashed keys ids mask k (Array.unsafe_get old_ids i)
  done;
  t.keys <- keys;
  t.ids <- ids;
  t.mask <- mask

let add t ~key ~id =
  if t.mode_direct then begin
    Array.unsafe_set t.darr key id;
    Vec.push t.journal key
  end
  else begin
    (* Keep load factor at or below 1/2 so probe sequences stay short. *)
    if 2 * (t.count + 1) > Array.length t.keys then grow t;
    insert_hashed t.keys t.ids t.mask key id;
    t.count <- t.count + 1
  end
