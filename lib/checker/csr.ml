(* Compressed-sparse-row storage for the states-graph.

   The seed explorer kept one boxed [int array] of (succ, mask, changed)
   triples per state — three words of header plus a pointer chase per state,
   built through an intermediate list. Here all edges live in a single flat
   int buffer: edge k of state [id] is the packed word

     cells.(offsets.(id) + k) = (succ << (n+1)) | (mask << 1) | changed

   and [offsets] (length rows+1) delimits each state's slice. Rows must be
   appended in state-id order, which the explorer's breadth-first interning
   guarantees. Tarjan, the witness BFS and the output-conflict scan all read
   the buffer directly through unsafe accessors. *)

type t = {
  shift : int;  (* n + 1: bits holding (mask << 1) | changed *)
  max_succ : int;  (* largest id packable without overflow *)
  offsets : int Vec.t;  (* row boundaries; offsets.(0) = 0 *)
  cells : int Vec.t;  (* packed edge words *)
}

let create ~n ?(capacity = 16) ?edge_capacity () =
  if n < 1 || n > 20 then invalid_arg "Csr.create: need 1 <= n <= 20";
  let shift = n + 1 in
  let offsets = Vec.create ~capacity:(capacity + 1) ~dummy:0 () in
  Vec.push offsets 0;
  let edge_capacity =
    match edge_capacity with Some c -> c | None -> 4 * capacity
  in
  {
    shift;
    max_succ = (max_int lsr shift) - 1;
    offsets;
    cells = Vec.create ~capacity:edge_capacity ~dummy:0 ();
  }

(* Forget all rows but keep the allocated buffers for reuse. *)
let reset t =
  Vec.clear t.offsets;
  Vec.push t.offsets 0;
  Vec.clear t.cells

let rows t = Vec.length t.offsets - 1
let num_edges t = Vec.length t.cells

(* Append one edge to the row currently being built. *)
let push_edge t ~succ ~mask ~changed =
  if succ < 0 || succ > t.max_succ then
    invalid_arg "Csr.push_edge: successor id does not fit the packing";
  Vec.push t.cells ((succ lsl t.shift) lor (mask lsl 1) lor changed)

(* Largest successor id that the word packing can hold; callers that bound
   their ids once up front may then use {!unsafe_push_edge}. *)
let max_succ t = t.max_succ

(* Make room for [extra] more edges, enabling {!unsafe_push_edge}. *)
let reserve_edges t extra = Vec.reserve t.cells extra

(* {!push_edge} without the overflow check or capacity growth: the caller
   has checked ids against {!max_succ} and reserved space. *)
let unsafe_push_edge t ~succ ~mask ~changed =
  Vec.unsafe_push t.cells ((succ lsl t.shift) lor (mask lsl 1) lor changed)

(* Seal the current row: all edges pushed since the previous [end_row]
   belong to state [rows t]. *)
let end_row t = Vec.push t.offsets (Vec.length t.cells)

let degree t id =
  Vec.unsafe_get t.offsets (id + 1) - Vec.unsafe_get t.offsets id

(* Word-level access for hot loops: fetch a row's packed words once and
   unpack the fields locally instead of re-reading per field. *)
let row_start t id = Vec.unsafe_get t.offsets id
let cell t j = Vec.unsafe_get t.cells j
let succ_of_word t w = w lsr t.shift
let mask_of_word t w = (w lsr 1) land ((1 lsl (t.shift - 1)) - 1)
let changed_of_word w = w land 1

let word t id k = Vec.unsafe_get t.cells (Vec.unsafe_get t.offsets id + k)
let succ t id k = succ_of_word t (word t id k)
let mask t id k = mask_of_word t (word t id k)
let changed t id k = changed_of_word (word t id k)
