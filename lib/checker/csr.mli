(** Compressed-sparse-row storage for the states-graph.

    All edges live in a single flat int buffer: edge [k] of state [id] is
    the packed word

    {v cells.(offsets.(id) + k) = (succ << (n+1)) | (mask << 1) | changed v}

    where [succ] is the successor state id, [mask] the activation set and
    [changed] the label-changed bit. [offsets] delimits each state's slice.
    Rows must be appended in state-id order — push the edges of state 0,
    {!end_row}, push the edges of state 1, {!end_row}, ... — which the
    explorer's breadth-first interning guarantees. Tarjan, the witness BFS
    and the output-conflict scan read the buffer directly through the
    unsafe accessors. *)

type t

(** [create ~n ?capacity ?edge_capacity ()] for a protocol on [n] nodes;
    [capacity] (default 16) and [edge_capacity] (default [4 * capacity])
    are row/edge preallocation hints.
    @raise Invalid_argument unless [1 <= n <= 20] (the packing needs
    [n + 1] low bits per word). *)
val create : n:int -> ?capacity:int -> ?edge_capacity:int -> unit -> t

(** Forget all rows but keep the allocated buffers for reuse. *)
val reset : t -> unit

(** Number of sealed rows (states). *)
val rows : t -> int

(** Total edges pushed so far. *)
val num_edges : t -> int

(** Append one edge to the row currently being built.
    @raise Invalid_argument when [succ] exceeds {!max_succ}. *)
val push_edge : t -> succ:int -> mask:int -> changed:int -> unit

(** Largest successor id the word packing can hold; callers that bound
    their ids once up front may then use {!unsafe_push_edge}. *)
val max_succ : t -> int

(** [reserve_edges t extra] makes room for [extra] more edges, enabling
    {!unsafe_push_edge}. *)
val reserve_edges : t -> int -> unit

(** {!push_edge} without the overflow check or capacity growth: the caller
    has checked ids against {!max_succ} and reserved space. *)
val unsafe_push_edge : t -> succ:int -> mask:int -> changed:int -> unit

(** Seal the current row: all edges pushed since the previous [end_row]
    belong to state [rows t]. *)
val end_row : t -> unit

(** Out-degree of a sealed row. Unchecked. *)
val degree : t -> int -> int

(** {2 Word-level access for hot loops}

    Fetch a row's packed words once and unpack the fields locally instead
    of re-reading per field. All unchecked. *)

(** Index into the flat cell buffer where row [id] starts. *)
val row_start : t -> int -> int

(** The packed word at flat index [j] (as returned by {!row_start}). *)
val cell : t -> int -> int

val succ_of_word : t -> int -> int
val mask_of_word : t -> int -> int
val changed_of_word : int -> int

(** {2 Per-edge accessors} — [word t id k] is edge [k] of state [id]. *)

val word : t -> int -> int -> int
val succ : t -> int -> int -> int
val mask : t -> int -> int -> int
val changed : t -> int -> int -> int
