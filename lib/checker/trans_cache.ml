(* Transition memoization for the states-graph explorer.

   A step of the states-graph from vertex (ℓ, x) under activation set T
   changes the labeling to δ_T(ℓ) and produces outputs that depend only on
   (ℓ, T) — never on the countdown vector x. The explorer visits each
   labeling ℓ under up to r^n distinct countdowns, so memoizing
   (lab_code, mask) → (next_lab, changed) removes a factor of up to r^n
   reaction-function evaluations from exploration.

   Two observations make each cached transition O(|T|) arithmetic:

   - node [i]'s reaction (its outgoing labels and its output) depends only
     on ℓ, so it is evaluated once per labeling and summarized as a single
     mixed-radix delta [Σ_k (new_e - old_e)·card^(m-1-e)] over [i]'s
     out-edges;
   - distinct nodes own disjoint out-edge sets, hence
     [code(δ_T(ℓ)) = code(ℓ) + Σ_{i∈T} delta_i] — no decoding, copying or
     re-encoding of configurations on the per-mask path.

   Layout: each labeling owns one block of [2n + 2^n] ints —
   [n] per-node deltas, then [n] per-node outputs, then [2^n] memoized
   packed transitions ([next_lab * 2 + changed], -1 when unfilled). Blocks
   live interleaved in a single flat array when the label space is small
   enough (one cache line brings a labeling's deltas along with its memo
   slots), falling back to lazily allocated per-labeling blocks for huge
   label spaces.

   Reaction functions are invoked directly on reused scratch buffers, so
   the per-labeling fill allocates nothing beyond what the reactions
   themselves allocate; reactions must not retain their incoming array
   (none in this repository does — [Protocol.apply] hands out a fresh one,
   but the contract only promises the labels of the incoming edges). *)

module Protocol = Stateless_core.Protocol
module Digraph = Stateless_graph.Digraph

(* Above this many words the flat table would dominate memory; fall back to
   per-labeling blocks (2^22 words = 32 MB). *)
let flat_table_cap = 1 lsl 22

type ('x, 'l) t = {
  p : ('x, 'l) Protocol.t;
  input : 'x array;
  n : int;
  m : int;
  card : int;
  pow2n : int;
  stride : int;  (* block size: 2n + 2^n *)
  weight : int array;  (* e -> card^(m-1-e), the digit weight of edge e *)
  dec_tbl : 'l array;  (* code -> label value, avoids decode closures *)
  flat : int array;  (* lab_count * stride words, or [||] when capped *)
  filled : Bytes.t;  (* flat path: lab_code -> entry created? *)
  blocks : int array array;  (* fallback path: lab_code -> block or [||] *)
  in_scratch : 'l array array;  (* i -> reused incoming-labels buffer *)
  digits : int array;  (* reused per-fill digit decomposition *)
  mutable hits : int;
  mutable misses : int;
}

let create p ~input ~lab_count =
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  let space = p.Protocol.space in
  let card = space.Stateless_core.Label.card in
  let weight = Array.make m 1 in
  for e = m - 2 downto 0 do
    weight.(e) <- weight.(e + 1) * card
  done;
  let dec_tbl =
    Array.init card (fun c -> space.Stateless_core.Label.decode c)
  in
  let stride = (2 * n) + (1 lsl n) in
  let use_flat = lab_count <= flat_table_cap / stride in
  {
    p;
    input;
    n;
    m;
    card;
    pow2n = 1 lsl n;
    stride;
    weight;
    dec_tbl;
    flat = (if use_flat then Array.make (lab_count * stride) 0 else [||]);
    filled = Bytes.make (if use_flat then lab_count else 0) '\000';
    blocks = (if use_flat then [||] else Array.make lab_count [||]);
    in_scratch =
      Array.init n (fun i ->
          Array.make (Digraph.in_degree p.Protocol.graph i) dec_tbl.(0));
    digits = Array.make m 0;
    hits = 0;
    misses = 0;
  }

(* Evaluate every reaction function once on labeling [lab_code], writing the
   block at [blk.(off ..)]. *)
let fill t lab_code blk off =
  let p = t.p in
  let encode = p.Protocol.space.Stateless_core.Label.encode in
  let digits = t.digits in
  let rest = ref lab_code in
  for e = t.m - 1 downto 0 do
    Array.unsafe_set digits e (!rest mod t.card);
    rest := !rest / t.card
  done;
  for i = 0 to t.n - 1 do
    let incoming = Array.unsafe_get t.in_scratch i in
    let in_edges = Digraph.in_edges p.Protocol.graph i in
    for k = 0 to Array.length in_edges - 1 do
      let e = Array.unsafe_get in_edges k in
      Array.unsafe_set incoming k
        (Array.unsafe_get t.dec_tbl (Array.unsafe_get digits e))
    done;
    let out, y = p.Protocol.react i t.input.(i) incoming in
    let out_edges = Digraph.out_edges p.Protocol.graph i in
    let delta = ref 0 in
    for k = 0 to Array.length out_edges - 1 do
      let e = Array.unsafe_get out_edges k in
      delta :=
        !delta
        + ((encode out.(k) - Array.unsafe_get digits e)
          * Array.unsafe_get t.weight e)
    done;
    Array.unsafe_set blk (off + i) !delta;
    Array.unsafe_set blk (off + t.n + i) y
  done;
  Array.fill blk (off + (2 * t.n)) t.pow2n (-1)

(* The memo block of [lab_code], creating it on first touch. Returns the
   backing array and the block's offset within it. *)
let block t lab_code =
  if Array.length t.flat > 0 then begin
    let off = lab_code * t.stride in
    if Bytes.unsafe_get t.filled lab_code = '\000' then begin
      Bytes.unsafe_set t.filled lab_code '\001';
      fill t lab_code t.flat off
    end;
    (t.flat, off)
  end
  else begin
    let blk = t.blocks.(lab_code) in
    if Array.length blk > 0 then (blk, 0)
    else begin
      let blk = Array.make t.stride 0 in
      t.blocks.(lab_code) <- blk;
      fill t lab_code blk 0;
      (blk, 0)
    end
  end

(* [step_in t blk off ~lab_code ~mask] is {!step} with the block lookup
   hoisted out — callers stepping one labeling under many activation sets
   resolve [block] once and reuse [(blk, off)]. *)
let step_in t blk off ~lab_code ~mask =
  let slot = off + (2 * t.n) + mask in
  let cached = Array.unsafe_get blk slot in
  if cached >= 0 then begin
    t.hits <- t.hits + 1;
    cached
  end
  else begin
    t.misses <- t.misses + 1;
    let delta = ref 0 in
    for i = 0 to t.n - 1 do
      if mask land (1 lsl i) <> 0 then
        delta := !delta + Array.unsafe_get blk (off + i)
    done;
    let next_lab = lab_code + !delta in
    let packed = (next_lab * 2) lor (if !delta <> 0 then 1 else 0) in
    Array.unsafe_set blk slot packed;
    packed
  end

(* [step t ~lab_code ~mask] is [next_lab * 2 + changed] for the transition
   of labeling [lab_code] under activation set [mask]. *)
let step t ~lab_code ~mask =
  let blk, off = block t lab_code in
  step_in t blk off ~lab_code ~mask

(* [output t ~lab_code ~node] is the output value node [node] produces when
   activated on labeling [lab_code] — independent of the activation set. *)
let output t ~lab_code ~node =
  let blk, off = block t lab_code in
  blk.(off + t.n + node)

let hits t = t.hits
let misses t = t.misses
let add_hits t k = t.hits <- t.hits + k
let add_misses t k = t.misses <- t.misses + k
