(* Growable arrays for the model checker's state tables. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  if capacity < 0 then invalid_arg "Vec.create: negative capacity";
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (max 4 (2 * t.len)) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

(* Hot-loop accessors: bounds are the caller's responsibility. *)
let unsafe_get t i = Array.unsafe_get t.data i
let unsafe_set t i v = Array.unsafe_set t.data i v

(* Grow the backing store so at least [extra] more pushes fit without
   reallocation, enabling {!unsafe_push} in bulk-append loops. *)
let reserve t extra =
  let need = t.len + extra in
  if need > Array.length t.data then begin
    let cap = ref (max 4 (2 * Array.length t.data)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end

(* Append without the capacity check; a prior {!reserve} must cover it. *)
let unsafe_push t v =
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let to_array t = Array.sub t.data 0 t.len

(* Forget the contents but keep the allocated storage for reuse. *)
let clear t = t.len <- 0
