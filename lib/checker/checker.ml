module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Pool = Stateless_core.Pool

type witness = {
  init_code : int;
  prefix : int list list;
  cycle : int list list;
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }

type stats = {
  states : int;
  full_states : int;
  edges : int;
  memo_hits : int;
  memo_misses : int;
  domains_used : int;
}

let last_stats_ref : stats option ref = ref None
let last_stats () = !last_stats_ref

let ipow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

(* [ilog2 v] for v a positive power of two. *)
let ilog2 v =
  let rec loop v acc = if v <= 1 then acc else loop (v lsr 1) (acc + 1) in
  loop v 0

let nodes_of_mask n mask =
  let rec loop i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i - 1) (i :: acc)
    else loop (i - 1) acc
  in
  loop (n - 1) []

(* The explored states-graph. State ids index all vectors; edges live in one
   flat CSR buffer. State id -> key [lab_code * r^n + cd_code] where
   [cd_code] is the countdown vector in base r (digit = countdown - 1,
   node 0 most significant). *)
type ('x, 'l) explored = {
  n : int;
  r : int;
  lab_count : int;
  cd_count : int;  (* r^n *)
  pow2n : int;
  keys : int Vec.t;  (* id -> key *)
  csr : Csr.t;  (* id -> packed (succ, mask, changed) edges *)
  parent : int Vec.t;  (* id -> predecessor id in BFS forest, -1 at roots *)
  parent_mask : int Vec.t;
  cache : ('x, 'l) Trans_cache.t;  (* for post-hoc output reads *)
  sym : symctx option;  (* set when exploring the symmetry quotient *)
}

(* Precomputed canonicalization tables for a node-automorphism group.

   The action of element [g] on a state key is linear in the key's
   mixed-radix digits: the label digit at edge [e] (place value
   [card^(m-1-e)], times [cd_count] since labels sit above countdowns)
   moves to edge [edge_perm g e], and the countdown digit of node [i]
   (place value [r^(n-1-i)]) moves to node [node_perm g i]. So
   [key_of (g . s) = Σ_d digit_d(s) * w.(g).(d)] over the [m + n] digits,
   with the weights below — one dot product per group element, no state
   materialization. The canonical representative of an orbit is the
   minimum such key. *)
and symctx = {
  sy : Symmetry.t;
  gcount : int;
  sym_m : int;
  w : int array array;  (* g -> digit -> place value after permuting *)
  sym_card : int;
}

let make_symctx sy ~card ~r ~cd_count ~m ~n =
  let nps = Symmetry.node_perms sy and eps = Symmetry.edge_perms sy in
  let gcount = Array.length nps in
  let w =
    Array.init gcount (fun g ->
        Array.init (m + n) (fun d ->
            if d < m then ipow card (m - 1 - eps.(g).(d)) * cd_count
            else ipow r (n - 1 - nps.(g).(d - m))))
  in
  { sy; gcount; sym_m = m; w; sym_card = card }

(* Decompose [key] into its [m + n] digits (into [digits], a per-domain
   scratch) and return the orbit minimum. Element 0 is the identity, whose
   dot product is [key] itself. *)
let canon_key sctx ~r ~cd_count ~n digits key =
  let m = sctx.sym_m and card = sctx.sym_card in
  let lab = ref (key / cd_count) and cd = ref (key mod cd_count) in
  for e = m - 1 downto 0 do
    Array.unsafe_set digits e (!lab mod card);
    lab := !lab / card
  done;
  for i = n - 1 downto 0 do
    Array.unsafe_set digits (m + i) (!cd mod r);
    cd := !cd / r
  done;
  let best = ref key in
  let mn = m + n in
  for g = 1 to sctx.gcount - 1 do
    let wg = Array.unsafe_get sctx.w g in
    let acc = ref 0 in
    for d = 0 to mn - 1 do
      acc := !acc + (Array.unsafe_get digits d * Array.unsafe_get wg d)
    done;
    if !acc < !best then best := !acc
  done;
  !best

(* Orbit size of the canonical state [key], by orbit-stabilizer: count the
   elements that fix it. Called once per interned state. *)
let orbit_size sctx ~r ~cd_count ~n digits key =
  let m = sctx.sym_m and card = sctx.sym_card in
  let lab = ref (key / cd_count) and cd = ref (key mod cd_count) in
  for e = m - 1 downto 0 do
    Array.unsafe_set digits e (!lab mod card);
    lab := !lab / card
  done;
  for i = n - 1 downto 0 do
    Array.unsafe_set digits (m + i) (!cd mod r);
    cd := !cd / r
  done;
  let stab = ref 1 in
  let mn = m + n in
  for g = 1 to sctx.gcount - 1 do
    let wg = Array.unsafe_get sctx.w g in
    let acc = ref 0 in
    for d = 0 to mn - 1 do
      acc := !acc + (Array.unsafe_get digits d * Array.unsafe_get wg d)
    done;
    if !acc = key then incr stab
  done;
  sctx.gcount / !stab

(* Expand states [a, b) of [ex] into flat per-chunk buffers: for each state,
   its admissible transitions as (successor key, mask * 2 + changed) pairs in
   ascending mask order, preceded by nothing and counted in [ecnt]. Pure
   w.r.t. the shared tables ([keys] is only read below [b]), so disjoint
   ranges may run in parallel domains, each with its own memo [cache]. *)
let expand_range ex cache ~rpow ~sum_rpow ~add ~sym_digits ~ecnt ~edata a b =
  let n = ex.n and r = ex.r and cd_count = ex.cd_count in
  for id = a to b - 1 do
    let key = Vec.unsafe_get ex.keys id in
    let lab = key / cd_count and cd = key mod cd_count in
    let forced = ref 0 in
    for i = 0 to n - 1 do
      (* digit d = countdown - 1; node i is forced-active at countdown 1. *)
      let d = cd / Array.unsafe_get rpow i mod r in
      Array.unsafe_set add i ((r - d) * Array.unsafe_get rpow i);
      if d = 0 then forced := !forced lor (1 lsl i)
    done;
    let base = cd - sum_rpow in
    let forced = !forced in
    let edge_count = ref 0 in
    for mask = 1 to ex.pow2n - 1 do
      if mask land forced = forced then begin
        let packed = Trans_cache.step cache ~lab_code:lab ~mask in
        let next_lab = packed lsr 1 in
        let cdsum = ref base in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then
            cdsum := !cdsum + Array.unsafe_get add i
        done;
        let skey = (next_lab * cd_count) + !cdsum in
        let skey =
          match ex.sym with
          | None -> skey
          | Some sctx -> canon_key sctx ~r ~cd_count ~n sym_digits skey
        in
        Vec.push edata skey;
        Vec.push edata ((mask lsl 1) lor (packed land 1));
        incr edge_count
      end
    done;
    Vec.push ecnt !edge_count
  done

(* Breadth-first exploration from every initialization vertex (ℓ, rⁿ).

   The frontier of each BFS level is a contiguous id range, so levels are
   expanded range-by-range (optionally split across [domains] domains) and
   then interned by a single sequential pass in id order — state ids,
   parents and hence witnesses are identical for every domain count. *)
(* Per-domain scratch reused across explorations, so repeated [check_*]
   calls (parameter sweeps, [max_stabilizing_r], benchmarks) run
   allocation-light. Sound because no exported function retains the
   explored graph past its own call, and [Domain.DLS] isolates domains.

   Invariant between calls: [sc_set] remembers which keys it interned
   (exploration adds through it, so the record stays accurate even if a
   reaction function raises mid-call), and every Tarjan visit index ever
   handed out is [< sc_clock]. *)
type scratch = {
  mutable sc_n : int;  (* node count the csr packing was built for *)
  mutable sc_keys : int Vec.t;
  mutable sc_parent : int Vec.t;
  mutable sc_parent_mask : int Vec.t;
  mutable sc_csr : Csr.t;
  sc_set : Stateset.t;
  (* Tarjan scratch: visit clock persists so [sc_index] never needs
     clearing — entries below the clock at entry are "unvisited". *)
  mutable sc_clock : int;
  mutable sc_index : int array;
  mutable sc_lowlink : int array;
  mutable sc_comp : int array;
  mutable sc_stack : int array;
  mutable sc_call_v : int array;
  mutable sc_call_cur : int array;
  mutable sc_call_end : int array;
  mutable sc_on_stack : Bytes.t;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        sc_n = -1;
        sc_keys = Vec.create ~capacity:0 ~dummy:0 ();
        sc_parent = Vec.create ~capacity:0 ~dummy:(-1) ();
        sc_parent_mask = Vec.create ~capacity:0 ~dummy:0 ();
        sc_csr = Csr.create ~n:1 ~capacity:0 ();
        sc_set = Stateset.create ();
        sc_clock = 0;
        sc_index = [||];
        sc_lowlink = [||];
        sc_comp = [||];
        sc_stack = [||];
        sc_call_v = [||];
        sc_call_cur = [||];
        sc_call_end = [||];
        sc_on_stack = Bytes.empty;
      })

let explore ?(domains = 1) ?symmetry p ~input ~r ~max_states =
  let n = Protocol.num_nodes p in
  if n > 20 then invalid_arg "Checker: too many nodes for subset enumeration";
  if domains < 1 then invalid_arg "Checker: domains must be >= 1";
  match Protocol.labelings_count p with
  | None -> Error max_int
  | Some lab_count ->
      let cd_count = ipow r n in
      if cd_count > max_states || lab_count > max_states / cd_count then
        Error
          (if lab_count > max_int / cd_count then max_int
           else lab_count * cd_count)
      else begin
        let total = lab_count * cd_count in
        let m = Protocol.num_edges p in
        let symc =
          match symmetry with
          | None -> None
          | Some sy ->
              if Symmetry.num_nodes sy <> n || Symmetry.num_edges sy <> m then
                invalid_arg "Checker: symmetry group is for a different graph";
              if not (Symmetry.verify p ~input sy) then
                invalid_arg
                  "Checker: protocol is not equivariant under the symmetry \
                   group";
              let card = p.Protocol.space.Stateless_core.Label.card in
              Some (make_symctx sy ~card ~r ~cd_count ~m ~n)
        in
        let capacity = min total 65536 in
        (* Out-degree is at most 2^n - 1, so for small spaces this sizes the
           edge buffer exactly; large spaces start at 128K cells and double. *)
        let edge_capacity = min (capacity * ((1 lsl n) - 1)) (1 lsl 17) in
        let sc = Domain.DLS.get scratch_key in
        (* Forget the previous exploration's keys (the set un-marks only
           the states that run reached, or switches to hashing when the
           universe outgrows the direct-map budget). *)
        Stateset.reset sc.sc_set ~universe:total;
        Vec.clear sc.sc_keys;
        Vec.clear sc.sc_parent;
        Vec.clear sc.sc_parent_mask;
        Vec.reserve sc.sc_keys capacity;
        Vec.reserve sc.sc_parent capacity;
        Vec.reserve sc.sc_parent_mask capacity;
        if sc.sc_n <> n then begin
          sc.sc_n <- n;
          sc.sc_csr <- Csr.create ~n ~capacity ~edge_capacity ()
        end
        else Csr.reset sc.sc_csr;
        let ex =
          {
            n;
            r;
            lab_count;
            cd_count;
            pow2n = 1 lsl n;
            keys = sc.sc_keys;
            csr = sc.sc_csr;
            parent = sc.sc_parent;
            parent_mask = sc.sc_parent_mask;
            cache = Trans_cache.create p ~input ~lab_count;
            sym = symc;
          }
        in
        (* One-time overflow check: every interned id is < total, so edge
           words can be pushed unchecked below. *)
        if total - 1 > Csr.max_succ ex.csr then
          invalid_arg "Checker: state space too large for edge packing";
        let rpow = Array.init n (fun i -> ipow r (n - 1 - i)) in
        let sum_rpow = Array.fold_left ( + ) 0 rpow in
        (* Key -> id interning: a direct-mapped array when [total] fits the
           budget (one load per probe, hot loops read [direct] in place), an
           open-addressing table keyed by the packed state codes beyond. *)
        let set = sc.sc_set in
        let direct = Stateset.direct set in
        let use_direct = Array.length direct > 0 in
        (* With a symmetry group, [full] accumulates the orbit sizes of the
           interned representatives — the size of the unreduced reachable
           graph the quotient stands for. *)
        let full = ref 0 in
        (* Per-domain digit scratch for canonicalization. *)
        let sdigits =
          Array.init domains (fun _ ->
              Array.make (if symc = None then 0 else m + n) 0)
        in
        let intern key ~parent ~mask =
          let id =
            if use_direct then Array.unsafe_get direct key
            else Stateset.find set key
          in
          if id >= 0 then id
          else begin
            let id = Vec.length ex.keys in
            Stateset.add set ~key ~id;
            Vec.push ex.keys key;
            Vec.push ex.parent parent;
            Vec.push ex.parent_mask mask;
            (match symc with
            | None -> ()
            | Some sctx ->
                full := !full + orbit_size sctx ~r ~cd_count ~n sdigits.(0) key);
            id
          end
        in
        (* Initialization vertices: countdown digits all r - 1. *)
        (match symc with
        | None ->
            for lab_code = 0 to lab_count - 1 do
              ignore
                (intern ((lab_code * cd_count) + (cd_count - 1)) ~parent:(-1)
                   ~mask:0)
            done
        | Some sctx ->
            (* Every node permutation fixes the all-(r-1) countdown vector,
               so a full-countdown state is canonical iff its labeling code
               is minimal in its orbit. Early-exit on the first smaller
               image: most non-canonical labelings die on the first group
               element, making the scan nearly linear in [lab_count]. *)
            let digits = sdigits.(0) in
            let card = sctx.sym_card in
            for lab_code = 0 to lab_count - 1 do
              let lab = ref lab_code in
              for e = m - 1 downto 0 do
                Array.unsafe_set digits e (!lab mod card);
                lab := !lab / card
              done;
              (* Lab weights in [w] carry the [cd_count] factor, so compare
                 against the full-key lab contribution. *)
              let target = lab_code * cd_count in
              let canonical = ref true in
              let g = ref 1 in
              while !canonical && !g < sctx.gcount do
                let wg = Array.unsafe_get sctx.w !g in
                let acc = ref 0 in
                for e = 0 to m - 1 do
                  acc :=
                    !acc + (Array.unsafe_get digits e * Array.unsafe_get wg e)
                done;
                if !acc < target then canonical := false;
                incr g
              done;
              if !canonical then
                ignore
                  (intern
                     ((lab_code * cd_count) + (cd_count - 1))
                     ~parent:(-1) ~mask:0)
            done);
        (* The per-domain worker state only exists when parallel expansion
           is possible; the sequential path runs fused and buffer-free. *)
        let caches =
          Array.init domains (fun c ->
              if c = 0 then ex.cache
              else Trans_cache.create p ~input ~lab_count)
        in
        let adds = Array.init domains (fun _ -> Array.make n 0) in
        let ecnts =
          Array.init
            (if domains > 1 then domains else 0)
            (fun _ -> Vec.create ~capacity:256 ~dummy:0 ())
        and edatas =
          Array.init
            (if domains > 1 then domains else 0)
            (fun _ -> Vec.create ~capacity:1024 ~dummy:0 ())
        in
        let hits = ref 0 and misses = ref 0 in
        let lo = ref 0 in
        while !lo < Vec.length ex.keys do
          let hi = Vec.length ex.keys in
          let count = hi - !lo in
          let nchunks =
            if domains > 1 && count >= 4 * domains && not (Pool.in_worker ())
            then domains
            else 1
          in
          if nchunks = 1 then begin
            (* Sequential fast path: expand and intern in one fused pass,
               with no intermediate edge buffers. *)
            let cache = caches.(0) and add = adds.(0) in
            let n = ex.n and r = ex.r and pow2n = ex.pow2n in
            (* When r is a power of two the countdown digits are bit
               fields, so the prelude runs on shifts instead of
               divisions. *)
            let rbits = if r land (r - 1) = 0 then ilog2 r else -1 in
            (* msum.(mask) will hold the successor countdown code under
               activation set [mask]; ctz.(1 lsl i) = i. *)
            let msum = Array.make pow2n 0 in
            let ctz = Array.make pow2n 0 in
            for i = 0 to n - 1 do
              ctz.(1 lsl i) <- i
            done;
            for id = !lo to hi - 1 do
              let key = Vec.unsafe_get ex.keys id in
              let lab = key / cd_count and cd = key mod cd_count in
              let forced = ref 0 in
              if rbits >= 0 then
                for i = 0 to n - 1 do
                  let d = (cd lsr ((n - 1 - i) * rbits)) land (r - 1) in
                  Array.unsafe_set add i ((r - d) * Array.unsafe_get rpow i);
                  if d = 0 then forced := !forced lor (1 lsl i)
                done
              else
                for i = 0 to n - 1 do
                  let d = cd / Array.unsafe_get rpow i mod r in
                  Array.unsafe_set add i ((r - d) * Array.unsafe_get rpow i);
                  if d = 0 then forced := !forced lor (1 lsl i)
                done;
              (* Subset-sum DP over the lowest set bit: each mask's countdown
                 code costs two loads and an add instead of an n-bit scan. *)
              Array.unsafe_set msum 0 (cd - sum_rpow);
              for mask = 1 to pow2n - 1 do
                let low = mask land -mask in
                Array.unsafe_set msum mask
                  (Array.unsafe_get msum (mask lxor low)
                  + Array.unsafe_get add (Array.unsafe_get ctz low))
              done;
              let forced = !forced in
              let blk, off = Trans_cache.block cache lab in
              let slotb = off + (2 * n) in
              Csr.reserve_edges ex.csr (pow2n - 1);
              for mask = 1 to pow2n - 1 do
                if mask land forced = forced then begin
                  (* [Trans_cache.step_in] and [intern], hand-inlined: this
                     loop body runs once per states-graph edge. *)
                  let slot = slotb + mask in
                  let cached = Array.unsafe_get blk slot in
                  let packed =
                    if cached >= 0 then begin
                      incr hits;
                      cached
                    end
                    else begin
                      incr misses;
                      let delta = ref 0 in
                      for i = 0 to n - 1 do
                        if mask land (1 lsl i) <> 0 then
                          delta := !delta + Array.unsafe_get blk (off + i)
                      done;
                      let packed =
                        ((lab + !delta) * 2) lor (if !delta <> 0 then 1 else 0)
                      in
                      Array.unsafe_set blk slot packed;
                      packed
                    end
                  in
                  let skey =
                    ((packed lsr 1) * cd_count) + Array.unsafe_get msum mask
                  in
                  let skey =
                    match symc with
                    | None -> skey
                    | Some sctx ->
                        canon_key sctx ~r ~cd_count ~n sdigits.(0) skey
                  in
                  let sid =
                    if use_direct then Array.unsafe_get direct skey
                    else Stateset.find set skey
                  in
                  let succ =
                    if sid >= 0 then sid
                    else begin
                      let sid = Vec.length ex.keys in
                      Stateset.add set ~key:skey ~id:sid;
                      Vec.push ex.keys skey;
                      Vec.push ex.parent id;
                      Vec.push ex.parent_mask mask;
                      (match symc with
                      | None -> ()
                      | Some sctx ->
                          full :=
                            !full
                            + orbit_size sctx ~r ~cd_count ~n sdigits.(0) skey);
                      sid
                    end
                  in
                  Csr.unsafe_push_edge ex.csr ~succ ~mask
                    ~changed:(packed land 1)
                end
              done;
              Csr.end_row ex.csr
            done
          end
          else begin
            let bound c = !lo + (count * c / nchunks) in
            for c = 0 to nchunks - 1 do
              Vec.clear ecnts.(c);
              Vec.clear edatas.(c)
            done;
            (* One chunk per domain through the persistent pool. Worker
               state is indexed by chunk, not slot: any pool domain may
               claim any chunk, and a chunk is claimed exactly once. *)
            Pool.run ~domains:nchunks ~nchunks (fun ~slot:_ c ->
                expand_range ex caches.(c) ~rpow ~sum_rpow ~add:adds.(c)
                  ~sym_digits:sdigits.(c) ~ecnt:ecnts.(c) ~edata:edatas.(c)
                  (bound c) (bound (c + 1)));
            (* Sequential interning pass, in expanding-state order. *)
            let id = ref !lo in
            for c = 0 to nchunks - 1 do
              let ecnt = ecnts.(c) and edata = edatas.(c) in
              let pos = ref 0 in
              for s = 0 to Vec.length ecnt - 1 do
                for _k = 1 to Vec.unsafe_get ecnt s do
                  let key = Vec.unsafe_get edata !pos
                  and mc = Vec.unsafe_get edata (!pos + 1) in
                  pos := !pos + 2;
                  let succ = intern key ~parent:!id ~mask:(mc lsr 1) in
                  Csr.push_edge ex.csr ~succ ~mask:(mc lsr 1)
                    ~changed:(mc land 1)
                done;
                Csr.end_row ex.csr;
                incr id
              done
            done
          end;
          lo := hi
        done;
        (* Flush the fused loop's batched memo counters. *)
        let c0 = caches.(0) in
        Trans_cache.add_hits c0 !hits;
        Trans_cache.add_misses c0 !misses;
        last_stats_ref :=
          Some
            {
              states = Vec.length ex.keys;
              full_states =
                (match symc with
                | None -> Vec.length ex.keys
                | Some _ -> !full);
              edges = Csr.num_edges ex.csr;
              memo_hits =
                Array.fold_left (fun a c -> a + Trans_cache.hits c) 0 caches;
              memo_misses =
                Array.fold_left (fun a c -> a + Trans_cache.misses c) 0 caches;
              domains_used = domains;
            };
        Ok ex
      end

(* Iterative Tarjan over the CSR states-graph. All stacks are flat int
   arrays — a vertex enters each stack at most once, so [count] slots
   suffice and the traversal allocates nothing per edge. *)
let scc_of_explored ex =
  let count = Vec.length ex.keys in
  let sc = Domain.DLS.get scratch_key in
  if Array.length sc.sc_index < count then begin
    (* Fresh scratch: all-zero [sc_index] reads as unvisited because the
       clock only moves forward. [sc_on_stack] stays all-zero between runs
       since every pushed vertex is popped. *)
    sc.sc_index <- Array.make count 0;
    sc.sc_lowlink <- Array.make count 0;
    sc.sc_comp <- Array.make count 0;
    sc.sc_stack <- Array.make count 0;
    sc.sc_call_v <- Array.make count 0;
    sc.sc_call_cur <- Array.make count 0;
    sc.sc_call_end <- Array.make count 0;
    sc.sc_on_stack <- Bytes.make count '\000';
    if sc.sc_clock = 0 then sc.sc_clock <- 1
  end;
  let base = sc.sc_clock in
  let index = sc.sc_index in
  let lowlink = sc.sc_lowlink in
  let on_stack = sc.sc_on_stack in
  let comp = sc.sc_comp in
  let stack = sc.sc_stack in
  let sp = ref 0 in
  let call_v = sc.sc_call_v in
  (* Per-frame cursor and end into the flat edge buffer — hoists the row
     bounds out of the per-edge loop. *)
  let call_cur = sc.sc_call_cur in
  let call_end = sc.sc_call_end in
  let csp = ref 0 in
  let next_index = ref base and next_comp = ref 0 in
  let csr = ex.csr in
  for root = 0 to count - 1 do
    if index.(root) < base then begin
      call_v.(0) <- root;
      call_cur.(0) <- Csr.row_start csr root;
      call_end.(0) <- Csr.row_start csr (root + 1);
      csp := 1;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack.(!sp) <- root;
      incr sp;
      Bytes.unsafe_set on_stack root '\001';
      while !csp > 0 do
        let fr = !csp - 1 in
        let v = Array.unsafe_get call_v fr in
        let cur = Array.unsafe_get call_cur fr in
        if cur < Array.unsafe_get call_end fr then begin
          Array.unsafe_set call_cur fr (cur + 1);
          let u = Csr.succ_of_word csr (Csr.cell csr cur) in
          if Array.unsafe_get index u < base then begin
            index.(u) <- !next_index;
            lowlink.(u) <- !next_index;
            incr next_index;
            stack.(!sp) <- u;
            incr sp;
            Bytes.unsafe_set on_stack u '\001';
            call_v.(!csp) <- u;
            call_cur.(!csp) <- Csr.row_start csr u;
            call_end.(!csp) <- Csr.row_start csr (u + 1);
            incr csp
          end
          else if Bytes.unsafe_get on_stack u = '\001' then
            lowlink.(v) <- min lowlink.(v) index.(u)
        end
        else begin
          decr csp;
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              decr sp;
              let u = stack.(!sp) in
              Bytes.unsafe_set on_stack u '\000';
              comp.(u) <- !next_comp;
              if u = v then continue := false
            done;
            incr next_comp
          end;
          if !csp > 0 then begin
            let parent = call_v.(!csp - 1) in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  sc.sc_clock <- !next_index;
  comp

(* Shortest intra-component path src -> dst as a list of activation masks. *)
let path_within_scc ex comp ~src ~dst =
  if src = dst then Some []
  else begin
    let count = Vec.length ex.keys in
    let pred = Array.make count (-1) in
    let pred_mask = Array.make count 0 in
    let queue = Queue.create () in
    pred.(src) <- src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let deg = Csr.degree ex.csr v in
      let k = ref 0 in
      while (not !found) && !k < deg do
        let u = Csr.succ ex.csr v !k and mask = Csr.mask ex.csr v !k in
        if comp.(u) = comp.(src) && pred.(u) < 0 then begin
          pred.(u) <- v;
          pred_mask.(u) <- mask;
          if u = dst then found := true else Queue.add u queue
        end;
        incr k
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then acc else walk pred.(v) (pred_mask.(v) :: acc)
      in
      Some (walk dst [])
    end
  end

(* Path from a BFS root (an initialization vertex) to [id], plus the root's
   labeling code. *)
let path_from_root ex id =
  let rec walk id acc =
    if Vec.get ex.parent id < 0 then (id, acc)
    else walk (Vec.get ex.parent id) (Vec.get ex.parent_mask id :: acc)
  in
  let root, masks = walk id [] in
  (Vec.get ex.keys root / ex.cd_count, masks)

let masks_to_sets n masks = List.map (nodes_of_mask n) masks

let make_witness ex ~cycle_entry ~cycle_masks =
  let init_code, prefix_masks = path_from_root ex cycle_entry in
  {
    init_code;
    prefix = masks_to_sets ex.n prefix_masks;
    cycle = masks_to_sets ex.n cycle_masks;
  }

(* Lift a quotient-graph witness to a concrete run (symmetry mode).

   Invariant along the walk: the canonical form of the tracked real state
   is the quotient state the Q-path is at (true at the root, which is
   interned canonically, hence a genuine initial state). At each step, pick
   a group element [g] mapping the real state onto its canonical form; real
   node [j] occupies position [g j] of the canonical state, so it is
   activated iff the Q-mask activates [g j]. Equivariance maps forced sets
   to forced sets (lifted masks stay admissible) and runs to runs (the
   invariant propagates). The Q-cycle is traversed repeatedly until the
   real walk revisits an entry state: entries live in the finite orbit of
   the Q-entry and the walk is deterministic, so it closes within
   orbit-size traversals. Every traversal crosses the lifted image of the
   Q-cycle's label-changing edge — the changed bit is G-invariant — so the
   closed real loop replays as a genuine oscillation. *)
let make_witness_sym ex sctx ~cycle_entry ~cycle_masks =
  let n = ex.n and r = ex.r and cd_count = ex.cd_count in
  let m = sctx.sym_m and card = sctx.sym_card in
  let digits = Array.make (m + n) 0 in
  let nps = Symmetry.node_perms sctx.sy in
  let rpow = Array.init n (fun i -> ipow r (n - 1 - i)) in
  (* Index of a group element mapping real state [key] onto its canonical
     form; 0 (identity) when [key] is already canonical. *)
  let g_star key =
    let lab = ref (key / cd_count) and cd = ref (key mod cd_count) in
    for e = m - 1 downto 0 do
      digits.(e) <- !lab mod card;
      lab := !lab / card
    done;
    for i = n - 1 downto 0 do
      digits.(m + i) <- !cd mod r;
      cd := !cd / r
    done;
    let best = ref key and bg = ref 0 in
    for g = 1 to sctx.gcount - 1 do
      let wg = sctx.w.(g) in
      let acc = ref 0 in
      for d = 0 to m + n - 1 do
        acc := !acc + (digits.(d) * wg.(d))
      done;
      if !acc < !best then begin
        best := !acc;
        bg := g
      end
    done;
    !bg
  in
  (* Lift one Q-step taken at [canon key] with [qmask]: the real mask, and
     the real successor state. *)
  let step_lift key qmask =
    let np = nps.(g_star key) in
    let rmask = ref 0 in
    for j = 0 to n - 1 do
      if qmask land (1 lsl np.(j)) <> 0 then rmask := !rmask lor (1 lsl j)
    done;
    let rmask = !rmask in
    let lab = key / cd_count and cd = key mod cd_count in
    let packed = Trans_cache.step ex.cache ~lab_code:lab ~mask:rmask in
    let cdsum = ref 0 in
    for i = 0 to n - 1 do
      let d = cd / rpow.(i) mod r in
      let d' = if rmask land (1 lsl i) <> 0 then r - 1 else d - 1 in
      cdsum := !cdsum + (d' * rpow.(i))
    done;
    (rmask, ((packed lsr 1) * cd_count) + !cdsum)
  in
  let play key masks =
    let key, rev =
      List.fold_left
        (fun (key, acc) qmask ->
          let rmask, key' = step_lift key qmask in
          (key', rmask :: acc))
        (key, []) masks
    in
    (key, List.rev rev)
  in
  let init_code, prefix_q = path_from_root ex cycle_entry in
  let start = (init_code * cd_count) + (cd_count - 1) in
  let entry0, prefix_real = play start prefix_q in
  let rec close seen segs idx key =
    match List.assoc_opt key seen with
    | Some k ->
        (* Traversals before the revisited entry extend the prefix; the
           rest close a real cycle through that entry. *)
        let segs = List.rev segs in
        let pre = List.filteri (fun i _ -> i < k) segs in
        let cyc = List.filteri (fun i _ -> i >= k) segs in
        (List.concat pre, List.concat cyc)
    | None ->
        let key', ms = play key cycle_masks in
        close ((key, idx) :: seen) (ms :: segs) (idx + 1) key'
  in
  let prefix_ext, cycle_real = close [] [] 0 entry0 in
  {
    init_code;
    prefix = masks_to_sets n (prefix_real @ prefix_ext);
    cycle = masks_to_sets n cycle_real;
  }

let check_label ?domains ?symmetry p ~input ~r ~max_states =
  match explore ?domains ?symmetry p ~input ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      (* Find a label-changing edge inside an SCC. *)
      let csr = ex.csr in
      let found = ref None in
      let count = Vec.length ex.keys in
      let id = ref 0 in
      while !found == None && !id < count do
        let base = Csr.row_start csr !id in
        let deg = Csr.degree csr !id in
        let cid = Array.unsafe_get comp !id in
        let k = ref 0 in
        while !found == None && !k < deg do
          let w = Csr.cell csr (base + !k) in
          if Csr.changed_of_word w = 1 then begin
            let u = Csr.succ_of_word csr w in
            if Array.unsafe_get comp u = cid then
              found := Some (!id, u, Csr.mask_of_word csr w)
          end;
          incr k
        done;
        incr id
      done;
      match !found with
      | None -> Stabilizing
      | Some (v, u, mask) -> (
          match path_within_scc ex comp ~src:u ~dst:v with
          | None -> assert false (* u, v lie in the same SCC *)
          | Some back ->
              let cycle_masks = mask :: back in
              Oscillating
                (match ex.sym with
                | None -> make_witness ex ~cycle_entry:v ~cycle_masks
                | Some sctx ->
                    make_witness_sym ex sctx ~cycle_entry:v ~cycle_masks)))

let check_output ?domains p ~input ~r ~max_states =
  match explore ?domains p ~input ~r ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      let count = Vec.length ex.keys in
      (* For every intra-SCC edge and activated node, record the produced
         output; two distinct outputs for the same node in one SCC witness
         output divergence. Outputs depend only on the source labeling and
         the node, so they are read off the transition cache instead of
         re-evaluating reaction functions per edge. Keys are packed as
         [scc * n + node] — SCC ids are < count, so the code is unique —
         and the table is sized for the worst case (one entry per state
         and node) capped at a sane bound, avoiding boxed tuple keys and
         rehash-on-grow in the scan. *)
      let seen : (int, int * (int * int)) Hashtbl.t =
        Hashtbl.create (min (count * ex.n) (1 lsl 16))
      in
      (* scc * n + node -> (output, (edge src, mask)) *)
      let csr = ex.csr in
      let conflict = ref None in
      let id = ref 0 in
      while !conflict == None && !id < count do
        let lab_code = Vec.unsafe_get ex.keys !id / ex.cd_count in
        let base = Csr.row_start csr !id in
        let deg = Csr.degree csr !id in
        let cid = Array.unsafe_get comp !id in
        let k = ref 0 in
        while !conflict == None && !k < deg do
          let w = Csr.cell csr (base + !k) in
          let u = Csr.succ_of_word csr w in
          if Array.unsafe_get comp u = cid then begin
            let mask = Csr.mask_of_word csr w in
            List.iter
              (fun node ->
                if !conflict == None then begin
                  let y = Trans_cache.output ex.cache ~lab_code ~node in
                  let k = (cid * ex.n) + node in
                  match Hashtbl.find_opt seen k with
                  | None -> Hashtbl.replace seen k (y, (!id, mask))
                  | Some (y0, (src0, mask0)) ->
                      if y0 <> y then
                        conflict := Some ((src0, mask0), (!id, mask), u)
                end)
              (nodes_of_mask ex.n mask)
          end;
          incr k
        done;
        incr id
      done;
      match !conflict with
      | None -> Stabilizing
      | Some ((src0, mask0), (src1, mask1), dst1) -> (
          (* Build a cycle through both conflicting edges:
             src0 -e0-> dst0 ~~> src1 -e1-> dst1 ~~> src0. *)
          let dst0 =
            let rec find k =
              if
                Csr.mask ex.csr src0 k = mask0
                && comp.(Csr.succ ex.csr src0 k) = comp.(src0)
              then Csr.succ ex.csr src0 k
              else find (k + 1)
            in
            find 0
          in
          match
            ( path_within_scc ex comp ~src:dst0 ~dst:src1,
              path_within_scc ex comp ~src:dst1 ~dst:src0 )
          with
          | Some mid, Some back ->
              let cycle_masks = (mask0 :: mid) @ (mask1 :: back) in
              Oscillating (make_witness ex ~cycle_entry:src0 ~cycle_masks)
          | _ -> assert false))

let replay p ~input witness =
  let init = Protocol.decode_config p witness.init_code in
  let play config sets =
    List.fold_left
      (fun c active -> Engine.step p ~input c ~active)
      config sets
  in
  let at_cycle = play init witness.prefix in
  let start_key = Protocol.config_key p at_cycle in
  (* Walk the cycle watching for label changes and output changes. *)
  let label_changed = ref false in
  let output_changed = ref false in
  (* At most one entry per node. *)
  let outputs : (int, int) Hashtbl.t =
    Hashtbl.create (Protocol.num_nodes p)
  in
  let config = ref at_cycle in
  List.iter
    (fun active ->
      let before = Protocol.config_key p !config in
      List.iter
        (fun node ->
          let _, y = Protocol.apply p ~input !config node in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        active;
      config := Engine.step p ~input !config ~active;
      if not (String.equal before (Protocol.config_key p !config)) then
        label_changed := true)
    witness.cycle;
  let returns = String.equal start_key (Protocol.config_key p !config) in
  returns && (!label_changed || !output_changed)

let max_stabilizing_r ?domains ?symmetry p ~input ~r_limit ~max_states =
  let rec loop r =
    if r > r_limit then Some r_limit
    else
      match check_label ?domains ?symmetry p ~input ~r ~max_states with
      | Stabilizing -> loop (r + 1)
      | Oscillating _ -> Some (r - 1)
      | Too_large _ -> None
  in
  loop 1

(* ------------------------------------------------------------------ *)
(* Worst-case recovery                                                 *)
(* ------------------------------------------------------------------ *)

type recovery =
  | Worst_recovery of { steps : int; witness_code : int }
  | Never_settles of { init_code : int }
  | Recovery_too_large of { needed : int }

(* A transient fault can leave the system in ANY labeling, so worst-case
   recovery is the maximum synchronous output-stabilization time over all
   |Σ|^|E| labelings. Under the synchronous schedule the dynamics is a
   functional graph on labelings: σ(ℓ) is the full-mask transition and y(ℓ)
   the output vector every node writes when reacting at ℓ — both memoized
   per labeling by {!Trans_cache}, so each labeling's reaction functions are
   evaluated once even though it appears on many trajectories.

   Every trajectory eventually enters a cycle. If some node's output varies
   around a reachable cycle, runs through it never output-stabilize
   ([Never_settles]). Otherwise let Y be the cycle's constant output vector
   and f(ℓ) the earliest index from which the sequence y(ℓ), y(σℓ), ... is
   constantly Y; f satisfies f(ℓ) = 0 when y(ℓ) = Y and f(σℓ) = 0, else
   f(σℓ) + 1, and is computed by one backward propagation per trajectory.
   The engine measures stabilization on the stored-output trace whose step-0
   entry is the all-zero vector [Protocol.decode_config] installs, so the
   per-labeling stabilization time is 0 when f(ℓ) = 0 and Y = 0, and
   f(ℓ) + 1 otherwise — exactly what [Engine.output_stabilization_time]
   reports, giving the simulation harness a differential oracle. *)
(* [domains] splits the start-labeling range into contiguous chunks, each
   swept by its own domain with a private {!Trans_cache} and propagation
   arrays. Every per-labeling quantity below (settled-or-not, stabilization
   steps) is a function of the dynamics alone — the cycle representative a
   sweep picks depends on where it entered the cycle, but only its output
   vector is ever consulted — so chunk results are independent of traversal
   order and the in-order merge reproduces the sequential scan exactly:
   the same verdict, steps, witness and diverging code for every domain
   count. *)
let worst_case_recovery ?(domains = 1) p ~input ~max_states =
  let n = Protocol.num_nodes p in
  match Protocol.labelings_count p with
  | None -> Recovery_too_large { needed = max_int }
  | Some count when count > max_states -> Recovery_too_large { needed = count }
  | Some count ->
      let sweep lo hi =
      let cache = Trans_cache.create p ~input ~lab_count:count in
      let full_mask = (1 lsl n) - 1 in
      let succ = Array.make count (-1) in
      let succ_of l =
        if succ.(l) >= 0 then succ.(l)
        else begin
          let s = Trans_cache.step cache ~lab_code:l ~mask:full_mask lsr 1 in
          succ.(l) <- s;
          s
        end
      in
      let y_equal a b =
        let rec go i =
          i >= n
          || Trans_cache.output cache ~lab_code:a ~node:i
             = Trans_cache.output cache ~lab_code:b ~node:i
             && go (i + 1)
        in
        go 0
      in
      let y_zero a =
        let rec go i =
          i >= n
          || (Trans_cache.output cache ~lab_code:a ~node:i = 0 && go (i + 1))
        in
        go 0
      in
      (* status: 0 unvisited, 1 on the current trajectory, 2 done.
         For done labelings: f.(l) as above and yrep.(l) a labeling whose
         immediate outputs equal the settled vector Y, or -1 when the
         trajectory's outputs never settle. *)
      let status = Bytes.make count '\000' in
      let f = Array.make count 0 in
      let yrep = Array.make count (-1) in
      let process start =
        if Bytes.get status start = '\000' then begin
          let path = ref [] in
          let l = ref start in
          while Bytes.get status !l = '\000' do
            Bytes.set status !l '\001';
            path := !l :: !path;
            l := succ_of !l
          done;
          (* [!path] holds the walked prefix, deepest labeling first. *)
          if Bytes.get status !l = '\001' then begin
            (* Fresh cycle: close it, then propagate along the prefix. *)
            let entry = !l in
            let rec split cyc = function
              | [] -> assert false
              | x :: rest ->
                  if x = entry then (x :: cyc, rest) else split (x :: cyc) rest
            in
            let cycle, prefix = split [] !path in
            let constant = List.for_all (fun c -> y_equal c entry) cycle in
            List.iter
              (fun c ->
                Bytes.set status c '\002';
                if constant then begin
                  f.(c) <- 0;
                  yrep.(c) <- entry
                end
                else yrep.(c) <- -1)
              cycle;
            path := prefix
          end;
          List.iter
            (fun x ->
              let s = succ_of x in
              (if yrep.(s) < 0 then yrep.(x) <- -1
               else begin
                 yrep.(x) <- yrep.(s);
                 f.(x) <-
                   (if f.(s) = 0 && y_equal x yrep.(s) then 0 else f.(s) + 1)
               end);
              Bytes.set status x '\002')
            !path
        end
      in
      let worst = ref (-1) and witness = ref 0 and diverging = ref (-1) in
      let l = ref lo in
      while !diverging < 0 && !l < hi do
        process !l;
        (if yrep.(!l) < 0 then diverging := !l
         else
           let steps =
             if f.(!l) = 0 && y_zero yrep.(!l) then 0 else f.(!l) + 1
           in
           if steps > !worst then begin
             worst := steps;
             witness := !l
           end);
        incr l
      done;
      (!worst, !witness, !diverging)
      in
      let nchunks = if domains > 1 && count >= 2 * domains then domains else 1 in
      let chunks =
        if nchunks = 1 then [| sweep 0 count |]
        else
          Stateless_core.Parrun.map ~domains:nchunks
            ~ctx:(fun () -> ())
            nchunks
            (fun () c -> sweep (count * c / nchunks) (count * (c + 1) / nchunks))
      in
      (* In-order merge: the first diverging start wins (chunks are ascending
         ranges, and each stops at its first diverging labeling); otherwise
         the strict [>] keeps the earliest labeling attaining the maximum,
         exactly as the sequential scan would. *)
      let rec merge i worst witness =
        if i >= Array.length chunks then
          Worst_recovery { steps = worst; witness_code = witness }
        else
          let w, wit, div = chunks.(i) in
          if div >= 0 then Never_settles { init_code = div }
          else if w > worst then merge (i + 1) w wit
          else merge (i + 1) worst witness
      in
      merge 0 (-1) 0

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)
(* ------------------------------------------------------------------ *)

(* The seed checker, kept verbatim as an independent oracle: it re-derives
   every transition through [Engine.step] and stores per-state boxed edge
   arrays, sharing no exploration code with the memoized/CSR path above.
   Exploration order is identical, so verdicts — including witnesses — must
   match exactly; the differential tests in [test_checker.ml] assert this. *)
module Naive = struct
  type nexplored = {
    n : int;
    r : int;
    state_of_key : (int, int) Hashtbl.t;
    keys : int Vec.t;  (* id -> lab_code * r^n + cd_code *)
    edges : int array Vec.t;  (* id -> flattened (succ, mask, changed) *)
    parent : int Vec.t;
    parent_mask : int Vec.t;
  }

  let decode_state ex key =
    let cd_count = ipow ex.r ex.n in
    let lab_code = key / cd_count and cd_code = key mod cd_count in
    let countdown = Array.make ex.n 0 in
    let rest = ref cd_code in
    for i = ex.n - 1 downto 0 do
      countdown.(i) <- (!rest mod ex.r) + 1;
      rest := !rest / ex.r
    done;
    (lab_code, countdown)

  let encode_state ex lab_code countdown =
    let code = ref lab_code in
    for i = 0 to ex.n - 1 do
      code := (!code * ex.r) + (countdown.(i) - 1)
    done;
    !code

  let explore p ~input ~r ~max_states =
    let n = Protocol.num_nodes p in
    if n > 20 then
      invalid_arg "Checker: too many nodes for subset enumeration";
    match Protocol.labelings_count p with
    | None -> Error max_int
    | Some lab_count ->
        let cd_count = ipow r n in
        if cd_count > max_states || lab_count > max_states / cd_count then
          Error
            (if lab_count > max_int / cd_count then max_int
             else lab_count * cd_count)
        else begin
          let ex =
            {
              n;
              r;
              state_of_key = Hashtbl.create (4 * lab_count);
              keys = Vec.create ~dummy:0 ();
              edges = Vec.create ~dummy:[||] ();
              parent = Vec.create ~dummy:(-1) ();
              parent_mask = Vec.create ~dummy:0 ();
            }
          in
          let queue = Queue.create () in
          let intern key ~parent ~mask =
            match Hashtbl.find_opt ex.state_of_key key with
            | Some id -> id
            | None ->
                let id = Vec.length ex.keys in
                Hashtbl.replace ex.state_of_key key id;
                Vec.push ex.keys key;
                Vec.push ex.edges [||];
                Vec.push ex.parent parent;
                Vec.push ex.parent_mask mask;
                Queue.add id queue;
                id
          in
          let full = Array.make n r in
          for lab_code = 0 to lab_count - 1 do
            ignore (intern (encode_state ex lab_code full) ~parent:(-1) ~mask:0)
          done;
          while not (Queue.is_empty queue) do
            let id = Queue.pop queue in
            let lab_code, countdown = decode_state ex (Vec.get ex.keys id) in
            let config = Protocol.decode_config p lab_code in
            let forced = ref 0 in
            for i = 0 to n - 1 do
              if countdown.(i) = 1 then forced := !forced lor (1 lsl i)
            done;
            let out = ref [] in
            for mask = 1 to (1 lsl n) - 1 do
              if mask land !forced = !forced then begin
                let active = nodes_of_mask n mask in
                let next = Engine.step p ~input config ~active in
                let next_lab = Protocol.encode_config p next in
                let next_cd =
                  Array.init n (fun i ->
                      if mask land (1 lsl i) <> 0 then r else countdown.(i) - 1)
                in
                let key = encode_state ex next_lab next_cd in
                let succ = intern key ~parent:id ~mask in
                let changed = if next_lab <> lab_code then 1 else 0 in
                out := changed :: mask :: succ :: !out
              end
            done;
            Vec.set ex.edges id (Array.of_list (List.rev !out))
          done;
          Ok ex
        end

  let scc_of_explored ex =
    let count = Vec.length ex.keys in
    let index = Array.make count (-1) in
    let lowlink = Array.make count 0 in
    let on_stack = Array.make count false in
    let comp = Array.make count (-1) in
    let stack = Stack.create () in
    let next_index = ref 0 and next_comp = ref 0 in
    let call = Stack.create () in
    let succ_at id k = (Vec.get ex.edges id).(3 * k) in
    let degree id = Array.length (Vec.get ex.edges id) / 3 in
    for root = 0 to count - 1 do
      if index.(root) < 0 then begin
        Stack.push (root, 0) call;
        index.(root) <- !next_index;
        lowlink.(root) <- !next_index;
        incr next_index;
        Stack.push root stack;
        on_stack.(root) <- true;
        while not (Stack.is_empty call) do
          let v, child = Stack.pop call in
          if child < degree v then begin
            Stack.push (v, child + 1) call;
            let u = succ_at v child in
            if index.(u) < 0 then begin
              index.(u) <- !next_index;
              lowlink.(u) <- !next_index;
              incr next_index;
              Stack.push u stack;
              on_stack.(u) <- true;
              Stack.push (u, 0) call
            end
            else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
          end
          else begin
            if lowlink.(v) = index.(v) then begin
              let continue = ref true in
              while !continue do
                let u = Stack.pop stack in
                on_stack.(u) <- false;
                comp.(u) <- !next_comp;
                if u = v then continue := false
              done;
              incr next_comp
            end;
            if not (Stack.is_empty call) then begin
              let parent, _ = Stack.top call in
              lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            end
          end
        done
      end
    done;
    comp

  let path_within_scc ex comp ~src ~dst =
    if src = dst then Some []
    else begin
      let count = Vec.length ex.keys in
      let pred = Array.make count (-1) in
      let pred_mask = Array.make count 0 in
      let queue = Queue.create () in
      pred.(src) <- src;
      Queue.add src queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let edges = Vec.get ex.edges v in
        let k = ref 0 in
        while (not !found) && !k < Array.length edges / 3 do
          let u = edges.(3 * !k) and mask = edges.((3 * !k) + 1) in
          if comp.(u) = comp.(src) && pred.(u) < 0 then begin
            pred.(u) <- v;
            pred_mask.(u) <- mask;
            if u = dst then found := true else Queue.add u queue
          end;
          incr k
        done
      done;
      if not !found then None
      else begin
        let rec walk v acc =
          if v = src then acc else walk pred.(v) (pred_mask.(v) :: acc)
        in
        Some (walk dst [])
      end
    end

  let path_from_root ex id =
    let rec walk id acc =
      if Vec.get ex.parent id < 0 then (id, acc)
      else walk (Vec.get ex.parent id) (Vec.get ex.parent_mask id :: acc)
    in
    let root, masks = walk id [] in
    let lab_code, _ = decode_state ex (Vec.get ex.keys root) in
    (lab_code, masks)

  let make_witness ex ~cycle_entry ~cycle_masks =
    let init_code, prefix_masks = path_from_root ex cycle_entry in
    {
      init_code;
      prefix = masks_to_sets ex.n prefix_masks;
      cycle = masks_to_sets ex.n cycle_masks;
    }

  let check_label p ~input ~r ~max_states =
    match explore p ~input ~r ~max_states with
    | Error needed -> Too_large { needed }
    | Ok ex -> (
        let comp = scc_of_explored ex in
        let found = ref None in
        let count = Vec.length ex.keys in
        let id = ref 0 in
        while !found = None && !id < count do
          let edges = Vec.get ex.edges !id in
          let k = ref 0 in
          while !found = None && !k < Array.length edges / 3 do
            let u = edges.(3 * !k)
            and mask = edges.((3 * !k) + 1)
            and changed = edges.((3 * !k) + 2) in
            if changed = 1 && comp.(u) = comp.(!id) then
              found := Some (!id, u, mask);
            incr k
          done;
          incr id
        done;
        match !found with
        | None -> Stabilizing
        | Some (v, u, mask) -> (
            match path_within_scc ex comp ~src:u ~dst:v with
            | None -> assert false
            | Some back ->
                Oscillating
                  (make_witness ex ~cycle_entry:v ~cycle_masks:(mask :: back))))

  let check_output p ~input ~r ~max_states =
    match explore p ~input ~r ~max_states with
    | Error needed -> Too_large { needed }
    | Ok ex -> (
        let comp = scc_of_explored ex in
        let count = Vec.length ex.keys in
        (* Packed [scc * n + node] keys and worst-case pre-sizing, as in
           the fast checker's twin table. *)
        let seen : (int, int * (int * int)) Hashtbl.t =
          Hashtbl.create (min (count * ex.n) (1 lsl 16))
        in
        let conflict = ref None in
        let id = ref 0 in
        while !conflict = None && !id < count do
          let lab_code, _ = decode_state ex (Vec.get ex.keys !id) in
          let config = Protocol.decode_config p lab_code in
          let edges = Vec.get ex.edges !id in
          let k = ref 0 in
          while !conflict = None && !k < Array.length edges / 3 do
            let u = edges.(3 * !k) and mask = edges.((3 * !k) + 1) in
            if comp.(u) = comp.(!id) then
              List.iter
                (fun node ->
                  if !conflict = None then begin
                    let _, y = Protocol.apply p ~input config node in
                    let key = (comp.(!id) * ex.n) + node in
                    match Hashtbl.find_opt seen key with
                    | None -> Hashtbl.replace seen key (y, (!id, mask))
                    | Some (y0, (src0, mask0)) ->
                        if y0 <> y then
                          conflict := Some ((src0, mask0), (!id, mask), u)
                  end)
                (nodes_of_mask ex.n mask);
            incr k
          done;
          incr id
        done;
        match !conflict with
        | None -> Stabilizing
        | Some ((src0, mask0), (src1, mask1), dst1) -> (
            let dst0 =
              let edges = Vec.get ex.edges src0 in
              let rec find k =
                if
                  edges.((3 * k) + 1) = mask0
                  && comp.(edges.(3 * k)) = comp.(src0)
                then edges.(3 * k)
                else find (k + 1)
              in
              find 0
            in
            match
              ( path_within_scc ex comp ~src:dst0 ~dst:src1,
                path_within_scc ex comp ~src:dst1 ~dst:src0 )
            with
            | Some mid, Some back ->
                let cycle_masks = (mask0 :: mid) @ (mask1 :: back) in
                Oscillating (make_witness ex ~cycle_entry:src0 ~cycle_masks)
            | _ -> assert false))
end
