(** Fooling sets and the label-complexity lower-bound method of Section 6.

    Definition 6.1: a fooling set for [f : {0,1}^n → {0,1}] is a set
    [S ⊆ {0,1}^m × {0,1}^(n-m)] of input pairs on which [f] is constantly
    [b], such that crossing any two distinct pairs breaks the value. By
    Theorem 6.2, if additionally the [x]-coordinates feeding cut edges out
    of the node set [{0..m-1}] and the [y]-coordinates feeding cut edges
    into it are constant over [S], then every label-stabilizing protocol
    computing [f] needs labels of at least [log2 |S| / (|C| + |D|)] bits:
    each pair must stabilize to a distinct cut labeling.

    The corollaries pin the equality and majority functions on the
    bidirectional ring, where the cut has only 4 edges. *)

type t = {
  m : int;  (** split point: x is the first [m] bits. *)
  value : bool;  (** the constant value b on S. *)
  pairs : (bool array * bool array) list;
}

exception Empty_cut
(** Raised by {!bound} when [cut <= 0] — the bound is meaningless without
    cut edges. The CLI maps it to exit code 125. *)

exception Unsupported_size of { fn : string; n : int }
(** Raised by {!equality_fooling} ([fn = "equality"]: needs even [n >= 6])
    and {!majority_fooling} ([fn = "majority"]: needs [n >= 4]) when no
    fooling set of the requested size exists. *)

(** [verify f ~n s] checks Definition 6.1 exhaustively over all pairs. *)
val verify : (bool array -> bool) -> n:int -> t -> bool

(** [cut_sizes g ~m] is [(|C|, |D|)]: edges leaving and entering
    [{0..m-1}]. *)
val cut_sizes : Stateless_graph.Digraph.t -> m:int -> int * int

(** [constant_on_cut g ~m s] checks Theorem 6.2's coordinate-constancy
    hypotheses: sources of C-edges have constant [x]-bits and sources of
    D-edges constant [y]-bits across [S]. *)
val constant_on_cut : Stateless_graph.Digraph.t -> m:int -> t -> bool

(** [bound s ~cut] = [log2 |S| / cut] bits, the Theorem 6.2 lower bound. *)
val bound : t -> cut:int -> float

(** {2 The paper's functions and fooling sets} *)

(** The paper's Eq_n: 1 iff [n] even and the two halves agree. *)
val equality_fn : bool array -> bool

(** The paper's Maj_n: 1 iff at least [n/2] ones. *)
val majority_fn : bool array -> bool

(** Corollary 6.3's fooling set for Eq_n (even [n]): pairs [(x, x)] with
    the cut-adjacent coordinates pinned to 1; size [2^(n/2 - 2)]. *)
val equality_fooling : int -> t

(** Corollary 6.4's fooling set for Maj_n: pairs [(1·1^k·0^(m-1-k),
    complement)]; size [⌊n/2⌋]. *)
val majority_fooling : int -> t

(** The paper's stated bounds: [(n-2)/8] for equality and
    [log2(⌊n/2⌋)/4] for majority on the bidirectional ring. *)
val equality_paper_bound : int -> float

val majority_paper_bound : int -> float

(** Theorem 5.10's counting bound: on any family of graphs with max degree
    [k], some function needs labels of [n / 4k] bits. *)
val counting_bound : n:int -> k:int -> float

(** Proposition 2.1: the graph radius lower-bounds the round complexity of
    every output-stabilizing protocol for a non-constant function. *)
val radius_bound : Stateless_graph.Digraph.t -> int option
