module Digraph = Stateless_graph.Digraph
module Algorithms = Stateless_graph.Algorithms

type t = {
  m : int;
  value : bool;
  pairs : (bool array * bool array) list;
}

exception Empty_cut
exception Unsupported_size of { fn : string; n : int }

let () =
  Printexc.register_printer (function
    | Empty_cut -> Some "Fooling.Empty_cut: the cut has no edges"
    | Unsupported_size { fn; n } ->
        Some
          (Printf.sprintf
             "Fooling.Unsupported_size { fn = %S; n = %d }: no fooling set \
              of that size"
             fn n)
    | _ -> None)

let apply f x y = f (Array.append x y)

let verify f ~n s =
  let width_ok (x, y) =
    Array.length x = s.m && Array.length y = n - s.m
  in
  List.for_all width_ok s.pairs
  && List.for_all (fun (x, y) -> apply f x y = s.value) s.pairs
  && begin
       let arr = Array.of_list s.pairs in
       let distinct = ref true in
       let fooled = ref true in
       let len = Array.length arr in
       for i = 0 to len - 1 do
         for j = i + 1 to len - 1 do
           let x, y = arr.(i) and x', y' = arr.(j) in
           if x = x' && y = y' then distinct := false;
           if apply f x y' = s.value && apply f x' y = s.value then
             fooled := false
         done
       done;
       !distinct && !fooled
     end

let cut_sizes g ~m =
  let c = ref 0 and d = ref 0 in
  Array.iter
    (fun (i, j) ->
      if i < m && j >= m then incr c;
      if j < m && i >= m then incr d)
    (Digraph.edges g);
  (!c, !d)

let constant_on_cut g ~m s =
  match s.pairs with
  | [] -> true
  | (x0, y0) :: rest ->
      let x_pinned = ref [] and y_pinned = ref [] in
      Array.iter
        (fun (i, j) ->
          if i < m && j >= m then x_pinned := i :: !x_pinned;
          if j < m && i >= m then y_pinned := (i - m) :: !y_pinned)
        (Digraph.edges g);
      List.for_all
        (fun (x, y) ->
          List.for_all (fun i -> Bool.equal x.(i) x0.(i)) !x_pinned
          && List.for_all (fun i -> Bool.equal y.(i) y0.(i)) !y_pinned)
        rest

let bound s ~cut =
  if cut <= 0 then raise Empty_cut;
  log (float_of_int (List.length s.pairs)) /. log 2.0 /. float_of_int cut

let equality_fn bits =
  let n = Array.length bits in
  n mod 2 = 0
  && begin
       let half = n / 2 in
       let rec check i =
         i >= half || (Bool.equal bits.(i) bits.(half + i) && check (i + 1))
       in
       check 0
     end

let majority_fn bits =
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  2 * ones >= Array.length bits

(* Pairs (x, x) with the two ring-cut coordinates x_0 and x_{m-1} pinned to
   1 so that Theorem 6.2's constancy hypotheses hold on the bidirectional
   ring cut {0..m-1} | {m..n-1}. *)
let equality_fooling n =
  if n < 6 || n mod 2 = 1 then
    raise (Unsupported_size { fn = "equality"; n });
  let m = n / 2 in
  let free = m - 2 in
  let pairs =
    List.init (1 lsl free) (fun code ->
        let x =
          Array.init m (fun i ->
              if i = 0 || i = m - 1 then true
              else (code lsr (i - 1)) land 1 = 1)
        in
        (x, Array.copy x))
  in
  { m; value = true; pairs }

let majority_fooling n =
  if n < 4 then raise (Unsupported_size { fn = "majority"; n });
  let m = n / 2 in
  (* Q = { 1·1^k·0^(m-1-k) : k = 0..m-1 }; pair each with its bitwise
     complement (plus a fixed extra 1 when n is odd). *)
  let pairs =
    List.init m (fun k ->
        let x = Array.init m (fun i -> i = 0 || i <= k) in
        let xbar = Array.map not x in
        let y =
          if n mod 2 = 0 then xbar
          else Array.append xbar [| true |]
        in
        (x, y))
  in
  { m; value = true; pairs }

let equality_paper_bound n = float_of_int (n - 2) /. 8.0

let majority_paper_bound n =
  log (float_of_int (n / 2)) /. log 2.0 /. 4.0

let counting_bound ~n ~k = float_of_int n /. (4.0 *. float_of_int k)

let radius_bound g = Algorithms.radius g
