(** A typed catalogue of transient faults.

    Self-stabilization (Section 2.2) quantifies over {e arbitrary} transient
    corruption of the edge labels. Uniform random corruption exercises the
    average case; the other fault shapes model the structured failures a
    distributed system actually sees: a single machine scrambled
    ([Targeted]), the messages one node last sent corrupted in flight
    ([Messages]), and a node crashing and rejoining with a fixed junk
    labeling on its outputs ([Crash]). Every fault touches labels only —
    code and inputs stay intact, exactly the paper's fault model. *)

type t =
  | Uniform of { fraction : float }
      (** Each edge label is corrupted independently with probability
          [fraction] (to a label {e different} from the current one). *)
  | Targeted of { nodes : int list }
      (** Every edge incident to one of [nodes] (incoming or outgoing) gets
          a different label: the nodes' whole neighborhoods are scrambled. *)
  | Messages of { nodes : int list }
      (** Only the labels each listed node last wrote — its out-edges — are
          corrupted: message corruption in flight. *)
  | Crash of { nodes : int list; junk : int }
      (** Each listed node's out-labels are reset to the fixed label with
          code [junk]: crash-and-relabel. Deterministic. *)

(** Short human-readable fault descriptor, e.g. ["uniform:0.25"]. *)
val name : t -> string

(** [apply p ~seed fault config] returns a corrupted copy of [config]
    ([config] itself is untouched; outputs are carried over — the protocol
    re-derives them anyway). Random draws are deterministic in [seed].

    @raise Invalid_argument on an out-of-range fraction, node id or junk
    code, or an empty node list. *)
val apply :
  ('x, 'l) Protocol.t ->
  seed:int ->
  t ->
  'l Protocol.config ->
  'l Protocol.config
