(** Deterministic domain-parallel fan-out.

    [map ~domains ~ctx n f] computes [[| f c 0; f c 1; ...; f c (n-1) |]]
    where each worker domain evaluates a contiguous index chunk with its own
    context [c = ctx ()]. Results are concatenated in index order, so the
    output array is identical for every [domains] value — the same
    bit-identical contract the checker's multicore explorer gives.

    Requirements on [f]: it must be deterministic as a function of its index
    given a fresh context, and may only mutate its context in ways that do
    not change results (caches, scratch buffers). Contexts are created once
    per chunk and never shared across domains, so a context may hold
    domain-unsafe state (e.g. a {!Kernel.t}).

    [domains] defaults to [1] (no spawning at all: [f] runs on the calling
    domain). With [domains > 1], [min domains n] chunks are used; chunk [0]
    runs on the calling domain while the rest run on spawned domains. *)

val map : ?domains:int -> ctx:(unit -> 'c) -> int -> ('c -> int -> 'a) -> 'a array

(** The domain count requested through the [PARRUN_DOMAINS] environment
    variable, when set to a positive integer ([None] otherwise — unset,
    malformed, or non-positive). Tests and CI use it to widen the domain
    counts they exercise; since results are bit-identical for every
    [domains] value, honoring it can never change what a caller computes. *)
val env_domains : unit -> int option
