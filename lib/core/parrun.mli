(** Deterministic domain-parallel fan-out over the persistent {!Pool}.

    [map ~domains ~ctx n f] computes [[| f c 0; f c 1; ...; f c (n-1) |]].
    Tasks are split into contiguous index chunks claimed by up to [domains]
    pool domains; each result is written to its own slot of a pre-sized
    array, so the output is identical for every [domains] value — the same
    bit-identical contract the checker's multicore explorer gives.

    Requirements on [f]: it must be deterministic as a function of its index
    given a fresh context, and may only mutate its context in ways that do
    not change results (caches, scratch buffers). Contexts are created
    lazily, at most one per participating domain, and never shared across
    domains concurrently, so a context may hold domain-unsafe state (e.g. a
    {!Kernel.t}).

    [domains] defaults to [1] (everything runs inline on the calling
    domain). With [domains > 1] the work goes through {!Pool.run}: the
    calling domain participates alongside up to [domains - 1] persistent
    pool workers, and several chunks per domain let the pool steal work from
    uneven chunks. Nested calls (a [map] inside a [map] task, or inside any
    pool chunk) automatically run inline. *)

val map : ?domains:int -> ctx:(unit -> 'c) -> int -> ('c -> int -> 'a) -> 'a array

(** [map_batched ~domains ~batch ~ctx n f] is {!map} with contiguous blocks
    of up to [batch] indices as the work items: [f c ~lo ~hi] must return
    the results for indices [lo .. hi - 1] (an array of length [hi - lo]),
    and the blocks are [0 .. batch - 1], [batch .. 2 * batch - 1], ... —
    the unit a batched campaign context (one {!Batch} per domain) steps in
    lock-step. Blocks are {e not} over-partitioned by grain: block
    boundaries depend only on [n] and [batch], never on [domains], so when
    [f]'s per-index results are block-independent the assembled output is
    identical for every [domains] {e and} every [batch]. Nested calls run
    inline, like {!map}. *)
val map_batched :
  ?domains:int ->
  batch:int ->
  ctx:(unit -> 'c) ->
  int ->
  ('c -> lo:int -> hi:int -> 'a array) ->
  'a array

(** The domain count requested through the [PARRUN_DOMAINS] environment
    variable, when set to a positive integer ([None] otherwise — unset,
    malformed, or non-positive). Tests and CI use it to widen the domain
    counts they exercise; since results are bit-identical for every
    [domains] value, honoring it can never change what a caller computes. *)
val env_domains : unit -> int option
