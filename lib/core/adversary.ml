type witness = {
  init : int array;
  schedule : Schedule.t;
  entered : int;
  period : int;
}

let random_periodic_fair ~seed ~r ~period n =
  if period < 1 then invalid_arg "Adversary: period must be positive";
  if r < 1 then invalid_arg "Adversary: r must be positive";
  let state = Random.State.make [| seed |] in
  let countdown = Array.make n r in
  let blocks =
    List.init period (fun step ->
        if step = period - 1 then begin
          (* Closing the cycle with a full activation keeps the repeated
             schedule r-fair across the wrap-around. *)
          Array.fill countdown 0 n r;
          List.init n Fun.id
        end
        else begin
          let chosen = ref [] in
          for i = n - 1 downto 0 do
            if countdown.(i) <= 1 || Random.State.bool state then
              chosen := i :: !chosen
          done;
          let chosen =
            match !chosen with [] -> [ Random.State.int state n ] | c -> c
          in
          Array.iteri
            (fun i c ->
              if List.mem i chosen then countdown.(i) <- r
              else countdown.(i) <- c - 1)
            countdown;
          chosen
        end)
  in
  let sched = Schedule.block_rounds blocks in
  { sched with Schedule.name = Printf.sprintf "random-periodic-%d-fair" r }

let decode_init p codes =
  Protocol.config_of_labels p
    (Array.map p.Protocol.space.Label.decode codes)

(* One sample: attempt [k] derives its own RNG from [(seed, k)], so samples
   are independent of evaluation order — the parallel fan-out below and the
   sequential early-exit loop draw identical (schedule, labeling) pairs. *)
let try_attempt p ~input ~r ~period ~seed ~max_steps n m card k =
  let state = Random.State.make [| seed; k |] in
  let schedule =
    random_periodic_fair ~seed:(Random.State.bits state) ~r ~period n
  in
  let codes = Array.init m (fun _ -> Random.State.int state card) in
  match
    Engine.run_until_stable p ~input ~init:(decode_init p codes) ~schedule
      ~max_steps
  with
  | Engine.Oscillating { entered; period } ->
      Some { init = codes; schedule; entered; period }
  | Engine.Stabilized _ | Engine.Exhausted _ -> None

let find_oscillation ?(domains = 1) p ~input ~r ~attempts ~period ~seed
    ~max_steps =
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  let card = p.Protocol.space.Label.card in
  let sample = try_attempt p ~input ~r ~period ~seed ~max_steps n m card in
  if domains <= 1 then begin
    (* Sequential path: stop at the first success. Because attempts are
       independently seeded, this is the same witness the parallel path
       returns. *)
    let rec attempt k =
      if k >= attempts then None
      else match sample k with Some w -> Some w | None -> attempt (k + 1)
    in
    attempt 0
  end
  else begin
    let results = Parrun.map ~domains ~ctx:(fun () -> ()) attempts (fun () k -> sample k) in
    Array.fold_left
      (fun acc w -> match acc with Some _ -> acc | None -> w)
      None results
  end

let verify p ~input w =
  match
    Engine.run_until_stable p ~input ~init:(decode_init p w.init)
      ~schedule:w.schedule
      ~max_steps:(w.entered + (4 * w.period) + 4)
  with
  | Engine.Oscillating _ -> true
  | Engine.Stabilized _ | Engine.Exhausted _ -> false
