(** Event-driven continuous-time simulator for stateless protocols.

    Every engine so far activates nodes along a discrete schedule, one global
    step at a time. This module simulates the same protocols in continuous
    time: each node carries an exponential activation clock (a Poisson clock
    of configurable rate) and each edge a latency distribution, and the
    simulation advances by processing the earliest pending event. An
    {b activation} of node [i] reads the last-delivered label code of every
    in-edge, evaluates [i]'s reaction through the packed kernel's compiled
    tier ({!Kernel.eval_row} — table, memo or raw), records the output, and
    schedules one {b delivery} per out-edge at [now + draw(latency)]; a
    delivery simply overwrites its edge's last-delivered slot.

    {b Event storage.} No boxed event records anywhere: each pending-event
    structure is parallel flat arrays (time, edge/node id, payload code),
    three words per in-flight message, and each holds a single priority
    class so ordering across classes is one comparison in the run loop.
    The n activation clocks are simulated by their Poisson superposition —
    a single merged [Exp (n * rate)] clock (one scalar) plus a uniform
    node pick per event, the identical stochastic process with n times
    fewer pending events. Constant-latency deliveries (including sync
    mode) arrive in push order, so they live in a FIFO ring buffer with
    O(1) push and pop; only variable-latency deliveries need a priority
    queue — a flat 4-ary min-heap whose sift loops are allocation-free.

    {b Faults as latency.} Netlab's message faults reduce to latency
    special cases instead of a parallel code path: loss is a delivery
    scheduled at [+∞] (i.e. never pushed), duplication is two pushes with
    independent latency draws, and a crash is a window during which a node's
    activations fire but its reaction is suppressed.

    {b Determinism.} All randomness comes from a counter-based splitmix-style
    generator over 63-bit ints: a draw is a pure function of
    [(seed, stream, counter)], where streams separate merged-clock
    activation gaps, node picks, per-node crash coins, per-edge latencies
    and per-edge fault coins.
    Same seed ⇒ same trajectory, on any machine, under any
    [Parrun] domain count (each campaign run is an independent simulator).

    {b Synchronous anchor.} In [~sync:true] mode every node activates at
    every integer time starting at [0.0], latency is forced to [Const 1.0]
    and faults are off. Deliveries sort before activations at equal times,
    so the activation wave at time [k] reads exactly the configuration
    produced by wave [k - 1] — and {!run} with [~horizon:(float k)]
    (which processes deliveries {e at} the horizon but not activations)
    leaves labels and outputs bit-identical to [Kernel.run] for [k] steps of
    [Schedule.synchronous]. The differential suite pins this across the
    proptest protocol matrix and all kernel tiers. *)

(** Per-edge message latency distribution. Draws are strictly positive for
    all four shapes (uniform requires [0 <= lo <= hi]; a zero draw is
    clamped away by the generator's open-interval uniforms). *)
type latency =
  | Const of float  (** every message takes exactly this long *)
  | Uniform of float * float  (** uniform on [[lo, hi]] *)
  | Exp of float  (** exponential with the given mean *)
  | Pareto of float * float
      (** [Pareto (alpha, xmin)]: heavy tail [xmin * u^(-1/alpha)];
          [alpha <= 1] has infinite mean — stragglers dominate *)

(** Stochastic fault model, applied per delivery / per activation. *)
type faults = {
  loss : float;  (** per-message probability the delivery never happens *)
  dup : float;  (** per-message probability of a second, independent copy *)
  crash : float;
      (** per-activation probability of entering a crash window *)
  crash_len : float;  (** duration of a crash window in simulated time *)
}

val no_faults : faults

type ('x, 'l) t

(** Cumulative counters since {!create}; [time] is the simulation clock
    after the last {!run}, [pending] the number of events still queued
    (in-flight messages plus armed activation clocks — sync mode's n
    per-node clocks, or async mode's single merged clock). *)
type stats = {
  events : int;  (** activations + deliveries processed *)
  activations : int;
  deliveries : int;
  lost : int;
  duplicated : int;
  crash_windows : int;
  time : float;
  pending : int;
}

(** [create ~seed p ~input ~init] compiles [p] through {!Kernel.create}
    (forwarding [max_table_words] / [max_memo_entries] — pass
    [~max_memo_entries:0] for million-node protocols, where per-node memo
    stores would dominate memory) and arms every node's activation clock.
    [rate] (default [1.0]) is the Poisson activation rate per node;
    [latency] (default [Exp 1.0]) applies to every edge; [faults] defaults
    to {!no_faults}. [sync] selects the synchronous anchor mode described
    above and overrides rate, latency and faults. *)
val create :
  ?max_table_words:int ->
  ?max_memo_entries:int ->
  ?rate:float ->
  ?latency:latency ->
  ?faults:faults ->
  ?sync:bool ->
  seed:int ->
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  ('x, 'l) t

(** [run t ~horizon] processes every event strictly before [horizon] plus
    the deliveries at exactly [horizon], then parks the clock at [horizon].
    Resumable: a later call with a larger horizon continues the same
    trajectory. Returns the cumulative {!stats}. *)
val run : ('x, 'l) t -> horizon:float -> stats

val stats : ('x, 'l) t -> stats
val time : ('x, 'l) t -> float

(** The live packed per-edge last-delivered codes, indexed by edge id.
    Kernel-owned; read-only for callers (scenario probes at million-edge
    scale read this instead of decoding a boxed configuration). *)
val labels : ('x, 'l) t -> int array

(** The live per-node outputs (last reaction's output per node). Read-only. *)
val outputs : ('x, 'l) t -> int array

(** Decode the current state into a boxed configuration (allocates; meant
    for small instances and differential tests). *)
val config : ('x, 'l) t -> 'l Protocol.config
