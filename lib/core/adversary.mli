(** Randomized adversarial-schedule search.

    The exhaustive checker decides r-stabilization exactly but only on tiny
    state spaces. This module scales further by sampling: it draws random
    {e periodic} r-fair schedules (periodicity is what lets the engine
    certify oscillation by state recurrence) and random initial labelings,
    and reports the first provably diverging run it finds.

    A [Some _] answer is a machine-checkable disproof of label
    r-stabilization; [None] is only absence of evidence. *)

type witness = {
  init : int array;  (** encoded edge labels of the initial configuration *)
  schedule : Schedule.t;  (** periodic and r-fair *)
  entered : int;
  period : int;
}

(** [find_oscillation p ~input ~r ~attempts ~period ~seed ~max_steps]
    samples [attempts] (labeling, schedule) pairs; schedules have the given
    period (in steps) and are r-fair by construction: each step activates a
    random subset plus every node whose deadline would otherwise expire.

    Attempt [k] is seeded from [(seed, k)], so samples are independent of
    evaluation order: [domains] (default 1) spreads attempts over that many
    OCaml domains through {!Parrun}, and the returned witness — the success
    with the smallest attempt index — is identical for every [domains]
    value ([domains = 1] additionally stops at the first success). *)
val find_oscillation :
  ?domains:int ->
  ('x, 'l) Protocol.t ->
  input:'x array ->
  r:int ->
  attempts:int ->
  period:int ->
  seed:int ->
  max_steps:int ->
  witness option

(** [random_periodic_fair ~seed ~r ~period n] is one such schedule. *)
val random_periodic_fair : seed:int -> r:int -> period:int -> int -> Schedule.t

(** [verify p ~input w] replays the witness and confirms divergence. *)
val verify : ('x, 'l) Protocol.t -> input:'x array -> witness -> bool
