let env_domains () =
  match Sys.getenv_opt "PARRUN_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ | None -> None)

(* Chunks per domain. More than one so the pool's chunk stealing can
   rebalance when task costs are uneven (e.g. recovery runs whose length
   depends on the seed); small enough that per-chunk overhead (one
   fetch-and-add, one context lookup) stays negligible. *)
let grain = 8

let map ?(domains = 1) ~ctx n f =
  if domains < 1 then invalid_arg "Parrun.map: domains must be >= 1";
  if n < 0 then invalid_arg "Parrun.map: negative task count";
  if n = 0 then [||]
  else if domains = 1 || n = 1 || Pool.in_worker () then begin
    let c = ctx () in
    Array.init n (fun i -> f c i)
  end
  else begin
    (* Task 0 runs on the caller first: its result seeds the result array
       (no [Obj.magic] placeholder, which would be unsound for floats). *)
    let c0 = ctx () in
    let r0 = f c0 0 in
    let results = Array.make n r0 in
    let rest = n - 1 in
    let nchunks = min rest (domains * grain) in
    let ctxs = Array.make domains None in
    ctxs.(0) <- Some c0;
    Pool.run ~domains ~nchunks (fun ~slot chunk ->
        let c =
          match ctxs.(slot) with
          | Some c -> c
          | None ->
              let c = ctx () in
              ctxs.(slot) <- Some c;
              c
        in
        let lo = 1 + (rest * chunk / nchunks)
        and hi = 1 + (rest * (chunk + 1) / nchunks) in
        for i = lo to hi - 1 do
          results.(i) <- f c i
        done);
    results
  end

(* Unlike [map], blocks are the work items — no grain over-partitioning —
   so a batched context (one {!Batch} per domain) processes whole
   contiguous index ranges and amortizes its lock-step stepping across
   them. Results land at their indices, so the output is independent of
   [domains] and, when [f] is per-index deterministic, of [batch]. *)
let map_batched ?(domains = 1) ~batch ~ctx n f =
  if domains < 1 then invalid_arg "Parrun.map_batched: domains must be >= 1";
  if batch < 1 then invalid_arg "Parrun.map_batched: batch must be >= 1";
  if n < 0 then invalid_arg "Parrun.map_batched: negative task count";
  if n = 0 then [||]
  else begin
    let nblocks = (n + batch - 1) / batch in
    let block b =
      let lo = b * batch in
      (lo, min n (lo + batch))
    in
    if domains = 1 || nblocks = 1 || Pool.in_worker () then begin
      let c = ctx () in
      let lo, hi = block 0 in
      let r0 = f c ~lo ~hi in
      if Array.length r0 <> hi - lo then
        invalid_arg "Parrun.map_batched: block result has wrong length";
      if nblocks = 1 then r0
      else begin
        let results = Array.make n r0.(0) in
        Array.blit r0 0 results 0 (hi - lo);
        for b = 1 to nblocks - 1 do
          let lo, hi = block b in
          let r = f c ~lo ~hi in
          if Array.length r <> hi - lo then
            invalid_arg "Parrun.map_batched: block result has wrong length";
          Array.blit r 0 results lo (hi - lo)
        done;
        results
      end
    end
    else begin
      (* Block 0 runs on the caller first: its first element seeds the
         result array (no [Obj.magic] placeholder). *)
      let c0 = ctx () in
      let lo0, hi0 = block 0 in
      let r0 = f c0 ~lo:lo0 ~hi:hi0 in
      if Array.length r0 <> hi0 - lo0 then
        invalid_arg "Parrun.map_batched: block result has wrong length";
      let results = Array.make n r0.(0) in
      Array.blit r0 0 results 0 (hi0 - lo0);
      let ctxs = Array.make domains None in
      ctxs.(0) <- Some c0;
      Pool.run ~domains ~nchunks:(nblocks - 1) (fun ~slot chunk ->
          let c =
            match ctxs.(slot) with
            | Some c -> c
            | None ->
                let c = ctx () in
                ctxs.(slot) <- Some c;
                c
          in
          let lo, hi = block (chunk + 1) in
          let r = f c ~lo ~hi in
          if Array.length r <> hi - lo then
            invalid_arg "Parrun.map_batched: block result has wrong length";
          Array.blit r 0 results lo (hi - lo));
      results
    end
  end
