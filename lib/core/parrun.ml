let env_domains () =
  match Sys.getenv_opt "PARRUN_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ | None -> None)

let chunk_bound n nchunks k = n * k / nchunks

let run_chunk ~ctx n nchunks f k =
  let lo = chunk_bound n nchunks k and hi = chunk_bound n nchunks (k + 1) in
  let c = ctx () in
  Array.init (hi - lo) (fun j -> f c (lo + j))

let map ?(domains = 1) ~ctx n f =
  if domains < 1 then invalid_arg "Parrun.map: domains must be >= 1";
  if n < 0 then invalid_arg "Parrun.map: negative task count";
  if n = 0 then [||]
  else begin
    let nchunks = min domains n in
    if nchunks = 1 then begin
      let c = ctx () in
      Array.init n (fun i -> f c i)
    end
    else begin
      let workers =
        Array.init (nchunks - 1) (fun k ->
            Domain.spawn (fun () -> run_chunk ~ctx n nchunks f (k + 1)))
      in
      let first = run_chunk ~ctx n nchunks f 0 in
      let rest = Array.to_list (Array.map Domain.join workers) in
      Array.concat (first :: rest)
    end
  end
