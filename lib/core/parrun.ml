let env_domains () =
  match Sys.getenv_opt "PARRUN_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ | None -> None)

(* Chunks per domain. More than one so the pool's chunk stealing can
   rebalance when task costs are uneven (e.g. recovery runs whose length
   depends on the seed); small enough that per-chunk overhead (one
   fetch-and-add, one context lookup) stays negligible. *)
let grain = 8

let map ?(domains = 1) ~ctx n f =
  if domains < 1 then invalid_arg "Parrun.map: domains must be >= 1";
  if n < 0 then invalid_arg "Parrun.map: negative task count";
  if n = 0 then [||]
  else if domains = 1 || n = 1 || Pool.in_worker () then begin
    let c = ctx () in
    Array.init n (fun i -> f c i)
  end
  else begin
    (* Task 0 runs on the caller first: its result seeds the result array
       (no [Obj.magic] placeholder, which would be unsound for floats). *)
    let c0 = ctx () in
    let r0 = f c0 0 in
    let results = Array.make n r0 in
    let rest = n - 1 in
    let nchunks = min rest (domains * grain) in
    let ctxs = Array.make domains None in
    ctxs.(0) <- Some c0;
    Pool.run ~domains ~nchunks (fun ~slot chunk ->
        let c =
          match ctxs.(slot) with
          | Some c -> c
          | None ->
              let c = ctx () in
              ctxs.(slot) <- Some c;
              c
        in
        let lo = 1 + (rest * chunk / nchunks)
        and hi = 1 + (rest * (chunk + 1) / nchunks) in
        for i = lo to hi - 1 do
          results.(i) <- f c i
        done);
    results
  end
