(* Deterministic seeded fault injection. See chaos.mli for the contract.

   The armed plan lives in one atomic slot so hooks on worker domains
   see it without locks; per-site operation counters and per-action
   tallies are atomics too. Decisions are pure functions of
   (seed, site, op index), so a single-domain storm replays exactly. *)

type site = Pool_chunk | Journal_write | Journal_read | Clock_read

let site_name = function
  | Pool_chunk -> "pool_chunk"
  | Journal_write -> "journal_write"
  | Journal_read -> "journal_read"
  | Clock_read -> "clock_read"

let site_index = function
  | Pool_chunk -> 0
  | Journal_write -> 1
  | Journal_read -> 2
  | Clock_read -> 3

type action =
  | Crash
  | Stall of float
  | Torn of int
  | Enospc
  | Duplicate
  | Short_read of int
  | Jump of float

let action_name = function
  | Crash -> "crash"
  | Stall _ -> "stall"
  | Torn _ -> "torn"
  | Enospc -> "enospc"
  | Duplicate -> "duplicate"
  | Short_read _ -> "short_read"
  | Jump _ -> "jump"

type trigger = At of int list | Prob of float

type rule = { site : site; trigger : trigger; action : action }

exception Injected of { site : site; op : int }

type plan = {
  seed : int;
  rules : rule list;
  ops : int Atomic.t array;  (* per-site operation counters *)
  counts : (string, int Atomic.t) Hashtbl.t;  (* per-action-name tallies *)
  counts_mu : Mutex.t;
  skew : float Atomic.t;  (* accumulated clock skew, seconds *)
}

let plan : plan option Atomic.t = Atomic.make None

(* Tallies survive disarm so a finished storm stays inspectable. *)
let last_plan : plan option ref = ref None

(* splitmix64-style mix, constants truncated to OCaml's 63-bit native
   int; good enough bit diffusion for independent per-(site, op) coin
   flips. *)
let mix seed site op =
  let z = ref (seed lxor (site * 0x1e3779b97f4a7c15) lxor (op * 0x3f58476d1ce4e5b9)) in
  z := (!z lxor (!z lsr 30)) * 0x3f58476d1ce4e5b9;
  z := (!z lxor (!z lsr 27)) * 0x14d049bb133111eb;
  (!z lxor (!z lsr 31)) land max_int

let coin seed site op rule_index p =
  let u =
    float (mix seed ((site * 7) + rule_index) op) /. float max_int
  in
  u < p

let valid_pair site action =
  match (site, action) with
  | Pool_chunk, (Crash | Stall _) -> true
  | Journal_write, (Crash | Torn _ | Enospc | Duplicate) -> true
  | Journal_read, Short_read _ -> true
  | Clock_read, Jump _ -> true
  | _ -> false

let arm ~seed rules =
  List.iter
    (fun r ->
      if not (valid_pair r.site r.action) then
        invalid_arg
          (Printf.sprintf "Chaos.arm: action %s is meaningless at site %s"
             (action_name r.action) (site_name r.site));
      (match r.trigger with
      | Prob p ->
          if not (p >= 0.0 && p <= 1.0) then
            invalid_arg "Chaos.arm: Prob outside [0, 1]"
      | At ks ->
          if List.exists (fun k -> k < 0) ks then
            invalid_arg "Chaos.arm: negative At index");
      match r.action with
      | Stall d when d < 0.0 -> invalid_arg "Chaos.arm: negative Stall"
      | Short_read k when k < 0 -> invalid_arg "Chaos.arm: negative Short_read"
      | Torn k when k < 0 -> invalid_arg "Chaos.arm: negative Torn offset"
      | _ -> ())
    rules;
  let p =
    {
      seed;
      rules;
      ops = Array.init 4 (fun _ -> Atomic.make 0);
      counts = Hashtbl.create 8;
      counts_mu = Mutex.create ();
      skew = Atomic.make 0.0;
    }
  in
  last_plan := Some p;
  Atomic.set plan (Some p)

let disarm () = Atomic.set plan None

let armed () = Atomic.get plan <> None

let bump p name =
  match Hashtbl.find_opt p.counts name with
  | Some c -> Atomic.incr c
  | None ->
      Mutex.lock p.counts_mu;
      (match Hashtbl.find_opt p.counts name with
      | Some c -> Atomic.incr c
      | None -> Hashtbl.add p.counts name (Atomic.make 1));
      Mutex.unlock p.counts_mu

let tally () =
  match !last_plan with
  | None -> []
  | Some p ->
      Mutex.lock p.counts_mu;
      let l =
        Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) p.counts []
      in
      Mutex.unlock p.counts_mu;
      List.sort compare l

let fired () = List.fold_left (fun a (_, n) -> a + n) 0 (tally ())

(* The first rule (in plan order) whose trigger fires wins the op. *)
let decide p site op =
  let rec go i = function
    | [] -> None
    | r :: rest ->
        if
          r.site = site
          && (match r.trigger with
             | At ks -> List.mem op ks
             | Prob pr -> coin p.seed (site_index site) op i pr)
        then Some r.action
        else go (i + 1) rest
  in
  go 0 p.rules

(* Each hook: one atomic load when disarmed; when armed, claim this
   site's next op index and act on the first matching rule. *)

let on_pool_chunk ~slot:_ ~chunk:_ =
  match Atomic.get plan with
  | None -> ()
  | Some p -> (
      let op = Atomic.fetch_and_add p.ops.(site_index Pool_chunk) 1 in
      match decide p Pool_chunk op with
      | None -> ()
      | Some (Stall d) ->
          bump p "stall";
          Unix.sleepf d
      | Some Crash ->
          bump p "crash";
          raise (Injected { site = Pool_chunk; op })
      | Some _ -> ())

(* The op index of the most recent Journal_write decision, for
   [raise_injected] after the caller has flushed the torn prefix.
   Journal writes are serialized by the campaign's journal mutex, so
   one slot suffices. *)
let last_write_op = Atomic.make (-1)

let on_journal_write line =
  match Atomic.get plan with
  | None -> `Write
  | Some p -> (
      let op = Atomic.fetch_and_add p.ops.(site_index Journal_write) 1 in
      Atomic.set last_write_op op;
      match decide p Journal_write op with
      | None -> `Write
      | Some (Torn k) ->
          bump p "torn";
          (* Always a strict prefix: a tear that keeps the whole record
             (newline included elsewhere) would not be a tear. *)
          `Torn (min k (max 0 (String.length line - 1)))
      | Some Enospc ->
          bump p "enospc";
          `Enospc
      | Some Duplicate ->
          bump p "duplicate";
          `Dup
      | Some Crash ->
          bump p "crash";
          raise (Injected { site = Journal_write; op })
      | Some _ -> `Write)

let raise_injected site =
  raise (Injected { site; op = Atomic.get last_write_op })

let on_journal_read data =
  match Atomic.get plan with
  | None -> data
  | Some p -> (
      let op = Atomic.fetch_and_add p.ops.(site_index Journal_read) 1 in
      match decide p Journal_read op with
      | Some (Short_read k) when k > 0 && String.length data > 0 ->
          bump p "short_read";
          String.sub data 0 (max 0 (String.length data - k))
      | _ -> data)

let on_clock t =
  match Atomic.get plan with
  | None -> t
  | Some p ->
      let op = Atomic.fetch_and_add p.ops.(site_index Clock_read) 1 in
      (match decide p Clock_read op with
      | Some (Jump d) ->
          bump p "jump";
          (* Accumulate: a jump is a step of the wall clock, visible to
             every later reading, not a one-off blip. *)
          let rec add () =
            let s = Atomic.get p.skew in
            if not (Atomic.compare_and_set p.skew s (s +. d)) then add ()
          in
          add ()
      | _ -> ());
      t +. Atomic.get p.skew
