module Digraph = Stateless_graph.Digraph

type t =
  | Uniform of { fraction : float }
  | Targeted of { nodes : int list }
  | Messages of { nodes : int list }
  | Crash of { nodes : int list; junk : int }

let name = function
  | Uniform { fraction } -> Printf.sprintf "uniform:%g" fraction
  | Targeted { nodes } ->
      Printf.sprintf "targeted:%s"
        (String.concat "," (List.map string_of_int nodes))
  | Messages { nodes } ->
      Printf.sprintf "messages:%s"
        (String.concat "," (List.map string_of_int nodes))
  | Crash { nodes; junk } ->
      Printf.sprintf "crash:%s->%d"
        (String.concat "," (List.map string_of_int nodes))
        junk

(* A corrupted label must differ from the old one, else the effective
   corruption rate silently drops below the requested one. Drawing from the
   [card - 1] other codes and shifting past the old code is the loop-free
   equivalent of resampling until the label differs. Degenerate singleton
   spaces have nothing to corrupt to. *)
let redraw space state old =
  let card = space.Label.card in
  if card <= 1 then old
  else begin
    let old_code = space.Label.encode old in
    let c = Random.State.int state (card - 1) in
    space.Label.decode (if c >= old_code then c + 1 else c)
  end

let check_nodes p ctx nodes =
  let n = Protocol.num_nodes p in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Fault_model.apply: %s: node %d" ctx i))
    nodes;
  match List.sort_uniq compare nodes with
  | [] -> invalid_arg (Printf.sprintf "Fault_model.apply: %s: no nodes" ctx)
  | nodes -> nodes

(* Distinct nodes of a [Targeted] fault can share incident edges; corrupt
   each edge once so a double redraw cannot restore the original label. *)
let incident_edges g nodes =
  List.sort_uniq compare
    (List.concat_map
       (fun i ->
         Array.to_list (Digraph.out_edges g i)
         @ Array.to_list (Digraph.in_edges g i))
       nodes)

let apply p ~seed fault config =
  let space = p.Protocol.space in
  let state = Random.State.make [| seed |] in
  let labels = Array.copy config.Protocol.labels in
  let corrupt e = labels.(e) <- redraw space state labels.(e) in
  (match fault with
  | Uniform { fraction } ->
      if fraction < 0.0 || fraction > 1.0 then
        invalid_arg "Fault_model.apply: fraction must be in [0, 1]";
      for e = 0 to Array.length labels - 1 do
        if Random.State.float state 1.0 < fraction then corrupt e
      done
  | Targeted { nodes } ->
      let nodes = check_nodes p "Targeted" nodes in
      List.iter corrupt (incident_edges p.Protocol.graph nodes)
  | Messages { nodes } ->
      let nodes = check_nodes p "Messages" nodes in
      List.iter
        (fun i -> Array.iter corrupt (Digraph.out_edges p.Protocol.graph i))
        nodes
  | Crash { nodes; junk } ->
      if junk < 0 || junk >= space.Label.card then
        invalid_arg "Fault_model.apply: junk label code out of range";
      let nodes = check_nodes p "Crash" nodes in
      let j = space.Label.decode junk in
      List.iter
        (fun i ->
          Array.iter
            (fun e -> labels.(e) <- j)
            (Digraph.out_edges p.Protocol.graph i))
        nodes);
  { Protocol.labels; outputs = Array.copy config.Protocol.outputs }
