(** Persistent domain pool with work stealing.

    The seed [Parrun] spawned fresh domains on every [map] call, and the
    checker respawned domains per BFS level. Domain spawn costs hundreds of
    microseconds plus a stop-the-world barrier, so on campaign-sized work
    items N domains ran slower than one. This pool spawns worker domains
    once, lazily, and parks them on a condition variable between jobs;
    submitting a job costs one lock and a broadcast.

    A job is a set of chunks [0 .. nchunks - 1]. Chunks are claimed with an
    atomic fetch-and-add — idle domains (the submitter included) steal the
    next unclaimed chunk, so uneven chunks balance automatically without
    per-worker queues.

    Determinism is the caller's contract: each chunk must write its results
    into caller-owned slots disjoint from every other chunk's, so the
    assembled output is independent of which domain ran which chunk and of
    the pool size. *)

(** [run ~domains ~nchunks f] executes [f ~slot c] for every chunk
    [c < nchunks], using the calling domain plus up to [domains - 1] pool
    workers. [slot] identifies the executing domain within this job:
    [0] for the caller, [1 .. domains - 1] for helpers; slots are compact,
    so per-slot caller state (contexts, caches) can live in a
    [domains]-sized array. A slot is only ever used by one domain per job.

    Runs chunks inline on the calling domain when [domains = 1], when
    [nchunks <= 1], or when called from inside a pool job (nested parallel
    sections run sequentially rather than deadlock on the single job slot).

    If a chunk raises, remaining chunks are still claimed and run (work
    already in flight cannot be recalled, and later chunks must not be
    abandoned), and the first exception is re-raised on the calling domain
    after all chunks finish. This holds on the inline path too (single
    domain, single chunk, or nested in-worker call), so the pool and its
    callers stay reusable after a failing job.

    Concurrent top-level submitters are serialized on a submission mutex
    (there is a single job slot): the second caller blocks until the first
    job drains. Nested in-worker calls run inline as before and never take
    the mutex, so submitting from inside a job cannot deadlock. *)
val run : domains:int -> nchunks:int -> (slot:int -> int -> unit) -> unit

(** [in_worker ()] is [true] while the calling domain is executing a pool
    chunk (worker or submitter). Parallel code paths use it to fall back to
    their sequential variants when nested inside a pool job. *)
val in_worker : unit -> bool

(** Number of worker domains currently parked in the pool (for tests and
    diagnostics; the pool grows lazily up to the largest [domains - 1]
    requested, bounded well below the runtime's domain cap). *)
val size : unit -> int
