(** Transient-fault injection and recovery measurement.

    Self-stabilization (Section 2.2) is exactly the promise that a system
    recovers from any transient corruption of its {e labels}, provided code
    and inputs stay intact. This module makes the promise testable: corrupt
    a configuration mid-run — uniformly, or with one of the structured
    faults of {!Fault_model}, or adversarially — and measure
    re-convergence. *)

(** [corrupt p ~seed ~fraction config] returns a copy of [config] in which
    each edge label is independently replaced, with probability [fraction],
    by a uniformly random label {e different} from the current one (so the
    effective corruption rate is exactly [fraction]; outputs are preserved —
    they are re-derived by the protocol anyway). [fraction = 1.0] changes
    every label (label spaces with at least two labels). *)
val corrupt :
  ('x, 'l) Protocol.t ->
  seed:int ->
  fraction:float ->
  'l Protocol.config ->
  'l Protocol.config

(** [inject p ~seed fault config] applies one fault from the typed
    catalogue; alias of {!Fault_model.apply}. *)
val inject :
  ('x, 'l) Protocol.t ->
  seed:int ->
  Fault_model.t ->
  'l Protocol.config ->
  'l Protocol.config

(** [recovery_time p ~input ~init ~schedule ~seed ~fraction ~max_steps]
    certifies output stabilization, corrupts the steady configuration that
    certification reached (the {!Engine.settle} horizon — measured and
    fetched in one pass), and measures output re-stabilization; [None] if
    either phase fails to converge. Phrased in terms of {e output}
    stabilization so it also applies to protocols whose labels never settle
    (e.g. anything clocked by the D-counter). The returned pair is
    [(first_convergence, recovery)]. *)
val recovery_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seed:int ->
  fraction:float ->
  max_steps:int ->
  (int * int) option

(** [recovers_to_same_outputs p ~input ~init ~schedule ~seed ~fraction
    ~max_steps] checks the full self-stabilization contract on one run: the
    outputs after recovery equal the outputs before the fault. *)
val recovers_to_same_outputs :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  seed:int ->
  fraction:float ->
  max_steps:int ->
  bool option

(** The worst corruption an adversary with a [k]-label budget found. *)
type 'l adversarial = {
  adv_edges : int list;  (** corrupted edge ids, ascending *)
  adv_codes : int list;  (** new label codes, parallel to [adv_edges] *)
  adv_config : 'l Protocol.config;  (** the damaged configuration *)
  adv_recovery : int option;
      (** output re-stabilization time from [adv_config], or [None] when
          the run never recovers within the step budget — the true worst
          case. *)
  adv_exhaustive : bool;
      (** [true] when the result is provably maximal: either every
          candidate was examined, or a non-recovering candidate was found
          (which nothing can beat). [false] when the [limit] cut the
          enumeration short. *)
}

(** [adversarial_corruption p ~input ~schedule ~k ~max_steps config]
    searches over all corruptions of exactly [k] edge labels of [config]
    (each to some different label) for the one maximizing output
    re-stabilization time under [schedule], measuring each candidate with
    the packed {!Kernel}. The enumeration is deterministic; [limit]
    (default [20_000]) bounds the number of candidates examined, since
    there are [C(m, k) * (card - 1)^k] of them. [domains] (default [1])
    fans candidate measurement out over that many domains via {!Parrun};
    the result is identical for every [domains] value.

    @raise Invalid_argument if [k] is out of [1, edges] or the label space
    is a singleton. *)
val adversarial_corruption :
  ?limit:int ->
  ?domains:int ->
  ('x, 'l) Protocol.t ->
  input:'x array ->
  schedule:Schedule.t ->
  k:int ->
  max_steps:int ->
  'l Protocol.config ->
  'l adversarial
