let corrupt p ~seed ~fraction config =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault.corrupt: fraction must be in [0, 1]";
  Fault_model.apply p ~seed (Fault_model.Uniform { fraction }) config

let inject p ~seed fault config = Fault_model.apply p ~seed fault config

(* Both measurements are phrased in terms of output stabilization so that
   they apply to output-stabilizing protocols whose labels never settle
   (e.g. anything clocked by the D-counter). The configuration that gets
   corrupted is the steady state [Engine.settle] certified — one traversal
   yields the stabilization time, the settled outputs and that
   configuration, so nothing is re-simulated. *)

let recovery_time p ~input ~init ~schedule ~seed ~fraction ~max_steps =
  match Engine.settle p ~input ~init ~schedule ~max_steps with
  | None -> None
  | Some healthy -> (
      let damaged = corrupt p ~seed ~fraction healthy.Engine.horizon_config in
      match Engine.settle p ~input ~init:damaged ~schedule ~max_steps with
      | Some recovered ->
          Some (healthy.Engine.settle_time, recovered.Engine.settle_time)
      | None -> None)

let recovers_to_same_outputs p ~input ~init ~schedule ~seed ~fraction
    ~max_steps =
  match Engine.settle p ~input ~init ~schedule ~max_steps with
  | None -> None
  | Some healthy -> (
      let damaged = corrupt p ~seed ~fraction healthy.Engine.horizon_config in
      match Engine.settle p ~input ~init:damaged ~schedule ~max_steps with
      | Some recovered ->
          Some
            (Array.for_all2 ( = ) healthy.Engine.settled_outputs
               recovered.Engine.settled_outputs)
      | None -> None)

type 'l adversarial = {
  adv_edges : int list;
  adv_codes : int list;
  adv_config : 'l Protocol.config;
  adv_recovery : int option;
  adv_exhaustive : bool;
}

exception Stop

let adversarial_corruption ?(limit = 20_000) p ~input ~schedule ~k ~max_steps
    config =
  let m = Protocol.num_edges p in
  let card = p.Protocol.space.Label.card in
  if k <= 0 || k > m then
    invalid_arg "Fault.adversarial_corruption: k must be in [1, edges]";
  if card < 2 then
    invalid_arg "Fault.adversarial_corruption: label space is a singleton";
  let encode = p.Protocol.space.Label.encode
  and decode = p.Protocol.space.Label.decode in
  let labels0 = config.Protocol.labels in
  let scratch = Array.copy labels0 in
  let best = ref None in
  let candidates = ref 0 in
  let exhaustive = ref true in
  let consider edges codes =
    if !candidates >= limit then begin
      exhaustive := false;
      raise Stop
    end;
    incr candidates;
    let damaged =
      {
        Protocol.labels = Array.copy scratch;
        outputs = Array.copy config.Protocol.outputs;
      }
    in
    let recovery =
      Option.map
        (fun s -> s.Engine.settle_time)
        (Engine.settle p ~input ~init:damaged ~schedule ~max_steps)
    in
    let better =
      match !best with
      | None -> true
      | Some b -> (
          match (b.adv_recovery, recovery) with
          | None, _ -> false
          | Some _, None -> true
          | Some x, Some y -> y > x)
    in
    if better then
      best :=
        Some
          {
            adv_edges = List.rev edges;
            adv_codes = List.rev codes;
            adv_config = damaged;
            adv_recovery = recovery;
            adv_exhaustive = true;
          };
    (* A candidate the run never recovers from cannot be beaten. *)
    if recovery = None then raise Stop
  in
  (* Enumerate all ways to pick [k] distinct edges (ascending ids) and give
     each a label different from its current one (ascending codes). *)
  let rec choose start picked edges codes =
    if picked = k then consider edges codes
    else
      for e = start to m - (k - picked) do
        let old = encode labels0.(e) in
        for c = 0 to card - 1 do
          if c <> old then begin
            scratch.(e) <- decode c;
            choose (e + 1) (picked + 1) (e :: edges) (c :: codes)
          end
        done;
        scratch.(e) <- labels0.(e)
      done
  in
  (try choose 0 0 [] [] with Stop -> ());
  match !best with
  | None -> assert false (* k >= 1 and card >= 2 give >= 1 candidate *)
  | Some b -> { b with adv_exhaustive = !exhaustive }
