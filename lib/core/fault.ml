let corrupt p ~seed ~fraction config =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault.corrupt: fraction must be in [0, 1]";
  Fault_model.apply p ~seed (Fault_model.Uniform { fraction }) config

let inject p ~seed fault config = Fault_model.apply p ~seed fault config

(* Both measurements are phrased in terms of output stabilization so that
   they apply to output-stabilizing protocols whose labels never settle
   (e.g. anything clocked by the D-counter). The configuration that gets
   corrupted is the steady state [Engine.settle] certified — one traversal
   yields the stabilization time, the settled outputs and that
   configuration, so nothing is re-simulated. *)

let recovery_time p ~input ~init ~schedule ~seed ~fraction ~max_steps =
  match Engine.settle p ~input ~init ~schedule ~max_steps with
  | None -> None
  | Some healthy -> (
      let damaged = corrupt p ~seed ~fraction healthy.Engine.horizon_config in
      match Engine.settle p ~input ~init:damaged ~schedule ~max_steps with
      | Some recovered ->
          Some (healthy.Engine.settle_time, recovered.Engine.settle_time)
      | None -> None)

let recovers_to_same_outputs p ~input ~init ~schedule ~seed ~fraction
    ~max_steps =
  match Engine.settle p ~input ~init ~schedule ~max_steps with
  | None -> None
  | Some healthy -> (
      let damaged = corrupt p ~seed ~fraction healthy.Engine.horizon_config in
      match Engine.settle p ~input ~init:damaged ~schedule ~max_steps with
      | Some recovered ->
          Some
            (Array.for_all2 ( = ) healthy.Engine.settled_outputs
               recovered.Engine.settled_outputs)
      | None -> None)

type 'l adversarial = {
  adv_edges : int list;
  adv_codes : int list;
  adv_config : 'l Protocol.config;
  adv_recovery : int option;
  adv_exhaustive : bool;
}

exception Stop

(* The search proceeds in three phases whose composition is observably
   identical to the historical one-candidate-at-a-time loop, for every
   [domains] value: enumerate the first [limit] candidates in the canonical
   order (ascending edge ids, ascending replacement codes), measure them in
   enumeration-order batches fanned out over domains through the packed
   kernel, and scan the measured prefix sequentially with the original
   better-than rule. Batches stop being launched once one contains a
   non-recovering candidate — nothing can beat it, exactly the sequential
   early stop. *)
let adversarial_corruption ?(limit = 20_000) ?(domains = 1) p ~input ~schedule
    ~k ~max_steps config =
  let m = Protocol.num_edges p in
  let card = p.Protocol.space.Label.card in
  if k <= 0 || k > m then
    invalid_arg "Fault.adversarial_corruption: k must be in [1, edges]";
  if card < 2 then
    invalid_arg "Fault.adversarial_corruption: label space is a singleton";
  let encode = p.Protocol.space.Label.encode
  and decode = p.Protocol.space.Label.decode in
  let labels0 = config.Protocol.labels in
  let cands = ref [] in
  let ncands = ref 0 in
  let truncated = ref false in
  (* Enumerate all ways to pick [k] distinct edges (ascending ids) and give
     each a label different from its current one (ascending codes). *)
  let rec choose start picked edges codes =
    if picked = k then begin
      if !ncands >= limit then begin
        truncated := true;
        raise Stop
      end;
      incr ncands;
      cands := (List.rev edges, List.rev codes) :: !cands
    end
    else
      for e = start to m - (k - picked) do
        let old = encode labels0.(e) in
        for c = 0 to card - 1 do
          if c <> old then choose (e + 1) (picked + 1) (e :: edges) (c :: codes)
        done
      done
  in
  (try choose 0 0 [] [] with Stop -> ());
  let cands = Array.of_list (List.rev !cands) in
  let total = Array.length cands in
  let damaged_of idx =
    let edges, codes = cands.(idx) in
    let labels = Array.copy labels0 in
    List.iter2 (fun e c -> labels.(e) <- decode c) edges codes;
    { Protocol.labels; outputs = Array.copy config.Protocol.outputs }
  in
  let recoveries = Array.make total None in
  let batch = max 64 (domains * 16) in
  let evaluated = ref 0 in
  let hit_none = ref false in
  while (not !hit_none) && !evaluated < total do
    let lo = !evaluated in
    let hi = min total (lo + batch) in
    let res =
      Parrun.map ~domains
        ~ctx:(fun () -> Kernel.create p ~input)
        (hi - lo)
        (fun kern j ->
          Option.map
            (fun s -> s.Engine.settle_time)
            (Kernel.settle kern ~init:(damaged_of (lo + j)) ~schedule
               ~max_steps))
    in
    Array.blit res 0 recoveries lo (hi - lo);
    evaluated := hi;
    if Array.exists (fun r -> r = None) res then hit_none := true
  done;
  let best = ref None in
  let found_none = ref false in
  (try
     for idx = 0 to !evaluated - 1 do
       let recovery = recoveries.(idx) in
       let better =
         match !best with
         | None -> true
         | Some (_, r) -> (
             match (r, recovery) with
             | None, _ -> false
             | Some _, None -> true
             | Some x, Some y -> y > x)
       in
       if better then best := Some (idx, recovery);
       (* A candidate the run never recovers from cannot be beaten. *)
       if recovery = None then begin
         found_none := true;
         raise Stop
       end
     done
   with Stop -> ());
  match !best with
  | None -> assert false (* k >= 1 and card >= 2 give >= 1 candidate *)
  | Some (idx, recovery) ->
      let edges, codes = cands.(idx) in
      {
        adv_edges = edges;
        adv_codes = codes;
        adv_config = damaged_of idx;
        adv_recovery = recovery;
        (* Provably maximal when the enumeration was complete, or when a
           non-recovering candidate was found (nothing can beat it). *)
        adv_exhaustive = (not !truncated) || !found_none;
      }
