type t = { name : string; period : int option; active : int -> int list }

let all_nodes n = List.init n (fun i -> i)

let synchronous n =
  if n <= 0 then invalid_arg "Schedule.synchronous: n must be positive";
  let everyone = all_nodes n in
  { name = "synchronous"; period = Some 1; active = (fun _ -> everyone) }

let round_robin n =
  if n <= 0 then invalid_arg "Schedule.round_robin: n must be positive";
  { name = "round-robin"; period = Some n; active = (fun t -> [ t mod n ]) }

let block_rounds sets =
  let arr = Array.of_list (List.map (List.sort_uniq compare) sets) in
  let p = Array.length arr in
  if p = 0 then invalid_arg "Schedule.block_rounds: empty schedule";
  Array.iter
    (fun s -> if s = [] then invalid_arg "Schedule.block_rounds: empty step")
    arr;
  { name = "block-rounds"; period = Some p; active = (fun t -> arr.(t mod p)) }

let prefix_then sets rest =
  let arr = Array.of_list (List.map (List.sort_uniq compare) sets) in
  let k = Array.length arr in
  Array.iter
    (fun s -> if s = [] then invalid_arg "Schedule.prefix_then: empty step")
    arr;
  {
    name = "prefix+" ^ rest.name;
    period = None;
    active = (fun t -> if t < k then arr.(t) else rest.active (t - k));
  }

(* Randomized schedules must be pure functions of [t]. Memoizing every draw
   (one table entry per step ever queried) leaks over million-step
   campaigns, so instead we keep a bounded set of replay checkpoints: a
   snapshot of the generator — and of the draw's auxiliary state, e.g. the
   fairness countdowns — taken every [k]-th step as the frontier advances,
   thinned geometrically (doubling [k]) so at most [max_checkpoints]
   snapshots are ever live. A query at or past the frontier advances it; a
   query below the frontier replays forward from the nearest checkpoint.
   Determinism holds under any query order because every step's set is
   always produced by the same prefix of draws from the same seed. *)
let max_checkpoints = 64

let memoized_random name ~seed ~init_aux ~copy_aux draw =
  let k = ref 16 in
  (* Invariant: an entry [(s, st, aux)] is positioned to draw step [s], its
     payload is never mutated, and step 0 is always present. *)
  let checkpoints = ref [ (0, Random.State.make [| seed |], init_aux ()) ] in
  let fr_state = Random.State.make [| seed |] in
  let fr_aux = init_aux () in
  let next = ref 0 in
  let last_t = ref (-1) and last_set = ref [] in
  let take_checkpoint () =
    checkpoints :=
      (!next, Random.State.copy fr_state, copy_aux fr_aux) :: !checkpoints;
    if List.length !checkpoints > max_checkpoints then begin
      k := 2 * !k;
      checkpoints :=
        List.filter (fun (s, _, _) -> s mod !k = 0) !checkpoints
    end
  in
  let advance_frontier t =
    let set = ref [] in
    while !next <= t do
      (match !checkpoints with
      | (s, _, _) :: _ when !next mod !k = 0 && s < !next ->
          take_checkpoint ()
      | _ -> ());
      set := draw fr_state fr_aux !next;
      incr next
    done;
    !set
  in
  let replay t =
    let from =
      List.fold_left
        (fun ((bs, _, _) as best) ((s, _, _) as c) ->
          if s <= t && s > bs then c else best)
        (List.hd (List.rev !checkpoints))
        !checkpoints
    in
    let s0, st0, aux0 = from in
    let st = Random.State.copy st0 and aux = copy_aux aux0 in
    let set = ref [] in
    for j = s0 to t do
      set := draw st aux j
    done;
    !set
  in
  let active t =
    if t < 0 then invalid_arg (name ^ ": negative step");
    if t = !last_t then !last_set
    else begin
      let set = if t >= !next then advance_frontier t else replay t in
      last_t := t;
      last_set := set;
      set
    end
  in
  { name; period = None; active }

let random_fair ~seed ~r n =
  if n <= 0 then invalid_arg "Schedule.random_fair: n must be positive";
  if r <= 0 then invalid_arg "Schedule.random_fair: r must be positive";
  (* The countdown vector is the draw's auxiliary state; it travels with the
     replay checkpoints so out-of-order queries see consistent fairness
     deadlines. *)
  let draw state countdown _t =
    let forced = ref [] and optional = ref [] in
    for i = n - 1 downto 0 do
      if countdown.(i) <= 1 then forced := i :: !forced
      else if Random.State.bool state then optional := i :: !optional
    done;
    let chosen =
      match (!forced, !optional) with
      | [], [] -> [ Random.State.int state n ]
      | f, o -> List.sort_uniq compare (f @ o)
    in
    Array.iteri
      (fun i c ->
        if List.mem i chosen then countdown.(i) <- r
        else countdown.(i) <- c - 1)
      countdown;
    chosen
  in
  memoized_random
    (Printf.sprintf "random-%d-fair" r)
    ~seed
    ~init_aux:(fun () -> Array.make n r)
    ~copy_aux:Array.copy draw

let random_singletons ~seed n =
  if n <= 0 then invalid_arg "Schedule.random_singletons: n must be positive";
  memoized_random "random-singletons" ~seed
    ~init_aux:(fun () -> ())
    ~copy_aux:Fun.id
    (fun state () _ -> [ Random.State.int state n ])

let is_r_fair sched ~n ~r ~horizon =
  if horizon < r then invalid_arg "Schedule.is_r_fair: horizon < r";
  (* last.(i) = most recent step (0-based) at which i was active, or -1. *)
  let last = Array.make n (-1) in
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < horizon do
    List.iter (fun i -> last.(i) <- !t) (sched.active !t);
    (* Once a full window has elapsed, every node must have fired within
       the last r steps. *)
    if !t >= r - 1 then
      Array.iter (fun l -> if l < !t - r + 1 then ok := false) last;
    incr t
  done;
  !ok

let fairness sched ~n ~horizon =
  let last = Array.make n (-1) in
  let worst = ref 1 in
  let missing = ref n in
  for t = 0 to horizon - 1 do
    List.iter
      (fun i ->
        if last.(i) < 0 then decr missing;
        last.(i) <- t)
      (sched.active t);
    if !missing = 0 then
      Array.iter (fun l -> worst := max !worst (t - l + 1)) last
  done;
  if !missing > 0 then None else Some !worst
