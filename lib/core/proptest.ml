(* Shared randomized-protocol generators for the differential test
   suites. Extracted from test_kernel.ml / test_netlab.ml /
   test_faults.ml, which had grown three near-identical copies; the RNG
   constants each suite used are preserved as parameters so the
   generated instances (and hence every pinned differential run) are
   unchanged. *)

module Builders = Stateless_graph.Builders
module Digraph = Stateless_graph.Digraph

(* A pure pseudo-random reaction: hash the node, its input and the exact
   incoming label vector. Deterministic, but with no structure an engine
   or channel could accidentally exploit. *)
let random_protocol ?(salt = 0x5ca1ab1e) ?(graph_seed_mult = 7)
    ?(name = "rand") seed =
  let st = Random.State.make [| salt; seed |] in
  let n = 2 + Random.State.int st 4 in
  let extra = Random.State.int st 4 in
  let g =
    Builders.random_strongly_connected
      ~seed:((seed * graph_seed_mult) + 1)
      n ~extra
  in
  let card = 2 + Random.State.int st 3 in
  let space = Label.int card in
  let react i x incoming =
    let h = Hashtbl.hash (x, i, Array.to_list incoming) in
    let d = Digraph.out_degree g i in
    ( Array.init d (fun k -> (h + (k * 7919) + (h lsr (k land 15))) mod card),
      h mod 5 )
  in
  let p =
    { Protocol.name = Printf.sprintf "%s%d" name seed; graph = g; space; react }
  in
  let input = Array.init n (fun _ -> Random.State.int st 3) in
  (p, input, st)

(* Parameterized variant for the fuzz shrinker: structure knobs are
   explicit arguments rather than RNG draws, so shrinking [nodes] or
   [card] regenerates a structurally related instance from the same
   seed. Inputs are a pure per-node hash — removing node [n-1] leaves
   the inputs of the surviving nodes untouched. *)
let protocol_of ?(name = "fuzz") ~seed ~nodes ~extra ~card () =
  if nodes < 2 then invalid_arg "Proptest.protocol_of: nodes must be >= 2";
  if card < 2 then invalid_arg "Proptest.protocol_of: card must be >= 2";
  if extra < 0 then invalid_arg "Proptest.protocol_of: negative extra";
  let g =
    Builders.random_strongly_connected ~seed:((seed * 7) + 1) nodes ~extra
  in
  let space = Label.int card in
  let react i x incoming =
    let h = Hashtbl.hash (x, i, Array.to_list incoming) in
    let d = Digraph.out_degree g i in
    ( Array.init d (fun k -> (h + (k * 7919) + (h lsr (k land 15))) mod card),
      h mod 5 )
  in
  let p =
    {
      Protocol.name =
        Printf.sprintf "%s-s%d-n%d-x%d-c%d" name seed nodes extra card;
      graph = g;
      space;
      react;
    }
  in
  let input = Array.init nodes (fun i -> Hashtbl.hash (seed, i, "in") mod 3) in
  (p, input)

let random_config p st =
  let m = Protocol.num_edges p and n = Protocol.num_nodes p in
  let card = p.Protocol.space.Label.card in
  let decode = p.Protocol.space.Label.decode in
  {
    Protocol.labels = Array.init m (fun _ -> decode (Random.State.int st card));
    outputs = Array.init n (fun _ -> Random.State.int st 5);
  }

let random_active n st =
  List.filter (fun _ -> Random.State.bool st) (List.init n Fun.id)

let schedules_for ?(offset = 11) seed n =
  [
    Schedule.synchronous n;
    Schedule.round_robin n;
    Schedule.random_fair ~seed:(seed + offset) ~r:2 n;
  ]

let config_eq p a b =
  String.equal (Protocol.config_key p a) (Protocol.config_key p b)
  && a.Protocol.outputs = b.Protocol.outputs

let copy_ring ?(name = "copy-ring") n : (unit, bool) Protocol.t =
  {
    Protocol.name;
    graph = Builders.ring_uni n;
    space = Label.bool;
    react = (fun _ () incoming -> ([| incoming.(0) |], 0));
  }
