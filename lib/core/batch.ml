module A1 = Bigarray.Array1

(* K instances of one compiled protocol in lock-step. The planes are laid
   out instance-major per edge/node — edge [e] of instance [j] at
   [e * cap + j] — so {!Kernel.step_plane}'s per-edge inner loops touch
   each instance row contiguously. The kernel (and with it every reaction
   tier) is shared read-only across the batch; a retired instance's final
   state moves to a per-instance snapshot so the planes can skip carry-over
   blits without losing it. *)

type ('x, 'l) t = {
  kern : ('x, 'l) Kernel.t;
  m : int;
  n : int;
  mutable cap : int;  (** plane stride; >= the current block size *)
  mutable src_l : Kernel.plane;
  mutable src_o : Kernel.plane;
  mutable dst_l : Kernel.plane;
  mutable dst_o : Kernel.plane;
  mutable live : int array;  (** live instance columns, first [nlive] *)
  mutable nlive : int;
  mutable pos_of : int array;  (** column -> position in [live], -1 if out *)
  mutable codes : int array;  (** step_plane scratch, length [cap] *)
  mutable iter : int array;  (** live snapshot for retire-during-iteration *)
  mutable snap_l : int array;  (** retirement labels, [j * m + e] *)
  mutable snap_o : int array;  (** retirement outputs, [j * n + i] *)
  mutable b : int;  (** current block size *)
  tmp_l : int array;
  tmp_o : int array;
}

let create kern =
  let m = Kernel.num_edges kern and n = Kernel.num_nodes kern in
  let empty () = A1.create Bigarray.int Bigarray.c_layout 0 in
  {
    kern;
    m;
    n;
    cap = 0;
    src_l = empty ();
    src_o = empty ();
    dst_l = empty ();
    dst_o = empty ();
    live = [||];
    nlive = 0;
    pos_of = [||];
    codes = [||];
    iter = [||];
    snap_l = [||];
    snap_o = [||];
    b = 0;
    tmp_l = Array.make m 0;
    tmp_o = Array.make n 0;
  }

let kernel t = t.kern
let capacity t = t.cap
let block_size t = t.b
let live_count t = t.nlive

let is_live t ~j =
  if j < 0 || j >= t.b then invalid_arg "Batch.is_live: instance out of range";
  t.pos_of.(j) >= 0

(* Doubling growth so repeated blocks of similar size never reallocate;
   contents need not survive — every caller is [load_block]. *)
let ensure t b =
  if b > t.cap then begin
    let cap = max b (2 * t.cap) in
    let plane len = A1.create Bigarray.int Bigarray.c_layout len in
    t.cap <- cap;
    t.src_l <- plane (t.m * cap);
    t.src_o <- plane (t.n * cap);
    t.dst_l <- plane (t.m * cap);
    t.dst_o <- plane (t.n * cap);
    t.live <- Array.make cap 0;
    t.pos_of <- Array.make cap (-1);
    t.codes <- Array.make cap 0;
    t.iter <- Array.make cap 0;
    t.snap_l <- Array.make (t.m * cap) 0;
    t.snap_o <- Array.make (t.n * cap) 0
  end

let load_block t configs =
  let b = Array.length configs in
  ensure t b;
  t.b <- b;
  let cap = t.cap in
  for j = 0 to b - 1 do
    Kernel.load t.kern configs.(j) ~labels:t.tmp_l ~outputs:t.tmp_o;
    for e = 0 to t.m - 1 do
      A1.unsafe_set t.src_l ((e * cap) + j) (Array.unsafe_get t.tmp_l e)
    done;
    for i = 0 to t.n - 1 do
      A1.unsafe_set t.src_o ((i * cap) + j) (Array.unsafe_get t.tmp_o i)
    done;
    t.live.(j) <- j;
    t.pos_of.(j) <- j
  done;
  (* Clear stale positions from a previous, larger block. *)
  for j = b to cap - 1 do
    t.pos_of.(j) <- -1
  done;
  t.nlive <- b

let retire t ~j =
  let p = t.pos_of.(j) in
  if p < 0 then invalid_arg "Batch.retire: instance already retired";
  let cap = t.cap in
  for e = 0 to t.m - 1 do
    t.snap_l.((j * t.m) + e) <- A1.unsafe_get t.src_l ((e * cap) + j)
  done;
  for i = 0 to t.n - 1 do
    t.snap_o.((j * t.n) + i) <- A1.unsafe_get t.src_o ((i * cap) + j)
  done;
  (* Order-preserving removal keeps the live vector (and so every
     history-recording sweep) in instance order. *)
  for q = p to t.nlive - 2 do
    let j' = t.live.(q + 1) in
    t.live.(q) <- j';
    t.pos_of.(j') <- q
  done;
  t.nlive <- t.nlive - 1;
  t.pos_of.(j) <- -1

let step t ~active =
  if t.nlive > 0 then begin
    Kernel.step_plane t.kern ~stride:t.cap ~live:t.live ~nlive:t.nlive
      ~src:t.src_l ~src_outputs:t.src_o ~dst:t.dst_l ~dst_outputs:t.dst_o
      ~codes:t.codes ~active;
    let l = t.src_l and o = t.src_o in
    t.src_l <- t.dst_l;
    t.src_o <- t.dst_o;
    t.dst_l <- l;
    t.dst_o <- o
  end

let label_code t ~j e =
  if t.pos_of.(j) >= 0 then A1.get t.src_l ((e * t.cap) + j)
  else t.snap_l.((j * t.m) + e)

let output t ~j i =
  if t.pos_of.(j) >= 0 then A1.get t.src_o ((i * t.cap) + j)
  else t.snap_o.((j * t.n) + i)

let store t ~j =
  if t.pos_of.(j) >= 0 then begin
    let cap = t.cap in
    for e = 0 to t.m - 1 do
      t.tmp_l.(e) <- A1.unsafe_get t.src_l ((e * cap) + j)
    done;
    for i = 0 to t.n - 1 do
      t.tmp_o.(i) <- A1.unsafe_get t.src_o ((i * cap) + j)
    done
  end
  else begin
    Array.blit t.snap_l (j * t.m) t.tmp_l 0 t.m;
    Array.blit t.snap_o (j * t.n) t.tmp_o 0 t.n
  end;
  Kernel.store t.kern ~labels:t.tmp_l ~outputs:t.tmp_o

(* Snapshot the live vector into [iter] so a sweep can retire instances
   mid-iteration without skipping the shifted-down neighbours. *)
let snapshot_live t =
  Array.blit t.live 0 t.iter 0 t.nlive;
  t.nlive

(* The batched twin of {!Kernel.run_until_stable}: every live instance
   follows the per-instance loop verbatim — stability probe, step budget,
   periodic key dedup, step, key/last-change update — and since all live
   instances execute the same schedule step at the same time, the shared
   lock-step [step] is exactly each instance's own step. Verdicts are
   therefore bit-identical to K separate {!Kernel.run_until_stable} calls. *)
let run_until_stable t ~inits ~schedule ~max_steps =
  let b = Array.length inits in
  load_block t inits;
  let kern = t.kern in
  let period_opt = schedule.Schedule.period in
  let keys = Array.make b "" in
  let last_change = Array.make b 0 in
  let seen = Array.init b (fun _ -> Hashtbl.create 64) in
  let out = Array.make b None in
  for j = 0 to b - 1 do
    keys.(j) <- Kernel.key_in_plane kern ~stride:t.cap ~j ~src:t.src_l
  done;
  let s = ref 0 in
  while t.nlive > 0 do
    let s0 = !s in
    let cnt = snapshot_live t in
    for q = 0 to cnt - 1 do
      let j = t.iter.(q) in
      if Kernel.stable_in_plane kern ~stride:t.cap ~j ~src:t.src_l then begin
        out.(j) <-
          Some (Engine.Stabilized { rounds = s0; config = store t ~j });
        retire t ~j
      end
      else if s0 >= max_steps then begin
        out.(j) <- Some (Engine.Exhausted (store t ~j));
        retire t ~j
      end
      else
        match period_opt with
        | Some period when s0 mod period = 0 -> (
            match Hashtbl.find_opt seen.(j) keys.(j) with
            | Some t0 ->
                if last_change.(j) > t0 then begin
                  out.(j) <-
                    Some
                      (Engine.Oscillating { entered = t0; period = s0 - t0 });
                  retire t ~j
                end
                else begin
                  (* Quiescent since [last_change]: the labeling stopped
                     moving before the dedup window closed — same resolution
                     as the per-instance path, a short re-run to the quiesce
                     point. *)
                  let since = last_change.(j) in
                  out.(j) <-
                    Some
                      (Engine.Stabilized
                         {
                           rounds = since;
                           config =
                             Kernel.run kern ~init:inits.(j) ~schedule
                               ~steps:since;
                         });
                  retire t ~j
                end
            | None -> Hashtbl.replace seen.(j) keys.(j) s0)
        | _ -> ()
    done;
    if t.nlive > 0 then begin
      step t ~active:(schedule.Schedule.active s0);
      for q = 0 to t.nlive - 1 do
        let j = t.live.(q) in
        let nk = Kernel.key_in_plane kern ~stride:t.cap ~j ~src:t.src_l in
        if not (String.equal nk keys.(j)) then last_change.(j) <- s0 + 1;
        keys.(j) <- nk
      done
    end;
    s := s0 + 1
  done;
  Array.map
    (function Some o -> o | None -> assert false (* all retired with verdict *))
    out

(* The batched twin of {!Kernel.settle}: verdicts via {!run_until_stable},
   then one lock-step replay recording each instance's per-step output rows
   until its own certification horizon, then the same settled-output /
   first-bad analysis per instance. *)
let settle t ~inits ~schedule ~max_steps =
  let b = Array.length inits in
  let kern = t.kern in
  let n = t.n in
  let outcomes = run_until_stable t ~inits ~schedule ~max_steps in
  let horizon = Array.make b (-1) in
  let cycle_entry = Array.make b None in
  for j = 0 to b - 1 do
    match outcomes.(j) with
    | Engine.Exhausted _ -> ()
    | Engine.Stabilized { rounds; _ } ->
        let slack = max 1 n
        and slack_period =
          match schedule.Schedule.period with Some q -> q | None -> 1
        in
        horizon.(j) <- rounds + (slack * slack_period)
    | Engine.Oscillating { entered; period } ->
        horizon.(j) <- entered + (2 * period);
        cycle_entry.(j) <- Some entered
  done;
  let hist =
    Array.map (fun h -> if h < 0 then [||] else Array.make ((h + 1) * n) 0)
      horizon
  in
  load_block t inits;
  for j = 0 to b - 1 do
    if horizon.(j) < 0 then retire t ~j
    else
      let hj = hist.(j) in
      for i = 0 to n - 1 do
        hj.(i) <- output t ~j i
      done
  done;
  let s = ref 0 in
  while t.nlive > 0 do
    step t ~active:(schedule.Schedule.active !s);
    let r = !s + 1 in
    let cnt = snapshot_live t in
    for q = 0 to cnt - 1 do
      let j = t.iter.(q) in
      let hj = hist.(j) in
      for i = 0 to n - 1 do
        hj.((r * n) + i) <- output t ~j i
      done;
      if horizon.(j) = r then retire t ~j
    done;
    s := r
  done;
  Array.init b (fun j ->
      if horizon.(j) < 0 then None
      else begin
        let hj = hist.(j) in
        let h = horizon.(j) in
        let rows_equal r1 r2 =
          let rec go i =
            i >= n || (hj.((r1 * n) + i) = hj.((r2 * n) + i) && go (i + 1))
          in
          go 0
        in
        let settled_outputs =
          match cycle_entry.(j) with
          | None ->
              (* Labels are stable at the horizon; refresh from the
                 retirement snapshot so every node has reported. *)
              Array.blit t.snap_l (j * t.m) t.tmp_l 0 t.m;
              Some
                (Array.init n (fun i ->
                     Kernel.node_output kern ~labels:t.tmp_l ~i))
          | Some entered ->
              let reference = entered + 1 in
              let constant = ref true in
              for s = entered + 2 to h do
                if not (rows_equal s reference) then constant := false
              done;
              if !constant then Some (Array.sub hj (reference * n) n)
              else None
        in
        match settled_outputs with
        | None -> None
        | Some settled_outputs ->
            let rec first_bad s best =
              if s < 0 then best
              else if rows_equal s h then first_bad (s - 1) s
              else best
            in
            let settle_time = first_bad h h in
            Some
              { Engine.settle_time; settled_outputs; horizon_config = store t ~j }
      end)
