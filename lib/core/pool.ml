(* Persistent domain pool. See pool.mli for the design contract.

   Synchronization layout: [mu] protects every piece of mutable pool
   state below ([current], [generation], worker bookkeeping) plus the two
   condition variables. Within a job, chunk claiming and completion
   counting are lock-free atomics; the mutex is only touched to park and
   to signal the final completion. *)

type job = {
  run : slot:int -> int -> unit;
  nchunks : int;
  parallelism : int;  (* domains working this job, submitter included *)
  next : int Atomic.t;  (* next unclaimed chunk *)
  unfinished : int Atomic.t;  (* chunks not yet completed *)
  joined : int Atomic.t;  (* helper slots handed out *)
  mutable failed : exn option;  (* first chunk exception, under [mu] *)
}

let mu = Mutex.create ()
let work_cv = Condition.create ()
let done_cv = Condition.create ()
let current : job option ref = ref None

(* There is one [current] slot: two top-level submitters publishing
   concurrently would overwrite each other's job mid-flight and corrupt
   the generation/wakeup protocol. Top-level submissions therefore take
   this mutex for the whole job; nested in-worker calls run inline and
   never reach it, so a worker can still submit without deadlocking. *)
let submit_mu = Mutex.create ()

(* Bumped once per published job so a worker that already served job [g]
   can tell a fresh job from a spurious wakeup on the same slot. *)
let generation = ref 0
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let quit = ref false
let teardown_registered = ref false

(* Stay well clear of the runtime's hard domain cap (128); a single pool
   job never benefits from more helpers than chunks anyway. *)
let max_workers = 60

let busy_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get busy_key
let size () = !worker_count

let record_failure j exn =
  Mutex.lock mu;
  (match j.failed with None -> j.failed <- Some exn | Some _ -> ());
  Mutex.unlock mu

(* Claim and run chunks until none remain. The domain completing the last
   chunk wakes the submitter. *)
let execute j ~slot =
  let rec loop () =
    let c = Atomic.fetch_and_add j.next 1 in
    if c < j.nchunks then begin
      (try
         Chaos.on_pool_chunk ~slot ~chunk:c;
         j.run ~slot c
       with exn -> record_failure j exn);
      if Atomic.fetch_and_add j.unfinished (-1) = 1 then begin
        Mutex.lock mu;
        Condition.broadcast done_cv;
        Mutex.unlock mu
      end;
      loop ()
    end
  in
  loop ()

let worker () =
  Domain.DLS.set busy_key true;
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock mu;
    while (not !quit) && (!generation = !seen || !current = None) do
      Condition.wait work_cv mu
    done;
    if !quit then begin
      Mutex.unlock mu;
      running := false
    end
    else begin
      seen := !generation;
      let j = Option.get !current in
      Mutex.unlock mu;
      (* Jobs cap their helper count; late wakers find the slots taken and
         go straight back to sleep. A stale job (already drained while we
         woke) costs one failed claim. *)
      let k = Atomic.fetch_and_add j.joined 1 in
      if k < j.parallelism - 1 then execute j ~slot:(k + 1)
    end
  done

let teardown () =
  Mutex.lock mu;
  quit := true;
  Condition.broadcast work_cv;
  let ws = !workers in
  workers := [];
  worker_count := 0;
  Mutex.unlock mu;
  List.iter Domain.join ws

let ensure_workers wanted =
  let wanted = min wanted max_workers in
  if !worker_count < wanted then begin
    Mutex.lock mu;
    if not !teardown_registered then begin
      teardown_registered := true;
      at_exit teardown
    end;
    while !worker_count < wanted && not !quit do
      workers := Domain.spawn worker :: !workers;
      incr worker_count
    done;
    Mutex.unlock mu
  end

let run ~domains ~nchunks f =
  if domains < 1 then invalid_arg "Pool.run: domains must be >= 1";
  if nchunks < 0 then invalid_arg "Pool.run: negative chunk count";
  if nchunks = 0 then ()
  else if domains = 1 || nchunks = 1 || in_worker () then begin
    (* Same drain contract as the parallel path: a raising chunk must not
       abandon the chunks after it, and only the first exception
       propagates. Nested inline jobs inherit the guarantee, so a pool
       submitter that runs inline work inside a chunk stays reusable. *)
    let failed = ref None in
    for c = 0 to nchunks - 1 do
      try
        Chaos.on_pool_chunk ~slot:0 ~chunk:c;
        f ~slot:0 c
      with exn -> ( match !failed with None -> failed := Some exn | Some _ -> ())
    done;
    match !failed with None -> () | Some exn -> raise exn
  end
  else begin
    Mutex.lock submit_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock submit_mu)
      (fun () ->
        ensure_workers (min (domains - 1) (nchunks - 1));
        let j =
          {
            run = f;
            nchunks;
            parallelism = domains;
            next = Atomic.make 0;
            unfinished = Atomic.make nchunks;
            joined = Atomic.make 0;
            failed = None;
          }
        in
        Mutex.lock mu;
        current := Some j;
        incr generation;
        Condition.broadcast work_cv;
        Mutex.unlock mu;
        (* The submitter works too: [domains = 1 + helpers]. *)
        Domain.DLS.set busy_key true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set busy_key false)
          (fun () -> execute j ~slot:0);
        Mutex.lock mu;
        while Atomic.get j.unfinished > 0 do
          Condition.wait done_cv mu
        done;
        current := None;
        Mutex.unlock mu;
        match j.failed with None -> () | Some exn -> raise exn)
  end
