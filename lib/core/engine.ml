module Digraph = Stateless_graph.Digraph

type 'l outcome =
  | Stabilized of { rounds : int; config : 'l Protocol.config }
  | Oscillating of { entered : int; period : int }
  | Exhausted of 'l Protocol.config

let step p ~input config ~active =
  let open Protocol in
  (* Reactions are computed against the previous configuration and written
     atomically, matching the paper's global transition function. *)
  let reactions =
    List.map (fun i -> (i, Protocol.apply p ~input config i)) active
  in
  let labels = Array.copy config.labels in
  let outputs = Array.copy config.outputs in
  List.iter
    (fun (i, (out, y)) ->
      let edges = Digraph.out_edges p.Protocol.graph i in
      Array.iteri (fun k e -> labels.(e) <- out.(k)) edges;
      outputs.(i) <- y)
    reactions;
  { labels; outputs }

let step_into p ~input config ~active ~into =
  let open Protocol in
  (* Allocation-light variant of {!step}: [into]'s arrays are overwritten in
     place. Reactions still read [config], so [into] must not share arrays
     with [config]. *)
  Array.blit config.labels 0 into.labels 0 (Array.length config.labels);
  Array.blit config.outputs 0 into.outputs 0 (Array.length config.outputs);
  List.iter
    (fun i ->
      let out, y = Protocol.apply p ~input config i in
      let edges = Digraph.out_edges p.Protocol.graph i in
      Array.iteri (fun k e -> into.labels.(e) <- out.(k)) edges;
      into.outputs.(i) <- y)
    active

let run p ~input ~init ~schedule ~steps =
  if steps <= 0 then init
  else begin
    let open Protocol in
    let copy c = { labels = Array.copy c.labels; outputs = Array.copy c.outputs } in
    (* Double-buffer through [step_into] so a long run allocates two
       configurations total instead of one per step. *)
    let cur = ref (copy init) and nxt = ref (copy init) in
    for t = 0 to steps - 1 do
      step_into p ~input !cur ~active:(schedule.Schedule.active t) ~into:!nxt;
      let tmp = !cur in
      cur := !nxt;
      nxt := tmp
    done;
    !cur
  end

let trace p ~input ~init ~schedule ~steps =
  if steps <= 0 then [ init ]
  else begin
    let open Protocol in
    let copy c = { labels = Array.copy c.labels; outputs = Array.copy c.outputs } in
    (* Double-buffer through [step_into]; only the returned snapshots are
       copied out, instead of one reaction list + two arrays per step. *)
    let cur = ref (copy init) and nxt = ref (copy init) in
    let acc = ref [ init ] in
    for t = 0 to steps - 1 do
      step_into p ~input !cur ~active:(schedule.Schedule.active t) ~into:!nxt;
      let tmp = !cur in
      cur := !nxt;
      nxt := tmp;
      acc := copy !cur :: !acc
    done;
    List.rev !acc
  end

let run_until_stable p ~input ~init ~schedule ~max_steps =
  let period_opt = schedule.Schedule.period in
  let seen = Hashtbl.create 256 in
  let key0 = Protocol.config_key p init in
  let exception Cycle_found of int * int in
  let exception Quiescent of int in
  (* Deterministic dynamics: if the labeling recurs at the same schedule
     phase, the run repeats that segment forever. The segment contains a
     label change iff the labeling sequence diverges. *)
  let rec loop t config key last_change =
    if Protocol.is_stable p ~input config then
      Stabilized { rounds = t; config }
    else if t >= max_steps then Exhausted config
    else begin
      (match period_opt with
      | Some period when t mod period = 0 -> (
          match Hashtbl.find_opt seen key with
          | Some t0 ->
              if last_change > t0 then raise (Cycle_found (t0, t - t0))
              else raise (Quiescent last_change)
          | None -> Hashtbl.replace seen key t)
      | _ -> ());
      let next = step p ~input config ~active:(schedule.Schedule.active t) in
      let next_key = Protocol.config_key p next in
      let last_change =
        if String.equal next_key key then last_change else t + 1
      in
      loop (t + 1) next next_key last_change
    end
  in
  match loop 0 init key0 0 with
  | result -> result
  | exception Cycle_found (entered, period) -> Oscillating { entered; period }
  | exception Quiescent since ->
      (* The labeling sequence became constant even though some unscheduled
         reaction function is not at a fixed point; the sequence of labelings
         converges, which is the paper's notion of label convergence. *)
      let config = run p ~input ~init ~schedule ~steps:since in
      Stabilized { rounds = since; config }

let refreshed_outputs p ~input config =
  let n = Protocol.num_nodes p in
  Array.init n (fun i -> snd (Protocol.apply p ~input config i))

type 'l settled = {
  settle_time : int;
  settled_outputs : int array;
  horizon_config : 'l Protocol.config;
}

(* One certified run, traversed once. [run_until_stable] reaches a verdict,
   the trace up to the certification horizon is replayed a single time, and
   everything a caller may want is read off that trace: the output
   stabilization time, the settled output vector, and the configuration at
   the horizon (a steady state — callers that corrupt-and-remeasure reuse
   it instead of re-simulating the same trajectory with [run]). *)
let settle p ~input ~init ~schedule ~max_steps =
  match run_until_stable p ~input ~init ~schedule ~max_steps with
  | Exhausted _ -> None
  | outcome -> (
      let horizon, cycle_entry =
        match outcome with
        | Stabilized { rounds; _ } ->
            let slack = max 1 (Protocol.num_nodes p)
            and slack_period =
              match schedule.Schedule.period with Some q -> q | None -> 1
            in
            (rounds + (slack * slack_period), None)
        | Oscillating { entered; period } ->
            (entered + (2 * period), Some entered)
        | Exhausted _ -> assert false
      in
      let configs =
        Array.of_list (trace p ~input ~init ~schedule ~steps:horizon)
      in
      let horizon_config = configs.(Array.length configs - 1) in
      let settled_outputs =
        match cycle_entry with
        | None ->
            (* Labels are stable at the horizon; refresh so every node has
               reported. *)
            Some (refreshed_outputs p ~input horizon_config)
        | Some entered ->
            (* The trace covers the cycle twice; outputs must be constant
               throughout for the run to output-stabilize. *)
            let reference = configs.(entered + 1).Protocol.outputs in
            let constant = ref true in
            for t = entered + 2 to horizon do
              if
                not
                  (Array.for_all2 ( = ) reference
                     configs.(t).Protocol.outputs)
              then constant := false
            done;
            if !constant then Some (Array.copy reference) else None
      in
      match settled_outputs with
      | None -> None
      | Some settled_outputs ->
          let final = horizon_config.Protocol.outputs in
          let rec first_bad t best =
            if t < 0 then best
            else if Array.for_all2 ( = ) configs.(t).Protocol.outputs final
            then first_bad (t - 1) t
            else best
          in
          let settle_time =
            first_bad (Array.length configs - 1) (Array.length configs - 1)
          in
          Some { settle_time; settled_outputs; horizon_config })

let outputs_after_convergence p ~input ~init ~schedule ~max_steps =
  Option.map
    (fun s -> s.settled_outputs)
    (settle p ~input ~init ~schedule ~max_steps)

let history_until_verdict p ~input ~init ~schedule ~max_steps =
  match run_until_stable p ~input ~init ~schedule ~max_steps with
  | Exhausted _ -> None
  | Stabilized { rounds; _ } ->
      let slack = max 1 (Protocol.num_nodes p)
      and slack_period =
        match schedule.Schedule.period with Some q -> q | None -> 1
      in
      Some (rounds + (slack * slack_period))
  | Oscillating { entered; period } -> Some (entered + (2 * period))

let output_stabilization_time p ~input ~init ~schedule ~max_steps =
  Option.map
    (fun s -> s.settle_time)
    (settle p ~input ~init ~schedule ~max_steps)

let label_stabilization_time p ~input ~init ~schedule ~max_steps =
  match run_until_stable p ~input ~init ~schedule ~max_steps with
  | Stabilized _ ->
      let horizon =
        match history_until_verdict p ~input ~init ~schedule ~max_steps with
        | Some h -> h
        | None -> max_steps
      in
      let configs = trace p ~input ~init ~schedule ~steps:horizon in
      let keys =
        Array.of_list (List.map (fun c -> Protocol.config_key p c) configs)
      in
      let final = keys.(Array.length keys - 1) in
      let rec first_bad t best =
        if t < 0 then best
        else if String.equal keys.(t) final then first_bad (t - 1) t
        else best
      in
      Some (first_bad (Array.length keys - 1) (Array.length keys - 1))
  | Oscillating _ | Exhausted _ -> None

let synchronous_round_complexity p ~inputs ~max_steps =
  match Protocol.labelings_count p with
  | None ->
      invalid_arg
        "Engine.synchronous_round_complexity: labeling space too large"
  | Some count ->
      let schedule = Schedule.synchronous (Protocol.num_nodes p) in
      let worst = ref 0 in
      let failed = ref false in
      List.iter
        (fun input ->
          let code = ref 0 in
          while (not !failed) && !code < count do
            let init = Protocol.decode_config p !code in
            (match
               output_stabilization_time p ~input ~init ~schedule ~max_steps
             with
            | Some t -> worst := max !worst t
            | None -> failed := true);
            incr code
          done)
        inputs;
      if !failed then None else Some !worst

let sampled_round_complexity p ~inputs ~samples ~seed ~max_steps =
  let schedule = Schedule.synchronous (Protocol.num_nodes p) in
  let state = Random.State.make [| seed |] in
  let card = p.Protocol.space.Label.card in
  let m = Protocol.num_edges p in
  let worst = ref 0 in
  let failed = ref false in
  List.iter
    (fun input ->
      for _ = 1 to samples do
        if not !failed then begin
          let labels =
            Array.init m (fun _ ->
                p.Protocol.space.Label.decode (Random.State.int state card))
          in
          let init = Protocol.config_of_labels p labels in
          match
            output_stabilization_time p ~input ~init ~schedule ~max_steps
          with
          | Some t -> worst := max !worst t
          | None -> failed := true
        end
      done)
    inputs;
  if !failed then None else Some !worst
