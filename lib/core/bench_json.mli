(** Shared envelope for the [BENCH_*.json] emitters.

    Every benchmark leg writes the same outer shape —
    [{ "benchmark": ..., "host": ..., "batch": ..., "certification": ...,
    <leg-specific fields> }] — so the envelope lives here once and each
    leg only provides a body printer for its own fields. CI's artifact
    glob and its ["\"identical\": false"] grep rely on this shape staying
    uniform across legs. *)

(** Short git revision of the working tree, or ["unknown"] outside a
    checkout. *)
val git_rev : unit -> string

(** Provenance block shared by every [BENCH_*.json]: OCaml version,
    [Domain.recommended_domain_count], the domain count used, and
    {!git_rev}. Returned as a JSON object string. *)
val host : domains:int -> unit -> string

(** Peak resident set size of this process in kB, from Linux's
    [/proc/self/status] [VmHWM] line; [-1] where unavailable. The
    high-water mark is monotone over the process lifetime — legs that
    report per-instance peaks must run instances in ascending size
    order. *)
val peak_rss_kb : unit -> int

(** Envelope schema version, emitted as ["schema_version"] by {!write}.
    Bumped on incompatible envelope changes. *)
val schema_version : int

(** [write ~benchmark ?host ?batch ?cells ?certification oc body] prints
    the envelope — opening brace, benchmark name, schema version,
    optional host block, optional [(k, identical)] lock-step batch
    summary, optional [(ok, timeout, error)] campaign-cell accounting,
    optional pre-rendered certification rows — then calls [body oc] to
    print the leg's remaining comma-separated fields (each line indented
    two spaces, no trailing comma after the last field), and closes the
    object. *)
val write :
  benchmark:string ->
  ?host:string ->
  ?batch:int * bool ->
  ?cells:int * int * int ->
  ?certification:string list ->
  out_channel ->
  (out_channel -> unit) ->
  unit

(** [to_file path emit] writes [emit oc] to [path ^ ".tmp"] and renames
    it over [path], so a crash mid-write never leaves a truncated file
    at the visible path. The temp file is removed if [emit] raises. *)
val to_file : string -> (out_channel -> unit) -> unit
