(** Shared envelope for the [BENCH_*.json] emitters.

    Every benchmark leg writes the same outer shape —
    [{ "benchmark": ..., "host": ..., "batch": ..., "certification": ...,
    <leg-specific fields> }] — so the envelope lives here once and each
    leg only provides a body printer for its own fields. CI's artifact
    glob and its ["\"identical\": false"] grep rely on this shape staying
    uniform across legs. *)

(** Short git revision of the working tree, or ["unknown"] outside a
    checkout. *)
val git_rev : unit -> string

(** Provenance block shared by every [BENCH_*.json]: OCaml version,
    [Domain.recommended_domain_count], the domain count used, and
    {!git_rev}. Returned as a JSON object string. *)
val host : domains:int -> unit -> string

(** Peak resident set size of this process in kB, from Linux's
    [/proc/self/status] [VmHWM] line; [-1] where unavailable. The
    high-water mark is monotone over the process lifetime — legs that
    report per-instance peaks must run instances in ascending size
    order. *)
val peak_rss_kb : unit -> int

(** [write ~benchmark ?host ?batch ?certification oc body] prints the
    envelope — opening brace, benchmark name, optional host block,
    optional [(k, identical)] lock-step batch summary, optional
    pre-rendered certification rows — then calls [body oc] to print the
    leg's remaining comma-separated fields (each line indented two
    spaces, no trailing comma after the last field), and closes the
    object. *)
val write :
  benchmark:string ->
  ?host:string ->
  ?batch:int * bool ->
  ?certification:string list ->
  out_channel ->
  (out_channel -> unit) ->
  unit
