(** Deterministic, seeded fault injection for the runtime's own
    infrastructure.

    The orchestrator's crash-tolerance guarantees (journal resume
    identity, graceful degradation, pool drain-and-reraise) were
    exercised by one scripted SIGKILL in CI. This module turns the
    adversary inward: instrumented sites in {!Pool} and
    [Stateless_campaign.Campaign] consult an armed injection plan on
    every operation and — per a pure function of [(seed, site, op
    index)] — crash, stall, tear a journal write at a byte offset, fail
    with a simulated ENOSPC, duplicate a record, truncate a journal
    read, or skew the deadline clock. Chaoslab then proves the
    robustness invariants hold under whole storms of such injections,
    not just one scripted kill.

    {b Cost when disarmed.} Every hook is a single atomic load and
    branch; nothing else in the runtime changes. Arming is global (all
    domains see the plan) and is meant for tests, the [chaos] CLI
    subcommand, and the chaos bench leg — never concurrent with an
    unrelated campaign in the same process.

    {b Determinism.} A [Prob] trigger draws from a splitmix-style
    counter generator: the decision for the [k]-th operation at a site
    is a pure function of [(seed, site, k)]. With one domain the full
    injection storm is therefore an exact replayable function of the
    seed; with several domains the interleaving (and hence which chunk
    or record an injection lands on) varies, but the invariants chaoslab
    checks are universally quantified over storms, so every interleaving
    is a valid test. *)

(** Instrumented sites. [Pool_chunk] fires once per pool chunk executed
    (worker or inline); [Journal_write] once per campaign journal record
    appended; [Journal_read] once per journal load; [Clock_read] once
    per deadline-clock read. *)
type site = Pool_chunk | Journal_write | Journal_read | Clock_read

val site_name : site -> string

(** What to inject when a rule fires. Actions only make sense at some
    sites (e.g. [Torn] at [Journal_write]); a rule pairing an action
    with a site that cannot interpret it is rejected by {!arm}. *)
type action =
  | Crash  (** raise {!Injected} — a simulated process death. At
               [Pool_chunk] the pool records it as the chunk's failure
               (remaining chunks still drain); at [Journal_write] the
               record is simply never written before the raise. *)
  | Stall of float  (** [Pool_chunk]: sleep this many seconds before
                        running the chunk — a straggling worker. *)
  | Torn of int  (** [Journal_write]: append only the first [k] bytes
                     of the record (no trailing newline), fsync them,
                     then raise {!Injected} — a crash mid-append. [k]
                     is clamped to the record length minus one so the
                     tear is always a real tear. *)
  | Enospc  (** [Journal_write]: drop the record without writing — a
                full disk. The campaign must degrade gracefully: the
                cell's result stays in memory and only durability is
                lost (a resume re-runs that cell). *)
  | Duplicate  (** [Journal_write]: append the record twice. Replay
                   must stay correct (last record per key wins). *)
  | Short_read of int  (** [Journal_read]: drop the final [k] bytes of
                           the loaded journal — a short read. The torn
                           tail is discarded and its cells re-run. *)
  | Jump of float  (** [Clock_read]: permanently add this many seconds
                       of skew to the wall clock (negative = a backwards
                       NTP step, which the campaign's monotone clamp
                       must absorb). Skew accumulates across fires. *)

(** When a rule fires. [At ks] fires on exactly the listed 0-based
    operation indices of the rule's site; [Prob p] fires each operation
    independently with probability [p], decided by the counter RNG. *)
type trigger = At of int list | Prob of float

type rule = { site : site; trigger : trigger; action : action }

(** Raised by an injection whose action is a simulated crash ([Crash],
    [Torn]). [site] and [op] identify the operation that died. *)
exception Injected of { site : site; op : int }

(** [arm ~seed rules] installs a plan; any previously armed plan is
    replaced and all counters reset.
    @raise Invalid_argument on an action/site pair no hook interprets,
    a [Prob] outside [0,1], a negative [At] index, or a negative
    [Stall]/[Short_read] parameter. *)
val arm : seed:int -> rule list -> unit

(** Remove the plan. Counters of the dismantled plan remain readable
    through {!tally} until the next {!arm}. *)
val disarm : unit -> unit

val armed : unit -> bool

(** Injections actually performed since the last {!arm}, keyed by
    action name ([crash], [stall], [torn], [enospc], [duplicate],
    [short_read], [jump]); absent keys never fired. *)
val tally : unit -> (string * int) list

(** Total injections performed since the last {!arm}. *)
val fired : unit -> int

(** {1 Hooks} — called by the instrumented runtime, not by users. *)

(** May sleep ([Stall]) or raise {!Injected} ([Crash]). No-op when
    disarmed. *)
val on_pool_chunk : slot:int -> chunk:int -> unit

(** The plan for appending one journal record. [`Write] is the normal
    path; [`Torn k] means append [k] bytes then raise {!Injected} (the
    caller performs the partial write and calls {!raise_injected} so
    the tear is really on disk first); [`Enospc] means skip the write;
    [`Dup] means append twice. *)
val on_journal_write :
  string -> [ `Write | `Torn of int | `Enospc | `Dup ]

(** Possibly truncate loaded journal bytes ([Short_read]). *)
val on_journal_read : string -> string

(** Wall-clock reading with accumulated injected skew applied. *)
val on_clock : float -> float

(** Raise the {!Injected} crash recorded for the given site at its most
    recently decided operation — used by the journal writer after it
    has flushed a torn prefix. *)
val raise_injected : site -> unit
