(** Batched packed kernel: K independent instances of one compiled
    protocol stepped in lock-step.

    Campaign layers run millions of independent simulations that differ
    only in seed, corruption, or adversary placement. Per-instance
    {!Kernel} runs pay the per-step fixed costs — active-list walk,
    CSR/tier dispatch per node, carry-over decision — once per instance
    per step. A batch stores the instances as Bigarray planes with the
    instance index innermost (edge [e] of instance [j] at
    [e * capacity + j]) and advances all live instances through one pass
    over the shared CSR incidence per step, sharing the kernel's reaction
    tiers (lookup tables, memo, scratch) read-only across the batch.

    Sharing the lazily-filled tiers is sound because a row is a pure
    function of its packed incoming code: whichever instance faults a row
    in, every instance reads the same values. Results are bit-identical
    to per-instance {!Kernel} runs for every batch size; a batch of 1
    collapses to today's behavior.

    Instances that reach a verdict retire from the live set via a
    compacted index vector — remaining instances keep stepping with no
    per-node branch on liveness. A retired instance's final state moves
    to a per-instance snapshot, which stays readable through
    {!label_code}, {!output} and {!store}.

    A batch carries mutable planes and scratch and is {b not}
    domain-safe: create one batch per domain (see {!Parrun.map_batched}). *)

type ('x, 'l) t

(** [create kern] is an empty batch over [kern]. Planes grow on demand
    (doubling), so one batch can serve blocks of varying size. *)
val create : ('x, 'l) Kernel.t -> ('x, 'l) t

val kernel : ('x, 'l) t -> ('x, 'l) Kernel.t

(** Current plane stride — at least the largest block loaded so far. *)
val capacity : ('x, 'l) t -> int

(** Size of the currently loaded block. *)
val block_size : ('x, 'l) t -> int

(** Number of instances still live (not retired). *)
val live_count : ('x, 'l) t -> int

val is_live : ('x, 'l) t -> j:int -> bool

(** [load_block t configs] loads [Array.length configs] instances into the
    planes; all become live. Any previous block is discarded. *)
val load_block : ('x, 'l) t -> 'l Protocol.config array -> unit

(** [retire t ~j] snapshots instance [j]'s state and removes it from the
    live set. Raises [Invalid_argument] if already retired. *)
val retire : ('x, 'l) t -> j:int -> unit

(** [step t ~active] advances every live instance by one global transition
    with activation set [active] — bit-identical per instance to
    {!Kernel.step_into}. No-op when no instance is live. *)
val step : ('x, 'l) t -> active:int list -> unit

(** [label_code t ~j e] is instance [j]'s packed label on edge [e], from
    the plane if live, the retirement snapshot otherwise. *)
val label_code : ('x, 'l) t -> j:int -> int -> int

(** [output t ~j i] is instance [j]'s output at node [i]. *)
val output : ('x, 'l) t -> j:int -> int -> int

(** [store t ~j] decodes instance [j]'s current (or retirement) state into
    a fresh boxed configuration. *)
val store : ('x, 'l) t -> j:int -> 'l Protocol.config

(** [run_until_stable t ~inits ~schedule ~max_steps] loads [inits] as a
    block and drives every instance to its {!Kernel.run_until_stable}
    verdict in lock-step — same verdicts, rounds, cycle entry points and
    configurations as per-instance runs, for every batch size. *)
val run_until_stable :
  ('x, 'l) t ->
  inits:'l Protocol.config array ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l Engine.outcome array

(** [settle t ~inits ~schedule ~max_steps] is {!Kernel.settle} for every
    instance of the block, replayed in lock-step: same [settle_time],
    [settled_outputs] and [horizon_config] per instance. *)
val settle :
  ('x, 'l) t ->
  inits:'l Protocol.config array ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l Engine.settled option array
