(** Packed simulation kernel: the engine's hot path on flat int buffers.

    {!Engine.step} re-derives each scheduled node's reaction through boxed
    labels — a [List.map] allocating a reaction tuple and an output array per
    active node per step. This module runs the same global transition
    function on the mixed-radix integer codes that {!Protocol.encode_config}
    and the checker's transition cache already use: a configuration is an
    [int array] of per-edge label codes plus an [int array] of outputs, both
    caller-owned, and a step writes one buffer pair into another with no
    allocation on the hot path.

    Per node the kernel picks the cheapest sound evaluation strategy at
    {!create} time:

    - {b direct table} — when [card^in_degree * (out_degree + 1)] fits the
      word budget, the node's reaction is a lazily filled lookup table
      indexed by the packed incoming-label code: a step is pure int loads;
    - {b sparse memo} — when the table would be too large but the packed
      incoming code still fits an [int], rows are memoized in a hashtable
      keyed by incoming code (bounded; protocols revisit few codes);
    - {b raw} — otherwise the reaction function is invoked on a reused
      scratch buffer each time (no table, still no per-step copies).

    All three strategies produce identical results; the differential suite
    in [test_kernel.ml] pins the kernel to {!Engine.step},
    {!Engine.run_until_stable} and {!Engine.settle} on randomized protocols,
    inputs and schedules.

    A kernel instance carries mutable scratch and is {b not} domain-safe:
    create one kernel per domain (see {!Parrun}). *)

type ('x, 'l) t

(** [create p ~input] precomputes the evaluation strategy and tables.
    [max_table_words] (default [2^22]) bounds the total size of all direct
    tables; [max_memo_entries] (default [2^18]) bounds each sparse memo
    (beyond it rows are recomputed instead of cached). Setting either to [0]
    forces the next-cheaper strategy — the differential tests use this to
    exercise every tier. *)
val create :
  ?max_table_words:int ->
  ?max_memo_entries:int ->
  ('x, 'l) Protocol.t ->
  input:'x array ->
  ('x, 'l) t

val num_nodes : ('x, 'l) t -> int
val num_edges : ('x, 'l) t -> int

(** [decode_label t code] is the label with code [code] — a table lookup for
    enumerable label spaces, so scenario probes (e.g. the D-counter's
    agreement predicate) can read packed states without allocating. *)
val decode_label : ('x, 'l) t -> int -> 'l

(** [load t config ~labels ~outputs] encodes [config] into the caller's
    buffers ([labels] of length [num_edges], [outputs] of length
    [num_nodes]). *)
val load :
  ('x, 'l) t -> 'l Protocol.config -> labels:int array -> outputs:int array -> unit

(** [store t ~labels ~outputs] decodes packed buffers back into a fresh
    boxed configuration. *)
val store :
  ('x, 'l) t -> labels:int array -> outputs:int array -> 'l Protocol.config

(** [step_into t ~src ~src_outputs ~dst ~dst_outputs ~active] applies one
    global transition on packed buffers: every node of [active] reacts to
    [src]; all other labels and outputs persist. [dst] must not alias [src].
    Allocation-free for table/memo-resolved nodes. *)
val step_into :
  ('x, 'l) t ->
  src:int array ->
  src_outputs:int array ->
  dst:int array ->
  dst_outputs:int array ->
  active:int list ->
  unit

(** [step t config ~active] is {!Engine.step} through the kernel — a
    convenience for differential testing, not a hot path. *)
val step :
  ('x, 'l) t -> 'l Protocol.config -> active:int list -> 'l Protocol.config

(** [run_into t ~labels ~outputs ~schedule ~steps] advances the packed state
    in place by [steps] steps (double-buffered internally; the final state is
    written back into the caller's buffers). *)
val run_into :
  ('x, 'l) t ->
  labels:int array ->
  outputs:int array ->
  schedule:Schedule.t ->
  steps:int ->
  unit

(** [run t ~init ~schedule ~steps] is {!Engine.run} through the kernel. *)
val run :
  ('x, 'l) t ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  'l Protocol.config

(** [run_until_stable t ~init ~schedule ~max_steps] reproduces
    {!Engine.run_until_stable} exactly (same verdicts, rounds, cycle entry
    points and configurations) on the packed representation. *)
val run_until_stable :
  ('x, 'l) t ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l Engine.outcome

(** [settle t ~init ~schedule ~max_steps] reproduces {!Engine.settle}
    exactly: same [settle_time], [settled_outputs] and [horizon_config].
    The replay that certification needs records only the per-step output
    vectors (in a reused flat buffer), never whole configurations. *)
val settle :
  ('x, 'l) t ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l Engine.settled option

(** {1 Batched planes}

    The primitives behind {!Batch}: K independent instances of the same
    compiled protocol stored as Bigarray planes with the instance index
    innermost — edge [e] of instance [j] lives at [e * stride + j], node
    [i]'s output at [i * stride + j]. One {!step_plane} advances every
    live instance through a single pass over the shared CSR incidence;
    the kernel's reaction tiers (tables, memo, scratch) are shared
    read-only across the batch, which is sound because a row is a
    value-deterministic function of its incoming code alone. *)

type plane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [step_plane t ~stride ~live ~nlive ~src ~src_outputs ~dst ~dst_outputs
    ~codes ~active] applies one global transition to the instance columns
    [live.(0 .. nlive-1)] of the planes. When [active] does not cover all
    nodes the whole source planes are blitted into the destination first
    (retired columns carry stale data; their snapshots in {!Batch} are
    authoritative). [codes] is caller-owned scratch of length >= [nlive].
    Bit-identical per column to {!step_into}. *)
val step_plane :
  ('x, 'l) t ->
  stride:int ->
  live:int array ->
  nlive:int ->
  src:plane ->
  src_outputs:plane ->
  dst:plane ->
  dst_outputs:plane ->
  codes:int array ->
  active:int list ->
  unit

(** [stable_in_plane t ~stride ~j ~src] is whether instance column [j] of
    the label plane [src] is a fixed point of the global transition — the
    plane form of the stability probe inside {!run_until_stable}. *)
val stable_in_plane : ('x, 'l) t -> stride:int -> j:int -> src:plane -> bool

(** [key_in_plane t ~stride ~j ~src] packs instance [j]'s edge labels into
    the same string key {!run_until_stable} deduplicates on — byte-compatible
    with the per-instance path, so cycle detection agrees exactly. *)
val key_in_plane : ('x, 'l) t -> stride:int -> j:int -> src:plane -> string

(** [node_output t ~labels i] is node [i]'s output when reacting to the
    packed labeling [labels] — the settled-outputs refresh for batched
    instances whose horizon state lives in a retirement snapshot. *)
val node_output : ('x, 'l) t -> labels:int array -> i:int -> int

(** [eval_row t ~src ~i] evaluates node [i]'s reaction against the packed
    edge labeling [src] through whichever tier [i] was compiled to, returning
    [(row, base)]: the code of [i]'s [k]-th out-edge (in
    [Digraph.out_edges] order) is [row.(base + k)] and the output is
    [row.(base + out_degree i)]. The row is kernel-owned (a lookup table,
    memo store, or shared scratch): it is valid only until the next call into
    the kernel and must not be mutated. This is the single-node entry point
    the event-driven simulator ({!Eventsim}) reacts through, so an
    asynchronous activation costs exactly what a kernel step charges per
    node. *)
val eval_row : ('x, 'l) t -> src:int array -> i:int -> int array * int
