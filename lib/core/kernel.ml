module Digraph = Stateless_graph.Digraph

(* Evaluation strategies, decided per node at [create] time. *)
let mode_table = 0
let mode_memo = 1
let mode_raw = 2

let default_max_table_words = 1 lsl 22
let default_max_memo_entries = 1 lsl 18
let max_decode_table = 1 lsl 16

(* Per-node sparse reaction memo: open-addressing (linear probing,
   power-of-two capacity) from the packed incoming code to a row index in
   an append-only flat row store. A hit is two array reads — no polymorphic
   hashing, no bucket chasing, no allocation. *)
type memo = {
  mutable keys : int array; (* incoming codes; -1 = empty slot *)
  mutable slot : int array; (* row index, parallel to [keys] *)
  mutable rows : int array; (* [nrows * width] ints used *)
  mutable nrows : int;
}

let memo_hash code =
  let h = code * 0x9E3779B1 in
  h lxor (h lsr 17)

(* Returns the slot holding [code], or [lnot insertion_slot] on miss. *)
let rec memo_probe keys mask code j =
  let k = Array.unsafe_get keys j in
  if k = code then j
  else if k < 0 then lnot j
  else memo_probe keys mask code ((j + 1) land mask)

let memo_grow mm =
  let old_keys = mm.keys and old_slot = mm.slot in
  let cap = 2 * Array.length old_keys in
  let keys = Array.make cap (-1) and slot = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun j k ->
      if k >= 0 then begin
        let pos = lnot (memo_probe keys mask k (memo_hash k land mask)) in
        keys.(pos) <- k;
        slot.(pos) <- old_slot.(j)
      end)
    old_keys;
  mm.keys <- keys;
  mm.slot <- slot

(* Reserve the row for [code] and return its base offset (caller fills). *)
let memo_add mm width code =
  if 2 * (mm.nrows + 1) > Array.length mm.keys then memo_grow mm;
  let mask = Array.length mm.keys - 1 in
  let pos = lnot (memo_probe mm.keys mask code (memo_hash code land mask)) in
  mm.keys.(pos) <- code;
  mm.slot.(pos) <- mm.nrows;
  let need = (mm.nrows + 1) * width in
  if Array.length mm.rows < need then begin
    let bigger = Array.make (max need (2 * Array.length mm.rows)) 0 in
    Array.blit mm.rows 0 bigger 0 (mm.nrows * width);
    mm.rows <- bigger
  end;
  let base = mm.nrows * width in
  mm.nrows <- mm.nrows + 1;
  base

let empty_memo () = { keys = [||]; slot = [||]; rows = [||]; nrows = 0 }

let fresh_memo width =
  {
    keys = Array.make 64 (-1);
    slot = Array.make 64 0;
    rows = Array.make (16 * width) 0;
    nrows = 0;
  }

type ('x, 'l) t = {
  p : ('x, 'l) Protocol.t;
  input : 'x array;
  n : int;
  m : int;
  card : int;
  (* CSR edge incidence: node [i]'s in-edge ids are
     [in_flat.(in_off.(i)) .. in_flat.(in_off.(i+1) - 1)]; same for out. *)
  in_off : int array;
  in_flat : int array;
  out_off : int array;
  out_flat : int array;
  mode : int array;
  (* mode_table: [rows * (out_degree + 1)] ints per node — out-edge codes
     then the output — with a per-row fill flag; rows are computed on first
     visit, so sparse trajectories never pay for the full table. *)
  tables : int array array;
  filled : Bytes.t array;
  memo : memo array; (* mode_memo, bounded by [max_memo_entries] *)
  max_memo_entries : int;
  (* Reused row for mode_raw and for memo overflow. *)
  scratch_row : int array array;
  in_scratch : 'l array array;
  dec_tbl : 'l array; (* [||] when the space is too large to tabulate *)
  bytes_per_label : int;
  key_buf : Bytes.t;
  mutable spare_labels : int array;
  mutable spare_outputs : int array;
  mutable hist : int array; (* outputs history scratch for [settle] *)
  (* Full-coverage active-set detection (see [covers_all]). *)
  seen_stamp : int array;
  mutable stamp : int;
  mutable full_active : int list;
}

let num_nodes t = t.n
let num_edges t = t.m

let decode_label t code =
  if Array.length t.dec_tbl > 0 then t.dec_tbl.(code)
  else t.p.Protocol.space.Label.decode code

let csr_of n degree edges_of =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + degree i
  done;
  let flat = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    let es = edges_of i in
    Array.iteri (fun k e -> flat.(off.(i) + k) <- e) es
  done;
  (off, flat)

let create ?(max_table_words = default_max_table_words)
    ?(max_memo_entries = default_max_memo_entries) p ~input =
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  if Array.length input <> n then
    invalid_arg "Kernel.create: input length must match node count";
  let card = p.Protocol.space.Label.card in
  let g = p.Protocol.graph in
  let in_off, in_flat =
    csr_of n (fun i -> Digraph.in_degree g i) (fun i -> Digraph.in_edges g i)
  in
  let out_off, out_flat =
    csr_of n (fun i -> Digraph.out_degree g i) (fun i -> Digraph.out_edges g i)
  in
  let dec_tbl =
    if card <= max_decode_table then
      Array.init card p.Protocol.space.Label.decode
    else [||]
  in
  let mode = Array.make n mode_raw in
  let tables = Array.make n [||] in
  let filled = Array.make n Bytes.empty in
  let memo = Array.init n (fun _ -> empty_memo ()) in
  let scratch_row = Array.make n [||] in
  let in_scratch = Array.make n [||] in
  let budget = ref max_table_words in
  for i = 0 to n - 1 do
    let din = in_off.(i + 1) - in_off.(i) in
    let width = out_off.(i + 1) - out_off.(i) + 1 in
    scratch_row.(i) <- Array.make width 0;
    in_scratch.(i) <-
      (if din = 0 then [||]
       else Array.make din (p.Protocol.space.Label.decode 0));
    (* rows = card^din, [None] on int overflow. *)
    let rows =
      let rec go acc k =
        if k = 0 then Some acc
        else if acc > max_int / card then None
        else go (acc * card) (k - 1)
      in
      go 1 din
    in
    match rows with
    | Some rows when rows <= !budget / width ->
        mode.(i) <- mode_table;
        tables.(i) <- Array.make (rows * width) 0;
        filled.(i) <- Bytes.make rows '\000';
        budget := !budget - (rows * width)
    | Some _ when max_memo_entries > 0 ->
        mode.(i) <- mode_memo;
        memo.(i) <- fresh_memo width
    | _ -> mode.(i) <- mode_raw
  done;
  let bytes_per_label =
    if card <= 0x100 then 1 else if card <= 0x10000 then 2 else 4
  in
  {
    p;
    input;
    n;
    m;
    card;
    in_off;
    in_flat;
    out_off;
    out_flat;
    mode;
    tables;
    filled;
    memo;
    max_memo_entries;
    scratch_row;
    in_scratch;
    dec_tbl;
    bytes_per_label;
    key_buf = Bytes.create (m * bytes_per_label);
    spare_labels = Array.make m 0;
    spare_outputs = Array.make n 0;
    hist = [||];
    seen_stamp = Array.make (max n 1) 0;
    stamp = 0;
    full_active = [ -1 ];
  }

(* Decode the incoming codes of node [i] from [src] into its reused label
   scratch, run the reaction once, and encode the results into [row] at
   [off] (out-edge codes, then the output). *)
let fill_row t i src row off =
  let lo = t.in_off.(i) and hi = t.in_off.(i + 1) in
  let inc = t.in_scratch.(i) in
  for k = lo to hi - 1 do
    inc.(k - lo) <- decode_label t (Array.unsafe_get src t.in_flat.(k))
  done;
  let out, y = t.p.Protocol.react i t.input.(i) inc in
  let d = t.out_off.(i + 1) - t.out_off.(i) in
  if Array.length out <> d then
    invalid_arg "Kernel: reaction arity does not match out-degree";
  let encode = t.p.Protocol.space.Label.encode in
  for k = 0 to d - 1 do
    row.(off + k) <- encode out.(k)
  done;
  row.(off + d) <- y

(* [fill_row] driven by the packed incoming code alone: the per-edge
   digits are recovered by reverse divmod (the code packs them
   most-significant first, exactly as [in_code] builds it), decoded into
   the same scratch and fed to the same reaction — bit-identical rows, no
   source buffer. Used by the batched planes, where gathering a column
   into a temporary int array would defeat the layout. *)
let fill_row_coded t i code row off =
  let din = t.in_off.(i + 1) - t.in_off.(i) in
  let inc = t.in_scratch.(i) in
  let card = t.card in
  let c = ref code in
  for k = din - 1 downto 0 do
    inc.(k) <- decode_label t (!c mod card);
    c := !c / card
  done;
  let out, y = t.p.Protocol.react i t.input.(i) inc in
  let d = t.out_off.(i + 1) - t.out_off.(i) in
  if Array.length out <> d then
    invalid_arg "Kernel: reaction arity does not match out-degree";
  let encode = t.p.Protocol.space.Label.encode in
  for k = 0 to d - 1 do
    row.(off + k) <- encode out.(k)
  done;
  row.(off + d) <- y

let in_code t i src =
  let flat = t.in_flat in
  let card = t.card in
  let c = ref 0 in
  for k = Array.unsafe_get t.in_off i to Array.unsafe_get t.in_off (i + 1) - 1
  do
    c := (!c * card) + Array.unsafe_get src (Array.unsafe_get flat k)
  done;
  !c

(* [eval t src i] is node [i]'s reaction to [src] as [(row, base)]: the
   out-edge codes live at [row.(base) .. row.(base + dout - 1)] and the
   output at [row.(base + dout)]. The row may be shared scratch — consume
   it before the next [eval]. Used on the cold paths (stability check,
   settle refresh); the step loop inlines the same logic. *)
let eval t src i =
  let d = t.out_off.(i + 1) - t.out_off.(i) in
  let mode = Array.unsafe_get t.mode i in
  if mode = mode_table then begin
    let code = in_code t i src in
    let base = code * (d + 1) in
    let tbl = t.tables.(i) in
    if Bytes.unsafe_get t.filled.(i) code = '\000' then begin
      fill_row t i src tbl base;
      Bytes.unsafe_set t.filled.(i) code '\001'
    end;
    (tbl, base)
  end
  else if mode = mode_memo then begin
    let code = in_code t i src in
    let mm = t.memo.(i) in
    let mask = Array.length mm.keys - 1 in
    let pos = memo_probe mm.keys mask code (memo_hash code land mask) in
    if pos >= 0 then (mm.rows, mm.slot.(pos) * (d + 1))
    else if mm.nrows < t.max_memo_entries then begin
      let base = memo_add mm (d + 1) code in
      fill_row t i src mm.rows base;
      (mm.rows, base)
    end
    else begin
      let row = t.scratch_row.(i) in
      fill_row t i src row 0;
      (row, 0)
    end
  end
  else begin
    let row = t.scratch_row.(i) in
    fill_row t i src row 0;
    (row, 0)
  end

let eval_row t ~src ~i = eval t src i

(* [eval] when the caller already holds the packed incoming code (the
   batched planes gather codes straight out of their label planes). Rows
   filled here are bit-identical to [fill_row]'s, so a kernel shared
   between per-instance and batched stepping stays coherent. *)
let eval_coded t i code =
  let d = t.out_off.(i + 1) - t.out_off.(i) in
  let mode = Array.unsafe_get t.mode i in
  if mode = mode_table then begin
    let base = code * (d + 1) in
    let tbl = t.tables.(i) in
    if Bytes.unsafe_get t.filled.(i) code = '\000' then begin
      fill_row_coded t i code tbl base;
      Bytes.unsafe_set t.filled.(i) code '\001'
    end;
    (tbl, base)
  end
  else if mode = mode_memo then begin
    let mm = t.memo.(i) in
    let mask = Array.length mm.keys - 1 in
    let pos = memo_probe mm.keys mask code (memo_hash code land mask) in
    if pos >= 0 then (mm.rows, mm.slot.(pos) * (d + 1))
    else if mm.nrows < t.max_memo_entries then begin
      let base = memo_add mm (d + 1) code in
      fill_row_coded t i code mm.rows base;
      (mm.rows, base)
    end
    else begin
      let row = t.scratch_row.(i) in
      fill_row_coded t i code row 0;
      (row, 0)
    end
  end
  else begin
    let row = t.scratch_row.(i) in
    fill_row_coded t i code row 0;
    (row, 0)
  end

(* The hot loop: [eval] inlined per tier so that a warm step allocates
   nothing — no [(row, base)] pair, no hashing of boxed keys, no closure
   over the active list. *)
let rec apply_active t src dst dst_outputs active =
  match active with
  | [] -> ()
  | i :: rest ->
      let olo = Array.unsafe_get t.out_off i in
      let d = Array.unsafe_get t.out_off (i + 1) - olo in
      let oflat = t.out_flat in
      (if Array.unsafe_get t.mode i = mode_table then begin
         let code = in_code t i src in
         let base = code * (d + 1) in
         let tbl = Array.unsafe_get t.tables i in
         let flags = Array.unsafe_get t.filled i in
         if Bytes.unsafe_get flags code = '\000' then begin
           fill_row t i src tbl base;
           Bytes.unsafe_set flags code '\001'
         end;
         for k = 0 to d - 1 do
           Array.unsafe_set dst
             (Array.unsafe_get oflat (olo + k))
             (Array.unsafe_get tbl (base + k))
         done;
         Array.unsafe_set dst_outputs i (Array.unsafe_get tbl (base + d))
       end
       else if Array.unsafe_get t.mode i = mode_memo then begin
         let code = in_code t i src in
         let mm = Array.unsafe_get t.memo i in
         let keys = mm.keys in
         let mask = Array.length keys - 1 in
         let pos = memo_probe keys mask code (memo_hash code land mask) in
         let rows, base =
           if pos >= 0 then (mm.rows, Array.unsafe_get mm.slot pos * (d + 1))
           else if mm.nrows < t.max_memo_entries then begin
             let base = memo_add mm (d + 1) code in
             fill_row t i src mm.rows base;
             (mm.rows, base)
           end
           else begin
             let row = Array.unsafe_get t.scratch_row i in
             fill_row t i src row 0;
             (row, 0)
           end
         in
         for k = 0 to d - 1 do
           Array.unsafe_set dst
             (Array.unsafe_get oflat (olo + k))
             (Array.unsafe_get rows (base + k))
         done;
         Array.unsafe_set dst_outputs i (Array.unsafe_get rows (base + d))
       end
       else begin
         let row = Array.unsafe_get t.scratch_row i in
         fill_row t i src row 0;
         for k = 0 to d - 1 do
           Array.unsafe_set dst
             (Array.unsafe_get oflat (olo + k))
             (Array.unsafe_get row k)
         done;
         Array.unsafe_set dst_outputs i (Array.unsafe_get row d)
       end);
      apply_active t src dst dst_outputs rest

(* When the active set covers every node, every edge (each edge is some
   node's out-edge) and every output slot is rewritten by [apply_active],
   so the carry-over blits are dead work. The check stamps each listed node
   once; the winning list is memoized by physical identity, which makes the
   test a single pointer compare for schedules that reuse one list (e.g.
   {!Schedule.synchronous}). *)
let covers_all t active =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let seen = t.seen_stamp in
  let rec go cnt = function
    | [] -> cnt = t.n
    | i :: rest ->
        if Array.unsafe_get seen i = stamp then go cnt rest
        else begin
          Array.unsafe_set seen i stamp;
          go (cnt + 1) rest
        end
  in
  go 0 active

let step_into t ~src ~src_outputs ~dst ~dst_outputs ~active =
  (if active == t.full_active then ()
   else if covers_all t active then t.full_active <- active
   else begin
     Array.blit src 0 dst 0 t.m;
     Array.blit src_outputs 0 dst_outputs 0 t.n
   end);
  apply_active t src dst dst_outputs active

let load t config ~labels ~outputs =
  if Array.length labels <> t.m || Array.length outputs <> t.n then
    invalid_arg "Kernel.load: buffer sizes must match the protocol";
  let encode = t.p.Protocol.space.Label.encode in
  for e = 0 to t.m - 1 do
    labels.(e) <- encode config.Protocol.labels.(e)
  done;
  Array.blit config.Protocol.outputs 0 outputs 0 t.n

let store t ~labels ~outputs =
  {
    Protocol.labels = Array.init t.m (fun e -> decode_label t labels.(e));
    outputs = Array.copy outputs;
  }

let step t config ~active =
  let labels = Array.make t.m 0 and outputs = Array.make t.n 0 in
  let dst = Array.make t.m 0 and dst_outputs = Array.make t.n 0 in
  load t config ~labels ~outputs;
  step_into t ~src:labels ~src_outputs:outputs ~dst ~dst_outputs ~active;
  store t ~labels:dst ~outputs:dst_outputs

let run_into t ~labels ~outputs ~schedule ~steps =
  if steps > 0 then begin
    let active = schedule.Schedule.active in
    let cur = ref labels and curo = ref outputs in
    let nxt = ref t.spare_labels and nxto = ref t.spare_outputs in
    for s = 0 to steps - 1 do
      step_into t ~src:!cur ~src_outputs:!curo ~dst:!nxt ~dst_outputs:!nxto
        ~active:(active s);
      let tl = !cur and to_ = !curo in
      cur := !nxt;
      curo := !nxto;
      nxt := tl;
      nxto := to_
    done;
    if !cur != labels then begin
      Array.blit !cur 0 labels 0 t.m;
      Array.blit !curo 0 outputs 0 t.n
    end
  end

let run t ~init ~schedule ~steps =
  let labels = Array.make t.m 0 and outputs = Array.make t.n 0 in
  load t init ~labels ~outputs;
  run_into t ~labels ~outputs ~schedule ~steps;
  store t ~labels ~outputs

(* Same stability predicate as {!Protocol.is_stable}, read off the packed
   state: every node's reaction must rewrite its out-edges unchanged. *)
let is_stable_packed t src =
  let rec check i =
    if i >= t.n then true
    else begin
      let row, base = eval t src i in
      let olo = t.out_off.(i) in
      let d = t.out_off.(i + 1) - olo in
      let rec same k =
        k >= d
        || (row.(base + k) = Array.unsafe_get src t.out_flat.(olo + k)
            && same (k + 1))
      in
      if same 0 then check (i + 1) else false
    end
  in
  check 0

(* Same packing as {!Protocol.config_key}: the labeling alone, little-endian
   per label. The Bytes buffer is reused; only the final string allocates. *)
let key_of t labels =
  let bpl = t.bytes_per_label in
  let buf = t.key_buf in
  for e = 0 to t.m - 1 do
    let v = ref (Array.unsafe_get labels e) in
    for k = 0 to bpl - 1 do
      Bytes.unsafe_set buf ((e * bpl) + k) (Char.unsafe_chr (!v land 0xff));
      v := !v lsr 8
    done
  done;
  Bytes.to_string buf

exception Cycle_found of int * int
exception Quiescent of int

let run_until_stable t ~init ~schedule ~max_steps =
  let cur = ref (Array.make t.m 0) and curo = ref (Array.make t.n 0) in
  let nxt = ref (Array.make t.m 0) and nxto = ref (Array.make t.n 0) in
  load t init ~labels:!cur ~outputs:!curo;
  let period_opt = schedule.Schedule.period in
  let seen = Hashtbl.create 256 in
  let rec loop s key last_change =
    if is_stable_packed t !cur then
      Engine.Stabilized
        { rounds = s; config = store t ~labels:!cur ~outputs:!curo }
    else if s >= max_steps then
      Engine.Exhausted (store t ~labels:!cur ~outputs:!curo)
    else begin
      (match period_opt with
      | Some period when s mod period = 0 -> (
          match Hashtbl.find_opt seen key with
          | Some t0 ->
              if last_change > t0 then raise (Cycle_found (t0, s - t0))
              else raise (Quiescent last_change)
          | None -> Hashtbl.replace seen key s)
      | _ -> ());
      step_into t ~src:!cur ~src_outputs:!curo ~dst:!nxt ~dst_outputs:!nxto
        ~active:(schedule.Schedule.active s);
      let tl = !cur and to_ = !curo in
      cur := !nxt;
      curo := !nxto;
      nxt := tl;
      nxto := to_;
      let next_key = key_of t !cur in
      let last_change =
        if String.equal next_key key then last_change else s + 1
      in
      loop (s + 1) next_key last_change
    end
  in
  match loop 0 (key_of t !cur) 0 with
  | result -> result
  | exception Cycle_found (entered, period) ->
      Engine.Oscillating { entered; period }
  | exception Quiescent since ->
      Engine.Stabilized
        { rounds = since; config = run t ~init ~schedule ~steps:since }

let settle t ~init ~schedule ~max_steps =
  match run_until_stable t ~init ~schedule ~max_steps with
  | Engine.Exhausted _ -> None
  | outcome -> (
      let horizon, cycle_entry =
        match outcome with
        | Engine.Stabilized { rounds; _ } ->
            let slack = max 1 t.n
            and slack_period =
              match schedule.Schedule.period with Some q -> q | None -> 1
            in
            (rounds + (slack * slack_period), None)
        | Engine.Oscillating { entered; period } ->
            (entered + (2 * period), Some entered)
        | Engine.Exhausted _ -> assert false
      in
      (* Replay once, keeping only the horizon state and the per-step output
         vectors — row [s] of [hist] is the output vector after [s] steps. *)
      let need = (horizon + 1) * t.n in
      if Array.length t.hist < need then t.hist <- Array.make need 0;
      let hist = t.hist in
      let cur = ref (Array.make t.m 0) and curo = ref (Array.make t.n 0) in
      let nxt = ref (Array.make t.m 0) and nxto = ref (Array.make t.n 0) in
      load t init ~labels:!cur ~outputs:!curo;
      Array.blit !curo 0 hist 0 t.n;
      for s = 0 to horizon - 1 do
        step_into t ~src:!cur ~src_outputs:!curo ~dst:!nxt ~dst_outputs:!nxto
          ~active:(schedule.Schedule.active s);
        let tl = !cur and to_ = !curo in
        cur := !nxt;
        curo := !nxto;
        nxt := tl;
        nxto := to_;
        Array.blit !curo 0 hist ((s + 1) * t.n) t.n
      done;
      let rows_equal r1 r2 =
        let rec go j =
          j >= t.n
          || (hist.((r1 * t.n) + j) = hist.((r2 * t.n) + j) && go (j + 1))
        in
        go 0
      in
      let settled_outputs =
        match cycle_entry with
        | None ->
            (* Labels are stable at the horizon; refresh so every node has
               reported. *)
            Some
              (Array.init t.n (fun i ->
                   let row, base = eval t !cur i in
                   row.(base + t.out_off.(i + 1) - t.out_off.(i))))
        | Some entered ->
            let reference = entered + 1 in
            let constant = ref true in
            for s = entered + 2 to horizon do
              if not (rows_equal s reference) then constant := false
            done;
            if !constant then Some (Array.sub hist (reference * t.n) t.n)
            else None
      in
      match settled_outputs with
      | None -> None
      | Some settled_outputs ->
          let rec first_bad s best =
            if s < 0 then best
            else if rows_equal s horizon then first_bad (s - 1) s
            else best
          in
          let settle_time = first_bad horizon horizon in
          Some
            {
              Engine.settle_time;
              settled_outputs;
              horizon_config = store t ~labels:!cur ~outputs:!curo;
            })

(* ------------------------------------------------------------------ *)
(* Batched planes (the primitives behind {!Batch})                     *)
(* ------------------------------------------------------------------ *)

type plane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The batched twin of [apply_active]: one pass per active node, instance
   columns innermost. Codes are gathered edge-by-edge so every inner loop
   reads one edge's instance row contiguously; the reaction tiers are the
   kernel's own, shared read-only across the batch — a row is a
   value-deterministic function of its incoming code, so the order in
   which instances fault rows in cannot change any result. The per-node
   fixed costs (CSR lookups, tier dispatch, the active-list walk and the
   carry-over decision) are paid once per node per lock-step sweep instead
   of once per instance. *)
let step_plane t ~stride ~live ~nlive ~src ~src_outputs ~dst ~dst_outputs
    ~codes ~active =
  (if active == t.full_active then ()
   else if covers_all t active then t.full_active <- active
   else begin
     (* Whole-plane carry-over: retired columns ride along as stale data
        (their snapshots are authoritative), which keeps the copy one
        straight memcpy. *)
     Bigarray.Array1.blit src dst;
     Bigarray.Array1.blit src_outputs dst_outputs
   end);
  let card = t.card in
  (* Dense fast path: until an instance retires, [live] is the identity
     map, so the column index IS the loop index — no [live] indirection,
     gathers and scatters walk each edge row sequentially, and the table
     tier can rebase [codes] to row offsets once and scatter edge-outer
     (fully sequential plane writes). Checked once per sweep; O(nlive)
     against the per-node work it guards. *)
  let dense =
    let rec ident p = p >= nlive || (Array.unsafe_get live p = p && ident (p + 1)) in
    ident 0
  in
  let rec go = function
    | [] -> ()
    | i :: rest ->
        let ilo = Array.unsafe_get t.in_off i in
        let ihi = Array.unsafe_get t.in_off (i + 1) in
        (if ilo = ihi then Array.fill codes 0 nlive 0
         else if dense then begin
           let base0 = Array.unsafe_get t.in_flat ilo * stride in
           for p = 0 to nlive - 1 do
             Array.unsafe_set codes p
               (Bigarray.Array1.unsafe_get src (base0 + p))
           done;
           for k = ilo + 1 to ihi - 1 do
             let base = Array.unsafe_get t.in_flat k * stride in
             for p = 0 to nlive - 1 do
               Array.unsafe_set codes p
                 ((Array.unsafe_get codes p * card)
                 + Bigarray.Array1.unsafe_get src (base + p))
             done
           done
         end
         else begin
           let base0 = Array.unsafe_get t.in_flat ilo * stride in
           for p = 0 to nlive - 1 do
             Array.unsafe_set codes p
               (Bigarray.Array1.unsafe_get src
                  (base0 + Array.unsafe_get live p))
           done;
           for k = ilo + 1 to ihi - 1 do
             let base = Array.unsafe_get t.in_flat k * stride in
             for p = 0 to nlive - 1 do
               Array.unsafe_set codes p
                 ((Array.unsafe_get codes p * card)
                 + Bigarray.Array1.unsafe_get src
                     (base + Array.unsafe_get live p))
             done
           done
         end);
        let olo = Array.unsafe_get t.out_off i in
        let d = Array.unsafe_get t.out_off (i + 1) - olo in
        let oflat = t.out_flat in
        let obase = i * stride in
        (if Array.unsafe_get t.mode i = mode_table then begin
           let tbl = Array.unsafe_get t.tables i in
           let flags = Array.unsafe_get t.filled i in
           if dense then begin
             (* Pass 1: fault rows in and rebase codes to row offsets;
                pass 2: scatter edge-outer so every plane write is
                sequential in the instance index. *)
             let d1 = d + 1 in
             for p = 0 to nlive - 1 do
               let code = Array.unsafe_get codes p in
               if Bytes.unsafe_get flags code = '\000' then begin
                 fill_row_coded t i code tbl (code * d1);
                 Bytes.unsafe_set flags code '\001'
               end;
               Array.unsafe_set codes p (code * d1)
             done;
             for k = 0 to d - 1 do
               let dbase = Array.unsafe_get oflat (olo + k) * stride in
               for p = 0 to nlive - 1 do
                 Bigarray.Array1.unsafe_set dst (dbase + p)
                   (Array.unsafe_get tbl (Array.unsafe_get codes p + k))
               done
             done;
             for p = 0 to nlive - 1 do
               Bigarray.Array1.unsafe_set dst_outputs (obase + p)
                 (Array.unsafe_get tbl (Array.unsafe_get codes p + d))
             done
           end
           else
             for p = 0 to nlive - 1 do
               let code = Array.unsafe_get codes p in
               let base = code * (d + 1) in
               if Bytes.unsafe_get flags code = '\000' then begin
                 fill_row_coded t i code tbl base;
                 Bytes.unsafe_set flags code '\001'
               end;
               let j = Array.unsafe_get live p in
               for k = 0 to d - 1 do
                 Bigarray.Array1.unsafe_set dst
                   ((Array.unsafe_get oflat (olo + k) * stride) + j)
                   (Array.unsafe_get tbl (base + k))
               done;
               Bigarray.Array1.unsafe_set dst_outputs (obase + j)
                 (Array.unsafe_get tbl (base + d))
             done
         end
         else if Array.unsafe_get t.mode i = mode_memo then begin
           let mm = Array.unsafe_get t.memo i in
           for p = 0 to nlive - 1 do
             let code = Array.unsafe_get codes p in
             (* Re-read [mm.keys] per instance: a miss below can grow the
                memo mid-sweep. *)
             let keys = mm.keys in
             let mask = Array.length keys - 1 in
             let pos = memo_probe keys mask code (memo_hash code land mask) in
             let rows, base =
               if pos >= 0 then
                 (mm.rows, Array.unsafe_get mm.slot pos * (d + 1))
               else if mm.nrows < t.max_memo_entries then begin
                 let base = memo_add mm (d + 1) code in
                 fill_row_coded t i code mm.rows base;
                 (mm.rows, base)
               end
               else begin
                 let row = Array.unsafe_get t.scratch_row i in
                 fill_row_coded t i code row 0;
                 (row, 0)
               end
             in
             let j = if dense then p else Array.unsafe_get live p in
             for k = 0 to d - 1 do
               Bigarray.Array1.unsafe_set dst
                 ((Array.unsafe_get oflat (olo + k) * stride) + j)
                 (Array.unsafe_get rows (base + k))
             done;
             Bigarray.Array1.unsafe_set dst_outputs (obase + j)
               (Array.unsafe_get rows (base + d))
           done
         end
         else begin
           let row = Array.unsafe_get t.scratch_row i in
           for p = 0 to nlive - 1 do
             fill_row_coded t i (Array.unsafe_get codes p) row 0;
             let j = if dense then p else Array.unsafe_get live p in
             for k = 0 to d - 1 do
               Bigarray.Array1.unsafe_set dst
                 ((Array.unsafe_get oflat (olo + k) * stride) + j)
                 (Array.unsafe_get row k)
             done;
             Bigarray.Array1.unsafe_set dst_outputs (obase + j)
               (Array.unsafe_get row d)
           done
         end);
        go rest
  in
  go active

(* [in_code] read off one plane column. *)
let in_code_in_plane t ~stride ~j ~src i =
  let card = t.card in
  let c = ref 0 in
  for k = Array.unsafe_get t.in_off i to Array.unsafe_get t.in_off (i + 1) - 1
  do
    c :=
      (!c * card)
      + Bigarray.Array1.unsafe_get src
          ((Array.unsafe_get t.in_flat k * stride) + j)
  done;
  !c

(* [is_stable_packed] for one plane column. *)
let stable_in_plane t ~stride ~j ~src =
  let rec check i =
    if i >= t.n then true
    else begin
      let row, base = eval_coded t i (in_code_in_plane t ~stride ~j ~src i) in
      let olo = t.out_off.(i) in
      let d = t.out_off.(i + 1) - olo in
      let rec same k =
        k >= d
        || (row.(base + k)
            = Bigarray.Array1.unsafe_get src
                ((Array.unsafe_get t.out_flat (olo + k) * stride) + j)
           && same (k + 1))
      in
      if same 0 then check (i + 1) else false
    end
  in
  check 0

(* [key_of] for one plane column — same byte packing, same reused buffer. *)
let key_in_plane t ~stride ~j ~src =
  let bpl = t.bytes_per_label in
  let buf = t.key_buf in
  for e = 0 to t.m - 1 do
    let v =
      ref (Bigarray.Array1.unsafe_get src ((e * stride) + j))
    in
    for k = 0 to bpl - 1 do
      Bytes.unsafe_set buf ((e * bpl) + k) (Char.unsafe_chr (!v land 0xff));
      v := !v lsr 8
    done
  done;
  Bytes.to_string buf

(* Node [i]'s output when reacting to the packed labeling [labels] — the
   settle refresh for batched instances whose horizon state lives in a
   retirement snapshot. *)
let node_output t ~labels ~i =
  let row, base = eval t labels i in
  row.(base + t.out_off.(i + 1) - t.out_off.(i))
