let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match status with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let host ~domains () =
  Printf.sprintf
    "{ \"ocaml\": %S, \"recommended_domains\": %d, \"domains\": %d, \
     \"git_rev\": %S }"
    Sys.ocaml_version
    (Domain.recommended_domain_count ())
    domains (git_rev ())

(* Peak resident set from /proc/self/status (Linux); -1 when unreadable.
   VmHWM is monotone over the process lifetime, so benchmark legs that
   report it must run their instances in ascending size order. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
            close_in ic;
            let rest = String.sub line 6 (String.length line - 6) in
            Scanf.sscanf rest " %d" (fun kb -> kb)
          end
          else scan ()
      | exception End_of_file ->
          close_in ic;
          -1
    in
    scan ()
  with _ -> -1

(* Bump when the envelope shape changes incompatibly. 2 = added
   schema_version itself and the optional cells accounting block. *)
let schema_version = 2

let write ~benchmark ?host ?batch ?cells ?(certification = []) oc body =
  Printf.fprintf oc "{\n  \"benchmark\": %S,\n" benchmark;
  Printf.fprintf oc "  \"schema_version\": %d,\n" schema_version;
  (match host with
  | Some h -> Printf.fprintf oc "  \"host\": %s,\n" h
  | None -> ());
  (match batch with
  | Some (k, identical) ->
      Printf.fprintf oc "  \"batch\": { \"k\": %d, \"identical\": %b },\n" k
        identical
  | None -> ());
  (match cells with
  | Some (ok, timeout, error) ->
      Printf.fprintf oc
        "  \"cells\": { \"ok\": %d, \"timeout\": %d, \"error\": %d },\n" ok
        timeout error
  | None -> ());
  if certification <> [] then begin
    Printf.fprintf oc "  \"certification\": [\n";
    List.iteri
      (fun i row ->
        Printf.fprintf oc "    %s%s\n" row
          (if i = List.length certification - 1 then "" else ","))
      certification;
    Printf.fprintf oc "  ],\n"
  end;
  body oc;
  Printf.fprintf oc "}\n"

(* Write-then-rename so readers (and a crash mid-write) never observe a
   truncated file: the visible path either holds the previous complete
   contents or the new complete contents. Same-directory rename is
   atomic on POSIX. *)
let to_file path emit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try emit oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  close_out oc;
  Sys.rename tmp path
