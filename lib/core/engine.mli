(** Executing stateless protocols under a schedule (Section 2.1-2.2).

    The engine is the paper's global transition function
    [δ : Σ^E × X^n × 2^[n] → Σ^E × Y^n]: at each step the scheduled nodes
    atomically apply their reaction functions to the {e previous}
    configuration. It detects label stabilization (fixed point of every
    reaction function), output stabilization, and — for periodic schedules —
    exact oscillation, by recording one configuration per schedule period. *)

type 'l outcome =
  | Stabilized of { rounds : int; config : 'l Protocol.config }
      (** The labeling reached a stable labeling after [rounds] steps. *)
  | Oscillating of { entered : int; period : int }
      (** The run is eventually periodic with the given period (in steps)
          and the labeling changes within the cycle: the protocol does not
          label-stabilize on this run. Only reported for periodic
          schedules. *)
  | Exhausted of 'l Protocol.config
      (** [max_steps] elapsed without a verdict. *)

(** [step p ~input config ~active] applies one global transition: every node
    of [active] reacts to [config]; all other labels and outputs persist.
    Functional — [config] is not mutated. *)
val step :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  'l Protocol.config ->
  active:int list ->
  'l Protocol.config

(** [step_into p ~input config ~active ~into] is {!step} writing the
    successor configuration into [into]'s arrays instead of allocating a
    fresh configuration — the hot-loop path for simulators and checkers.
    Reactions are still computed against [config], so [into] must not share
    arrays with [config]; [config] is not mutated. *)
val step_into :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  'l Protocol.config ->
  active:int list ->
  into:'l Protocol.config ->
  unit

(** [run p ~input ~init ~schedule ~steps] iterates {!step} for exactly
    [steps] steps and returns the final configuration. *)
val run :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  'l Protocol.config

(** [trace p ~input ~init ~schedule ~steps] is the list of configurations
    [c_0 = init, c_1, ..., c_steps]. *)
val trace :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  steps:int ->
  'l Protocol.config list

(** [run_until_stable p ~input ~init ~schedule ~max_steps] runs until the
    labeling is stable, an oscillation is proven (periodic schedules only),
    or [max_steps] elapses. Stability is checked against {e all} reaction
    functions, not only the scheduled ones, matching the paper's definition
    of a stable labeling. *)
val run_until_stable :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l outcome

(** [refreshed_outputs p ~input config] is every node's output were it
    activated on [config] — the settled outputs when [config] is a stable
    labeling. *)
val refreshed_outputs :
  ('x, 'l) Protocol.t -> input:'x array -> 'l Protocol.config -> int array

(** Everything one certified run yields, computed in a single traversal. *)
type 'l settled = {
  settle_time : int;
      (** The earliest step after which every node's output never changes
          again on this run. Time 0 means outputs were already converged in
          the initial configuration. *)
  settled_outputs : int array;
      (** The output vector from [settle_time] on: at a stable labeling the
          outputs after one more synchronous refresh, along an oscillation
          the (constant) cycle outputs. *)
  horizon_config : 'l Protocol.config;
      (** The configuration at the certification horizon — a steady state of
          the run. Callers that corrupt a converged run and re-measure
          should corrupt this instead of re-simulating with {!run}. *)
}

(** [settle p ~input ~init ~schedule ~max_steps] runs to a verdict and
    certifies output stabilization in one pass. [None] when [max_steps]
    elapses without a verdict, or when the run provably never
    output-stabilizes (it oscillates and some node's output changes within
    the cycle). *)
val settle :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  'l settled option

(** [outputs_after_convergence p ~input ~init ~schedule ~max_steps] decides
    output stabilization on one run: if the run label-stabilizes, outputs are
    read at the fixed point (after one more synchronous refresh so every node
    has reported); if it oscillates with every node's output constant along
    the cycle, those outputs are returned; otherwise [None]. Equivalent to
    the [settled_outputs] field of {!settle}. *)
val outputs_after_convergence :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  int array option

(** [output_stabilization_time p ~input ~init ~schedule ~max_steps] is the
    earliest step after which every node's output never changes again on
    this run, when that can be certified ({!run_until_stable} reached a
    verdict and the outputs do settle — an oscillating run whose cycle
    changes some output yields [None]). Time 0 means outputs were already
    converged in [init]. The [settle_time] field of {!settle}. *)
val output_stabilization_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  int option

(** [label_stabilization_time] is the analogue for labels: the earliest step
    after which the labeling never changes again (and is stable). *)
val label_stabilization_time :
  ('x, 'l) Protocol.t ->
  input:'x array ->
  init:'l Protocol.config ->
  schedule:Schedule.t ->
  max_steps:int ->
  int option

(** [synchronous_round_complexity p ~input ~max_steps] measures the paper's
    round complexity restricted to given inputs: the max, over all supplied
    inputs and {e all} [|Σ|^|E|] initial labelings, of the synchronous
    output-stabilization time. Only usable when the labeling space is
    enumerable; raises [Invalid_argument] when [|Σ|^|E|] overflows. *)
val synchronous_round_complexity :
  ('x, 'l) Protocol.t -> inputs:'x array list -> max_steps:int -> int option

(** Like {!synchronous_round_complexity} but sampling [samples] random
    initial labelings per input instead of enumerating. *)
val sampled_round_complexity :
  ('x, 'l) Protocol.t ->
  inputs:'x array list ->
  samples:int ->
  seed:int ->
  max_steps:int ->
  int option
