module Digraph = Stateless_graph.Digraph

type latency =
  | Const of float
  | Uniform of float * float
  | Exp of float
  | Pareto of float * float

type faults = { loss : float; dup : float; crash : float; crash_len : float }

let no_faults = { loss = 0.0; dup = 0.0; crash = 0.0; crash_len = 0.0 }

type stats = {
  events : int;
  activations : int;
  deliveries : int;
  lost : int;
  duplicated : int;
  crash_windows : int;
  time : float;
  pending : int;
}

(* Event storage is split by kind so that each structure only ever holds
   one priority class and the delivery-before-activation tie-break lives
   in a single top-level comparison in the run loop:

   - the async merged activation clock is one scalar ([next_act], a
     1-cell float array so stores stay unboxed) — never a heap entry;
   - constant-latency deliveries (including sync mode's unit latency) are
     pushed at activation times, which the run loop visits in
     nondecreasing order, so their times are already sorted: a FIFO ring
     buffer replaces the priority queue outright;
   - variable-latency deliveries go to a 4-ary min-heap ordered by time
     alone — no tie-break branches in the sift loops;
   - sync mode's per-node clocks reuse the same heap (it then holds only
     activations, again time-only ordering). *)
type ('x, 'l) t = {
  kernel : ('x, 'l) Kernel.t;
  graph : Digraph.t;
  n : int;
  nm : int; (* n + num_edges: stream-id stride between draw purposes *)
  delivered : int array; (* per-edge last-delivered label code *)
  node_outputs : int array;
  rate : float;
  latency : latency;
  faults : faults;
  sync : bool;
  is_const : bool; (* latency is Const: deliveries take the FIFO *)
  const_lat : float; (* the Const latency when [is_const] *)
  rng_base : int;
  (* Per-stream draw counters: a draw is a pure function of
     (seed, stream, counter), so the trajectory is independent of anything
     but the seed — no hidden global RNG state. *)
  mutable gap_ctr : int; (* async: merged-clock activation gaps *)
  mutable pick_ctr : int; (* async: uniform node picks *)
  crash_ctr : int array; (* per node: crash coins *)
  lat_ctr : int array; (* per edge: latency draws *)
  coin_ctr : int array; (* per edge: loss/dup coins *)
  crashed_until : float array;
  next_act : float array; (* async merged clock; 1 cell, unboxed stores *)
  (* 4-ary min-heap as three parallel flat arrays, ordered by time only.
     Async: (time, edge, code) deliveries. Sync: (time, node, 0) clocks. *)
  mutable htime : float array;
  mutable hea : int array;
  mutable hcode : int array;
  mutable hn : int;
  mutable sift : int; (* sift-loop cursor scratch: avoids a ref per op *)
  (* Constant-latency delivery FIFO: ring buffer, capacity a power of
     two, [fhead]/[ftail] monotone counters masked on access. *)
  mutable ft : float array;
  mutable fe : int array;
  mutable fc : int array;
  mutable fhead : int;
  mutable ftail : int;
  mutable now : float;
  mutable events : int;
  mutable activations : int;
  mutable deliveries : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable crash_windows : int;
}

(* Splitmix-style finalizer on OCaml's 63-bit native ints (the classic
   64-bit constants don't fit an int literal; these odd constants < 2^62
   do, and [land max_int] keeps every intermediate nonnegative). *)
let mix63 x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x2545F4914F6CDD1D land max_int in
  let x = (x lxor (x lsr 27)) * 0x1F123BB5159A55E5 land max_int in
  x lxor (x lsr 31)

(* Uniform on (0, 1] from the top 52 of the mix's 62 value bits (OCaml's
   [max_int] is 2^62 - 1) — never 0, so log u is finite. *)
let u_of r = float_of_int ((r lsr 10) + 1) *. 0x1p-52

let draw t ~stream ~ctr = u_of (mix63 (mix63 (t.rng_base + stream) + ctr))

(* Stream ids: tag * (n + m) + idx, with nodes at idx in [0, n) and edges
   at idx in [n, n + m). Async activations use only node streams 0 and 1:
   the n per-node Poisson(rate) clocks are simulated by their
   superposition — one merged Exp(n * rate) gap stream plus a uniform node
   pick — which is the same stochastic process with n times fewer pending
   events. *)
let draw_global_gap t =
  let c = t.gap_ctr in
  t.gap_ctr <- c + 1;
  let u = draw t ~stream:0 ~ctr:c in
  -.log u /. (t.rate *. float_of_int t.n)

let draw_node_pick t =
  let c = t.pick_ctr in
  t.pick_ctr <- c + 1;
  let u = draw t ~stream:1 ~ctr:c in
  (* u is on (0, 1], so clamp the u = 1 endpoint. *)
  let i = int_of_float (u *. float_of_int t.n) in
  if i >= t.n then t.n - 1 else i

let draw_crash_coin t i =
  let c = t.crash_ctr.(i) in
  t.crash_ctr.(i) <- c + 1;
  draw t ~stream:(t.nm + i) ~ctr:c

let draw_coin t e =
  let c = t.coin_ctr.(e) in
  t.coin_ctr.(e) <- c + 1;
  draw t ~stream:((3 * t.nm) + t.n + e) ~ctr:c

let draw_latency t e =
  match t.latency with
  | Const c -> c
  | _ ->
      let c = t.lat_ctr.(e) in
      t.lat_ctr.(e) <- c + 1;
      let u = draw t ~stream:((2 * t.nm) + t.n + e) ~ctr:c in
      (match t.latency with
      | Const c -> c
      | Uniform (lo, hi) -> lo +. (u *. (hi -. lo))
      | Exp mean -> -.mean *. log u
      | Pareto (alpha, xmin) -> xmin *. (u ** (-1.0 /. alpha)))

let ensure_capacity t =
  let cap = Array.length t.htime in
  if t.hn = cap then begin
    let cap' = 2 * cap in
    let ht = Array.make cap' 0.0 in
    let he = Array.make cap' 0 in
    let hc = Array.make cap' 0 in
    Array.blit t.htime 0 ht 0 cap;
    Array.blit t.hea 0 he 0 cap;
    Array.blit t.hcode 0 hc 0 cap;
    t.htime <- ht;
    t.hea <- he;
    t.hcode <- hc
  end

(* The heap is 4-ary: at the pending counts the simulator sustains
   (tens of thousands of in-flight messages) sift depth — and with it the
   number of distinct cache lines a pop touches — halves versus a binary
   heap, and the four children of a node share cache lines in each of the
   three parallel arrays.

   The sift loops are written with only shadowed immutable locals and the
   [t.sift] cursor field, comparisons inline: without flambda, a float
   crossing any call boundary (comparison helper, recursive self-call) is
   re-boxed per heap level, and even a local [ref] allocates its cell per
   operation — this form is the one the compiler keeps entirely
   allocation-free, which matters at ~10^7 heap ops per simulated
   second. For the same reason the sift-down loop appears twice below
   (drop and replace-root) instead of being shared through a helper:
   sharing was measured 20% slower end-to-end. *)

let heap_push t time ea code =
  ensure_capacity t;
  let ht = t.htime and he = t.hea and hc = t.hcode in
  let n = t.hn in
  t.hn <- n + 1;
  t.sift <- n;
  while
    let i = t.sift in
    i > 0
    &&
    let p = (i - 1) / 4 in
    let tp = Array.unsafe_get ht p in
    time < tp
    &&
    (Array.unsafe_set ht i tp;
     Array.unsafe_set he i (Array.unsafe_get he p);
     Array.unsafe_set hc i (Array.unsafe_get hc p);
     t.sift <- p;
     true)
  do
    ()
  done;
  let i = t.sift in
  Array.unsafe_set ht i time;
  Array.unsafe_set he i ea;
  Array.unsafe_set hc i code

(* Remove the root; the caller has already read it. *)
let heap_drop t =
  let last = t.hn - 1 in
  t.hn <- last;
  if last > 0 then begin
    let ht = t.htime and he = t.hea and hc = t.hcode in
    let time = Array.unsafe_get ht last in
    let ea = Array.unsafe_get he last in
    let code = Array.unsafe_get hc last in
    t.sift <- 0;
    while
      let i = t.sift in
      let l = (4 * i) + 1 in
      l < last
      &&
      (* Earliest child among l .. min (l+3) (last-1); the shadowing
         chain keeps everything in registers. *)
      let c = l in
      let c =
        let j = l + 1 in
        if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
        else c
      in
      let c =
        let j = l + 2 in
        if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
        else c
      in
      let c =
        let j = l + 3 in
        if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
        else c
      in
      let tc = Array.unsafe_get ht c in
      tc < time
      &&
      (Array.unsafe_set ht i tc;
       Array.unsafe_set he i (Array.unsafe_get he c);
       Array.unsafe_set hc i (Array.unsafe_get hc c);
       t.sift <- c;
       true)
    do
      ()
    done;
    let i = t.sift in
    Array.unsafe_set ht i time;
    Array.unsafe_set he i ea;
    Array.unsafe_set hc i code
  end

(* Replace the root with (time, ea, code) without detaching it first —
   the sync clock re-arm, one whole tick above the popped root. *)
let heap_replace_root t time ea code =
  let last = t.hn in
  let ht = t.htime and he = t.hea and hc = t.hcode in
  t.sift <- 0;
  while
    let i = t.sift in
    let l = (4 * i) + 1 in
    l < last
    &&
    let c = l in
    let c =
      let j = l + 1 in
      if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
      else c
    in
    let c =
      let j = l + 2 in
      if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
      else c
    in
    let c =
      let j = l + 3 in
      if j < last && Array.unsafe_get ht j < Array.unsafe_get ht c then j
      else c
    in
    let tc = Array.unsafe_get ht c in
    tc < time
    &&
    (Array.unsafe_set ht i tc;
     Array.unsafe_set he i (Array.unsafe_get he c);
     Array.unsafe_set hc i (Array.unsafe_get hc c);
     t.sift <- c;
     true)
  do
    ()
  done;
  let i = t.sift in
  Array.unsafe_set ht i time;
  Array.unsafe_set he i ea;
  Array.unsafe_set hc i code

(* FIFO growth: double (capacity stays a power of two) and unwrap the
   live window to the front of the new arrays. *)
let fifo_grow t =
  let cap = Array.length t.ft in
  let mask = cap - 1 in
  let len = t.ftail - t.fhead in
  let cap' = 2 * cap in
  let ft = Array.make cap' 0.0 in
  let fe = Array.make cap' 0 in
  let fc = Array.make cap' 0 in
  for k = 0 to len - 1 do
    let p = (t.fhead + k) land mask in
    ft.(k) <- t.ft.(p);
    fe.(k) <- t.fe.(p);
    fc.(k) <- t.fc.(p)
  done;
  t.ft <- ft;
  t.fe <- fe;
  t.fc <- fc;
  t.fhead <- 0;
  t.ftail <- len

let check_latency = function
  | Const c -> if c < 0.0 then invalid_arg "Eventsim: negative Const latency"
  | Uniform (lo, hi) ->
      if lo < 0.0 || hi < lo then invalid_arg "Eventsim: bad Uniform latency"
  | Exp mean -> if mean <= 0.0 then invalid_arg "Eventsim: bad Exp latency"
  | Pareto (alpha, xmin) ->
      if alpha <= 0.0 || xmin <= 0.0 then
        invalid_arg "Eventsim: bad Pareto latency"

let check_faults f =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Eventsim: %s probability out of [0,1]" name)
  in
  prob "loss" f.loss;
  prob "dup" f.dup;
  prob "crash" f.crash;
  if f.crash_len < 0.0 then invalid_arg "Eventsim: negative crash_len"

let create ?max_table_words ?max_memo_entries ?(rate = 1.0)
    ?(latency = Exp 1.0) ?(faults = no_faults) ?(sync = false) ~seed p ~input
    ~init =
  if rate <= 0.0 then invalid_arg "Eventsim.create: rate must be positive";
  check_latency latency;
  check_faults faults;
  let latency = if sync then Const 1.0 else latency in
  let faults = if sync then no_faults else faults in
  let kernel = Kernel.create ?max_table_words ?max_memo_entries p ~input in
  let graph = p.Protocol.graph in
  let n = Digraph.num_nodes graph in
  let m = Digraph.num_edges graph in
  let delivered = Array.make m 0 in
  let node_outputs = Array.make n 0 in
  Kernel.load kernel init ~labels:delivered ~outputs:node_outputs;
  (* Sync keeps the n per-node clocks in the heap; async only queues
     in-flight messages there (amortized doubling tracks the load). *)
  let cap = if sync then max 16 n else 1024 in
  let t =
    {
      kernel;
      graph;
      n;
      nm = n + m;
      delivered;
      node_outputs;
      rate;
      latency;
      faults;
      sync;
      is_const = (match latency with Const _ -> true | _ -> false);
      const_lat = (match latency with Const c -> c | _ -> 0.0);
      rng_base = mix63 seed;
      gap_ctr = 0;
      pick_ctr = 0;
      crash_ctr = Array.make n 0;
      lat_ctr = Array.make m 0;
      coin_ctr = Array.make m 0;
      crashed_until = Array.make n 0.0;
      next_act = Array.make 1 infinity;
      htime = Array.make cap 0.0;
      hea = Array.make cap 0;
      hcode = Array.make cap 0;
      hn = 0;
      sift = 0;
      ft = Array.make 1024 0.0;
      fe = Array.make 1024 0;
      fc = Array.make 1024 0;
      fhead = 0;
      ftail = 0;
      now = 0.0;
      events = 0;
      activations = 0;
      deliveries = 0;
      lost = 0;
      duplicated = 0;
      crash_windows = 0;
    }
  in
  if sync then
    for i = 0 to n - 1 do
      heap_push t 0.0 i 0
    done
  else t.next_act.(0) <- draw_global_gap t;
  t

(* React node [i] at [now]: the reaction body shared by both modes. The
   FIFO append is inlined (a push helper would box the delivery time). *)
let react t i now =
  if now >= t.crashed_until.(i) then begin
    let crashed =
      t.faults.crash > 0.0 && draw_crash_coin t i < t.faults.crash
    in
    if crashed then begin
      t.crashed_until.(i) <- now +. t.faults.crash_len;
      t.crash_windows <- t.crash_windows + 1
    end
    else begin
      let row, base = Kernel.eval_row t.kernel ~src:t.delivered ~i in
      let oes = Digraph.out_edges t.graph i in
      let d = Array.length oes in
      t.node_outputs.(i) <- row.(base + d);
      for k = 0 to d - 1 do
        let e = Array.unsafe_get oes k in
        let code = Array.unsafe_get row (base + k) in
        if t.faults.loss > 0.0 && draw_coin t e < t.faults.loss then
          t.lost <- t.lost + 1
        else begin
          let dup = t.faults.dup > 0.0 && draw_coin t e < t.faults.dup in
          if dup then t.duplicated <- t.duplicated + 1;
          if t.is_const then begin
            (* Constant latency: arrival order is push order. *)
            if t.ftail - t.fhead = Array.length t.ft then fifo_grow t;
            let mask = Array.length t.ft - 1 in
            let p = t.ftail land mask in
            t.ftail <- t.ftail + 1;
            Array.unsafe_set t.ft p (now +. t.const_lat);
            Array.unsafe_set t.fe p e;
            Array.unsafe_set t.fc p code;
            if dup then begin
              if t.ftail - t.fhead = Array.length t.ft then fifo_grow t;
              let mask = Array.length t.ft - 1 in
              let p = t.ftail land mask in
              t.ftail <- t.ftail + 1;
              Array.unsafe_set t.ft p (now +. t.const_lat);
              Array.unsafe_set t.fe p e;
              Array.unsafe_set t.fc p code
            end
          end
          else begin
            heap_push t (now +. draw_latency t e) e code;
            if dup then heap_push t (now +. draw_latency t e) e code
          end
        end
      done
    end
  end

let stats t =
  {
    events = t.events;
    activations = t.activations;
    deliveries = t.deliveries;
    lost = t.lost;
    duplicated = t.duplicated;
    crash_windows = t.crash_windows;
    time = t.now;
    pending = t.hn + (t.ftail - t.fhead) + (if t.sync then 0 else 1);
  }

(* Strict event priority in both run loops: earlier time first; at equal
   times deliveries before activations (the [<=] in the delivery guard).
   The tie-break is what makes the synchronous anchor exact — the
   activation wave at an integer time must observe every label delivered
   at that same time. A delivery exactly at the horizon is processed, an
   activation is not: [run ~horizon:k] on the sync anchor leaves the
   labels after exactly k synchronous steps.

   [t.now] is only read between run calls; assigning it per event would
   box a float per event — it is parked at [horizon] on exit. *)

let run_sync t ~horizon =
  let continue = ref true in
  while !continue do
    (* The clock heap always holds all n per-node clocks. *)
    let at = Array.unsafe_get t.htime 0 in
    let has_d = t.fhead <> t.ftail in
    if
      has_d
      &&
      let dt =
        Array.unsafe_get t.ft (t.fhead land (Array.length t.ft - 1))
      in
      dt <= at && dt <= horizon
    then begin
      let p = t.fhead land (Array.length t.ft - 1) in
      t.fhead <- t.fhead + 1;
      t.events <- t.events + 1;
      t.deliveries <- t.deliveries + 1;
      t.delivered.(Array.unsafe_get t.fe p) <- Array.unsafe_get t.fc p
    end
    else if at < horizon then begin
      t.events <- t.events + 1;
      t.activations <- t.activations + 1;
      let i = Array.unsafe_get t.hea 0 in
      (* Re-arm the clock by replacing the root in place. *)
      heap_replace_root t (at +. 1.0) i 0;
      react t i at
    end
    else continue := false
  done

let run_async t ~horizon =
  let continue = ref true in
  while !continue do
    let na = Array.unsafe_get t.next_act 0 in
    if t.is_const then begin
      let has_d = t.fhead <> t.ftail in
      if
        has_d
        &&
        let dt =
          Array.unsafe_get t.ft (t.fhead land (Array.length t.ft - 1))
        in
        dt <= na && dt <= horizon
      then begin
        let p = t.fhead land (Array.length t.ft - 1) in
        t.fhead <- t.fhead + 1;
        t.events <- t.events + 1;
        t.deliveries <- t.deliveries + 1;
        t.delivered.(Array.unsafe_get t.fe p) <- Array.unsafe_get t.fc p
      end
      else if na < horizon then begin
        t.events <- t.events + 1;
        t.activations <- t.activations + 1;
        Array.unsafe_set t.next_act 0 (na +. draw_global_gap t);
        react t (draw_node_pick t) na
      end
      else continue := false
    end
    else if
      t.hn > 0
      &&
      let dt = Array.unsafe_get t.htime 0 in
      dt <= na && dt <= horizon
    then begin
      let e = Array.unsafe_get t.hea 0 in
      let code = Array.unsafe_get t.hcode 0 in
      heap_drop t;
      t.events <- t.events + 1;
      t.deliveries <- t.deliveries + 1;
      t.delivered.(e) <- code
    end
    else if na < horizon then begin
      t.events <- t.events + 1;
      t.activations <- t.activations + 1;
      Array.unsafe_set t.next_act 0 (na +. draw_global_gap t);
      react t (draw_node_pick t) na
    end
    else continue := false
  done

let run t ~horizon =
  if horizon < t.now then invalid_arg "Eventsim.run: horizon before now";
  if t.sync then run_sync t ~horizon else run_async t ~horizon;
  t.now <- horizon;
  stats t

let time t = t.now
let labels t = t.delivered
let outputs t = t.node_outputs
let config t = Kernel.store t.kernel ~labels:t.delivered ~outputs:t.node_outputs
