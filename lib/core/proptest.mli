(** Shared randomized-protocol generators for the differential test
    suites (extracted from test_kernel / test_netlab / test_faults).

    The optional parameters are the RNG constants the individual suites
    historically used, so each suite keeps generating exactly the
    instances it always did: the kernel suite uses the defaults, the
    netlab suite [~salt:0x0c4a11e5 ~graph_seed_mult:13 ~name:"chan"
    ~offset:5]. *)

(** [random_protocol seed] is a small strongly connected protocol with a
    pure hash-based reaction, its input vector, and the generator state
    (pass it on to {!random_config} / {!random_active} to continue the
    deterministic stream). *)
val random_protocol :
  ?salt:int ->
  ?graph_seed_mult:int ->
  ?name:string ->
  int ->
  (int, int) Protocol.t * int array * Random.State.t

(** [protocol_of ~seed ~nodes ~extra ~card ()] is {!random_protocol}
    with the structure knobs lifted into explicit arguments — built for
    the fuzz shrinker, which regenerates structurally related instances
    while walking [nodes]/[extra]/[card] down. Node inputs are a pure
    per-node hash of [seed], so shrinking the node count leaves the
    surviving nodes' inputs untouched.
    @raise Invalid_argument if [nodes < 2], [card < 2] or [extra < 0]. *)
val protocol_of :
  ?name:string ->
  seed:int ->
  nodes:int ->
  extra:int ->
  card:int ->
  unit ->
  (int, int) Protocol.t * int array

(** A uniformly random configuration (labels and outputs) for [p]. *)
val random_config :
  ('x, 'l) Protocol.t -> Random.State.t -> 'l Protocol.config

(** A Bernoulli(1/2) activation subset of [0..n-1] (possibly empty). *)
val random_active : int -> Random.State.t -> int list

(** The standard schedule matrix: synchronous, round-robin and a 2-fair
    randomized schedule seeded [seed + offset] (default [offset = 11]). *)
val schedules_for : ?offset:int -> int -> int -> Schedule.t list

(** Labels and outputs both equal. *)
val config_eq :
  ('x, 'l) Protocol.t -> 'l Protocol.config -> 'l Protocol.config -> bool

(** The unidirectional copy ring: each node forwards the boolean it
    reads and outputs 0. Labels rotate forever from non-uniform
    labelings; outputs never change. *)
val copy_ring : ?name:string -> int -> (unit, bool) Protocol.t
