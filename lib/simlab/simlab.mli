(** Scenario wiring for the event-driven simulator: the paper's flagship
    asynchronous systems (Morris threshold contagion, Stable Paths Problem
    gadgets) on generated topologies at up to millions of nodes, plus
    [Parrun]-sharded multi-seed campaigns.

    The protocols differ in label type (contagion announces strategies,
    SPP announces paths), so a built scenario is packaged as an
    {!instance}: an existential closure that creates one {!Eventsim} per
    [(seed, horizon)] pair and returns a packed {!result}. Campaign results
    are pure functions of the seed — wall-clock time is deliberately not a
    field — so sharding a campaign over any domain count is bit-identical
    to running it sequentially. *)

module Eventsim = Stateless_core.Eventsim

(** Topology family, scaled by a node-count parameter at build time. *)
type topology =
  | Ring  (** bidirectional ring *)
  | Torus  (** near-square 2-D torus: [⌊√n⌋ x (n / ⌊√n⌋)] nodes *)
  | Erdos_renyi of float  (** sparse G(n, p) with this average out-degree *)
  | Small_world of int * float  (** Watts–Strogatz [k] and rewiring [beta] *)
  | Pref_attach of int  (** Barabási–Albert attachment count [m] *)

val topology_of_string : string -> (topology, string) result
val topology_name : topology -> string

(** Latency-distribution spellings for CLI flags —
    [const:<c> | uniform:<lo>:<hi> | exp:<mean> | pareto:<alpha>:<xmin>] —
    validated to [Eventsim.check_latency]'s constraints. *)
val latency_of_string : string -> (Eventsim.latency, string) result

val latency_name : Eventsim.latency -> string

(** [graph_of topo ~seed ~nodes] — the actual node count may be slightly
    below [nodes] for [Torus] (nearest rows x cols factorization). *)
val graph_of : topology -> seed:int -> nodes:int -> Stateless_graph.Digraph.t

type scenario =
  | Contagion of { threshold : float; seed_frac : float }
      (** Morris contagion: adopt iff at least [threshold] of in-neighbours
          adopted; the first [ceil (seed_frac * n)] nodes start adopted. *)
  | Spp_gadget
      (** Disjoint tiling of GOOD GADGET copies — [nodes / 4] independent
          BGP systems evaluated in one packed kernel, each converging to
          its unique stable routing tree. *)

val scenario_of_string : string -> (scenario, string) result
val scenario_name : scenario -> string

(** One simulated trajectory, summarized. [metric] is the scenario's
    progress measure (contagion: adopter count; SPP: nodes holding a
    route); [label_hash] is an order-sensitive hash of the packed edge
    labels, the fingerprint campaigns compare across domain counts. *)
type result = {
  seed : int;
  events : int;
  activations : int;
  deliveries : int;
  lost : int;
  duplicated : int;
  crash_windows : int;
  metric : int;
  label_hash : int;
}

(** A built scenario: graph and protocol constructed once (shared read-only
    across domains), simulator per run. [desc] names every build
    parameter the results depend on (scenario, topology, graph seed,
    node count, rate, latency, fault rates) — it seeds campaign config
    fingerprints. [run_poll] is [run] with a cooperative hook: the
    horizon is cut into slices and [poll] is called between them (it may
    raise to abort the run). Slicing does not change the trajectory —
    the simulator's event order is horizon-independent — so [run] and
    [run_poll] return bit-identical results. *)
type instance = {
  nodes : int;
  edges : int;
  scenario : scenario;
  topology : topology;
  desc : string;
  run : seed:int -> horizon:float -> result;
  run_poll : poll:(unit -> unit) -> seed:int -> horizon:float -> result;
}

(** [build scenario topology ~graph_seed ~nodes ~rate ~latency ~faults]
    constructs the graph and protocol. Kernels for instances beyond
    [100_000] nodes are created with [~max_memo_entries:0] (the per-node
    memo stores would dominate memory at that scale; the raw tier's
    per-activation closure call is within the event budget). *)
val build :
  scenario ->
  topology ->
  graph_seed:int ->
  nodes:int ->
  rate:float ->
  latency:Eventsim.latency ->
  faults:Eventsim.faults ->
  instance

(** [campaign ?domains inst ~seed0 ~runs ~horizon] — [runs] independent
    trajectories with seeds [seed0, seed0 + 1, ...], sharded over the
    {!Parrun} domain pool. Bit-identical for every [domains]. *)
val campaign :
  ?domains:int ->
  instance ->
  seed0:int ->
  runs:int ->
  horizon:float ->
  result array

(** Journal codec for one trajectory: the nine int fields of {!result}
    as a flat list. Exact round-trip. *)
val codec : result Stateless_campaign.Campaign.codec

(** [cells inst ~seed0 ~runs ~horizon] compiles the seed sweep into
    matrix cells — one cell per seed (a single large-[n] trajectory is
    the unit of loss on a crash), key
    ["sim/<scenario>/<topology>/s<idx>"]. The cell runs through
    {!instance.run_poll}, polling its deadline between horizon slices;
    retries reseed by [attempt * Campaign.reseed_stride]. *)
val cells :
  instance ->
  seed0:int ->
  runs:int ->
  horizon:float ->
  result Stateless_campaign.Campaign.cell array

(** [run_matrix inst ~seed0 ~runs ~horizon] runs the seed sweep through
    the campaign orchestrator under [policy]. Returns per-seed results
    in seed order ([None] where the cell timed out or errored) plus the
    ok/timeout/error counts. With the default policy every slot is
    [Some] and equals {!campaign}'s element bit-exactly. *)
val run_matrix :
  ?domains:int ->
  ?policy:Stateless_campaign.Campaign.policy ->
  instance ->
  seed0:int ->
  runs:int ->
  horizon:float ->
  result option array * Stateless_campaign.Campaign.counts
