module Protocol = Stateless_core.Protocol
module Kernel = Stateless_core.Kernel
module Eventsim = Stateless_core.Eventsim
module Parrun = Stateless_core.Parrun
module Label = Stateless_core.Label
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders
module Contagion = Stateless_games.Contagion
module Best_response = Stateless_games.Best_response
module Spp = Stateless_games.Spp

type topology =
  | Ring
  | Torus
  | Erdos_renyi of float
  | Small_world of int * float
  | Pref_attach of int

let topology_name = function
  | Ring -> "ring"
  | Torus -> "torus"
  | Erdos_renyi d -> Printf.sprintf "er:%g" d
  | Small_world (k, beta) -> Printf.sprintf "smallworld:%d:%g" k beta
  | Pref_attach m -> Printf.sprintf "prefattach:%d" m

let topology_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "ring" ] -> Ok Ring
  | [ "torus" ] -> Ok Torus
  | [ "er" ] -> Ok (Erdos_renyi 4.0)
  | [ "er"; d ] -> (
      match float_of_string_opt d with
      | Some d when d > 0.0 -> Ok (Erdos_renyi d)
      | _ -> Error "er:<avg-out-degree> expects a positive float")
  | [ "smallworld" ] -> Ok (Small_world (2, 0.1))
  | [ "smallworld"; k; beta ] -> (
      match (int_of_string_opt k, float_of_string_opt beta) with
      | Some k, Some beta when k >= 1 && beta >= 0.0 && beta <= 1.0 ->
          Ok (Small_world (k, beta))
      | _ -> Error "smallworld:<k>:<beta> expects k >= 1 and beta in [0,1]")
  | [ "prefattach" ] -> Ok (Pref_attach 2)
  | [ "prefattach"; m ] -> (
      match int_of_string_opt m with
      | Some m when m >= 1 -> Ok (Pref_attach m)
      | _ -> Error "prefattach:<m> expects m >= 1")
  | _ ->
      Error
        "unknown topology (ring | torus | er[:<deg>] | \
         smallworld[:<k>:<beta>] | prefattach[:<m>])"

let graph_of topo ~seed ~nodes =
  if nodes < 4 then invalid_arg "Simlab.graph_of: need at least 4 nodes";
  match topo with
  | Ring -> Builders.ring_bi nodes
  | Torus ->
      let rows = max 3 (int_of_float (sqrt (float_of_int nodes))) in
      let cols = max 3 (nodes / rows) in
      Builders.torus rows cols
  | Erdos_renyi avg_out ->
      Builders.erdos_renyi_sparse ~seed nodes
        ~avg_out:(min avg_out (float_of_int (nodes - 1)))
  | Small_world (k, beta) -> Builders.small_world ~seed nodes ~k ~beta
  | Pref_attach m -> Builders.preferential_attachment ~seed nodes ~m

let latency_name = function
  | Eventsim.Const c -> Printf.sprintf "const:%g" c
  | Eventsim.Uniform (lo, hi) -> Printf.sprintf "uniform:%g:%g" lo hi
  | Eventsim.Exp mean -> Printf.sprintf "exp:%g" mean
  | Eventsim.Pareto (alpha, xmin) -> Printf.sprintf "pareto:%g:%g" alpha xmin

(* Mirrors [Eventsim.check_latency]'s constraints so malformed CLI flags
   surface as parse errors rather than [Invalid_argument] later. *)
let latency_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "const"; c ] -> (
      match float_of_string_opt c with
      | Some c when c >= 0.0 -> Ok (Eventsim.Const c)
      | _ -> Error "const:<c> expects a nonnegative float")
  | [ "uniform"; lo; hi ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi) with
      | Some lo, Some hi when lo >= 0.0 && hi >= lo ->
          Ok (Eventsim.Uniform (lo, hi))
      | _ -> Error "uniform:<lo>:<hi> expects 0 <= lo <= hi")
  | [ "exp"; mean ] -> (
      match float_of_string_opt mean with
      | Some mean when mean > 0.0 -> Ok (Eventsim.Exp mean)
      | _ -> Error "exp:<mean> expects a positive float")
  | [ "pareto"; alpha; xmin ] -> (
      match (float_of_string_opt alpha, float_of_string_opt xmin) with
      | Some alpha, Some xmin when alpha > 0.0 && xmin > 0.0 ->
          Ok (Eventsim.Pareto (alpha, xmin))
      | _ -> Error "pareto:<alpha>:<xmin> expects positive floats")
  | _ ->
      Error
        "unknown latency (const:<c> | uniform:<lo>:<hi> | exp:<mean> | \
         pareto:<alpha>:<xmin>)"

type scenario =
  | Contagion of { threshold : float; seed_frac : float }
  | Spp_gadget

let scenario_name = function
  | Contagion { threshold; seed_frac } ->
      Printf.sprintf "contagion:%g:%g" threshold seed_frac
  | Spp_gadget -> "spp"

let scenario_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "contagion" ] -> Ok (Contagion { threshold = 0.5; seed_frac = 0.01 })
  | [ "contagion"; t; f ] -> (
      match (float_of_string_opt t, float_of_string_opt f) with
      | Some t, Some f when t > 0.0 && t <= 1.0 && f >= 0.0 && f <= 1.0 ->
          Ok (Contagion { threshold = t; seed_frac = f })
      | _ ->
          Error
            "contagion:<threshold>:<seed-frac> expects threshold in (0,1] \
             and seed-frac in [0,1]")
  | [ "spp" ] -> Ok Spp_gadget
  | _ -> Error "unknown scenario (contagion[:<threshold>:<seed-frac>] | spp)"

type result = {
  seed : int;
  events : int;
  activations : int;
  deliveries : int;
  lost : int;
  duplicated : int;
  crash_windows : int;
  metric : int;
  label_hash : int;
}

type instance = {
  nodes : int;
  edges : int;
  scenario : scenario;
  topology : topology;
  desc : string;
  run : seed:int -> horizon:float -> result;
  run_poll : poll:(unit -> unit) -> seed:int -> horizon:float -> result;
}

(* Order-sensitive label fingerprint (same splitmix-style finalizer family
   as Eventsim's counter RNG): campaigns compare it across domain counts. *)
let mix63 x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x2545F4914F6CDD1D land max_int in
  let x = (x lxor (x lsr 27)) * 0x1F123BB5159A55E5 land max_int in
  x lxor (x lsr 31)

let hash_labels codes =
  let h = ref 0x5005_1e55 in
  for e = 0 to Array.length codes - 1 do
    h := mix63 (!h + Array.unsafe_get codes e)
  done;
  !h

(* Beyond this size the kernel's per-node memo stores (a few kB each)
   dominate memory; force those nodes onto the raw tier instead. *)
let memo_cutoff = 100_000

let pack_result sim ~seed ~metric =
  let st = Eventsim.stats sim in
  {
    seed;
    events = st.Eventsim.events;
    activations = st.Eventsim.activations;
    deliveries = st.Eventsim.deliveries;
    lost = st.Eventsim.lost;
    duplicated = st.Eventsim.duplicated;
    crash_windows = st.Eventsim.crash_windows;
    metric;
    label_hash = hash_labels (Eventsim.labels sim);
  }

(* [metric_of g labels ~hit] counts nodes whose announcement (first
   out-edge's packed code) satisfies [hit] — the allocation-free form of
   [Contagion.adopters] that also serves SPP's has-a-route count. *)
let metric_of g labels ~hit =
  let n = Digraph.num_nodes g in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let oes = Digraph.out_edges g i in
    if Array.length oes > 0 && hit labels.(oes.(0)) then incr count
  done;
  !count

(* Horizon slices between deadline polls on [run_poll]. Slicing does not
   change the trajectory: the event loop's priority (earlier time first,
   deliveries before activations at equal times; a delivery exactly at
   the horizon is processed, an activation is not) means parking at an
   intermediate horizon and resuming replays the same event order — so
   [run] and [run_poll] are bit-identical. *)
let deadline_slices = 8

let build scenario topology ~graph_seed ~nodes ~rate ~latency ~faults =
  let desc =
    Printf.sprintf
      "scenario=%s topology=%s graph_seed=%d nodes=%d rate=%.17g latency=%s \
       loss=%.17g dup=%.17g crash=%.17g crash_len=%.17g"
      (scenario_name scenario) (topology_name topology) graph_seed nodes rate
      (latency_name latency) faults.Eventsim.loss faults.Eventsim.dup
      faults.Eventsim.crash faults.Eventsim.crash_len
  in
  let make ~g ~p ~input ~init ~hit =
    let n = Digraph.num_nodes g in
    let max_memo_entries = if n > memo_cutoff then Some 0 else None in
    let run_poll ~poll ~seed ~horizon =
      let sim =
        Eventsim.create ?max_memo_entries ~rate ~latency ~faults ~seed p
          ~input ~init
      in
      for k = 1 to deadline_slices - 1 do
        ignore
          (Eventsim.run sim
             ~horizon:
               (horizon *. float_of_int k /. float_of_int deadline_slices));
        poll ()
      done;
      ignore (Eventsim.run sim ~horizon);
      let metric = metric_of g (Eventsim.labels sim) ~hit in
      pack_result sim ~seed ~metric
    in
    {
      nodes = n;
      edges = Digraph.num_edges g;
      scenario;
      topology;
      desc;
      run = (fun ~seed ~horizon -> run_poll ~poll:ignore ~seed ~horizon);
      run_poll;
    }
  in
  match scenario with
  | Contagion { threshold; seed_frac } ->
      let g = graph_of topology ~seed:graph_seed ~nodes in
      let n = Digraph.num_nodes g in
      let p = Best_response.protocol (Contagion.make g ~threshold) () in
      let input = Array.make n () in
      let nseeds =
        min n (int_of_float (ceil (seed_frac *. float_of_int n)))
      in
      let init = Contagion.seeded_config p (List.init nseeds Fun.id) in
      make ~g ~p ~input ~init ~hit:(fun c -> c = 1)
  | Spp_gadget ->
      (* Disjoint tiling of the GOOD GADGET: copy c's node i is global node
         c * ng + i and its edge k is global edge c * mg + k, so per-node
         edge order matches the gadget's and the gadget's reaction applies
         verbatim to [v mod ng] with the single gadget's path space shared
         across all copies (small card — the table tier covers it). *)
      let gadget = Spp.good_gadget () in
      let pg = Spp.protocol gadget in
      let gg = pg.Protocol.graph in
      let ng = Digraph.num_nodes gg and mg = Digraph.num_edges gg in
      let copies = max 1 (nodes / ng) in
      let n = copies * ng and m = copies * mg in
      let src = Array.make m 0 and dst = Array.make m 0 in
      for c = 0 to copies - 1 do
        for k = 0 to mg - 1 do
          src.((c * mg) + k) <- (c * ng) + Digraph.src gg k;
          dst.((c * mg) + k) <- (c * ng) + Digraph.dst gg k
        done
      done;
      let g = Digraph.create_arrays ~n src dst in
      let react v x inputs = pg.Protocol.react (v mod ng) x inputs in
      let p =
        {
          Protocol.name = Printf.sprintf "spp-tiled-%d" copies;
          graph = g;
          space = pg.Protocol.space;
          react;
        }
      in
      let input = Array.make n () in
      let init = Protocol.uniform_config p [] in
      let no_route = p.Protocol.space.Label.encode [] in
      make ~g ~p ~input ~init ~hit:(fun c -> c <> no_route)

let campaign ?domains inst ~seed0 ~runs ~horizon =
  Parrun.map ?domains
    ~ctx:(fun () -> ())
    runs
    (fun () idx -> inst.run ~seed:(seed0 + idx) ~horizon)

(* ------------------------------------------------------------------ *)
(* Matrix campaigns                                                    *)
(* ------------------------------------------------------------------ *)

module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value

(* One cell per seed: trajectories are independent and a single large-n
   run is the unit of loss on a crash, so per-seed granularity is what a
   resumed campaign wants to skip. All nine fields are ints. *)
let codec : result Campaign.codec =
  {
    encode =
      (fun r ->
        Value.List
          [
            Value.Int r.seed;
            Value.Int r.events;
            Value.Int r.activations;
            Value.Int r.deliveries;
            Value.Int r.lost;
            Value.Int r.duplicated;
            Value.Int r.crash_windows;
            Value.Int r.metric;
            Value.Int r.label_hash;
          ]);
    decode =
      (function
      | Value.List
          [
            Value.Int seed;
            Value.Int events;
            Value.Int activations;
            Value.Int deliveries;
            Value.Int lost;
            Value.Int duplicated;
            Value.Int crash_windows;
            Value.Int metric;
            Value.Int label_hash;
          ] ->
          Some
            {
              seed;
              events;
              activations;
              deliveries;
              lost;
              duplicated;
              crash_windows;
              metric;
              label_hash;
            }
      | _ -> None);
  }

let cells inst ~seed0 ~runs ~horizon =
  Array.init runs (fun idx ->
      let seed = seed0 + idx in
      {
        Campaign.key =
          Printf.sprintf "sim/%s/%s/s%d"
            (scenario_name inst.scenario)
            (topology_name inst.topology)
            idx;
        config =
          Printf.sprintf "sim %s seed=%d horizon=%.17g" inst.desc seed horizon;
        run =
          (fun ~deadline ~attempt ->
            let seed = seed + (attempt * Campaign.reseed_stride) in
            inst.run_poll
              ~poll:(fun () ->
                if deadline () then raise Campaign.Deadline_exceeded)
              ~seed ~horizon);
      })

let run_matrix ?(domains = 1) ?policy inst ~seed0 ~runs ~horizon =
  let cs = cells inst ~seed0 ~runs ~horizon in
  let outcome = Campaign.run ~domains ?policy ~codec cs in
  ( Array.map (fun (r : result Campaign.record) -> r.Campaign.result)
      outcome.Campaign.records,
    outcome.Campaign.counts )
