(* Exhaustive certification of r-stabilization under a budgeted label
   adversary.

   The plain checker ({!Stateless_checker.Checker}) decides whether a
   protocol r-stabilizes from every initial labeling under every r-fair
   schedule. This module strengthens the adversary: between protocol
   steps it may additionally corrupt edge labels — at most [k]
   corruptions in every window of [window] steps. A corruption rewrites
   one edge to one arbitrary label, which subsumes the channel layer's
   loss (rewrite back to the stale label), duplication (rewrite to a
   previously carried label) and crash-wake relabeling (a sequence of
   single-edge rewrites); bounded delay is a composition of a loss now
   and a rewrite later, both drawn from the same budget.

   The states-graph of the plain checker — (labeling, fairness
   countdown) — is augmented with the adversary's position in the window
   and remaining budget: a state is (ℓ, cd, b, φ) and a transition picks
   an admissible activation set, applies the protocol step, and then
   optionally (when b > 0) spends one budget unit on a single-edge
   rewrite. The budget recharges to [k] whenever the window wraps.
   Divergence is still {e protocol} divergence: an edge of the graph is
   marked changed only when the protocol step changed the labeling —
   adversarial rewrites never count, so a verdict of [Oscillating] means
   the protocol itself keeps writing new labels forever under some
   admissible schedule and fault pattern, and [Stabilizing] means every
   such run reaches a point after which the protocol never changes a
   label (resp. an output) again, however the adversary spends its
   budget.

   With [k = 0] the budget and phase dimensions collapse (b ≡ 0, and φ
   is not tracked at all), so the graph is literally the plain checker's
   states-graph and verdicts agree by construction — the differential
   tests assert this on the standard small instances. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Label = Stateless_core.Label
module Vec = Stateless_checker.Vec
module Csr = Stateless_checker.Csr
module Trans_cache = Stateless_checker.Trans_cache

type fault = { edge : int; code : int }
type step = { active : int list; fault : fault option }

type witness = {
  init_code : int;
  prefix : step list;
  cycle : step list;
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }

type stats = { states : int; edges : int }

let last_stats_ref : stats option ref = ref None
let last_stats () = !last_stats_ref

let ipow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let nodes_of_mask n mask =
  let rec loop i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i - 1) (i :: acc)
    else loop (i - 1) acc
  in
  loop (n - 1) []

(* The explored augmented states-graph. State id -> key
   [((lab * cd_count + cd) * bud_count + b) * w_eff + phase]; [w_eff] is 1
   when k = 0 so the zero-budget graph coincides with the plain checker's.
   Edge cells live in the CSR; [efault] runs in lockstep with the CSR's
   flat cell buffer (one push per edge) and holds the fault taken on that
   edge, encoded [edge * card + code], or -1 for fault-free edges. *)
type ('x, 'l) explored = {
  n : int;
  m : int;
  card : int;
  r : int;
  k : int;
  lab_count : int;
  cd_count : int;  (* r^n *)
  bud_count : int;  (* k + 1 *)
  w_eff : int;  (* window, or 1 when k = 0 *)
  keys : int Vec.t;
  csr : Csr.t;
  efault : int Vec.t;
  parent : int Vec.t;
  parent_mask : int Vec.t;
  parent_fault : int Vec.t;
  cache : ('x, 'l) Trans_cache.t;
  weight : int array;  (* weight.(e) = card^(m-1-e): edge 0 most significant *)
}

(* Saturating multiply for the size estimate reported by Too_large. *)
let mul_sat a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let explore p ~input ~r ~k ~window ~max_states =
  let n = Protocol.num_nodes p in
  if n > 20 then invalid_arg "Netcheck: too many nodes for subset enumeration";
  if r < 1 then invalid_arg "Netcheck: r must be >= 1";
  if k < 0 then invalid_arg "Netcheck: budget k must be >= 0";
  if window < 1 then invalid_arg "Netcheck: window must be >= 1";
  match Protocol.labelings_count p with
  | None -> Error max_int
  | Some lab_count ->
      let m = Protocol.num_edges p in
      let card = p.Protocol.space.Label.card in
      let cd_count = ipow r n in
      let bud_count = k + 1 in
      let w_eff = if k = 0 then 1 else window in
      let total =
        mul_sat (mul_sat (mul_sat lab_count cd_count) bud_count) w_eff
      in
      if total > max_states then Error total
      else begin
        let csr = Csr.create ~n ~capacity:(min total 65536) () in
        if total - 1 > Csr.max_succ csr then
          invalid_arg "Netcheck: state space too large for edge packing";
        let ex =
          {
            n;
            m;
            card;
            r;
            k;
            lab_count;
            cd_count;
            bud_count;
            w_eff;
            keys = Vec.create ~capacity:(min total 65536) ~dummy:0 ();
            csr;
            efault = Vec.create ~capacity:1024 ~dummy:(-1) ();
            parent = Vec.create ~dummy:(-1) ();
            parent_mask = Vec.create ~dummy:0 ();
            parent_fault = Vec.create ~dummy:(-1) ();
            cache = Trans_cache.create p ~input ~lab_count;
            weight = Array.init m (fun e -> ipow card (m - 1 - e));
          }
        in
        let state_of_key = Array.make total (-1) in
        let intern key ~parent ~mask ~fault =
          let id = Array.unsafe_get state_of_key key in
          if id >= 0 then id
          else begin
            let id = Vec.length ex.keys in
            Array.unsafe_set state_of_key key id;
            Vec.push ex.keys key;
            Vec.push ex.parent parent;
            Vec.push ex.parent_mask mask;
            Vec.push ex.parent_fault fault;
            id
          end
        in
        (* Initialization vertices: every labeling, full countdowns, full
           budget, window phase 0. *)
        let bw = bud_count * w_eff in
        for lab = 0 to lab_count - 1 do
          ignore
            (intern
               ((((lab * cd_count) + (cd_count - 1)) * bud_count + k) * w_eff)
               ~parent:(-1) ~mask:0 ~fault:(-1))
        done;
        let rpow = Array.init n (fun i -> ipow r (n - 1 - i)) in
        let sum_rpow = Array.fold_left ( + ) 0 rpow in
        let add = Array.make n 0 in
        let pow2n = 1 lsl n in
        let lo = ref 0 in
        while !lo < Vec.length ex.keys do
          let hi = Vec.length ex.keys in
          for id = !lo to hi - 1 do
            let key = Vec.unsafe_get ex.keys id in
            let phase = key mod ex.w_eff in
            let rest = key / ex.w_eff in
            let b = rest mod bud_count in
            let rest = rest / bud_count in
            let cd = rest mod cd_count in
            let lab = rest / cd_count in
            let forced = ref 0 in
            for i = 0 to n - 1 do
              let d = cd / Array.unsafe_get rpow i mod r in
              Array.unsafe_set add i ((r - d) * Array.unsafe_get rpow i);
              if d = 0 then forced := !forced lor (1 lsl i)
            done;
            let forced = !forced in
            let base_cd = cd - sum_rpow in
            let phase' = if ex.w_eff = 1 then 0 else (phase + 1) mod ex.w_eff in
            let recharge = phase' = 0 in
            let b_keep = if recharge then k else b in
            let b_spend = if recharge then k else b - 1 in
            for mask = 1 to pow2n - 1 do
              if mask land forced = forced then begin
                let packed = Trans_cache.step ex.cache ~lab_code:lab ~mask in
                let lab1 = packed lsr 1 in
                let changed = packed land 1 in
                let cdsum = ref base_cd in
                for i = 0 to n - 1 do
                  if mask land (1 lsl i) <> 0 then
                    cdsum := !cdsum + Array.unsafe_get add i
                done;
                let cd' = !cdsum in
                let tail = (cd' * bw) + (b_keep * ex.w_eff) + phase' in
                (* Fault-free continuation. *)
                let skey = (lab1 * cd_count * bw) + tail in
                let succ = intern skey ~parent:id ~mask ~fault:(-1) in
                Csr.push_edge ex.csr ~succ ~mask ~changed;
                Vec.push ex.efault (-1);
                (* One budgeted single-edge rewrite after the step. *)
                if b > 0 then begin
                  let tail_f = (cd' * bw) + (b_spend * ex.w_eff) + phase' in
                  for e = 0 to m - 1 do
                    let w = ex.weight.(e) in
                    let cur = lab1 / w mod card in
                    for c = 0 to card - 1 do
                      if c <> cur then begin
                        let lab2 = lab1 + ((c - cur) * w) in
                        let skey = (lab2 * cd_count * bw) + tail_f in
                        let fid = (e * card) + c in
                        let succ = intern skey ~parent:id ~mask ~fault:fid in
                        (* The changed bit tracks only the protocol step:
                           adversarial rewrites are not divergence. *)
                        Csr.push_edge ex.csr ~succ ~mask ~changed;
                        Vec.push ex.efault fid
                      end
                    done
                  done
                end
              end
            done;
            Csr.end_row ex.csr
          done;
          lo := hi
        done;
        last_stats_ref :=
          Some { states = Vec.length ex.keys; edges = Csr.num_edges ex.csr };
        Ok ex
      end

(* Iterative Tarjan over the CSR graph (the augmented graphs this checker
   targets are small, so the simple explicit-stack form suffices). *)
let scc_of_explored ex =
  let count = Vec.length ex.keys in
  let index = Array.make count (-1) in
  let lowlink = Array.make count 0 in
  let on_stack = Array.make count false in
  let comp = Array.make count (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let call = Stack.create () in
  let csr = ex.csr in
  for root = 0 to count - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, 0) call;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, child = Stack.pop call in
        if child < Csr.degree csr v then begin
          Stack.push (v, child + 1) call;
          let u = Csr.succ csr v child in
          if index.(u) < 0 then begin
            index.(u) <- !next_index;
            lowlink.(u) <- !next_index;
            incr next_index;
            Stack.push u stack;
            on_stack.(u) <- true;
            Stack.push (u, 0) call
          end
          else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let u = Stack.pop stack in
              on_stack.(u) <- false;
              comp.(u) <- !next_comp;
              if u = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  comp

(* Shortest intra-component path src -> dst as (mask, fault) pairs. *)
let path_within_scc ex comp ~src ~dst =
  if src = dst then Some []
  else begin
    let count = Vec.length ex.keys in
    let pred = Array.make count (-1) in
    let pred_mask = Array.make count 0 in
    let pred_fault = Array.make count (-1) in
    let queue = Queue.create () in
    pred.(src) <- src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let base = Csr.row_start ex.csr v in
      let deg = Csr.degree ex.csr v in
      let j = ref 0 in
      while (not !found) && !j < deg do
        let w = Csr.cell ex.csr (base + !j) in
        let u = Csr.succ_of_word ex.csr w in
        if comp.(u) = comp.(src) && pred.(u) < 0 then begin
          pred.(u) <- v;
          pred_mask.(u) <- Csr.mask_of_word ex.csr w;
          pred_fault.(u) <- Vec.get ex.efault (base + !j);
          if u = dst then found := true else Queue.add u queue
        end;
        incr j
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then acc
        else walk pred.(v) ((pred_mask.(v), pred_fault.(v)) :: acc)
      in
      Some (walk dst [])
    end
  end

let fault_of_id ex fid =
  if fid < 0 then None
  else Some { edge = fid / ex.card; code = fid mod ex.card }

let steps_of ex pairs =
  List.map
    (fun (mask, fid) ->
      { active = nodes_of_mask ex.n mask; fault = fault_of_id ex fid })
    pairs

let path_from_root ex id =
  let rec walk id acc =
    if Vec.get ex.parent id < 0 then (id, acc)
    else
      walk (Vec.get ex.parent id)
        ((Vec.get ex.parent_mask id, Vec.get ex.parent_fault id) :: acc)
  in
  let root, pairs = walk id [] in
  let lab = Vec.get ex.keys root / (ex.cd_count * ex.bud_count * ex.w_eff) in
  (lab, pairs)

let make_witness ex ~cycle_entry ~cycle_pairs =
  let init_code, prefix_pairs = path_from_root ex cycle_entry in
  {
    init_code;
    prefix = steps_of ex prefix_pairs;
    cycle = steps_of ex cycle_pairs;
  }

let check_label p ~input ~r ~k ~window ~max_states =
  match explore p ~input ~r ~k ~window ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      (* A protocol-changing edge inside an SCC: the protocol can be made
         to change labels infinitely often. *)
      let found = ref None in
      let count = Vec.length ex.keys in
      let id = ref 0 in
      while !found == None && !id < count do
        let base = Csr.row_start ex.csr !id in
        let deg = Csr.degree ex.csr !id in
        let cid = comp.(!id) in
        let j = ref 0 in
        while !found == None && !j < deg do
          let w = Csr.cell ex.csr (base + !j) in
          if Csr.changed_of_word w = 1 then begin
            let u = Csr.succ_of_word ex.csr w in
            if comp.(u) = cid then
              found :=
                Some
                  ( !id,
                    u,
                    (Csr.mask_of_word ex.csr w, Vec.get ex.efault (base + !j))
                  )
          end;
          incr j
        done;
        incr id
      done;
      match !found with
      | None -> Stabilizing
      | Some (v, u, pair) -> (
          match path_within_scc ex comp ~src:u ~dst:v with
          | None -> assert false (* u, v lie in the same SCC *)
          | Some back ->
              Oscillating (make_witness ex ~cycle_entry:v ~cycle_pairs:(pair :: back))))

let check_output p ~input ~r ~k ~window ~max_states =
  match explore p ~input ~r ~k ~window ~max_states with
  | Error needed -> Too_large { needed }
  | Ok ex -> (
      let comp = scc_of_explored ex in
      let count = Vec.length ex.keys in
      (* Outputs depend on the source labeling of an edge and the reacting
         node, so they are read off the transition cache; two distinct
         outputs for one node inside one SCC witness output divergence. *)
      let seen : (int * int, int * (int * (int * int))) Hashtbl.t =
        Hashtbl.create 1024
      in
      let conflict = ref None in
      let id = ref 0 in
      while !conflict == None && !id < count do
        let lab =
          Vec.unsafe_get ex.keys !id / (ex.cd_count * ex.bud_count * ex.w_eff)
        in
        let base = Csr.row_start ex.csr !id in
        let deg = Csr.degree ex.csr !id in
        let cid = comp.(!id) in
        let j = ref 0 in
        while !conflict == None && !j < deg do
          let w = Csr.cell ex.csr (base + !j) in
          let u = Csr.succ_of_word ex.csr w in
          if comp.(u) = cid then begin
            let mask = Csr.mask_of_word ex.csr w in
            let fid = Vec.get ex.efault (base + !j) in
            List.iter
              (fun node ->
                if !conflict == None then begin
                  let y = Trans_cache.output ex.cache ~lab_code:lab ~node in
                  match Hashtbl.find_opt seen (cid, node) with
                  | None ->
                      Hashtbl.replace seen (cid, node) (y, (!id, (mask, fid)))
                  | Some (y0, (src0, pair0)) ->
                      if y0 <> y then
                        conflict := Some ((src0, pair0), (!id, (mask, fid)), u)
                end)
              (nodes_of_mask ex.n mask)
          end;
          incr j
        done;
        incr id
      done;
      match !conflict with
      | None -> Stabilizing
      | Some ((src0, (mask0, fid0)), (src1, pair1), dst1) -> (
          (* Cycle through both conflicting edges:
             src0 -e0-> dst0 ~~> src1 -e1-> dst1 ~~> src0. *)
          let dst0 =
            let base = Csr.row_start ex.csr src0 in
            let rec find j =
              let w = Csr.cell ex.csr (base + j) in
              if
                Csr.mask_of_word ex.csr w = mask0
                && Vec.get ex.efault (base + j) = fid0
                && comp.(Csr.succ_of_word ex.csr w) = comp.(src0)
              then Csr.succ_of_word ex.csr w
              else find (j + 1)
            in
            find 0
          in
          match
            ( path_within_scc ex comp ~src:dst0 ~dst:src1,
              path_within_scc ex comp ~src:dst1 ~dst:src0 )
          with
          | Some mid, Some back ->
              let cycle_pairs = ((mask0, fid0) :: mid) @ (pair1 :: back) in
              Oscillating (make_witness ex ~cycle_entry:src0 ~cycle_pairs)
          | _ -> assert false))

(* Replay a witness on the boxed engine: protocol step, then the step's
   adversarial rewrite (if any). The cycle must return to its starting
   labeling and the *protocol* must either change the labeling inside the
   cycle or emit two distinct outputs at some node. *)
let replay p ~input w =
  let decode = p.Protocol.space.Label.decode in
  let apply_step config { active; fault } =
    let next = Engine.step p ~input config ~active in
    (match fault with
    | None -> ()
    | Some { edge; code } -> next.Protocol.labels.(edge) <- decode code);
    next
  in
  let init = Protocol.decode_config p w.init_code in
  let at_cycle = List.fold_left apply_step init w.prefix in
  let start_key = Protocol.config_key p at_cycle in
  let label_changed = ref false in
  let output_changed = ref false in
  let outputs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let config = ref at_cycle in
  List.iter
    (fun s ->
      let before = Protocol.config_key p !config in
      List.iter
        (fun node ->
          let _, y = Protocol.apply p ~input !config node in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        s.active;
      (* Protocol divergence is judged on the protocol step alone, before
         the step's adversarial rewrite is applied. *)
      let stepped = Engine.step p ~input !config ~active:s.active in
      if not (String.equal before (Protocol.config_key p stepped)) then
        label_changed := true;
      (match s.fault with
      | None -> ()
      | Some { edge; code } ->
          stepped.Protocol.labels.(edge) <- decode code);
      config := stepped)
    w.cycle;
  let returns = String.equal start_key (Protocol.config_key p !config) in
  returns && (!label_changed || !output_changed)

(* The packed twin of {!replay}: the same judgement through
   {!Kernel.step_into} on int label codes — a witness must reproduce the
   divergence on both execution engines. *)
let replay_packed p ~input w =
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  let kern = Kernel.create p ~input in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let src_o = Array.make n 0 and dst_o = Array.make n 0 in
  Kernel.load kern (Protocol.decode_config p w.init_code) ~labels:src
    ~outputs:src_o;
  let sref = ref src and dref = ref dst in
  let soref = ref src_o and doref = ref dst_o in
  let label_changed = ref false in
  let output_changed = ref false in
  let outputs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let do_step ~judge { active; fault } =
    Kernel.step_into kern ~src:!sref ~src_outputs:!soref ~dst:!dref
      ~dst_outputs:!doref ~active;
    if judge then begin
      let changed = ref false in
      for e = 0 to m - 1 do
        if !dref.(e) <> !sref.(e) then changed := true
      done;
      if !changed then label_changed := true;
      List.iter
        (fun node ->
          let y = !doref.(node) in
          match Hashtbl.find_opt outputs node with
          | None -> Hashtbl.replace outputs node y
          | Some y0 -> if y0 <> y then output_changed := true)
        active
    end;
    (match fault with
    | None -> ()
    | Some { edge; code } -> !dref.(edge) <- code);
    let tl = !sref and tlo = !soref in
    sref := !dref;
    soref := !doref;
    dref := tl;
    doref := tlo
  in
  List.iter (do_step ~judge:false) w.prefix;
  let start = Array.copy !sref in
  List.iter (do_step ~judge:true) w.cycle;
  let returns = ref true in
  for e = 0 to m - 1 do
    if start.(e) <> !sref.(e) then returns := false
  done;
  !returns && (!label_changed || !output_changed)
