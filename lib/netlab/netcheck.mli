(** Exhaustive r-stabilization certification under a budgeted label
    adversary.

    Augments the plain checker's states-graph (labeling x fairness
    countdown) with the adversary's remaining fault budget and position in
    the recharge window: between protocol steps the adversary may rewrite
    one edge to one arbitrary label, at most [k] times per window of
    [window] steps (the budget recharges when the window wraps).

    Divergence is {e protocol} divergence: adversarial rewrites never
    count as label changes, so [Stabilizing] means every admissible
    schedule x fault pattern reaches a point after which the protocol
    never changes a label (resp. output) again, and [Oscillating] carries
    a finite witness — an initial labeling plus a lasso of (activation
    set, optional fault) steps — that {!replay} re-verifies on the boxed
    engine.

    With [k = 0] the budget dimensions collapse and the graph coincides
    with the plain checker's, so verdicts agree with
    {!Stateless_checker.Checker} by construction (asserted differentially
    in [test_netlab.ml]). *)

(** One adversarial rewrite: edge [edge] is set to the label with code
    [code] immediately after the step's protocol reactions land. *)
type fault = { edge : int; code : int }

(** One step of a witness run: activate [active], then apply [fault]. *)
type step = { active : int list; fault : fault option }

type witness = {
  init_code : int;  (** encoded initial labeling (mixed radix) *)
  prefix : step list;  (** from the initial labeling to the cycle *)
  cycle : step list;  (** returns to its starting labeling *)
}

type verdict =
  | Stabilizing
  | Oscillating of witness
  | Too_large of { needed : int }
      (** the augmented graph needs [needed] states; raise [max_states] *)

type stats = { states : int; edges : int }

(** Size of the last explored graph ([None] before any exploration or
    after a [Too_large]). *)
val last_stats : unit -> stats option

(** [check_label p ~input ~r ~k ~window ~max_states] decides label
    r-stabilization under at most [k] single-edge rewrites per [window]
    steps, exhaustively over all initial labelings and r-fair schedules.
    @raise Invalid_argument when [r < 1], [k < 0], [window < 1], or the
    protocol has more than 20 nodes. *)
val check_label :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  k:int ->
  window:int ->
  max_states:int ->
  verdict

(** Output-stabilization analogue: some node can be made to emit two
    distinct outputs infinitely often. *)
val check_output :
  ('x, 'l) Stateless_core.Protocol.t ->
  input:'x array ->
  r:int ->
  k:int ->
  window:int ->
  max_states:int ->
  verdict

(** [replay p ~input w] re-runs the witness on {!Stateless_core.Engine}
    — protocol step, then the step's rewrite — and confirms the cycle
    returns to its starting labeling while the protocol changes a label
    or some node emits two distinct outputs within it. *)
val replay : ('x, 'l) Stateless_core.Protocol.t -> input:'x array -> witness -> bool

(** [replay_packed] is {!replay} through {!Stateless_core.Kernel} on
    packed int label codes — a witness must reproduce the same
    divergence on both execution engines (asserted for every stored
    lasso in [test_netlab.ml]). *)
val replay_packed :
  ('x, 'l) Stateless_core.Protocol.t -> input:'x array -> witness -> bool
