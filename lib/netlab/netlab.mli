(** Adversarial channel layer: faulty edges and crash-recover nodes over
    the fault-free engines.

    The paper's execution model delivers every written label instantly and
    reliably. This module interposes a typed channel between a node's
    write and its reader's next read, with four fault processes:

    - {b loss} — a label-changing write is dropped; the reader keeps
      seeing the stale label;
    - {b bounded delay} — delivery of a write is deferred by 1..max_delay
      steps through a small per-edge FIFO (a late delivery can clobber a
      fresher value: stale overwrite);
    - {b duplication / stale reread} — an edge reverts to the previous
      label it carried, as if an old packet were re-delivered;
    - {b crash-recover} — a node goes silent for [crash_len] steps
      (neither reacting nor refreshing its output) and wakes with its
      out-edges adversarially relabeled.

    All faults are chosen by a deterministic seeded adversary that may
    take at most {!budget}[.k] fault actions in every window of
    {!budget}[.window] steps. With [k = 0] the adversary consumes no
    randomness and the channel steppers are bit-identical to the
    fault-free {!Stateless_core.Engine} and {!Stateless_core.Kernel}
    runs — the differential tests in [test_netlab.ml] pin this down.

    {!Packed} and {!Boxed} implement the same step semantics over the
    packed and boxed representations, drawing identical decision
    sequences from the same seed: they are differential twins at every
    budget. The campaign layer at the bottom sweeps fault-rate levels
    over {!Stateless_core.Parrun} and reports recovery-time and
    output-degradation curves, mirroring [Faultlab]. *)

(** {1 Fault rates and adversary budget} *)

type rates = private {
  loss : float;  (** probability a label-changing write is dropped *)
  delay : float;  (** probability a write is delayed (loss+delay <= 1) *)
  max_delay : int;  (** delays are uniform on [1..max_delay]; >= 1 *)
  dup : float;  (** per-step probability of one stale-reread event *)
  crash : float;  (** per-step probability of one crash event *)
  crash_len : int;  (** steps a crashed node stays silent; >= 1 *)
}

(** Validating constructor; every rate defaults to [0].
    @raise Invalid_argument when a rate is outside [0,1], when
    [loss + delay > 1], or when [max_delay < 1] or [crash_len < 1]. *)
val rates :
  ?loss:float ->
  ?delay:float ->
  ?max_delay:int ->
  ?dup:float ->
  ?crash:float ->
  ?crash_len:int ->
  unit ->
  rates

(** At most [k] fault actions per window of [window] steps; the budget
    recharges at every step [t] with [t mod window = 0]. *)
type budget = { k : int; window : int }

(** @raise Invalid_argument when [k < 0] or [window < 1]. *)
val check_budget : budget -> unit

(** {1 Channel-aware steppers}

    One channel step, in both steppers, is:

    + budget recharge at window boundaries;
    + silent nodes count down; a node whose silence expires wakes with
      adversarially relabeled out-edges;
    + the scheduled non-silent nodes take a fault-free protocol step
      against the visible configuration;
    + each label-changing write of this step is, budget permitting, lost
      or delayed into the edge's FIFO;
    + queued writes whose due step arrived are delivered in enqueue
      order;
    + budget permitting, one duplication (stale reread) and one crash may
      fire.

    Decisions are drawn in this fixed order, so the packed and boxed
    steppers consume identical randomness from identical seeds. *)

(** Channel stepper over the packed {!Stateless_core.Kernel}. Like the
    kernel itself, an instance carries mutable scratch and is not
    domain-safe. *)
module Packed : sig
  type ('x, 'l) t

  (** [create p ~input ~rates ~budget ~schedule ~seed ~init] builds a
      channel run starting from configuration [init]. [?kernel] reuses an
      existing kernel (tables already built) — the channel does not
      mutate kernel state beyond its memo caches. *)
  val create :
    ?kernel:('x, 'l) Stateless_core.Kernel.t ->
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    rates:rates ->
    budget:budget ->
    schedule:Stateless_core.Schedule.t ->
    seed:int ->
    init:'l Stateless_core.Protocol.config ->
    ('x, 'l) t

  val step : ('x, 'l) t -> unit
  val run : ('x, 'l) t -> steps:int -> unit

  (** Read-only views of the current packed state (do not mutate). *)
  val labels : ('x, 'l) t -> int array

  val outputs : ('x, 'l) t -> int array
  val steps_done : ('x, 'l) t -> int

  (** Total fault actions the adversary has taken so far. *)
  val faults_injected : ('x, 'l) t -> int

  (** The current visible configuration, decoded fresh. *)
  val config : ('x, 'l) t -> 'l Stateless_core.Protocol.config

  (** End-of-storm cleanup: drop all pending deliveries and wake every
      silent node in place (without the adversarial wake relabel). After
      [flush] the visible configuration evolves fault-free. *)
  val flush : ('x, 'l) t -> unit
end

(** Channel stepper over boxed configurations and
    {!Stateless_core.Engine.step_into} — the differential twin of
    {!Packed}. *)
module Boxed : sig
  type ('x, 'l) t

  val create :
    ('x, 'l) Stateless_core.Protocol.t ->
    input:'x array ->
    rates:rates ->
    budget:budget ->
    schedule:Stateless_core.Schedule.t ->
    seed:int ->
    init:'l Stateless_core.Protocol.config ->
    ('x, 'l) t

  val step : ('x, 'l) t -> unit
  val run : ('x, 'l) t -> steps:int -> unit
  val steps_done : ('x, 'l) t -> int
  val faults_injected : ('x, 'l) t -> int
  val config : ('x, 'l) t -> 'l Stateless_core.Protocol.config
  val flush : ('x, 'l) t -> unit
end

(** {1 Degradation / recovery campaigns} *)

type run_result = {
  degraded_steps : int;
      (** storm steps on which the scenario's health probe failed *)
  recovery : int option;
      (** post-storm fault-free recovery time; [None] = did not recover
          within the step bound *)
}

type measure_fn =
  rates:rates ->
  budget:budget ->
  storm:int ->
  seed:int ->
  max_steps:int ->
  run_result

type batch_measure_fn =
  rates:rates array ->
  budget:budget ->
  storm:int ->
  seeds:int array ->
  max_steps:int ->
  run_result array
(** Measures a contiguous block of the level × seed grid: element [t] is
    exactly what {!measure_fn} returns for [(rates.(t), seeds.(t))].
    Storms stay per-instance (each run's adversary RNG draw order is
    coupled to its own trajectory); the fault-free post-storm recovery
    phase runs in lock-step through {!Stateless_core.Batch}. *)

type scenario = {
  name : string;
  schedule_name : string;
  fresh : unit -> measure_fn;
      (** build per-domain state (kernel, healthy reference); the
          returned closure must be deterministic in its arguments *)
  fresh_batch : unit -> batch_measure_fn;
      (** the batched twin over the same kernel, bit-identical per index
          to [fresh]'s closure; also once per domain *)
}

(** Example 1 on K_n (default [n = 4]): runs the storm from the healthy
    settled state; a step is degraded when the visible outputs differ
    from the healthy settled outputs, and recovery is the post-storm
    output settle time. *)
val example1 : ?n:int -> unit -> scenario

(** The D-counter on an odd ring (defaults [n = 5], [d = 8]): a step is
    degraded when the per-node counter values disagree, and recovery is
    re-locking — the first post-storm step from which all nodes agree for
    [d] consecutive synchronous steps. *)
val d_counter : ?n:int -> ?d:int -> unit -> scenario

val default_scenarios : unit -> scenario list

(** CLI names accepted by {!scenario_by_name}: ["example1"], ["counter"]. *)
val scenario_names : string list

val scenario_by_name : ?n:int -> string -> scenario option

type level_stats = {
  level : rates;
  runs : int;
  recovered : int;
  mean_recovery : float;  (** over recovered runs *)
  p50 : int;  (** nearest-rank percentiles of recovery time *)
  p95 : int;
  worst : int;
  mean_degraded : float;  (** mean fraction of storm steps degraded *)
}

type campaign = {
  scenario_name : string;
  schedule : string;
  budget_k : int;
  budget_window : int;
  storm : int;
  runs_per_level : int;
  levels : level_stats list;
}

(** The default sweep: loss and delay rising together with proportional
    duplication and a light crash process. *)
val default_levels : rates list

(** Journal codec for one level row: each run stored as a
    [[degraded_steps, recovery]] pair ([recovery] null when the run never
    re-locked). Int-only, so the round-trip is exact. *)
val codec : run_result array Stateless_campaign.Campaign.codec

(** [cells ~budget scenario] compiles the level sweep into matrix
    cells — one per rate level, key ["netlab/<scenario>/l<i>"], covering
    the level's whole seed block. Deadlines are polled between seeds (or
    lock-step blocks when [batch > 1]); retries reseed by
    [attempt * Campaign.reseed_stride]. Config strings exclude [domains]
    and [batch] (results are identical across both). *)
val cells :
  ?levels:rates list ->
  ?seeds:int ->
  ?storm:int ->
  ?max_steps:int ->
  ?seed0:int ->
  ?batch:int ->
  budget:budget ->
  scenario ->
  run_result array Stateless_campaign.Campaign.cell array

(** [run_matrix ~budget scenario] runs the level sweep through the
    campaign orchestrator under [policy] and merges records in matrix
    order into the aggregated {!campaign} plus ok/timeout/error counts.
    A level whose cell timed out or errored degrades to zero
    recoveries. *)
val run_matrix :
  ?levels:rates list ->
  ?seeds:int ->
  ?storm:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  ?policy:Stateless_campaign.Campaign.policy ->
  budget:budget ->
  scenario ->
  campaign * Stateless_campaign.Campaign.counts

(** [run ~budget scenario] measures every level x seed cell of the grid
    (defaults: {!default_levels}, 20 seeds, storm 400, max_steps 10000)
    through the campaign orchestrator: results are bit-identical for
    every [domains] value. [seed0] (default 1) is the first per-run seed —
    runs use [seed0 .. seed0 + seeds - 1]. [batch] (default 1) measures
    blocks of that many seeds through the scenario's batched context;
    campaigns are identical for every [batch] value. Equivalent to
    [fst (run_matrix ...)] under the default policy. *)
val run :
  ?levels:rates list ->
  ?seeds:int ->
  ?storm:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?seed0:int ->
  ?batch:int ->
  budget:budget ->
  scenario ->
  campaign

val print_campaign : out_channel -> campaign -> unit

(** [write_json ?host ?batch ?cells ?certification oc campaigns] emits
    the [BENCH_netlab.json] document. [host] is a preformatted JSON
    object (as in [Faultlab.host_json]); [batch], when given, is the
    lock-step batch size the campaigns were re-run at and whether they
    matched the per-instance campaigns exactly; [cells] is the
    orchestrator's [(ok, timeout, error)] accounting; [certification]
    rows are preformatted JSON objects from the bounded-adversary
    checker (see {!Netcheck}). *)
val write_json :
  ?host:string ->
  ?batch:int * bool ->
  ?cells:int * int * int ->
  ?certification:string list ->
  out_channel ->
  campaign list ->
  unit
