(* Adversarial channel layer over the execution engines.

   The paper's model assumes perfectly reliable edges: the label a node
   writes is the label its successor reads next. This module relaxes that
   assumption with four per-edge/per-node fault processes — loss, bounded
   delay, duplication (stale reread) and crash-recover nodes — driven by a
   deterministic seeded adversary that may take at most [k] fault actions
   per window of [window] steps.

   One step of a channel-aware run, in order (both steppers follow this
   exactly, with identical RNG draw sequences):

     1. window boundary: at steps t ≡ 0 (mod window) the budget recharges;
     2. wakes: nodes whose silence expires relabel their out-edges with
        adversarially drawn labels, visible immediately;
     3. the protocol step: the scheduled, non-silent nodes react to the
        visible configuration (exactly {!Engine.step_into} /
        {!Kernel.step_into});
     4. write faults: each label-changing write of an active node is,
        budget permitting, lost (the reader keeps seeing the stale label)
        or delayed 1..max_delay steps through a per-edge FIFO;
     5. deliveries: queued writes whose due step arrived become visible
        (a delayed write can clobber a fresher one: stale delivery);
     6. duplication: the adversary may revert one edge to the previous
        label it carried (the reader re-reads an old value);
     7. crash: the adversary may silence one node for crash_len steps; a
        silent node neither reacts nor updates its output, and on waking
        its out-edges are adversarially relabeled (step 2).

   With budget k = 0 the adversary can never act: no RNG draw occurs, the
   FIFOs stay empty, and steps 3 is the whole story — the channel steppers
   are bit-identical to the fault-free engines, which the differential
   tests in test_netlab.ml pin down.

   The boxed stepper ({!Boxed}) runs on boxed configurations through
   {!Engine.step_into}; the packed stepper ({!Packed}) on int label codes
   through {!Kernel.step_into}. Both draw the same decisions from the same
   seed, so they are differential twins at every budget, not only at 0. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Batch = Stateless_core.Batch
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Clique_example = Stateless_core.Clique_example
module Bench_json = Stateless_core.Bench_json
module D_counter = Stateless_counter.D_counter
module Digraph = Stateless_graph.Digraph
module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value

(* ------------------------------------------------------------------ *)
(* Fault processes and the budgeted adversary                          *)
(* ------------------------------------------------------------------ *)

type rates = {
  loss : float;
  delay : float;
  max_delay : int;
  dup : float;
  crash : float;
  crash_len : int;
}

let check_rates r =
  let frac name v =
    if not (v >= 0.0 && v <= 1.0) then
      invalid_arg (Printf.sprintf "Netlab: %s rate %g not in [0, 1]" name v)
  in
  frac "loss" r.loss;
  frac "delay" r.delay;
  frac "dup" r.dup;
  frac "crash" r.crash;
  if r.loss +. r.delay > 1.0 then
    invalid_arg "Netlab: loss + delay must not exceed 1 (one draw decides both)";
  if r.max_delay < 1 then invalid_arg "Netlab: max_delay must be >= 1";
  if r.crash_len < 1 then invalid_arg "Netlab: crash_len must be >= 1"

let rates ?(loss = 0.0) ?(delay = 0.0) ?(max_delay = 4) ?(dup = 0.0)
    ?(crash = 0.0) ?(crash_len = 2) () =
  let r = { loss; delay; max_delay; dup; crash; crash_len } in
  check_rates r;
  r

type budget = { k : int; window : int }

let check_budget b =
  if b.k < 0 then invalid_arg "Netlab: budget k must be >= 0";
  if b.window < 1 then invalid_arg "Netlab: budget window must be >= 1"

(* The decision engine shared by both steppers. All randomness lives here
   and in the wake relabeling; decisions are drawn in a fixed order per
   step, and a draw happens only when the remaining budget is positive —
   so a zero budget consumes no randomness at all, and both steppers
   consume identical draw sequences at every budget. *)
type adv = {
  rng : Random.State.t;
  rates : rates;
  budget : budget;
  mutable remaining : int;
  mutable injected : int;
}

type write_action = Deliver | Lose | Delay of int

let adv_make ~rates ~budget ~seed =
  check_rates rates;
  check_budget budget;
  {
    rng = Random.State.make [| seed |];
    rates;
    budget;
    remaining = 0;
    injected = 0;
  }

let adv_begin_step a ~t = if t mod a.budget.window = 0 then a.remaining <- a.budget.k

let spend a =
  a.remaining <- a.remaining - 1;
  a.injected <- a.injected + 1

let adv_on_write a =
  if a.remaining = 0 then Deliver
  else
    let u = Random.State.float a.rng 1.0 in
    if u < a.rates.loss then begin
      spend a;
      Lose
    end
    else if u < a.rates.loss +. a.rates.delay then begin
      spend a;
      Delay (1 + Random.State.int a.rng a.rates.max_delay)
    end
    else Deliver

let adv_fires a rate =
  a.remaining > 0
  &&
  let u = Random.State.float a.rng 1.0 in
  if u < rate then begin
    spend a;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Packed channel stepper (over Kernel)                                *)
(* ------------------------------------------------------------------ *)

module Packed = struct
  type ('x, 'l) t = {
    kern : ('x, 'l) Kernel.t;
    schedule : Schedule.t;
    adv : adv;
    n : int;
    m : int;
    card : int;
    out_edges : int array array;
    mutable src : int array;
    mutable dst : int array;
    mutable src_o : int array;
    mutable dst_o : int array;
    stale : int array;  (* per edge: the previous visible label code *)
    silent : int array;  (* per node: steps of silence left (0 = alive) *)
    cap : int;  (* per-edge FIFO capacity: max_delay pending writes *)
    fifo_code : int array;  (* m * cap, slots e*cap .. e*cap+len-1 *)
    fifo_due : int array;
    fifo_len : int array;
    mutable step_count : int;
  }

  let create ?kernel p ~input ~rates ~budget ~schedule ~seed ~init =
    let n = Protocol.num_nodes p in
    let m = Protocol.num_edges p in
    let kern =
      match kernel with Some k -> k | None -> Kernel.create p ~input
    in
    let src = Array.make m 0 and dst = Array.make m 0 in
    let src_o = Array.make n 0 and dst_o = Array.make n 0 in
    Kernel.load kern init ~labels:src ~outputs:src_o;
    let cap = rates.max_delay in
    {
      kern;
      schedule;
      adv = adv_make ~rates ~budget ~seed;
      n;
      m;
      card = p.Protocol.space.Label.card;
      out_edges = Array.init n (Digraph.out_edges p.Protocol.graph);
      src;
      dst;
      src_o;
      dst_o;
      stale = Array.copy src;
      silent = Array.make n 0;
      cap;
      fifo_code = Array.make (m * cap) 0;
      fifo_due = Array.make (m * cap) 0;
      fifo_len = Array.make m 0;
      step_count = 0;
    }

  let enqueue ch e code due =
    let l = ch.fifo_len.(e) in
    (* At most one write per edge per step and every entry is due within
       max_delay steps, so the FIFO cannot overflow; the guard is belt and
       braces. *)
    if l < ch.cap then begin
      ch.fifo_code.((e * ch.cap) + l) <- code;
      ch.fifo_due.((e * ch.cap) + l) <- due;
      ch.fifo_len.(e) <- l + 1
    end

  (* Make every queued write with [due <= t] visible, in enqueue order,
     compacting the rest. *)
  let deliver_due ch t =
    for e = 0 to ch.m - 1 do
      let l = ch.fifo_len.(e) in
      if l > 0 then begin
        let base = e * ch.cap in
        let kept = ref 0 in
        for j = 0 to l - 1 do
          if ch.fifo_due.(base + j) <= t then begin
            let c = ch.fifo_code.(base + j) in
            if c <> ch.dst.(e) then begin
              ch.stale.(e) <- ch.dst.(e);
              ch.dst.(e) <- c
            end
          end
          else begin
            ch.fifo_code.(base + !kept) <- ch.fifo_code.(base + j);
            ch.fifo_due.(base + !kept) <- ch.fifo_due.(base + j);
            incr kept
          end
        done;
        ch.fifo_len.(e) <- !kept
      end
    done

  let step ch =
    let t = ch.step_count in
    let a = ch.adv in
    adv_begin_step a ~t;
    (* Wakes: silence expires before the step; a waking node's out-edges
       are adversarially relabeled and it participates this step. *)
    for i = 0 to ch.n - 1 do
      if ch.silent.(i) > 0 then begin
        ch.silent.(i) <- ch.silent.(i) - 1;
        if ch.silent.(i) = 0 then
          Array.iter
            (fun e ->
              let c = Random.State.int a.rng ch.card in
              if c <> ch.src.(e) then begin
                ch.stale.(e) <- ch.src.(e);
                ch.src.(e) <- c
              end)
            ch.out_edges.(i)
      end
    done;
    let active = ch.schedule.Schedule.active t in
    let alive =
      if Array.exists (fun s -> s > 0) ch.silent then
        List.filter (fun i -> ch.silent.(i) = 0) active
      else active
    in
    Kernel.step_into ch.kern ~src:ch.src ~src_outputs:ch.src_o ~dst:ch.dst
      ~dst_outputs:ch.dst_o ~active:alive;
    (* Write faults on this step's label-changing writes. *)
    List.iter
      (fun i ->
        Array.iter
          (fun e ->
            if ch.dst.(e) <> ch.src.(e) then
              match adv_on_write a with
              | Deliver -> ch.stale.(e) <- ch.src.(e)
              | Lose -> ch.dst.(e) <- ch.src.(e)
              | Delay d ->
                  enqueue ch e ch.dst.(e) (t + d);
                  ch.dst.(e) <- ch.src.(e))
          ch.out_edges.(i))
      alive;
    deliver_due ch t;
    if adv_fires a a.rates.dup then begin
      let e = Random.State.int a.rng ch.m in
      if ch.stale.(e) <> ch.dst.(e) then begin
        let old = ch.dst.(e) in
        ch.dst.(e) <- ch.stale.(e);
        ch.stale.(e) <- old
      end
    end;
    if adv_fires a a.rates.crash then begin
      let i = Random.State.int a.rng ch.n in
      (* crash_len + 1 because silence is decremented at step start: the
         node misses exactly crash_len activations, then wakes. *)
      if ch.silent.(i) = 0 then ch.silent.(i) <- a.rates.crash_len + 1
    end;
    let tl = ch.src and tlo = ch.src_o in
    ch.src <- ch.dst;
    ch.src_o <- ch.dst_o;
    ch.dst <- tl;
    ch.dst_o <- tlo;
    ch.step_count <- t + 1

  let run ch ~steps =
    for _ = 1 to steps do
      step ch
    done

  let labels ch = ch.src
  let outputs ch = ch.src_o
  let steps_done ch = ch.step_count
  let faults_injected ch = ch.adv.injected
  let config ch = Kernel.store ch.kern ~labels:ch.src ~outputs:ch.src_o

  (* End-of-storm cleanup: pending deliveries are dropped (lost with the
     storm) and silent nodes wake in place, without the adversarial
     relabel — their out-edges keep whatever the channel last showed. *)
  let flush ch =
    Array.fill ch.fifo_len 0 ch.m 0;
    Array.fill ch.silent 0 ch.n 0
end

(* ------------------------------------------------------------------ *)
(* Boxed channel stepper (over Engine)                                 *)
(* ------------------------------------------------------------------ *)

module Boxed = struct
  type ('x, 'l) t = {
    p : ('x, 'l) Protocol.t;
    input : 'x array;
    schedule : Schedule.t;
    adv : adv;
    n : int;
    m : int;
    card : int;
    encode : 'l -> int;
    decode : int -> 'l;
    out_edges : int array array;
    mutable src : 'l Protocol.config;
    mutable dst : 'l Protocol.config;
    stale : 'l array;
    silent : int array;
    cap : int;
    fifo_lab : 'l array;
    fifo_due : int array;
    fifo_len : int array;
    mutable step_count : int;
  }

  let create p ~input ~rates ~budget ~schedule ~seed ~init =
    let n = Protocol.num_nodes p in
    let m = Protocol.num_edges p in
    let space = p.Protocol.space in
    let copy (c : 'l Protocol.config) =
      {
        Protocol.labels = Array.copy c.Protocol.labels;
        outputs = Array.copy c.Protocol.outputs;
      }
    in
    let cap = rates.max_delay in
    {
      p;
      input;
      schedule;
      adv = adv_make ~rates ~budget ~seed;
      n;
      m;
      card = space.Label.card;
      encode = space.Label.encode;
      decode = space.Label.decode;
      out_edges = Array.init n (Digraph.out_edges p.Protocol.graph);
      src = copy init;
      dst = copy init;
      stale = Array.copy init.Protocol.labels;
      silent = Array.make n 0;
      cap;
      fifo_lab = Array.make (m * cap) init.Protocol.labels.(0);
      fifo_due = Array.make (m * cap) 0;
      fifo_len = Array.make m 0;
      step_count = 0;
    }

  let enqueue ch e lab due =
    let l = ch.fifo_len.(e) in
    if l < ch.cap then begin
      ch.fifo_lab.((e * ch.cap) + l) <- lab;
      ch.fifo_due.((e * ch.cap) + l) <- due;
      ch.fifo_len.(e) <- l + 1
    end

  let deliver_due ch t =
    let dst = ch.dst.Protocol.labels in
    for e = 0 to ch.m - 1 do
      let l = ch.fifo_len.(e) in
      if l > 0 then begin
        let base = e * ch.cap in
        let kept = ref 0 in
        for j = 0 to l - 1 do
          if ch.fifo_due.(base + j) <= t then begin
            let c = ch.fifo_lab.(base + j) in
            if ch.encode c <> ch.encode dst.(e) then begin
              ch.stale.(e) <- dst.(e);
              dst.(e) <- c
            end
          end
          else begin
            ch.fifo_lab.(base + !kept) <- ch.fifo_lab.(base + j);
            ch.fifo_due.(base + !kept) <- ch.fifo_due.(base + j);
            incr kept
          end
        done;
        ch.fifo_len.(e) <- !kept
      end
    done

  let step ch =
    let t = ch.step_count in
    let a = ch.adv in
    let src = ch.src.Protocol.labels in
    adv_begin_step a ~t;
    for i = 0 to ch.n - 1 do
      if ch.silent.(i) > 0 then begin
        ch.silent.(i) <- ch.silent.(i) - 1;
        if ch.silent.(i) = 0 then
          Array.iter
            (fun e ->
              let c = Random.State.int a.rng ch.card in
              if c <> ch.encode src.(e) then begin
                ch.stale.(e) <- src.(e);
                src.(e) <- ch.decode c
              end)
            ch.out_edges.(i)
      end
    done;
    let active = ch.schedule.Schedule.active t in
    let alive =
      if Array.exists (fun s -> s > 0) ch.silent then
        List.filter (fun i -> ch.silent.(i) = 0) active
      else active
    in
    Engine.step_into ch.p ~input:ch.input ch.src ~active:alive ~into:ch.dst;
    let dst = ch.dst.Protocol.labels in
    List.iter
      (fun i ->
        Array.iter
          (fun e ->
            if ch.encode dst.(e) <> ch.encode src.(e) then
              match adv_on_write a with
              | Deliver -> ch.stale.(e) <- src.(e)
              | Lose -> dst.(e) <- src.(e)
              | Delay d ->
                  enqueue ch e dst.(e) (t + d);
                  dst.(e) <- src.(e))
          ch.out_edges.(i))
      alive;
    deliver_due ch t;
    if adv_fires a a.rates.dup then begin
      let e = Random.State.int a.rng ch.m in
      if ch.encode ch.stale.(e) <> ch.encode dst.(e) then begin
        let old = dst.(e) in
        dst.(e) <- ch.stale.(e);
        ch.stale.(e) <- old
      end
    end;
    if adv_fires a a.rates.crash then begin
      let i = Random.State.int a.rng ch.n in
      if ch.silent.(i) = 0 then ch.silent.(i) <- a.rates.crash_len + 1
    end;
    let tl = ch.src in
    ch.src <- ch.dst;
    ch.dst <- tl;
    ch.step_count <- t + 1

  let run ch ~steps =
    for _ = 1 to steps do
      step ch
    done

  let steps_done ch = ch.step_count
  let faults_injected ch = ch.adv.injected

  let config ch =
    {
      Protocol.labels = Array.copy ch.src.Protocol.labels;
      outputs = Array.copy ch.src.Protocol.outputs;
    }

  let flush ch =
    Array.fill ch.fifo_len 0 ch.m 0;
    Array.fill ch.silent 0 ch.n 0
end

(* ------------------------------------------------------------------ *)
(* Campaign: degradation during a fault storm, recovery after it       *)
(* ------------------------------------------------------------------ *)

type run_result = { degraded_steps : int; recovery : int option }

type measure_fn =
  rates:rates ->
  budget:budget ->
  storm:int ->
  seed:int ->
  max_steps:int ->
  run_result

type batch_measure_fn =
  rates:rates array ->
  budget:budget ->
  storm:int ->
  seeds:int array ->
  max_steps:int ->
  run_result array

type scenario = {
  name : string;
  schedule_name : string;
  fresh : unit -> measure_fn;
  fresh_batch : unit -> batch_measure_fn;
}

(* The storm phase is inherently per-instance — each run owns a seeded
   adversary whose RNG draw order is coupled to that run's own trajectory
   (FIFOs, silences), so lock-stepping storms would change the draws. The
   batched contexts therefore run storms per instance (on the shared
   kernel) and batch the fault-free post-storm phase, where the wall time
   dominates for recovery-heavy campaigns. *)

(* Example 1 on K_n: the reference is the healthy run's settled outputs;
   a storm step is degraded when the visible outputs differ from them, and
   recovery is the post-storm output settle time. *)
let example1 ?(n = 4) () =
  let n = max 3 n in
  let p = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init p in
  let schedule = Schedule.synchronous n in
  let fresh () =
    let kern = Kernel.create p ~input in
    let healthy =
      match Kernel.settle kern ~init ~schedule ~max_steps:10_000 with
      | Some h -> h
      | None ->
          invalid_arg "Netlab.example1: healthy run did not settle"
    in
    let reference = healthy.Engine.settled_outputs in
    let steady = healthy.Engine.horizon_config in
    fun ~rates ~budget ~storm ~seed ~max_steps ->
      let ch =
        Packed.create ~kernel:kern p ~input ~rates ~budget ~schedule ~seed
          ~init:steady
      in
      let degraded = ref 0 in
      for _ = 1 to storm do
        Packed.step ch;
        let outs = Packed.outputs ch in
        let ok = ref true in
        for i = 0 to n - 1 do
          if outs.(i) <> reference.(i) then ok := false
        done;
        if not !ok then incr degraded
      done;
      Packed.flush ch;
      let post = Packed.config ch in
      let recovery =
        match Kernel.settle kern ~init:post ~schedule ~max_steps with
        | Some s -> Some s.Engine.settle_time
        | None -> None
      in
      { degraded_steps = !degraded; recovery }
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    let healthy =
      match Kernel.settle kern ~init ~schedule ~max_steps:10_000 with
      | Some h -> h
      | None -> invalid_arg "Netlab.example1: healthy run did not settle"
    in
    let reference = healthy.Engine.settled_outputs in
    let steady = healthy.Engine.horizon_config in
    fun ~rates ~budget ~storm ~seeds ~max_steps ->
      let b = Array.length seeds in
      let degraded = Array.make b 0 in
      let posts =
        Array.init b (fun t ->
            let ch =
              Packed.create ~kernel:kern p ~input ~rates:rates.(t) ~budget
                ~schedule ~seed:seeds.(t) ~init:steady
            in
            for _ = 1 to storm do
              Packed.step ch;
              let outs = Packed.outputs ch in
              let ok = ref true in
              for i = 0 to n - 1 do
                if outs.(i) <> reference.(i) then ok := false
              done;
              if not !ok then degraded.(t) <- degraded.(t) + 1
            done;
            Packed.flush ch;
            Packed.config ch)
      in
      let settled = Batch.settle bt ~inits:posts ~schedule ~max_steps in
      Array.init b (fun t ->
          {
            degraded_steps = degraded.(t);
            recovery =
              (match settled.(t) with
              | Some s -> Some s.Engine.settle_time
              | None -> None);
          })
  in
  {
    name = Printf.sprintf "example1_k%d" n;
    schedule_name = schedule.Schedule.name;
    fresh;
    fresh_batch;
  }

(* The D-counter: a storm step is degraded when the per-node counters
   disagree; recovery is re-locking — the first post-storm step from which
   the counters agree for d consecutive synchronous steps. *)
let d_counter ?(n = 5) ?(d = 8) () =
  let t = D_counter.make ~n ~d () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let schedule = Schedule.synchronous n in
  let steady =
    Engine.run p ~input
      ~init:(Protocol.uniform_config p (p.Protocol.space.Label.decode 0))
      ~schedule ~steps:(D_counter.burn_in t)
  in
  let m = Protocol.num_edges p in
  let first_out =
    Array.init n (fun j -> (Digraph.out_edges p.Protocol.graph j).(0))
  in
  let fresh () =
    let kern = Kernel.create p ~input in
    let counter_at labels j =
      let _, (_, _, c) = Kernel.decode_label kern labels.(first_out.(j)) in
      c
    in
    let agreed labels =
      let c0 = counter_at labels 0 in
      let rec go j = j >= n || (counter_at labels j = c0 && go (j + 1)) in
      go 1
    in
    let bufs = Array.init 2 (fun _ -> Array.make m 0) in
    let obufs = Array.init 2 (fun _ -> Array.make n 0) in
    let everyone = List.init n Fun.id in
    fun ~rates ~budget ~storm ~seed ~max_steps ->
      let ch =
        Packed.create ~kernel:kern p ~input ~rates ~budget ~schedule ~seed
          ~init:steady
      in
      let degraded = ref 0 in
      for _ = 1 to storm do
        Packed.step ch;
        if not (agreed (Packed.labels ch)) then incr degraded
      done;
      Packed.flush ch;
      let post = Packed.config ch in
      (* Re-lock loop, as in Faultlab's d_counter scenario. *)
      let cur = ref bufs.(0) and curo = ref obufs.(0) in
      let nxt = ref bufs.(1) and nxto = ref obufs.(1) in
      Kernel.load kern post ~labels:!cur ~outputs:!curo;
      let run_len = ref 0 in
      let found = ref None in
      let s = ref 0 in
      while !found = None && !s <= max_steps do
        if agreed !cur then begin
          incr run_len;
          if !run_len >= d then found := Some (!s - d + 1)
        end
        else run_len := 0;
        Kernel.step_into kern ~src:!cur ~src_outputs:!curo ~dst:!nxt
          ~dst_outputs:!nxto ~active:everyone;
        let tl = !cur and to_ = !curo in
        cur := !nxt;
        curo := !nxto;
        nxt := tl;
        nxto := to_;
        incr s
      done;
      { degraded_steps = !degraded; recovery = !found }
  in
  let fresh_batch () =
    let kern = Kernel.create p ~input in
    let bt = Batch.create kern in
    let counter_at labels j =
      let _, (_, _, c) = Kernel.decode_label kern labels.(first_out.(j)) in
      c
    in
    let agreed labels =
      let c0 = counter_at labels 0 in
      let rec go j = j >= n || (counter_at labels j = c0 && go (j + 1)) in
      go 1
    in
    let counter_at_plane j nd =
      let _, (_, _, c) =
        Kernel.decode_label kern (Batch.label_code bt ~j first_out.(nd))
      in
      c
    in
    let agreed_plane j =
      let c0 = counter_at_plane j 0 in
      let rec go nd = nd >= n || (counter_at_plane j nd = c0 && go (nd + 1)) in
      go 1
    in
    let everyone = List.init n Fun.id in
    fun ~rates ~budget ~storm ~seeds ~max_steps ->
      let b = Array.length seeds in
      let degraded = Array.make b 0 in
      let posts =
        Array.init b (fun t ->
            let ch =
              Packed.create ~kernel:kern p ~input ~rates:rates.(t) ~budget
                ~schedule ~seed:seeds.(t) ~init:steady
            in
            for _ = 1 to storm do
              Packed.step ch;
              if not (agreed (Packed.labels ch)) then
                degraded.(t) <- degraded.(t) + 1
            done;
            Packed.flush ch;
            Packed.config ch)
      in
      (* Batched re-lock: the per-instance loop, lock-stepped; an instance
         retires the moment its agreement window fills. *)
      Batch.load_block bt posts;
      let found = Array.make b None in
      let run_len = Array.make b 0 in
      let s = ref 0 in
      while Batch.live_count bt > 0 && !s <= max_steps do
        for j = 0 to b - 1 do
          if Batch.is_live bt ~j then
            if agreed_plane j then begin
              run_len.(j) <- run_len.(j) + 1;
              if run_len.(j) >= d then begin
                found.(j) <- Some (!s - d + 1);
                Batch.retire bt ~j
              end
            end
            else run_len.(j) <- 0
        done;
        Batch.step bt ~active:everyone;
        incr s
      done;
      Array.init b (fun t ->
          { degraded_steps = degraded.(t); recovery = found.(t) })
  in
  {
    name = Printf.sprintf "d_counter_n%d_d%d" n d;
    schedule_name = schedule.Schedule.name;
    fresh;
    fresh_batch;
  }

let default_scenarios () = [ example1 (); d_counter () ]
let scenario_names = [ "example1"; "counter" ]

let scenario_by_name ?n name =
  match name with
  | "example1" -> Some (example1 ?n ())
  | "counter" -> Some (d_counter ?n ())
  | _ -> None

type level_stats = {
  level : rates;
  runs : int;
  recovered : int;
  mean_recovery : float;
  p50 : int;
  p95 : int;
  worst : int;
  mean_degraded : float;  (* mean fraction of storm steps degraded *)
}

type campaign = {
  scenario_name : string;
  schedule : string;
  budget_k : int;
  budget_window : int;
  storm : int;
  runs_per_level : int;
  levels : level_stats list;
}

(* Loss and delay rising together, with proportional duplication and a
   light crash process — the "curves as rates rise" sweep. *)
let default_levels =
  List.map
    (fun (l, d) ->
      rates ~loss:l ~delay:d ~max_delay:4 ~dup:(l /. 2.) ~crash:(d /. 4.)
        ~crash_len:2 ())
    [ (0.0, 0.0); (0.05, 0.05); (0.15, 0.10); (0.30, 0.20); (0.50, 0.30) ]

let percentile sorted q =
  let k = Array.length sorted in
  if k = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float k)) - 1 in
    sorted.(max 0 (min (k - 1) rank))

(* One matrix cell per rate level covering its whole seed block; the
   codec stores each run as a [degraded_steps, recovery] pair (recovery
   [Null] when the run never re-locked). Results are int-only, so the
   round-trip is exact and replayed merges stay bit-identical. *)
let codec : run_result array Campaign.codec =
  {
    encode =
      (fun row ->
        Value.List
          (Array.to_list
             (Array.map
                (fun r ->
                  Value.List
                    [
                      Value.Int r.degraded_steps;
                      (match r.recovery with
                      | Some t -> Value.Int t
                      | None -> Value.Null);
                    ])
                row)));
    decode =
      (fun v ->
        match v with
        | Value.List items -> (
            try
              Some
                (Array.of_list
                   (List.map
                      (function
                        | Value.List [ Value.Int d; Value.Int r ] ->
                            { degraded_steps = d; recovery = Some r }
                        | Value.List [ Value.Int d; Value.Null ] ->
                            { degraded_steps = d; recovery = None }
                        | _ -> raise Exit)
                      items))
            with Exit -> None)
        | _ -> None);
  }

let level_config ~name ~schedule ~budget ~storm ~seeds ~seed0 ~max_steps lv =
  Printf.sprintf
    "netlab scenario=%s schedule=%s loss=%.6g delay=%.6g max_delay=%d \
     dup=%.6g crash=%.6g crash_len=%d k=%d window=%d storm=%d seeds=%d \
     seed0=%d max_steps=%d"
    name schedule lv.loss lv.delay lv.max_delay lv.dup lv.crash lv.crash_len
    budget.k budget.window storm seeds seed0 max_steps

let cells ?(levels = default_levels) ?(seeds = 20) ?(storm = 400)
    ?(max_steps = 10_000) ?(seed0 = 1) ?(batch = 1) ~budget sc =
  check_budget budget;
  List.iter check_rates levels;
  Array.of_list
    (List.mapi
       (fun li level ->
         {
           Campaign.key = Printf.sprintf "netlab/%s/l%d" sc.name li;
           config =
             level_config ~name:sc.name ~schedule:sc.schedule_name ~budget
               ~storm ~seeds ~seed0 ~max_steps level;
           run =
             (fun ~deadline ~attempt ->
               let seed0 = seed0 + (attempt * Campaign.reseed_stride) in
               if batch <= 1 then begin
                 let measure = sc.fresh () in
                 Array.init seeds (fun j ->
                     if deadline () then raise Campaign.Deadline_exceeded;
                     measure ~rates:level ~budget ~storm ~seed:(seed0 + j)
                       ~max_steps)
               end
               else begin
                 let bf = sc.fresh_batch () in
                 let out =
                   Array.make seeds { degraded_steps = 0; recovery = None }
                 in
                 let lo = ref 0 in
                 while !lo < seeds do
                   if deadline () then raise Campaign.Deadline_exceeded;
                   let hi = min seeds (!lo + batch) in
                   let len = hi - !lo in
                   let block =
                     bf
                       ~rates:(Array.make len level)
                       ~budget ~storm
                       ~seeds:(Array.init len (fun t -> seed0 + !lo + t))
                       ~max_steps
                   in
                   Array.blit block 0 out !lo len;
                   lo := hi
                 done;
                 out
               end);
         })
       levels)

(* A [None] row (timed-out or errored cell) degrades to zero recoveries
   and zero degradation, keeping the merged campaign's shape. *)
let stats_of_row ~seeds ~storm level row =
  let times = ref [] and recovered = ref 0 and degr = ref 0 in
  (match row with
  | None -> ()
  | Some results ->
      for j = seeds - 1 downto 0 do
        let r = results.(j) in
        degr := !degr + r.degraded_steps;
        match r.recovery with
        | Some t ->
            incr recovered;
            times := t :: !times
        | None -> ()
      done);
  let arr = Array.of_list !times in
  Array.sort compare arr;
  let cnt = Array.length arr in
  let mean =
    if cnt = 0 then 0. else float (Array.fold_left ( + ) 0 arr) /. float cnt
  in
  {
    level;
    runs = seeds;
    recovered = !recovered;
    mean_recovery = mean;
    p50 = percentile arr 0.5;
    p95 = percentile arr 0.95;
    worst = (if cnt = 0 then 0 else arr.(cnt - 1));
    mean_degraded = float !degr /. float (seeds * max 1 storm);
  }

let run_matrix ?(levels = default_levels) ?(seeds = 20) ?(storm = 400)
    ?(max_steps = 10_000) ?(domains = 1) ?(seed0 = 1) ?(batch = 1) ?policy
    ~budget sc =
  let cs = cells ~levels ~seeds ~storm ~max_steps ~seed0 ~batch ~budget sc in
  let outcome = Campaign.run ~domains ?policy ~codec cs in
  let level_stats =
    List.mapi
      (fun li level ->
        stats_of_row ~seeds ~storm level
          outcome.Campaign.records.(li).Campaign.result)
      levels
  in
  ( {
      scenario_name = sc.name;
      schedule = sc.schedule_name;
      budget_k = budget.k;
      budget_window = budget.window;
      storm;
      runs_per_level = seeds;
      levels = level_stats;
    },
    outcome.Campaign.counts )

let run ?levels ?seeds ?storm ?max_steps ?domains ?seed0 ?batch ~budget sc =
  fst (run_matrix ?levels ?seeds ?storm ?max_steps ?domains ?seed0 ?batch
         ~budget sc)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let print_campaign oc c =
  Printf.fprintf oc
    "  %s (schedule: %s, budget %d per %d-step window, storm %d, %d runs \
     per level)\n"
    c.scenario_name c.schedule c.budget_k c.budget_window c.storm
    c.runs_per_level;
  Printf.fprintf oc "    %6s %6s %5s %6s %10s %10s %6s %6s %6s %8s\n" "loss"
    "delay" "dup" "crash" "recovered" "mean" "p50" "p95" "worst" "degr";
  List.iter
    (fun s ->
      Printf.fprintf oc
        "    %6.2f %6.2f %5.2f %6.2f %7d/%-2d %10.2f %6d %6d %6d %7.1f%%\n"
        s.level.loss s.level.delay s.level.dup s.level.crash s.recovered
        s.runs s.mean_recovery s.p50 s.p95 s.worst (100. *. s.mean_degraded))
    c.levels

let write_json ?host ?batch ?cells ?certification oc campaigns =
  Bench_json.write ~benchmark:"netlab" ?host ?batch ?cells ?certification oc
    (fun oc ->
      Printf.fprintf oc "  \"campaigns\": [\n";
      List.iteri
        (fun i c ->
          Printf.fprintf oc
            "    { \"scenario\": %S, \"schedule\": %S, \"budget_k\": %d, \
             \"budget_window\": %d, \"storm_steps\": %d, \"runs_per_level\": \
             %d,\n\
            \      \"levels\": [\n"
            c.scenario_name c.schedule c.budget_k c.budget_window c.storm
            c.runs_per_level;
          List.iteri
            (fun j s ->
              Printf.fprintf oc
                "        { \"loss\": %.3f, \"delay\": %.3f, \"dup\": %.3f, \
                 \"crash\": %.3f, \"max_delay\": %d, \"crash_len\": %d, \
                 \"runs\": %d, \"recovered\": %d, \"mean_recovery_steps\": \
                 %.3f, \"p50_steps\": %d, \"p95_steps\": %d, \"worst_steps\": \
                 %d, \"mean_degraded_fraction\": %.4f }%s\n"
                s.level.loss s.level.delay s.level.dup s.level.crash
                s.level.max_delay s.level.crash_len s.runs s.recovered
                s.mean_recovery s.p50 s.p95 s.worst s.mean_degraded
                (if j = List.length c.levels - 1 then "" else ","))
            c.levels;
          Printf.fprintf oc "      ] }%s\n"
            (if i = List.length campaigns - 1 then "" else ","))
        campaigns;
      Printf.fprintf oc "  ]\n")
