let ring_uni n =
  if n < 2 then invalid_arg "Builders.ring_uni: need n >= 2";
  let src = Array.init n Fun.id in
  let dst = Array.init n (fun i -> (i + 1) mod n) in
  Digraph.create_arrays ~n src dst

(* Edge numbering is load-bearing for ring protocols (forward edges
   [0 .. n-1] then backward edges [n .. 2n-1]); the array construction
   reproduces the historical list order exactly. *)
let ring_bi n =
  if n < 2 then invalid_arg "Builders.ring_bi: need n >= 2";
  if n = 2 then Digraph.create ~n [ (0, 1); (1, 0) ]
  else begin
    let src = Array.make (2 * n) 0 and dst = Array.make (2 * n) 0 in
    for i = 0 to n - 1 do
      src.(i) <- i;
      dst.(i) <- (i + 1) mod n;
      src.(n + i) <- (i + 1) mod n;
      dst.(n + i) <- i
    done;
    Digraph.create_arrays ~n src dst
  end

let clique n =
  if n < 2 then invalid_arg "Builders.clique: need n >= 2";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n !edges

let star n =
  if n < 2 then invalid_arg "Builders.star: need n >= 2";
  let spokes = List.init (n - 1) (fun k -> k + 1) in
  let edges = List.concat_map (fun s -> [ (0, s); (s, 0) ]) spokes in
  Digraph.create ~n edges

let path_bi n =
  if n < 2 then invalid_arg "Builders.path_bi: need n >= 2";
  let edges =
    List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ]))
  in
  Digraph.create ~n edges

let hypercube d =
  if d < 1 then invalid_arg "Builders.hypercube: need d >= 1";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = n - 1 downto 0 do
    for b = d - 1 downto 0 do
      let u = v lxor (1 lsl b) in
      edges := (v, u) :: !edges
    done
  done;
  Digraph.create ~n !edges

(* Per-node edge order (down, up, right, left) matches the historical list
   construction; million-node tori build through flat arrays instead. *)
let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus: need >= 3 x 3";
  let id r c = (((r mod rows) + rows) mod rows * cols)
               + (((c mod cols) + cols) mod cols) in
  let n = rows * cols in
  let src = Array.make (4 * n) 0 and dst = Array.make (4 * n) 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = id r c in
      let base = 4 * v in
      src.(base) <- v;
      dst.(base) <- id (r + 1) c;
      src.(base + 1) <- v;
      dst.(base + 1) <- id (r - 1) c;
      src.(base + 2) <- v;
      dst.(base + 2) <- id r (c + 1);
      src.(base + 3) <- v;
      dst.(base + 3) <- id r (c - 1)
    done
  done;
  Digraph.create_arrays ~n src dst

let grid rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Builders.grid: need at least two nodes";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      let v = id r c in
      if r + 1 < rows then edges := (v, id (r + 1) c) :: (id (r + 1) c, v) :: !edges;
      if c + 1 < cols then edges := (v, id r (c + 1)) :: (id r (c + 1), v) :: !edges
    done
  done;
  Digraph.create ~n:(rows * cols) !edges

let binary_tree depth =
  if depth < 1 then invalid_arg "Builders.binary_tree: need depth >= 1";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    if left < n then edges := (i, left) :: (left, i) :: !edges;
    if right < n then edges := (i, right) :: (right, i) :: !edges
  done;
  Digraph.create ~n !edges

let random_strongly_connected ~seed n ~extra =
  if n < 2 then invalid_arg "Builders.random_strongly_connected: need n >= 2";
  let state = Random.State.make [| seed |] in
  (* Random Hamiltonian cycle: a random permutation closed into a cycle. *)
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let table = Hashtbl.create (2 * (n + extra)) in
  for i = 0 to n - 1 do
    Hashtbl.replace table (perm.(i), perm.((i + 1) mod n)) ()
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let i = Random.State.int state n and j = Random.State.int state n in
    if i <> j && not (Hashtbl.mem table (i, j)) then begin
      Hashtbl.replace table (i, j) ();
      incr added
    end
  done;
  Digraph.create ~n (List.of_seq (Hashtbl.to_seq_keys table))

let de_bruijn k m =
  if k < 2 || m < 1 then invalid_arg "Builders.de_bruijn: need k >= 2, m >= 1";
  let rec pow acc e = if e = 0 then acc else pow (acc * k) (e - 1) in
  let n = pow 1 m in
  if n > 4096 then invalid_arg "Builders.de_bruijn: graph too large";
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for c = k - 1 downto 0 do
      let v = ((u * k) + c) mod n in
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  Digraph.create ~n (List.sort_uniq compare !edges)

let circulant n offsets =
  if n < 2 then invalid_arg "Builders.circulant: need n >= 2";
  let normalized =
    List.sort_uniq compare
      (List.map
         (fun o ->
           let o = ((o mod n) + n) mod n in
           if o = 0 then invalid_arg "Builders.circulant: zero offset";
           o)
         offsets)
  in
  if normalized = [] then invalid_arg "Builders.circulant: no offsets";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    List.iter (fun o -> edges := (i, (i + o) mod n) :: !edges) normalized
  done;
  Digraph.create ~n !edges

let erdos_renyi ~seed n ~p =
  if n < 2 then invalid_arg "Builders.erdos_renyi: need n >= 2";
  if p < 0.0 || p > 1.0 then invalid_arg "Builders.erdos_renyi: bad p";
  let state = Random.State.make [| seed |] in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j && Random.State.float state 1.0 < p then
        edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n !edges

(* Growable int array for generators whose edge count is only known at the
   end (skip-sampled ER, preferential attachment). *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 1024 0; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.a 0 b.len
end

let erdos_renyi_sparse ~seed n ~avg_out =
  if n < 2 then invalid_arg "Builders.erdos_renyi_sparse: need n >= 2";
  if avg_out <= 0.0 || avg_out > float_of_int (n - 1) then
    invalid_arg "Builders.erdos_renyi_sparse: avg_out out of range";
  let p = avg_out /. float_of_int (n - 1) in
  let state = Random.State.make [| seed |] in
  let src = Buf.create () and dst = Buf.create () in
  (* Skip sampling over the n*(n-1) ordered non-diagonal pairs: instead of a
     Bernoulli draw per pair (O(n^2), hopeless at n = 10^6), draw the
     geometric gap to the next included pair, so work is O(expected edges). *)
  let total = n * (n - 1) in
  let log1mp = log (1.0 -. p) in
  let pos = ref (-1) in
  (try
     while true do
       let u = 1.0 -. Random.State.float state 1.0 in
       let skip =
         if p >= 1.0 then 0
         else int_of_float (floor (log u /. log1mp))
       in
       pos := !pos + 1 + skip;
       if !pos >= total then raise Exit;
       let i = !pos / (n - 1) in
       let r = !pos mod (n - 1) in
       let j = if r < i then r else r + 1 in
       Buf.push src i;
       Buf.push dst j
     done
   with Exit -> ());
  Digraph.create_arrays ~n (Buf.contents src) (Buf.contents dst)

let small_world ~seed n ~k ~beta =
  if k < 1 || 2 * k >= n then
    invalid_arg "Builders.small_world: need 1 <= k and 2k < n";
  if beta < 0.0 || beta > 1.0 then invalid_arg "Builders.small_world: bad beta";
  let state = Random.State.make [| seed |] in
  (* Watts–Strogatz over undirected edges, emitted in both directions at the
     end. The presence table is keyed on packed canonical pairs, never boxed
     tuples. *)
  let ukey i j = if i < j then (i * n) + j else (j * n) + i in
  let m = n * k in
  let ua = Array.make m 0 and va = Array.make m 0 in
  let present = Hashtbl.create (2 * m) in
  for i = 0 to n - 1 do
    for o = 1 to k do
      let e = (i * k) + (o - 1) in
      ua.(e) <- i;
      va.(e) <- (i + o) mod n;
      Hashtbl.replace present (ukey ua.(e) va.(e)) ()
    done
  done;
  for e = 0 to m - 1 do
    if Random.State.float state 1.0 < beta then begin
      let i = ua.(e) in
      let attempts = ref 0 and done_ = ref false in
      while (not !done_) && !attempts < 100 do
        incr attempts;
        let t = Random.State.int state n in
        if t <> i && not (Hashtbl.mem present (ukey i t)) then begin
          Hashtbl.remove present (ukey i va.(e));
          va.(e) <- t;
          Hashtbl.replace present (ukey i t) ();
          done_ := true
        end
      done
    end
  done;
  let src = Array.make (2 * m) 0 and dst = Array.make (2 * m) 0 in
  for e = 0 to m - 1 do
    src.(2 * e) <- ua.(e);
    dst.(2 * e) <- va.(e);
    src.((2 * e) + 1) <- va.(e);
    dst.((2 * e) + 1) <- ua.(e)
  done;
  Digraph.create_arrays ~n src dst

let preferential_attachment ~seed n ~m =
  if m < 1 then invalid_arg "Builders.preferential_attachment: need m >= 1";
  if n < m + 2 then
    invalid_arg "Builders.preferential_attachment: need n >= m + 2";
  let state = Random.State.make [| seed |] in
  let ua = Buf.create () and va = Buf.create () in
  (* [targets] holds both endpoints of every undirected edge so far, so a
     uniform draw from it is a degree-proportional draw over nodes. *)
  let targets = Buf.create () in
  let add_undirected i j =
    Buf.push ua i;
    Buf.push va j;
    Buf.push targets i;
    Buf.push targets j
  in
  (* Seed core: complete graph on the first m + 1 nodes. *)
  for i = 0 to m do
    for j = i + 1 to m do
      add_undirected i j
    done
  done;
  let chosen = Array.make m (-1) in
  for v = m + 1 to n - 1 do
    let picked = ref 0 in
    while !picked < m do
      let t = targets.Buf.a.(Random.State.int state targets.Buf.len) in
      let dup = ref (t = v) in
      for q = 0 to !picked - 1 do
        if chosen.(q) = t then dup := true
      done;
      if not !dup then begin
        chosen.(!picked) <- t;
        incr picked
      end
    done;
    (* Register edges after all m draws so a node can't attach to itself
       through an edge added this round. *)
    for q = 0 to m - 1 do
      add_undirected v chosen.(q)
    done
  done;
  let mu = ua.Buf.len in
  let src = Array.make (2 * mu) 0 and dst = Array.make (2 * mu) 0 in
  for e = 0 to mu - 1 do
    src.(2 * e) <- ua.Buf.a.(e);
    dst.(2 * e) <- va.Buf.a.(e);
    src.((2 * e) + 1) <- va.Buf.a.(e);
    dst.((2 * e) + 1) <- ua.Buf.a.(e)
  done;
  Digraph.create_arrays ~n src dst
