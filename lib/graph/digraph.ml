(* Flat edge storage: [src_arr.(e)] and [dst_arr.(e)] are edge [e]'s
   endpoints. Million-edge generated graphs (the event simulator's
   workloads) would pay dearly for the old boxed [(int * int) array] plus a
   tuple-keyed hashtable built eagerly at construction: the endpoint arrays
   are unboxed ints, and the edge index is an int-keyed table ([i * n + j]
   fits an int for every graph that fits in memory) built lazily on the
   first [find_edge]/[mem_edge] — simulation workloads never ask for it. *)
type t = {
  n : int;
  src_arr : int array;
  dst_arr : int array;
  out_edges : int array array;
  in_edges : int array array;
  mutable index : (int, int) Hashtbl.t option;
}

let key g i j = (i * g.n) + j

let build_index g =
  match g.index with
  | Some tbl -> tbl
  | None ->
      let m = Array.length g.src_arr in
      let tbl = Hashtbl.create (2 * m + 1) in
      for e = 0 to m - 1 do
        Hashtbl.add tbl (key g g.src_arr.(e) g.dst_arr.(e)) e
      done;
      g.index <- Some tbl;
      tbl

let create_arrays ~n src_arr dst_arr =
  if n <= 0 then invalid_arg "Digraph.create: n must be positive";
  let m = Array.length src_arr in
  if Array.length dst_arr <> m then
    invalid_arg "Digraph.create: src/dst length mismatch";
  for e = 0 to m - 1 do
    let i = src_arr.(e) and j = dst_arr.(e) in
    if i < 0 || i >= n || j < 0 || j >= n then
      invalid_arg
        (Printf.sprintf "Digraph.create: edge (%d, %d) out of range" i j);
    if i = j then
      invalid_arg (Printf.sprintf "Digraph.create: self-loop at node %d" i)
  done;
  (* Duplicate detection by sorting the packed endpoint keys: O(m log m)
     ints, no hashtable of boxed pairs. *)
  if m > 1 then begin
    let keys = Array.init m (fun e -> (src_arr.(e) * n) + dst_arr.(e)) in
    Array.sort compare keys;
    for e = 1 to m - 1 do
      if keys.(e) = keys.(e - 1) then
        invalid_arg
          (Printf.sprintf "Digraph.create: duplicate edge (%d, %d)"
             (keys.(e) / n) (keys.(e) mod n))
    done
  end;
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  for e = 0 to m - 1 do
    out_count.(src_arr.(e)) <- out_count.(src_arr.(e)) + 1;
    in_count.(dst_arr.(e)) <- in_count.(dst_arr.(e)) + 1
  done;
  let out_edges = Array.init n (fun i -> Array.make out_count.(i) 0)
  and in_edges = Array.init n (fun i -> Array.make in_count.(i) 0) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  for e = 0 to m - 1 do
    let i = src_arr.(e) and j = dst_arr.(e) in
    out_edges.(i).(out_fill.(i)) <- e;
    out_fill.(i) <- out_fill.(i) + 1;
    in_edges.(j).(in_fill.(j)) <- e;
    in_fill.(j) <- in_fill.(j) + 1
  done;
  { n; src_arr; dst_arr; out_edges; in_edges; index = None }

let create ~n edge_list =
  let m = List.length edge_list in
  let src_arr = Array.make m 0 and dst_arr = Array.make m 0 in
  List.iteri
    (fun e (i, j) ->
      src_arr.(e) <- i;
      dst_arr.(e) <- j)
    edge_list;
  create_arrays ~n src_arr dst_arr

let num_nodes g = g.n
let num_edges g = Array.length g.src_arr
let edge g e = (g.src_arr.(e), g.dst_arr.(e))
let src g e = g.src_arr.(e)
let dst g e = g.dst_arr.(e)
let out_edges g i = g.out_edges.(i)
let in_edges g i = g.in_edges.(i)
let successors g i = Array.map (fun e -> dst g e) g.out_edges.(i)
let predecessors g i = Array.map (fun e -> src g e) g.in_edges.(i)
let find_edge g ~src ~dst = Hashtbl.find_opt (build_index g) (key g src dst)
let mem_edge g ~src ~dst = Hashtbl.mem (build_index g) (key g src dst)
let out_degree g i = Array.length g.out_edges.(i)
let in_degree g i = Array.length g.in_edges.(i)

let max_degree g =
  let best = ref 0 in
  for i = 0 to g.n - 1 do
    best := max !best (max (out_degree g i) (in_degree g i))
  done;
  !best

let edges g = Array.init (num_edges g) (fun e -> (g.src_arr.(e), g.dst_arr.(e)))

let reverse g = create_arrays ~n:g.n (Array.copy g.dst_arr) (Array.copy g.src_arr)

let is_symmetric g =
  let m = num_edges g in
  let rec go e =
    e >= m || (mem_edge g ~src:g.dst_arr.(e) ~dst:g.src_arr.(e) && go (e + 1))
  in
  go 0

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (n=%d, m=%d)" g.n (num_edges g);
  for e = 0 to num_edges g - 1 do
    Format.fprintf ppf "@,  e%d: %d -> %d" e g.src_arr.(e) g.dst_arr.(e)
  done;
  Format.fprintf ppf "@]"
