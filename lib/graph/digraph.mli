(** Finite directed graphs with stable edge indices.

    This is the communication substrate of the paper's model (Section 2): a
    strongly connected directed graph [G = ([n], E)] whose edges carry labels.
    Edges are numbered [0 .. num_edges - 1]; a protocol configuration is an
    array indexed by these edge ids, so the numbering must be stable, which is
    why the graph is immutable after construction. *)

type t

(** [create ~n edges] builds a graph on nodes [0 .. n-1] from the given list
    of directed edges. Duplicate edges and self-loops are rejected with
    [Invalid_argument], as are out-of-range endpoints. *)
val create : n:int -> (int * int) list -> t

(** [create_arrays ~n src dst] is {!create} for edges given as parallel
    endpoint arrays: edge [e] runs from [src.(e)] to [dst.(e)]. This is the
    scalable constructor — no intermediate list of boxed pairs — used by the
    million-node generators in {!Builders}. The arrays are owned by the graph
    after the call; callers must not mutate them. *)
val create_arrays : n:int -> int array -> int array -> t

(** Number of nodes. *)
val num_nodes : t -> int

(** Number of directed edges. *)
val num_edges : t -> int

(** [edge g e] is the [(src, dst)] pair of edge id [e]. *)
val edge : t -> int -> int * int

(** [src g e] and [dst g e] project {!edge}. *)
val src : t -> int -> int

val dst : t -> int -> int

(** [out_edges g i] lists the edge ids leaving node [i], in a fixed order.
    The array is owned by the graph; callers must not mutate it. *)
val out_edges : t -> int -> int array

(** [in_edges g i] lists the edge ids entering node [i], in a fixed order. *)
val in_edges : t -> int -> int array

(** Successor nodes of [i] (destinations of {!out_edges}). *)
val successors : t -> int -> int array

(** Predecessor nodes of [i] (sources of {!in_edges}). *)
val predecessors : t -> int -> int array

(** [find_edge g ~src ~dst] is the edge id from [src] to [dst], if any. *)
val find_edge : t -> src:int -> dst:int -> int option

(** [mem_edge g ~src ~dst] tests the existence of the edge. *)
val mem_edge : t -> src:int -> dst:int -> bool

(** Maximum of in-degree and out-degree over all nodes — the [k] of
    Theorem 5.10's counting bound. *)
val max_degree : t -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** The graph with every edge reversed. Edge ids are preserved: edge [e] of
    [reverse g] connects [dst g e] to [src g e]. *)
val reverse : t -> t

(** All edges as an array indexed by edge id. The array is fresh. *)
val edges : t -> (int * int) array

(** [is_symmetric g] holds when for every edge [(i, j)] the reverse edge
    [(j, i)] is present — i.e. the graph models bidirectional links. *)
val is_symmetric : t -> bool

val pp : Format.formatter -> t -> unit
