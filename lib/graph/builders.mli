(** Standard topologies used throughout the paper.

    Rings (Sections 5 and 6), cliques and stars (Section 5 intro, Example 1,
    Theorems 4.1/4.2), hypercubes (snake-in-the-box constructions), and the
    future-work topologies of Section 7 (torus, trees). All builders produce
    {!Digraph.t} values with a documented node numbering so that protocol
    constructions can rely on it. *)

(** [ring_uni n] is the unidirectional ring: edges [i -> (i+1) mod n].
    Requires [n >= 2]; for [n = 2] it is the 2-cycle [0 -> 1 -> 0]. *)
val ring_uni : int -> Digraph.t

(** [ring_bi n] is the bidirectional ring: both [i -> i+1] and [i+1 -> i]
    (mod [n]). Requires [n >= 2]; for [n = 2] the two antiparallel edges. *)
val ring_bi : int -> Digraph.t

(** [clique n] is the complete directed graph [K_n]: all ordered pairs.
    Requires [n >= 2]. *)
val clique : int -> Digraph.t

(** [star n] has hub node [0] and spokes [1 .. n-1], edges in both
    directions between the hub and every spoke. Requires [n >= 2]. *)
val star : int -> Digraph.t

(** [path_bi n] is the bidirectional path [0 - 1 - ... - n-1]. *)
val path_bi : int -> Digraph.t

(** [hypercube d] is the bidirectional hypercube [Q_d] on [2^d] nodes; node
    ids are the [d]-bit labels and neighbours differ in one bit. *)
val hypercube : int -> Digraph.t

(** [torus rows cols] is the bidirectional 2-D torus grid. Requires
    [rows >= 3] and [cols >= 3] to avoid duplicate edges. *)
val torus : int -> int -> Digraph.t

(** [grid rows cols] is the bidirectional 2-D mesh (no wraparound). *)
val grid : int -> int -> Digraph.t

(** [binary_tree depth] is the complete bidirectional binary tree with
    [2^(depth+1) - 1] nodes, root [0], children of [i] at [2i+1], [2i+2]. *)
val binary_tree : int -> Digraph.t

(** [random_strongly_connected ~seed n ~extra] is a uniformly random
    Hamiltonian cycle on [n] nodes (guaranteeing strong connectivity) plus
    [extra] random chords. *)
val random_strongly_connected : seed:int -> int -> extra:int -> Digraph.t

(** [erdos_renyi ~seed n ~p] includes each ordered pair independently with
    probability [p]. Not necessarily strongly connected. *)
val erdos_renyi : seed:int -> int -> p:float -> Digraph.t

(** [erdos_renyi_sparse ~seed n ~avg_out] samples the same G(n, p) ensemble
    with [p = avg_out / (n - 1)], but by geometric skip sampling over the
    ordered pair space, so the cost is proportional to the number of edges
    drawn rather than [n^2]. This is the constructor for million-node random
    graphs. Not necessarily strongly connected; requires
    [0 < avg_out <= n - 1]. *)
val erdos_renyi_sparse : seed:int -> int -> avg_out:float -> Digraph.t

(** [small_world ~seed n ~k ~beta] is the Watts–Strogatz small-world graph:
    a ring lattice in which every node is joined (bidirectionally) to its
    [k] nearest neighbours on each side, after which each lattice edge is
    rewired with probability [beta] to a uniformly random non-duplicate
    endpoint (keeping its near endpoint, as in the original construction).
    [beta = 0] is the pure lattice; [beta = 1] approaches a random graph.
    Requires [1 <= k] and [2k < n]. *)
val small_world : seed:int -> int -> k:int -> beta:float -> Digraph.t

(** [preferential_attachment ~seed n ~m] is the Barabási–Albert heavy-tail
    graph: a complete core on the first [m + 1] nodes, then each new node
    attaches [m] bidirectional edges to distinct existing nodes drawn with
    probability proportional to current degree. Degree distribution follows
    a power law — the topology counterpart of the simulator's Pareto latency
    tail. Requires [m >= 1] and [n >= m + 2]. *)
val preferential_attachment : seed:int -> int -> m:int -> Digraph.t

(** [de_bruijn k m] is the de Bruijn graph B(k, m) on [k^m] nodes: node [u]
    points to every [u·k + c mod k^m] ([c < k]) — each node id read as an
    [m]-digit base-[k] string shifted left by one symbol. Self-loops (the
    constant strings) are omitted; the graph remains strongly connected.
    Requires [k >= 2], [m >= 1], [k^m <= 4096]. *)
val de_bruijn : int -> int -> Digraph.t

(** [circulant n offsets] has an edge [i -> (i + o) mod n] for every
    [o] in [offsets] (taken mod [n], zero offsets rejected, duplicates
    merged). [circulant n [1]] is the unidirectional ring;
    [circulant n [1; -1]] the bidirectional ring; extra offsets give
    chordal rings. *)
val circulant : int -> int list -> Digraph.t
