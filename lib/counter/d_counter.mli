(** The stateless D-counter of Claim 5.6, on odd bidirectional rings.

    Goal: a protocol (computing no function) after whose burn-in {e every}
    node derives, at {e every} round, one and the same counter value
    [c ∈ {0..D-1}], and the common value increments by 1 (mod D) each round
    — a global clock assembled from stateless parts. The circuit simulation
    of Theorem 5.4 is clocked by this counter.

    Construction, following the paper's 2-node intuition: every node sends
    the same label [(b1 b2, z, g, c)] both ways.

    - [(b1, b2)] run the 2-counter of Claim 5.5, giving every node a
      synchronized alternating phase bit [p].
    - [z]: node 0 increments the [z] of its {e clockwise} neighbour (node 1)
      while every other node increments its counterclockwise neighbour's
      [z]; nodes 0 and 1 thus form the paper's 2-node mutual incrementer and
      the chain relays their values. After burn-in the [z] of node [j] at
      time [t] is [x + t] or [y + t] (mod D), two interleaved arithmetic
      progressions with a run-dependent gap [x - y].
    - [g]: node 0 sees both progressions at once — its clockwise neighbour
      and its counterclockwise neighbour (at distance n-2, odd) are always
      in {e opposite} progressions — and publishes their difference, with
      the sign chosen by its phase bit [p]. A short case analysis (in the
      implementation) shows the published value is constant over time for
      either alignment of the phase bit, so the [g] field stabilizes.
    - [c]: node [j] emits [c = z + g·[p = j mod 2]], which cancels the
      progression gap identically in both phase alignments; all nodes agree
      on [c] and it increments every round.

    Label complexity: [2 + 3 ⌈log2 D⌉] bits, matching the paper's
    [L_n = 2 + 3 log D]. Round complexity: O(n) (paper: 4n). *)

type fields = (bool * bool) * (int * int * int)
(** [(two-counter bits, (z, g, c))]. *)

exception Bad_geometry of { n : int; d : int }
(** Raised by {!make} when the requested ring is not odd with [n >= 3] or
    the modulus is not [d >= 2]. Carries the offending sizes so callers
    (the CLI maps it to exit code 125) can report them. *)

exception Missing_ring_neighbour of { node : int }
(** Raised by the reaction when [node]'s incoming edges do not include both
    ring neighbours — the protocol was run on a non-ring graph. *)

type t = private {
  n : int;
  d : int;
  two : Two_counter.t;
  space : fields Stateless_core.Label.t;
  gate_g : bool;
}

(** [make ~n ~d] — odd [n >= 3], [d >= 2].

    [gate_g] (default true) selects the sign of the published progression
    gap by the 2-counter phase, which is what makes the [g] field constant
    over time; [gate_g:false] exists only for the ablation experiment that
    shows the counter never agrees without it. *)
val make : ?gate_g:bool -> n:int -> d:int -> unit -> t

(** [emit t j ~ccw ~cw] is the pure reaction of node [j] on counter fields:
    the label it must emit given the fields last sent by its two ring
    neighbours. The [c] component of the result is the counter value node
    [j] currently believes; after burn-in all nodes' beliefs coincide.
    Exposed so that larger protocols (the Theorem 5.4 compiler) can embed
    the counter fields in a wider label. *)
val emit : t -> int -> ccw:fields -> cw:fields -> fields

(** The standalone protocol; each node's output is its current counter
    value. *)
val protocol : t -> (unit, fields) Stateless_core.Protocol.t

(** Counter values currently emitted by each node (read off outgoing
    labels). *)
val values : t -> fields Stateless_core.Protocol.config -> int array

(** All nodes agree on the counter value. *)
val agreed : t -> fields Stateless_core.Protocol.config -> bool

(** Burn-in bound: O(n) synchronous rounds from any initial labeling
    (paper: 4n; we use [4n + 8] for slack, and verify empirically). *)
val burn_in : t -> int

(** The paper's label complexity for this protocol, [2 + 3 ⌈log2 D⌉]. *)
val label_bits : t -> int

val input : t -> unit array
