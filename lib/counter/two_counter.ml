module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Engine = Stateless_core.Engine
module Schedule = Stateless_core.Schedule
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type t = {
  n : int;
  protocol : (unit, bool * bool) Protocol.t;
  correction : bool array;
}

exception Calibration_failed of { n : int; stage : string }

(* Paper notation: our node j is the paper's node j+1; the negation pattern
   "paper-even middle nodes negate b2" becomes "our odd middle nodes". *)
let bits n j ~ccw ~cw =
  let b1 (a, _) = a and b2 (_, b) = b in
  if j = 0 then (not (b1 cw), b1 ccw)
  else if j = n - 1 then (b1 cw <> b1 ccw, b2 ccw)
  else if j mod 2 = 1 then (b1 ccw, not (b2 ccw))
  else (b1 ccw, b2 ccw)

(* Incoming labels of node j on the bidirectional ring, classified by
   sender. *)
let classify g j incoming =
  let n = Digraph.num_nodes g in
  let ccw = ref None and cw = ref None in
  Array.iteri
    (fun k e ->
      let s = Digraph.src g e in
      if s = (j + n - 1) mod n then ccw := Some incoming.(k)
      else if s = (j + 1) mod n then cw := Some incoming.(k))
    (Digraph.in_edges g j);
  match (!ccw, !cw) with
  | Some a, Some b -> (a, b)
  | _ -> invalid_arg "Two_counter: node lacks a ring neighbour"

let raw_protocol n : (unit, bool * bool) Protocol.t =
  let g = Builders.ring_bi n in
  let react j () incoming =
    let ccw, cw = classify g j incoming in
    let out = bits n j ~ccw ~cw in
    (Array.map (fun _ -> out) (Digraph.out_edges g j), 0)
  in
  {
    Protocol.name = Printf.sprintf "two-counter-%d" n;
    graph = g;
    space = Label.pair Label.bool Label.bool;
    react;
  }

let burn_in_of_n n = (4 * n) + 4

let emitted_bits p config j =
  let e = (Digraph.out_edges p.Protocol.graph j).(0) in
  config.Protocol.labels.(e)

(* Relative phase offsets are forced by the reaction structure (fixed delays
   and negations along the chain), so one reference run calibrates them for
   every run. *)
let make n =
  if n < 3 || n mod 2 = 0 then
    invalid_arg "Two_counter.make: need odd n >= 3";
  let protocol = raw_protocol n in
  let input = Array.make n () in
  let init = Protocol.uniform_config protocol (false, false) in
  let burn = burn_in_of_n n in
  let schedule = Schedule.synchronous n in
  let config = Engine.run protocol ~input ~init ~schedule ~steps:burn in
  let next = Engine.step protocol ~input config ~active:(List.init n Fun.id) in
  let base = snd (emitted_bits protocol config 0) in
  let base_next = snd (emitted_bits protocol next 0) in
  if Bool.equal base base_next then
    raise (Calibration_failed { n; stage = "reference run did not alternate" });
  let correction =
    Array.init n (fun j -> snd (emitted_bits protocol config j) <> base)
  in
  (* Sanity: corrections must also align one step later. *)
  Array.iteri
    (fun j c ->
      if (snd (emitted_bits protocol next j) <> c) <> base_next then
        raise
          (Calibration_failed
             { n; stage = Printf.sprintf "node %d inconsistent one step later" j }))
    correction;
  { n; protocol; correction }

let phase t j ~emitted = snd emitted <> t.correction.(j)

let phases t config =
  Array.init t.n (fun j ->
      phase t j ~emitted:(emitted_bits t.protocol config j))

let synchronized t config =
  let p = phases t config in
  Array.for_all (fun v -> Bool.equal v p.(0)) p

let burn_in t = burn_in_of_n t.n
let input t = Array.make t.n ()
