module Protocol = Stateless_core.Protocol
module Label = Stateless_core.Label
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

type fields = (bool * bool) * (int * int * int)

exception Bad_geometry of { n : int; d : int }
exception Missing_ring_neighbour of { node : int }

let () =
  Printexc.register_printer (function
    | Bad_geometry { n; d } ->
        Some
          (Printf.sprintf
             "D_counter.Bad_geometry { n = %d; d = %d }: need odd n >= 3 and \
              d >= 2"
             n d)
    | Missing_ring_neighbour { node } ->
        Some
          (Printf.sprintf
             "D_counter.Missing_ring_neighbour { node = %d }: node lacks a \
              ring neighbour"
             node)
    | _ -> None)

type t = {
  n : int;
  d : int;
  two : Two_counter.t;
  space : fields Label.t;
  gate_g : bool;
}

let make ?(gate_g = true) ~n ~d () =
  if n < 3 || n mod 2 = 0 || d < 2 then raise (Bad_geometry { n; d });
  let space =
    Label.pair
      (Label.pair Label.bool Label.bool)
      (Label.triple (Label.int d) (Label.int d) (Label.int d))
  in
  { n; d; two = Two_counter.make n; space; gate_g }

(* Correctness of the c-rule. After burn-in, with τ = t mod 2 and initial
   progression offsets x, y (gap = x - y):
     z_j(t) = x + t  when τ = j mod 2,   and  y + t otherwise;
     node 0's incoming z values satisfy  a - b = gap·(-1)^τ.
   The published g = (a-b or b-a, by phase p = τ xor β) is then the constant
   gap·(-1)^(1+β).  Emitting c_j = z_j + g·[p = j mod 2] gives, for β = 0,
   x-family nodes c = x + t + g = y + t and y-family nodes c = y + t; for
   β = 1 symmetrically all nodes emit x + t. Either way all nodes agree and
   the value advances by one per round. *)
let emit t j ~ccw ~cw =
  let n = t.n and d = t.d in
  let (ccw_bits, (ccw_z, ccw_g, _)) = ccw in
  let (cw_bits, (cw_z, _, _)) = cw in
  let bits = Two_counter.bits n j ~ccw:ccw_bits ~cw:cw_bits in
  let p = Two_counter.phase t.two j ~emitted:bits in
  let z = if j = 0 then (cw_z + 1) mod d else (ccw_z + 1) mod d in
  let g =
    if j = 0 then
      let a = cw_z and b = ccw_z in
      (* Without the phase gate (ablation A3) the published difference
         alternates sign every round and the counter never agrees. *)
      if p || not t.gate_g then ((a - b) mod d + d) mod d
      else ((b - a) mod d + d) mod d
    else ccw_g
  in
  let c =
    let gamma = j mod 2 = 1 in
    if Bool.equal p gamma then (z + g) mod d else z
  in
  (bits, (z, g, c))

let classify g j incoming =
  let n = Digraph.num_nodes g in
  let ccw = ref None and cw = ref None in
  Array.iteri
    (fun k e ->
      let s = Digraph.src g e in
      if s = (j + n - 1) mod n then ccw := Some incoming.(k)
      else if s = (j + 1) mod n then cw := Some incoming.(k))
    (Digraph.in_edges g j);
  match (!ccw, !cw) with
  | Some a, Some b -> (a, b)
  | _ -> raise (Missing_ring_neighbour { node = j })

let protocol t : (unit, fields) Protocol.t =
  let g = Builders.ring_bi t.n in
  let react j () incoming =
    let ccw, cw = classify g j incoming in
    let out = emit t j ~ccw ~cw in
    let (_, (_, _, c)) = out in
    (Array.map (fun _ -> out) (Digraph.out_edges g j), c)
  in
  {
    Protocol.name = Printf.sprintf "d-counter-%d-%d" t.n t.d;
    graph = g;
    space = t.space;
    react;
  }

let values t config =
  let p = protocol t in
  Array.init t.n (fun j ->
      let e = (Digraph.out_edges p.Protocol.graph j).(0) in
      let (_, (_, _, c)) = config.Protocol.labels.(e) in
      c)

let agreed t config =
  let vs = values t config in
  Array.for_all (fun v -> v = vs.(0)) vs

let burn_in t = (4 * t.n) + 8

let label_bits t =
  let rec bits_for v acc cap =
    if cap >= v then acc else bits_for v (acc + 1) (2 * cap)
  in
  2 + (3 * bits_for t.d 0 1)

let input t = Array.make t.n ()
