(** The stateless 2-counter of Claim 5.5, on odd bidirectional rings.

    Every node sends the same 2-bit label [(b1, b2)] in both directions.
    Nodes 0 and 1 drive a mutual flip-flop on [b1]; the chain 2..n-2 relays
    it; node n-1 XORs the two copies it sees — whose delays differ by the
    odd number n-2, so the XOR alternates — and feeds the alternation back
    into every [b2] via node 0. The result: after a burn-in of O(n) rounds,
    every node's [b2] stream alternates 0,1,0,1,... and, up to a fixed
    per-node inversion, all nodes see the same bit at the same time — a
    global 2-counter with no state anywhere.

    The fixed per-node inversions (which depend only on the topology, not on
    the run) are computed once at construction by calibration against a
    reference run; {!phases} applies them, so after burn-in [phases] returns
    an all-equal vector that flips every round. *)

type t = private {
  n : int;
  protocol : (unit, bool * bool) Stateless_core.Protocol.t;
  correction : bool array;  (** per-node phase inversion. *)
}

(** Raised when the construction-time calibration run contradicts the
    claim it relies on (the reference run's [b2] stream must alternate, and
    every node's inversion must stay consistent one step later). Reaching
    it means the reaction table is wrong for this [n], not that the caller
    misused the API; [stage] says which check failed. *)
exception Calibration_failed of { n : int; stage : string }

(** [make n] — [n] must be odd and >= 3.
    @raise Calibration_failed when the reference run contradicts Claim 5.5. *)
val make : int -> t

(** The pure reaction on counter bits: [bits n j ~ccw ~cw] is the label node
    [j] emits given the labels last sent by its counterclockwise neighbour
    [j-1] and clockwise neighbour [j+1] (mod n). Exposed so larger protocols
    (the D-counter, the circuit compiler) can embed the 2-counter fields. *)
val bits : int -> int -> ccw:bool * bool -> cw:bool * bool -> bool * bool

(** [phase t j ~emitted] is node [j]'s calibrated phase given the label it
    is emitting this round. *)
val phase : t -> int -> emitted:bool * bool -> bool

(** [phases t config] reads every node's calibrated phase off the
    configuration's outgoing labels. *)
val phases : t -> (bool * bool) Stateless_core.Protocol.config -> bool array

(** [synchronized t config] — all phases equal. *)
val synchronized : t -> (bool * bool) Stateless_core.Protocol.config -> bool

(** Burn-in bound: after this many synchronous rounds from any initial
    labeling the phases are synchronized and alternating (verified
    empirically; the paper proves convergence "after at most two time
    steps" for the core pair plus propagation delay). *)
val burn_in : t -> int

val input : t -> unit array
