module Parrun = Stateless_core.Parrun
module Bench_json = Stateless_core.Bench_json
module Chaos = Stateless_core.Chaos

exception Deadline_exceeded
exception Journal_locked of string

type status = Ok | Timeout | Error of string

type 'r cell = {
  key : string;
  config : string;
  run : deadline:(unit -> bool) -> attempt:int -> 'r;
}

type 'r codec = { encode : 'r -> Value.t; decode : Value.t -> 'r option }

type 'r record = {
  key : string;
  fingerprint : string;
  status : status;
  result : 'r option;
  attempts : int;
  replayed : bool;
  last_exn : exn option;
}

type counts = { ok : int; timeout : int; error : int; replayed : int }
type 'r outcome = { records : 'r record array; counts : counts }

type policy = {
  journal : string option;
  resume : bool;
  cell_deadline : float option;
  retries : int;
}

let default_policy =
  { journal = None; resume = false; cell_deadline = None; retries = 0 }

let reseed_stride = 1_000_003

(* ------------------------------------------------------------------ *)
(* Fingerprints and the deadline clock                                 *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the config bytes in full 64-bit arithmetic — a collision
   here only costs a spurious skip/re-run match on a hand-edited
   journal. *)
let fingerprint s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* Deadlines must never un-expire, but [gettimeofday] can step backwards
   (NTP); clamp it to its own max-so-far, shared across domains. *)
let clock_last = Atomic.make 0.0

let now () =
  let t = Chaos.on_clock (Unix.gettimeofday ()) in
  let rec clamp () =
    let l = Atomic.get clock_last in
    if t <= l then l
    else if Atomic.compare_and_set clock_last l t then t
    else clamp ()
  in
  clamp ()

let make_deadline = function
  | None -> fun () -> false
  | Some budget ->
      let cutoff = now () +. budget in
      fun () -> now () >= cutoff

(* ------------------------------------------------------------------ *)
(* Journal records                                                     *)
(* ------------------------------------------------------------------ *)

type journal_entry = {
  j_fp : string;
  j_status : status;
  j_attempts : int;
  j_result : Value.t;
}

let status_string = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Error _ -> "error"

let render_record ~git rc ~encoded =
  Value.to_string
    (Value.Obj
       ([
          ("cell", Value.String rc.key);
          ("fp", Value.String rc.fingerprint);
          ("status", Value.String (status_string rc.status));
          ("attempts", Value.Int rc.attempts);
          ("git", Value.String git);
        ]
       @ (match rc.status with
         | Error msg -> [ ("msg", Value.String msg) ]
         | Ok | Timeout -> [])
       @ [ ("result", encoded) ]))

let entry_of_line line =
  match Value.parse line with
  | None -> None
  | Some v -> (
      let str k = Option.bind (Value.member k v) (function
        | Value.String s -> Some s
        | _ -> None)
      in
      match (str "cell", str "fp", str "status") with
      | Some key, Some fp, Some status ->
          let status =
            match status with
            | "ok" -> Some Ok
            | "timeout" -> Some Timeout
            | "error" ->
                Some (Error (Option.value ~default:"" (str "msg")))
            | _ -> None
          in
          Option.map
            (fun st ->
              ( key,
                {
                  j_fp = fp;
                  j_status = st;
                  j_attempts =
                    Option.value ~default:1
                      (Option.bind (Value.member "attempts" v) Value.to_int);
                  j_result =
                    Option.value ~default:Value.Null
                      (Value.member "result" v);
                } ))
            status
      | _ -> None)

(* Replay the journal: complete lines only (the final newline-less
   segment is a torn write and is discarded), stopping at the first
   line that fails to parse — everything after a corrupt record is
   suspect. Later records for the same key win (a resumed run appends
   fresh records for re-run cells). *)
let load_journal path =
  let entries = Hashtbl.create 64 in
  (match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      let len = in_channel_length ic in
      let data = Chaos.on_journal_read (really_input_string ic len) in
      close_in ic;
      let len = String.length data in
      let stop = ref false in
      let pos = ref 0 in
      while (not !stop) && !pos < len do
        match String.index_from_opt data !pos '\n' with
        | None -> stop := true (* torn tail: no newline *)
        | Some nl ->
            let line = String.sub data !pos (nl - !pos) in
            pos := nl + 1;
            if line <> "" then (
              match entry_of_line line with
              | Some (key, e) -> Hashtbl.replace entries key e
              | None -> stop := true)
      done);
  entries

(* ------------------------------------------------------------------ *)
(* Journal locking                                                     *)
(* ------------------------------------------------------------------ *)

(* Two campaigns appending to one journal would interleave records and
   poison any later resume; fail fast instead. fcntl locks only conflict
   across processes — within one process the kernel happily re-grants
   them — so an in-process registry of locked paths backs up [lockf]. *)
let locked_paths : (string, unit) Hashtbl.t = Hashtbl.create 4
let locked_mu = Mutex.create ()

let lock_journal path oc =
  let id = try Unix.realpath path with Unix.Unix_error _ -> path in
  Mutex.lock locked_mu;
  let mine = not (Hashtbl.mem locked_paths id) in
  if mine then Hashtbl.add locked_paths id ();
  Mutex.unlock locked_mu;
  if not mine then raise (Journal_locked path);
  (match Unix.lockf (Unix.descr_of_out_channel oc) Unix.F_TLOCK 0 with
  | () -> ()
  | exception Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
      Mutex.lock locked_mu;
      Hashtbl.remove locked_paths id;
      Mutex.unlock locked_mu;
      raise (Journal_locked path)
  | exception Unix.Unix_error _ ->
      (* Filesystem without lock support: the registry still protects
         same-process collisions, which covers every test we can run. *)
      ());
  id

let unlock_journal id =
  Mutex.lock locked_mu;
  Hashtbl.remove locked_paths id;
  Mutex.unlock locked_mu

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run (type r) ?(domains = 1) ?(policy = default_policy)
    ~(codec : r codec) (cells : r cell array) : r outcome =
  let n = Array.length cells in
  let seen = Hashtbl.create n in
  Array.iter
    (fun (c : r cell) ->
      if Hashtbl.mem seen c.key then
        invalid_arg
          (Printf.sprintf "Campaign.run: duplicate cell key %S" c.key);
      Hashtbl.add seen c.key ())
    cells;
  let fps = Array.map (fun c -> fingerprint c.config) cells in
  let prior =
    match policy.journal with
    | Some path when policy.resume -> load_journal path
    | Some _ | None -> Hashtbl.create 0
  in
  let records : r record option array = Array.make n None in
  let pending = ref [] in
  for i = n - 1 downto 0 do
    let c = cells.(i) in
    let restored =
      match Hashtbl.find_opt prior c.key with
      | Some e when e.j_fp = fps.(i) && e.j_status = Ok -> (
          match codec.decode e.j_result with
          | Some r ->
              records.(i) <-
                Some
                  {
                    key = c.key;
                    fingerprint = fps.(i);
                    status = Ok;
                    result = Some r;
                    attempts = e.j_attempts;
                    replayed = true;
                    last_exn = None;
                  };
              true
          | None -> false)
      | _ -> false
    in
    if not restored then pending := i :: !pending
  done;
  let pending = Array.of_list !pending in
  let jout, jlock =
    match policy.journal with
    | None -> (None, None)
    | Some path -> (
        (* Fresh campaigns truncate; resumed ones append after the last
           complete record (a torn tail is overwritten in place). *)
        let flags =
          if policy.resume then [ Open_wronly; Open_append; Open_creat ]
          else [ Open_wronly; Open_trunc; Open_creat ]
        in
        let oc = open_out_gen flags 0o644 path in
        match lock_journal path oc with
        | id -> (Some oc, Some id)
        | exception e ->
            close_out_noerr oc;
            raise e)
  in
  let jmu = Mutex.create () in
  let git = Bench_json.git_rev () in
  let journal rc =
    match jout with
    | None -> ()
    | Some oc ->
        let encoded =
          match rc.result with
          | Some r -> codec.encode r
          | None -> Value.Null
        in
        let line = render_record ~git rc ~encoded in
        Mutex.lock jmu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock jmu)
          (fun () ->
            (* The record is only durable once it reaches the device: a
               resumed run must never observe a half-written line that a
               crashed predecessor thought was committed. *)
            let fsync () =
              try Unix.fsync (Unix.descr_of_out_channel oc)
              with Unix.Unix_error _ -> ()
            in
            try
              match Chaos.on_journal_write line with
              | `Write ->
                  output_string oc line;
                  output_char oc '\n';
                  flush oc;
                  fsync ()
              | `Dup ->
                  output_string oc line;
                  output_char oc '\n';
                  output_string oc line;
                  output_char oc '\n';
                  flush oc;
                  fsync ()
              | `Enospc ->
                  (* Simulated full disk: only durability is lost — the
                     in-memory result stands and a resume re-runs the
                     cell. *)
                  ()
              | `Torn k ->
                  (* Crash mid-append: the torn prefix really reaches
                     the device before the simulated death. *)
                  output_string oc (String.sub line 0 k);
                  flush oc;
                  fsync ();
                  Chaos.raise_injected Chaos.Journal_write
            with Sys_error _ ->
              (* A real write failure degrades the same way as ENOSPC:
                 keep the result, lose the durability. *)
              ())
  in
  let exec i =
    let c = cells.(i) in
    let deadline = make_deadline policy.cell_deadline in
    let rec attempt k =
      match c.run ~deadline ~attempt:k with
      | r ->
          {
            key = c.key;
            fingerprint = fps.(i);
            status = Ok;
            result = Some r;
            attempts = k + 1;
            replayed = false;
            last_exn = None;
          }
      | exception Deadline_exceeded ->
          {
            key = c.key;
            fingerprint = fps.(i);
            status = Timeout;
            result = None;
            attempts = k + 1;
            replayed = false;
            last_exn = None;
          }
      | exception exn ->
          if k < policy.retries then attempt (k + 1)
          else
            {
              key = c.key;
              fingerprint = fps.(i);
              status = Error (Printexc.to_string exn);
              result = None;
              attempts = k + 1;
              replayed = false;
              last_exn = Some exn;
            }
    in
    attempt 0
  in
  let fresh =
    (* Injected crashes (and anything else) must still release the
       journal channel and lock: a chaos storm that kills the campaign
       leaves the journal free for the resume run. *)
    Fun.protect
      ~finally:(fun () ->
        (match jout with None -> () | Some oc -> close_out_noerr oc);
        match jlock with None -> () | Some id -> unlock_journal id)
      (fun () ->
        Parrun.map ~domains
          ~ctx:(fun () -> ())
          (Array.length pending)
          (fun () t ->
            let rc = exec pending.(t) in
            journal rc;
            rc))
  in
  Array.iteri (fun t rc -> records.(pending.(t)) <- Some rc) fresh;
  let records = Array.map Option.get records in
  let counts =
    Array.fold_left
      (fun acc rc ->
        match rc.status with
        | Ok ->
            {
              acc with
              ok = acc.ok + 1;
              replayed = (acc.replayed + if rc.replayed then 1 else 0);
            }
        | Timeout -> { acc with timeout = acc.timeout + 1 }
        | Error _ -> { acc with error = acc.error + 1 })
      { ok = 0; timeout = 0; error = 0; replayed = 0 }
      records
  in
  { records; counts }
