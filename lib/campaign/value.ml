type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* 17 significant digits reconstruct any double exactly; the suffix
   check keeps integral floats distinguishable from Ints on re-parse. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Value.to_string: non-finite float";
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ ".0"

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%S" k);
          Buffer.add_char buf ':';
          print buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Bad else advance () in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise Bad
  in
  (* The string body runs to the first unescaped quote; OCaml escaping
     never emits a bare '"' inside, so scanning for it is exact. *)
  let parse_string () =
    expect '"';
    let start = !pos in
    let rec find () =
      if !pos >= n then raise Bad
      else
        match s.[!pos] with
        | '"' -> ()
        | '\\' ->
            advance ();
            if !pos >= n then raise Bad;
            advance ();
            find ()
        | _ ->
            advance ();
            find ()
    in
    find ();
    let body = String.sub s start (!pos - start) in
    advance ();
    match Scanf.unescaped body with
    | u -> u
    | exception Scanf.Scan_failure _ -> raise Bad
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    then
      match float_of_string_opt tok with
      (* Reject overflow-to-infinity (e.g. "1e999"): [to_string] cannot
         render non-finite floats, so accepting one here would produce
         an unserializable value from a parse. *)
      | Some f when Float.is_finite f -> Float f
      | Some _ | None -> raise Bad
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> raise Bad
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Bad;
    v
  with
  | v -> Some v
  | exception Bad -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let to_int = function Int i -> Some i | _ -> None
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let opt_int_list = function
  | List items -> (
      try
        Some
          (List.map
             (function Null -> None | Int i -> Some i | _ -> raise Bad)
             items)
      with Bad -> None)
  | _ -> None
