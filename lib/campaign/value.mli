(** Self-describing values for journaled cell results.

    The campaign journal stores each completed cell's result as one
    JSON-lines record; {!t} is the wire form, {!to_string} the printer
    and {!parse} its exact inverse. The grammar is JSON with OCaml
    string escaping ([%S] on the way out, [Scanf.unescaped] on the way
    back), which round-trips every OCaml string byte-exactly — the only
    consumer is {!parse}, so interoperability with strict JSON parsers
    matters less than [parse (to_string v) = Some v].

    Resumed campaigns merge replayed values with freshly computed ones,
    so the round-trip must be exact: integers print in decimal, finite
    floats print with 17 significant digits (enough to reconstruct every
    double) and always carry a ['.'] or exponent so they re-parse as
    [Float], not [Int]. Non-finite floats are rejected by {!to_string} —
    journaled results must be finite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** keys must not repeat *)

and t_float = float

(** Compact, deterministic rendering on one line (no newlines, so a
    journal record is self-delimiting).
    @raise Invalid_argument on a non-finite float. *)
val to_string : t -> string

(** [parse s] parses exactly one value and returns [None] on trailing
    garbage or malformed input — a torn journal line never parses.
    Numbers that overflow ([int] literals beyond [max_int], float
    literals that round to infinity) are malformed: every parsed value
    re-serializes through {!to_string}. *)
val parse : string -> t option

(** Accessors used by decoders: [None] when the shape doesn't match. *)

val to_int : t -> int option
val member : string -> t -> t option

(** [int_list v] decodes a [List] of [Int]/[Null] items, the common
    per-seed result row shape. *)
val opt_int_list : t -> int option list option
