(** Crash-tolerant experiment-matrix orchestrator.

    A campaign is a matrix of {e cells} — one cell per (topology ×
    protocol × adversary/fault config × budget × seed block) point — and
    every lab (faultlab, netlab, byzlab, simlab) compiles its scenario
    sweep into such cells. The driver shards cells across the persistent
    domain pool ({!Stateless_core.Parrun}), and because every cell's
    result is a pure function of its fingerprinted config, the merged
    campaign is assembled in matrix order and is bit-identical for every
    domain count, execution order, and — with a journal — for any
    kill/resume split.

    {2 Journal}

    With [policy.journal = Some path], each completed cell is appended
    to [path] as one self-delimiting JSON-lines record (newline
    terminated, flushed and [fsync]'d before the driver moves on):

    {v
    {"cell":<key>,"fp":<fingerprint>,"status":"ok"|"timeout"|"error",
     "attempts":n,"git":<rev>,"msg":<error text>,"result":<value>}
    v}

    On [resume = true] the driver replays the journal before running:
    [ok] records whose fingerprint matches the cell's current config are
    restored without re-execution; a torn tail (a final line without its
    newline, or that fails to parse) is discarded and its cell re-run;
    [timeout]/[error] records are re-run too (a resumed campaign gives
    previously poisoned cells another chance — their re-run appends a
    fresh record, and the last record per key wins). A campaign killed
    at an arbitrary point and resumed therefore produces a final merged
    result byte-identical to the uninterrupted run.

    Without [resume], an existing journal at [path] is truncated.

    {2 Robustness policy}

    [cell_deadline] is a wall-clock budget per cell, measured on a
    monotone-clamped clock (the max-so-far of [Unix.gettimeofday] —
    never steps backwards) and enforced cooperatively: the cell's [run]
    polls its [deadline] argument inside its own loop (between seeds,
    blocks or horizon slices — no signals are involved) and raises
    {!Deadline_exceeded} when it reads [true]; the driver retires the
    cell with a [Timeout] record. A cell that raises any other exception
    is retried up to [retries] more times — each attempt passes an
    incremented [attempt] so the cell can reseed — and after the last
    failure is retired with a structured [Error] record; the campaign
    always completes, and {!counts} reports the ok/timeout/error split. *)

(** Raised by a cell's [run] when its [deadline] poll returns [true]. *)
exception Deadline_exceeded

(** Raised by {!run} when another live campaign already holds the
    journal path named in the payload — concurrent appenders would
    interleave records and poison any later resume. Detection uses an
    [fcntl] write lock on the journal plus an in-process path registry
    (fcntl locks never conflict within one process). The lock is
    released when the campaign finishes, crashes, or is killed. *)
exception Journal_locked of string

type status = Ok | Timeout | Error of string

type 'r cell = {
  key : string;
      (** unique within the matrix and stable across runs — the journal
          replay key *)
  config : string;
      (** canonical description of everything the result depends on;
          hashed into the record's fingerprint, so any config change
          forces a re-run on resume *)
  run : deadline:(unit -> bool) -> attempt:int -> 'r;
      (** computes the cell; polls [deadline] inside its loop and raises
          {!Deadline_exceeded} when it reads [true]; [attempt] is 0 on
          the first execution and increments per retry (reseed with it) *)
}

(** How a cell result crosses the journal: [decode (parse (to_string
    (encode r)))] must reconstruct [r] exactly, or resumed merges lose
    byte-identity. [decode] returns [None] on shape mismatch (the cell
    is then re-run). *)
type 'r codec = { encode : 'r -> Value.t; decode : Value.t -> 'r option }

type 'r record = {
  key : string;
  fingerprint : string;
  status : status;
  result : 'r option;  (** [Some] exactly when [status = Ok] *)
  attempts : int;
  replayed : bool;  (** restored from the journal, not executed *)
  last_exn : exn option;
      (** the original exception behind an [Error], when it happened in
          this process (replayed records carry only the message) *)
}

type counts = {
  ok : int;
  timeout : int;
  error : int;
  replayed : int;  (** subset of [ok] restored from the journal *)
}

type 'r outcome = { records : 'r record array; counts : counts }
(** [records] is in matrix (input) order regardless of execution order. *)

type policy = {
  journal : string option;
  resume : bool;
  cell_deadline : float option;  (** wall-clock seconds per cell *)
  retries : int;  (** extra executions after a raise (not after timeout) *)
}

(** No journal, no resume, no deadline, no retries — labs' plain [run]
    entry points use this, so their campaigns behave exactly as before. *)
val default_policy : policy

(** Hex fingerprint of a config string (FNV-1a, 64-bit). *)
val fingerprint : string -> string

(** The monotone-clamped wall clock used for deadlines, in seconds. *)
val now : unit -> float

(** Seed stride between retry attempts: labs derive attempt [a]'s first
    seed as [seed0 + a * reseed_stride], so a retried cell re-executes
    with fresh randomness while attempt numbers stay deterministic. *)
val reseed_stride : int

(** [run ~codec cells] executes the matrix under [policy] (default
    {!default_policy}), sharding pending cells over [domains] (default
    1) through the domain pool.
    @raise Invalid_argument on duplicate cell keys. *)
val run :
  ?domains:int ->
  ?policy:policy ->
  codec:'r codec ->
  'r cell array ->
  'r outcome
