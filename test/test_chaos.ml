(* Chaos layer + storm campaigns + differential fuzzer. *)

module Chaos = Stateless_core.Chaos
module Campaign = Stateless_campaign.Campaign
module Chaoslab = Stateless_chaoslab.Chaoslab

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Chaos decisions are deterministic and validated                     *)
(* ------------------------------------------------------------------ *)

let test_disarmed_is_identity () =
  Chaos.disarm ();
  check_bool "disarmed" false (Chaos.armed ());
  Chaos.on_pool_chunk ~slot:0 ~chunk:0;
  (match Chaos.on_journal_write "line" with
  | `Write -> ()
  | _ -> Alcotest.fail "disarmed journal write not `Write");
  Alcotest.(check string) "read" "abc" (Chaos.on_journal_read "abc");
  Alcotest.(check (float 0.0)) "clock" 1.5 (Chaos.on_clock 1.5)

let test_arm_rejects_nonsense () =
  let bad rules =
    match Chaos.arm ~seed:1 rules with
    | () ->
        Chaos.disarm ();
        Alcotest.fail "arm accepted an invalid rule"
    | exception Invalid_argument _ -> ()
  in
  bad [ { Chaos.site = Chaos.Clock_read; trigger = Chaos.At [ 0 ]; action = Chaos.Crash } ];
  bad [ { Chaos.site = Chaos.Pool_chunk; trigger = Chaos.Prob 1.5; action = Chaos.Crash } ];
  bad [ { Chaos.site = Chaos.Pool_chunk; trigger = Chaos.At [ -1 ]; action = Chaos.Crash } ];
  bad
    [ { Chaos.site = Chaos.Journal_read; trigger = Chaos.At [ 0 ]; action = Chaos.Short_read (-2) } ];
  Chaos.disarm ()

let test_at_trigger_fires_exactly () =
  Chaos.arm ~seed:7
    [ { Chaos.site = Chaos.Pool_chunk; trigger = Chaos.At [ 2 ]; action = Chaos.Crash } ];
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Chaos.on_pool_chunk ~slot:0 ~chunk:0;
      Chaos.on_pool_chunk ~slot:0 ~chunk:1;
      (match Chaos.on_pool_chunk ~slot:0 ~chunk:2 with
      | () -> Alcotest.fail "op 2 did not crash"
      | exception Chaos.Injected { site = Chaos.Pool_chunk; op = 2 } -> ()
      | exception Chaos.Injected _ -> Alcotest.fail "wrong injection identity");
      Chaos.on_pool_chunk ~slot:0 ~chunk:3;
      check "one injection" 1 (Chaos.fired ()))

let test_prob_trigger_replays () =
  let storm () =
    Chaos.arm ~seed:99
      [ { Chaos.site = Chaos.Pool_chunk; trigger = Chaos.Prob 0.3; action = Chaos.Crash } ];
    Fun.protect ~finally:Chaos.disarm (fun () ->
        let fired = ref [] in
        for op = 0 to 63 do
          match Chaos.on_pool_chunk ~slot:0 ~chunk:op with
          | () -> ()
          | exception Chaos.Injected _ -> fired := op :: !fired
        done;
        !fired)
  in
  let a = storm () and b = storm () in
  check_bool "same decisions both storms" true (a = b);
  check_bool "some ops fired" true (List.length a > 0);
  check_bool "some ops survived" true (List.length a < 64)

let test_torn_is_strict_prefix () =
  Chaos.arm ~seed:3
    [ { Chaos.site = Chaos.Journal_write; trigger = Chaos.At [ 0 ]; action = Chaos.Torn 9999 } ];
  Fun.protect ~finally:Chaos.disarm (fun () ->
      match Chaos.on_journal_write "short line" with
      | `Torn k ->
          check_bool "tear strictly inside the record" true
            (k >= 0 && k < String.length "short line")
      | _ -> Alcotest.fail "expected a torn write")

let test_clock_jump_accumulates () =
  Chaos.arm ~seed:5
    [ { Chaos.site = Chaos.Clock_read; trigger = Chaos.At [ 1 ]; action = Chaos.Jump 100.0 } ];
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Alcotest.(check (float 1e-9)) "op 0 unskewed" 10.0 (Chaos.on_clock 10.0);
      Alcotest.(check (float 1e-9)) "op 1 jumps" 110.0 (Chaos.on_clock 10.0);
      Alcotest.(check (float 1e-9)) "op 2 keeps skew" 120.0 (Chaos.on_clock 20.0))

(* ------------------------------------------------------------------ *)
(* Campaign survives journal-site injections                           *)
(* ------------------------------------------------------------------ *)

let int_codec =
  {
    Campaign.encode = (fun n -> Stateless_campaign.Value.Int n);
    decode = Stateless_campaign.Value.to_int;
  }

let mk_cells n =
  Array.init n (fun i ->
      {
        Campaign.key = Printf.sprintf "cell/%d" i;
        config = Printf.sprintf "square %d" i;
        run = (fun ~deadline:_ ~attempt:_ -> i * i);
      })

let tmp_journal () = Filename.temp_file "test_chaos" ".jsonl"

let outcome_digest (o : int Campaign.outcome) =
  Array.to_list o.records
  |> List.map (fun (rc : int Campaign.record) ->
         Printf.sprintf "%s:%s:%s" rc.key
           (match rc.status with
           | Campaign.Ok -> "ok"
           | Campaign.Timeout -> "timeout"
           | Campaign.Error _ -> "error")
           (match rc.result with Some r -> string_of_int r | None -> "-"))
  |> String.concat ";"

let test_campaign_rides_out_torn_dup_enospc () =
  let path = tmp_journal () in
  let reference = Campaign.run ~codec:int_codec (mk_cells 8) in
  (* Deterministic mixed storm on the journal site: first write torn
     (crash), later writes duplicated and dropped. *)
  Chaos.arm ~seed:11
    [
      { Chaos.site = Chaos.Journal_write; trigger = Chaos.At [ 1 ]; action = Chaos.Torn 7 };
      { Chaos.site = Chaos.Journal_write; trigger = Chaos.At [ 3 ]; action = Chaos.Duplicate };
      { Chaos.site = Chaos.Journal_write; trigger = Chaos.At [ 4 ]; action = Chaos.Enospc };
    ];
  let policy =
    { Campaign.default_policy with journal = Some path; resume = false }
  in
  (match Campaign.run ~policy ~codec:int_codec (mk_cells 8) with
  | _ -> Alcotest.fail "torn write should have crashed the campaign"
  | exception Chaos.Injected { site = Chaos.Journal_write; _ } -> ());
  Chaos.disarm ();
  (* The journal now ends in a torn record; a clean resume must discard
     the tear, replay the committed prefix and re-run the rest. *)
  let resumed =
    Campaign.run
      ~policy:{ policy with resume = true }
      ~codec:int_codec (mk_cells 8)
  in
  Alcotest.(check string)
    "resume identical to uninterrupted" (outcome_digest reference)
    (outcome_digest resumed);
  check_bool "some cells replayed from journal" true
    (resumed.counts.replayed >= 1);
  Sys.remove path

let test_campaign_duplicate_records_replay () =
  let path = tmp_journal () in
  Chaos.arm ~seed:13
    [ { Chaos.site = Chaos.Journal_write; trigger = Chaos.Prob 1.0; action = Chaos.Duplicate } ];
  let policy =
    { Campaign.default_policy with journal = Some path; resume = false }
  in
  let first =
    Fun.protect ~finally:Chaos.disarm (fun () ->
        Campaign.run ~policy ~codec:int_codec (mk_cells 5))
  in
  check "five ok" 5 first.counts.ok;
  let resumed =
    Campaign.run
      ~policy:{ policy with resume = true }
      ~codec:int_codec (mk_cells 5)
  in
  check "all five replayed despite duplicates" 5 resumed.counts.replayed;
  Alcotest.(check string)
    "identical" (outcome_digest first) (outcome_digest resumed);
  Sys.remove path

let test_campaign_short_read_rerunning () =
  let path = tmp_journal () in
  let policy =
    { Campaign.default_policy with journal = Some path; resume = false }
  in
  let first = Campaign.run ~policy ~codec:int_codec (mk_cells 6) in
  (* Truncate the journal on load: the cut tail must be re-run, and the
     merge must still match. *)
  Chaos.arm ~seed:17
    [ { Chaos.site = Chaos.Journal_read; trigger = Chaos.At [ 0 ]; action = Chaos.Short_read 30 } ];
  let resumed =
    Fun.protect ~finally:Chaos.disarm (fun () ->
        Campaign.run
          ~policy:{ policy with resume = true }
          ~codec:int_codec (mk_cells 6))
  in
  Alcotest.(check string)
    "identical" (outcome_digest first) (outcome_digest resumed);
  check_bool "short read forced re-runs" true
    (resumed.counts.replayed < 6);
  Sys.remove path

let test_backwards_clock_jump_absorbed () =
  Chaos.arm ~seed:19
    [ { Chaos.site = Chaos.Clock_read; trigger = Chaos.Prob 0.5; action = Chaos.Jump (-50.0) } ];
  let o =
    Fun.protect ~finally:Chaos.disarm (fun () ->
        let policy =
          { Campaign.default_policy with cell_deadline = Some 3600.0 }
        in
        Campaign.run ~policy ~codec:int_codec (mk_cells 6))
  in
  (* The monotone clamp absorbs backwards steps: nothing may time out. *)
  check "all ok under backwards clock" 6 o.counts.ok

(* ------------------------------------------------------------------ *)
(* Journal locking                                                     *)
(* ------------------------------------------------------------------ *)

let test_journal_locked_fails_fast () =
  let path = tmp_journal () in
  let policy =
    { Campaign.default_policy with journal = Some path; resume = false }
  in
  let cells =
    [|
      {
        Campaign.key = "outer";
        config = "outer";
        run =
          (fun ~deadline:_ ~attempt:_ ->
            (* A second campaign on the same journal path while the
               first is live must fail fast, not interleave. *)
            match Campaign.run ~policy ~codec:int_codec (mk_cells 2) with
            | _ -> Alcotest.fail "nested campaign on locked journal ran"
            | exception Campaign.Journal_locked _ -> 42);
      };
    |]
  in
  let o = Campaign.run ~policy ~codec:int_codec cells in
  check "outer ok" 1 o.counts.ok;
  (match o.records.(0).result with
  | Some 42 -> ()
  | _ -> Alcotest.fail "nested run did not raise Journal_locked");
  (* The lock is released afterwards: a fresh campaign may reuse it. *)
  let again = Campaign.run ~policy ~codec:int_codec (mk_cells 2) in
  check "lock released" 2 again.counts.ok;
  Sys.remove path

let test_journal_lock_released_on_crash () =
  let path = tmp_journal () in
  let policy =
    { Campaign.default_policy with journal = Some path; resume = false }
  in
  Chaos.arm ~seed:23
    [ { Chaos.site = Chaos.Journal_write; trigger = Chaos.At [ 0 ]; action = Chaos.Crash } ];
  (match
     Fun.protect ~finally:Chaos.disarm (fun () ->
         Campaign.run ~policy ~codec:int_codec (mk_cells 3))
   with
  | _ -> Alcotest.fail "injected journal crash did not propagate"
  | exception Chaos.Injected _ -> ());
  (* The dying campaign must have released the lock on its way out. *)
  let o =
    Campaign.run
      ~policy:{ policy with resume = true }
      ~codec:int_codec (mk_cells 3)
  in
  check "crashed campaign released its journal lock" 3 o.counts.ok;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Storm campaigns across the four labs                                *)
(* ------------------------------------------------------------------ *)

let test_storms_resume_identical () =
  let domains =
    match Stateless_core.Parrun.env_domains () with Some d -> d | None -> 2
  in
  let reports =
    Chaoslab.run_storms ~domains ~rounds:3 ~seed:2026 ()
  in
  check "four legs" 4 (List.length reports);
  List.iter
    (fun (r : Chaoslab.leg_report) ->
      check_bool
        (Printf.sprintf "leg %s: injections landed" r.leg)
        true
        (Chaoslab.injected r.injections > 0);
      check_bool
        (Printf.sprintf "leg %s: resumed identical (crashes=%d degraded=%d)"
           r.leg r.crashes r.degraded)
        true r.identical)
    reports

(* ------------------------------------------------------------------ *)
(* Differential fuzzer                                                 *)
(* ------------------------------------------------------------------ *)

module Fuzz = Stateless_chaoslab.Fuzz

let test_fuzz_clean_run_agrees () =
  let r = Fuzz.run ~seed:42 ~budget:40 () in
  check "tried all" 40 r.tried;
  check_bool "ran many comparisons" true (r.comparisons >= 40);
  (match r.found with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "real cross-engine divergence: %s vs %s at step %d (%s)"
        (fst f.original.pair) (snd f.original.pair) f.original.step
        f.original.detail);
  Alcotest.(check (float 1e-9)) "no shrinks" 1.0 r.mean_shrink_ratio

let assert_mutant_found mutant =
  let r = Fuzz.run ~mutant ~seed:7 ~budget:30 () in
  check_bool
    (Printf.sprintf "mutant %s detected" (Fuzz.mutant_name mutant))
    true
    (r.found <> []);
  List.iter
    (fun (f : Fuzz.found) ->
      let s = f.shrunk.scenario in
      check_bool
        (Printf.sprintf "witness small: %d nodes, %d steps" s.nodes s.steps)
        true
        (s.nodes <= 4 && s.steps <= 16);
      check_bool "shrunk no larger than original" true
        (Fuzz.size s <= Fuzz.size f.original.scenario);
      (* The serialized witness must reproduce the divergence. *)
      match Fuzz.replay (Fuzz.witness_to_value ~mutant f.shrunk) with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.fail "witness did not replay"
      | Error e -> Alcotest.failf "witness rejected: %s" e)
    r.found

let test_fuzz_detects_stale_read () = assert_mutant_found Fuzz.Stale_read
let test_fuzz_detects_dropped_write () =
  assert_mutant_found Fuzz.Dropped_write

let test_fuzz_scenario_roundtrip () =
  for i = 0 to 30 do
    let s = Fuzz.gen ~seed:5 i in
    match Fuzz.scenario_of_value (Fuzz.scenario_to_value s) with
    | Some s' -> check_bool "scenario round-trips" true (s = s')
    | None -> Alcotest.fail "scenario failed to decode"
  done

let test_fuzz_deterministic () =
  let a = Fuzz.run ~mutant:Fuzz.Stale_read ~seed:11 ~budget:12 () in
  let b = Fuzz.run ~mutant:Fuzz.Stale_read ~seed:11 ~budget:12 () in
  check "same divergence count" (List.length a.found) (List.length b.found);
  List.iter2
    (fun (x : Fuzz.found) (y : Fuzz.found) ->
      check_bool "same shrunk witness" true (x.shrunk = y.shrunk))
    a.found b.found

let () =
  Alcotest.run "stateless_chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "disarmed is identity" `Quick
            test_disarmed_is_identity;
          Alcotest.test_case "arm rejects nonsense" `Quick
            test_arm_rejects_nonsense;
          Alcotest.test_case "At fires exactly" `Quick
            test_at_trigger_fires_exactly;
          Alcotest.test_case "Prob replays" `Quick test_prob_trigger_replays;
          Alcotest.test_case "torn is strict prefix" `Quick
            test_torn_is_strict_prefix;
          Alcotest.test_case "clock jump accumulates" `Quick
            test_clock_jump_accumulates;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "torn/dup/enospc storm" `Quick
            test_campaign_rides_out_torn_dup_enospc;
          Alcotest.test_case "duplicates replay" `Quick
            test_campaign_duplicate_records_replay;
          Alcotest.test_case "short read re-runs" `Quick
            test_campaign_short_read_rerunning;
          Alcotest.test_case "backwards clock absorbed" `Quick
            test_backwards_clock_jump_absorbed;
        ] );
      ( "locking",
        [
          Alcotest.test_case "locked journal fails fast" `Quick
            test_journal_locked_fails_fast;
          Alcotest.test_case "lock released on crash" `Quick
            test_journal_lock_released_on_crash;
        ] );
      ( "storms",
        [
          Alcotest.test_case "labs resume identical" `Quick
            test_storms_resume_identical;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean run agrees" `Quick
            test_fuzz_clean_run_agrees;
          Alcotest.test_case "detects stale read" `Quick
            test_fuzz_detects_stale_read;
          Alcotest.test_case "detects dropped write" `Quick
            test_fuzz_detects_dropped_write;
          Alcotest.test_case "scenario round-trips" `Quick
            test_fuzz_scenario_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
        ] );
    ]
