(* Differential suite: the batched lock-step {!Batch} against per-instance
   {!Kernel} runs on randomized protocols, schedules and all three reaction
   tiers, for batch sizes {1, 2, 7, 64}; plus batched campaign determinism
   across batch sizes and domain counts. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Batch = Stateless_core.Batch
module Parrun = Stateless_core.Parrun
module Schedule = Stateless_core.Schedule
module Proptest = Stateless_core.Proptest

let random_protocol seed = Proptest.random_protocol seed
let random_config = Proptest.random_config
let schedules_for seed n = Proptest.schedules_for seed n
let config_eq = Proptest.config_eq

(* One batch per tier; the tier choice must stay observably invisible
   through the planes exactly as it is through the per-instance kernel. *)
let kernels p ~input =
  [
    ("table", Kernel.create p ~input);
    ("memo", Kernel.create ~max_table_words:0 p ~input);
    ("raw", Kernel.create ~max_table_words:0 ~max_memo_entries:0 p ~input);
  ]

let outcome_eq p a b =
  match (a, b) with
  | ( Engine.Stabilized { rounds = r1; config = c1 },
      Engine.Stabilized { rounds = r2; config = c2 } ) ->
      r1 = r2 && config_eq p c1 c2
  | ( Engine.Oscillating { entered = e1; period = q1 },
      Engine.Oscillating { entered = e2; period = q2 } ) ->
      e1 = e2 && q1 = q2
  | Engine.Exhausted c1, Engine.Exhausted c2 -> config_eq p c1 c2
  | _ -> false

let settled_eq p a b =
  match (a, b) with
  | None, None -> true
  | Some s1, Some s2 ->
      s1.Engine.settle_time = s2.Engine.settle_time
      && s1.Engine.settled_outputs = s2.Engine.settled_outputs
      && config_eq p s1.Engine.horizon_config s2.Engine.horizon_config
  | _ -> false

let batch_sizes = [ 1; 2; 7; 64 ]
let trials = 12

(* ------------------------------------------------------------------ *)
(* Lock-step stepping                                                  *)
(* ------------------------------------------------------------------ *)

let test_step_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    List.iter
      (fun (tier, k) ->
        let bt = Batch.create k in
        List.iter
          (fun b ->
            List.iter
              (fun schedule ->
                let inits = Array.init b (fun _ -> random_config p st) in
                let steps = 1 + Random.State.int st 30 in
                Batch.load_block bt inits;
                for s = 0 to steps - 1 do
                  Batch.step bt ~active:(schedule.Schedule.active s)
                done;
                Array.iteri
                  (fun j init ->
                    let expect = Kernel.run k ~init ~schedule ~steps in
                    let got = Batch.store bt ~j in
                    if not (config_eq p expect got) then
                      Alcotest.failf
                        "lock-step mismatch (seed %d, tier %s, b=%d, j=%d, %s)"
                        seed tier b j schedule.Schedule.name)
                  inits)
              (schedules_for seed n))
          batch_sizes)
      (kernels p ~input)
  done

(* Retired instances must keep answering probes from their snapshot while
   the survivors keep stepping. *)
let test_retire_snapshot () =
  let p, input, st = random_protocol 5 in
  let n = Protocol.num_nodes p in
  let m = Protocol.num_edges p in
  let k = Kernel.create p ~input in
  let bt = Batch.create k in
  let schedule = Schedule.synchronous n in
  let inits = Array.init 6 (fun _ -> random_config p st) in
  Batch.load_block bt inits;
  for s = 0 to 4 do
    Batch.step bt ~active:(schedule.Schedule.active s)
  done;
  let frozen = Batch.store bt ~j:2 in
  let codes = Array.init m (fun e -> Batch.label_code bt ~j:2 e) in
  Batch.retire bt ~j:2;
  Alcotest.(check bool) "retired not live" false (Batch.is_live bt ~j:2);
  Alcotest.(check int) "live count" 5 (Batch.live_count bt);
  for s = 5 to 14 do
    Batch.step bt ~active:(schedule.Schedule.active s)
  done;
  Alcotest.(check bool) "snapshot config unchanged" true
    (config_eq p frozen (Batch.store bt ~j:2));
  Array.iteri
    (fun e c ->
      Alcotest.(check int) "snapshot label code" c (Batch.label_code bt ~j:2 e))
    codes;
  (* Survivors match per-instance runs of the same length. *)
  Array.iteri
    (fun j init ->
      if j <> 2 then
        let expect = Kernel.run k ~init ~schedule ~steps:15 in
        if not (config_eq p expect (Batch.store bt ~j)) then
          Alcotest.failf "survivor %d diverged after retire" j)
    inits

(* ------------------------------------------------------------------ *)
(* run_until_stable / settle                                           *)
(* ------------------------------------------------------------------ *)

let test_run_until_stable_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    List.iter
      (fun (tier, k) ->
        let bt = Batch.create k in
        List.iter
          (fun b ->
            List.iter
              (fun schedule ->
                let inits = Array.init b (fun _ -> random_config p st) in
                let max_steps = 60 in
                let got =
                  Batch.run_until_stable bt ~inits ~schedule ~max_steps
                in
                Array.iteri
                  (fun j init ->
                    let expect =
                      Kernel.run_until_stable k ~init ~schedule ~max_steps
                    in
                    if not (outcome_eq p expect got.(j)) then
                      Alcotest.failf
                        "run_until_stable mismatch (seed %d, tier %s, b=%d, \
                         j=%d, %s)"
                        seed tier b j schedule.Schedule.name)
                  inits)
              (schedules_for seed n))
          batch_sizes)
      (kernels p ~input)
  done

let test_settle_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    List.iter
      (fun (tier, k) ->
        let bt = Batch.create k in
        List.iter
          (fun b ->
            List.iter
              (fun schedule ->
                let inits = Array.init b (fun _ -> random_config p st) in
                let max_steps = 80 in
                let got = Batch.settle bt ~inits ~schedule ~max_steps in
                Array.iteri
                  (fun j init ->
                    let expect = Kernel.settle k ~init ~schedule ~max_steps in
                    if not (settled_eq p expect got.(j)) then
                      Alcotest.failf
                        "settle mismatch (seed %d, tier %s, b=%d, j=%d, %s)"
                        seed tier b j schedule.Schedule.name)
                  inits)
              (schedules_for seed n))
          batch_sizes)
      (kernels p ~input)
  done

(* A batch is reused across blocks of varying size in campaigns; shrinking
   then growing blocks must not leak state between blocks. *)
let test_batch_reuse_across_block_sizes () =
  let p, input, st = random_protocol 23 in
  let n = Protocol.num_nodes p in
  let k = Kernel.create p ~input in
  let bt = Batch.create k in
  let schedule = Schedule.synchronous n in
  List.iter
    (fun b ->
      let inits = Array.init b (fun _ -> random_config p st) in
      let got = Batch.settle bt ~inits ~schedule ~max_steps:80 in
      Array.iteri
        (fun j init ->
          let expect = Kernel.settle k ~init ~schedule ~max_steps:80 in
          if not (settled_eq p expect got.(j)) then
            Alcotest.failf "reuse mismatch (block %d, j=%d)" b j)
        inits)
    [ 5; 64; 3; 17; 1; 64 ]

(* ------------------------------------------------------------------ *)
(* Batched campaigns: identical for every batch size and domain count  *)
(* ------------------------------------------------------------------ *)

module Faultlab = Stateless_faultlab.Faultlab
module Netlab = Stateless_netlab.Netlab
module Byzlab = Stateless_byzlab.Byzlab

(* Campaign records are plain data (strings, ints, floats computed
   identically), so structural equality is the bit-identical check. *)
let test_faultlab_campaign_batched () =
  let domain_counts =
    [ 1; 2; 4 ]
    @ (match Parrun.env_domains () with Some d -> [ d ] | None -> [])
  in
  List.iter
    (fun sc ->
      let base =
        Faultlab.run ~fractions:[ 0.25; 1.0 ] ~seeds:5 ~max_steps:2_000 sc
      in
      List.iter
        (fun batch ->
          List.iter
            (fun domains ->
              let got =
                Faultlab.run ~fractions:[ 0.25; 1.0 ] ~seeds:5
                  ~max_steps:2_000 ~batch ~domains sc
              in
              if got <> base then
                Alcotest.failf "%s: batch=%d domains=%d diverged"
                  base.Faultlab.scenario_name batch domains)
            domain_counts)
        [ 1; 2; 4; 64 ])
    (Faultlab.default_scenarios ())

(* Netlab batches only the post-storm recovery phase (storms stay
   per-instance), so the equality sweep exercises the mixed path. *)
let test_netlab_campaign_batched () =
  let budget = { Netlab.k = 4; window = 8 } in
  List.iter
    (fun sc ->
      let base =
        Netlab.run ~seeds:4 ~storm:60 ~max_steps:2_000 ~budget sc
      in
      List.iter
        (fun batch ->
          List.iter
            (fun domains ->
              let got =
                Netlab.run ~seeds:4 ~storm:60 ~max_steps:2_000 ~budget ~batch
                  ~domains sc
              in
              if got <> base then
                Alcotest.failf "%s: batch=%d domains=%d diverged"
                  base.Netlab.scenario_name batch domains)
            [ 1; 2; 4 ])
        [ 2; 7; 64 ])
    (Netlab.default_scenarios ())

(* Byzlab blocks cross placement levels (the batched context takes a
   per-index placement array), so odd batch sizes that straddle level
   boundaries are the interesting cases. *)
let test_byzlab_campaign_batched () =
  List.iter
    (fun strategy ->
      List.iter
        (fun sc ->
          let base =
            Byzlab.run ~seeds:4 ~attack:60 ~max_steps:2_000 ~strategy sc
          in
          List.iter
            (fun batch ->
              List.iter
                (fun domains ->
                  let got =
                    Byzlab.run ~seeds:4 ~attack:60 ~max_steps:2_000 ~strategy
                      ~batch ~domains sc
                  in
                  if got <> base then
                    Alcotest.failf "%s/%s: batch=%d domains=%d diverged"
                      base.Byzlab.scenario_name base.Byzlab.strategy batch
                      domains)
                [ 1; 2; 4 ])
            [ 3; 16; 64 ])
        (Byzlab.default_scenarios ()))
    [ Byzlab.Seeded_random; Byzlab.Anti_majority ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_batch"
    [
      ( "differential",
        [
          Alcotest.test_case "lock-step stepping" `Quick test_step_differential;
          Alcotest.test_case "retire snapshot" `Quick test_retire_snapshot;
          Alcotest.test_case "run_until_stable" `Quick
            test_run_until_stable_differential;
          Alcotest.test_case "settle" `Quick test_settle_differential;
          Alcotest.test_case "reuse across block sizes" `Quick
            test_batch_reuse_across_block_sizes;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "faultlab batched identical" `Quick
            test_faultlab_campaign_batched;
          Alcotest.test_case "netlab batched identical" `Quick
            test_netlab_campaign_batched;
          Alcotest.test_case "byzlab batched identical" `Quick
            test_byzlab_campaign_batched;
        ] );
    ]
