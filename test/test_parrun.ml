(* The persistent domain pool: chunk coverage, exception propagation,
   nested-call inlining, and the bit-identical-across-domain-counts
   contract all the way up through the checker and faultlab campaigns. *)

module Protocol = Stateless_core.Protocol
module Parrun = Stateless_core.Parrun
module Pool = Stateless_core.Pool
module Clique_example = Stateless_core.Clique_example
module Checker = Stateless_checker.Checker
module Faultlab = Stateless_faultlab.Faultlab

let domain_counts = [ 1; 2; 3; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool.run                                                            *)
(* ------------------------------------------------------------------ *)

let test_pool_covers_all_chunks () =
  List.iter
    (fun domains ->
      List.iter
        (fun nchunks ->
          let hits = Array.make (max nchunks 1) 0 in
          Pool.run ~domains ~nchunks (fun ~slot:_ chunk ->
              hits.(chunk) <- hits.(chunk) + 1);
          for c = 0 to nchunks - 1 do
            Alcotest.(check int)
              (Printf.sprintf "domains=%d nchunks=%d chunk %d ran once"
                 domains nchunks c)
              1 hits.(c)
          done)
        [ 1; 2; 7; 40 ])
    domain_counts

let test_pool_slots_compact () =
  (* Every chunk must observe a slot in [0, domains); which slots actually
     claim chunks is scheduling-dependent (fast workers can drain a small
     job before the submitter gets a chunk), so only the range is
     asserted. *)
  let domains = 4 and nchunks = 32 in
  let out_of_range = Atomic.make 0 in
  let claimed = Atomic.make 0 in
  Pool.run ~domains ~nchunks (fun ~slot _chunk ->
      if slot < 0 || slot >= domains then Atomic.incr out_of_range;
      Atomic.incr claimed);
  Alcotest.(check int) "all slots in [0, domains)" 0 (Atomic.get out_of_range);
  Alcotest.(check int) "every chunk claimed" nchunks (Atomic.get claimed)

exception Boom of int

let test_pool_exception_propagates () =
  (try
     Pool.run ~domains:4 ~nchunks:16 (fun ~slot:_ chunk ->
         if chunk = 11 then raise (Boom chunk));
     Alcotest.fail "exception swallowed"
   with Boom 11 -> ());
  (* The pool must stay usable after a failed job. *)
  let total = ref 0 in
  let mu = Mutex.create () in
  Pool.run ~domains:4 ~nchunks:16 (fun ~slot:_ chunk ->
      Mutex.protect mu (fun () -> total := !total + chunk));
  Alcotest.(check int) "pool reusable after failure" 120 !total

(* Two top-level submitters racing from separate domains: the single job
   slot must serialize them (not interleave chunk claims across jobs), and
   both must see complete, correct results. Regression for the concurrent
   submission race. *)
let test_pool_concurrent_submitters () =
  for _ = 1 to 5 do
    let submit mult =
      Domain.spawn (fun () ->
          Parrun.map ~domains:3 ~ctx:(fun () -> ()) 101 (fun _ i -> mult * i))
    in
    let a = submit 3 and b = submit 7 in
    let ra = Domain.join a and rb = Domain.join b in
    Alcotest.(check (array int))
      "submitter a complete"
      (Array.init 101 (fun i -> 3 * i))
      ra;
    Alcotest.(check (array int))
      "submitter b complete"
      (Array.init 101 (fun i -> 7 * i))
      rb
  done

let test_pool_nested_runs_inline () =
  let inner_saw_worker = ref false in
  Pool.run ~domains:3 ~nchunks:3 (fun ~slot:_ _chunk ->
      if Pool.in_worker () then begin
        (* Nested call: must run inline on this domain, not deadlock. *)
        let hits = Array.make 4 0 in
        Pool.run ~domains:3 ~nchunks:4 (fun ~slot chunk ->
            if slot <> 0 then Alcotest.fail "nested run left its domain";
            hits.(chunk) <- hits.(chunk) + 1);
        if Array.for_all (fun h -> h = 1) hits then inner_saw_worker := true
      end);
  Alcotest.(check bool) "nested Pool.run completed inline" true
    !inner_saw_worker;
  Alcotest.(check bool) "in_worker clear outside jobs" false (Pool.in_worker ())

exception Boom2 of int

(* The drain contract: a raising chunk must not strand the job's other
   chunks — they all still execute, the first exception is re-raised
   after the drain, and the pool survives any number of failed jobs.
   Regression for the worker-death drain bug (workers parked on a dead
   job's queue left later jobs starved). *)
let test_pool_drains_after_failure () =
  List.iter
    (fun domains ->
      let nchunks = 16 in
      let ran = Atomic.make 0 in
      (try
         Pool.run ~domains ~nchunks (fun ~slot:_ chunk ->
             if chunk = 2 then raise (Boom chunk);
             Atomic.incr ran);
         Alcotest.fail "first exception swallowed"
       with Boom 2 -> ());
      Alcotest.(check int)
        (Printf.sprintf "all other chunks drained (domains=%d)" domains)
        (nchunks - 1) (Atomic.get ran);
      (* A second, distinct failing job: the pool must not have retained
         state from the first failure. *)
      (try
         Pool.run ~domains ~nchunks (fun ~slot:_ chunk ->
             if chunk = 9 then raise (Boom2 chunk));
         Alcotest.fail "second exception swallowed"
       with Boom2 9 -> ());
      (* And after two failed jobs, a clean job still covers everything. *)
      let total = ref 0 in
      let mu = Mutex.create () in
      Pool.run ~domains ~nchunks (fun ~slot:_ chunk ->
          Mutex.protect mu (fun () -> total := !total + chunk));
      Alcotest.(check int)
        (Printf.sprintf "pool reusable after two failures (domains=%d)" domains)
        120 !total)
    [ 1; 4 ]

(* A nested (in-worker, inline) run follows the same drain contract. *)
let test_pool_nested_inline_drains () =
  let checked = Atomic.make false in
  Pool.run ~domains:3 ~nchunks:3 (fun ~slot:_ _chunk ->
      if Pool.in_worker () && not (Atomic.exchange checked true) then begin
        let ran = Atomic.make 0 in
        (try
           Pool.run ~domains:3 ~nchunks:4 (fun ~slot:_ chunk ->
               if chunk = 1 then raise (Boom chunk);
               Atomic.incr ran);
           Alcotest.fail "nested exception swallowed"
         with Boom 1 -> ());
        if Atomic.get ran <> 3 then
          Alcotest.fail "nested inline run did not drain remaining chunks"
      end);
  Alcotest.(check bool) "nested drain exercised" true (Atomic.get checked);
  (* The outer pool took no damage from the nested failure. *)
  let total = ref 0 in
  let mu = Mutex.create () in
  Pool.run ~domains:3 ~nchunks:16 (fun ~slot:_ chunk ->
      Mutex.protect mu (fun () -> total := !total + chunk));
  Alcotest.(check int) "outer pool intact" 120 !total

(* ------------------------------------------------------------------ *)
(* Parrun.map on the pool                                              *)
(* ------------------------------------------------------------------ *)

let test_map_identical_across_domains () =
  let f _ i = (i * 31) lxor (i lsl 3) in
  let expect = Parrun.map ~domains:1 ~ctx:(fun () -> ()) 257 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        expect
        (Parrun.map ~domains ~ctx:(fun () -> ()) 257 f))
    domain_counts

let test_map_exception_propagates () =
  try
    ignore
      (Parrun.map ~domains:4 ~ctx:(fun () -> ()) 100 (fun _ i ->
           if i = 63 then raise (Boom i) else i));
    Alcotest.fail "exception swallowed"
  with Boom 63 -> ()

(* map_batched must agree with map for every batch/domain split, including
   blocks that don't divide n, and must reject wrong-length block results. *)
let test_map_batched_matches_map () =
  let f _ i = (i * 17) lxor (i lsl 2) in
  let n = 103 in
  let expect = Parrun.map ~domains:1 ~ctx:(fun () -> ()) n f in
  List.iter
    (fun domains ->
      List.iter
        (fun batch ->
          let got =
            Parrun.map_batched ~domains ~batch ~ctx:(fun () -> ()) n
              (fun () ~lo ~hi -> Array.init (hi - lo) (fun t -> f () (lo + t)))
          in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d batch=%d" domains batch)
            expect got)
        [ 1; 2; 7; 64; 200 ])
    domain_counts

let test_map_batched_length_check () =
  try
    ignore
      (Parrun.map_batched ~domains:1 ~batch:8 ~ctx:(fun () -> ()) 20
         (fun () ~lo ~hi:_ -> Array.make 3 lo));
    Alcotest.fail "wrong-length block accepted"
  with Invalid_argument _ -> ()

let test_map_nested_in_map () =
  (* An inner Parrun.map inside an outer one must run inline in the worker
     and still produce the right values. *)
  let outer =
    Parrun.map ~domains:3 ~ctx:(fun () -> ()) 9 (fun _ i ->
        let inner =
          Parrun.map ~domains:3 ~ctx:(fun () -> ()) 5 (fun _ j -> i + j)
        in
        Array.fold_left ( + ) 0 inner)
  in
  let expect = Array.init 9 (fun i -> (5 * i) + 10) in
  Alcotest.(check (array int)) "nested map values" expect outer

(* ------------------------------------------------------------------ *)
(* Cross-layer determinism                                             *)
(* ------------------------------------------------------------------ *)

let test_checker_inside_parrun () =
  (* A parallel checker call nested inside a Parrun.map must fall back to
     sequential expansion (no deadlock) and give the same verdicts as the
     same calls made at top level. *)
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  let verdict_name r =
    match Checker.check_label ~domains:4 p ~input ~r ~max_states:200_000 with
    | Checker.Stabilizing -> "stabilizing"
    | Checker.Oscillating _ -> "oscillating"
    | Checker.Too_large _ -> "too-large"
  in
  let expect = Array.init 3 (fun i -> verdict_name (i + 1)) in
  let got =
    Parrun.map ~domains:3 ~ctx:(fun () -> ()) 3 (fun _ i ->
        verdict_name (i + 1))
  in
  Alcotest.(check (array string)) "verdicts match top-level" expect got

let campaign_fingerprint (c : Faultlab.campaign) =
  c.Faultlab.stats
  |> List.map (fun s ->
         Printf.sprintf "%g:%d:%d:%.6f:%d:%d:%d" s.Faultlab.fraction
           s.Faultlab.runs s.Faultlab.recovered s.Faultlab.mean s.Faultlab.p50
           s.Faultlab.p95 s.Faultlab.worst)
  |> String.concat "|"

let test_faultlab_campaign_across_domains () =
  let scenario = Faultlab.example1 ~n:3 () in
  let run domains =
    campaign_fingerprint
      (Faultlab.run ~fractions:[ 0.25; 1.0 ] ~seeds:6 ~max_steps:2_000
         ~domains scenario)
  in
  let expect = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d" domains)
        expect (run domains))
    domain_counts

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_parrun"
    [
      ( "pool",
        [
          Alcotest.test_case "covers all chunks" `Quick
            test_pool_covers_all_chunks;
          Alcotest.test_case "slots compact" `Quick test_pool_slots_compact;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "nested runs inline" `Quick
            test_pool_nested_runs_inline;
          Alcotest.test_case "drains after failure" `Quick
            test_pool_drains_after_failure;
          Alcotest.test_case "nested inline drains" `Quick
            test_pool_nested_inline_drains;
          Alcotest.test_case "concurrent submitters" `Quick
            test_pool_concurrent_submitters;
        ] );
      ( "map",
        [
          Alcotest.test_case "identical across domains" `Quick
            test_map_identical_across_domains;
          Alcotest.test_case "exception propagates" `Quick
            test_map_exception_propagates;
          Alcotest.test_case "nested map" `Quick test_map_nested_in_map;
          Alcotest.test_case "map_batched matches map" `Quick
            test_map_batched_matches_map;
          Alcotest.test_case "map_batched length check" `Quick
            test_map_batched_length_check;
        ] );
      ( "cross-layer",
        [
          Alcotest.test_case "checker inside Parrun" `Quick
            test_checker_inside_parrun;
          Alcotest.test_case "faultlab campaign deterministic" `Quick
            test_faultlab_campaign_across_domains;
        ] );
    ]
