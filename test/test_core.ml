module Builders = Stateless_graph.Builders
module Digraph = Stateless_graph.Digraph
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Small protocols used as fixtures                                    *)
(* ------------------------------------------------------------------ *)

(* Every node copies its (single) incoming label onward: on a unidirectional
   ring, labels rotate forever unless the labeling is uniform. Every uniform
   labeling is stable, so by Theorem 3.1 this protocol cannot be label
   (n-1)-stabilizing. *)
let copy_ring n : (unit, bool) Protocol.t =
  let g = Builders.ring_uni n in
  {
    Protocol.name = "copy-ring";
    graph = g;
    space = Label.bool;
    react = (fun _ () incoming -> ([| incoming.(0) |], 0));
  }

(* Every node always writes [false]: unique stable labeling, converges in
   one activation of each node under any fair schedule. *)
let constant_ring n : (unit, bool) Protocol.t =
  let g = Builders.ring_uni n in
  {
    Protocol.name = "constant-ring";
    graph = g;
    space = Label.bool;
    react = (fun _ () _ -> ([| false |], 0));
  }

let unit_input n = Array.make n ()

(* ------------------------------------------------------------------ *)
(* Label spaces                                                        *)
(* ------------------------------------------------------------------ *)

let test_label_bool () =
  check "card" 2 Label.bool.Label.card;
  check "encode true" 1 (Label.bool.Label.encode true);
  check_bool "roundtrip" true (Label.check_roundtrip Label.bool)

let test_label_int () =
  let s = Label.int 7 in
  check "card" 7 s.Label.card;
  check_bool "roundtrip" true (Label.check_roundtrip s);
  Alcotest.check_raises "range"
    (Invalid_argument "Label.int: value out of range") (fun () ->
      ignore (s.Label.encode 7))

let test_label_pair () =
  let s = Label.pair (Label.int 3) Label.bool in
  check "card" 6 s.Label.card;
  check_bool "roundtrip" true (Label.check_roundtrip s);
  let x, b = s.Label.decode (s.Label.encode (2, true)) in
  check "fst" 2 x;
  check_bool "snd" true b

let test_label_triple () =
  let s = Label.triple Label.bool (Label.int 3) (Label.int 5) in
  check "card" 30 s.Label.card;
  check_bool "roundtrip" true (Label.check_roundtrip s)

let test_label_vector () =
  let s = Label.vector (Label.int 3) 4 in
  check "card" 81 s.Label.card;
  check_bool "roundtrip" true (Label.check_roundtrip s);
  let v = s.Label.decode (s.Label.encode [| 2; 0; 1; 2 |]) in
  Alcotest.(check (array int)) "decode" [| 2; 0; 1; 2 |] v

let test_label_complexity () =
  let s = Label.bool_vector 5 in
  check "bits" 5 (Label.bit_length s);
  Alcotest.(check (float 1e-9)) "complexity" 5.0 (Label.complexity s)

let test_label_enum () =
  let s =
    Label.enum [ "a"; "b"; "c" ]
      ~pp:Format.pp_print_string ~equal:String.equal
  in
  check "card" 3 s.Label.card;
  check "encode b" 1 (s.Label.encode "b");
  check_bool "roundtrip" true (Label.check_roundtrip s)

let prop_vector_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vector roundtrip"
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 2 5))
              (QCheck.make QCheck.Gen.(int_range 1 6)))
    (fun (base, k) -> Label.check_roundtrip (Label.vector (Label.int base) k))

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let test_synchronous_is_1_fair () =
  let s = Schedule.synchronous 5 in
  check_bool "1-fair" true (Schedule.is_r_fair s ~n:5 ~r:1 ~horizon:50);
  check "fairness" 1 (Option.get (Schedule.fairness s ~n:5 ~horizon:50))

let test_round_robin_fairness () =
  let s = Schedule.round_robin 4 in
  check_bool "4-fair" true (Schedule.is_r_fair s ~n:4 ~r:4 ~horizon:100);
  check_bool "not 3-fair" false (Schedule.is_r_fair s ~n:4 ~r:3 ~horizon:100);
  check "fairness" 4 (Option.get (Schedule.fairness s ~n:4 ~horizon:100))

let test_block_rounds () =
  let s = Schedule.block_rounds [ [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check (list int)) "step 0" [ 0; 1 ] (s.Schedule.active 0);
  Alcotest.(check (list int)) "step 3" [ 2 ] (s.Schedule.active 3);
  check "period" 2 (Option.get s.Schedule.period)

let test_block_rounds_rejects_empty () =
  Alcotest.check_raises "empty schedule"
    (Invalid_argument "Schedule.block_rounds: empty schedule") (fun () ->
      ignore (Schedule.block_rounds []))

let test_random_fair_is_fair () =
  for seed = 0 to 4 do
    let s = Schedule.random_fair ~seed ~r:3 5 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d 3-fair" seed)
      true
      (Schedule.is_r_fair s ~n:5 ~r:3 ~horizon:300)
  done

let test_random_schedule_reproducible () =
  let s = Schedule.random_fair ~seed:42 ~r:2 4 in
  let a = s.Schedule.active 10 in
  let b = s.Schedule.active 10 in
  Alcotest.(check (list int)) "same set on re-query" a b

(* The bounded-replay memoization behind the randomized schedules must be
   observationally identical to querying every step in order: repeated and
   out-of-order queries — including jumps far past the live checkpoints —
   return exactly what a fresh instance queried sequentially returns. *)
let scrambled_matches_sequential make =
  let horizon = 140 in
  let reference =
    let s = make () in
    Array.init horizon (fun t -> s.Schedule.active t)
  in
  let s = make () in
  let probe t =
    Alcotest.(check (list int))
      (Printf.sprintf "step %d" t)
      reference.(t) (s.Schedule.active t)
  in
  List.iter probe [ 50; 7; 99; 7; 0; 73; 50; 120; 3; 99; 139; 1 ];
  for t = 0 to horizon - 1 do
    probe t
  done

let test_random_fair_out_of_order () =
  scrambled_matches_sequential (fun () -> Schedule.random_fair ~seed:7 ~r:2 4)

let test_random_singletons_out_of_order () =
  scrambled_matches_sequential (fun () -> Schedule.random_singletons ~seed:5 6)

let test_schedule_million_nodes_out_of_order () =
  (* n = 10^6: replay must not depend on node count — the event simulator
     leans on these schedules at exactly this scale. *)
  let n = 1_000_000 in
  let horizon = 200 in
  let reference =
    let s = Schedule.random_singletons ~seed:9 n in
    Array.init horizon (fun t -> s.Schedule.active t)
  in
  let s = Schedule.random_singletons ~seed:9 n in
  List.iter
    (fun t ->
      Alcotest.(check (list int))
        (Printf.sprintf "step %d" t)
        reference.(t) (s.Schedule.active t))
    [ 150; 3; 199; 0; 77; 3; 150; 42; 199 ]

let test_schedule_checkpoint_thinning () =
  (* Drive the frontier far enough that geometric checkpoint thinning has
     fired several times (64 live checkpoints at k = 16 is step 1024; 6000
     steps doubles k twice more), then replay scattered early steps: each
     must still reproduce the sequential draw exactly — for the aux-free
     schedule and for the countdown-carrying one, at n = 10^6 and small n
     alike. *)
  let far = 6_000 in
  let probes =
    [ 0; 1; 15; 16; 17; 1023; 1024; 1025; 2048; 3000; 4095; far - 1 ]
  in
  let check_sched make =
    let reference =
      let s = make () in
      Array.init far (fun t -> s.Schedule.active t)
    in
    let s = make () in
    ignore (s.Schedule.active (far - 1));
    List.iter
      (fun t ->
        Alcotest.(check (list int))
          (Printf.sprintf "step %d" t)
          reference.(t) (s.Schedule.active t))
      (probes @ List.rev probes)
  in
  check_sched (fun () -> Schedule.random_fair ~seed:13 ~r:3 5);
  check_sched (fun () -> Schedule.random_singletons ~seed:13 1_000_000)

let test_random_schedule_rejects_negative_step () =
  let s = Schedule.random_fair ~seed:1 ~r:2 3 in
  match s.Schedule.active (-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_example1_schedule_fairness () =
  (* The paper's oscillation schedule for Example 1 is (n-1)-fair. *)
  for n = 3 to 6 do
    let s = Clique_example.oscillation_schedule n in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d (n-1)-fair" n)
      true
      (Schedule.is_r_fair s ~n ~r:(n - 1) ~horizon:(10 * n));
    if n > 3 then
      Alcotest.(check bool)
        (Printf.sprintf "n=%d not (n-2)-fair" n)
        false
        (Schedule.is_r_fair s ~n ~r:(n - 2) ~horizon:(10 * n))
  done

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_step_is_atomic () =
  (* All scheduled nodes react to the *previous* configuration: on the copy
     ring a synchronous step rotates the labeling by one, it does not smear
     one label everywhere. *)
  let p = copy_ring 3 in
  let init = Protocol.config_of_labels p [| true; false; false |] in
  let next =
    Engine.step p ~input:(unit_input 3) init ~active:[ 0; 1; 2 ]
  in
  Alcotest.(check (array bool)) "rotated" [| false; true; false |]
    next.Protocol.labels

let test_run_steps () =
  let p = copy_ring 4 in
  let init = Protocol.config_of_labels p [| true; false; false; false |] in
  let final =
    Engine.run p ~input:(unit_input 4) ~init
      ~schedule:(Schedule.synchronous 4) ~steps:4
  in
  Alcotest.(check (array bool)) "full rotation" [| true; false; false; false |]
    final.Protocol.labels

let test_trace_length () =
  let p = constant_ring 3 in
  let init = Protocol.uniform_config p true in
  let tr =
    Engine.trace p ~input:(unit_input 3) ~init
      ~schedule:(Schedule.synchronous 3) ~steps:5
  in
  check "length" 6 (List.length tr)

let test_constant_stabilizes () =
  let p = constant_ring 4 in
  let init = Protocol.uniform_config p true in
  match
    Engine.run_until_stable p ~input:(unit_input 4) ~init
      ~schedule:(Schedule.synchronous 4) ~max_steps:100
  with
  | Engine.Stabilized { rounds; config } ->
      check_bool "rounds small" true (rounds <= 1);
      Alcotest.(check (array bool)) "all false" [| false; false; false; false |]
        config.Protocol.labels
  | _ -> Alcotest.fail "expected stabilization"

let test_copy_ring_oscillates () =
  let p = copy_ring 3 in
  let init = Protocol.config_of_labels p [| true; false; false |] in
  match
    Engine.run_until_stable p ~input:(unit_input 3) ~init
      ~schedule:(Schedule.synchronous 3) ~max_steps:100
  with
  | Engine.Oscillating { period; _ } -> check "period" 3 period
  | _ -> Alcotest.fail "expected oscillation"

let test_copy_ring_uniform_is_stable () =
  let p = copy_ring 3 in
  let init = Protocol.uniform_config p true in
  check_bool "stable" true (Protocol.is_stable p ~input:(unit_input 3) init);
  match
    Engine.run_until_stable p ~input:(unit_input 3) ~init
      ~schedule:(Schedule.synchronous 3) ~max_steps:10
  with
  | Engine.Stabilized { rounds; _ } -> check "immediate" 0 rounds
  | _ -> Alcotest.fail "expected stabilization"

let test_outputs_after_convergence_oscillating_labels () =
  (* Labels rotate forever but outputs are constant: output stabilization
     without label stabilization. *)
  let g = Builders.ring_uni 3 in
  let p : (unit, bool) Protocol.t =
    {
      Protocol.name = "rotor";
      graph = g;
      space = Label.bool;
      react = (fun _ () incoming -> ([| incoming.(0) |], 1));
    }
  in
  let init = Protocol.config_of_labels p [| true; false; false |] in
  match
    Engine.outputs_after_convergence p ~input:(unit_input 3) ~init
      ~schedule:(Schedule.synchronous 3) ~max_steps:100
  with
  | Some outs -> Alcotest.(check (array int)) "all ones" [| 1; 1; 1 |] outs
  | None -> Alcotest.fail "outputs should converge"

let test_output_divergence_detected () =
  (* A node that outputs the rotating label it sees never output-converges. *)
  let g = Builders.ring_uni 3 in
  let p : (unit, bool) Protocol.t =
    {
      Protocol.name = "parrot";
      graph = g;
      space = Label.bool;
      react =
        (fun _ () incoming ->
          ([| incoming.(0) |], if incoming.(0) then 1 else 0));
    }
  in
  let init = Protocol.config_of_labels p [| true; false; false |] in
  check_bool "no convergence" true
    (Engine.outputs_after_convergence p ~input:(unit_input 3) ~init
       ~schedule:(Schedule.synchronous 3) ~max_steps:100
    = None)

let test_encode_decode_config () =
  let p = copy_ring 4 in
  for code = 0 to 15 do
    let config = Protocol.decode_config p code in
    check "roundtrip" code (Protocol.encode_config p config)
  done

let test_config_key_distinguishes () =
  let p = copy_ring 4 in
  let a = Protocol.decode_config p 5 and b = Protocol.decode_config p 6 in
  check_bool "different" false
    (String.equal (Protocol.config_key p a) (Protocol.config_key p b));
  check_bool "equal" true
    (String.equal (Protocol.config_key p a)
       (Protocol.config_key p (Protocol.decode_config p 5)))

(* ------------------------------------------------------------------ *)
(* Stability                                                           *)
(* ------------------------------------------------------------------ *)

let test_stable_labelings_copy_ring () =
  (* Exactly the uniform labelings are stable. *)
  let p = copy_ring 4 in
  let stable = Stability.stable_labelings p ~input:(unit_input 4) in
  check "two stable labelings" 2 (List.length stable);
  check_bool "multiple" true
    (Stability.has_multiple_stable_labelings p ~input:(unit_input 4))

let test_stable_labelings_constant () =
  let p = constant_ring 4 in
  let stable = Stability.stable_labelings p ~input:(unit_input 4) in
  check "unique" 1 (List.length stable);
  check_bool "not multiple" false
    (Stability.has_multiple_stable_labelings p ~input:(unit_input 4))

let test_example1_has_two_stable_labelings () =
  let p = Clique_example.make 3 in
  check "two" 2
    (Stability.count_stable_labelings p ~input:(Clique_example.input 3))

(* ------------------------------------------------------------------ *)
(* Generic protocol (Proposition 2.3)                                  *)
(* ------------------------------------------------------------------ *)

let parity bits = Array.fold_left (fun acc b -> acc <> b) false bits

let majority bits =
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  2 * ones >= Array.length bits

let bool_inputs n =
  (* All 2^n input vectors for small n. *)
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let run_generic g f x =
  let p = Generic.make g f in
  let n = Digraph.num_nodes g in
  let init = Protocol.uniform_config p (Array.make (n + 1) true) in
  match
    Engine.run_until_stable p ~input:x ~init ~schedule:(Schedule.synchronous n)
      ~max_steps:(4 * n * n)
  with
  | Engine.Stabilized { rounds; config } ->
      let outs =
        Array.init n (fun i -> snd (Protocol.apply p ~input:x config i))
      in
      Some (rounds, outs)
  | _ -> None

let test_generic_parity_on_rings () =
  List.iter
    (fun g ->
      let n = Digraph.num_nodes g in
      List.iter
        (fun x ->
          match run_generic g parity x with
          | None -> Alcotest.fail "did not stabilize"
          | Some (rounds, outs) ->
              let expect = if parity x then 1 else 0 in
              Array.iter (fun y -> check "output" expect y) outs;
              check_bool "rounds <= 2n + 1" true (rounds <= (2 * n) + 1))
        (bool_inputs n))
    [ Builders.ring_uni 4; Builders.ring_bi 5; Builders.clique 4 ]

let test_generic_majority_random_graphs () =
  for seed = 0 to 2 do
    let g = Builders.random_strongly_connected ~seed 6 ~extra:4 in
    List.iter
      (fun x ->
        match run_generic g majority x with
        | None -> Alcotest.fail "did not stabilize"
        | Some (_, outs) ->
            let expect = if majority x then 1 else 0 in
            Array.iter (fun y -> check "output" expect y) outs)
      [
        [| true; true; true; false; false; false |];
        [| true; true; true; true; false; false |];
        [| false; false; false; false; false; true |];
      ]
  done

let test_generic_label_complexity () =
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  check "bits" 6 (Label.bit_length p.Protocol.space);
  check "label_bits" 6 (Generic.label_bits g);
  check "round bound" 10 (Generic.round_bound g)

let test_generic_self_stabilizes_from_random () =
  (* Self-stabilization: any initial labeling converges to the right
     answer. *)
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  let x = [| true; false; true; true; false |] in
  let expect = if parity x then 1 else 0 in
  let state = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let labels =
      Array.init (Protocol.num_edges p) (fun _ ->
          Array.init 6 (fun _ -> Random.State.bool state))
    in
    let init = Protocol.config_of_labels p labels in
    match
      Engine.outputs_after_convergence p ~input:x ~init
        ~schedule:(Schedule.synchronous 5) ~max_steps:200
    with
    | Some outs -> Array.iter (fun y -> check "output" expect y) outs
    | None -> Alcotest.fail "did not converge"
  done

let test_generic_converges_under_round_robin () =
  let g = Builders.clique 4 in
  let p = Generic.make g majority in
  let x = [| true; true; false; false |] in
  let init = Protocol.uniform_config p (Array.make 5 false) in
  match
    Engine.outputs_after_convergence p ~input:x ~init
      ~schedule:(Schedule.round_robin 4) ~max_steps:500
  with
  | Some outs ->
      Array.iter (fun y -> check "output" 1 y) outs
  | None -> Alcotest.fail "did not converge under round robin"

(* ------------------------------------------------------------------ *)
(* Example 1 (clique)                                                  *)
(* ------------------------------------------------------------------ *)

let test_example1_synchronous_converges () =
  let p = Clique_example.make 4 in
  let init = Clique_example.oscillation_init p in
  match
    Engine.run_until_stable p ~input:(Clique_example.input 4) ~init
      ~schedule:(Schedule.synchronous 4) ~max_steps:50
  with
  | Engine.Stabilized { config; _ } ->
      Alcotest.(check bool) "all ones" true
        (Array.for_all (fun b -> b) config.Protocol.labels)
  | _ -> Alcotest.fail "synchronous run should converge"

let test_example1_oscillates_under_paper_schedule () =
  for n = 3 to 6 do
    let p = Clique_example.make n in
    let init = Clique_example.oscillation_init p in
    match
      Engine.run_until_stable p ~input:(Clique_example.input n) ~init
        ~schedule:(Clique_example.oscillation_schedule n)
        ~max_steps:(100 * n)
    with
    | Engine.Oscillating { period; _ } ->
        check_bool
          (Printf.sprintf "n=%d period multiple of n" n)
          true (period mod n = 0)
    | _ -> Alcotest.fail (Printf.sprintf "n=%d should oscillate" n)
  done

(* ------------------------------------------------------------------ *)
(* Extremal protocol (Lemma C.2)                                       *)
(* ------------------------------------------------------------------ *)

let test_extremal_rounds () =
  List.iter
    (fun (n, q) ->
      let p = Extremal.make ~n ~q in
      let init = Extremal.slow_init p in
      match
        Engine.label_stabilization_time p ~input:(Extremal.input n) ~init
          ~schedule:(Schedule.synchronous n)
          ~max_steps:(4 * n * q)
      with
      | Some t ->
          let predicted = Extremal.predicted_rounds ~n ~q in
          check_bool
            (Printf.sprintf "n=%d q=%d time %d within [pred, pred+n]" n q t)
            true
            (t >= predicted && t <= predicted + n);
          check_bool "within generic bound" true
            (t <= Extremal.upper_bound ~n ~q)
      | None -> Alcotest.fail "did not stabilize")
    [ (3, 2); (3, 4); (5, 3); (7, 2); (4, 5) ]

let test_extremal_outputs_all_one () =
  let p = Extremal.make ~n:4 ~q:3 in
  let init = Extremal.slow_init p in
  match
    Engine.outputs_after_convergence p ~input:(Extremal.input 4) ~init
      ~schedule:(Schedule.synchronous 4) ~max_steps:100
  with
  | Some outs -> Alcotest.(check (array int)) "ones" [| 1; 1; 1; 1 |] outs
  | None -> Alcotest.fail "did not converge"

(* ------------------------------------------------------------------ *)
(* Unidirectional sequential machine                                   *)
(* ------------------------------------------------------------------ *)

let test_is_unidirectional_ring () =
  check_bool "uni ring yes" true
    (Unidirectional.is_unidirectional_ring (copy_ring 5));
  let p = Clique_example.make 3 in
  check_bool "clique no" false (Unidirectional.is_unidirectional_ring p)

let test_sequential_agrees_with_synchronous () =
  let p = Extremal.make ~n:4 ~q:3 in
  match
    Unidirectional.agrees_with_synchronous p ~input:(Extremal.input 4)
      ~start:0 ~max_steps:200
  with
  | Some ok -> check_bool "agree" true ok
  | None -> Alcotest.fail "synchronous run did not converge"

let test_round_complexity_bound () =
  let p = Extremal.make ~n:4 ~q:3 in
  check "bound" 12 (Option.get (Unidirectional.round_complexity_bound p));
  check_bool "none for clique" true
    (Unidirectional.round_complexity_bound (Clique_example.make 3) = None)

(* ------------------------------------------------------------------ *)
(* One-round protocols on well-connected topologies (Section 5 intro)  *)
(* ------------------------------------------------------------------ *)

let test_one_round_clique_all_functions_n3 () =
  (* Every Boolean function on 3 bits, 1-bit labels, correct outputs after
     one round and label-stable. *)
  for table = 0 to 255 do
    let f bits =
      let idx =
        Array.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 bits
      in
      table land (1 lsl idx) <> 0
    in
    let p = One_round.clique 3 f in
    List.iter
      (fun x ->
        let init = Protocol.uniform_config p false in
        let after =
          Engine.run p ~input:x ~init ~schedule:(Schedule.synchronous 3)
            ~steps:2
        in
        let expect = if f x then 1 else 0 in
        Array.iter
          (fun y -> check "one-round output" expect y)
          after.Protocol.outputs;
        check_bool "labels stable" true
          (Protocol.is_stable p ~input:x after))
      (bool_inputs 3)
  done

let test_one_round_clique_single_round () =
  let p = One_round.clique 4 majority in
  let x = [| true; true; false; true |] in
  let init = Protocol.uniform_config p false in
  (* After exactly one synchronous round the labels are the inputs; one
     more refresh and every output is correct. Outputs may already be
     correct at round one from the all-false start only by luck, so we
     check the paper's claim at the fixed point. *)
  match
    Engine.output_stabilization_time p ~input:x ~init
      ~schedule:(Schedule.synchronous 4) ~max_steps:10
  with
  | Some t -> check_bool "within two rounds" true (t <= 2)
  | None -> Alcotest.fail "must converge"

let test_one_round_star () =
  let p = One_round.star 5 parity in
  List.iter
    (fun x ->
      let init = Protocol.uniform_config p false in
      match
        Engine.outputs_after_convergence p ~input:x ~init
          ~schedule:(Schedule.synchronous 5) ~max_steps:10
      with
      | Some outs ->
          let expect = if parity x then 1 else 0 in
          Array.iter (fun y -> check "star output" expect y) outs
      | None -> Alcotest.fail "star must converge")
    (bool_inputs 5)

let test_one_round_star_self_stabilizes () =
  let p = One_round.star 4 majority in
  let x = [| true; false; true; true |] in
  let state = Random.State.make [| 3 |] in
  for _ = 1 to 10 do
    let labels =
      Array.init (Protocol.num_edges p) (fun _ -> Random.State.bool state)
    in
    match
      Engine.outputs_after_convergence p ~input:x
        ~init:(Protocol.config_of_labels p labels)
        ~schedule:(Schedule.synchronous 4) ~max_steps:10
    with
    | Some outs -> Array.iter (fun y -> check "output" 1 y) outs
    | None -> Alcotest.fail "must converge"
  done

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let test_render_node_bits () =
  let p = Clique_example.make 3 in
  let s =
    Render.node_bits_over_time p ~input:(Clique_example.input 3)
      ~init:(Clique_example.oscillation_init p)
      ~schedule:(Schedule.synchronous 3) ~steps:3
  in
  let lines = String.split_on_char '\n' s in
  check "header + 3 rows + trailing" 5 (List.length lines);
  check_bool "second row all hot" true
    (List.exists (fun l -> String.length l > 6 &&
        String.sub l (String.length l - 3) 3 = "###") lines)

let test_render_outputs_shape () =
  let p = Extremal.make ~n:3 ~q:2 in
  let s =
    Render.outputs_over_time p ~input:(Extremal.input 3)
      ~init:(Extremal.slow_init p)
      ~schedule:(Schedule.synchronous 3) ~steps:5
  in
  check "rows" 7 (List.length (String.split_on_char '\n' s))

let test_render_labels_shape () =
  let p = Extremal.make ~n:3 ~q:3 in
  let s =
    Render.labels_over_time p ~input:(Extremal.input 3)
      ~init:(Extremal.slow_init p)
      ~schedule:(Schedule.synchronous 3) ~steps:4
  in
  let lines = String.split_on_char '\n' s in
  check "rows" 6 (List.length lines);
  check_bool "edge names in header" true
    (match lines with
    | header :: _ ->
        String.length header > 0
        && String.index_opt header '>' <> None
    | [] -> false)

(* ------------------------------------------------------------------ *)
(* Engine invariants (property tests)                                  *)
(* ------------------------------------------------------------------ *)

let example1_with_labels n code =
  let p = Clique_example.make n in
  (p, Protocol.decode_config p (code mod (1 lsl Protocol.num_edges p)))

let prop_step_empty_active_is_identity =
  QCheck.Test.make ~count:50 ~name:"step with no activations changes nothing"
    (QCheck.make QCheck.Gen.(pair (int_range 3 4) (int_bound 4000)))
    (fun (n, code) ->
      let p, config = example1_with_labels n code in
      let next = Engine.step p ~input:(Clique_example.input n) config ~active:[] in
      String.equal (Protocol.config_key p config) (Protocol.config_key p next))

let prop_stable_is_fixed_under_any_activation =
  QCheck.Test.make ~count:100
    ~name:"stable labelings are fixed under every activation set"
    (QCheck.make
       QCheck.Gen.(triple (int_range 3 4) (int_bound 4000) (int_bound 15)))
    (fun (n, code, mask) ->
      let p, config = example1_with_labels n code in
      let input = Clique_example.input n in
      if not (Protocol.is_stable p ~input config) then true
      else begin
        let active =
          List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
        in
        let next = Engine.step p ~input config ~active in
        String.equal (Protocol.config_key p config)
          (Protocol.config_key p next)
      end)

let prop_stabilized_verdict_is_stable =
  QCheck.Test.make ~count:60
    ~name:"run_until_stable's final labeling really is stable"
    (QCheck.make QCheck.Gen.(pair (int_range 3 4) (int_bound 4000)))
    (fun (n, code) ->
      let p, init = example1_with_labels n code in
      let input = Clique_example.input n in
      match
        Engine.run_until_stable p ~input ~init
          ~schedule:(Schedule.synchronous n) ~max_steps:200
      with
      | Engine.Stabilized { config; _ } -> Protocol.is_stable p ~input config
      | Engine.Oscillating _ | Engine.Exhausted _ -> false)

let prop_run_equals_iterated_step =
  QCheck.Test.make ~count:40 ~name:"run = iterated step"
    (QCheck.make
       QCheck.Gen.(triple (int_range 3 4) (int_bound 4000) (int_range 0 10)))
    (fun (n, code, steps) ->
      let p, init = example1_with_labels n code in
      let input = Clique_example.input n in
      let schedule = Schedule.round_robin n in
      let via_run = Engine.run p ~input ~init ~schedule ~steps in
      let via_steps = ref init in
      for t = 0 to steps - 1 do
        via_steps :=
          Engine.step p ~input !via_steps ~active:(schedule.Schedule.active t)
      done;
      String.equal (Protocol.config_key p via_run)
        (Protocol.config_key p !via_steps))

let prop_trace_consistent_with_run =
  QCheck.Test.make ~count:40 ~name:"trace ends where run ends"
    (QCheck.make QCheck.Gen.(pair (int_bound 4000) (int_range 1 8)))
    (fun (code, steps) ->
      let p, init = example1_with_labels 3 code in
      let input = Clique_example.input 3 in
      let schedule = Schedule.synchronous 3 in
      let tr = Engine.trace p ~input ~init ~schedule ~steps in
      let final = Engine.run p ~input ~init ~schedule ~steps in
      List.length tr = steps + 1
      && String.equal
           (Protocol.config_key p (List.nth tr steps))
           (Protocol.config_key p final))

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_vector_roundtrip;
      prop_step_empty_active_is_identity;
      prop_stable_is_fixed_under_any_activation;
      prop_stabilized_verdict_is_stable;
      prop_run_equals_iterated_step;
      prop_trace_consistent_with_run;
    ]

let () =
  Alcotest.run "stateless_core"
    [
      ( "label",
        [
          Alcotest.test_case "bool" `Quick test_label_bool;
          Alcotest.test_case "int" `Quick test_label_int;
          Alcotest.test_case "pair" `Quick test_label_pair;
          Alcotest.test_case "triple" `Quick test_label_triple;
          Alcotest.test_case "vector" `Quick test_label_vector;
          Alcotest.test_case "complexity" `Quick test_label_complexity;
          Alcotest.test_case "enum" `Quick test_label_enum;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "synchronous 1-fair" `Quick
            test_synchronous_is_1_fair;
          Alcotest.test_case "round robin fairness" `Quick
            test_round_robin_fairness;
          Alcotest.test_case "block rounds" `Quick test_block_rounds;
          Alcotest.test_case "rejects empty" `Quick
            test_block_rounds_rejects_empty;
          Alcotest.test_case "random fair is fair" `Quick
            test_random_fair_is_fair;
          Alcotest.test_case "random reproducible" `Quick
            test_random_schedule_reproducible;
          Alcotest.test_case "random fair out of order" `Quick
            test_random_fair_out_of_order;
          Alcotest.test_case "random singletons out of order" `Quick
            test_random_singletons_out_of_order;
          Alcotest.test_case "million-node out of order" `Quick
            test_schedule_million_nodes_out_of_order;
          Alcotest.test_case "checkpoint thinning replay" `Quick
            test_schedule_checkpoint_thinning;
          Alcotest.test_case "negative step rejected" `Quick
            test_random_schedule_rejects_negative_step;
          Alcotest.test_case "example1 schedule fairness" `Quick
            test_example1_schedule_fairness;
        ] );
      ( "engine",
        [
          Alcotest.test_case "step atomic" `Quick test_step_is_atomic;
          Alcotest.test_case "run steps" `Quick test_run_steps;
          Alcotest.test_case "trace length" `Quick test_trace_length;
          Alcotest.test_case "constant stabilizes" `Quick
            test_constant_stabilizes;
          Alcotest.test_case "copy ring oscillates" `Quick
            test_copy_ring_oscillates;
          Alcotest.test_case "uniform copy ring stable" `Quick
            test_copy_ring_uniform_is_stable;
          Alcotest.test_case "output conv with rotating labels" `Quick
            test_outputs_after_convergence_oscillating_labels;
          Alcotest.test_case "output divergence detected" `Quick
            test_output_divergence_detected;
          Alcotest.test_case "encode/decode config" `Quick
            test_encode_decode_config;
          Alcotest.test_case "config keys" `Quick test_config_key_distinguishes;
        ] );
      ( "stability",
        [
          Alcotest.test_case "copy ring stable labelings" `Quick
            test_stable_labelings_copy_ring;
          Alcotest.test_case "constant unique" `Quick
            test_stable_labelings_constant;
          Alcotest.test_case "example1 two stable" `Quick
            test_example1_has_two_stable_labelings;
        ] );
      ( "generic-prop-2.3",
        [
          Alcotest.test_case "parity on rings and clique" `Slow
            test_generic_parity_on_rings;
          Alcotest.test_case "majority on random graphs" `Quick
            test_generic_majority_random_graphs;
          Alcotest.test_case "label complexity n+1" `Quick
            test_generic_label_complexity;
          Alcotest.test_case "self-stabilizes from random" `Quick
            test_generic_self_stabilizes_from_random;
          Alcotest.test_case "converges under round robin" `Quick
            test_generic_converges_under_round_robin;
        ] );
      ( "example1",
        [
          Alcotest.test_case "synchronous converges" `Quick
            test_example1_synchronous_converges;
          Alcotest.test_case "oscillates under paper schedule" `Quick
            test_example1_oscillates_under_paper_schedule;
        ] );
      ( "extremal",
        [
          Alcotest.test_case "rounds = n(q-1)" `Quick test_extremal_rounds;
          Alcotest.test_case "outputs one" `Quick test_extremal_outputs_all_one;
        ] );
      ( "unidirectional",
        [
          Alcotest.test_case "ring recognition" `Quick
            test_is_unidirectional_ring;
          Alcotest.test_case "sequential = synchronous" `Quick
            test_sequential_agrees_with_synchronous;
          Alcotest.test_case "round bound" `Quick test_round_complexity_bound;
        ] );
      ( "one-round",
        [
          Alcotest.test_case "clique: all 3-bit functions" `Slow
            test_one_round_clique_all_functions_n3;
          Alcotest.test_case "clique: single round" `Quick
            test_one_round_clique_single_round;
          Alcotest.test_case "star" `Quick test_one_round_star;
          Alcotest.test_case "star self-stabilizes" `Quick
            test_one_round_star_self_stabilizes;
        ] );
      ( "render",
        [
          Alcotest.test_case "node bits" `Quick test_render_node_bits;
          Alcotest.test_case "outputs shape" `Quick test_render_outputs_shape;
          Alcotest.test_case "labels shape" `Quick test_render_labels_shape;
        ] );
      ("properties", qcheck_tests);
    ]
