(* Differential suite for the event-driven continuous-time simulator
   ({!Eventsim}): the unit-latency synchronous anchor against the packed
   {!Kernel} on the shared proptest matrix for every evaluation tier,
   counter-RNG determinism (including across {!Parrun} domain counts),
   fault accounting, and the scalable graph generators. *)

module Protocol = Stateless_core.Protocol
module Kernel = Stateless_core.Kernel
module Eventsim = Stateless_core.Eventsim
module Schedule = Stateless_core.Schedule
module Parrun = Stateless_core.Parrun
module Proptest = Stateless_core.Proptest
module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders

let config_eq = Proptest.config_eq

(* The three tier forcings, as (name, table words, memo entries). *)
let tiers = [ ("table", None, None); ("memo", Some 0, None);
              ("raw", Some 0, Some 0) ]

let trials = 30

(* ------------------------------------------------------------------ *)
(* Synchronous anchor                                                  *)
(* ------------------------------------------------------------------ *)

let test_sync_matches_kernel () =
  for seed = 1 to trials do
    let p, input, state = Proptest.random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = Proptest.random_config p state in
    let kern = Kernel.create p ~input in
    List.iter
      (fun steps ->
        let reference =
          Kernel.run kern ~init ~schedule:(Schedule.synchronous n) ~steps
        in
        List.iter
          (fun (tier, max_table_words, max_memo_entries) ->
            let sim =
              Eventsim.create ?max_table_words ?max_memo_entries ~sync:true
                ~seed p ~input ~init
            in
            let _ = Eventsim.run sim ~horizon:(float_of_int steps) in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d tier %s steps %d" seed tier steps)
              true
              (config_eq p reference (Eventsim.config sim)))
          tiers)
      [ 0; 1; 5; 17 ]
  done

let test_sync_resumable () =
  for seed = 1 to trials do
    let p, input, state = Proptest.random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = Proptest.random_config p state in
    let kern = Kernel.create p ~input in
    let reference =
      Kernel.run kern ~init ~schedule:(Schedule.synchronous n) ~steps:12
    in
    let sim = Eventsim.create ~sync:true ~seed p ~input ~init in
    let _ = Eventsim.run sim ~horizon:3.0 in
    let _ = Eventsim.run sim ~horizon:7.0 in
    let _ = Eventsim.run sim ~horizon:12.0 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d resumed run matches" seed)
      true
      (config_eq p reference (Eventsim.config sim))
  done

let test_sync_copy_ring () =
  let p = Proptest.copy_ring 7 in
  let input = Array.make 7 () in
  let kern = Kernel.create p ~input in
  let init = Protocol.config_of_labels p
      [| true; false; false; true; false; true; true |] in
  List.iter
    (fun steps ->
      let reference =
        Kernel.run kern ~init ~schedule:(Schedule.synchronous 7) ~steps
      in
      let sim = Eventsim.create ~sync:true ~seed:1 p ~input ~init in
      let _ = Eventsim.run sim ~horizon:(float_of_int steps) in
      Alcotest.(check bool)
        (Printf.sprintf "rotation after %d steps" steps)
        true
        (config_eq p reference (Eventsim.config sim)))
    [ 0; 1; 6; 7; 8; 20 ]

(* ------------------------------------------------------------------ *)
(* Determinism of the asynchronous trajectory                          *)
(* ------------------------------------------------------------------ *)

let async_fingerprint ?faults ~seed p ~input ~init ~horizon () =
  let sim =
    Eventsim.create ?faults ~latency:(Eventsim.Exp 0.7) ~rate:1.3 ~seed p
      ~input ~init
  in
  let st = Eventsim.run sim ~horizon in
  ( Array.copy (Eventsim.labels sim),
    Array.copy (Eventsim.outputs sim),
    st.Eventsim.events,
    st.Eventsim.deliveries )

let test_async_deterministic () =
  for seed = 1 to trials do
    let p, input, state = Proptest.random_protocol seed in
    let init = Proptest.random_config p state in
    let a = async_fingerprint ~seed p ~input ~init ~horizon:25.0 () in
    let b = async_fingerprint ~seed p ~input ~init ~horizon:25.0 () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d same seed same trajectory" seed)
      true (a = b)
  done

(* Multi-seed campaigns sharded over domains must not perturb any run:
   each simulator is self-contained, so results are bit-identical for
   every domain count. *)
let test_async_identical_across_domains () =
  let p, input, state = Proptest.random_protocol 3 in
  let init = Proptest.random_config p state in
  let campaign domains =
    Parrun.map ~domains
      ~ctx:(fun () -> ())
      8
      (fun () s -> async_fingerprint ~seed:(s + 1) p ~input ~init
          ~horizon:20.0 ())
  in
  let reference = campaign 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains identical" domains)
        true
        (campaign domains = reference))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Faults as latency special cases                                     *)
(* ------------------------------------------------------------------ *)

let test_loss_one_freezes_labels () =
  let p, input, state = Proptest.random_protocol 5 in
  let init = Proptest.random_config p state in
  let faults = { Eventsim.no_faults with loss = 1.0 } in
  let sim = Eventsim.create ~faults ~seed:9 p ~input ~init in
  let frozen = Array.copy (Eventsim.labels sim) in
  let st = Eventsim.run sim ~horizon:50.0 in
  Alcotest.(check int) "no deliveries" 0 st.Eventsim.deliveries;
  Alcotest.(check bool) "every message lost" true (st.Eventsim.lost > 0);
  Alcotest.(check bool) "labels frozen at init" true
    (Eventsim.labels sim = frozen);
  Alcotest.(check bool) "activations still fire" true
    (st.Eventsim.activations > 0)

let test_dup_doubles_deliveries () =
  let p, input, state = Proptest.random_protocol 6 in
  let init = Proptest.random_config p state in
  let faults = { Eventsim.no_faults with dup = 1.0 } in
  let sim = Eventsim.create ~faults ~latency:(Eventsim.Const 0.1) ~seed:4 p
      ~input ~init in
  let st = Eventsim.run sim ~horizon:50.0 in
  Alcotest.(check bool) "every push duplicated" true
    (st.Eventsim.duplicated > 0);
  (* With dup = 1 every sent message is pushed twice; deliveries processed
     within the horizon are exactly twice the duplications counted for
     them, up to copies still in flight at the horizon. *)
  Alcotest.(check bool) "deliveries track duplications" true
    (st.Eventsim.deliveries >= st.Eventsim.duplicated)

let test_crash_suppresses_reactions () =
  let p, input, state = Proptest.random_protocol 8 in
  let init = Proptest.random_config p state in
  let faults =
    { Eventsim.no_faults with crash = 1.0; crash_len = 1000.0 }
  in
  let sim = Eventsim.create ~faults ~seed:2 p ~input ~init in
  let st = Eventsim.run sim ~horizon:50.0 in
  let n = Protocol.num_nodes p in
  Alcotest.(check int) "each node crashed exactly once" n
    st.Eventsim.crash_windows;
  Alcotest.(check int) "no message ever sent" 0 st.Eventsim.deliveries

(* ------------------------------------------------------------------ *)
(* Scalable graph generators                                           *)
(* ------------------------------------------------------------------ *)

let degree_sum g =
  let n = Digraph.num_nodes g in
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + Digraph.out_degree g i
  done;
  !s

let test_erdos_renyi_sparse () =
  let n = 5000 in
  let g = Builders.erdos_renyi_sparse ~seed:11 n ~avg_out:4.0 in
  let m = Digraph.num_edges g in
  Alcotest.(check bool) "edge count near n * avg_out" true
    (abs (m - (4 * n)) < n);
  Alcotest.(check int) "degrees consistent" m (degree_sum g);
  (* Same ensemble as the dense sampler: both must produce simple digraphs
     (create would reject duplicates or self-loops). *)
  Alcotest.(check bool) "deterministic" true
    (Digraph.edges g = Digraph.edges (Builders.erdos_renyi_sparse ~seed:11 n
       ~avg_out:4.0))

let test_small_world () =
  let n = 2000 and k = 3 in
  let g = Builders.small_world ~seed:5 n ~k ~beta:0.2 in
  Alcotest.(check int) "edge count fixed by lattice" (2 * n * k)
    (Digraph.num_edges g);
  Alcotest.(check bool) "symmetric (bidirectional links)" true
    (Digraph.is_symmetric g);
  let lattice = Builders.small_world ~seed:5 n ~k ~beta:0.0 in
  Alcotest.(check bool) "beta = 0 is the ring lattice" true
    (Digraph.mem_edge lattice ~src:0 ~dst:1
    && Digraph.mem_edge lattice ~src:0 ~dst:(n - k))

let test_preferential_attachment () =
  let n = 2000 and m = 2 in
  let g = Builders.preferential_attachment ~seed:5 n ~m in
  (* m + 1 clique core, then m undirected edges per remaining node; each
     undirected edge appears in both directions. *)
  let expected = 2 * (((m + 1) * m / 2) + ((n - m - 1) * m)) in
  Alcotest.(check int) "edge count" expected (Digraph.num_edges g);
  Alcotest.(check bool) "symmetric" true (Digraph.is_symmetric g);
  let dmax = ref 0 in
  for i = 0 to n - 1 do
    dmax := max !dmax (Digraph.out_degree g i)
  done;
  Alcotest.(check bool) "heavy tail: hubs emerge" true (!dmax > 4 * m)

(* Simulation across a generated graph: contagion-style threshold protocol
   on a small-world graph runs and counts events sanely. *)
let test_sim_on_generated_graph () =
  let g = Builders.small_world ~seed:3 500 ~k:2 ~beta:0.1 in
  let n = Digraph.num_nodes g in
  let space = Stateless_core.Label.bool in
  let react i () inputs =
    let adopted = Array.fold_left (fun a l -> if l then a + 1 else a) 0 inputs in
    let out = 2 * adopted >= Array.length inputs in
    (Array.make (Array.length (Digraph.out_edges g i)) out,
     if out then 1 else 0)
  in
  let p = { Protocol.name = "sw-threshold"; graph = g; space; react } in
  let input = Array.make n () in
  let init = Protocol.uniform_config p false in
  Array.iter
    (fun e -> init.Protocol.labels.(e) <- true)
    (Digraph.out_edges g 0);
  let sim = Eventsim.create ~seed:1 ~latency:(Eventsim.Pareto (1.5, 0.2)) p
      ~input ~init in
  let st = Eventsim.run sim ~horizon:30.0 in
  Alcotest.(check bool) "events processed" true (st.Eventsim.events > n);
  Alcotest.(check bool) "clock parked at horizon" true
    (Eventsim.time sim = 30.0)

let () =
  Alcotest.run "stateless_sim"
    [
      ( "sync-anchor",
        [
          Alcotest.test_case "matches kernel on proptest matrix" `Quick
            test_sync_matches_kernel;
          Alcotest.test_case "resumable horizons" `Quick test_sync_resumable;
          Alcotest.test_case "copy ring rotation" `Quick test_sync_copy_ring;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same trajectory" `Quick
            test_async_deterministic;
          Alcotest.test_case "identical across domains" `Quick
            test_async_identical_across_domains;
        ] );
      ( "faults",
        [
          Alcotest.test_case "loss = 1 freezes labels" `Quick
            test_loss_one_freezes_labels;
          Alcotest.test_case "dup doubles pushes" `Quick
            test_dup_doubles_deliveries;
          Alcotest.test_case "crash suppresses reactions" `Quick
            test_crash_suppresses_reactions;
        ] );
      ( "generators",
        [
          Alcotest.test_case "sparse erdos-renyi" `Quick
            test_erdos_renyi_sparse;
          Alcotest.test_case "small world" `Quick test_small_world;
          Alcotest.test_case "preferential attachment" `Quick
            test_preferential_attachment;
          Alcotest.test_case "sim on generated graph" `Quick
            test_sim_on_generated_graph;
        ] );
    ]
