(* Differential and certification tests for the adversarial channel layer
   (Netlab) and the bounded-adversary checker (Netcheck).

   The load-bearing contracts:
   - with a zero fault budget the channel steppers are bit-identical to
     the fault-free Engine and Kernel on randomized protocols x schedules;
   - the boxed and packed channel steppers are differential twins at
     every budget (same seed, same run);
   - Netcheck at k = 0 agrees with the plain exhaustive checker on the
     standard small instances, and its oscillation witnesses replay on
     the boxed engine;
   - campaigns and adversarial searches are identical for every domain
     count. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Parrun = Stateless_core.Parrun
module Adversary = Stateless_core.Adversary
module Clique_example = Stateless_core.Clique_example
module Checker = Stateless_checker.Checker
module Netlab = Stateless_netlab.Netlab
module Netcheck = Stateless_netlab.Netcheck
module Two_counter = Stateless_counter.Two_counter
module Proptest = Stateless_core.Proptest

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Extra domain counts from the environment (the CI matrix leg sets
   PARRUN_DOMAINS=4); determinism contracts must hold for any value. *)
let extra_domains =
  match Parrun.env_domains () with Some d -> [ d ] | None -> []

let domain_counts = [ 2; 4 ] @ extra_domains

(* Random protocols as in test_kernel.ml, from the shared generator with
   this suite's historical RNG constants. *)
let random_protocol seed =
  Proptest.random_protocol ~salt:0x0c4a11e5 ~graph_seed_mult:13 ~name:"chan"
    seed

let random_config = Proptest.random_config
let schedules_for seed n = Proptest.schedules_for ~offset:5 seed n
let config_eq = Proptest.config_eq

(* ------------------------------------------------------------------ *)
(* Zero-budget channels are the fault-free engines                     *)
(* ------------------------------------------------------------------ *)

(* Nonzero rates with a zero budget: the adversary may never act, so the
   rates must be invisible — this is the stronger form of the contract. *)
let idle_rates =
  Netlab.rates ~loss:0.4 ~delay:0.3 ~max_delay:3 ~dup:0.5 ~crash:0.5
    ~crash_len:2 ()

let zero_budget = { Netlab.k = 0; window = 3 }

let test_zero_budget_packed_matches_kernel () =
  for seed = 1 to 20 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    List.iter
      (fun schedule ->
        let steps = 40 in
        let expect = Engine.run p ~input ~init ~schedule ~steps in
        let ch =
          Netlab.Packed.create p ~input ~rates:idle_rates ~budget:zero_budget
            ~schedule ~seed ~init
        in
        Netlab.Packed.run ch ~steps;
        check
          (Printf.sprintf "no faults injected (seed %d)" seed)
          0
          (Netlab.Packed.faults_injected ch);
        if not (config_eq p expect (Netlab.Packed.config ch)) then
          Alcotest.failf "packed channel diverged (seed %d, %s)" seed
            schedule.Schedule.name)
      (schedules_for seed n)
  done

let test_zero_budget_boxed_matches_engine () =
  for seed = 1 to 20 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    List.iter
      (fun schedule ->
        let steps = 40 in
        let expect = Engine.run p ~input ~init ~schedule ~steps in
        let ch =
          Netlab.Boxed.create p ~input ~rates:idle_rates ~budget:zero_budget
            ~schedule ~seed ~init
        in
        Netlab.Boxed.run ch ~steps;
        check
          (Printf.sprintf "no faults injected (seed %d)" seed)
          0
          (Netlab.Boxed.faults_injected ch);
        if not (config_eq p expect (Netlab.Boxed.config ch)) then
          Alcotest.failf "boxed channel diverged (seed %d, %s)" seed
            schedule.Schedule.name)
      (schedules_for seed n)
  done

(* ------------------------------------------------------------------ *)
(* Boxed and packed channels are twins at every budget                 *)
(* ------------------------------------------------------------------ *)

let stormy_rates =
  Netlab.rates ~loss:0.3 ~delay:0.25 ~max_delay:3 ~dup:0.2 ~crash:0.15
    ~crash_len:2 ()

let test_boxed_packed_twins_under_faults () =
  for seed = 1 to 20 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    let budget = { Netlab.k = 3; window = 4 } in
    List.iter
      (fun schedule ->
        let packed =
          Netlab.Packed.create p ~input ~rates:stormy_rates ~budget ~schedule
            ~seed:(seed + 100) ~init
        in
        let boxed =
          Netlab.Boxed.create p ~input ~rates:stormy_rates ~budget ~schedule
            ~seed:(seed + 100) ~init
        in
        for s = 1 to 50 do
          Netlab.Packed.step packed;
          Netlab.Boxed.step boxed;
          if
            not
              (config_eq p
                 (Netlab.Packed.config packed)
                 (Netlab.Boxed.config boxed))
          then
            Alcotest.failf "twins diverged at step %d (seed %d, %s)" s seed
              schedule.Schedule.name
        done;
        check
          (Printf.sprintf "same fault count (seed %d)" seed)
          (Netlab.Packed.faults_injected packed)
          (Netlab.Boxed.faults_injected boxed))
      (schedules_for seed n)
  done

let test_budget_caps_injected_faults () =
  let p, input, st = random_protocol 3 in
  let init = random_config p st in
  let budget = { Netlab.k = 2; window = 10 } in
  let ch =
    Netlab.Packed.create p ~input ~rates:stormy_rates ~budget
      ~schedule:(Schedule.synchronous (Protocol.num_nodes p))
      ~seed:9 ~init
  in
  Netlab.Packed.run ch ~steps:100;
  let injected = Netlab.Packed.faults_injected ch in
  check_bool
    (Printf.sprintf "injected %d within 2 per 10-step window" injected)
    true
    (injected <= 2 * 10);
  check_bool "storm actually injected faults" true (injected > 0)

let test_rates_validation () =
  let invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  invalid (fun () -> Netlab.rates ~loss:1.2 ());
  invalid (fun () -> Netlab.rates ~dup:(-0.1) ());
  invalid (fun () -> Netlab.rates ~loss:0.7 ~delay:0.5 ());
  invalid (fun () -> Netlab.rates ~max_delay:0 ());
  invalid (fun () -> Netlab.rates ~crash_len:0 ());
  invalid (fun () -> Netlab.check_budget { Netlab.k = -1; window = 1 });
  invalid (fun () -> Netlab.check_budget { Netlab.k = 0; window = 0 })

(* ------------------------------------------------------------------ *)
(* Netcheck at k = 0 is the plain checker                              *)
(* ------------------------------------------------------------------ *)

let kind = function
  | Netcheck.Stabilizing -> `St
  | Netcheck.Oscillating _ -> `Osc
  | Netcheck.Too_large _ -> `Big

let plain_kind = function
  | Checker.Stabilizing -> `St
  | Checker.Oscillating _ -> `Osc
  | Checker.Too_large _ -> `Big

let copy_ring_uni n = Proptest.copy_ring ~name:"copy-ring-uni" n

let agree_at_zero_budget name p ~input ~r =
  let budget = 100_000 in
  check_bool (name ^ " label verdicts agree") true
    (plain_kind (Checker.check_label p ~input ~r ~max_states:budget)
    = kind (Netcheck.check_label p ~input ~r ~k:0 ~window:1 ~max_states:budget));
  check_bool (name ^ " output verdicts agree") true
    (plain_kind (Checker.check_output p ~input ~r ~max_states:budget)
    = kind (Netcheck.check_output p ~input ~r ~k:0 ~window:1 ~max_states:budget))

let test_zero_budget_agrees_with_checker () =
  let two = Two_counter.make 3 in
  agree_at_zero_budget "example1 r=1" (Clique_example.make 3)
    ~input:(Clique_example.input 3) ~r:1;
  agree_at_zero_budget "example1 r=2" (Clique_example.make 3)
    ~input:(Clique_example.input 3) ~r:2;
  agree_at_zero_budget "copy-ring r=1" (copy_ring_uni 3)
    ~input:(Array.make 3 ()) ~r:1;
  agree_at_zero_budget "two-counter r=1" two.Two_counter.protocol
    ~input:(Two_counter.input two) ~r:1

(* The flagship budget-matters fact: example1 on K_3 label-1-stabilizes
   fault-free, but one fault per step lets the adversary keep reviving a
   hot edge the protocol then heals — protocol label changes forever. *)
let test_example1_budget_flips_verdict () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  (match Netcheck.check_label p ~input ~r:1 ~k:0 ~window:1 ~max_states:1_000 with
  | Netcheck.Stabilizing -> ()
  | _ -> Alcotest.fail "example1 must 1-stabilize at k=0");
  match Netcheck.check_label p ~input ~r:1 ~k:1 ~window:1 ~max_states:10_000 with
  | Netcheck.Oscillating w ->
      check_bool "witness has a fault step" true
        (List.exists (fun s -> s.Netcheck.fault <> None) (w.Netcheck.prefix @ w.Netcheck.cycle));
      check_bool "witness replays (boxed engine)" true
        (Netcheck.replay p ~input w);
      check_bool "witness replays (packed kernel)" true
        (Netcheck.replay_packed p ~input w)
  | Netcheck.Stabilizing -> Alcotest.fail "k=1 adversary must force oscillation"
  | Netcheck.Too_large { needed } -> Alcotest.failf "needs %d states" needed

let test_budget_windows_are_graded () =
  (* A longer recharge window weakens the adversary monotonically: any
     fault pattern legal at window w is legal at window w' <= w. Example1
     on K_3 at r=1 oscillates even on a 3-step window (one fault every 3
     steps keeps a hot edge alive), and the graph grows with the window. *)
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  match Netcheck.check_label p ~input ~r:1 ~k:1 ~window:3 ~max_states:10_000 with
  | Netcheck.Oscillating w ->
      check_bool "window-3 witness replays (boxed)" true
        (Netcheck.replay p ~input w);
      check_bool "window-3 witness replays (packed)" true
        (Netcheck.replay_packed p ~input w)
  | Netcheck.Stabilizing -> Alcotest.fail "k=1/w=3 still forces oscillation"
  | Netcheck.Too_large { needed } -> Alcotest.failf "needs %d states" needed

let test_copy_ring_outputs_immune_to_faults () =
  (* Every output of the copy ring is constantly 0: no fault pattern can
     make outputs diverge, even though labels churn forever. *)
  let p = copy_ring_uni 3 in
  let input = Array.make 3 () in
  (match Netcheck.check_output p ~input ~r:1 ~k:1 ~window:1 ~max_states:10_000 with
  | Netcheck.Stabilizing -> ()
  | Netcheck.Oscillating _ -> Alcotest.fail "constant outputs cannot oscillate"
  | Netcheck.Too_large { needed } -> Alcotest.failf "needs %d states" needed);
  match Netcheck.check_label p ~input ~r:1 ~k:1 ~window:1 ~max_states:10_000 with
  | Netcheck.Oscillating w ->
      check_bool "label witness replays (boxed)" true
        (Netcheck.replay p ~input w);
      check_bool "label witness replays (packed)" true
        (Netcheck.replay_packed p ~input w)
  | Netcheck.Stabilizing -> Alcotest.fail "copy ring labels rotate forever"
  | Netcheck.Too_large { needed } -> Alcotest.failf "needs %d states" needed

let test_witness_replay_roundtrip () =
  (* Every stored lasso must reproduce its divergence on both execution
     engines: the boxed Engine and the packed Kernel. Sweep the small
     random instances and every (k, window) that fits the budget. *)
  let found = ref 0 in
  for seed = 1 to 10 do
    let p, input, _ = random_protocol seed in
    if Protocol.num_nodes p <= 3 && Protocol.num_edges p <= 5 then
      List.iter
        (fun (k, window) ->
          match
            Netcheck.check_label p ~input ~r:1 ~k ~window
              ~max_states:500_000
          with
          | Netcheck.Oscillating w ->
              incr found;
              check_bool
                (Printf.sprintf "seed %d k=%d w=%d boxed replay" seed k window)
                true
                (Netcheck.replay p ~input w);
              check_bool
                (Printf.sprintf "seed %d k=%d w=%d packed replay" seed k window)
                true
                (Netcheck.replay_packed p ~input w)
          | _ -> ())
        [ (0, 1); (1, 1); (1, 3) ]
  done;
  check_bool "some lasso was exercised" true (!found > 0)

let test_netcheck_too_large () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  match Netcheck.check_label p ~input ~r:1 ~k:1 ~window:2 ~max_states:10 with
  | Netcheck.Too_large { needed } ->
      (* 64 labelings x 1 countdown x 2 budgets x 2 phases. *)
      check "needed" 256 needed
  | _ -> Alcotest.fail "expected Too_large"

(* ------------------------------------------------------------------ *)
(* Adversary: witnesses verify, search is domain-deterministic         *)
(* ------------------------------------------------------------------ *)

(* The copy ring rotates any non-uniform labeling forever, so random
   (labeling, 4-fair periodic schedule) samples find oscillations fast. *)
let find_oscillation_ring domains =
  Adversary.find_oscillation ~domains (copy_ring_uni 4)
    ~input:(Array.make 4 ()) ~r:4 ~attempts:100 ~period:8 ~seed:1
    ~max_steps:400

let test_adversary_witness_verifies () =
  match find_oscillation_ring 1 with
  | None -> Alcotest.fail "expected an oscillation witness"
  | Some w ->
      check_bool "witness re-verifies" true
        (Adversary.verify (copy_ring_uni 4) ~input:(Array.make 4 ()) w)

let test_adversary_identical_across_domains () =
  match find_oscillation_ring 1 with
  | None -> Alcotest.fail "expected an oscillation witness"
  | Some base ->
      List.iter
        (fun domains ->
          match find_oscillation_ring domains with
          | None -> Alcotest.failf "no witness at %d domains" domains
          | Some w ->
              check_bool
                (Printf.sprintf "same witness at %d domains" domains)
                true
                (w.Adversary.init = base.Adversary.init
                && w.Adversary.entered = base.Adversary.entered
                && w.Adversary.period = base.Adversary.period))
        domain_counts

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

let small_levels =
  [ Netlab.rates (); Netlab.rates ~loss:0.3 ~delay:0.2 ~dup:0.1 ~crash:0.1 () ]

let small_budget = { Netlab.k = 2; window = 5 }

let run_campaign ?(domains = 1) sc =
  Netlab.run ~levels:small_levels ~seeds:4 ~storm:60 ~max_steps:5_000 ~domains
    ~budget:small_budget sc

let test_campaign_statistics_well_formed () =
  let c = run_campaign (Netlab.example1 ~n:3 ()) in
  check "two levels" 2 (List.length c.Netlab.levels);
  check "runs per level" 4 c.Netlab.runs_per_level;
  (match c.Netlab.levels with
  | clean :: _ ->
      (* The zero-rate level has no degradation and instant recovery. *)
      check "clean level recovers everywhere" clean.Netlab.runs
        clean.Netlab.recovered;
      check_bool "clean level undegraded" true
        (clean.Netlab.mean_degraded = 0.0)
  | [] -> Alcotest.fail "missing levels");
  List.iter
    (fun s ->
      check "runs" 4 s.Netlab.runs;
      check_bool "recovered within runs" true
        (s.Netlab.recovered >= 0 && s.Netlab.recovered <= s.Netlab.runs);
      check_bool "degradation is a fraction" true
        (s.Netlab.mean_degraded >= 0.0 && s.Netlab.mean_degraded <= 1.0);
      if s.Netlab.recovered > 0 then begin
        check_bool "p50 <= p95" true (s.Netlab.p50 <= s.Netlab.p95);
        check_bool "p95 <= worst" true (s.Netlab.p95 <= s.Netlab.worst)
      end)
    c.Netlab.levels

let campaign_eq a b =
  a.Netlab.scenario_name = b.Netlab.scenario_name
  && a.Netlab.schedule = b.Netlab.schedule
  && a.Netlab.budget_k = b.Netlab.budget_k
  && a.Netlab.budget_window = b.Netlab.budget_window
  && a.Netlab.levels = b.Netlab.levels

let test_campaign_identical_across_domains () =
  List.iter
    (fun sc ->
      let base = run_campaign ~domains:1 sc in
      List.iter
        (fun domains ->
          check_bool
            (Printf.sprintf "%s identical at %d domains" sc.Netlab.name
               domains)
            true
            (campaign_eq base (run_campaign ~domains sc)))
        domain_counts)
    [ Netlab.example1 ~n:3 (); Netlab.d_counter ~n:3 ~d:4 () ]

let test_scenarios_by_name () =
  List.iter
    (fun name ->
      match Netlab.scenario_by_name name with
      | Some _ -> ()
      | None -> Alcotest.fail ("unknown scenario " ^ name))
    Netlab.scenario_names;
  check_bool "unknown rejected" true (Netlab.scenario_by_name "nope" = None)

let test_json_smoke () =
  let c = run_campaign (Netlab.example1 ~n:3 ()) in
  let path = Filename.temp_file "netlab" ".json" in
  let oc = open_out path in
  Netlab.write_json
    ~certification:
      [ "{ \"instance\": \"example1_k3\", \"verdict\": \"oscillating\" }" ]
    oc [ c ];
  close_out oc;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions benchmark" true (contains "\"benchmark\": \"netlab\"");
  check_bool "mentions campaigns" true (contains "\"campaigns\"");
  check_bool "mentions levels" true (contains "\"levels\"");
  check_bool "mentions certification" true (contains "\"certification\"");
  check_bool "mentions degradation" true (contains "\"mean_degraded_fraction\"")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_netlab"
    [
      ( "zero budget",
        [
          Alcotest.test_case "packed = kernel" `Quick
            test_zero_budget_packed_matches_kernel;
          Alcotest.test_case "boxed = engine" `Quick
            test_zero_budget_boxed_matches_engine;
        ] );
      ( "channel",
        [
          Alcotest.test_case "boxed/packed twins under faults" `Quick
            test_boxed_packed_twins_under_faults;
          Alcotest.test_case "budget caps injections" `Quick
            test_budget_caps_injected_faults;
          Alcotest.test_case "rates validation" `Quick test_rates_validation;
        ] );
      ( "netcheck",
        [
          Alcotest.test_case "k=0 agrees with checker" `Quick
            test_zero_budget_agrees_with_checker;
          Alcotest.test_case "example1 verdict flips at k=1" `Quick
            test_example1_budget_flips_verdict;
          Alcotest.test_case "window-3 adversary still wins" `Quick
            test_budget_windows_are_graded;
          Alcotest.test_case "copy-ring outputs immune" `Quick
            test_copy_ring_outputs_immune_to_faults;
          Alcotest.test_case "witness replay roundtrip" `Quick
            test_witness_replay_roundtrip;
          Alcotest.test_case "budget exceeded" `Quick test_netcheck_too_large;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "witness verifies" `Quick
            test_adversary_witness_verifies;
          Alcotest.test_case "identical across domains" `Quick
            test_adversary_identical_across_domains;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "statistics well-formed" `Quick
            test_campaign_statistics_well_formed;
          Alcotest.test_case "identical across domains" `Quick
            test_campaign_identical_across_domains;
          Alcotest.test_case "scenarios by name" `Quick test_scenarios_by_name;
          Alcotest.test_case "json smoke" `Quick test_json_smoke;
        ] );
    ]
