(* Tests for the fault catalogue (Fault_model), adversarial corruption,
   the exact worst-case-recovery checker, and the fault-recovery campaign
   harness (Faultlab). The checker and the engine serve as each other's
   differential oracle here: on instances small enough to enumerate,
   [Checker.worst_case_recovery] must equal the brute-force maximum of
   [Engine.output_stabilization_time] over every initial labeling. *)

module Builders = Stateless_graph.Builders
module Digraph = Stateless_graph.Digraph
module Checker = Stateless_checker.Checker
module Faultlab = Stateless_faultlab.Faultlab
module Feedback = Stateless_games.Feedback
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Bool labels make structured faults deterministic: a redraw that must
   differ from the old label can only flip it. *)
let example1_3 = Clique_example.make 3
let unit3 = Clique_example.input 3

let member e arr = Array.exists (fun e' -> e' = e) arr

(* ------------------------------------------------------------------ *)
(* Fault catalogue                                                     *)
(* ------------------------------------------------------------------ *)

let test_targeted_scrambles_neighborhood () =
  let p = example1_3 in
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  let damaged = Fault.inject p ~seed:11 (Fault_model.Targeted { nodes = [ 0 ] }) config in
  for e = 0 to Protocol.num_edges p - 1 do
    let incident =
      member e (Digraph.out_edges g 0) || member e (Digraph.in_edges g 0)
    in
    check_bool
      (Printf.sprintf "edge %d" e)
      incident
      (damaged.Protocol.labels.(e) <> config.Protocol.labels.(e))
  done

let test_messages_corrupts_out_edges_only () =
  let p = example1_3 in
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  let damaged = Fault.inject p ~seed:3 (Fault_model.Messages { nodes = [ 1 ] }) config in
  for e = 0 to Protocol.num_edges p - 1 do
    check_bool
      (Printf.sprintf "edge %d" e)
      (member e (Digraph.out_edges g 1))
      (damaged.Protocol.labels.(e) <> config.Protocol.labels.(e))
  done

let test_crash_relabels_to_junk () =
  let p = example1_3 in
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  let damaged =
    Fault.inject p ~seed:0 (Fault_model.Crash { nodes = [ 2 ]; junk = 1 }) config
  in
  for e = 0 to Protocol.num_edges p - 1 do
    if member e (Digraph.out_edges g 2) then
      check_bool (Printf.sprintf "edge %d junk" e) true
        damaged.Protocol.labels.(e)
    else
      check_bool
        (Printf.sprintf "edge %d untouched" e)
        false damaged.Protocol.labels.(e)
  done

let test_inject_is_deterministic () =
  let p = example1_3 in
  let config = Protocol.uniform_config p true in
  let fault = Fault_model.Uniform { fraction = 0.6 } in
  let a = Fault.inject p ~seed:77 fault config in
  let b = Fault.inject p ~seed:77 fault config in
  check_bool "same seed same damage" true
    (String.equal (Protocol.config_key p a) (Protocol.config_key p b))

let test_inject_rejects_bad_arguments () =
  let p = example1_3 in
  let config = Protocol.uniform_config p false in
  let invalid fault =
    match Fault.inject p ~seed:0 fault config with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  invalid (Fault_model.Targeted { nodes = [] });
  invalid (Fault_model.Targeted { nodes = [ 3 ] });
  invalid (Fault_model.Messages { nodes = [ -1 ] });
  invalid (Fault_model.Crash { nodes = [ 0 ]; junk = 2 });
  invalid (Fault_model.Uniform { fraction = 1.5 })

let test_fault_names () =
  Alcotest.(check string)
    "uniform" "uniform:0.25"
    (Fault_model.name (Fault_model.Uniform { fraction = 0.25 }));
  Alcotest.(check string)
    "crash" "crash:0,1->3"
    (Fault_model.name (Fault_model.Crash { nodes = [ 0; 1 ]; junk = 3 }))

let test_corrupt_full_fraction_changes_every_label () =
  let p = example1_3 in
  let config = Protocol.uniform_config p false in
  for seed = 1 to 10 do
    let damaged = Fault.corrupt p ~seed ~fraction:1.0 config in
    Array.iteri
      (fun e l ->
        check_bool (Printf.sprintf "seed %d edge %d" seed e) true
          (l <> config.Protocol.labels.(e)))
      damaged.Protocol.labels
  done

let test_corrupt_rate_tracks_fraction () =
  (* Every corrupted label now differs from the old one, so the number of
     changed positions is Binomial(m, fraction); over many seeds the mean
     must sit near fraction * m. *)
  let p = Generic.make (Builders.clique 4) (fun _ -> false) in
  let m = Protocol.num_edges p in
  let config = Protocol.uniform_config p (Array.make 5 false) in
  let seeds = 200 in
  let total = ref 0 in
  for seed = 1 to seeds do
    let damaged = Fault.corrupt p ~seed ~fraction:0.5 config in
    for e = 0 to m - 1 do
      if damaged.Protocol.labels.(e) <> config.Protocol.labels.(e) then
        incr total
    done
  done;
  let mean = float_of_int !total /. float_of_int (seeds * m) in
  check_bool
    (Printf.sprintf "mean rate %.3f near 0.5" mean)
    true
    (mean > 0.4 && mean < 0.6)

(* ------------------------------------------------------------------ *)
(* Adversarial corruption                                              *)
(* ------------------------------------------------------------------ *)

let test_adversarial_matches_brute_force () =
  let p = example1_3 in
  let schedule = Schedule.synchronous 3 in
  let config = Protocol.uniform_config p false in
  (* k = 1 over bool labels: the candidates are exactly "flip one edge". *)
  let brute =
    List.init (Protocol.num_edges p) (fun e ->
        let labels = Array.copy config.Protocol.labels in
        labels.(e) <- not labels.(e);
        Engine.output_stabilization_time p ~input:unit3
          ~init:(Protocol.config_of_labels p labels)
          ~schedule ~max_steps:200)
  in
  let worst =
    List.fold_left
      (fun acc t ->
        match (acc, t) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (max a b))
      (Some 0) brute
  in
  let adv =
    Fault.adversarial_corruption p ~input:unit3 ~schedule ~k:1 ~max_steps:200
      config
  in
  check_bool "exhaustive" true adv.Fault.adv_exhaustive;
  Alcotest.(check (option int)) "worst recovery" worst adv.Fault.adv_recovery;
  check "one edge" 1 (List.length adv.Fault.adv_edges);
  (* The returned damaged configuration must actually attain the bound. *)
  Alcotest.(check (option int))
    "witness attains it" worst
    (Engine.output_stabilization_time p ~input:unit3
       ~init:adv.Fault.adv_config ~schedule ~max_steps:200)

let test_adversarial_limit_flags_incomplete () =
  let p = example1_3 in
  let adv =
    Fault.adversarial_corruption ~limit:2 p ~input:unit3
      ~schedule:(Schedule.synchronous 3) ~k:1 ~max_steps:200
      (Protocol.uniform_config p false)
  in
  check_bool "not exhaustive" false adv.Fault.adv_exhaustive

let test_adversarial_rejects_bad_k () =
  let p = example1_3 in
  let config = Protocol.uniform_config p false in
  match
    Fault.adversarial_corruption p ~input:unit3
      ~schedule:(Schedule.synchronous 3) ~k:0 ~max_steps:10 config
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Exact worst-case recovery vs. brute-force simulation                *)
(* ------------------------------------------------------------------ *)

let brute_force_worst p ~input ~n ~max_steps =
  let count = Option.get (Protocol.labelings_count p) in
  let worst = ref (-1) and witness = ref 0 and diverged = ref None in
  for code = 0 to count - 1 do
    match
      Engine.output_stabilization_time p ~input
        ~init:(Protocol.decode_config p code)
        ~schedule:(Schedule.synchronous n) ~max_steps
    with
    | Some t -> if t > !worst then (worst := t; witness := code)
    | None -> if !diverged = None then diverged := Some code
  done;
  (!worst, !witness, !diverged)

let test_worst_case_recovery_example1 () =
  (* The acceptance differential: on K_3 (64 labelings) the checker's exact
     answer must equal the brute-force maximum over every corrupted start. *)
  let p = example1_3 in
  let worst, _, diverged =
    brute_force_worst p ~input:unit3 ~n:3 ~max_steps:500
  in
  Alcotest.(check (option int)) "no diverging start" None diverged;
  match Checker.worst_case_recovery p ~input:unit3 ~max_states:100 with
  | Checker.Worst_recovery { steps; witness_code } ->
      check "matches brute force" worst steps;
      Alcotest.(check (option int))
        "witness attains it" (Some steps)
        (Engine.output_stabilization_time p ~input:unit3
           ~init:(Protocol.decode_config p witness_code)
           ~schedule:(Schedule.synchronous 3) ~max_steps:500)
  | Checker.Never_settles _ -> Alcotest.fail "example1 settles synchronously"
  | Checker.Recovery_too_large _ -> Alcotest.fail "64 states fit the budget"

let copy_ring n = Stateless_core.Proptest.copy_ring n

let test_worst_case_recovery_copy_ring () =
  (* Labels rotate forever from non-uniform labelings, but every output is
     constantly 0: outputs are settled from step 0 everywhere. The checker
     must agree with the brute-forced engine on all 16 labelings. *)
  let p = copy_ring 4 in
  let input = Array.make 4 () in
  let worst, _, diverged = brute_force_worst p ~input ~n:4 ~max_steps:200 in
  Alcotest.(check (option int)) "no diverging start" None diverged;
  check "outputs settled immediately" 0 worst;
  match Checker.worst_case_recovery p ~input ~max_states:100 with
  | Checker.Worst_recovery { steps; _ } -> check "checker agrees" 0 steps
  | _ -> Alcotest.fail "expected Worst_recovery"

let test_worst_case_recovery_oscillator () =
  (* The odd ring oscillator has no stable labeling and its outputs flip
     forever under the synchronous schedule: the checker must report
     Never_settles, and the engine must confirm the witness. *)
  let p = Feedback.ring_oscillator 3 in
  let input = Array.make 3 () in
  match Checker.worst_case_recovery p ~input ~max_states:100 with
  | Checker.Never_settles { init_code } ->
      Alcotest.(check (option int))
        "engine agrees on witness" None
        (Engine.output_stabilization_time p ~input
           ~init:(Protocol.decode_config p init_code)
           ~schedule:(Schedule.synchronous 3) ~max_steps:500)
  | Checker.Worst_recovery _ -> Alcotest.fail "oscillator cannot settle"
  | Checker.Recovery_too_large _ -> Alcotest.fail "8 states fit the budget"

let test_worst_case_recovery_budget () =
  match Checker.worst_case_recovery example1_3 ~input:unit3 ~max_states:10 with
  | Checker.Recovery_too_large { needed } -> check "needed" 64 needed
  | _ -> Alcotest.fail "expected Recovery_too_large"

(* ------------------------------------------------------------------ *)
(* Recovery on the paper's fixtures                                    *)
(* ------------------------------------------------------------------ *)

let test_example1_recovers () =
  let p = Clique_example.make 4 in
  let init = Clique_example.oscillation_init p in
  for seed = 1 to 5 do
    match
      Fault.recovery_time p ~input:(Clique_example.input 4) ~init
        ~schedule:(Schedule.synchronous 4) ~seed ~fraction:0.5 ~max_steps:200
    with
    | Some (_, recovery) ->
        check_bool
          (Printf.sprintf "seed %d fast" seed)
          true (recovery <= 5)
    | None -> Alcotest.fail "example1 must re-stabilize synchronously"
  done

let test_nor_latch_recovers_round_robin () =
  (* Metastability rules out guarantees under adversarial schedules, but the
     round-robin schedule always re-settles the latch into one of its two
     stable states after corruption. *)
  let p = Feedback.nor_latch () in
  let input = [| false; false |] in
  let init = Protocol.uniform_config p false in
  for seed = 1 to 5 do
    match
      Fault.recovery_time p ~input ~init ~schedule:(Schedule.round_robin 2)
        ~seed ~fraction:1.0 ~max_steps:100
    with
    | Some (_, recovery) ->
        check_bool (Printf.sprintf "seed %d bounded" seed) true (recovery <= 4)
    | None -> Alcotest.fail "latch must re-settle under round-robin"
  done

let test_d_counter_relocks () =
  let sc = Faultlab.d_counter ~n:3 ~d:4 () in
  for seed = 1 to 3 do
    match sc.Faultlab.recover ~fraction:1.0 ~seed ~max_steps:2000 with
    | Some t -> check_bool (Printf.sprintf "seed %d" seed) true (t >= 0)
    | None -> Alcotest.fail "counter must re-lock"
  done

(* ------------------------------------------------------------------ *)
(* Campaign harness                                                    *)
(* ------------------------------------------------------------------ *)

let test_campaign_statistics_well_formed () =
  let c =
    Faultlab.run
      ~fractions:[ 0.5; 1.0 ]
      ~seeds:5 ~max_steps:2000
      (Faultlab.example1 ~n:3 ())
  in
  check "two rows" 2 (List.length c.Faultlab.stats);
  check "runs per fraction" 5 c.Faultlab.runs_per_fraction;
  List.iter
    (fun s ->
      check "runs" 5 s.Faultlab.runs;
      check_bool "recovered within runs" true
        (s.Faultlab.recovered >= 0 && s.Faultlab.recovered <= s.Faultlab.runs);
      if s.Faultlab.recovered > 0 then begin
        check_bool "p50 <= p95" true (s.Faultlab.p50 <= s.Faultlab.p95);
        check_bool "p95 <= worst" true (s.Faultlab.p95 <= s.Faultlab.worst);
        check_bool "mean nonnegative" true (s.Faultlab.mean >= 0.0)
      end)
    c.Faultlab.stats

let test_scenarios_by_name () =
  List.iter
    (fun name ->
      match Faultlab.scenario_by_name name with
      | Some _ -> ()
      | None -> Alcotest.fail ("unknown scenario " ^ name))
    Faultlab.scenario_names;
  check_bool "unknown rejected" true (Faultlab.scenario_by_name "nope" = None)

let test_json_smoke () =
  let c =
    Faultlab.run ~fractions:[ 1.0 ] ~seeds:2 ~max_steps:500
      (Faultlab.example1 ~n:3 ())
  in
  let path = Filename.temp_file "faults" ".json" in
  let oc = open_out path in
  Faultlab.write_json oc [ c ];
  close_out oc;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions benchmark" true (contains "\"benchmark\"");
  check_bool "mentions campaigns" true (contains "\"campaigns\"");
  check_bool "mentions fraction" true (contains "\"fraction\"")

(* ------------------------------------------------------------------ *)
(* Determinism across domains                                          *)
(* ------------------------------------------------------------------ *)

(* The acceptance contract of the domain-parallel runner: campaigns,
   adversarial searches and worst-case-recovery sweeps must be identical —
   down to witnesses — for every [~domains] value. [PARRUN_DOMAINS] lets CI
   fold an extra (e.g. machine-sized) domain count into the matrix. *)

let domain_matrix =
  let base = [ 2; 4 ] in
  match Parrun.env_domains () with Some d -> base @ [ d ] | None -> base

let campaign_eq a b =
  a.Faultlab.scenario_name = b.Faultlab.scenario_name
  && a.Faultlab.schedule = b.Faultlab.schedule
  && a.Faultlab.runs_per_fraction = b.Faultlab.runs_per_fraction
  && a.Faultlab.stats = b.Faultlab.stats

let test_campaign_identical_across_domains () =
  List.iter
    (fun sc ->
      let base =
        Faultlab.run ~fractions:[ 0.25; 1.0 ] ~seeds:6 ~max_steps:2000
          ~domains:1 sc
      in
      List.iter
        (fun domains ->
          let par =
            Faultlab.run ~fractions:[ 0.25; 1.0 ] ~seeds:6 ~max_steps:2000
              ~domains sc
          in
          check_bool
            (Printf.sprintf "%s identical at %d domains" sc.Faultlab.name
               domains)
            true (campaign_eq base par))
        domain_matrix)
    [ Faultlab.example1 ~n:3 (); Faultlab.d_counter ~n:3 ~d:4 ();
      Faultlab.ring_oscillator ~n:3 () ]

let test_adversarial_identical_across_domains () =
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  let schedule = Schedule.synchronous 4 in
  let config = Protocol.uniform_config p false in
  let run domains =
    Fault.adversarial_corruption ~domains p ~input ~schedule ~k:2
      ~max_steps:200 config
  in
  let base = run 1 in
  List.iter
    (fun domains ->
      let par = run domains in
      check_bool
        (Printf.sprintf "edges agree at %d domains" domains)
        true
        (base.Fault.adv_edges = par.Fault.adv_edges
        && base.Fault.adv_codes = par.Fault.adv_codes
        && base.Fault.adv_recovery = par.Fault.adv_recovery
        && base.Fault.adv_exhaustive = par.Fault.adv_exhaustive))
    domain_matrix

let test_worst_case_identical_across_domains () =
  let cases =
    [
      ("example1", (fun d -> Checker.worst_case_recovery ~domains:d example1_3 ~input:unit3 ~max_states:100));
      ("oscillator",
       (let p = Feedback.ring_oscillator 3 in
        let input = Array.make 3 () in
        fun d -> Checker.worst_case_recovery ~domains:d p ~input ~max_states:100));
    ]
  in
  List.iter
    (fun (name, run) ->
      let base = run 1 in
      List.iter
        (fun domains ->
          check_bool
            (Printf.sprintf "%s verdict agrees at %d domains" name domains)
            true
            (base = run domains))
        [ 2; 4; 7 ])
    cases

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_faults"
    [
      ( "catalogue",
        [
          Alcotest.test_case "targeted scrambles neighborhood" `Quick
            test_targeted_scrambles_neighborhood;
          Alcotest.test_case "messages corrupts out-edges" `Quick
            test_messages_corrupts_out_edges_only;
          Alcotest.test_case "crash relabels to junk" `Quick
            test_crash_relabels_to_junk;
          Alcotest.test_case "deterministic in seed" `Quick
            test_inject_is_deterministic;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_inject_rejects_bad_arguments;
          Alcotest.test_case "fault names" `Quick test_fault_names;
          Alcotest.test_case "fraction 1 changes all" `Quick
            test_corrupt_full_fraction_changes_every_label;
          Alcotest.test_case "rate tracks fraction" `Quick
            test_corrupt_rate_tracks_fraction;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_adversarial_matches_brute_force;
          Alcotest.test_case "limit flags incomplete" `Quick
            test_adversarial_limit_flags_incomplete;
          Alcotest.test_case "rejects bad k" `Quick test_adversarial_rejects_bad_k;
        ] );
      ( "worst-case recovery",
        [
          Alcotest.test_case "example1 differential" `Quick
            test_worst_case_recovery_example1;
          Alcotest.test_case "copy-ring differential" `Quick
            test_worst_case_recovery_copy_ring;
          Alcotest.test_case "oscillator never settles" `Quick
            test_worst_case_recovery_oscillator;
          Alcotest.test_case "budget exceeded" `Quick
            test_worst_case_recovery_budget;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "example1 recovers" `Quick test_example1_recovers;
          Alcotest.test_case "nor latch round-robin" `Quick
            test_nor_latch_recovers_round_robin;
          Alcotest.test_case "d-counter re-locks" `Quick test_d_counter_relocks;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "statistics well-formed" `Quick
            test_campaign_statistics_well_formed;
          Alcotest.test_case "scenarios by name" `Quick test_scenarios_by_name;
          Alcotest.test_case "json smoke" `Quick test_json_smoke;
        ] );
      ( "domains",
        [
          Alcotest.test_case "campaigns identical" `Quick
            test_campaign_identical_across_domains;
          Alcotest.test_case "adversarial identical" `Quick
            test_adversarial_identical_across_domains;
          Alcotest.test_case "worst-case identical" `Quick
            test_worst_case_identical_across_domains;
        ] );
    ]
