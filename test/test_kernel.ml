(* Differential suite: the packed {!Kernel} against the boxed {!Engine} on
   randomized protocols, inputs and schedules, for every evaluation tier
   (direct table / sparse memo / raw scratch); plus {!Parrun} determinism
   and the {!Engine.trace} double-buffering regression. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Kernel = Stateless_core.Kernel
module Parrun = Stateless_core.Parrun
module Schedule = Stateless_core.Schedule
module Label = Stateless_core.Label
module Fault = Stateless_core.Fault
module Clique_example = Stateless_core.Clique_example
module Proptest = Stateless_core.Proptest

(* ------------------------------------------------------------------ *)
(* Random protocol generator (shared, see lib/core/proptest.ml)        *)
(* ------------------------------------------------------------------ *)

(* This suite uses Proptest's default RNG constants (salt 0x5ca1ab1e,
   graph seed 7*seed+1, names "rand<seed>"). *)
let random_protocol seed = Proptest.random_protocol seed
let random_config = Proptest.random_config
let random_active = Proptest.random_active
let schedules_for seed n = Proptest.schedules_for seed n

(* All three kernel tiers for one protocol: the table/memo/raw choice must
   be observably invisible. *)
let kernels p ~input =
  [
    ("table", Kernel.create p ~input);
    ("memo", Kernel.create ~max_table_words:0 p ~input);
    ("raw", Kernel.create ~max_table_words:0 ~max_memo_entries:0 p ~input);
  ]

(* ------------------------------------------------------------------ *)
(* Equality of results                                                 *)
(* ------------------------------------------------------------------ *)

let config_eq = Proptest.config_eq

let outcome_eq p a b =
  match (a, b) with
  | ( Engine.Stabilized { rounds = r1; config = c1 },
      Engine.Stabilized { rounds = r2; config = c2 } ) ->
      r1 = r2 && config_eq p c1 c2
  | ( Engine.Oscillating { entered = e1; period = q1 },
      Engine.Oscillating { entered = e2; period = q2 } ) ->
      e1 = e2 && q1 = q2
  | Engine.Exhausted c1, Engine.Exhausted c2 -> config_eq p c1 c2
  | _ -> false

let settled_eq p a b =
  match (a, b) with
  | None, None -> true
  | Some s1, Some s2 ->
      s1.Engine.settle_time = s2.Engine.settle_time
      && s1.Engine.settled_outputs = s2.Engine.settled_outputs
      && config_eq p s1.Engine.horizon_config s2.Engine.horizon_config
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Differential tests                                                  *)
(* ------------------------------------------------------------------ *)

let trials = 30

let test_step_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let ks = kernels p ~input in
    for _ = 1 to 5 do
      let config = random_config p st in
      let active = random_active n st in
      let expect = Engine.step p ~input config ~active in
      List.iter
        (fun (tier, k) ->
          let got = Kernel.step k config ~active in
          if not (config_eq p expect got) then
            Alcotest.failf "step mismatch (seed %d, tier %s)" seed tier)
        ks
    done
  done

let test_run_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let ks = kernels p ~input in
    List.iter
      (fun schedule ->
        let init = random_config p st in
        let steps = 1 + Random.State.int st 40 in
        let expect = Engine.run p ~input ~init ~schedule ~steps in
        List.iter
          (fun (tier, k) ->
            let got = Kernel.run k ~init ~schedule ~steps in
            if not (config_eq p expect got) then
              Alcotest.failf "run mismatch (seed %d, tier %s, %s)" seed tier
                schedule.Schedule.name)
          ks)
      (schedules_for seed n)
  done

let test_run_until_stable_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let ks = kernels p ~input in
    List.iter
      (fun schedule ->
        let init = random_config p st in
        let max_steps = 60 in
        let expect = Engine.run_until_stable p ~input ~init ~schedule ~max_steps in
        List.iter
          (fun (tier, k) ->
            let got = Kernel.run_until_stable k ~init ~schedule ~max_steps in
            if not (outcome_eq p expect got) then
              Alcotest.failf "run_until_stable mismatch (seed %d, tier %s, %s)"
                seed tier schedule.Schedule.name)
          ks)
      (schedules_for seed n)
  done

let test_settle_differential () =
  for seed = 1 to trials do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let ks = kernels p ~input in
    List.iter
      (fun schedule ->
        let init = random_config p st in
        let max_steps = 80 in
        let expect = Engine.settle p ~input ~init ~schedule ~max_steps in
        List.iter
          (fun (tier, k) ->
            let got = Kernel.settle k ~init ~schedule ~max_steps in
            if not (settled_eq p expect got) then
              Alcotest.failf "settle mismatch (seed %d, tier %s, %s)" seed tier
                schedule.Schedule.name)
          ks)
      (schedules_for seed n)
  done

(* A kernel instance is reused across many runs in campaigns; make sure
   state from one run cannot leak into the next. *)
let test_kernel_reuse () =
  let p, input, st = random_protocol 77 in
  let n = Protocol.num_nodes p in
  let k = Kernel.create p ~input in
  let schedule = Schedule.synchronous n in
  let init = random_config p st in
  let first = Kernel.settle k ~init ~schedule ~max_steps:80 in
  for _ = 1 to 3 do
    let other = random_config p st in
    ignore (Kernel.run_until_stable k ~init:other ~schedule ~max_steps:40)
  done;
  let again = Kernel.settle k ~init ~schedule ~max_steps:80 in
  Alcotest.(check bool) "settle is reproducible on a reused kernel" true
    (settled_eq p first again)

let test_load_store_roundtrip () =
  let p, input, st = random_protocol 3 in
  let k = Kernel.create p ~input in
  let config = random_config p st in
  let labels = Array.make (Protocol.num_edges p) 0 in
  let outputs = Array.make (Protocol.num_nodes p) 0 in
  Kernel.load k config ~labels ~outputs;
  let back = Kernel.store k ~labels ~outputs in
  Alcotest.(check bool) "load/store round-trips" true (config_eq p config back);
  Alcotest.check_raises "load rejects wrong sizes"
    (Invalid_argument "Kernel.load: buffer sizes must match the protocol")
    (fun () -> Kernel.load k config ~labels:[| 0 |] ~outputs)

(* ------------------------------------------------------------------ *)
(* Engine.trace regression                                             *)
(* ------------------------------------------------------------------ *)

(* The double-buffered [trace] must produce exactly the snapshots the
   step-by-step loop did (the previous implementation). *)
let naive_trace p ~input ~init ~schedule ~steps =
  let rec loop t config acc =
    if t >= steps then List.rev (config :: acc)
    else
      let next = Engine.step p ~input config ~active:(schedule.Schedule.active t) in
      loop (t + 1) next (config :: acc)
  in
  loop 0 init []

let test_trace_regression () =
  for seed = 1 to 10 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    List.iter
      (fun schedule ->
        let init = random_config p st in
        List.iter
          (fun steps ->
            let expect = naive_trace p ~input ~init ~schedule ~steps in
            let got = Engine.trace p ~input ~init ~schedule ~steps in
            if
              not
                (List.length expect = List.length got
                && List.for_all2 (config_eq p) expect got)
            then
              Alcotest.failf "trace mismatch (seed %d, %s, %d steps)" seed
                schedule.Schedule.name steps)
          [ 0; 1; 7; 23 ])
      (schedules_for seed n)
  done

let test_trace_snapshots_independent () =
  let n = 4 in
  let p = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init p in
  let schedule = Clique_example.oscillation_schedule n in
  let tr = Engine.trace p ~input ~init ~schedule ~steps:6 in
  let keys = List.map (Protocol.config_key p) tr in
  (* Mutating one snapshot must not affect the others (no shared buffers). *)
  List.iter
    (fun c -> c.Protocol.labels.(0) <- not c.Protocol.labels.(0))
    [ List.nth tr 2 ];
  let keys' =
    List.mapi (fun i c -> if i = 2 then List.nth keys 2 else Protocol.config_key p c) tr
  in
  Alcotest.(check (list string)) "other snapshots unaffected" keys keys'

(* ------------------------------------------------------------------ *)
(* Parrun                                                              *)
(* ------------------------------------------------------------------ *)

let test_parrun_identical_across_domains () =
  let f _ i = (i * i) + 7 in
  let expect = Parrun.map ~domains:1 ~ctx:(fun () -> ()) 23 f in
  List.iter
    (fun domains ->
      let got = Parrun.map ~domains ~ctx:(fun () -> ()) 23 f in
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        expect got)
    ([ 2; 3; 4; 8; 40 ]
    @ (match Parrun.env_domains () with Some d -> [ d ] | None -> []))

let test_parrun_ctx_per_chunk () =
  (* Contexts are created lazily, at most one per participating domain;
     every task sees some context, and no context is double-counted
     (total increments = total tasks). *)
  let domains = 4 and n = 12 in
  let results =
    Parrun.map ~domains ~ctx:(fun () -> ref 0) n (fun c i ->
        incr c;
        (i, !c))
  in
  Array.iteri
    (fun i (j, _) -> Alcotest.(check int) "index order" i j)
    results;
  let restarts =
    Array.to_list results
    |> List.filter (fun (_, c) -> c = 1)
    |> List.length
  in
  Alcotest.(check bool) "at least one context" true (restarts >= 1);
  Alcotest.(check bool)
    "at most one context per domain" true (restarts <= domains)

let test_parrun_edge_cases () =
  Alcotest.(check (array int)) "empty" [||]
    (Parrun.map ~domains:4 ~ctx:(fun () -> ()) 0 (fun _ i -> i));
  Alcotest.(check (array int)) "more domains than tasks" [| 0; 1 |]
    (Parrun.map ~domains:8 ~ctx:(fun () -> ()) 2 (fun _ i -> i));
  Alcotest.check_raises "rejects domains < 1"
    (Invalid_argument "Parrun.map: domains must be >= 1") (fun () ->
      ignore (Parrun.map ~domains:0 ~ctx:(fun () -> ()) 3 (fun _ i -> i)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_kernel"
    [
      ( "differential",
        [
          Alcotest.test_case "step" `Quick test_step_differential;
          Alcotest.test_case "run" `Quick test_run_differential;
          Alcotest.test_case "run_until_stable" `Quick
            test_run_until_stable_differential;
          Alcotest.test_case "settle" `Quick test_settle_differential;
          Alcotest.test_case "kernel reuse" `Quick test_kernel_reuse;
          Alcotest.test_case "load/store" `Quick test_load_store_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "matches step-by-step" `Quick
            test_trace_regression;
          Alcotest.test_case "snapshots independent" `Quick
            test_trace_snapshots_independent;
        ] );
      ( "parrun",
        [
          Alcotest.test_case "identical across domains" `Quick
            test_parrun_identical_across_domains;
          Alcotest.test_case "context per chunk" `Quick
            test_parrun_ctx_per_chunk;
          Alcotest.test_case "edge cases" `Quick test_parrun_edge_cases;
        ] );
    ]
