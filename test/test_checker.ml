module Builders = Stateless_graph.Builders
open Stateless_core
module Checker = Stateless_checker.Checker

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let unit_input n = Array.make n ()

let copy_ring_uni n : (unit, bool) Protocol.t =
  {
    Protocol.name = "copy-ring-uni";
    graph = Builders.ring_uni n;
    space = Label.bool;
    react = (fun _ () incoming -> ([| incoming.(0) |], 0));
  }

(* Bidirectional ring where each node copies its clockwise incoming label to
   both directions. Uniform labelings are stable. *)
let copy_ring_bi n : (unit, bool) Protocol.t =
  let g = Builders.ring_bi n in
  let module D = Stateless_graph.Digraph in
  {
    Protocol.name = "copy-ring-bi";
    graph = g;
    space = Label.bool;
    react =
      (fun i () incoming ->
        let from_ccw = ref false in
        Array.iteri
          (fun k e ->
            if D.src g e = (i + n - 1) mod n then from_ccw := incoming.(k))
          (D.in_edges g i);
        (Array.map (fun _ -> !from_ccw) (D.out_edges g i), 0));
  }

let constant_ring n : (unit, bool) Protocol.t =
  {
    Protocol.name = "constant-ring";
    graph = Builders.ring_uni n;
    space = Label.bool;
    react = (fun _ () _ -> ([| false |], 0));
  }

(* Labels rotate forever; outputs constant. Labels never stabilize, outputs
   always do. *)
let rotor_silent n : (unit, bool) Protocol.t =
  {
    Protocol.name = "rotor-silent";
    graph = Builders.ring_uni n;
    space = Label.bool;
    react = (fun _ () incoming -> ([| incoming.(0) |], 1));
  }

(* Labels rotate forever and node outputs follow the rotating label. *)
let rotor_loud n : (unit, bool) Protocol.t =
  {
    Protocol.name = "rotor-loud";
    graph = Builders.ring_uni n;
    space = Label.bool;
    react =
      (fun _ () incoming -> ([| incoming.(0) |], if incoming.(0) then 1 else 0));
  }

let budget = 2_000_000

(* ------------------------------------------------------------------ *)
(* Label checking                                                      *)
(* ------------------------------------------------------------------ *)

let test_constant_always_stabilizing () =
  let p = constant_ring 3 in
  List.iter
    (fun r ->
      match Checker.check_label p ~input:(unit_input 3) ~r ~max_states:budget with
      | Checker.Stabilizing -> ()
      | _ -> Alcotest.fail (Printf.sprintf "r=%d should stabilize" r))
    [ 1; 2; 3; 4 ]

let test_copy_ring_oscillates_synchronously () =
  let p = copy_ring_uni 3 in
  match Checker.check_label p ~input:(unit_input 3) ~r:1 ~max_states:budget with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input:(unit_input 3) w)
  | _ -> Alcotest.fail "copy ring should oscillate under synchronous"

let test_example1_r1_stabilizing () =
  let p = Clique_example.make 3 in
  match
    Checker.check_label p ~input:(Clique_example.input 3) ~r:1
      ~max_states:budget
  with
  | Checker.Stabilizing -> ()
  | Checker.Oscillating _ -> Alcotest.fail "Example 1 is 1-stabilizing"
  | Checker.Too_large _ -> Alcotest.fail "budget too small"

let test_example1_r2_oscillates_n3 () =
  (* n = 3: r = n - 1 = 2 must oscillate (Theorem 3.1). *)
  let p = Clique_example.make 3 in
  match
    Checker.check_label p ~input:(Clique_example.input 3) ~r:2
      ~max_states:budget
  with
  | Checker.Oscillating w ->
      check_bool "witness replays" true
        (Checker.replay p ~input:(Clique_example.input 3) w)
  | Checker.Stabilizing -> Alcotest.fail "should oscillate at r = n-1"
  | Checker.Too_large _ -> Alcotest.fail "budget too small"

let test_example1_tightness_n4 () =
  (* n = 4: stabilizing at r = n - 2 = 2, oscillating at r = n - 1 = 3.
     This is the paper's tightness claim for Theorem 3.1, decided
     exhaustively. *)
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  (match Checker.check_label p ~input ~r:2 ~max_states:budget with
  | Checker.Stabilizing -> ()
  | Checker.Oscillating _ -> Alcotest.fail "n=4 r=2 should stabilize"
  | Checker.Too_large { needed } ->
      Alcotest.fail (Printf.sprintf "budget: need %d states" needed));
  match Checker.check_label p ~input ~r:3 ~max_states:budget with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "n=4 r=3 should oscillate"
  | Checker.Too_large { needed } ->
      Alcotest.fail (Printf.sprintf "budget: need %d states" needed)

let test_max_stabilizing_r_example1 () =
  (* Example 1 at n = 3: the maximal stabilizing fairness is r = 1 = n-2. *)
  let p = Clique_example.make 3 in
  check "max r" 1
    (Option.get
       (Checker.max_stabilizing_r p ~input:(Clique_example.input 3) ~r_limit:4
          ~max_states:budget))

let test_theorem31_on_copy_ring_bi () =
  (* Two stable labelings exist, so Theorem 3.1 predicts failure at
     r = n - 1; the checker confirms on the bidirectional 3-ring. *)
  let p = copy_ring_bi 3 in
  let input = unit_input 3 in
  check_bool "two stable labelings" true
    (Stability.has_multiple_stable_labelings p ~input);
  match Checker.check_label p ~input ~r:2 ~max_states:budget with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "Theorem 3.1 violated?!"
  | Checker.Too_large _ -> Alcotest.fail "budget too small"

let test_too_large_reported () =
  let p = Clique_example.make 4 in
  match
    Checker.check_label p ~input:(Clique_example.input 4) ~r:3 ~max_states:10
  with
  | Checker.Too_large { needed } -> check_bool "needed > 10" true (needed > 10)
  | _ -> Alcotest.fail "should report Too_large"

(* ------------------------------------------------------------------ *)
(* Output checking                                                     *)
(* ------------------------------------------------------------------ *)

let test_output_stabilizing_despite_label_oscillation () =
  let p = rotor_silent 3 in
  let input = unit_input 3 in
  (match Checker.check_label p ~input ~r:1 ~max_states:budget with
  | Checker.Oscillating _ -> ()
  | _ -> Alcotest.fail "labels should oscillate");
  match Checker.check_output p ~input ~r:1 ~max_states:budget with
  | Checker.Stabilizing -> ()
  | Checker.Oscillating _ -> Alcotest.fail "outputs are constant"
  | Checker.Too_large _ -> Alcotest.fail "budget too small"

let test_output_divergence_found () =
  let p = rotor_loud 3 in
  let input = unit_input 3 in
  match Checker.check_output p ~input ~r:1 ~max_states:budget with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "outputs diverge"
  | Checker.Too_large _ -> Alcotest.fail "budget too small"

let test_output_check_constant () =
  let p = constant_ring 3 in
  match Checker.check_output p ~input:(unit_input 3) ~r:2 ~max_states:budget with
  | Checker.Stabilizing -> ()
  | _ -> Alcotest.fail "constant protocol output-stabilizes"

(* ------------------------------------------------------------------ *)
(* Witness structure                                                   *)
(* ------------------------------------------------------------------ *)

let test_witness_schedule_is_r_fair () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  match Checker.check_label p ~input ~r:2 ~max_states:budget with
  | Checker.Oscillating w ->
      (* The cycle repeated forever must be 2-fair. *)
      let sched = Schedule.block_rounds w.Checker.cycle in
      check_bool "cycle is 2-fair" true
        (Schedule.is_r_fair sched ~n:3 ~r:2
           ~horizon:(4 * List.length w.Checker.cycle))
  | _ -> Alcotest.fail "expected oscillation"

let test_witness_nonempty_steps () =
  let p = copy_ring_uni 3 in
  match Checker.check_label p ~input:(unit_input 3) ~r:2 ~max_states:budget with
  | Checker.Oscillating w ->
      check_bool "cycle nonempty" true (w.Checker.cycle <> []);
      List.iter
        (fun step -> check_bool "step nonempty" true (step <> []))
        (w.Checker.prefix @ w.Checker.cycle)
  | _ -> Alcotest.fail "expected oscillation"

(* ------------------------------------------------------------------ *)
(* Property: engine outcome and checker verdict cannot contradict      *)
(* ------------------------------------------------------------------ *)

let prop_checker_consistent_with_engine =
  (* If the checker says r-stabilizing, no random r-fair run may oscillate
     (they must either stabilize or still be in the transient). *)
  QCheck.Test.make ~count:20 ~name:"checker consistent with engine"
    (QCheck.make QCheck.Gen.(pair (int_bound 100) (int_range 3 4)))
    (fun (seed, n) ->
      let p = Clique_example.make n in
      let input = Clique_example.input n in
      let r = n - 2 in
      match Checker.check_label p ~input ~r ~max_states:budget with
      | Checker.Stabilizing -> (
          let schedule = Schedule.random_fair ~seed ~r n in
          let init = Clique_example.oscillation_init p in
          match
            Engine.run_until_stable p ~input ~init ~schedule
              ~max_steps:(200 * n)
          with
          | Engine.Oscillating _ -> false
          | Engine.Stabilized _ | Engine.Exhausted _ -> true)
      | _ -> false)

(* Random protocols on K_3 with 1-bit same-to-all labels: each node maps
   its two incoming bits to one outgoing bit, so a protocol is a 12-bit
   table. Exhaustive checking is cheap (64 labelings x countdowns), making
   these ideal for cross-validation. *)
let random_k3_protocol table : (unit, bool) Stateless_core.Protocol.t =
  let g = Builders.clique 3 in
  let module D = Stateless_graph.Digraph in
  {
    Protocol.name = Printf.sprintf "table-%d" table;
    graph = g;
    space = Label.bool;
    react =
      (fun i () incoming ->
        let idx =
          Array.fold_left
            (fun acc b -> (2 * acc) + if b then 1 else 0)
            0 incoming
        in
        let bit = (table lsr ((4 * i) + idx)) land 1 = 1 in
        (Array.map (fun _ -> bit) (D.out_edges g i), if bit then 1 else 0))
  }

let prop_checker_vs_sampler =
  (* The exhaustive checker and the randomized adversary sampler must never
     contradict: a sampled oscillation on a protocol the checker proved
     stabilizing would be a soundness bug in one of them. *)
  QCheck.Test.make ~count:40 ~name:"checker and sampler never contradict"
    (QCheck.make QCheck.Gen.(int_bound ((1 lsl 12) - 1)))
    (fun table ->
      let p = random_k3_protocol table in
      let input = unit_input 3 in
      let r = 2 in
      match Checker.check_label p ~input ~r ~max_states:budget with
      | Checker.Too_large _ -> false
      | Checker.Oscillating w -> Checker.replay p ~input w
      | Checker.Stabilizing ->
          Stateless_core.Adversary.find_oscillation p ~input ~r ~attempts:20
            ~period:6 ~seed:table ~max_steps:300
          = None)

let prop_theorem31_on_random_protocols =
  (* Theorem 3.1 as a universal law over random protocols: whenever a
     random K_3 protocol has two stable labelings, the checker must find a
     2-fair oscillation. *)
  QCheck.Test.make ~count:60 ~name:"Theorem 3.1 holds on random protocols"
    (QCheck.make QCheck.Gen.(int_bound ((1 lsl 12) - 1)))
    (fun table ->
      let p = random_k3_protocol table in
      let input = unit_input 3 in
      if not (Stability.has_multiple_stable_labelings p ~input) then true
      else
        match Checker.check_label p ~input ~r:2 ~max_states:budget with
        | Checker.Oscillating w -> Checker.replay p ~input w
        | Checker.Stabilizing -> false (* would contradict Theorem 3.1 *)
        | Checker.Too_large _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_checker_consistent_with_engine;
      prop_checker_vs_sampler;
      prop_theorem31_on_random_protocols;
    ]

(* ------------------------------------------------------------------ *)
(* Vec unit tests                                                      *)
(* ------------------------------------------------------------------ *)

module Vec = Stateless_checker.Vec

let test_vec_growth () =
  let v = Vec.create ~capacity:0 ~dummy:(-1) () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  check "length" 1000 (Vec.length v);
  check "first" 0 (Vec.get v 0);
  check "middle" 500 (Vec.get v 500);
  check "last" 999 (Vec.get v 999)

let test_vec_bounds () =
  let v = Vec.create ~capacity:4 ~dummy:0 () in
  Vec.push v 7;
  check "get" 7 (Vec.get v 0);
  Alcotest.check_raises "get past length"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "get negative"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "set past length"
    (Invalid_argument "Vec.set: index out of bounds") (fun () -> Vec.set v 1 3);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Vec.create: negative capacity") (fun () ->
      ignore (Vec.create ~capacity:(-1) ~dummy:0 ()))

let test_vec_to_array_clear () =
  let v = Vec.create ~dummy:0 () in
  for i = 1 to 5 do
    Vec.push v (i * i)
  done;
  Alcotest.(check (array int)) "to_array" [| 1; 4; 9; 16; 25 |] (Vec.to_array v);
  Vec.clear v;
  check "length after clear" 0 (Vec.length v);
  Alcotest.(check (array int)) "empty to_array" [||] (Vec.to_array v);
  Vec.push v 42;
  check "push after clear" 42 (Vec.get v 0)

let test_vec_reserve_unsafe () =
  let v = Vec.create ~capacity:0 ~dummy:0 () in
  Vec.reserve v 3;
  Vec.unsafe_push v 1;
  Vec.unsafe_push v 2;
  Vec.unsafe_push v 3;
  Alcotest.(check (array int)) "reserved pushes" [| 1; 2; 3 |] (Vec.to_array v);
  Vec.set v 1 9;
  check "set" 9 (Vec.get v 1);
  check "unsafe_get" 9 (Vec.unsafe_get v 1);
  Vec.unsafe_set v 2 11;
  check "unsafe_set" 11 (Vec.get v 2)

(* ------------------------------------------------------------------ *)
(* Differential: memoized CSR checker vs naive reference               *)
(* ------------------------------------------------------------------ *)

(* Example 1's reaction on K_2 (too small for [Clique_example.make]). *)
let clique2_example : (unit, bool) Protocol.t =
  let g = Builders.clique 2 in
  let module D = Stateless_graph.Digraph in
  {
    Protocol.name = "example1-clique-2";
    graph = g;
    space = Label.bool;
    react =
      (fun i () incoming ->
        let hot = Array.exists (fun b -> b) incoming in
        (Array.map (fun _ -> hot) (D.out_edges g i), if hot then 1 else 0));
  }

(* Mod-3 counter on a unidirectional ring: labels cycle 0 -> 1 -> 2. *)
let counter_ring n : (unit, int) Protocol.t =
  {
    Protocol.name = "mod3-counter-ring";
    graph = Builders.ring_uni n;
    space = Label.int 3;
    react = (fun _ () incoming -> ([| (incoming.(0) + 1) mod 3 |], incoming.(0)));
  }

type diff_case =
  | Case : string * ('x, 'l) Protocol.t * 'x array -> diff_case

let diff_cases =
  [
    Case ("clique2", clique2_example, unit_input 2);
    Case ("clique3", Clique_example.make 3, Clique_example.input 3);
    Case ("clique4", Clique_example.make 4, Clique_example.input 4);
    Case ("copy-ring-uni-3", copy_ring_uni 3, unit_input 3);
    Case ("copy-ring-uni-4", copy_ring_uni 4, unit_input 4);
    Case ("copy-ring-bi-3", copy_ring_bi 3, unit_input 3);
    Case ("rotor-loud-3", rotor_loud 3, unit_input 3);
    Case ("mod3-counter-3", counter_ring 3, unit_input 3);
  ]

(* A budget small enough that some (protocol, r) pairs overflow: both
   checkers must then report the same [Too_large]. *)
let diff_budget = 150_000

let test_differential_vs_naive () =
  List.iter
    (fun (Case (name, p, input)) ->
      List.iter
        (fun r ->
          let ctx verb = Printf.sprintf "%s r=%d %s" name r verb in
          let fast_l = Checker.check_label p ~input ~r ~max_states:diff_budget
          and naive_l =
            Checker.Naive.check_label p ~input ~r ~max_states:diff_budget
          in
          check_bool (ctx "label verdicts identical") true (fast_l = naive_l);
          (match fast_l with
          | Checker.Oscillating w ->
              check_bool (ctx "label witness replays") true
                (Checker.replay p ~input w)
          | _ -> ());
          let fast_o = Checker.check_output p ~input ~r ~max_states:diff_budget
          and naive_o =
            Checker.Naive.check_output p ~input ~r ~max_states:diff_budget
          in
          check_bool (ctx "output verdicts identical") true (fast_o = naive_o);
          match fast_o with
          | Checker.Oscillating w ->
              check_bool (ctx "output witness replays") true
                (Checker.replay p ~input w)
          | _ -> ())
        [ 1; 2; 3 ])
    diff_cases

let test_differential_hits_too_large () =
  (* Guard that the suite really exercises the Too_large path. *)
  match
    Checker.check_label (Clique_example.make 4)
      ~input:(Clique_example.input 4) ~r:3 ~max_states:diff_budget
  with
  | Checker.Too_large _ -> ()
  | _ -> Alcotest.fail "clique4 r=3 should exceed the differential budget"

let test_domains_deterministic () =
  (* Multicore expansion must be bit-identical to sequential exploration:
     same verdicts, same witnesses, for label and output checks alike.
     [PARRUN_DOMAINS] adds an extra domain count to the matrix in CI. *)
  let domain_matrix =
    2 :: (match Parrun.env_domains () with Some d -> [ d ] | None -> [])
  in
  List.iter
    (fun (Case (name, p, input)) ->
      List.iter
        (fun r ->
          let ctx verb = Printf.sprintf "%s r=%d %s" name r verb in
          let seq = Checker.check_label p ~input ~r ~max_states:diff_budget
          and seq_o =
            Checker.check_output p ~input ~r ~max_states:diff_budget
          in
          List.iter
            (fun domains ->
              let par =
                Checker.check_label ~domains p ~input ~r
                  ~max_states:diff_budget
              in
              check_bool
                (ctx (Printf.sprintf "domains=%d label verdict identical"
                        domains))
                true (seq = par);
              let par_o =
                Checker.check_output ~domains p ~input ~r
                  ~max_states:diff_budget
              in
              check_bool
                (ctx (Printf.sprintf "domains=%d output verdict identical"
                        domains))
                true (seq_o = par_o))
            domain_matrix)
        [ 1; 2 ])
    diff_cases

(* ------------------------------------------------------------------ *)
(* Symmetry reduction                                                  *)
(* ------------------------------------------------------------------ *)

module Symmetry = Stateless_checker.Symmetry
module Stateset = Stateless_checker.Stateset

let sym_cases =
  [
    ("clique3", Clique_example.make 3, Clique_example.input 3, `Clique);
    ("clique4", Clique_example.make 4, Clique_example.input 4, `Clique);
    ("copy-ring-uni-4", copy_ring_uni 4, unit_input 4, `Ring);
    ("copy-ring-uni-5", copy_ring_uni 5, unit_input 5, `Ring);
    (* [copy_ring_bi] copies from a direction-specific neighbor, so it is
       rotation- but not reflection-equivariant: on the bidirectional ring
       the full [Symmetry.ring] dihedral group is too big, and the
       rotations-only subgroup must be given explicitly. *)
    ("copy-ring-bi-3", copy_ring_bi 3, unit_input 3, `Rotations 3);
    ("rotor-loud-3", rotor_loud 3, unit_input 3, `Ring);
    ("constant-ring-3", constant_ring 3, unit_input 3, `Ring);
  ]

let group_of kind g =
  match kind with
  | `Clique -> Symmetry.clique g
  | `Ring -> Symmetry.ring g
  | `Rotations n ->
      let rot k = Array.init n (fun i -> (i + k) mod n) in
      Symmetry.of_node_perms g (List.init (n - 1) (fun k -> rot (k + 1)))

let test_symmetry_group_orders () =
  check "S_4 on clique4" 24
    (Symmetry.order (Symmetry.clique (Clique_example.make 4).Protocol.graph));
  check "rotations on uni 5-ring" 5
    (Symmetry.order (Symmetry.ring (Builders.ring_uni 5)));
  check "dihedral on bi 4-ring" 8
    (Symmetry.order (Symmetry.ring (Builders.ring_bi 4)))

let test_symmetry_of_node_perms () =
  let g = Builders.ring_uni 4 in
  let rot k = Array.init 4 (fun i -> (i + k) mod 4) in
  check "cyclic group from explicit rotations" 4
    (Symmetry.order (Symmetry.of_node_perms g [ rot 1; rot 2; rot 3 ]));
  (* A single non-trivial rotation is not closed under composition. *)
  (try
     ignore (Symmetry.of_node_perms g [ rot 1 ]);
     Alcotest.fail "non-closed set accepted"
   with Invalid_argument _ -> ());
  (* A reflection is not an automorphism of the directed ring. *)
  try
    ignore
      (Symmetry.of_node_perms g [ Array.init 4 (fun i -> (4 - i) mod 4) ]);
    Alcotest.fail "non-automorphism accepted"
  with Invalid_argument _ -> ()

(* The quotient explorer must agree with the unreduced one on every
   fixture: same verdict, replayable lifted witnesses, and the orbit sizes
   of the explored representatives must sum to exactly the unreduced
   reachable count. *)
let test_symmetry_differential () =
  List.iter
    (fun (name, p, input, kind) ->
      let sym = group_of kind p.Protocol.graph in
      check_bool (name ^ " equivariant") true (Symmetry.verify p ~input sym);
      List.iter
        (fun r ->
          let ctx verb = Printf.sprintf "%s r=%d %s" name r verb in
          let plain = Checker.check_label p ~input ~r ~max_states:budget in
          let pstats = Option.get (Checker.last_stats ()) in
          check (ctx "unreduced full_states = states") pstats.Checker.states
            pstats.Checker.full_states;
          let red =
            Checker.check_label ~symmetry:sym p ~input ~r ~max_states:budget
          in
          let rstats = Option.get (Checker.last_stats ()) in
          (match (plain, red) with
          | Checker.Stabilizing, Checker.Stabilizing -> ()
          | Checker.Oscillating _, Checker.Oscillating w ->
              check_bool (ctx "lifted witness replays") true
                (Checker.replay p ~input w)
          | _ ->
              Alcotest.fail
                (ctx "quotient verdict disagrees with unreduced"));
          check (ctx "orbits cover the unreduced graph")
            pstats.Checker.states rstats.Checker.full_states;
          check_bool (ctx "quotient is no larger") true
            (rstats.Checker.states <= pstats.Checker.states))
        [ 1; 2; 3 ])
    sym_cases

let test_symmetry_max_r () =
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  let sym = Symmetry.clique p.Protocol.graph in
  check "max stabilizing r via quotient" 2
    (Option.get
       (Checker.max_stabilizing_r ~symmetry:sym p ~input ~r_limit:3
          ~max_states:budget))

let test_symmetry_domains_deterministic () =
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  let sym = Symmetry.clique p.Protocol.graph in
  let seq = Checker.check_label ~symmetry:sym p ~input ~r:2 ~max_states:budget in
  List.iter
    (fun domains ->
      let par =
        Checker.check_label ~domains ~symmetry:sym p ~input ~r:2
          ~max_states:budget
      in
      check_bool
        (Printf.sprintf "sym domains=%d bit-identical" domains)
        true (seq = par))
    [ 2; 3; 8 ]

let test_symmetry_rejects_asymmetric () =
  (* Node 0 behaves differently, so the rotation group does not commute
     with the dynamics. *)
  let p : (unit, bool) Protocol.t =
    {
      Protocol.name = "lopsided-ring";
      graph = Builders.ring_uni 4;
      space = Label.bool;
      react = (fun i () incoming -> ([| (if i = 0 then true else incoming.(0)) |], 0));
    }
  in
  let sym = Symmetry.ring p.Protocol.graph in
  check_bool "verify refutes" false (Symmetry.verify p ~input:(unit_input 4) sym);
  try
    ignore
      (Checker.check_label ~symmetry:sym p ~input:(unit_input 4) ~r:1
         ~max_states:budget);
    Alcotest.fail "asymmetric protocol accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Stateset                                                            *)
(* ------------------------------------------------------------------ *)

let test_stateset_direct () =
  let s = Stateset.create () in
  Stateset.reset s ~universe:1000;
  check_bool "direct mode" false (Stateset.hashed s);
  check "absent" (-1) (Stateset.find s 123);
  Stateset.add s ~key:123 ~id:0;
  Stateset.add s ~key:999 ~id:1;
  check "found" 0 (Stateset.find s 123);
  check "found hi" 1 (Stateset.find s 999);
  Stateset.reset s ~universe:1000;
  check "reset forgets" (-1) (Stateset.find s 123);
  check "reset forgets hi" (-1) (Stateset.find s 999)

let test_stateset_hashed () =
  let s = Stateset.create () in
  let universe = Stateset.direct_cap + 1 in
  Stateset.reset s ~universe;
  check_bool "hashed mode" true (Stateset.hashed s);
  (* Enough keys to force several growth cycles. *)
  let count = 200_000 in
  for i = 0 to count - 1 do
    Stateset.add s ~key:((i * 97) + 5) ~id:i
  done;
  let ok = ref true in
  for i = 0 to count - 1 do
    if Stateset.find s ((i * 97) + 5) <> i then ok := false
  done;
  check_bool "all found after growth" true !ok;
  check "absent key" (-1) (Stateset.find s 4);
  Stateset.reset s ~universe;
  check "reset forgets" (-1) (Stateset.find s 5)

let test_stateset_mode_switch () =
  (* Direct entries must not leak through an interleaved hashed run. *)
  let s = Stateset.create () in
  Stateset.reset s ~universe:64;
  Stateset.add s ~key:7 ~id:0;
  Stateset.reset s ~universe:(Stateset.direct_cap + 1);
  Stateset.add s ~key:7 ~id:42;
  check "hashed sees its own" 42 (Stateset.find s 7);
  Stateset.reset s ~universe:64;
  check "direct entry gone" (-1) (Stateset.find s 7)

let test_stateset_reset_shrinks_wasteful_retention () =
  (* A big hashed run followed by small reuses must not keep paying the
     big run's capacity: reset shrinks the table once retained capacity
     exceeds 8x the last run's count, and keeps it otherwise. *)
  let s = Stateset.create () in
  let universe = Stateset.direct_cap + 1 in
  Stateset.reset s ~universe;
  let cap0 = Stateset.capacity s in
  (* Force one doubling: growth keeps load <= 1/2. *)
  let big = cap0 in
  for i = 0 to big - 1 do
    Stateset.add s ~key:((i * 97) + 5) ~id:i
  done;
  let grown = Stateset.capacity s in
  check_bool "grew past the initial capacity" true (grown > cap0);
  (* Reset after a comparably big run: capacity is retained (the common
     checker pattern — same-sized runs back to back, no realloc). *)
  Stateset.reset s ~universe;
  check "retained after big run" grown (Stateset.capacity s);
  (* A small run, then reset: now the retained table is > 8x the run's
     count, so it shrinks back to the initial capacity. *)
  for i = 0 to 9 do
    Stateset.add s ~key:(i * 1009) ~id:i
  done;
  Stateset.reset s ~universe;
  check "shrunk after small run" cap0 (Stateset.capacity s);
  (* Still a working, empty table after the shrink. *)
  check "shrunk table forgets" (-1) (Stateset.find s 5);
  Stateset.add s ~key:12345 ~id:7;
  check "add after shrink" 7 (Stateset.find s 12345)

let () =
  Alcotest.run "stateless_checker"
    [
      ( "label",
        [
          Alcotest.test_case "constant stabilizes all r" `Quick
            test_constant_always_stabilizing;
          Alcotest.test_case "copy ring oscillates r=1" `Quick
            test_copy_ring_oscillates_synchronously;
          Alcotest.test_case "example1 r=1 stabilizing" `Quick
            test_example1_r1_stabilizing;
          Alcotest.test_case "example1 r=2 oscillates (n=3)" `Quick
            test_example1_r2_oscillates_n3;
          Alcotest.test_case "example1 tightness (n=4)" `Slow
            test_example1_tightness_n4;
          Alcotest.test_case "max stabilizing r" `Quick
            test_max_stabilizing_r_example1;
          Alcotest.test_case "theorem 3.1 on copy ring" `Quick
            test_theorem31_on_copy_ring_bi;
          Alcotest.test_case "too large reported" `Quick test_too_large_reported;
        ] );
      ( "output",
        [
          Alcotest.test_case "output-stable despite label oscillation" `Quick
            test_output_stabilizing_despite_label_oscillation;
          Alcotest.test_case "output divergence found" `Quick
            test_output_divergence_found;
          Alcotest.test_case "constant output check" `Quick
            test_output_check_constant;
        ] );
      ( "witness",
        [
          Alcotest.test_case "cycle schedule r-fair" `Quick
            test_witness_schedule_is_r_fair;
          Alcotest.test_case "steps nonempty" `Quick test_witness_nonempty_steps;
        ] );
      ( "vec",
        [
          Alcotest.test_case "growth from empty" `Quick test_vec_growth;
          Alcotest.test_case "bounds checking" `Quick test_vec_bounds;
          Alcotest.test_case "to_array and clear" `Quick
            test_vec_to_array_clear;
          Alcotest.test_case "reserve and unsafe accessors" `Quick
            test_vec_reserve_unsafe;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fast vs naive, all cases, r=1..3" `Quick
            test_differential_vs_naive;
          Alcotest.test_case "budget overflow exercised" `Quick
            test_differential_hits_too_large;
          Alcotest.test_case "domains=2 bit-identical" `Quick
            test_domains_deterministic;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "group orders" `Quick test_symmetry_group_orders;
          Alcotest.test_case "explicit perms validated" `Quick
            test_symmetry_of_node_perms;
          Alcotest.test_case "quotient vs unreduced, all cases, r=1..3" `Quick
            test_symmetry_differential;
          Alcotest.test_case "max stabilizing r via quotient" `Quick
            test_symmetry_max_r;
          Alcotest.test_case "quotient domains bit-identical" `Quick
            test_symmetry_domains_deterministic;
          Alcotest.test_case "asymmetric protocol rejected" `Quick
            test_symmetry_rejects_asymmetric;
        ] );
      ( "stateset",
        [
          Alcotest.test_case "direct mode" `Quick test_stateset_direct;
          Alcotest.test_case "hashed mode growth" `Quick test_stateset_hashed;
          Alcotest.test_case "mode switch isolation" `Quick
            test_stateset_mode_switch;
          Alcotest.test_case "reset shrinks wasteful retention" `Quick
            test_stateset_reset_shrinks_wasteful_retention;
        ] );
      ("properties", qcheck_tests);
    ]
