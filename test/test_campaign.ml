(* The crash-tolerant campaign orchestrator: the Value wire codec's exact
   round-trip, cooperative deadlines, reseeded retries, graceful
   degradation to error records, journal replay without re-execution,
   torn-tail discard, fingerprint invalidation, and the kill/resume
   byte-identity contract on real lab matrices. *)

module Campaign = Stateless_campaign.Campaign
module Value = Stateless_campaign.Value
module Faultlab = Stateless_faultlab.Faultlab
module Simlab = Stateless_simlab.Simlab
module Eventsim = Stateless_core.Eventsim

let int_codec = { Campaign.encode = (fun n -> Value.Int n); decode = Value.to_int }

let tmp_journal () = Filename.temp_file "campaign_test" ".jsonl"

let cell key run : int Campaign.cell = { Campaign.key; config = key; run }

let const_cell key v = cell key (fun ~deadline:_ ~attempt:_ -> v)

(* ------------------------------------------------------------------ *)
(* Value codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_value_roundtrip () =
  let vals =
    [
      Value.Null; Value.Bool true; Value.Bool false; Value.Int 0;
      Value.Int (-42); Value.Int max_int; Value.Int min_int; Value.Float 0.1;
      Value.Float (-1e-300); Value.Float 3.0;
      Value.Float 1.7976931348623157e308; Value.Float (0x1p-1074);
      Value.String ""; Value.String "plain";
      Value.String "quotes\" slash\\ newline\n tab\t \xc3\xa9 \x00";
      Value.List []; Value.List [ Value.Int 1; Value.Null; Value.Float 2.5 ];
      Value.Obj [];
      Value.Obj
        [
          ("k", Value.Int 1); ("s", Value.String "v");
          ("l", Value.List [ Value.Bool false; Value.Obj [] ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Value.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip of %s" s)
        true
        (Value.parse s = Some v))
    vals

let test_value_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "parse %S fails" s)
        true
        (Value.parse s = None))
    [ ""; "1 x"; "{\"a\":[1,"; "[1,2"; "\"unterminated"; "nul"; "{]" ];
  (* Non-finite floats must be rejected at write time, not corrupt the
     journal. *)
  List.iter
    (fun f ->
      try
        ignore (Value.to_string (Value.Float f));
        Alcotest.fail "non-finite float accepted"
      with Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_value_string_edge_cases () =
  (* Every byte value, in one string: OCaml escaping must round-trip
     raw non-ASCII bytes, control characters and NUL byte-exactly. *)
  let all_bytes = String.init 256 Char.chr in
  Alcotest.(check bool)
    "all 256 bytes round-trip" true
    (Value.parse (Value.to_string (Value.String all_bytes))
    = Some (Value.String all_bytes));
  (* Multi-byte UTF-8 sequences are opaque bytes to the codec. *)
  let utf8 = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x90\xab" in
  Alcotest.(check bool)
    "utf-8 round-trips" true
    (Value.parse (Value.to_string (Value.String utf8))
    = Some (Value.String utf8));
  (* Escape-looking content inside keys and values. *)
  let tricky = Value.Obj [ ("a\"b\\c", Value.String "{\"x\":[1,\\n]}") ] in
  Alcotest.(check bool)
    "escape-heavy object round-trips" true
    (Value.parse (Value.to_string tricky) = Some tricky)

let test_value_deep_nesting () =
  let deep = ref (Value.Int 7) in
  for _ = 1 to 1000 do
    deep := Value.List [ !deep ]
  done;
  let s = Value.to_string !deep in
  Alcotest.(check bool)
    "1000-deep list round-trips" true
    (Value.parse s = Some !deep);
  let wide =
    Value.Obj
      (List.init 500 (fun i ->
           (Printf.sprintf "k%d" i, Value.List [ Value.Int i; Value.Null ])))
  in
  Alcotest.(check bool)
    "wide object round-trips" true
    (Value.parse (Value.to_string wide) = Some wide)

let test_value_oversized_numbers_rejected () =
  (* Ints beyond the native range cannot round-trip; the parser must
     reject them explicitly rather than wrap or truncate. *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "parse %S rejected" s)
        true
        (Value.parse s = None))
    [
      "9223372036854775808" (* max_int + 1 *);
      "-9223372036854775809" (* min_int - 1 *);
      "123456789012345678901234567890";
      (* Floats that overflow to infinity are unserializable, so the
         parser rejects them too. *)
      "1e999";
      "-1e999";
    ];
  (* The extreme representable values still round-trip. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "extreme value round-trips" true
        (Value.parse (Value.to_string v) = Some v))
    [ Value.Int max_int; Value.Int min_int; Value.Float 1.7976931348623157e308 ]

(* ------------------------------------------------------------------ *)
(* Robustness policy                                                   *)
(* ------------------------------------------------------------------ *)

let test_deadline_timeout () =
  (* cell_deadline = tiny: the polling cell reads an expired deadline and
     raises; the non-polling cell completes. The campaign completes with
     a timeout record, not an exception. *)
  let cells =
    [|
      cell "t/slow" (fun ~deadline ~attempt:_ ->
          if deadline () then raise Campaign.Deadline_exceeded;
          42);
      const_cell "t/fast" 7;
    |]
  in
  let policy =
    { Campaign.default_policy with Campaign.cell_deadline = Some 1e-9 }
  in
  let o = Campaign.run ~policy ~codec:int_codec cells in
  Alcotest.(check int) "one ok" 1 o.Campaign.counts.Campaign.ok;
  Alcotest.(check int) "one timeout" 1 o.Campaign.counts.Campaign.timeout;
  Alcotest.(check int) "no error" 0 o.Campaign.counts.Campaign.error;
  Alcotest.(check bool) "timeout has no result" true
    (o.Campaign.records.(0).Campaign.result = None);
  Alcotest.(check bool) "timeout status" true
    (o.Campaign.records.(0).Campaign.status = Campaign.Timeout);
  Alcotest.(check bool) "fast cell kept its result" true
    (o.Campaign.records.(1).Campaign.result = Some 7)

let test_retry_succeeds () =
  let attempts_seen = ref [] in
  let cells =
    [|
      cell "r/flaky" (fun ~deadline:_ ~attempt ->
          attempts_seen := attempt :: !attempts_seen;
          if attempt = 0 then failwith "transient" else 100 + attempt);
    |]
  in
  let policy = { Campaign.default_policy with Campaign.retries = 2 } in
  let o = Campaign.run ~policy ~codec:int_codec cells in
  Alcotest.(check (list int)) "attempts 0 then 1" [ 0; 1 ]
    (List.rev !attempts_seen);
  Alcotest.(check bool) "second attempt's result" true
    (o.Campaign.records.(0).Campaign.result = Some 101);
  Alcotest.(check int) "two executions recorded" 2
    o.Campaign.records.(0).Campaign.attempts;
  Alcotest.(check int) "counted ok" 1 o.Campaign.counts.Campaign.ok

let test_error_degrades () =
  (* A cell that fails every attempt is retired as a structured error;
     the other cells and the campaign itself still complete. *)
  let cells =
    [|
      const_cell "e/a" 1;
      cell "e/poison" (fun ~deadline:_ ~attempt:_ -> failwith "poisoned");
      const_cell "e/b" 2;
    |]
  in
  let policy = { Campaign.default_policy with Campaign.retries = 1 } in
  let o = Campaign.run ~policy ~codec:int_codec cells in
  Alcotest.(check int) "two ok" 2 o.Campaign.counts.Campaign.ok;
  Alcotest.(check int) "one error" 1 o.Campaign.counts.Campaign.error;
  (match o.Campaign.records.(1).Campaign.status with
  | Campaign.Error msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error message kept" true (contains msg "poisoned")
  | _ -> Alcotest.fail "poisoned cell not an error record");
  Alcotest.(check int) "both retries burned" 2
    o.Campaign.records.(1).Campaign.attempts;
  Alcotest.(check bool) "records stay in matrix order" true
    (o.Campaign.records.(0).Campaign.result = Some 1
    && o.Campaign.records.(2).Campaign.result = Some 2)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let counting_cells execs n =
  Array.init n (fun i ->
      {
        Campaign.key = Printf.sprintf "j/c%d" i;
        config = Printf.sprintf "cfg%d" i;
        run =
          (fun ~deadline:_ ~attempt:_ ->
            incr execs;
            i * i);
      })

let test_resume_replays_without_reexecution () =
  let j = tmp_journal () in
  let execs = ref 0 in
  let policy = { Campaign.default_policy with Campaign.journal = Some j } in
  let o1 = Campaign.run ~policy ~codec:int_codec (counting_cells execs 5) in
  Alcotest.(check int) "first pass executes all" 5 !execs;
  let o2 =
    Campaign.run
      ~policy:{ policy with Campaign.resume = true }
      ~codec:int_codec (counting_cells execs 5)
  in
  Alcotest.(check int) "resume executes nothing" 5 !execs;
  Alcotest.(check int) "all replayed" 5 o2.Campaign.counts.Campaign.replayed;
  Alcotest.(check int) "all ok" 5 o2.Campaign.counts.Campaign.ok;
  Alcotest.(check bool) "merged results identical" true
    (Array.map (fun r -> r.Campaign.result) o1.Campaign.records
    = Array.map (fun r -> r.Campaign.result) o2.Campaign.records);
  Alcotest.(check bool) "replayed flag set" true
    (Array.for_all
       (fun (r : int Campaign.record) -> r.Campaign.replayed)
       o2.Campaign.records);
  Sys.remove j

let test_torn_tail_discarded () =
  let j = tmp_journal () in
  let execs = ref 0 in
  let policy = { Campaign.default_policy with Campaign.journal = Some j } in
  let o1 = Campaign.run ~policy ~codec:int_codec (counting_cells execs 4) in
  (* Tear the last record: drop its newline and a slice of its bytes, as
     a crash mid-append would. *)
  let ic = open_in_bin j in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin j in
  output_string oc (String.sub s 0 (String.length s - 10));
  close_out oc;
  let o2 =
    Campaign.run
      ~policy:{ policy with Campaign.resume = true }
      ~codec:int_codec (counting_cells execs 4)
  in
  Alcotest.(check int) "exactly the torn cell re-ran" 5 !execs;
  Alcotest.(check int) "three replayed" 3 o2.Campaign.counts.Campaign.replayed;
  Alcotest.(check int) "all ok" 4 o2.Campaign.counts.Campaign.ok;
  Alcotest.(check bool) "merge identical to uninterrupted run" true
    (Array.map (fun r -> r.Campaign.result) o1.Campaign.records
    = Array.map (fun r -> r.Campaign.result) o2.Campaign.records);
  Sys.remove j

let test_fingerprint_mismatch_reruns () =
  let j = tmp_journal () in
  let execs = ref 0 in
  let mk config =
    [|
      {
        Campaign.key = "f/a";
        config;
        run =
          (fun ~deadline:_ ~attempt:_ ->
            incr execs;
            9);
      };
    |]
  in
  let policy = { Campaign.default_policy with Campaign.journal = Some j } in
  ignore (Campaign.run ~policy ~codec:int_codec (mk "v1"));
  let o =
    Campaign.run
      ~policy:{ policy with Campaign.resume = true }
      ~codec:int_codec (mk "v2")
  in
  Alcotest.(check int) "config change forces re-execution" 2 !execs;
  Alcotest.(check int) "nothing replayed" 0 o.Campaign.counts.Campaign.replayed;
  (* Same config again: the re-run's appended record wins (last per key). *)
  let o2 =
    Campaign.run
      ~policy:{ policy with Campaign.resume = true }
      ~codec:int_codec (mk "v2")
  in
  Alcotest.(check int) "matching record replays" 2 !execs;
  Alcotest.(check int) "replayed now" 1 o2.Campaign.counts.Campaign.replayed;
  Sys.remove j

let test_duplicate_keys_rejected () =
  try
    ignore
      (Campaign.run ~codec:int_codec [| const_cell "d/x" 1; const_cell "d/x" 2 |]);
    Alcotest.fail "duplicate keys accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Lab matrices: kill/resume byte-identity                             *)
(* ------------------------------------------------------------------ *)

let test_faultlab_kill_resume_identity () =
  let sc = Faultlab.example1 ~n:3 () in
  let fractions = [ 0.25; 0.5; 1.0 ] and seeds = 5 and max_steps = 2_000 in
  let clean = Faultlab.run ~fractions ~seeds ~max_steps sc in
  let j = tmp_journal () in
  (* Simulate a campaign killed after two cells: journal only a prefix of
     the matrix, then resume the full matrix against that journal. *)
  let cells = Faultlab.cells ~fractions ~seeds ~max_steps sc in
  let partial = Array.sub cells 0 2 in
  ignore
    (Campaign.run
       ~policy:{ Campaign.default_policy with Campaign.journal = Some j }
       ~codec:Faultlab.codec partial);
  let resumed, counts =
    Faultlab.run_matrix ~fractions ~seeds ~max_steps
      ~policy:
        {
          Campaign.default_policy with
          Campaign.journal = Some j;
          resume = true;
        }
      sc
  in
  Alcotest.(check int) "prefix replayed" 2 counts.Campaign.replayed;
  Alcotest.(check int) "all cells ok" 3 counts.Campaign.ok;
  Alcotest.(check bool) "killed-and-resumed campaign identical" true
    (resumed = clean);
  Sys.remove j

let test_faultlab_degraded_row () =
  (* A poisoned journal is not needed to exercise degradation: a zero
     deadline times every fraction row out, yet the campaign completes
     with deterministic all-degraded rows. *)
  let sc = Faultlab.example1 ~n:3 () in
  let fractions = [ 0.5; 1.0 ] in
  let degraded, counts =
    Faultlab.run_matrix ~fractions ~seeds:4 ~max_steps:2_000
      ~policy:
        { Campaign.default_policy with Campaign.cell_deadline = Some 0.0 }
      sc
  in
  Alcotest.(check int) "every row timed out" 2 counts.Campaign.timeout;
  Alcotest.(check int) "no ok rows" 0 counts.Campaign.ok;
  List.iter
    (fun (s : Faultlab.fraction_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "fraction %g degrades to zero recoveries"
           s.Faultlab.fraction)
        0 s.Faultlab.recovered)
    degraded.Faultlab.stats

let sim_instance () =
  Simlab.build
    (Simlab.Contagion { threshold = 0.5; seed_frac = 0.1 })
    Simlab.Ring ~graph_seed:7 ~nodes:64 ~rate:1.0 ~latency:(Eventsim.Exp 0.5)
    ~faults:{ Eventsim.no_faults with Eventsim.loss = 0.1; dup = 0.05 }

let test_sim_matrix_identity () =
  (* The orchestrated path runs through run_poll's horizon slices; it
     must be bit-identical to the unsliced campaign. *)
  let inst = sim_instance () in
  let runs = 4 and horizon = 8.0 in
  let base = Simlab.campaign inst ~seed0:1 ~runs ~horizon in
  let results, counts = Simlab.run_matrix inst ~seed0:1 ~runs ~horizon in
  Alcotest.(check int) "all ok" runs counts.Campaign.ok;
  Alcotest.(check bool) "sliced = unsliced, per seed" true
    (results = Array.map Option.some base)

let test_sim_matrix_kill_resume () =
  let inst = sim_instance () in
  let runs = 4 and horizon = 6.0 in
  let clean, _ = Simlab.run_matrix inst ~seed0:1 ~runs ~horizon in
  let j = tmp_journal () in
  let cells = Simlab.cells inst ~seed0:1 ~runs ~horizon in
  ignore
    (Campaign.run
       ~policy:{ Campaign.default_policy with Campaign.journal = Some j }
       ~codec:Simlab.codec
       (Array.sub cells 0 2));
  let resumed, counts =
    Simlab.run_matrix
      ~policy:
        {
          Campaign.default_policy with
          Campaign.journal = Some j;
          resume = true;
        }
      inst ~seed0:1 ~runs ~horizon
  in
  Alcotest.(check int) "two trajectories replayed" 2 counts.Campaign.replayed;
  Alcotest.(check bool) "kill/resume identical" true (resumed = clean);
  Sys.remove j

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_campaign"
    [
      ( "value",
        [
          Alcotest.test_case "round-trip" `Quick test_value_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_value_rejects_garbage;
          Alcotest.test_case "string edge cases" `Quick
            test_value_string_edge_cases;
          Alcotest.test_case "deep nesting" `Quick test_value_deep_nesting;
          Alcotest.test_case "oversized numbers rejected" `Quick
            test_value_oversized_numbers_rejected;
        ] );
      ( "policy",
        [
          Alcotest.test_case "deadline -> timeout" `Quick
            test_deadline_timeout;
          Alcotest.test_case "retry succeeds" `Quick test_retry_succeeds;
          Alcotest.test_case "error degrades gracefully" `Quick
            test_error_degrades;
          Alcotest.test_case "duplicate keys rejected" `Quick
            test_duplicate_keys_rejected;
        ] );
      ( "journal",
        [
          Alcotest.test_case "resume replays without re-execution" `Quick
            test_resume_replays_without_reexecution;
          Alcotest.test_case "torn tail discarded and re-run" `Quick
            test_torn_tail_discarded;
          Alcotest.test_case "fingerprint mismatch re-runs" `Quick
            test_fingerprint_mismatch_reruns;
        ] );
      ( "labs",
        [
          Alcotest.test_case "faultlab kill/resume identity" `Quick
            test_faultlab_kill_resume_identity;
          Alcotest.test_case "faultlab degraded rows" `Quick
            test_faultlab_degraded_row;
          Alcotest.test_case "sim sliced = unsliced" `Quick
            test_sim_matrix_identity;
          Alcotest.test_case "sim kill/resume identity" `Quick
            test_sim_matrix_kill_resume;
        ] );
    ]
