module Two_counter = Stateless_counter.Two_counter
module D_counter = Stateless_counter.D_counter
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let synchronous_run p ~input ~init ~steps =
  Engine.run p ~input ~init ~schedule:(Schedule.synchronous (Protocol.num_nodes p)) ~steps

let step_all p ~input config =
  Engine.step p ~input config
    ~active:(List.init (Protocol.num_nodes p) Fun.id)

(* ------------------------------------------------------------------ *)
(* Two-counter (Claim 5.5)                                             *)
(* ------------------------------------------------------------------ *)

let test_rejects_even_or_small () =
  Alcotest.check_raises "even"
    (Invalid_argument "Two_counter.make: need odd n >= 3") (fun () ->
      ignore (Two_counter.make 4));
  Alcotest.check_raises "small"
    (Invalid_argument "Two_counter.make: need odd n >= 3") (fun () ->
      ignore (Two_counter.make 1))

let phases_alternate t init =
  let p = t.Two_counter.protocol in
  let input = Two_counter.input t in
  let config =
    ref (synchronous_run p ~input ~init ~steps:(Two_counter.burn_in t))
  in
  let ok = ref true in
  let prev = ref None in
  for _ = 1 to 8 do
    if not (Two_counter.synchronized t !config) then ok := false;
    let ph = (Two_counter.phases t !config).(0) in
    (match !prev with
    | Some q -> if Bool.equal q ph then ok := false
    | None -> ());
    prev := Some ph;
    config := step_all p ~input !config
  done;
  !ok

let test_two_counter_exhaustive_n3 () =
  (* All 4^6 initial labelings of the 3-ring synchronize and alternate. *)
  let t = Two_counter.make 3 in
  let p = t.Two_counter.protocol in
  let m = Protocol.num_edges p in
  for code = 0 to (1 lsl (2 * m)) - 1 do
    let labels =
      Array.init m (fun e ->
          let v = (code lsr (2 * e)) land 3 in
          (v land 1 = 1, v land 2 = 2))
    in
    if not (phases_alternate t (Protocol.config_of_labels p labels)) then
      Alcotest.fail (Printf.sprintf "labeling %d fails" code)
  done

let test_two_counter_random_inits () =
  List.iter
    (fun n ->
      let t = Two_counter.make n in
      let p = t.Two_counter.protocol in
      let m = Protocol.num_edges p in
      let state = Random.State.make [| n |] in
      for _ = 1 to 50 do
        let labels =
          Array.init m (fun _ ->
              (Random.State.bool state, Random.State.bool state))
        in
        check_bool
          (Printf.sprintf "n=%d synchronizes" n)
          true
          (phases_alternate t (Protocol.config_of_labels p labels))
      done)
    [ 5; 7; 9 ]

let test_two_counter_label_bits () =
  let t = Two_counter.make 5 in
  check "2 bits" 2 (Label.bit_length t.Two_counter.protocol.Protocol.space)

(* ------------------------------------------------------------------ *)
(* D-counter (Claim 5.6)                                               *)
(* ------------------------------------------------------------------ *)

let counter_locks t init =
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let d = t.D_counter.d in
  let config =
    ref (synchronous_run p ~input ~init ~steps:(D_counter.burn_in t))
  in
  let ok = ref true in
  let prev = ref (-1) in
  for _ = 1 to 2 * d do
    if not (D_counter.agreed t !config) then ok := false;
    let v = (D_counter.values t !config).(0) in
    if !prev >= 0 && v <> (!prev + 1) mod d then ok := false;
    prev := v;
    config := step_all p ~input !config
  done;
  !ok

let test_d_counter_from_zero () =
  List.iter
    (fun (n, d) ->
      let t = D_counter.make ~n ~d () in
      let p = D_counter.protocol t in
      let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
      check_bool (Printf.sprintf "n=%d d=%d" n d) true (counter_locks t init))
    [ (3, 2); (3, 7); (5, 4); (7, 10); (9, 3) ]

let test_d_counter_random_inits () =
  List.iter
    (fun (n, d) ->
      let t = D_counter.make ~n ~d () in
      let p = D_counter.protocol t in
      let card = p.Protocol.space.Label.card in
      let state = Random.State.make [| (n * 100) + d |] in
      for _ = 1 to 40 do
        let labels =
          Array.init (Protocol.num_edges p) (fun _ ->
              p.Protocol.space.Label.decode (Random.State.int state card))
        in
        check_bool
          (Printf.sprintf "n=%d d=%d random init" n d)
          true
          (counter_locks t (Protocol.config_of_labels p labels))
      done)
    [ (3, 4); (5, 8); (7, 5); (9, 12) ]

let test_d_counter_label_bits () =
  (* L = 2 + 3 ceil(log2 d), the paper's 2 + 3 log D. *)
  let t = D_counter.make ~n:5 ~d:8 () in
  check "label bits" (2 + (3 * 3)) (D_counter.label_bits t);
  let t2 = D_counter.make ~n:5 ~d:9 () in
  check "label bits rounding" (2 + (3 * 4)) (D_counter.label_bits t2)

let test_d_counter_outputs_are_counter () =
  let t = D_counter.make ~n:5 ~d:6 () in
  let p = D_counter.protocol t in
  let input = D_counter.input t in
  let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  let config =
    ref (synchronous_run p ~input ~init ~steps:(D_counter.burn_in t))
  in
  (* One more step so outputs reflect the settled counter fields. *)
  config := step_all p ~input !config;
  let values = D_counter.values t !config in
  Array.iteri
    (fun j y -> check (Printf.sprintf "output %d" j) values.(j) y)
    !config.Protocol.outputs

let test_d_counter_burn_in_linear () =
  let t = D_counter.make ~n:9 ~d:50 () in
  check_bool "burn-in is O(n), not O(d)" true (D_counter.burn_in t < 50)

let test_d_counter_validation () =
  Alcotest.check_raises "even ring"
    (D_counter.Bad_geometry { n = 4; d = 4 }) (fun () ->
      ignore (D_counter.make ~n:4 ~d:4 ()));
  Alcotest.check_raises "d too small"
    (D_counter.Bad_geometry { n = 3; d = 1 }) (fun () ->
      ignore (D_counter.make ~n:3 ~d:1 ()))

let prop_d_counter_locks =
  QCheck.Test.make ~count:20 ~name:"D-counter locks from random labelings"
    (QCheck.make
       QCheck.Gen.(triple (int_range 0 2) (int_range 1 3) (int_bound 10_000)))
    (fun (ni, di, seed) ->
      let n = [| 3; 5; 7 |].(ni) in
      let d = 2 + (3 * di) in
      let t = D_counter.make ~n ~d () in
      let p = D_counter.protocol t in
      let card = p.Protocol.space.Label.card in
      let state = Random.State.make [| seed |] in
      let labels =
        Array.init (Protocol.num_edges p) (fun _ ->
            p.Protocol.space.Label.decode (Random.State.int state card))
      in
      counter_locks t (Protocol.config_of_labels p labels))

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_d_counter_locks ]

let () =
  Alcotest.run "stateless_counter"
    [
      ( "two-counter",
        [
          Alcotest.test_case "rejects bad n" `Quick test_rejects_even_or_small;
          Alcotest.test_case "exhaustive n=3" `Slow
            test_two_counter_exhaustive_n3;
          Alcotest.test_case "random inits n=5,7,9" `Slow
            test_two_counter_random_inits;
          Alcotest.test_case "2-bit labels" `Quick test_two_counter_label_bits;
        ] );
      ( "d-counter",
        [
          Alcotest.test_case "locks from zero labeling" `Quick
            test_d_counter_from_zero;
          Alcotest.test_case "locks from random labelings" `Slow
            test_d_counter_random_inits;
          Alcotest.test_case "label bits 2+3logD" `Quick
            test_d_counter_label_bits;
          Alcotest.test_case "outputs equal counter" `Quick
            test_d_counter_outputs_are_counter;
          Alcotest.test_case "burn-in linear in n" `Quick
            test_d_counter_burn_in_linear;
          Alcotest.test_case "validation" `Quick test_d_counter_validation;
        ] );
      ("properties", qcheck_tests);
    ]
