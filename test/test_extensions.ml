(* Tests for the extension modules: fault injection, adversarial schedule
   search, randomized reactions (future work 4), and bounded-memory nodes
   (future work 2). *)

module Builders = Stateless_graph.Builders
module Digraph = Stateless_graph.Digraph
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parity bits = Array.fold_left (fun acc b -> acc <> b) false bits

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_corrupt_fraction_zero_is_identity () =
  let p = Generic.make (Builders.ring_bi 5) parity in
  let config = Protocol.uniform_config p (Array.make 6 true) in
  let damaged = Fault.corrupt p ~seed:1 ~fraction:0.0 config in
  check_bool "identical" true
    (String.equal (Protocol.config_key p config) (Protocol.config_key p damaged))

let test_corrupt_full_changes_something () =
  let p = Generic.make (Builders.ring_bi 5) parity in
  let config = Protocol.uniform_config p (Array.make 6 true) in
  let damaged = Fault.corrupt p ~seed:1 ~fraction:1.0 config in
  check_bool "changed" false
    (String.equal (Protocol.config_key p config) (Protocol.config_key p damaged))

let test_corrupt_is_deterministic () =
  let p = Generic.make (Builders.ring_bi 5) parity in
  let config = Protocol.uniform_config p (Array.make 6 false) in
  let a = Fault.corrupt p ~seed:9 ~fraction:0.7 config in
  let b = Fault.corrupt p ~seed:9 ~fraction:0.7 config in
  check_bool "same seed same damage" true
    (String.equal (Protocol.config_key p a) (Protocol.config_key p b))

let test_generic_protocol_recovers () =
  (* Self-stabilization under fire: corrupt every label, outputs come back
     to f(x). *)
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  let x = [| true; false; true; true; false |] in
  let init = Protocol.uniform_config p (Array.make 6 false) in
  for seed = 1 to 10 do
    match
      Fault.recovers_to_same_outputs p ~input:x ~init
        ~schedule:(Schedule.synchronous 5) ~seed ~fraction:1.0 ~max_steps:400
    with
    | Some true -> ()
    | Some false -> Alcotest.fail "outputs changed after recovery"
    | None -> Alcotest.fail "did not re-converge"
  done

let test_recovery_time_reported () =
  let g = Builders.ring_bi 5 in
  let p = Generic.make g parity in
  let x = [| true; true; false; false; true |] in
  let init = Protocol.uniform_config p (Array.make 6 false) in
  match
    Fault.recovery_time p ~input:x ~init ~schedule:(Schedule.synchronous 5)
      ~seed:3 ~fraction:0.5 ~max_steps:400
  with
  | Some (first, recovery) ->
      check_bool "first >= 0" true (first >= 0);
      check_bool "recovery bounded by 2n+1" true (recovery <= 11)
  | None -> Alcotest.fail "no recovery measured"

let test_compiled_circuit_recovers () =
  let t = Stateless_compile.Compile.make (Stateless_circuit.Circuit.majority 3) in
  let p = t.Stateless_compile.Compile.protocol in
  let x = Stateless_compile.Compile.ring_input t [| true; false; true |] in
  let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  match
    Fault.recovers_to_same_outputs p ~input:x ~init
      ~schedule:(Schedule.synchronous t.Stateless_compile.Compile.ring_size)
      ~seed:5 ~fraction:1.0
      ~max_steps:(4 * Stateless_compile.Compile.convergence_bound t)
  with
  | Some true -> ()
  | Some false -> Alcotest.fail "ring answered differently after the fault"
  | None -> Alcotest.fail "ring did not recover"

(* ------------------------------------------------------------------ *)
(* Adversarial schedule search                                         *)
(* ------------------------------------------------------------------ *)

let test_random_periodic_fair_is_fair () =
  for seed = 0 to 5 do
    let s = Adversary.random_periodic_fair ~seed ~r:3 ~period:12 6 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (Schedule.is_r_fair s ~n:6 ~r:3 ~horizon:60);
    check "periodic" 12 (Option.get s.Schedule.period)
  done

let test_finds_oscillation_on_copy_ring () =
  let p : (unit, bool) Protocol.t =
    {
      Protocol.name = "copy-ring";
      graph = Builders.ring_uni 4;
      space = Label.bool;
      react = (fun _ () incoming -> ([| incoming.(0) |], 0));
    }
  in
  match
    Adversary.find_oscillation p ~input:(Array.make 4 ()) ~r:4 ~attempts:50
      ~period:8 ~seed:1 ~max_steps:400
  with
  | Some w -> check_bool "verifies" true (Adversary.verify p ~input:(Array.make 4 ()) w)
  | None -> Alcotest.fail "copy ring oscillations are everywhere"

let test_finds_bgp_flapping () =
  (* BAD GADGET is too large for the exhaustive checker, but the sampler
     finds a replayable flapping schedule immediately. *)
  let spp = Stateless_games.Spp.bad_gadget () in
  let p = Stateless_games.Spp.protocol spp in
  let input = Stateless_games.Spp.input spp in
  match
    Adversary.find_oscillation p ~input ~r:3 ~attempts:40 ~period:9 ~seed:2
      ~max_steps:2000
  with
  | Some w -> check_bool "verifies" true (Adversary.verify p ~input w)
  | None -> Alcotest.fail "bad gadget always flaps"

let test_no_oscillation_on_stabilizing_protocol () =
  let p : (unit, bool) Protocol.t =
    {
      Protocol.name = "constant";
      graph = Builders.ring_uni 4;
      space = Label.bool;
      react = (fun _ () _ -> ([| false |], 0));
    }
  in
  check_bool "none found" true
    (Adversary.find_oscillation p ~input:(Array.make 4 ()) ~r:3 ~attempts:30
       ~period:8 ~seed:3 ~max_steps:200
    = None)

let test_sampler_agrees_with_checker_on_example1 () =
  (* n = 4, r = 3: the checker proves oscillation exists; the sampler should
     find one too (the chase pattern has positive probability). *)
  let p = Clique_example.make 4 in
  let input = Clique_example.input 4 in
  match
    Adversary.find_oscillation p ~input ~r:3 ~attempts:4000 ~period:8 ~seed:5
      ~max_steps:400
  with
  | Some w -> check_bool "verifies" true (Adversary.verify p ~input w)
  | None ->
      (* Sampling may miss it; the exhaustive checker must still find it. *)
      (match
         Stateless_checker.Checker.check_label p ~input ~r:3
           ~max_states:5_000_000
       with
      | Stateless_checker.Checker.Oscillating _ -> ()
      | _ -> Alcotest.fail "checker must find the oscillation")

(* ------------------------------------------------------------------ *)
(* Randomized reactions                                                *)
(* ------------------------------------------------------------------ *)

let test_of_protocol_behaves_like_protocol () =
  let det = Clique_example.make 4 in
  let rand = Randomized.of_protocol det in
  let input = Clique_example.input 4 in
  let init = Clique_example.oscillation_init det in
  let rng = Random.State.make [| 1 |] in
  let via_rand =
    Randomized.step rand ~rng ~input init ~active:[ 0; 1; 2; 3 ]
  in
  let via_det = Engine.step det ~input init ~active:[ 0; 1; 2; 3 ] in
  check_bool "same step" true
    (String.equal
       (Protocol.config_key det via_rand)
       (Protocol.config_key det via_det))

let test_lazy_example1_converges_under_chase () =
  let n = 5 in
  let rand = Randomized.lazy_example1 n ~ignite:0.3 in
  let det = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init det in
  let converged, total, _ =
    Randomized.convergence_rate rand ~input ~init
      ~schedule:(Clique_example.oscillation_schedule n)
      ~seeds:(List.init 20 Fun.id) ~quiet:(4 * n) ~max_steps:(500 * n)
  in
  check "all runs converge" total converged

let test_deterministic_oscillates_where_randomized_converges () =
  let n = 4 in
  let det = Clique_example.make n in
  let input = Clique_example.input n in
  let init = Clique_example.oscillation_init det in
  match
    Engine.run_until_stable det ~input ~init
      ~schedule:(Clique_example.oscillation_schedule n)
      ~max_steps:(200 * n)
  with
  | Engine.Oscillating _ -> ()
  | _ -> Alcotest.fail "deterministic protocol must oscillate"

let test_quiescence_reports_none_for_churn () =
  (* A protocol that flips a coin every step never goes quiet. *)
  let g = Builders.ring_uni 3 in
  let rand : (unit, bool) Randomized.t =
    {
      Randomized.name = "coin";
      graph = g;
      space = Label.bool;
      react =
        (fun rng _ () _ ->
          let b = Random.State.bool rng in
          ([| b |], if b then 1 else 0));
    }
  in
  let init : bool Protocol.config =
    { Protocol.labels = Array.make 3 false; outputs = Array.make 3 0 }
  in
  check_bool "never quiet" true
    (Randomized.time_to_quiescence rand ~input:(Array.make 3 ())
       ~init ~schedule:(Schedule.synchronous 3) ~seed:1 ~quiet:20
       ~max_steps:2000
    = None)

let test_randomized_rejects_bad_ignite () =
  Alcotest.check_raises "ignite = 0"
    (Invalid_argument "Randomized.lazy_example1: ignite must be in (0, 1)")
    (fun () -> ignore (Randomized.lazy_example1 4 ~ignite:0.0))

(* ------------------------------------------------------------------ *)
(* Memory protocols ("almost stateless")                               *)
(* ------------------------------------------------------------------ *)

let test_of_protocol_zero_memory () =
  let p = Clique_example.make 3 in
  let m = Memory.of_protocol p in
  check "memory bits" 0 (Memory.memory_bits m)

let test_embedding_preserves_dynamics () =
  let p = Clique_example.make 3 in
  let m = Memory.of_protocol p in
  let input = Clique_example.input 3 in
  let init_p = Clique_example.oscillation_init p in
  let init_m : (bool, unit) Memory.config =
    {
      Memory.labels = Array.copy init_p.Protocol.labels;
      states = Array.make 3 ();
      outputs = Array.make 3 0;
    }
  in
  let after_p =
    Engine.run p ~input ~init:init_p ~schedule:(Schedule.synchronous 3)
      ~steps:5
  in
  let after_m =
    Memory.run m ~input ~init:init_m ~schedule:(Schedule.synchronous 3)
      ~steps:5
  in
  check_bool "same labels" true
    (after_p.Protocol.labels = after_m.Memory.labels)

let test_blinker_never_output_stabilizes () =
  let m = Memory.blinker () in
  let init = Memory.initial_config m false in
  match
    Memory.run_until_stable m ~input:[| (); () |] ~init
      ~schedule:(Schedule.synchronous 2) ~max_steps:100
  with
  | `Oscillating (_, period) -> check "period" 2 period
  | `Stabilized _ -> Alcotest.fail "one memory bit blinks forever"
  | `Exhausted -> Alcotest.fail "verdict expected"

let test_blinker_outputs_alternate () =
  let m = Memory.blinker () in
  let config = ref (Memory.initial_config m false) in
  let outputs = ref [] in
  for _ = 1 to 6 do
    config := Memory.step m ~input:[| (); () |] !config ~active:[ 0; 1 ];
    outputs := !config.Memory.outputs.(0) :: !outputs
  done;
  Alcotest.(check (list int)) "alternating" [ 1; 0; 1; 0; 1; 0 ] !outputs

let test_stateless_on_k2_cannot_blink_silently () =
  (* The separation behind {!Memory.blinker}: a memory node blinks with
     CONSTANT labels (zero ongoing communication). Stateless protocols can
     blink too — but only by cycling their labels (the ring oscillator
     pattern). Exhausting ALL 1-bit-label stateless protocols on K_2
     confirms (a) label-cycling blinkers exist, and (b) no protocol blinks
     while its labels are constant — outputs are functions of labels, so
     silence forces constancy; the memory bit breaks exactly this. *)
  let g = Builders.clique 2 in
  let silent_blink_found = ref false in
  let loud_blink_found = ref false in
  (* Each node maps its incoming bit to (out bit, output bit): 2 nodes x 2
     inputs -> 4 entries of 2 bits = 8 bits of protocol table. *)
  for table = 0 to (1 lsl 8) - 1 do
    let entry node bit =
      let idx = (node * 2) + if bit then 1 else 0 in
      let v = (table lsr (2 * idx)) land 3 in
      (v land 1 = 1, v land 2 = 2)
    in
    let p : (unit, bool) Protocol.t =
      {
        Protocol.name = "enum";
        graph = g;
        space = Label.bool;
        react =
          (fun i () incoming ->
            let out, y = entry i incoming.(0) in
            ([| out |], if y then 1 else 0));
      }
    in
    for init_code = 0 to 3 do
      let init = Protocol.decode_config p init_code in
      (* Synchronous run of length 8 reaches the periodic tail of the
         4-labeling state space. *)
      let outputs = ref [] in
      let labels = ref [] in
      let config = ref init in
      for _ = 1 to 8 do
        config := Engine.step p ~input:[| (); () |] !config ~active:[ 0; 1 ];
        outputs := !config.Protocol.outputs.(0) :: !outputs;
        labels := Protocol.encode_config p !config :: !labels
      done;
      match (!outputs, !labels) with
      | o1 :: o2 :: o3 :: o4 :: _, l1 :: l2 :: l3 :: l4 :: _ ->
          let blinks = o1 <> o2 && o2 <> o3 && o3 <> o4 in
          let silent = l1 = l2 && l2 = l3 && l3 = l4 in
          if blinks && silent then silent_blink_found := true;
          if blinks && not silent then loud_blink_found := true
      | _ -> ()
    done
  done;
  check_bool "label-cycling blinkers exist" true !loud_blink_found;
  check_bool "no silent stateless blinker" false !silent_blink_found;
  (* The memory blinker is silent: its labels never change. *)
  let m = Memory.blinker () in
  let config = ref (Memory.initial_config m false) in
  let silent = ref true in
  let before = !config.Memory.labels in
  for _ = 1 to 6 do
    config := Memory.step m ~input:[| (); () |] !config ~active:[ 0; 1 ];
    if !config.Memory.labels <> before then silent := false
  done;
  check_bool "memory blinker is silent" true !silent

let test_mod_counter_counts () =
  let m = Memory.mod_counter 5 in
  let config = ref (Memory.initial_config m false) in
  for expected = 0 to 11 do
    config := Memory.step m ~input:[| (); () |] !config ~active:[ 0; 1 ];
    check "counts" (expected mod 5) !config.Memory.outputs.(0)
  done;
  check "memory bits" 3 (Memory.memory_bits (Memory.mod_counter 5))

let test_memory_stable_detection () =
  (* A memory protocol that freezes is detected as stable. *)
  let g = Builders.ring_bi 2 in
  let m : (unit, bool, bool) Memory.t =
    {
      Memory.name = "freeze";
      graph = g;
      space = Label.bool;
      states = Label.bool;
      initial_state = (fun _ -> true);
      react =
        (fun i () s _ ->
          (s, Array.map (fun _ -> false) (Digraph.out_edges g i), 0));
    }
  in
  match
    Memory.run_until_stable m ~input:[| (); () |]
      ~init:(Memory.initial_config m false)
      ~schedule:(Schedule.synchronous 2) ~max_steps:10
  with
  | `Stabilized t -> check "immediately" 0 t
  | _ -> Alcotest.fail "freeze is stable"

(* ------------------------------------------------------------------ *)

let prop_corrupt_respects_fraction =
  QCheck.Test.make ~count:50 ~name:"corruption rate tracks fraction"
    (QCheck.make QCheck.Gen.(pair (int_bound 1000) (int_range 0 10)))
    (fun (seed, tenths) ->
      let fraction = float_of_int tenths /. 10.0 in
      let p = Generic.make (Builders.ring_bi 6) parity in
      let config = Protocol.uniform_config p (Array.make 7 false) in
      let damaged = Fault.corrupt p ~seed ~fraction config in
      let m = Protocol.num_edges p in
      let changed = ref 0 in
      for e = 0 to m - 1 do
        if damaged.Protocol.labels.(e) <> config.Protocol.labels.(e) then
          incr changed
      done;
      (* A corrupted label always differs from the old one, so [changed]
         counts exactly the corrupted positions: zero fraction changes
         nothing, fraction 1 changes everything. *)
      if tenths = 0 then !changed = 0
      else if tenths = 10 then !changed = m
      else !changed <= m)

let prop_random_periodic_fair =
  QCheck.Test.make ~count:40 ~name:"sampled schedules are r-fair"
    (QCheck.make
       QCheck.Gen.(
         triple (int_bound 10_000) (int_range 1 4) (int_range 2 6)))
    (fun (seed, r, n) ->
      let period = 3 * r in
      let s = Adversary.random_periodic_fair ~seed ~r ~period n in
      Schedule.is_r_fair s ~n ~r ~horizon:(4 * period))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_corrupt_respects_fraction; prop_random_periodic_fair ]

let () =
  Alcotest.run "stateless_extensions"
    [
      ( "fault",
        [
          Alcotest.test_case "fraction 0 identity" `Quick
            test_corrupt_fraction_zero_is_identity;
          Alcotest.test_case "fraction 1 changes" `Quick
            test_corrupt_full_changes_something;
          Alcotest.test_case "deterministic" `Quick test_corrupt_is_deterministic;
          Alcotest.test_case "generic recovers" `Quick
            test_generic_protocol_recovers;
          Alcotest.test_case "recovery time" `Quick test_recovery_time_reported;
          Alcotest.test_case "compiled circuit recovers" `Slow
            test_compiled_circuit_recovers;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "sampled schedules fair" `Quick
            test_random_periodic_fair_is_fair;
          Alcotest.test_case "finds copy-ring oscillation" `Quick
            test_finds_oscillation_on_copy_ring;
          Alcotest.test_case "finds BGP flapping" `Quick test_finds_bgp_flapping;
          Alcotest.test_case "silent on stabilizing" `Quick
            test_no_oscillation_on_stabilizing_protocol;
          Alcotest.test_case "consistent with checker" `Slow
            test_sampler_agrees_with_checker_on_example1;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "embedding" `Quick
            test_of_protocol_behaves_like_protocol;
          Alcotest.test_case "lazy example1 converges" `Slow
            test_lazy_example1_converges_under_chase;
          Alcotest.test_case "deterministic oscillates" `Quick
            test_deterministic_oscillates_where_randomized_converges;
          Alcotest.test_case "churn never quiet" `Quick
            test_quiescence_reports_none_for_churn;
          Alcotest.test_case "rejects bad ignite" `Quick
            test_randomized_rejects_bad_ignite;
        ] );
      ( "memory",
        [
          Alcotest.test_case "zero-memory embedding" `Quick
            test_of_protocol_zero_memory;
          Alcotest.test_case "embedding dynamics" `Quick
            test_embedding_preserves_dynamics;
          Alcotest.test_case "blinker oscillates" `Quick
            test_blinker_never_output_stabilizes;
          Alcotest.test_case "blinker alternates" `Quick
            test_blinker_outputs_alternate;
          Alcotest.test_case "no silent stateless blinker on K2" `Quick
            test_stateless_on_k2_cannot_blink_silently;
          Alcotest.test_case "mod counter" `Quick test_mod_counter_counts;
          Alcotest.test_case "stability detection" `Quick
            test_memory_stable_detection;
        ] );
      ("properties", qcheck_tests);
    ]
