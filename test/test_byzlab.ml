(* Differential and certification tests for the Byzantine-node layer:
   the attack steppers and campaigns (Byzlab) and the exhaustive
   (r,B)-stabilization certifier (Byzcheck).

   The load-bearing contracts:
   - with B = {} the Byzantine steppers are bit-identical to the
     fault-free Engine and Kernel on randomized protocols x schedules
     (no RNG draw, no write ever happens);
   - the boxed and packed steppers are differential twins for every
     strategy (same seed, same run, same write count);
   - Byzcheck with B = {} agrees with the plain exhaustive checker on
     the standard small instances — same verdicts, same states-graph
     size — because the state space is not augmented at all;
   - one Byzantine node flips K_3's output verdict, and every
     oscillation witness replays on both execution engines;
   - campaigns are identical for every domain count. *)

module Protocol = Stateless_core.Protocol
module Engine = Stateless_core.Engine
module Schedule = Stateless_core.Schedule
module Parrun = Stateless_core.Parrun
module Clique_example = Stateless_core.Clique_example
module Digraph = Stateless_graph.Digraph
module Checker = Stateless_checker.Checker
module Byzlab = Stateless_byzlab.Byzlab
module Byzcheck = Stateless_byzlab.Byzcheck
module Two_counter = Stateless_counter.Two_counter
module Proptest = Stateless_core.Proptest

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Extra domain counts from the environment (the CI matrix leg sets
   PARRUN_DOMAINS=4); determinism contracts must hold for any value. *)
let extra_domains =
  match Parrun.env_domains () with Some d -> [ d ] | None -> []

let domain_counts = [ 2; 4 ] @ extra_domains

(* Random protocols from the shared generator, with this suite's own RNG
   constants (instances differ from the kernel and netlab suites). *)
let random_protocol seed =
  Proptest.random_protocol ~salt:0xb1a5ed ~name:"byz" seed

let random_config = Proptest.random_config
let schedules_for seed n = Proptest.schedules_for ~offset:3 seed n
let config_eq = Proptest.config_eq

(* ------------------------------------------------------------------ *)
(* B = {} steppers are the fault-free engines                          *)
(* ------------------------------------------------------------------ *)

let test_empty_byz_packed_matches_kernel () =
  for seed = 1 to 15 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    List.iter
      (fun schedule ->
        let steps = 40 in
        let expect = Engine.run p ~input ~init ~schedule ~steps in
        List.iter
          (fun strategy ->
            let ch =
              Byzlab.Packed.create p ~input ~byz:[] ~strategy ~schedule ~seed
                ~init
            in
            Byzlab.Packed.run ch ~steps;
            check_bool
              (Printf.sprintf "seed %d %s: B={} packed = kernel" seed
                 schedule.Schedule.name)
              true
              (config_eq p expect (Byzlab.Packed.config ch));
            check "no write at B={}" 0 (Byzlab.Packed.writes_done ch))
          [ Byzlab.Seeded_random; Byzlab.Anti_majority ])
      (schedules_for seed n)
  done

let test_empty_byz_boxed_matches_engine () =
  for seed = 1 to 15 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    List.iter
      (fun schedule ->
        let steps = 40 in
        let expect = Engine.run p ~input ~init ~schedule ~steps in
        let ch =
          Byzlab.Boxed.create p ~input ~byz:[]
            ~strategy:Byzlab.Seeded_random ~schedule ~seed ~init
        in
        Byzlab.Boxed.run ch ~steps;
        check_bool
          (Printf.sprintf "seed %d %s: B={} boxed = engine" seed
             schedule.Schedule.name)
          true
          (config_eq p expect (Byzlab.Boxed.config ch));
        check "no write at B={}" 0 (Byzlab.Boxed.writes_done ch))
      (schedules_for seed n)
  done

(* ------------------------------------------------------------------ *)
(* Boxed and packed steppers are differential twins                    *)
(* ------------------------------------------------------------------ *)

let test_steppers_are_twins () =
  for seed = 1 to 15 do
    let p, input, st = random_protocol seed in
    let n = Protocol.num_nodes p in
    let init = random_config p st in
    let byz = if n > 2 then [ 0; n - 1 ] else [ 0 ] in
    List.iter
      (fun strategy ->
        List.iter
          (fun schedule ->
            let steps = 40 in
            let b =
              Byzlab.Boxed.create p ~input ~byz ~strategy ~schedule ~seed
                ~init
            in
            let k =
              Byzlab.Packed.create p ~input ~byz ~strategy ~schedule ~seed
                ~init
            in
            Byzlab.Boxed.run b ~steps;
            Byzlab.Packed.run k ~steps;
            check_bool
              (Printf.sprintf "seed %d %s %s: twin configs" seed
                 (Byzlab.strategy_name strategy)
                 schedule.Schedule.name)
              true
              (config_eq p (Byzlab.Boxed.config b) (Byzlab.Packed.config k));
            check "twin write counts" (Byzlab.Boxed.writes_done b)
              (Byzlab.Packed.writes_done k))
          (schedules_for seed n))
      [ Byzlab.Seeded_random; Byzlab.Anti_majority ]
  done

let test_byzantine_nodes_do_write () =
  let p, input, st = random_protocol 1 in
  let n = Protocol.num_nodes p in
  let init = random_config p st in
  let ch =
    Byzlab.Packed.create p ~input ~byz:[ 0 ] ~strategy:Byzlab.Seeded_random
      ~schedule:(Schedule.synchronous n) ~seed:1 ~init
  in
  Byzlab.Packed.run ch ~steps:10;
  (* Node 0 is activated every synchronous step and owns at least one
     out-edge (the generator keeps graphs strongly connected). *)
  check_bool "synchronous Byzantine node writes every step" true
    (Byzlab.Packed.writes_done ch >= 10)

(* ------------------------------------------------------------------ *)
(* Byzcheck with B = {} collapses to the plain checker                 *)
(* ------------------------------------------------------------------ *)

let plain_kind = function
  | Checker.Stabilizing -> `Stab
  | Checker.Oscillating _ -> `Osc
  | Checker.Too_large _ -> `Big

let kind = function
  | Byzcheck.Stabilizing -> `Stab
  | Byzcheck.Oscillating _ -> `Osc
  | Byzcheck.Too_large _ -> `Big

let agree_at_empty_byz name p ~input ~r =
  let budget = 100_000 in
  let plain = Checker.check_label p ~input ~r ~max_states:budget in
  let plain_states =
    match Checker.last_stats () with Some s -> s.Checker.states | None -> -1
  in
  let byzv = Byzcheck.check_label p ~input ~byz:[] ~r ~max_states:budget in
  let byz_states =
    match Byzcheck.last_stats () with Some s -> s.Byzcheck.states | None -> -2
  in
  check_bool (name ^ " label verdicts agree") true (plain_kind plain = kind byzv);
  check (name ^ " same states-graph size") plain_states byz_states;
  check_bool (name ^ " output verdicts agree") true
    (plain_kind (Checker.check_output p ~input ~r ~max_states:budget)
    = kind (Byzcheck.check_output p ~input ~byz:[] ~r ~max_states:budget))

let test_empty_byz_agrees_with_checker () =
  let two = Two_counter.make 3 in
  agree_at_empty_byz "example1 r=1" (Clique_example.make 3)
    ~input:(Clique_example.input 3) ~r:1;
  agree_at_empty_byz "example1 r=2" (Clique_example.make 3)
    ~input:(Clique_example.input 3) ~r:2;
  agree_at_empty_byz "copy-ring r=1"
    (Proptest.copy_ring ~name:"copy-ring-byz" 3)
    ~input:(Array.make 3 ()) ~r:1;
  agree_at_empty_byz "two-counter r=1" two.Two_counter.protocol
    ~input:(Two_counter.input two) ~r:1

(* ------------------------------------------------------------------ *)
(* One Byzantine node flips the clique's verdict                       *)
(* ------------------------------------------------------------------ *)

let test_byz_flips_verdict () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  (match Byzcheck.check_output p ~input ~byz:[] ~r:1 ~max_states:100_000 with
  | Byzcheck.Stabilizing -> ()
  | _ -> Alcotest.fail "K3 must output-1-stabilize with no Byzantine node");
  match Byzcheck.check_output p ~input ~byz:[ 0 ] ~r:1 ~max_states:1_000_000 with
  | Byzcheck.Oscillating w ->
      check_bool "boxed replay" true (Byzcheck.replay p ~input ~byz:[ 0 ] w);
      check_bool "packed replay" true
        (Byzcheck.replay_packed p ~input ~byz:[ 0 ] w);
      let owned = Digraph.out_edges p.Protocol.graph 0 in
      check_bool "witness writes only Byzantine edges" true
        (List.for_all
           (fun s ->
             List.for_all
               (fun wr ->
                 Array.exists (fun e -> e = wr.Byzcheck.edge) owned)
               s.Byzcheck.writes)
           (w.Byzcheck.prefix @ w.Byzcheck.cycle));
      (* The witness is also a playable attack: feed it to the steppers
         as a Replay strategy from the witness's initial labeling. *)
      let init = Protocol.decode_config p w.Byzcheck.init_code in
      let steps =
        List.length w.Byzcheck.prefix + (2 * List.length w.Byzcheck.cycle)
      in
      let b =
        Byzlab.Boxed.create p ~input ~byz:[ 0 ]
          ~strategy:(Byzlab.Replay w)
          ~schedule:(Schedule.synchronous 3) ~seed:1 ~init
      in
      let k =
        Byzlab.Packed.create p ~input ~byz:[ 0 ]
          ~strategy:(Byzlab.Replay w)
          ~schedule:(Schedule.synchronous 3) ~seed:1 ~init
      in
      Byzlab.Boxed.run b ~steps;
      Byzlab.Packed.run k ~steps;
      check_bool "replay strategy twins" true
        (config_eq p (Byzlab.Boxed.config b) (Byzlab.Packed.config k))
  | Byzcheck.Stabilizing ->
      Alcotest.fail "one Byzantine node must un-stabilize K3"
  | Byzcheck.Too_large { needed } ->
      Alcotest.failf "K3 with one Byzantine node too large: %d" needed

let test_label_verdict_flips_too () =
  let p = Proptest.copy_ring ~name:"copy-ring-byz-immune" 3 in
  let input = Array.make 3 () in
  (* The copy ring's outputs are constant 0, so even a Byzantine node
     cannot make outputs diverge — but it keeps labels churning. *)
  (match Byzcheck.check_output p ~input ~byz:[ 0 ] ~r:1 ~max_states:100_000 with
  | Byzcheck.Stabilizing -> ()
  | _ -> Alcotest.fail "copy-ring outputs are Byzantine-immune");
  match Byzcheck.check_label p ~input ~byz:[ 0 ] ~r:1 ~max_states:100_000 with
  | Byzcheck.Oscillating w ->
      check_bool "label witness replays boxed" true
        (Byzcheck.replay p ~input ~byz:[ 0 ] w);
      check_bool "label witness replays packed" true
        (Byzcheck.replay_packed p ~input ~byz:[ 0 ] w)
  | _ -> Alcotest.fail "a Byzantine node keeps the copy ring's labels alive"

(* ------------------------------------------------------------------ *)
(* Containment radii                                                   *)
(* ------------------------------------------------------------------ *)

let test_containment_k3 () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  match Byzcheck.containment p ~input ~byz:[ 0 ] ~r:1 ~max_states:1_000_000 with
  | Error needed -> Alcotest.failf "containment too large: %d" needed
  | Ok c ->
      check "fates cover the correct nodes" 2 (List.length c.Byzcheck.fates);
      List.iter
        (fun f ->
          check_bool "fate is for a correct node" true
            (f.Byzcheck.node = 1 || f.Byzcheck.node = 2);
          check
            (Printf.sprintf "node %d at clique distance 1" f.Byzcheck.node)
            1 f.Byzcheck.distance;
          check_bool
            (Printf.sprintf "node %d diverges" f.Byzcheck.node)
            false f.Byzcheck.stabilizes)
        c.Byzcheck.fates;
      check_bool "radius 1" true (c.Byzcheck.radius = Some 1);
      check_bool "nobody stabilizes" true
        (c.Byzcheck.stabilized_fraction = 0.0);
      (match c.Byzcheck.witness with
      | Some w ->
          check_bool "containment witness replays" true
            (Byzcheck.replay p ~input ~byz:[ 0 ] w)
      | None -> Alcotest.fail "a diverging node must carry a witness")

let test_containment_fully_contained () =
  let p = Proptest.copy_ring ~name:"copy-ring-byz-contained" 3 in
  let input = Array.make 3 () in
  match Byzcheck.containment p ~input ~byz:[ 0 ] ~r:1 ~max_states:100_000 with
  | Error needed -> Alcotest.failf "containment too large: %d" needed
  | Ok c ->
      check_bool "no radius when everyone stabilizes" true
        (c.Byzcheck.radius = None);
      check_bool "everyone stabilizes" true
        (c.Byzcheck.stabilized_fraction = 1.0);
      check_bool "no witness" true (c.Byzcheck.witness = None)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  (match Byzcheck.check_label p ~input ~byz:[ 3 ] ~r:1 ~max_states:1_000 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (match
     Byzcheck.check_label p ~input ~byz:[ 0; 0 ] ~r:1 ~max_states:1_000
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match
    Byzlab.Packed.create p ~input ~byz:[ -1 ]
      ~strategy:Byzlab.Seeded_random ~schedule:(Schedule.synchronous 3)
      ~seed:1
      ~init:(Protocol.decode_config p 0)
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_strategy_names () =
  List.iter
    (fun name ->
      match Byzlab.strategy_by_name name with
      | Some s -> check_bool name true (Byzlab.strategy_name s = name)
      | None -> Alcotest.failf "strategy %S not resolvable" name)
    Byzlab.strategy_names;
  check_bool "unknown strategy" true (Byzlab.strategy_by_name "nope" = None)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

let test_campaign_domain_determinism () =
  let sc = Byzlab.relay_ring ~n:5 () in
  let campaign domains =
    Byzlab.run ~seeds:4 ~attack:40 ~max_steps:400 ~domains
      ~strategy:Byzlab.Seeded_random sc
  in
  let base = campaign 1 in
  check "one level per placement"
    (List.length sc.Byzlab.placements)
    (List.length base.Byzlab.levels);
  List.iter
    (fun d ->
      check_bool (Printf.sprintf "domains=%d identical" d) true
        (campaign d = base))
    domain_counts;
  (match base.Byzlab.levels with
  | l0 :: _ ->
      check_bool "first level is the healthy baseline" true
        (l0.Byzlab.byz = []);
      check_bool "healthy baseline never deviates" true
        (l0.Byzlab.mean_deviant = 0.0
        && l0.Byzlab.mean_stabilized = 1.0
        && l0.Byzlab.worst_radius = -1)
  | [] -> Alcotest.fail "campaign has no levels");
  match
    List.find_opt (fun l -> l.Byzlab.byz = [ 0 ]) base.Byzlab.levels
  with
  | Some l ->
      check_bool "a Byzantine relay node causes deviation" true
        (l.Byzlab.mean_deviant > 0.0);
      check_bool "deviation spreads beyond the neighbours" true
        (l.Byzlab.worst_radius >= 1)
  | None -> Alcotest.fail "placement [0] missing from the sweep"

let test_campaign_seed0_matters () =
  let sc = Byzlab.relay_ring ~n:5 () in
  let campaign seed0 =
    Byzlab.run ~placements:[ [ 0 ] ] ~seeds:3 ~attack:40 ~max_steps:400
      ~domains:1 ~seed0 ~strategy:Byzlab.Seeded_random sc
  in
  check_bool "same seed0, same campaign" true (campaign 1 = campaign 1);
  (* Different seed0 changes the RNG streams; the relay ring's deviant
     fractions are seed-sensitive, so the campaigns must differ. *)
  check_bool "different seed0, different campaign" true
    (campaign 1 <> campaign 1001)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let test_write_json_smoke () =
  let sc = Byzlab.relay_ring ~n:5 () in
  let c =
    Byzlab.run ~seeds:2 ~attack:20 ~max_steps:100 ~domains:1
      ~strategy:Byzlab.Anti_majority sc
  in
  let path = Filename.temp_file "byz" ".json" in
  let oc = open_out path in
  Byzlab.write_json ~host:"{ \"ocaml\": \"test\" }"
    ~certification:[ "{ \"instance\": \"t\" }" ]
    oc [ c ];
  close_out oc;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "names the benchmark" true
    (contains s "\"benchmark\": \"byzlab\"");
  check_bool "has the host block" true (contains s "\"host\"");
  check_bool "has the certification rows" true
    (contains s "\"certification\"");
  check_bool "has the campaign rows" true (contains s "\"byz_count\"")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stateless_byzlab"
    [
      ( "steppers",
        [
          Alcotest.test_case "B={} packed = kernel" `Quick
            test_empty_byz_packed_matches_kernel;
          Alcotest.test_case "B={} boxed = engine" `Quick
            test_empty_byz_boxed_matches_engine;
          Alcotest.test_case "boxed/packed twins" `Quick
            test_steppers_are_twins;
          Alcotest.test_case "Byzantine nodes write" `Quick
            test_byzantine_nodes_do_write;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ( "byzcheck",
        [
          Alcotest.test_case "B={} agrees with checker" `Quick
            test_empty_byz_agrees_with_checker;
          Alcotest.test_case "one Byzantine node flips K3" `Quick
            test_byz_flips_verdict;
          Alcotest.test_case "copy-ring outputs immune, labels not" `Quick
            test_label_verdict_flips_too;
          Alcotest.test_case "containment on K3" `Quick test_containment_k3;
          Alcotest.test_case "containment fully contained" `Quick
            test_containment_fully_contained;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "identical for every domain count" `Quick
            test_campaign_domain_determinism;
          Alcotest.test_case "seed0 shifts the seed range" `Quick
            test_campaign_seed0_matters;
          Alcotest.test_case "JSON smoke" `Quick test_write_json_smoke;
        ] );
    ]
