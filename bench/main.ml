(* Benchmark & experiment harness.

   Running this executable regenerates every quantitative claim of the
   paper (experiments E1..E15, one table each — see DESIGN.md for the
   experiment index and EXPERIMENTS.md for paper-vs-measured), then runs a
   Bechamel micro-benchmark suite over the core computational kernels. *)

open Bechamel
open Toolkit
module Builders = Stateless_graph.Builders
module Circuit = Stateless_circuit.Circuit
module Bp = Stateless_bp.Bp
module Snake = Stateless_snake.Snake
module Checker = Stateless_checker.Checker
module Faultlab = Stateless_faultlab.Faultlab
module Netlab = Stateless_netlab.Netlab
module Netcheck = Stateless_netlab.Netcheck
module Byzlab = Stateless_byzlab.Byzlab
module Byzcheck = Stateless_byzlab.Byzcheck
module Simlab = Stateless_simlab.Simlab
module Campaign = Stateless_campaign.Campaign
module Chaoslab = Stateless_chaoslab.Chaoslab
module Fuzz = Stateless_chaoslab.Fuzz
module Machine = Stateless_machine.Machine
open Stateless_core

(* The lab campaigns run through the crash-tolerant orchestrator (no
   journal, no deadline — plain policy), so every BENCH_*.json carries
   the ok/timeout/error cell accounting. *)
let zero_counts = { Campaign.ok = 0; timeout = 0; error = 0; replayed = 0 }

let add_counts (a : Campaign.counts) (b : Campaign.counts) =
  {
    Campaign.ok = a.Campaign.ok + b.Campaign.ok;
    timeout = a.Campaign.timeout + b.Campaign.timeout;
    error = a.Campaign.error + b.Campaign.error;
    replayed = a.Campaign.replayed + b.Campaign.replayed;
  }

let cell_triple (c : Campaign.counts) =
  (c.Campaign.ok, c.Campaign.timeout, c.Campaign.error)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the computational kernels                       *)
(* ------------------------------------------------------------------ *)

let parity bits = Array.fold_left (fun acc b -> acc <> b) false bits

let bench_engine_step =
  (* One synchronous step of the Prop 2.3 generic protocol on a 64-ring. *)
  let n = 60 in
  let g = Builders.ring_bi n in
  let p = Generic.make g parity in
  let input = Array.init n (fun i -> i mod 3 = 0) in
  let config = Protocol.uniform_config p (Array.make (n + 1) false) in
  let active = List.init n Fun.id in
  Test.make ~name:"engine/step generic ring60"
    (Staged.stage (fun () -> ignore (Engine.step p ~input config ~active)))

let bench_engine_stabilize =
  (* Full synchronous stabilization of the generic protocol on a 16-ring. *)
  let n = 16 in
  let g = Builders.ring_bi n in
  let p = Generic.make g parity in
  let input = Array.init n (fun i -> i mod 2 = 0) in
  let init = Protocol.uniform_config p (Array.make (n + 1) true) in
  let schedule = Schedule.synchronous n in
  Test.make ~name:"engine/stabilize generic ring16"
    (Staged.stage (fun () ->
         ignore
           (Engine.run_until_stable p ~input ~init ~schedule
              ~max_steps:(4 * n * n))))

let bench_checker =
  (* Exhaustive label 2-stabilization check of Example 1 on K_3. *)
  let p = Clique_example.make 3 in
  let input = Clique_example.input 3 in
  Test.make ~name:"checker/example1 n=3 r=2"
    (Staged.stage (fun () ->
         ignore (Checker.check_label p ~input ~r:2 ~max_states:1_000_000)))

let bench_circuit_eval =
  let c = Circuit.majority 64 in
  let x = Array.init 64 (fun i -> i mod 2 = 0) in
  Test.make ~name:"circuit/eval majority64"
    (Staged.stage (fun () -> ignore (Circuit.eval c x)))

let bench_bp_eval =
  let bp = Bp.majority 64 in
  let x = Array.init 64 (fun i -> i mod 3 = 0) in
  Test.make ~name:"bp/eval majority64"
    (Staged.stage (fun () -> ignore (Bp.eval bp x)))

let bench_snake_search =
  Test.make ~name:"snake/search d=4 exact"
    (Staged.stage (fun () -> ignore (Snake.search 4 ~node_budget:max_int)))

let bench_counter_step =
  let t = Stateless_counter.D_counter.make ~n:9 ~d:16 () in
  let p = Stateless_counter.D_counter.protocol t in
  let input = Stateless_counter.D_counter.input t in
  let config = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  let active = List.init 9 Fun.id in
  Test.make ~name:"counter/step d-counter n=9"
    (Staged.stage (fun () -> ignore (Engine.step p ~input config ~active)))

let bench_compile_run =
  let t = Stateless_compile.Compile.make (Circuit.parity 3) in
  let x = [| true; false; true |] in
  Test.make ~name:"compile/run parity3 ring"
    (Staged.stage (fun () -> ignore (Stateless_compile.Compile.run t x)))

let micro_tests =
  [
    bench_engine_step; bench_engine_stabilize; bench_checker;
    bench_circuit_eval; bench_bp_eval; bench_snake_search;
    bench_counter_step; bench_compile_run;
  ]

let run_micro_benchmarks () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "Micro-benchmarks (Bechamel, monotonic clock)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time_ns ] ->
              Printf.printf "  %-36s %12.1f ns/run\n" name time_ns
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    micro_tests

(* ------------------------------------------------------------------ *)
(* Checker benchmark — machine-readable BENCH_checker.json             *)
(* ------------------------------------------------------------------ *)

type checker_case = {
  cc_name : string;
  cc_fast_s : float;  (* wall seconds per run, memoized CSR checker *)
  cc_naive_s : float;  (* wall seconds per run, naive reference *)
  cc_reps : int;
  cc_states : int;
  cc_edges : int;
  cc_hits : int;
  cc_misses : int;
  cc_verdict : string;
}

let verdict_name = function
  | Checker.Stabilizing -> "stabilizing"
  | Checker.Oscillating _ -> "oscillating"
  | Checker.Too_large _ -> "too_large"

(* [--smoke] shrinks every rep/seed count and timing window to CI-sized
   values: the point is that the bench binaries and JSON writers cannot
   bitrot, not the numbers. *)
let smoke = Array.exists (String.equal "--smoke") Sys.argv

(* [--batch] re-runs every lab campaign through the batched SoA kernel at
   K = 16 (domains from PARRUN_DOMAINS when set) and records whether the
   results matched the per-instance campaigns exactly; the engine bench
   additionally measures aggregate lock-step throughput. *)
let batch_flag = Array.exists (String.equal "--batch") Sys.argv
let batch_k = 16

let batch_domains () =
  match Parrun.env_domains () with Some d -> d | None -> 1

(* Wall time per run: one discarded warm-up run, then the minimum over
   several batches of the per-run mean within each batch. The mean inside
   a batch absorbs clock granularity on sub-microsecond runs; min-of-N
   across batches filters one-sided noise (GC pauses, scheduler
   preemption), which a single long mean folds into the estimate. *)
let time_runs f =
  ignore (f ());
  let batches = if smoke then 2 else 3 in
  let window = if smoke then 0.01 else 0.1 in
  let best = ref infinity in
  let total_reps = ref 0 in
  for _ = 1 to batches do
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < window do
      ignore (f ());
      incr reps;
      elapsed := Unix.gettimeofday () -. t0
    done;
    total_reps := !total_reps + !reps;
    let per_run = !elapsed /. float !reps in
    if per_run < !best then best := per_run
  done;
  (!best, !total_reps)

let checker_case ~name ~fast ~naive =
  let fast_s, reps = time_runs fast in
  let stats =
    match Checker.last_stats () with
    | Some s -> s
    | None -> failwith "checker bench: no stats recorded"
  in
  let naive_s, _ = time_runs naive in
  {
    cc_name = name;
    cc_fast_s = fast_s;
    cc_naive_s = naive_s;
    cc_reps = reps;
    cc_states = stats.Checker.states;
    cc_edges = stats.Checker.edges;
    cc_hits = stats.Checker.memo_hits;
    cc_misses = stats.Checker.memo_misses;
    cc_verdict = verdict_name (fast ());
  }

(* One symmetry-reduced exploration, timed as a single run (the large
   instances are far too big to repeat inside a timing window; the small
   ones exist to anchor the reduction factor, not the clock). *)
type sym_row = {
  sy_name : string;
  sy_group : int;  (* automorphism group order *)
  sy_wall_s : float;
  sy_states : int;  (* orbit representatives explored *)
  sy_full : int;  (* unreduced states certified *)
  sy_verdict : string;
  sy_replay_ok : bool;
}

let sym_checker_row ~name sym p ~input ~r ~max_states =
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let v = Checker.check_label ~symmetry:sym p ~input ~r ~max_states in
  let wall = Unix.gettimeofday () -. t0 in
  let states, full =
    match v with
    | Checker.Too_large _ -> (0, 0)
    | Checker.Stabilizing | Checker.Oscillating _ ->
        let s = Option.get (Checker.last_stats ()) in
        (s.Checker.states, s.Checker.full_states)
  in
  let replay_ok =
    match v with
    | Checker.Oscillating w -> Checker.replay p ~input w
    | Checker.Stabilizing | Checker.Too_large _ -> true
  in
  let row =
    {
      sy_name = name;
      sy_group = Stateless_checker.Symmetry.order sym;
      sy_wall_s = wall;
      sy_states = states;
      sy_full = full;
      sy_verdict = verdict_name v;
      sy_replay_ok = replay_ok;
    }
  in
  Printf.printf
    "  sym %-24s |G|=%-3d %8.3f s  %9d reps certify %9d states (%5.1fx)  \
     %-11s replay=%b\n"
    row.sy_name row.sy_group row.sy_wall_s row.sy_states row.sy_full
    (if states = 0 then 0. else float full /. float states)
    row.sy_verdict row.sy_replay_ok;
  row

let run_checker_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf
    "Checker benchmark (memoized CSR explorer vs naive reference)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  (* Whatever ran before (Bechamel in particular) leaves a large, fragmented
     major heap that penalizes the allocation-light fast path much more than
     the naive one; compact so the recorded ratios don't depend on it. *)
  Gc.compact ();
  let k3 = Clique_example.make 3 and k3_in = Clique_example.input 3 in
  let k4 = Clique_example.make 4 and k4_in = Clique_example.input 4 in
  (* Unidirectional 5-ring where each node copies its incoming label:
     boolean labels keep the states-graph enumerable (2^5 labelings). *)
  let ring5 : (unit, bool) Protocol.t =
    {
      Protocol.name = "copy-ring-uni-5";
      graph = Builders.ring_uni 5;
      space = Label.bool;
      react = (fun _ () incoming -> ([| incoming.(0) |], 0));
    }
  in
  let ring5_in = Array.make 5 () in
  let cases =
    [
      checker_case ~name:"example1_k3_r2"
        ~fast:(fun () ->
          Checker.check_label k3 ~input:k3_in ~r:2 ~max_states:1_000_000)
        ~naive:(fun () ->
          Checker.Naive.check_label k3 ~input:k3_in ~r:2
            ~max_states:1_000_000);
      checker_case ~name:"example1_k4_r2"
        ~fast:(fun () ->
          Checker.check_label k4 ~input:k4_in ~r:2 ~max_states:2_000_000)
        ~naive:(fun () ->
          Checker.Naive.check_label k4 ~input:k4_in ~r:2
            ~max_states:2_000_000);
      checker_case ~name:"copy_ring_uni5_r2"
        ~fast:(fun () ->
          Checker.check_label ring5 ~input:ring5_in ~r:2
            ~max_states:2_000_000)
        ~naive:(fun () ->
          Checker.Naive.check_label ring5 ~input:ring5_in ~r:2
            ~max_states:2_000_000);
    ]
  in
  List.iter
    (fun c ->
      Printf.printf
        "  %-26s %10.6f s/run  (naive %10.6f, %5.1fx)  %-11s %d states\n"
        c.cc_name c.cc_fast_s c.cc_naive_s (c.cc_naive_s /. c.cc_fast_s)
        c.cc_verdict c.cc_states)
    cases;
  (* Symmetry-reduced frontier: the quotient explorer certifies the full
     unreduced states-graph while interning one representative per orbit.
     The large rows are the whole point — instances two to three orders
     of magnitude beyond the unreduced K4 baseline (6852 states), one of
     them past the Stateset direct-map budget so the open-addressing path
     runs in production, not just in tests. Skipped under --smoke. *)
  let sym_rows =
    (* Bind in order: list elements evaluate right-to-left, and the rows
       must print as they run. *)
    let k4sym = Stateless_checker.Symmetry.clique k4.Protocol.graph in
    let s1 =
      sym_checker_row ~name:"example1_k4_r2_sym" k4sym k4 ~input:k4_in ~r:2
        ~max_states:2_000_000
    in
    let s2 =
      sym_checker_row ~name:"example1_k4_r3_sym" k4sym k4 ~input:k4_in ~r:3
        ~max_states:2_000_000
    in
    if smoke then [ s1; s2 ]
    else
      (* 13 labels on the unidirectional 5-ring: 13^5 * 2^5 = 11.9M
         states, quotiented by the 5 rotations. *)
      let ring13 : (unit, int) Protocol.t =
        {
          Protocol.name = "copy-ring-uni-5-c13";
          graph = Builders.ring_uni 5;
          space = Label.int 13;
          react = (fun _ () incoming -> ([| incoming.(0) |], incoming.(0)));
        }
      in
      let ring13_sym =
        Stateless_checker.Symmetry.ring ring13.Protocol.graph
      in
      let s3 =
        sym_checker_row ~name:"copy_ring_uni5_c13_r2_sym" ring13_sym ring13
          ~input:(Array.make 5 ()) ~r:2 ~max_states:12_000_000
      in
      (* 2^20 * 2^5 = 33.5M states > Stateset.direct_cap: hashed mode. *)
      let k5 = Clique_example.make 5 and k5_in = Clique_example.input 5 in
      let k5sym = Stateless_checker.Symmetry.clique k5.Protocol.graph in
      let s4 =
        sym_checker_row ~name:"example1_k5_r2_sym" k5sym k5 ~input:k5_in ~r:2
          ~max_states:40_000_000
      in
      [ s1; s2; s3; s4 ]
  in
  let count v =
    List.length (List.filter (fun c -> String.equal c.cc_verdict v) cases)
  in
  Bench_json.to_file "BENCH_checker.json" (fun oc ->
  Bench_json.write ~benchmark:"checker"
    ~host:(Bench_json.host ~domains:1 ())
    oc
    (fun oc ->
      Printf.fprintf oc
        "  \"verdict_counts\": { \"stabilizing\": %d, \"oscillating\": %d, \
         \"too_large\": %d },\n"
        (count "stabilizing") (count "oscillating") (count "too_large");
      Printf.fprintf oc "  \"experiments\": [\n";
      List.iteri
        (fun i c ->
          let hit_rate =
            if c.cc_hits + c.cc_misses = 0 then 0.
            else float c.cc_hits /. float (c.cc_hits + c.cc_misses)
          in
          Printf.fprintf oc
            "    { \"name\": %S, \"wall_s_per_run\": %.9f, \"reps\": %d,\n\
            \      \"naive_wall_s_per_run\": %.9f, \"speedup_vs_naive\": \
             %.2f,\n\
            \      \"states\": %d, \"edges\": %d, \"states_per_sec\": %.0f,\n\
            \      \"memo_hits\": %d, \"memo_misses\": %d, \
             \"memo_hit_rate\": %.4f,\n\
            \      \"verdict\": %S }%s\n"
            c.cc_name c.cc_fast_s c.cc_reps c.cc_naive_s
            (c.cc_naive_s /. c.cc_fast_s)
            c.cc_states c.cc_edges
            (float c.cc_states /. c.cc_fast_s)
            c.cc_hits c.cc_misses hit_rate c.cc_verdict
            (if i = List.length cases - 1 then "" else ","))
        cases;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"symmetry\": [\n";
      List.iteri
        (fun i s ->
          Printf.fprintf oc
            "    { \"name\": %S, \"group_order\": %d, \"wall_s\": %.6f,\n\
            \      \"states\": %d, \"full_states\": %d, \"reduction\": \
             %.2f,\n\
            \      \"full_states_per_sec\": %.0f, \"verdict\": %S, \
             \"replay_ok\": %b }%s\n"
            s.sy_name s.sy_group s.sy_wall_s s.sy_states s.sy_full
            (if s.sy_states = 0 then 0.
             else float s.sy_full /. float s.sy_states)
            (if s.sy_wall_s = 0. then 0. else float s.sy_full /. s.sy_wall_s)
            s.sy_verdict s.sy_replay_ok
            (if i = List.length sym_rows - 1 then "" else ","))
        sym_rows;
      Printf.fprintf oc "  ]\n"));
  Printf.printf "  [wrote BENCH_checker.json]\n"

(* ------------------------------------------------------------------ *)
(* Fault-recovery campaign — machine-readable BENCH_faults.json        *)
(* ------------------------------------------------------------------ *)

let run_fault_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf
    "Fault-recovery campaign (recovery steps vs corruption fraction)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let seeds = if smoke then 5 else 30
  and max_steps = if smoke then 2_000 else 10_000 in
  let counts = ref zero_counts in
  let campaigns =
    List.map
      (fun sc ->
        let c, cnt = Faultlab.run_matrix ~seeds ~max_steps ~domains:1 sc in
        counts := add_counts !counts cnt;
        c)
      (Faultlab.default_scenarios ())
  in
  List.iter (Faultlab.print_campaign stdout) campaigns;
  let batch =
    if not batch_flag then None
    else begin
      let domains = batch_domains () in
      let batched =
        List.map
          (Faultlab.run ~seeds ~max_steps ~domains ~batch:batch_k)
          (Faultlab.default_scenarios ())
      in
      let identical = batched = campaigns in
      Printf.printf "  batched (k=%d, %d domains) identical: %b\n" batch_k
        domains identical;
      Some (batch_k, identical)
    end
  in
  Bench_json.to_file "BENCH_faults.json" (fun oc ->
      Faultlab.write_json
        ~host:(Bench_json.host ~domains:1 ())
        ?batch ~cells:(cell_triple !counts) oc campaigns);
  Printf.printf "  [wrote BENCH_faults.json]\n"

(* ------------------------------------------------------------------ *)
(* Adversarial-channel campaign — machine-readable BENCH_netlab.json   *)
(* ------------------------------------------------------------------ *)

let run_netlab_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf
    "Adversarial-channel campaign (degradation & recovery vs fault level)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let seeds = if smoke then 4 else 25
  and storm = if smoke then 80 else 400
  and max_steps = if smoke then 2_000 else 10_000 in
  let budget = { Netlab.k = 4; window = 8 } in
  let counts = ref zero_counts in
  let campaigns =
    List.map
      (fun sc ->
        let c, cnt =
          Netlab.run_matrix ~seeds ~storm ~max_steps ~domains:1 ~budget sc
        in
        counts := add_counts !counts cnt;
        c)
      (Netlab.default_scenarios ())
  in
  List.iter (Netlab.print_campaign stdout) campaigns;
  let batch =
    if not batch_flag then None
    else begin
      let domains = batch_domains () in
      let batched =
        List.map
          (Netlab.run ~seeds ~storm ~max_steps ~domains ~batch:batch_k
             ~budget)
          (Netlab.default_scenarios ())
      in
      let identical = batched = campaigns in
      Printf.printf "  batched (k=%d, %d domains) identical: %b\n" batch_k
        domains identical;
      Some (batch_k, identical)
    end
  in
  (* Exhaustive bounded-adversary certification on the instances small
     enough to enumerate: the clique flips at k = 1, the copy ring keeps
     its outputs for any single-edge rewrite per window. *)
  let cert instance p input ~r ~k ~window =
    let verdict_name = function
      | Netcheck.Stabilizing -> "stabilizing"
      | Netcheck.Oscillating _ -> "oscillating"
      | Netcheck.Too_large _ -> "too_large"
    in
    let v = Netcheck.check_output p ~input ~r ~k ~window ~max_states:2_000_000 in
    let states, edges =
      match Netcheck.last_stats () with
      | Some s -> (s.Netcheck.states, s.Netcheck.edges)
      | None -> (0, 0)
    in
    Printf.printf "  certify %-22s r=%d k=%d w=%d -> %-11s (%d states)\n"
      instance r k window (verdict_name v) states;
    Printf.sprintf
      "{ \"instance\": %S, \"mode\": \"output\", \"r\": %d, \"k\": %d, \
       \"window\": %d, \"verdict\": %S, \"states\": %d, \"edges\": %d }"
      instance r k window (verdict_name v) states edges
  in
  let k3 = Stateless_core.Clique_example.make 3 in
  let k3_input = Array.make 3 () in
  let copy : (unit, bool) Protocol.t =
    {
      Protocol.name = "copy_ring_3";
      graph = Builders.ring_uni 3;
      space = Label.bool;
      react = (fun _ () incoming -> ([| incoming.(0) |], 0));
    }
  in
  let copy_input = Array.make 3 () in
  let certification =
    [
      cert "clique_k3" k3 k3_input ~r:1 ~k:0 ~window:1;
      cert "clique_k3" k3 k3_input ~r:1 ~k:1 ~window:1;
      cert "copy_ring_3" copy copy_input ~r:1 ~k:1 ~window:1;
    ]
  in
  Bench_json.to_file "BENCH_netlab.json" (fun oc ->
      Netlab.write_json
        ~host:(Bench_json.host ~domains:1 ())
        ?batch ~cells:(cell_triple !counts) ~certification oc campaigns);
  Printf.printf "  [wrote BENCH_netlab.json]\n"

(* ------------------------------------------------------------------ *)
(* Byzantine-node campaign — machine-readable BENCH_byz.json           *)
(* ------------------------------------------------------------------ *)

let run_byz_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf
    "Byzantine-node campaign (deviation, containment radius & recovery)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let seeds = if smoke then 4 else 25
  and attack = if smoke then 80 else 400
  and max_steps = if smoke then 2_000 else 10_000 in
  let counts = ref zero_counts in
  let campaigns =
    List.concat_map
      (fun strategy ->
        List.map
          (fun sc ->
            let c, cnt =
              Byzlab.run_matrix ~seeds ~attack ~max_steps ~domains:1 ~strategy
                sc
            in
            counts := add_counts !counts cnt;
            c)
          (Byzlab.default_scenarios ()))
      [ Byzlab.Seeded_random; Byzlab.Anti_majority ]
  in
  List.iter (Byzlab.print_campaign stdout) campaigns;
  let batch =
    if not batch_flag then None
    else begin
      let domains = batch_domains () in
      let batched =
        List.concat_map
          (fun strategy ->
            List.map
              (Byzlab.run ~seeds ~attack ~max_steps ~domains ~batch:batch_k
                 ~strategy)
              (Byzlab.default_scenarios ()))
          [ Byzlab.Seeded_random; Byzlab.Anti_majority ]
      in
      let identical = batched = campaigns in
      Printf.printf "  batched (k=%d, %d domains) identical: %b\n" batch_k
        domains identical;
      Some (batch_k, identical)
    end
  in
  (* Exhaustive (r,B)-certification on the instances small enough to
     enumerate every Byzantine behavior: the clique diverges as soon as
     one node turns Byzantine (an adversarial schedule plus adversarial
     labels un-stabilizes both neighbours), while the B = {} rows must
     coincide with the plain checker's verdicts. Oscillation witnesses
     are replayed on both execution engines before being recorded. *)
  let cert instance p input ~byz ~r =
    let verdict_name = function
      | Byzcheck.Stabilizing -> "stabilizing"
      | Byzcheck.Oscillating _ -> "oscillating"
      | Byzcheck.Too_large _ -> "too_large"
    in
    let v = Byzcheck.check_output p ~input ~byz ~r ~max_states:2_000_000 in
    let replay_ok =
      match v with
      | Byzcheck.Oscillating w ->
          Byzcheck.replay p ~input ~byz w
          && Byzcheck.replay_packed p ~input ~byz w
      | Byzcheck.Stabilizing | Byzcheck.Too_large _ -> true
    in
    let states, edges =
      match Byzcheck.last_stats () with
      | Some s -> (s.Byzcheck.states, s.Byzcheck.edges)
      | None -> (0, 0)
    in
    let radius_json, stabilized =
      match Byzcheck.containment p ~input ~byz ~r ~max_states:2_000_000 with
      | Ok c ->
          ( (match c.Byzcheck.radius with
            | None -> "null"
            | Some d -> string_of_int d),
            c.Byzcheck.stabilized_fraction )
      | Error _ -> ("null", 1.0)
    in
    let byz_s = String.concat "," (List.map string_of_int byz) in
    Printf.printf
      "  certify %-14s B={%s} r=%d -> %-11s replay=%b radius=%s (%d states)\n"
      instance byz_s r (verdict_name v) replay_ok radius_json states;
    Printf.sprintf
      "{ \"instance\": %S, \"mode\": \"output\", \"r\": %d, \"byz\": [%s], \
       \"byz_count\": %d, \"verdict\": %S, \"replay_ok\": %b, \
       \"stabilized_fraction\": %.4f, \"radius\": %s, \"states\": %d, \
       \"edges\": %d }"
      instance r byz_s (List.length byz) (verdict_name v) replay_ok stabilized
      radius_json states edges
  in
  let k3 = Clique_example.make 3 in
  let k3_input = Clique_example.input 3 in
  let copy = Proptest.copy_ring ~name:"copy_ring_3" 3 in
  let copy_input = Array.make 3 () in
  (* Bind in order: list elements evaluate right-to-left, and the rows
     print as they certify. *)
  let c1 = cert "clique_k3" k3 k3_input ~byz:[] ~r:1 in
  let c2 = cert "clique_k3" k3 k3_input ~byz:[ 0 ] ~r:1 in
  let c3 = cert "clique_k3" k3 k3_input ~byz:[ 0; 1 ] ~r:1 in
  let c4 = cert "copy_ring_3" copy copy_input ~byz:[] ~r:1 in
  let c5 = cert "copy_ring_3" copy copy_input ~byz:[ 0 ] ~r:1 in
  let certification = [ c1; c2; c3; c4; c5 ] in
  Bench_json.to_file "BENCH_byz.json" (fun oc ->
      Byzlab.write_json
        ~host:(Bench_json.host ~domains:1 ())
        ?batch ~cells:(cell_triple !counts) ~certification oc campaigns);
  Printf.printf "  [wrote BENCH_byz.json]\n"

(* ------------------------------------------------------------------ *)
(* Engine benchmark — machine-readable BENCH_engine.json               *)
(* ------------------------------------------------------------------ *)

type efixture =
  | Fixture : {
      ef_name : string;
      ef_p : ('x, 'l) Protocol.t;
      ef_input : 'x array;
      ef_init : 'l Protocol.config;
      ef_schedule : Schedule.t;
    }
      -> efixture

let engine_fixtures () =
  let k4 = Clique_example.make 4 in
  let dc = Stateless_counter.D_counter.make ~n:9 ~d:16 () in
  let dcp = Stateless_counter.D_counter.protocol dc in
  let osc = Stateless_games.Feedback.ring_oscillator 5 in
  let tm = Machine.parity 4 in
  let tmp = Machine.protocol_of_machine tm in
  [
    Fixture
      {
        ef_name = "example1_k4";
        ef_p = k4;
        ef_input = Clique_example.input 4;
        ef_init = Clique_example.oscillation_init k4;
        ef_schedule = Schedule.synchronous 4;
      };
    Fixture
      {
        ef_name = "d_counter_n9_d16";
        ef_p = dcp;
        ef_input = Stateless_counter.D_counter.input dc;
        ef_init =
          Protocol.uniform_config dcp (dcp.Protocol.space.Label.decode 0);
        ef_schedule = Schedule.synchronous 9;
      };
    Fixture
      {
        ef_name = "ring_oscillator_5";
        ef_p = osc;
        ef_input = Array.make 5 ();
        ef_init = Protocol.uniform_config osc false;
        ef_schedule = Schedule.round_robin 5;
      };
    Fixture
      {
        ef_name = "tm_parity_4_ring";
        ef_p = tmp;
        ef_input = [| true; false; true; false |];
        ef_init =
          Protocol.uniform_config tmp (tmp.Protocol.space.Label.decode 0);
        ef_schedule = Schedule.synchronous 4;
      };
  ]

type engine_row = {
  er_name : string;
  er_schedule : string;
  er_steps : int;
  er_boxed_sps : float;  (* boxed Engine.run steps per second *)
  er_packed_sps : float;  (* packed Kernel.run_into steps per second *)
}

let engine_row steps (Fixture f) =
  let p = f.ef_p and input = f.ef_input in
  let schedule = f.ef_schedule and init = f.ef_init in
  let boxed () = ignore (Engine.run p ~input ~init ~schedule ~steps) in
  let kern = Kernel.create p ~input in
  let labels = Array.make (Protocol.num_edges p) 0 in
  let outputs = Array.make (Protocol.num_nodes p) 0 in
  let packed () =
    Kernel.load kern init ~labels ~outputs;
    Kernel.run_into kern ~labels ~outputs ~schedule ~steps
  in
  let boxed_s, _ = time_runs boxed in
  let packed_s, _ = time_runs packed in
  {
    er_name = f.ef_name;
    er_schedule = schedule.Schedule.name;
    er_steps = steps;
    er_boxed_sps = float steps /. boxed_s;
    er_packed_sps = float steps /. packed_s;
  }

let run_engine_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "Engine benchmark (boxed Engine.step vs packed Kernel)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  Gc.compact ();
  let steps = if smoke then 500 else 5_000 in
  let rows = List.map (engine_row steps) (engine_fixtures ()) in
  List.iter
    (fun r ->
      Printf.printf "  %-22s %-12s %12.0f steps/s boxed %12.0f packed (%5.1fx)\n"
        r.er_name r.er_schedule r.er_boxed_sps r.er_packed_sps
        (r.er_packed_sps /. r.er_boxed_sps))
    rows;
  (* Aggregate lock-step throughput: K independent instances of one
     campaign fixture, damaged by Fault.corrupt, stepped through the
     batched planes against one shared kernel. Throughput counts
     instance-steps (K * sweeps / wall); the total instance-step budget is
     fixed, so every K does the same amount of work and the K = 1 row is
     the per-instance baseline the larger rows amortize against. Two
     fixtures bracket the schedule spectrum: the synchronous clique pays
     mostly per-instance data work (modest amortization), while the
     round-robin oscillator pays mostly per-step fixed costs — schedule
     dispatch, carry-over, tier setup — which the batch spreads over K.
     Numbers are from this host: a single shared core, so the win is
     locality and dispatch amortization, not parallelism. *)
  let batch_bench (Fixture f) =
    let p = f.ef_p in
    let schedule = f.ef_schedule in
    let kern = Kernel.create p ~input:f.ef_input in
    let bt = Batch.create kern in
    let inits_for k =
      Array.init k (fun t -> Fault.corrupt p ~seed:t ~fraction:0.5 f.ef_init)
    in
    let total = if smoke then 1 lsl 14 else 1 lsl 20 in
    let ks = if smoke then [ 1; 16 ] else [ 1; 16; 256; 4096 ] in
    let rows =
      List.map
        (fun k ->
          let sweeps = max 1 (total / k) in
          let inits = inits_for k in
          let run_batched () =
            Batch.load_block bt inits;
            for s = 0 to sweeps - 1 do
              Batch.step bt ~active:(schedule.Schedule.active s)
            done
          in
          let wall, _ = time_runs run_batched in
          (k, sweeps, float (k * sweeps) /. wall))
        ks
    in
    (* The timed loop, checked: the K = 16 planes after [sweeps] lock-step
       sweeps must equal per-instance Kernel.run of the same length. *)
    let identical =
      let k = 16 and sweeps = 64 in
      let inits = inits_for k in
      Batch.load_block bt inits;
      for s = 0 to sweeps - 1 do
        Batch.step bt ~active:(schedule.Schedule.active s)
      done;
      Array.for_all Fun.id
        (Array.init k (fun j ->
             Kernel.run kern ~init:inits.(j) ~schedule ~steps:sweeps
             = Batch.store bt ~j))
    in
    (f.ef_name, schedule.Schedule.name, rows, identical)
  in
  let batch_scenarios =
    List.map batch_bench
      (List.filter
         (fun (Fixture f) ->
           List.mem f.ef_name [ "example1_k4"; "ring_oscillator_5" ])
         (engine_fixtures ()))
  in
  List.iter
    (fun (name, _, rows, identical) ->
      let sps1 = match rows with (_, _, s) :: _ -> s | [] -> 1. in
      List.iter
        (fun (k, sweeps, sps) ->
          Printf.printf
            "  batch %-18s k=%-5d %8d sweeps %12.0f inst-steps/s (%5.2fx \
             vs k=1)\n"
            name k sweeps sps (sps /. sps1))
        rows;
      Printf.printf "  batch %-18s identical to per-instance kernel: %b\n"
        name identical)
    batch_scenarios;
  (* Campaign wall time, 1 domain vs N domains, same work — and the
     determinism contract checked on the real workload: the aggregated
     campaigns must be structurally identical. PARRUN_DOMAINS overrides
     the parallel leg's domain count, so CI can pin it. *)
  let domains_n =
    match Parrun.env_domains () with
    | Some d when d >= 2 -> d
    | Some _ | None -> max 2 (min 4 (Domain.recommended_domain_count ()))
  in
  (* Enough seeds that each leg runs tens of milliseconds: the pool's
     fixed cost (one wake-up per scenario) must be amortized, not
     measured. What remains on a single-core host is the genuine cost of
     two domains time-slicing one CPU (stop-the-world minor-GC syncs);
     speedup > 1 requires actual cores. *)
  let seeds = if smoke then 5 else 500
  and max_steps = if smoke then 2_000 else 10_000 in
  let campaign domains =
    let t0 = Unix.gettimeofday () in
    let cs =
      List.map
        (Faultlab.run ~seeds ~max_steps ~domains)
        (Faultlab.default_scenarios ())
    in
    (cs, Unix.gettimeofday () -. t0)
  in
  (* One discarded warm-up starts the domain pool and faults the kernels'
     tables in; then the 1-domain and N-domain legs alternate and each
     keeps its fastest rep, so drift (GC, thermal) hits both sides
     symmetrically instead of penalizing whichever leg ran last. *)
  ignore (campaign domains_n);
  let reps = if smoke then 2 else 3 in
  let seq = ref [] and par = ref [] in
  let wall_1 = ref infinity and wall_n = ref infinity in
  for _ = 1 to reps do
    let cs, w1 = campaign 1 in
    if w1 < !wall_1 then begin
      wall_1 := w1;
      seq := cs
    end;
    let cp, wn = campaign domains_n in
    if wn < !wall_n then begin
      wall_n := wn;
      par := cp
    end
  done;
  let seq = !seq and par = !par in
  let wall_1 = !wall_1 and wall_n = !wall_n in
  let identical = seq = par in
  Printf.printf
    "  campaign (%d seeds): %.3f s at 1 domain, %.3f s at %d domains \
     (%.2fx), identical: %b\n"
    seeds wall_1 wall_n domains_n (wall_1 /. wall_n) identical;
  Bench_json.to_file "BENCH_engine.json" (fun oc ->
  Bench_json.write ~benchmark:"engine"
    ~host:(Bench_json.host ~domains:domains_n ())
    oc
    (fun oc ->
      Printf.fprintf oc "  \"fixtures\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    { \"name\": %S, \"schedule\": %S, \"steps_per_rep\": %d,\n\
            \      \"boxed_steps_per_sec\": %.0f, \"packed_steps_per_sec\": \
             %.0f, \"speedup\": %.2f }%s\n"
            r.er_name r.er_schedule r.er_steps r.er_boxed_sps r.er_packed_sps
            (r.er_packed_sps /. r.er_boxed_sps)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"batch\": [\n";
      List.iteri
        (fun si (name, sched, rows, identical) ->
          let sps1 = match rows with (_, _, s) :: _ -> s | [] -> 1. in
          Printf.fprintf oc
            "    { \"scenario\": %S, \"schedule\": %S, \"identical\": %b, \
             \"rows\": [\n"
            name sched identical;
          List.iteri
            (fun i (k, sweeps, sps) ->
              Printf.fprintf oc
                "      { \"k\": %d, \"sweeps\": %d, \"agg_steps_per_sec\": \
                 %.0f, \"speedup_vs_k1\": %.2f }%s\n"
                k sweeps sps (sps /. sps1)
                (if i = List.length rows - 1 then "" else ","))
            rows;
          Printf.fprintf oc "    ] }%s\n"
            (if si = List.length batch_scenarios - 1 then "" else ","))
        batch_scenarios;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"campaign\": { \"seeds\": %d, \"max_steps\": %d, \"domains\": \
         %d,\n\
        \    \"wall_s_domains_1\": %.4f, \"wall_s_domains_n\": %.4f, \
         \"speedup\": %.2f, \"identical\": %b }\n"
        seeds max_steps domains_n wall_1 wall_n (wall_1 /. wall_n) identical));
  Printf.printf "  [wrote BENCH_engine.json]\n"

(* ------------------------------------------------------------------ *)
(* Event-driven simulator — machine-readable BENCH_sim.json            *)
(* ------------------------------------------------------------------ *)

let run_sim_bench () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf
    "Event-driven continuous-time simulator (events/sec vs network size)\n";
  Printf.printf "%s\n" (String.make 78 '-');
  let contagion = Simlab.Contagion { threshold = 0.5; seed_frac = 0.01 } in
  let const02 = (Eventsim.Const 0.2, "const:0.2")
  and exp02 = (Eventsim.Exp 0.2, "exp:0.2") in
  (* VmHWM is monotone over the process lifetime, so rows run in
     ascending node count: each row's peak_rss_kb then reflects its own
     instance rather than an earlier, larger one. *)
  let rows =
    if smoke then
      [
        (contagion, Simlab.Ring, const02, 10_000, 5.0);
        (Simlab.Spp_gadget, Simlab.Ring, const02, 10_000, 5.0);
        (contagion, Simlab.Ring, const02, 100_000, 2.0);
        (contagion, Simlab.Ring, const02, 1_000_000, 1.0);
        (Simlab.Spp_gadget, Simlab.Ring, const02, 1_000_000, 1.0);
      ]
    else
      [
        (contagion, Simlab.Ring, const02, 10_000, 50.0);
        (Simlab.Spp_gadget, Simlab.Ring, const02, 10_000, 50.0);
        (contagion, Simlab.Ring, const02, 100_000, 20.0);
        (contagion, Simlab.Erdos_renyi 4.0, exp02, 100_000, 10.0);
        (contagion, Simlab.Ring, const02, 1_000_000, 5.0);
        (Simlab.Spp_gadget, Simlab.Ring, const02, 1_000_000, 5.0);
      ]
  in
  let measured =
    List.map
      (fun (scenario, topology, (latency, lat_name), nodes, horizon) ->
        let inst =
          Simlab.build scenario topology ~graph_seed:42 ~nodes ~rate:1.0
            ~latency ~faults:Eventsim.no_faults
        in
        let t0 = Unix.gettimeofday () in
        let r = inst.Simlab.run ~seed:1 ~horizon in
        let wall = Unix.gettimeofday () -. t0 in
        let rss = Bench_json.peak_rss_kb () in
        let evs =
          if wall > 0. then float_of_int r.Simlab.events /. wall else 0.
        in
        Printf.printf
          "  %-16s %-10s %-10s n=%-8d h=%-4g %9d ev %7.2fs %10.0f ev/s \
           rss=%dkB\n"
          (Simlab.scenario_name scenario)
          (Simlab.topology_name topology)
          lat_name inst.Simlab.nodes horizon r.Simlab.events wall evs rss;
        (scenario, topology, lat_name, inst, horizon, r, wall, evs, rss))
      rows
  in
  (* Cross-domain determinism: the same campaign sharded over one domain
     and over PARRUN_DOMAINS must produce identical result arrays (CI's
     grep for "identical": false watches this flag). Losses, duplicates
     and heap-path latencies are all in play so every RNG stream is
     exercised. *)
  let det_inst =
    Simlab.build contagion Simlab.Ring ~graph_seed:42 ~nodes:2_000 ~rate:1.0
      ~latency:(Eventsim.Exp 0.2)
      ~faults:{ Eventsim.no_faults with loss = 0.05; dup = 0.02 }
  in
  let det_runs = 8 and det_horizon = 10.0 in
  let base =
    Simlab.campaign ~domains:1 det_inst ~seed0:1 ~runs:det_runs
      ~horizon:det_horizon
  in
  let domains_n = max 2 (batch_domains ()) in
  let sharded =
    Simlab.campaign ~domains:domains_n det_inst ~seed0:1 ~runs:det_runs
      ~horizon:det_horizon
  in
  (* The same sweep through the campaign orchestrator (horizon-sliced
     deadline polling, matrix-order merge) must also be bit-identical. *)
  let matrix_results, cells =
    Simlab.run_matrix ~domains:domains_n det_inst ~seed0:1 ~runs:det_runs
      ~horizon:det_horizon
  in
  let identical =
    base = sharded && matrix_results = Array.map Option.some base
  in
  Printf.printf
    "  campaign sharded over %d domains identical: %b (orchestrated: %d ok, \
     %d timeout, %d error)\n"
    domains_n identical cells.Campaign.ok cells.Campaign.timeout
    cells.Campaign.error;
  (* Single-core throughput target at 10^5 nodes (constant latency). *)
  let target_nodes = 100_000 and target_evs = 5_000_000.0 in
  let achieved =
    List.fold_left
      (fun acc (scenario, _, lat, inst, _, _, _, evs, _) ->
        match scenario with
        | Simlab.Contagion _
          when inst.Simlab.nodes = target_nodes && lat = "const:0.2" ->
            max acc evs
        | _ -> acc)
      0.0 measured
  in
  Bench_json.to_file "BENCH_sim.json" (fun file_oc ->
      Bench_json.write ~benchmark:"sim"
        ~host:(Bench_json.host ~domains:1 ())
        ~cells:(cell_triple cells) file_oc
        (fun oc ->
      Printf.fprintf oc "  \"rows\": [\n";
      List.iteri
        (fun i (scenario, topology, lat, inst, horizon, r, wall, evs, rss) ->
          Printf.fprintf oc
            "    { \"scenario\": %S, \"topology\": %S, \"latency\": %S, \
             \"nodes\": %d, \"edges\": %d, \"horizon\": %g, \"seed\": 1, \
             \"events\": %d, \"activations\": %d, \"deliveries\": %d, \
             \"metric\": %d, \"wall_s\": %.4f, \"events_per_sec\": %.0f, \
             \"peak_rss_kb\": %d }%s\n"
            (Simlab.scenario_name scenario)
            (Simlab.topology_name topology)
            lat inst.Simlab.nodes inst.Simlab.edges horizon r.Simlab.events
            r.Simlab.activations r.Simlab.deliveries r.Simlab.metric wall
            evs rss
            (if i = List.length measured - 1 then "" else ","))
        measured;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"target\": { \"nodes\": %d, \"min_events_per_sec\": %.0f, \
         \"achieved_events_per_sec\": %.0f, \"met\": %b },\n"
        target_nodes target_evs achieved (achieved >= target_evs);
      Printf.fprintf oc
        "  \"campaign\": { \"runs\": %d, \"domains\": %d, \"identical\": \
         %b }\n"
        det_runs domains_n identical));
  Printf.printf "  [wrote BENCH_sim.json]\n"

(* ------------------------------------------------------------------ *)
(* Chaos + differential-fuzz bench: storm resume identity and fuzzer   *)
(* sensitivity, reported in the same envelope so CI's                  *)
(* '"identical": false' grep guards both invariants.                   *)
(* ------------------------------------------------------------------ *)

let run_chaos_bench () =
  print_endline "\n== chaos storms and differential fuzzing ==";
  let rounds = if smoke then 2 else 4
  and clean_budget = if smoke then 40 else 200
  and mutant_budget = 30 in
  (* Storm every lab codec; each leg must merge identical after a clean
     resume (domains = 2 keeps the pool injection site live). *)
  let storm_seed = 2026 in
  let t0 = Unix.gettimeofday () in
  let reports = Chaoslab.run_storms ~domains:2 ~rounds ~seed:storm_seed () in
  let storm_wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (r : Chaoslab.leg_report) ->
      Printf.printf
        "  storm %-7s crashes %d  degraded %d  injections %-3d resume %s\n"
        r.Chaoslab.leg r.Chaoslab.crashes r.Chaoslab.degraded
        (Chaoslab.injected r.Chaoslab.injections)
        (if r.Chaoslab.identical then "identical" else "DIVERGED"))
    reports;
  (* Clean differential fuzz: zero real divergences expected. *)
  let t1 = Unix.gettimeofday () in
  let clean = Fuzz.run ~seed:42 ~budget:clean_budget () in
  let fuzz_wall = Unix.gettimeofday () -. t1 in
  Printf.printf
    "  fuzz clean: %d scenarios, %d comparisons, %d divergence(s)\n"
    clean.Fuzz.tried clean.Fuzz.comparisons
    (List.length clean.Fuzz.found);
  (* Sensitivity: each planted mutant must be found and shrink small. *)
  let mutants =
    List.map
      (fun m ->
        let rep = Fuzz.run ~mutant:m ~seed:7 ~budget:mutant_budget () in
        let min_size (d : Fuzz.divergence) =
          (d.Fuzz.scenario.Fuzz.nodes, d.Fuzz.scenario.Fuzz.steps)
        in
        let smallest =
          List.fold_left
            (fun acc (f : Fuzz.found) ->
              let c = min_size f.Fuzz.shrunk in
              match acc with Some b when b <= c -> acc | _ -> Some c)
            None rep.Fuzz.found
        in
        Printf.printf
          "  fuzz mutant %-13s found %d  mean shrink ratio %.3f%s\n"
          (Fuzz.mutant_name m)
          (List.length rep.Fuzz.found)
          rep.Fuzz.mean_shrink_ratio
          (match smallest with
          | Some (n, s) ->
              Printf.sprintf "  smallest witness %d nodes / %d steps" n s
          | None -> "");
        (m, rep, smallest))
      [ Fuzz.Stale_read; Fuzz.Dropped_write ]
  in
  let storms_ok =
    List.for_all (fun r -> r.Chaoslab.identical) reports
  and clean_ok = clean.Fuzz.found = []
  and mutants_ok =
    List.for_all (fun (_, rep, _) -> rep.Fuzz.found <> []) mutants
  in
  Bench_json.to_file "BENCH_chaos.json" (fun file_oc ->
      Bench_json.write ~benchmark:"chaos"
        ~host:(Bench_json.host ~domains:2 ())
        file_oc
        (fun oc ->
          Printf.fprintf oc
            "  \"storm\": { \"seed\": %d, \"rounds\": %d, \"wall_s\": %.3f, \
             \"legs\": [\n"
            storm_seed rounds storm_wall;
          List.iteri
            (fun i (r : Chaoslab.leg_report) ->
              Printf.fprintf oc
                "    { \"leg\": %S, \"crashes\": %d, \"degraded\": %d, \
                 \"injections\": %d, \"resume_identical\": %b }%s\n"
                r.Chaoslab.leg r.Chaoslab.crashes r.Chaoslab.degraded
                (Chaoslab.injected r.Chaoslab.injections)
                r.Chaoslab.identical
                (if i = List.length reports - 1 then "" else ","))
            reports;
          Printf.fprintf oc "  ] },\n";
          Printf.fprintf oc
            "  \"fuzz\": { \"seed\": %d, \"budget\": %d, \"comparisons\": \
             %d, \"divergences\": %d, \"wall_s\": %.3f },\n"
            clean.Fuzz.seed clean.Fuzz.budget clean.Fuzz.comparisons
            (List.length clean.Fuzz.found)
            fuzz_wall;
          Printf.fprintf oc "  \"mutants\": [\n";
          List.iteri
            (fun i (m, (rep : Fuzz.report), smallest) ->
              let n, s =
                match smallest with Some (n, s) -> (n, s) | None -> (-1, -1)
              in
              Printf.fprintf oc
                "    { \"mutant\": %S, \"found\": %d, \
                 \"mean_shrink_ratio\": %.4f, \"smallest_nodes\": %d, \
                 \"smallest_steps\": %d }%s\n"
                (Fuzz.mutant_name m)
                (List.length rep.Fuzz.found)
                rep.Fuzz.mean_shrink_ratio n s
                (if i = List.length mutants - 1 then "" else ","))
            mutants;
          Printf.fprintf oc "  ],\n";
          (* The one flag CI greps: false iff any invariant broke. *)
          Printf.fprintf oc "  \"identical\": %b\n"
            (storms_ok && clean_ok && mutants_ok)));
  Printf.printf "  [wrote BENCH_chaos.json]\n"

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  if Array.exists (String.equal "--checker-bench-only") Sys.argv then begin
    run_checker_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--faults-bench-only") Sys.argv then begin
    run_fault_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--engine-bench-only") Sys.argv then begin
    run_engine_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--netlab-bench-only") Sys.argv then begin
    run_netlab_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--byz-bench-only") Sys.argv then begin
    run_byz_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--sim-bench-only") Sys.argv then begin
    run_sim_bench ();
    exit 0
  end;
  if Array.exists (String.equal "--chaos-bench-only") Sys.argv then begin
    run_chaos_bench ();
    exit 0
  end;
  print_endline "Stateless Computation — experiment harness";
  print_endline "(Dolev, Erdmann, Lutz, Schapira, Zair; PODC 2017)";
  List.iter
    (fun (id, run) ->
      let start = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s completed in %.1fs]\n" id
        (Unix.gettimeofday () -. start))
    Experiments.all;
  List.iter
    (fun (id, run) ->
      let start = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s completed in %.1fs]\n" id
        (Unix.gettimeofday () -. start))
    Ablations.all;
  run_micro_benchmarks ();
  run_checker_bench ();
  run_fault_bench ();
  run_netlab_bench ();
  run_byz_bench ();
  run_engine_bench ();
  run_sim_bench ();
  run_chaos_bench ();
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
