module Machine = Stateless_machine.Machine
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let popcount x = Array.fold_left (fun a b -> if b then a + 1 else a) 0 x

let machine_agrees name m reference =
  List.iter
    (fun x ->
      Alcotest.(check bool) name (reference x) (Machine.run m x))
    (all_inputs m.Machine.n)

let test_parity_machine () =
  machine_agrees "parity" (Machine.parity 5) (fun x -> popcount x mod 2 = 1)

let test_majority_machine () =
  machine_agrees "majority" (Machine.majority 5) (fun x -> 2 * popcount x >= 5)

let test_mod_count_machine () =
  machine_agrees "mod3" (Machine.mod_count 5 3) (fun x -> popcount x mod 3 = 0);
  machine_agrees "mod2" (Machine.mod_count 4 2) (fun x -> popcount x mod 2 = 0)

let test_first_equals_last () =
  List.iter
    (fun n ->
      machine_agrees
        (Printf.sprintf "first=last n=%d" n)
        (Machine.first_equals_last n)
        (fun x -> Bool.equal x.(0) x.(n - 1)))
    [ 2; 3; 5 ]

let test_with_advice () =
  let advice = [| true; false; true; true |] in
  machine_agrees "advice" (Machine.with_advice 4 advice) (fun x -> x = advice)

let test_head_in_range () =
  List.iter
    (fun m ->
      for z = 0 to m.Machine.configs - 1 do
        let h = m.Machine.head z in
        check_bool "head in range" true (h >= 0 && h < m.Machine.n)
      done)
    [ Machine.parity 4; Machine.majority 3; Machine.first_equals_last 4 ]

let test_step_total () =
  (* π must be total over Z × {0,1} and stay inside Z. *)
  List.iter
    (fun m ->
      for z = 0 to m.Machine.configs - 1 do
        List.iter
          (fun b ->
            let z' = m.Machine.step z b in
            check_bool "step in range" true (z' >= 0 && z' < m.Machine.configs))
          [ false; true ]
      done)
    [ Machine.parity 4; Machine.majority 3; Machine.mod_count 3 3;
      Machine.first_equals_last 4; Machine.with_advice 3 [| true; true; false |] ]

let test_deciders_halt () =
  (* After |Z| steps on any input the machine is at an absorbing config. *)
  let halts m =
    List.for_all
      (fun x ->
        let z = ref m.Machine.initial in
        for _ = 1 to m.Machine.configs do
          z := m.Machine.step !z x.(m.Machine.head !z)
        done;
        let again = m.Machine.step !z x.(m.Machine.head !z) in
        again = !z)
      (all_inputs m.Machine.n)
  in
  check_bool "parity halts" true (halts (Machine.parity 4));
  check_bool "majority halts" true (halts (Machine.majority 4));
  check_bool "first=last halts" true (halts (Machine.first_equals_last 4))

(* ------------------------------------------------------------------ *)
(* Theorem 5.2: machine -> unidirectional ring protocol                *)
(* ------------------------------------------------------------------ *)

let ring_agrees name m =
  let p = Machine.protocol_of_machine m in
  let n = m.Machine.n in
  check_bool (name ^ " is a unidirectional ring") true
    (Unidirectional.is_unidirectional_ring p);
  let bound = Machine.convergence_bound m in
  let state = Random.State.make [| 17 |] in
  let card = p.Protocol.space.Label.card in
  List.iter
    (fun x ->
      let labels =
        Array.init (Protocol.num_edges p) (fun _ ->
            p.Protocol.space.Label.decode (Random.State.int state card))
      in
      let init = Protocol.config_of_labels p labels in
      match
        Engine.outputs_after_convergence p ~input:x ~init
          ~schedule:(Schedule.synchronous n) ~max_steps:(2 * bound)
      with
      | Some outs ->
          let expect = if Machine.run m x then 1 else 0 in
          Array.iter (fun y -> check (name ^ " output") expect y) outs
      | None -> Alcotest.fail (name ^ ": ring protocol did not converge"))
    (all_inputs n)

let test_parity_ring () = ring_agrees "parity" (Machine.parity 4)
let test_majority_ring () = ring_agrees "majority" (Machine.majority 3)

let test_first_last_ring () =
  ring_agrees "first=last" (Machine.first_equals_last 4)

let test_advice_ring () =
  ring_agrees "advice" (Machine.with_advice 3 [| false; true; true |])

let test_label_complexity_logarithmic () =
  (* L = O(log |Z|): label bits grow logarithmically with n for the parity
     machine family. *)
  let bits n =
    Label.bit_length (Machine.protocol_of_machine (Machine.parity n)).Protocol.space
  in
  check_bool "bits grow slowly" true (bits 16 <= bits 8 + 3);
  check_bool "bits monotone-ish" true (bits 8 <= bits 16)

let test_convergence_within_bound () =
  let m = Machine.parity 3 in
  let p = Machine.protocol_of_machine m in
  let bound = Machine.convergence_bound m in
  let x = [| true; false; true |] in
  let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  match
    Engine.output_stabilization_time p ~input:x ~init
      ~schedule:(Schedule.synchronous 3) ~max_steps:(4 * bound)
  with
  | Some t -> check_bool "within bound" true (t <= bound)
  | None -> Alcotest.fail "no convergence"

let prop_machine_protocol_agrees =
  QCheck.Test.make ~count:25 ~name:"ring protocol computes machine verdict"
    (QCheck.make QCheck.Gen.(pair (int_bound 255) (int_bound 1000)))
    (fun (code, seed) ->
      let n = 4 in
      let m = Machine.mod_count n 3 in
      let x = Array.init n (fun i -> code land (1 lsl i) <> 0) in
      let p = Machine.protocol_of_machine m in
      let state = Random.State.make [| seed |] in
      let card = p.Protocol.space.Label.card in
      let labels =
        Array.init (Protocol.num_edges p) (fun _ ->
            p.Protocol.space.Label.decode (Random.State.int state card))
      in
      let init = Protocol.config_of_labels p labels in
      match
        Engine.outputs_after_convergence p ~input:x ~init
          ~schedule:(Schedule.synchronous n)
          ~max_steps:(2 * Machine.convergence_bound m)
      with
      | Some outs ->
          let expect = if Machine.run m x then 1 else 0 in
          Array.for_all (fun y -> y = expect) outs
      | None -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_machine_protocol_agrees ]

let () =
  Alcotest.run "stateless_machine"
    [
      ( "machines",
        [
          Alcotest.test_case "parity" `Quick test_parity_machine;
          Alcotest.test_case "majority" `Quick test_majority_machine;
          Alcotest.test_case "mod count" `Quick test_mod_count_machine;
          Alcotest.test_case "first equals last" `Quick test_first_equals_last;
          Alcotest.test_case "with advice" `Quick test_with_advice;
          Alcotest.test_case "head in range" `Quick test_head_in_range;
          Alcotest.test_case "step total" `Quick test_step_total;
          Alcotest.test_case "deciders halt" `Quick test_deciders_halt;
        ] );
      ( "ring",
        [
          Alcotest.test_case "parity ring" `Slow test_parity_ring;
          Alcotest.test_case "majority ring" `Slow test_majority_ring;
          Alcotest.test_case "first=last ring" `Slow test_first_last_ring;
          Alcotest.test_case "advice ring" `Quick test_advice_ring;
          Alcotest.test_case "label complexity" `Quick
            test_label_complexity_logarithmic;
          Alcotest.test_case "convergence bound" `Quick
            test_convergence_within_bound;
        ] );
      ("properties", qcheck_tests);
    ]
