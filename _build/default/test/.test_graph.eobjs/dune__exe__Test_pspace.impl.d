test/test_pspace.ml: Alcotest Array Engine Label List Printf Protocol QCheck QCheck_alcotest Random Schedule Stateless_core Stateless_pspace
