test/test_snake.ml: Alcotest Array List Printf Protocol QCheck QCheck_alcotest Stateless_core Stateless_graph Stateless_snake
