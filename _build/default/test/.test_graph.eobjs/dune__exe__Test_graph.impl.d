test/test_graph.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Stateless_graph
