test/test_snake.mli:
