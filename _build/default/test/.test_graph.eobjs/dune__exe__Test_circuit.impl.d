test/test_circuit.ml: Alcotest Array Fun Generic List Printf QCheck QCheck_alcotest Random Stateless_circuit Stateless_core Stateless_graph String
