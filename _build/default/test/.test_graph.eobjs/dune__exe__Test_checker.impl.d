test/test_checker.ml: Alcotest Array Clique_example Engine Label List Option Printf Protocol QCheck QCheck_alcotest Schedule Stability Stateless_checker Stateless_core Stateless_graph
