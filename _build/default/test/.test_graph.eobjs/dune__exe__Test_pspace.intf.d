test/test_pspace.mli:
