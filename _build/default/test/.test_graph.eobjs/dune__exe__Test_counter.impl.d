test/test_counter.ml: Alcotest Array Bool Engine Fun Label List Printf Protocol QCheck QCheck_alcotest Random Schedule Stateless_core Stateless_counter
