test/test_games.ml: Alcotest Array Engine Fun List Printf Protocol QCheck QCheck_alcotest Schedule Stability Stateless_checker Stateless_core Stateless_games Stateless_graph
