test/test_bp.ml: Alcotest Array Engine Fun Label List Printf Protocol QCheck QCheck_alcotest Random Schedule Stateless_bp Stateless_core Stateless_graph Stateless_machine
