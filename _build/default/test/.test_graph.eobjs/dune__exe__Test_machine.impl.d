test/test_machine.ml: Alcotest Array Bool Engine Label List Printf Protocol QCheck QCheck_alcotest Random Schedule Stateless_core Stateless_machine Unidirectional
