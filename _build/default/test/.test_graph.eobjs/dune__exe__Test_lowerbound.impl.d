test/test_lowerbound.ml: Alcotest Array Generic Label List Option Printf Protocol QCheck QCheck_alcotest Stateless_core Stateless_graph Stateless_lowerbound
