test/test_compile.ml: Alcotest Array Engine Label List Printf Protocol QCheck QCheck_alcotest Schedule Stateless_circuit Stateless_compile Stateless_core
