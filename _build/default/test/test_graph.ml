module Digraph = Stateless_graph.Digraph
module Builders = Stateless_graph.Builders
module Algorithms = Stateless_graph.Algorithms
module Spanning = Stateless_graph.Spanning

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Digraph basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_create_basic () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check "nodes" 3 (Digraph.num_nodes g);
  check "edges" 3 (Digraph.num_edges g);
  check_bool "mem 0->1" true (Digraph.mem_edge g ~src:0 ~dst:1);
  check_bool "no 1->0" false (Digraph.mem_edge g ~src:1 ~dst:0);
  check "src of e1" 1 (Digraph.src g 1);
  check "dst of e1" 2 (Digraph.dst g 1)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.create: self-loop at node 1") (fun () ->
      ignore (Digraph.create ~n:2 [ (0, 1); (1, 1) ]))

let test_create_rejects_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Digraph.create: duplicate edge (0, 1)") (fun () ->
      ignore (Digraph.create ~n:2 [ (0, 1); (0, 1) ]))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Digraph.create: edge (0, 5) out of range") (fun () ->
      ignore (Digraph.create ~n:2 [ (0, 5) ]))

let test_in_out_edges_consistent () =
  let g = Builders.clique 4 in
  for i = 0 to 3 do
    check "out degree" 3 (Digraph.out_degree g i);
    check "in degree" 3 (Digraph.in_degree g i);
    Array.iter
      (fun e -> check "src is i" i (Digraph.src g e))
      (Digraph.out_edges g i);
    Array.iter
      (fun e -> check "dst is i" i (Digraph.dst g e))
      (Digraph.in_edges g i)
  done

let test_reverse_preserves_edge_ids () =
  let g = Builders.ring_uni 5 in
  let rg = Digraph.reverse g in
  for e = 0 to Digraph.num_edges g - 1 do
    check "src" (Digraph.dst g e) (Digraph.src rg e);
    check "dst" (Digraph.src g e) (Digraph.dst rg e)
  done

let test_find_edge () =
  let g = Builders.ring_bi 4 in
  (match Digraph.find_edge g ~src:1 ~dst:2 with
  | Some e ->
      check "src" 1 (Digraph.src g e);
      check "dst" 2 (Digraph.dst g e)
  | None -> Alcotest.fail "edge 1->2 should exist");
  check_bool "absent" true (Digraph.find_edge g ~src:0 ~dst:2 = None)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let test_ring_uni () =
  let g = Builders.ring_uni 6 in
  check "edges" 6 (Digraph.num_edges g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g);
  check_bool "unidirectional" false (Digraph.is_symmetric g)

let test_ring_bi () =
  let g = Builders.ring_bi 6 in
  check "edges" 12 (Digraph.num_edges g);
  check_bool "symmetric" true (Digraph.is_symmetric g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g)

let test_ring_bi_two_nodes () =
  let g = Builders.ring_bi 2 in
  check "edges" 2 (Digraph.num_edges g);
  check_bool "symmetric" true (Digraph.is_symmetric g)

let test_clique () =
  let g = Builders.clique 5 in
  check "edges" 20 (Digraph.num_edges g);
  check "max degree" 4 (Digraph.max_degree g)

let test_star () =
  let g = Builders.star 5 in
  check "edges" 8 (Digraph.num_edges g);
  check "hub degree" 4 (Digraph.out_degree g 0);
  check "spoke degree" 1 (Digraph.out_degree g 3)

let test_hypercube () =
  let g = Builders.hypercube 3 in
  check "nodes" 8 (Digraph.num_nodes g);
  check "edges" 24 (Digraph.num_edges g);
  check_bool "symmetric" true (Digraph.is_symmetric g);
  (* Neighbours differ in exactly one bit. *)
  Array.iter
    (fun (u, v) ->
      let diff = u lxor v in
      check_bool "one bit" true (diff land (diff - 1) = 0 && diff <> 0))
    (Digraph.edges g)

let test_torus () =
  let g = Builders.torus 3 4 in
  check "nodes" 12 (Digraph.num_nodes g);
  check "edges" 48 (Digraph.num_edges g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g)

let test_grid () =
  let g = Builders.grid 3 3 in
  check "nodes" 9 (Digraph.num_nodes g);
  check "edges" 24 (Digraph.num_edges g);
  check "corner degree" 2 (Digraph.out_degree g 0);
  check "center degree" 4 (Digraph.out_degree g 4)

let test_binary_tree () =
  let g = Builders.binary_tree 2 in
  check "nodes" 7 (Digraph.num_nodes g);
  check "edges" 12 (Digraph.num_edges g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g)

let test_path () =
  let g = Builders.path_bi 4 in
  check "edges" 6 (Digraph.num_edges g);
  check_bool "connected" true (Algorithms.is_strongly_connected g)

let test_de_bruijn () =
  let g = Builders.de_bruijn 2 3 in
  check "nodes" 8 (Digraph.num_nodes g);
  (* 2 out-edges per node minus the two self-loops (000, 111). *)
  check "edges" 14 (Digraph.num_edges g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g);
  check_bool "shift edge" true (Digraph.mem_edge g ~src:1 ~dst:2);
  check_bool "shift edge with carry" true (Digraph.mem_edge g ~src:1 ~dst:3)

let test_de_bruijn_base3 () =
  let g = Builders.de_bruijn 3 2 in
  check "nodes" 9 (Digraph.num_nodes g);
  check_bool "strongly connected" true (Algorithms.is_strongly_connected g)

let test_circulant () =
  let uni = Builders.circulant 6 [ 1 ] in
  check "uni edges" 6 (Digraph.num_edges uni);
  let bi = Builders.circulant 6 [ 1; -1 ] in
  check "bi edges" 12 (Digraph.num_edges bi);
  check_bool "bi symmetric" true (Digraph.is_symmetric bi);
  let chordal = Builders.circulant 8 [ 1; -1; 3 ] in
  check "chordal edges" 24 (Digraph.num_edges chordal);
  check "chordal radius" 3 (Option.get (Algorithms.radius chordal));
  Alcotest.check_raises "zero offset"
    (Invalid_argument "Builders.circulant: zero offset") (fun () ->
      ignore (Builders.circulant 5 [ 0 ]))

let test_circulant_merges_duplicate_offsets () =
  let g = Builders.circulant 5 [ 1; 6; -4 ] in
  check "deduplicated" 5 (Digraph.num_edges g)

let test_random_strongly_connected () =
  for seed = 0 to 4 do
    let g = Builders.random_strongly_connected ~seed 8 ~extra:5 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d strongly connected" seed)
      true
      (Algorithms.is_strongly_connected g)
  done

(* ------------------------------------------------------------------ *)
(* Algorithms                                                          *)
(* ------------------------------------------------------------------ *)

let test_bfs_distances () =
  let g = Builders.ring_uni 5 in
  let d = Algorithms.bfs_distances g 0 in
  check "dist to self" 0 d.(0);
  check "dist around" 4 d.(4)

let test_radius_diameter_ring () =
  let g = Builders.ring_bi 8 in
  check "radius" 4 (Option.get (Algorithms.radius g));
  check "diameter" 4 (Option.get (Algorithms.diameter g));
  let u = Builders.ring_uni 8 in
  check "uni radius" 7 (Option.get (Algorithms.radius u))

let test_radius_star () =
  let g = Builders.star 7 in
  check "radius" 1 (Option.get (Algorithms.radius g));
  check "diameter" 2 (Option.get (Algorithms.diameter g))

let test_radius_none_when_disconnected () =
  let g = Digraph.create ~n:3 [ (0, 1) ] in
  check_bool "radius none" true (Algorithms.radius g = None);
  check_bool "diameter none" true (Algorithms.diameter g = None)

let test_scc_of_dag () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let comps = Algorithms.scc g in
  check "four components" 4 (List.length comps);
  check_bool "not strongly connected" false
    (Algorithms.is_strongly_connected g)

let test_scc_two_cycles () =
  let g =
    Digraph.create ~n:6 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ]
  in
  let comps = Algorithms.scc g in
  check "components" 3 (List.length comps);
  let comp, count = Algorithms.scc_ids g in
  check "count" 3 count;
  check "0 and 1 together" comp.(0) comp.(1);
  check "2,3,4 together" comp.(2) comp.(3);
  check "2,3,4 together" comp.(2) comp.(4)

let test_scc_reverse_topological () =
  (* Tarjan emits components in reverse topological order: a component is
     numbered before any component that can reach it. *)
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  let comp, count = Algorithms.scc_ids g in
  check "count" 3 count;
  check_bool "sink first" true (comp.(3) < comp.(1));
  check_bool "source last" true (comp.(0) > comp.(1))

let test_topological_sort () =
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match Algorithms.topological_sort g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Array.iter
        (fun (u, v) -> check_bool "ordered" true (pos.(u) < pos.(v)))
        (Digraph.edges g));
  let cyclic = Builders.ring_uni 3 in
  check_bool "cycle has no order" true
    (Algorithms.topological_sort cyclic = None)

let test_reachability () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  check_bool "forward" true (Algorithms.is_reachable g ~src:0 ~dst:2);
  check_bool "backward" false (Algorithms.is_reachable g ~src:2 ~dst:0)

(* ------------------------------------------------------------------ *)
(* Spanning trees                                                      *)
(* ------------------------------------------------------------------ *)

let test_out_tree_ring () =
  let g = Builders.ring_uni 5 in
  let t = Spanning.out_tree g 0 in
  check "root parent" (-1) t.Spanning.parent.(0);
  (* On the unidirectional ring the only spanning out-tree is the path. *)
  for i = 1 to 4 do
    check "parent" (i - 1) t.Spanning.parent.(i)
  done;
  check "depth of last" 4 (Spanning.depth t 4)

let test_in_tree_ring () =
  let g = Builders.ring_uni 5 in
  let t = Spanning.in_tree g 0 in
  (* In-tree parents follow the ring towards 0. *)
  check "parent of 4" 0 t.Spanning.parent.(4);
  check "parent of 1" 2 t.Spanning.parent.(1)

let test_tree_edges_exist () =
  for seed = 0 to 3 do
    let g = Builders.random_strongly_connected ~seed 10 ~extra:8 in
    let t1 = Spanning.out_tree g 0 and t2 = Spanning.in_tree g 0 in
    for i = 1 to 9 do
      check_bool "t1 edge parent->i" true
        (Digraph.mem_edge g ~src:t1.Spanning.parent.(i) ~dst:i);
      check_bool "t2 edge i->parent" true
        (Digraph.mem_edge g ~src:i ~dst:t2.Spanning.parent.(i))
    done
  done

let test_children_inverse_of_parent () =
  let g = Builders.clique 5 in
  let t = Spanning.out_tree g 0 in
  Array.iteri
    (fun p kids ->
      List.iter (fun c -> check "parent of child" p t.Spanning.parent.(c)) kids)
    t.Spanning.children

let test_order_starts_at_root () =
  let g = Builders.ring_bi 6 in
  let t = Spanning.out_tree g 2 in
  match t.Spanning.order with
  | r :: _ -> check "root first" 2 r
  | [] -> Alcotest.fail "order empty"

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let arb_graph =
  QCheck.make
    ~print:(fun (seed, n, extra) -> Printf.sprintf "seed=%d n=%d extra=%d" seed n extra)
    QCheck.Gen.(
      triple (int_bound 1000) (int_range 2 12) (int_bound 12))

let prop_random_graphs_strongly_connected =
  QCheck.Test.make ~count:100 ~name:"random_strongly_connected is"
    arb_graph (fun (seed, n, extra) ->
      Algorithms.is_strongly_connected
        (Builders.random_strongly_connected ~seed n ~extra))

let prop_reverse_involution =
  QCheck.Test.make ~count:100 ~name:"reverse is an involution" arb_graph
    (fun (seed, n, extra) ->
      let g = Builders.random_strongly_connected ~seed n ~extra in
      let rr = Digraph.reverse (Digraph.reverse g) in
      Digraph.edges g = Digraph.edges rr)

let prop_radius_le_diameter =
  QCheck.Test.make ~count:100 ~name:"radius <= diameter" arb_graph
    (fun (seed, n, extra) ->
      let g = Builders.random_strongly_connected ~seed n ~extra in
      match (Algorithms.radius g, Algorithms.diameter g) with
      | Some r, Some d -> r <= d
      | _ -> false)

let prop_scc_counts_nodes =
  QCheck.Test.make ~count:100 ~name:"scc partitions the nodes"
    QCheck.(pair (int_bound 1000) (QCheck.make QCheck.Gen.(int_range 2 10)))
    (fun (seed, n) ->
      let g = Builders.erdos_renyi ~seed n ~p:0.3 in
      let total =
        List.fold_left (fun acc c -> acc + List.length c) 0 (Algorithms.scc g)
      in
      total = n)

let prop_spanning_depth_bounded =
  QCheck.Test.make ~count:100 ~name:"BFS tree depth <= eccentricity"
    arb_graph (fun (seed, n, extra) ->
      let g = Builders.random_strongly_connected ~seed n ~extra in
      let t = Spanning.out_tree g 0 in
      match Algorithms.eccentricity g 0 with
      | None -> false
      | Some ecc ->
          List.for_all (fun i -> Spanning.depth t i <= ecc) t.Spanning.order)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_graphs_strongly_connected;
      prop_reverse_involution;
      prop_radius_le_diameter;
      prop_scc_counts_nodes;
      prop_spanning_depth_bounded;
    ]

let () =
  Alcotest.run "stateless_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "create basic" `Quick test_create_basic;
          Alcotest.test_case "rejects self loop" `Quick
            test_create_rejects_self_loop;
          Alcotest.test_case "rejects duplicate" `Quick
            test_create_rejects_duplicate;
          Alcotest.test_case "rejects out of range" `Quick
            test_create_rejects_out_of_range;
          Alcotest.test_case "in/out edges consistent" `Quick
            test_in_out_edges_consistent;
          Alcotest.test_case "reverse preserves ids" `Quick
            test_reverse_preserves_edge_ids;
          Alcotest.test_case "find edge" `Quick test_find_edge;
        ] );
      ( "builders",
        [
          Alcotest.test_case "ring uni" `Quick test_ring_uni;
          Alcotest.test_case "ring bi" `Quick test_ring_bi;
          Alcotest.test_case "ring bi n=2" `Quick test_ring_bi_two_nodes;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "de bruijn" `Quick test_de_bruijn;
          Alcotest.test_case "de bruijn base 3" `Quick test_de_bruijn_base3;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "circulant dedup" `Quick
            test_circulant_merges_duplicate_offsets;
          Alcotest.test_case "random strongly connected" `Quick
            test_random_strongly_connected;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "radius/diameter of rings" `Quick
            test_radius_diameter_ring;
          Alcotest.test_case "radius of star" `Quick test_radius_star;
          Alcotest.test_case "radius none if disconnected" `Quick
            test_radius_none_when_disconnected;
          Alcotest.test_case "scc of dag" `Quick test_scc_of_dag;
          Alcotest.test_case "scc two cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "scc reverse topological" `Quick
            test_scc_reverse_topological;
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          Alcotest.test_case "reachability" `Quick test_reachability;
        ] );
      ( "spanning",
        [
          Alcotest.test_case "out tree on ring" `Quick test_out_tree_ring;
          Alcotest.test_case "in tree on ring" `Quick test_in_tree_ring;
          Alcotest.test_case "tree edges exist" `Quick test_tree_edges_exist;
          Alcotest.test_case "children inverse of parent" `Quick
            test_children_inverse_of_parent;
          Alcotest.test_case "order starts at root" `Quick
            test_order_starts_at_root;
        ] );
      ("properties", qcheck_tests);
    ]
