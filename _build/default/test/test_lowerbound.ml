module Fooling = Stateless_lowerbound.Fooling
module Builders = Stateless_graph.Builders
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Reference functions                                                 *)
(* ------------------------------------------------------------------ *)

let test_equality_fn () =
  check_bool "equal halves" true
    (Fooling.equality_fn [| true; false; true; false |]);
  check_bool "unequal halves" false
    (Fooling.equality_fn [| true; false; false; false |]);
  check_bool "odd length" false (Fooling.equality_fn [| true; true; true |])

let test_majority_fn () =
  check_bool "majority" true (Fooling.majority_fn [| true; true; false |]);
  check_bool "exact half counts" true
    (Fooling.majority_fn [| true; false; true; false |]);
  check_bool "minority" false
    (Fooling.majority_fn [| true; false; false; false |])

(* ------------------------------------------------------------------ *)
(* The verifier itself                                                 *)
(* ------------------------------------------------------------------ *)

let test_verify_accepts_valid_set () =
  (* Classic equality fooling set on 4 bits, m = 2. *)
  let s =
    {
      Fooling.m = 2;
      value = true;
      pairs =
        [
          ([| false; false |], [| false; false |]);
          ([| false; true |], [| false; true |]);
          ([| true; false |], [| true; false |]);
          ([| true; true |], [| true; true |]);
        ];
    }
  in
  check_bool "valid" true (Fooling.verify Fooling.equality_fn ~n:4 s)

let test_verify_rejects_wrong_value () =
  let s =
    {
      Fooling.m = 2;
      value = true;
      pairs = [ ([| true; false |], [| false; true |]) ];
    }
  in
  check_bool "f(x,y) <> b" false (Fooling.verify Fooling.equality_fn ~n:4 s)

let test_verify_rejects_non_fooling () =
  (* Two pairs whose crossings both keep the value: majority with heavy
     ones everywhere. *)
  let s =
    {
      Fooling.m = 2;
      value = true;
      pairs =
        [
          ([| true; true |], [| true; true |]);
          ([| true; true |], [| true; false |]);
        ];
    }
  in
  check_bool "crossings survive" false (Fooling.verify Fooling.majority_fn ~n:4 s)

let test_verify_rejects_duplicates () =
  let s =
    {
      Fooling.m = 2;
      value = true;
      pairs =
        [
          ([| true; true |], [| true; true |]);
          ([| true; true |], [| true; true |]);
        ];
    }
  in
  check_bool "duplicate pair" false (Fooling.verify Fooling.equality_fn ~n:4 s)

(* ------------------------------------------------------------------ *)
(* Paper fooling sets (Corollaries 6.3 and 6.4)                        *)
(* ------------------------------------------------------------------ *)

let test_equality_fooling_verified () =
  List.iter
    (fun n ->
      let s = Fooling.equality_fooling n in
      check (Printf.sprintf "size n=%d" n) (1 lsl ((n / 2) - 2))
        (List.length s.Fooling.pairs);
      check_bool "fooling" true (Fooling.verify Fooling.equality_fn ~n s);
      check_bool "cut constancy" true
        (Fooling.constant_on_cut (Builders.ring_bi n) ~m:(n / 2) s))
    [ 6; 8; 10; 12 ]

let test_majority_fooling_verified () =
  List.iter
    (fun n ->
      let s = Fooling.majority_fooling n in
      check (Printf.sprintf "size n=%d" n) (n / 2) (List.length s.Fooling.pairs);
      check_bool "fooling" true (Fooling.verify Fooling.majority_fn ~n s))
    [ 6; 7; 8; 9; 10; 11 ]

let test_ring_cut_is_four () =
  List.iter
    (fun n ->
      let c, d = Fooling.cut_sizes (Builders.ring_bi n) ~m:(n / 2) in
      check "cut" 4 (c + d))
    [ 6; 8; 10 ]

let test_bounds_positive_and_growing () =
  let b n = Fooling.bound (Fooling.equality_fooling n) ~cut:4 in
  check_float "n=8" 0.5 (b 8);
  check_bool "monotone" true (b 12 > b 8);
  (* The equality bound is linear: doubling n roughly doubles it. *)
  check_bool "linear growth" true (b 12 >= (2.0 *. b 8) -. 0.76)

let test_paper_bounds () =
  check_float "eq paper n=10" 1.0 (Fooling.equality_paper_bound 10);
  check_float "maj paper n=8" 0.5 (Fooling.majority_paper_bound 8);
  check_float "counting n=16 k=2" 2.0 (Fooling.counting_bound ~n:16 ~k:2)

let test_bound_vs_generic_upper () =
  (* The generic protocol of Prop 2.3 has label complexity n+1; the
     fooling-set lower bound must stay below it. *)
  List.iter
    (fun n ->
      let lower = Fooling.bound (Fooling.equality_fooling n) ~cut:4 in
      check_bool "lower <= upper" true (lower <= float_of_int (n + 1)))
    [ 6; 8; 10; 12 ]

let test_radius_bound () =
  check "ring radius" 4 (Option.get (Fooling.radius_bound (Builders.ring_bi 8)));
  check "clique radius" 1 (Option.get (Fooling.radius_bound (Builders.clique 5)))

(* ------------------------------------------------------------------ *)
(* Consistency with live protocols                                     *)
(* ------------------------------------------------------------------ *)

let test_generic_protocol_beats_no_bound () =
  (* Sanity: the generic protocol computing Eq_n label-stabilizes, so the
     fooling bound applies to it; its label complexity (n+1) must beat the
     bound. *)
  let n = 6 in
  let g = Builders.ring_bi n in
  let p = Generic.make g Fooling.equality_fn in
  let upper = Label.complexity p.Protocol.space in
  let lower = Fooling.bound (Fooling.equality_fooling n) ~cut:4 in
  check_bool "upper >= lower" true (upper >= lower)

let test_verify_is_exhaustive_over_crossings () =
  (* A subtle invalid set: (x,y) pairs where one crossing works but not the
     other still count as fooling (the definition requires only ONE broken
     crossing). *)
  let f bits = bits.(0) && bits.(1) in
  let s =
    {
      Fooling.m = 1;
      value = true;
      pairs = [ ([| true |], [| true |]) ];
    }
  in
  check_bool "singleton always fools" true (Fooling.verify f ~n:2 s)

let prop_equality_fooling_scales =
  QCheck.Test.make ~count:4 ~name:"equality fooling verified for even n"
    (QCheck.make QCheck.Gen.(int_range 3 6))
    (fun half ->
      let n = 2 * half in
      Fooling.verify Fooling.equality_fn ~n (Fooling.equality_fooling n))

let prop_majority_fooling_scales =
  QCheck.Test.make ~count:8 ~name:"majority fooling verified"
    (QCheck.make QCheck.Gen.(int_range 4 12))
    (fun n -> Fooling.verify Fooling.majority_fn ~n (Fooling.majority_fooling n))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_equality_fooling_scales; prop_majority_fooling_scales ]

let () =
  Alcotest.run "stateless_lowerbound"
    [
      ( "functions",
        [
          Alcotest.test_case "equality" `Quick test_equality_fn;
          Alcotest.test_case "majority" `Quick test_majority_fn;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts valid" `Quick test_verify_accepts_valid_set;
          Alcotest.test_case "rejects wrong value" `Quick
            test_verify_rejects_wrong_value;
          Alcotest.test_case "rejects non-fooling" `Quick
            test_verify_rejects_non_fooling;
          Alcotest.test_case "rejects duplicates" `Quick
            test_verify_rejects_duplicates;
          Alcotest.test_case "singleton fools" `Quick
            test_verify_is_exhaustive_over_crossings;
        ] );
      ( "paper-sets",
        [
          Alcotest.test_case "equality fooling" `Quick
            test_equality_fooling_verified;
          Alcotest.test_case "majority fooling" `Quick
            test_majority_fooling_verified;
          Alcotest.test_case "ring cut = 4" `Quick test_ring_cut_is_four;
          Alcotest.test_case "bounds grow" `Quick
            test_bounds_positive_and_growing;
          Alcotest.test_case "paper bound values" `Quick test_paper_bounds;
          Alcotest.test_case "lower <= generic upper" `Quick
            test_bound_vs_generic_upper;
          Alcotest.test_case "radius bound" `Quick test_radius_bound;
          Alcotest.test_case "generic protocol consistency" `Quick
            test_generic_protocol_beats_no_bound;
        ] );
      ("properties", qcheck_tests);
    ]
