module Snake = Stateless_snake.Snake
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Induced-cycle verifier and search                                   *)
(* ------------------------------------------------------------------ *)

let test_verifier_accepts_square () =
  check_bool "Q2 cycle" true (Snake.is_induced_cycle 2 [ 0; 1; 3; 2 ])

let test_verifier_rejects_chord () =
  (* A 6-cycle in Q3 with a chord is not induced: 0-1-3-2 has... use a
     non-induced candidate: 0,1,3,7,5,4 has the chord 0-4?  0 and 4 are
     consecutive here; try 0,1,3,2,6,4: 0-2 is a chord? 0=000,2=010
     adjacent but not consecutive (positions 0 and 3). *)
  check_bool "chord rejected" false
    (Snake.is_induced_cycle 3 [ 0; 1; 3; 2; 6; 4 ])

let test_verifier_rejects_short () =
  check_bool "too short" false (Snake.is_induced_cycle 3 [ 0; 1 ])

let test_verifier_rejects_nonadjacent () =
  check_bool "non-adjacent step" false (Snake.is_induced_cycle 3 [ 0; 3; 1; 2 ])

let test_verifier_rejects_duplicates () =
  check_bool "duplicate vertex" false (Snake.is_induced_cycle 3 [ 0; 1; 0; 1 ])

let test_search_small_dims () =
  List.iter
    (fun d ->
      let s, complete = Snake.search d ~node_budget:max_int in
      check_bool (Printf.sprintf "d=%d complete" d) true complete;
      check_bool (Printf.sprintf "d=%d induced" d) true
        (Snake.is_induced_cycle d s);
      check (Printf.sprintf "d=%d optimal" d) (Snake.best_known d)
        (List.length s))
    [ 2; 3; 4; 5 ]

let test_search_budget_reported () =
  let _, complete = Snake.search 6 ~node_budget:1000 in
  check_bool "budget exhausted" false complete

let test_example_cached_and_valid () =
  List.iter
    (fun d ->
      let s = Snake.example d in
      check_bool "induced" true (Snake.is_induced_cycle d s);
      check "cached identical" (List.length s) (List.length (Snake.example d)))
    [ 3; 4; 5 ]

let test_best_known_range () =
  check "s(7)" 48 (Snake.best_known 7);
  Alcotest.check_raises "d=8"
    (Invalid_argument "Snake.best_known: no entry for d = 8") (fun () ->
      ignore (Snake.best_known 8))

(* ------------------------------------------------------------------ *)
(* Theorem B.4: the equality reduction                                 *)
(* ------------------------------------------------------------------ *)

let snake_len d = List.length (Snake.example d)

let mk_eq d x y = Snake.Eq_reduction.make d ~x ~y

let test_eq_oscillates_iff_equal () =
  let len = snake_len 3 in
  let x = Array.init len (fun i -> i mod 2 = 0) in
  let t_eq = mk_eq 3 x (Array.copy x) in
  check_bool "x = y oscillates" true
    (Snake.Eq_reduction.synchronously_oscillates t_eq);
  for flip = 0 to len - 1 do
    let y = Array.mapi (fun i b -> if i = flip then not b else b) x in
    check_bool
      (Printf.sprintf "x <> y (flip %d) converges" flip)
      false
      (Snake.Eq_reduction.synchronously_oscillates (mk_eq 3 x y))
  done

let test_eq_exhaustive_initializations () =
  let len = snake_len 3 in
  let x = Array.init len (fun i -> i < 3) in
  check_bool "equal: some labeling oscillates" true
    (Snake.Eq_reduction.oscillates_from_some_labeling (mk_eq 3 x (Array.copy x)));
  let y = Array.mapi (fun i b -> if i = 0 then not b else b) x in
  check_bool "unequal: every labeling converges" false
    (Snake.Eq_reduction.oscillates_from_some_labeling (mk_eq 3 x y))

let test_eq_d4 () =
  let len = snake_len 4 in
  let x = Array.init len (fun i -> i mod 3 = 0) in
  check_bool "d=4 equal oscillates" true
    (Snake.Eq_reduction.synchronously_oscillates (mk_eq 4 x (Array.copy x)));
  let y = Array.map not x in
  check_bool "d=4 unequal converges" false
    (Snake.Eq_reduction.synchronously_oscillates (mk_eq 4 x y))

let test_eq_rejects_wrong_length () =
  Alcotest.check_raises "length"
    (Invalid_argument
       (Printf.sprintf "Eq_reduction.make: inputs must have length %d"
          (snake_len 3)))
    (fun () -> ignore (mk_eq 3 [| true |] [| true |]))

let test_eq_communication_blowup () =
  (* The instance size (|S|) doubles-ish with d while n grows by 1: the
     exponential communication lower bound in action. *)
  check_bool "s(5) >= 2 * s(3)" true (snake_len 5 >= 2 * snake_len 3)

(* ------------------------------------------------------------------ *)
(* Theorem B.7: the set-disjointness reduction                         *)
(* ------------------------------------------------------------------ *)

let test_disj_dichotomy () =
  let q = 3 in
  let inter = Snake.Disj_reduction.make 3 ~q ~x:[| true; false; true |]
      ~y:[| false; false; true |] in
  let disj = Snake.Disj_reduction.make 3 ~q ~x:[| true; false; true |]
      ~y:[| false; true; false |] in
  check_bool "intersecting oscillates" true (Snake.Disj_reduction.oscillates inter);
  check_bool "disjoint converges" false (Snake.Disj_reduction.oscillates disj)

let test_disj_pinpoints_index () =
  let q = 3 in
  let t = Snake.Disj_reduction.make 3 ~q ~x:[| true; false; true |]
      ~y:[| false; false; true |] in
  check_bool "at 0" false (Snake.Disj_reduction.oscillates_at t 0);
  check_bool "at 1" false (Snake.Disj_reduction.oscillates_at t 1);
  check_bool "at 2" true (Snake.Disj_reduction.oscillates_at t 2)

let test_disj_empty_sets () =
  let q = 2 in
  let t = Snake.Disj_reduction.make 3 ~q ~x:[| false; false |]
      ~y:[| false; false |] in
  check_bool "empty sets converge" false (Snake.Disj_reduction.oscillates t)

let test_disj_schedule_fairness () =
  (* The proof's schedule is (q+2)-fair. *)
  let q = 3 in
  let t = Snake.Disj_reduction.make 3 ~q ~x:[| true; true; true |]
      ~y:[| true; true; true |] in
  check "fairness" (q + 2) (Snake.Disj_reduction.fairness t)

let test_disj_validates_q () =
  Alcotest.check_raises "q must divide"
    (Invalid_argument
       (Printf.sprintf
          "Disj_reduction.make: q must divide the snake length %d"
          (snake_len 3)))
    (fun () ->
      ignore
        (Snake.Disj_reduction.make 3 ~q:4 ~x:(Array.make 4 true)
           ~y:(Array.make 4 true)))

(* ------------------------------------------------------------------ *)
(* Stable labelings of the reductions                                  *)
(* ------------------------------------------------------------------ *)

let test_eq_stable_labeling_exists () =
  (* The (1, 0, 0^d) labeling is stable regardless of x, y. *)
  let len = snake_len 3 in
  let t = mk_eq 3 (Array.make len true) (Array.make len true) in
  let p = t.Snake.Eq_reduction.protocol in
  let g = p.Protocol.graph in
  let config = Protocol.uniform_config p false in
  Array.iter
    (fun e -> config.Protocol.labels.(e) <- true)
    (Stateless_graph.Digraph.out_edges g 0);
  check_bool "stable" true
    (Protocol.is_stable p ~input:(Snake.Eq_reduction.input t) config)

let prop_eq_dichotomy_random_inputs =
  (* For random Alice inputs: equal copies oscillate, any single-bit flip
     converges — Theorem B.4's iff, sampled. *)
  QCheck.Test.make ~count:10 ~name:"EQ reduction dichotomy on random inputs"
    (QCheck.make QCheck.Gen.(pair (int_bound 63) (int_bound 5)))
    (fun (code, flip) ->
      let len = List.length (Snake.example 3) in
      let x = Array.init len (fun i -> code land (1 lsl i) <> 0) in
      let t_eq = Snake.Eq_reduction.make 3 ~x ~y:(Array.copy x) in
      let y = Array.mapi (fun i b -> if i = flip mod len then not b else b) x in
      let t_ne = Snake.Eq_reduction.make 3 ~x ~y in
      Snake.Eq_reduction.synchronously_oscillates t_eq
      && not (Snake.Eq_reduction.synchronously_oscillates t_ne))

let prop_disj_matches_intersection =
  QCheck.Test.make ~count:12 ~name:"DISJ reduction = set intersection"
    (QCheck.make QCheck.Gen.(pair (int_bound 7) (int_bound 7)))
    (fun (a, b) ->
      let x = Array.init 3 (fun i -> a land (1 lsl i) <> 0) in
      let y = Array.init 3 (fun i -> b land (1 lsl i) <> 0) in
      let t = Snake.Disj_reduction.make 3 ~q:3 ~x ~y in
      Snake.Disj_reduction.oscillates t = (a land b <> 0))

let prop_search_results_induced =
  QCheck.Test.make ~count:4 ~name:"search under budget still yields a cycle"
    (QCheck.make QCheck.Gen.(pair (int_range 3 5) (int_range 500 5000)))
    (fun (d, budget) ->
      let s, _ = Snake.search d ~node_budget:budget in
      s = [] || Snake.is_induced_cycle d s)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_search_results_induced;
      prop_eq_dichotomy_random_inputs;
      prop_disj_matches_intersection;
    ]

let () =
  Alcotest.run "stateless_snake"
    [
      ( "cycles",
        [
          Alcotest.test_case "verifier accepts square" `Quick
            test_verifier_accepts_square;
          Alcotest.test_case "verifier rejects chord" `Quick
            test_verifier_rejects_chord;
          Alcotest.test_case "verifier rejects short" `Quick
            test_verifier_rejects_short;
          Alcotest.test_case "verifier rejects non-adjacent" `Quick
            test_verifier_rejects_nonadjacent;
          Alcotest.test_case "verifier rejects duplicates" `Quick
            test_verifier_rejects_duplicates;
          Alcotest.test_case "search exact d<=5" `Slow test_search_small_dims;
          Alcotest.test_case "budget reported" `Quick
            test_search_budget_reported;
          Alcotest.test_case "example cached" `Quick
            test_example_cached_and_valid;
          Alcotest.test_case "best known table" `Quick test_best_known_range;
        ] );
      ( "eq-reduction",
        [
          Alcotest.test_case "oscillates iff x=y" `Slow
            test_eq_oscillates_iff_equal;
          Alcotest.test_case "exhaustive initializations" `Slow
            test_eq_exhaustive_initializations;
          Alcotest.test_case "d=4" `Slow test_eq_d4;
          Alcotest.test_case "rejects wrong length" `Quick
            test_eq_rejects_wrong_length;
          Alcotest.test_case "instance size blows up" `Quick
            test_eq_communication_blowup;
          Alcotest.test_case "collapse labeling stable" `Quick
            test_eq_stable_labeling_exists;
        ] );
      ( "disj-reduction",
        [
          Alcotest.test_case "dichotomy" `Quick test_disj_dichotomy;
          Alcotest.test_case "pinpoints index" `Quick test_disj_pinpoints_index;
          Alcotest.test_case "empty sets" `Quick test_disj_empty_sets;
          Alcotest.test_case "schedule fairness" `Quick
            test_disj_schedule_fairness;
          Alcotest.test_case "validates q" `Quick test_disj_validates_q;
        ] );
      ("properties", qcheck_tests);
    ]
