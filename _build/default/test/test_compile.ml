module Circuit = Stateless_circuit.Circuit
module Compile = Stateless_compile.Compile
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let ring_computes name circuit =
  let t = Compile.make circuit in
  List.iteri
    (fun idx x ->
      let expect = Circuit.eval circuit x in
      (match Compile.run t x with
      | Some v ->
          Alcotest.(check bool) (Printf.sprintf "%s run %d" name idx) expect v
      | None -> Alcotest.fail (name ^ ": did not converge"));
      match Compile.run_from t x ~seed:(idx + 1) with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s self-stab %d" name idx)
            expect v
      | None -> Alcotest.fail (name ^ ": no convergence from random init"))
    (all_inputs circuit.Circuit.n_inputs)

let test_parity3 () = ring_computes "parity3" (Circuit.parity 3)
let test_majority3 () = ring_computes "majority3" (Circuit.majority 3)
let test_equality4 () = ring_computes "equality4" (Circuit.equality 4)
let test_and4 () = ring_computes "and4" (Circuit.and_all 4)
let test_or3 () = ring_computes "or3" (Circuit.or_all 3)

let test_duplicated_operand () =
  (* x AND x — the same owner writes both i1 and i2 at the same tick. *)
  let c =
    Circuit.create ~n_inputs:2
      [| Circuit.Input 0; Circuit.And (0, 0); Circuit.Xor (1, 1) |]
      ~output:2
  in
  ring_computes "x-and-x" c

let test_const_gate () =
  let c =
    Circuit.create ~n_inputs:2
      [| Circuit.Const true; Circuit.Input 1; Circuit.Xor (0, 1) |]
      ~output:2
  in
  ring_computes "const-xor" c

let test_output_not_last_gate () =
  (* The output gate sits in the middle of the array. *)
  let c =
    Circuit.create ~n_inputs:2
      [| Circuit.Input 0; Circuit.Input 1; Circuit.And (0, 1);
         Circuit.Or (0, 1) |]
      ~output:2
  in
  ring_computes "middle-output" c

let test_random_circuits () =
  for seed = 1 to 3 do
    ring_computes
      (Printf.sprintf "random-%d" seed)
      (Circuit.random ~seed ~n_inputs:4 ~size:8)
  done

let test_ring_is_odd () =
  List.iter
    (fun n_inputs ->
      let t = Compile.make (Circuit.parity n_inputs) in
      check_bool "odd ring" true (t.Compile.ring_size mod 2 = 1))
    [ 2; 3; 4; 5 ]

let test_label_bits_formula () =
  let t = Compile.make (Circuit.parity 3) in
  let rec log2ceil v acc cap = if cap >= v then acc
    else log2ceil v (acc + 1) (2 * cap) in
  check "6 + 3 log D" (6 + (3 * log2ceil t.Compile.clock_period 0 1))
    (Compile.label_bits t)

let test_label_complexity_logarithmic_in_ring () =
  (* Label bits grow logarithmically while the ring grows linearly. *)
  let bits k = Compile.label_bits (Compile.make (Circuit.parity k)) in
  let size k = (Compile.make (Circuit.parity k)).Compile.ring_size in
  check_bool "ring doubles" true (size 8 > 2 * size 3);
  check_bool "bits grow slowly" true (bits 8 - bits 3 <= 9)

let test_ring_input_pads () =
  let t = Compile.make (Circuit.parity 3) in
  let padded = Compile.ring_input t [| true; false; true |] in
  check "length" t.Compile.ring_size (Array.length padded);
  check_bool "padding false" true
    (Array.for_all not (Array.sub padded 3 (Array.length padded - 3)))

let test_rejects_empty () =
  (* Gateless circuits are already rejected at construction. *)
  Alcotest.check_raises "empty"
    (Invalid_argument "Circuit.create: output gate out of range") (fun () ->
      ignore (Compile.make (Circuit.create ~n_inputs:1 [||] ~output:0)))

let test_converges_within_bound () =
  (* convergence_bound really bounds output stabilization. *)
  let c = Circuit.majority 3 in
  let t = Compile.make c in
  let x = [| true; true; false |] in
  let input = Compile.ring_input t x in
  let p = t.Compile.protocol in
  let init = Protocol.uniform_config p (p.Protocol.space.Label.decode 0) in
  match
    Engine.output_stabilization_time p ~input ~init
      ~schedule:(Schedule.synchronous t.Compile.ring_size)
      ~max_steps:(3 * Compile.convergence_bound t)
  with
  | Some time ->
      check_bool "within bound" true (time <= Compile.convergence_bound t)
  | None -> Alcotest.fail "did not stabilize"

let prop_random_circuit_compiles =
  QCheck.Test.make ~count:6 ~name:"random circuit rings compute eval"
    (QCheck.make QCheck.Gen.(pair (int_bound 1000) (int_bound 15)))
    (fun (seed, code) ->
      let c = Circuit.random ~seed ~n_inputs:4 ~size:6 in
      let t = Compile.make c in
      let x = Array.init 4 (fun i -> code land (1 lsl i) <> 0) in
      match Compile.run_from t x ~seed:(seed + 1) with
      | Some v -> v = Circuit.eval c x
      | None -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_random_circuit_compiles ]

let () =
  Alcotest.run "stateless_compile"
    [
      ( "functions",
        [
          Alcotest.test_case "parity3" `Slow test_parity3;
          Alcotest.test_case "majority3" `Slow test_majority3;
          Alcotest.test_case "equality4" `Slow test_equality4;
          Alcotest.test_case "and4" `Slow test_and4;
          Alcotest.test_case "or3" `Slow test_or3;
        ] );
      ( "structure",
        [
          Alcotest.test_case "duplicated operand" `Quick
            test_duplicated_operand;
          Alcotest.test_case "const gate" `Quick test_const_gate;
          Alcotest.test_case "output not last" `Quick
            test_output_not_last_gate;
          Alcotest.test_case "random circuits" `Slow test_random_circuits;
          Alcotest.test_case "ring odd" `Quick test_ring_is_odd;
          Alcotest.test_case "label bits 6+3logD" `Quick
            test_label_bits_formula;
          Alcotest.test_case "log labels, linear ring" `Quick
            test_label_complexity_logarithmic_in_ring;
          Alcotest.test_case "ring input pads" `Quick test_ring_input_pads;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
          Alcotest.test_case "converges within bound" `Slow
            test_converges_within_bound;
        ] );
      ("properties", qcheck_tests);
    ]
