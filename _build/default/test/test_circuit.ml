module Circuit = Stateless_circuit.Circuit
module Unroll = Stateless_circuit.Unroll
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let popcount x = Array.fold_left (fun a b -> if b then a + 1 else a) 0 x

let agree name circuit reference n =
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "%s on %s" name
           (String.concat ""
              (List.map (fun b -> if b then "1" else "0") (Array.to_list x))))
        (reference x) (Circuit.eval circuit x))
    (all_inputs n)

(* ------------------------------------------------------------------ *)

let test_create_validates () =
  Alcotest.check_raises "forward ref"
    (Invalid_argument "Circuit.create: operand not earlier in the array")
    (fun () ->
      ignore (Circuit.create ~n_inputs:1 [| Circuit.Not 0 |] ~output:0));
  Alcotest.check_raises "input range"
    (Invalid_argument "Circuit.create: input index out of range") (fun () ->
      ignore (Circuit.create ~n_inputs:1 [| Circuit.Input 1 |] ~output:0));
  Alcotest.check_raises "output range"
    (Invalid_argument "Circuit.create: output gate out of range") (fun () ->
      ignore (Circuit.create ~n_inputs:1 [| Circuit.Input 0 |] ~output:1))

let test_eval_basic () =
  let c =
    Circuit.create ~n_inputs:2
      [| Circuit.Input 0; Circuit.Input 1; Circuit.And (0, 1) |]
      ~output:2
  in
  check_bool "1 and 1" true (Circuit.eval c [| true; true |]);
  check_bool "1 and 0" false (Circuit.eval c [| true; false |]);
  check "size" 3 (Circuit.size c);
  check "depth" 1 (Circuit.depth c)

let test_parity () = agree "parity" (Circuit.parity 5) (fun x -> popcount x mod 2 = 1) 5

let test_majority () =
  List.iter
    (fun n ->
      agree
        (Printf.sprintf "majority %d" n)
        (Circuit.majority n)
        (fun x -> 2 * popcount x >= n)
        n)
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_threshold () =
  List.iter
    (fun k ->
      agree
        (Printf.sprintf "threshold 5 %d" k)
        (Circuit.threshold 5 k)
        (fun x -> popcount x >= k)
        5)
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_equality () =
  agree "equality 6" (Circuit.equality 6)
    (fun x -> x.(0) = x.(3) && x.(1) = x.(4) && x.(2) = x.(5))
    6;
  agree "equality odd" (Circuit.equality 5) (fun _ -> false) 5

let test_and_or_all () =
  agree "and_all" (Circuit.and_all 4) (fun x -> Array.for_all Fun.id x) 4;
  agree "or_all" (Circuit.or_all 4) (fun x -> Array.exists Fun.id x) 4

let test_of_function () =
  let f x = (x.(0) && x.(2)) <> x.(1) in
  agree "of_function" (Circuit.of_function 3 f) f 3

let test_of_function_constant () =
  agree "const false" (Circuit.of_function 2 (fun _ -> false)) (fun _ -> false) 2;
  agree "const true" (Circuit.of_function 2 (fun _ -> true)) (fun _ -> true) 2

let test_random_deterministic () =
  let a = Circuit.random ~seed:7 ~n_inputs:4 ~size:20 in
  let b = Circuit.random ~seed:7 ~n_inputs:4 ~size:20 in
  List.iter
    (fun x ->
      check_bool "same function" (Circuit.eval a x) (Circuit.eval b x))
    (all_inputs 4)

let test_builder_simplifications () =
  let b = Circuit.Build.create ~n_inputs:1 in
  let x = Circuit.Build.input b 0 in
  let nn = Circuit.Build.not_ b (Circuit.Build.not_ b x) in
  check "double negation collapses" x nn;
  let t = Circuit.Build.const b true in
  check "and with true" x (Circuit.Build.and_ b x t);
  let f = Circuit.Build.const b false in
  check "or with false" x (Circuit.Build.or_ b x f)

let test_depth_monotone () =
  check_bool "majority deeper than parity of same width" true
    (Circuit.depth (Circuit.majority 8) >= 1);
  check "depth of input" 0 (Circuit.depth (Circuit.and_all 1))

(* ------------------------------------------------------------------ *)
(* Unrolling (Theorem 5.4, forward direction)                          *)
(* ------------------------------------------------------------------ *)

let parity_vec bits = Array.fold_left (fun acc b -> acc <> b) false bits

let test_unroll_generic_protocol () =
  (* Unroll the Prop 2.3 protocol computing parity on the bidirectional
     3-ring; the resulting circuit must compute parity. *)
  let g = Stateless_graph.Builders.ring_bi 3 in
  let p = Generic.make g parity_vec in
  let rounds = (2 * 3) + 1 in
  let circuit =
    Unroll.circuit_of_protocol p ~rounds ~init:(Array.make 4 false) ~node:1
  in
  List.iter
    (fun x ->
      check_bool "parity via unrolled protocol" (parity_vec x)
        (Circuit.eval circuit x))
    (all_inputs 3)

let test_unroll_rejects_wide_reactions () =
  let g = Stateless_graph.Builders.clique 8 in
  let p = Generic.make g parity_vec in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Unroll.circuit_of_protocol: reaction table too wide")
    (fun () ->
      ignore
        (Unroll.circuit_of_protocol p ~rounds:1 ~init:(Array.make 9 false)
           ~node:0))

let test_unroll_polynomial_size () =
  let g = Stateless_graph.Builders.ring_bi 3 in
  let p = Generic.make g parity_vec in
  let c7 =
    Unroll.circuit_of_protocol p ~rounds:7 ~init:(Array.make 4 false) ~node:0
  in
  let c3 =
    Unroll.circuit_of_protocol p ~rounds:3 ~init:(Array.make 4 false) ~node:0
  in
  check_bool "size grows with rounds" true (Circuit.size c7 > Circuit.size c3)

(* ------------------------------------------------------------------ *)

let prop_majority_matches =
  QCheck.Test.make ~count:100 ~name:"majority circuit matches popcount"
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 10) (int_bound ((1 lsl 10) - 1))))
    (fun (n, code) ->
      let x = Array.init n (fun i -> code land (1 lsl i) <> 0) in
      Circuit.eval (Circuit.majority n) x = (2 * popcount x >= n))

let prop_of_function_roundtrip =
  QCheck.Test.make ~count:50 ~name:"of_function reproduces the function"
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_bound max_int)))
    (fun (n, seed) ->
      let state = Random.State.make [| seed |] in
      let table = Array.init (1 lsl n) (fun _ -> Random.State.bool state) in
      let f x =
        let code =
          Array.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0 x
        in
        table.(code)
      in
      let c = Circuit.of_function n f in
      List.for_all (fun x -> Circuit.eval c x = f x) (all_inputs n))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_majority_matches; prop_of_function_roundtrip ]

let () =
  Alcotest.run "stateless_circuit"
    [
      ( "core",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "and/or all" `Quick test_and_or_all;
          Alcotest.test_case "of_function" `Quick test_of_function;
          Alcotest.test_case "of_function constants" `Quick
            test_of_function_constant;
          Alcotest.test_case "random deterministic" `Quick
            test_random_deterministic;
          Alcotest.test_case "builder simplifications" `Quick
            test_builder_simplifications;
          Alcotest.test_case "depth" `Quick test_depth_monotone;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "generic protocol to circuit" `Slow
            test_unroll_generic_protocol;
          Alcotest.test_case "rejects wide reactions" `Quick
            test_unroll_rejects_wide_reactions;
          Alcotest.test_case "size grows with rounds" `Quick
            test_unroll_polynomial_size;
        ] );
      ("properties", qcheck_tests);
    ]
