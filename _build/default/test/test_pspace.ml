module SO = Stateless_pspace.String_oscillation
module Stateful = Stateless_pspace.Stateful
module Metanode = Stateless_pspace.Metanode
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* String oscillation                                                  *)
(* ------------------------------------------------------------------ *)

let test_always_loop () =
  let inst = SO.always_loop ~m:3 in
  check_bool "oscillates from everything" true
    (SO.oscillates_from inst [| 1; 0; 1 |]);
  check_bool "oscillates" true (SO.oscillates inst)

let test_always_halt () =
  let inst = SO.always_halt ~m:3 in
  check_bool "never oscillates" false (SO.oscillates inst);
  check_bool "halts from zero" false (SO.oscillates_from inst [| 0; 0; 0 |])

let test_zero_loop () =
  let inst = SO.zero_loop ~m:3 in
  check_bool "zero loops" true (SO.oscillates_from inst [| 0; 0; 0 |]);
  check_bool "one halts" false (SO.oscillates_from inst [| 0; 1; 0 |]);
  (match SO.oscillating_start inst with
  | Some s -> Alcotest.(check (array int)) "start is zero" [| 0; 0; 0 |] s
  | None -> Alcotest.fail "expected an oscillating start")

let test_state_space () =
  check "m * 2^m" (3 * 8) (SO.state_space (SO.zero_loop ~m:3))

let test_random_instances_decidable () =
  for seed = 0 to 5 do
    (* Just exercise the decision procedure; it must terminate. *)
    ignore (SO.oscillates (SO.random ~m:2 ~seed))
  done

(* ------------------------------------------------------------------ *)
(* Stateful engine                                                     *)
(* ------------------------------------------------------------------ *)

let toggle_protocol : bool Stateful.t =
  (* Every node flips its own label: oscillates under any schedule. *)
  {
    Stateful.name = "toggle";
    n = 2;
    space = Label.bool;
    react = (fun i config -> not config.(i));
  }

let freeze_protocol : bool Stateful.t =
  {
    Stateful.name = "freeze";
    n = 2;
    space = Label.bool;
    react = (fun i config -> config.(i));
  }

let test_stateful_step () =
  let next = Stateful.step toggle_protocol [| true; false |] ~active:[ 0 ] in
  Alcotest.(check (array bool)) "only node 0 flips" [| false; false |] next

let test_stateful_stability () =
  check_bool "freeze stable" true
    (Stateful.is_stable freeze_protocol [| true; false |]);
  check_bool "toggle unstable" false
    (Stateful.is_stable toggle_protocol [| true; false |])

let test_stateful_verdicts () =
  (match
     Stateful.run_until_stable toggle_protocol ~init:[| true; true |]
       ~schedule:(Schedule.synchronous 2) ~max_steps:100
   with
  | `Oscillating -> ()
  | _ -> Alcotest.fail "toggle should oscillate");
  match
    Stateful.run_until_stable freeze_protocol ~init:[| true; false |]
      ~schedule:(Schedule.synchronous 2) ~max_steps:100
  with
  | `Stabilized 0 -> ()
  | _ -> Alcotest.fail "freeze is immediately stable"

let test_stateful_exhaustive_checker () =
  check_bool "freeze stabilizing" true
    (Stateful.synchronous_stabilizing freeze_protocol);
  check_bool "toggle not stabilizing" false
    (Stateful.synchronous_stabilizing toggle_protocol)

(* ------------------------------------------------------------------ *)
(* Theorem B.11: the String-Oscillation reduction                      *)
(* ------------------------------------------------------------------ *)

let reduction_equivalence name inst =
  let procedure_oscillates = SO.oscillates inst in
  let stateful = Stateful.of_instance inst in
  let protocol_stabilizes = Stateful.synchronous_stabilizing stateful in
  check_bool
    (name ^ ": oscillation <=> non-stabilization")
    procedure_oscillates (not protocol_stabilizes)

let test_reduction_always_loop () =
  reduction_equivalence "always_loop" (SO.always_loop ~m:2)

let test_reduction_always_halt () =
  reduction_equivalence "always_halt" (SO.always_halt ~m:2)

let test_reduction_zero_loop () =
  reduction_equivalence "zero_loop" (SO.zero_loop ~m:2)

let test_reduction_random () =
  for seed = 0 to 6 do
    reduction_equivalence
      (Printf.sprintf "random-%d" seed)
      (SO.random ~m:2 ~seed)
  done

let test_oscillation_seed_replays () =
  let inst = SO.always_loop ~m:2 in
  let stateful = Stateful.of_instance inst in
  match SO.oscillating_start inst with
  | None -> Alcotest.fail "always_loop oscillates"
  | Some start -> (
      match Stateful.oscillation_seed inst start with
      | None -> Alcotest.fail "seed exists"
      | Some seed -> (
          match
            Stateful.run_until_stable stateful ~init:seed
              ~schedule:(Schedule.synchronous 3) ~max_steps:500
          with
          | `Oscillating -> ()
          | _ -> Alcotest.fail "seed should oscillate"))

(* ------------------------------------------------------------------ *)
(* Theorem B.14: the metanode transform                                *)
(* ------------------------------------------------------------------ *)

let test_metanode_lifts_oscillation () =
  List.iter
    (fun inst ->
      match SO.oscillating_start inst with
      | None -> ()
      | Some start -> (
          let stateful = Stateful.of_instance inst in
          match Stateful.oscillation_seed inst start with
          | None -> ()
          | Some seed -> (
              let mn = Metanode.make stateful in
              let init = Metanode.lift mn seed in
              let sched =
                Metanode.lift_schedule mn
                  (Schedule.synchronous stateful.Stateful.n)
              in
              match
                Engine.run_until_stable mn.Metanode.protocol
                  ~input:(Metanode.input mn) ~init ~schedule:sched
                  ~max_steps:3000
              with
              | Engine.Oscillating _ -> ()
              | _ -> Alcotest.fail "metanode should oscillate")))
    [ SO.always_loop ~m:2; SO.zero_loop ~m:2 ]

let test_metanode_preserves_convergence () =
  let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
  let mn = Metanode.make stateful in
  let p = mn.Metanode.protocol in
  let card = p.Protocol.space.Label.card in
  let state = Random.State.make [| 9 |] in
  for _ = 1 to 25 do
    let labels =
      Array.init (Protocol.num_edges p) (fun _ ->
          p.Protocol.space.Label.decode (Random.State.int state card))
    in
    let init = Protocol.config_of_labels p labels in
    match
      Engine.run_until_stable p ~input:(Metanode.input mn) ~init
        ~schedule:(Schedule.synchronous (Protocol.num_nodes p))
        ~max_steps:3000
    with
    | Engine.Stabilized _ -> ()
    | _ -> Alcotest.fail "metanode of halting instance must stabilize"
  done

let test_omega_is_stable () =
  let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
  let mn = Metanode.make stateful in
  check_bool "all-omega stable" true
    (Protocol.is_stable mn.Metanode.protocol ~input:(Metanode.input mn)
       (Metanode.omega_config mn))

let test_metanode_under_round_robin () =
  (* Convergence also under a non-synchronous fair schedule. *)
  let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
  let mn = Metanode.make stateful in
  let p = mn.Metanode.protocol in
  let n = Protocol.num_nodes p in
  let init = Metanode.lift mn [| (0, Some 1); (1, Some 0); (0, Some 1) |] in
  match
    Engine.run_until_stable p ~input:(Metanode.input mn) ~init
      ~schedule:(Schedule.round_robin n) ~max_steps:5000
  with
  | Engine.Stabilized _ -> ()
  | _ -> Alcotest.fail "should converge under round robin"

let test_metanode_sizes () =
  let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
  let mn = Metanode.make stateful in
  check "3n nodes" (3 * stateful.Stateful.n)
    (Protocol.num_nodes mn.Metanode.protocol);
  check "sigma + omega" (stateful.Stateful.space.Label.card + 1)
    mn.Metanode.protocol.Protocol.space.Label.card

let prop_lifted_schedule_preserves_fairness =
  (* The metanode lift of an r-fair schedule activates whole metanodes, so
     it is r-fair on 3n nodes. *)
  QCheck.Test.make ~count:20 ~name:"lifted schedules stay r-fair"
    (QCheck.make QCheck.Gen.(pair (int_bound 1000) (int_range 1 3)))
    (fun (seed, r) ->
      let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
      let mn = Metanode.make stateful in
      let n = stateful.Stateful.n in
      let sched =
        Metanode.lift_schedule mn (Schedule.random_fair ~seed ~r n)
      in
      Schedule.is_r_fair sched ~n:(3 * n) ~r ~horizon:(20 * r))

let prop_omega_reachable_from_inconsistent =
  (* Any configuration with a non-unanimous metanode pushes ω outward; under
     the synchronous schedule the halting instance always reaches the all-ω
     fixed point. *)
  QCheck.Test.make ~count:15 ~name:"halting metanode converges to all-omega"
    (QCheck.make QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let stateful = Stateful.of_instance (SO.always_halt ~m:2) in
      let mn = Metanode.make stateful in
      let p = mn.Metanode.protocol in
      let card = p.Protocol.space.Label.card in
      let state = Random.State.make [| seed |] in
      let labels =
        Array.init (Protocol.num_edges p) (fun _ ->
            p.Protocol.space.Label.decode (Random.State.int state card))
      in
      match
        Engine.run_until_stable p ~input:(Metanode.input mn)
          ~init:(Protocol.config_of_labels p labels)
          ~schedule:(Schedule.synchronous (Protocol.num_nodes p))
          ~max_steps:3000
      with
      | Engine.Stabilized { config; _ } ->
          (* The unique fixed point reachable from garbage is all-ω or a
             stable corresponding labeling collapsed to ω on the next
             activations; in either case the labeling must be stable. *)
          Protocol.is_stable p ~input:(Metanode.input mn) config
      | _ -> false)

let prop_reduction_equivalence_random =
  QCheck.Test.make ~count:10 ~name:"B.11 equivalence on random instances"
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let inst = SO.random ~m:2 ~seed in
      let stateful = Stateful.of_instance inst in
      SO.oscillates inst = not (Stateful.synchronous_stabilizing stateful))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reduction_equivalence_random;
      prop_lifted_schedule_preserves_fairness;
      prop_omega_reachable_from_inconsistent;
    ]

let () =
  Alcotest.run "stateless_pspace"
    [
      ( "string-oscillation",
        [
          Alcotest.test_case "always loop" `Quick test_always_loop;
          Alcotest.test_case "always halt" `Quick test_always_halt;
          Alcotest.test_case "zero loop" `Quick test_zero_loop;
          Alcotest.test_case "state space" `Quick test_state_space;
          Alcotest.test_case "random decidable" `Quick
            test_random_instances_decidable;
        ] );
      ( "stateful",
        [
          Alcotest.test_case "step" `Quick test_stateful_step;
          Alcotest.test_case "stability" `Quick test_stateful_stability;
          Alcotest.test_case "verdicts" `Quick test_stateful_verdicts;
          Alcotest.test_case "exhaustive checker" `Quick
            test_stateful_exhaustive_checker;
        ] );
      ( "thm-b11",
        [
          Alcotest.test_case "always loop" `Quick test_reduction_always_loop;
          Alcotest.test_case "always halt" `Quick test_reduction_always_halt;
          Alcotest.test_case "zero loop" `Quick test_reduction_zero_loop;
          Alcotest.test_case "random instances" `Slow test_reduction_random;
          Alcotest.test_case "seed replays" `Quick
            test_oscillation_seed_replays;
        ] );
      ( "thm-b14",
        [
          Alcotest.test_case "lifts oscillation" `Slow
            test_metanode_lifts_oscillation;
          Alcotest.test_case "preserves convergence" `Slow
            test_metanode_preserves_convergence;
          Alcotest.test_case "omega stable" `Quick test_omega_is_stable;
          Alcotest.test_case "round robin" `Quick
            test_metanode_under_round_robin;
          Alcotest.test_case "sizes" `Quick test_metanode_sizes;
        ] );
      ("properties", qcheck_tests);
    ]
