module Bp = Stateless_bp.Bp
module Machine = Stateless_machine.Machine
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl (n - 1 - i)) <> 0))

let popcount x = Array.fold_left (fun a b -> if b then a + 1 else a) 0 x

let agrees name bp reference n =
  List.iter
    (fun x -> Alcotest.(check bool) name (reference x) (Bp.eval bp x))
    (all_inputs n)

let test_create_validates () =
  Alcotest.check_raises "backward ref"
    (Invalid_argument "Bp.create: reference must be a later node or sink")
    (fun () ->
      ignore
        (Bp.create ~n_vars:1
           [| { Bp.var = 0; lo = 0; hi = Bp.accept } |]
           ~start:0));
  Alcotest.check_raises "var range"
    (Invalid_argument "Bp.create: variable out of range") (fun () ->
      ignore
        (Bp.create ~n_vars:1
           [| { Bp.var = 1; lo = Bp.accept; hi = Bp.reject } |]
           ~start:0))

let test_sink_programs () =
  let t = Bp.create ~n_vars:3 [||] ~start:Bp.accept in
  check_bool "accept-all" true (Bp.eval t [| false; true; false |]);
  let f = Bp.create ~n_vars:3 [||] ~start:Bp.reject in
  check_bool "reject-all" false (Bp.eval f [| false; true; false |]);
  check "length" 0 (Bp.length t)

let test_parity () =
  agrees "parity" (Bp.parity 6) (fun x -> popcount x mod 2 = 1) 6;
  check "size" 12 (Bp.size (Bp.parity 6));
  check "length" 6 (Bp.length (Bp.parity 6))

let test_threshold () =
  List.iter
    (fun k ->
      agrees
        (Printf.sprintf "threshold 5 %d" k)
        (Bp.threshold 5 k)
        (fun x -> popcount x >= k)
        5)
    [ 0; 1; 3; 5; 6 ]

let test_majority () =
  List.iter
    (fun n ->
      agrees
        (Printf.sprintf "majority %d" n)
        (Bp.majority n)
        (fun x -> 2 * popcount x >= n)
        n)
    [ 2; 3; 4; 5 ]

let test_equality () =
  agrees "equality 6" (Bp.equality 6)
    (fun x -> x.(0) = x.(3) && x.(1) = x.(4) && x.(2) = x.(5))
    6;
  agrees "equality odd rejects" (Bp.equality 3) (fun _ -> false) 3;
  (* Width-3 construction: size 3·(n/2). *)
  check "eq size linear" 9 (Bp.size (Bp.equality 6))

let test_of_dfa () =
  (* DFA for "ends with 1". *)
  let bp =
    Bp.of_dfa ~states:2 ~start:0
      ~accepting:(fun s -> s = 1)
      ~delta:(fun _ b -> if b then 1 else 0)
      4
  in
  agrees "ends with 1" bp (fun x -> x.(3)) 4

let test_of_function () =
  let f x = x.(0) <> (x.(1) && x.(2)) in
  agrees "of_function" (Bp.of_function 3 f) f 3

let test_length_le_size () =
  List.iter
    (fun bp -> check_bool "length <= size" true (Bp.length bp <= Bp.size bp))
    [ Bp.parity 5; Bp.majority 6; Bp.equality 8; Bp.of_function 4 (fun x -> x.(0)) ]

(* ------------------------------------------------------------------ *)
(* Reduction                                                           *)
(* ------------------------------------------------------------------ *)

let test_reduce_preserves_function () =
  List.iter
    (fun (name, bp, n) ->
      let r = Bp.reduce bp in
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (name ^ " preserved")
            (Bp.eval bp x) (Bp.eval r x))
        (all_inputs n);
      check_bool (name ^ " not larger") true (Bp.size r <= Bp.size bp))
    [
      ("parity", Bp.parity 5, 5);
      ("majority", Bp.majority 5, 5);
      ("equality", Bp.equality 6, 6);
      ("tree", Bp.of_function 4 (fun x -> x.(0) && x.(3)), 4);
    ]

let test_reduce_shrinks_decision_tree () =
  (* The full decision tree of "x0 AND x3" has 15 nodes; reduction must
     collapse the untested middle variables. *)
  let bp = Bp.of_function 4 (fun x -> x.(0) && x.(3)) in
  let r = Bp.reduce bp in
  check_bool "shrinks a lot" true (Bp.size r <= 3);
  check "tree size" 15 (Bp.size bp)

let test_reduce_elides_redundant_tests () =
  (* A node whose branches agree disappears. *)
  let bp =
    Bp.create ~n_vars:2
      [|
        { Bp.var = 0; lo = 1; hi = 1 };
        { Bp.var = 1; lo = Bp.reject; hi = Bp.accept };
      |]
      ~start:0
  in
  let r = Bp.reduce bp in
  check "one node left" 1 (Bp.size r);
  List.iter
    (fun x -> Alcotest.(check bool) "same" (Bp.eval bp x) (Bp.eval r x))
    (all_inputs 2)

let test_reduce_constant_program () =
  let bp =
    Bp.create ~n_vars:1
      [| { Bp.var = 0; lo = Bp.accept; hi = Bp.accept } |]
      ~start:0
  in
  let r = Bp.reduce bp in
  check "empty" 0 (Bp.size r);
  check_bool "accepts" true (Bp.eval r [| false |])

let test_reduce_idempotent () =
  let bp = Bp.of_function 4 (fun x -> x.(1) <> x.(2)) in
  let once = Bp.reduce bp in
  let twice = Bp.reduce once in
  check "fixed point" (Bp.size once) (Bp.size twice)

(* ------------------------------------------------------------------ *)
(* Theorem 5.2 forward: unidirectional protocol -> branching program   *)
(* ------------------------------------------------------------------ *)

let test_of_uni_protocol_machine () =
  let m = Machine.parity 3 in
  let p = Machine.protocol_of_machine m in
  let bp =
    Bp.of_uni_protocol p ~start:(p.Protocol.space.Label.decode 0)
  in
  agrees "protocol-as-BP computes parity" bp
    (fun x -> popcount x mod 2 = 1)
    3;
  (* Polynomial size: n·|Σ| layers of width |Σ|. *)
  let card = p.Protocol.space.Label.card in
  check "layered size" (3 * card * card) (Bp.size bp)

let test_of_uni_protocol_or_collector () =
  (* A hand-rolled output-stabilizing protocol: the label accumulates the
     OR of the inputs seen so far. *)
  let g = Stateless_graph.Builders.ring_uni 4 in
  let p : (bool, bool) Protocol.t =
    {
      Protocol.name = "or-collector";
      graph = g;
      space = Label.bool;
      react =
        (fun _ x incoming ->
          let v = incoming.(0) || x in
          ([| v |], if v then 1 else 0));
    }
  in
  let bp = Bp.of_uni_protocol p ~start:false in
  agrees "or via sequential BP" bp (fun x -> Array.exists Fun.id x) 4

let test_of_uni_protocol_rejects_clique () =
  let p = Stateless_core.Clique_example.make 3 in
  let p_bool : (bool, bool) Protocol.t =
    { p with Protocol.react = (fun i _ incoming -> p.Protocol.react i () incoming) }
  in
  Alcotest.check_raises "clique rejected"
    (Invalid_argument "Bp.of_uni_protocol: not a unidirectional ring")
    (fun () -> ignore (Bp.of_uni_protocol p_bool ~start:false))

(* ------------------------------------------------------------------ *)
(* Theorem 5.2 reverse: branching program -> ring protocol             *)
(* ------------------------------------------------------------------ *)

let ring_agrees name bp =
  let p = Bp.protocol_of_bp bp in
  let n = bp.Bp.n_vars in
  let bound = Bp.convergence_bound bp in
  let state = Random.State.make [| 23 |] in
  let card = p.Protocol.space.Label.card in
  List.iter
    (fun x ->
      let labels =
        Array.init (Protocol.num_edges p) (fun _ ->
            p.Protocol.space.Label.decode (Random.State.int state card))
      in
      let init = Protocol.config_of_labels p labels in
      match
        Engine.outputs_after_convergence p ~input:x ~init
          ~schedule:(Schedule.synchronous n) ~max_steps:(2 * bound)
      with
      | Some outs ->
          let expect = if Bp.eval bp x then 1 else 0 in
          Array.iter (fun y -> check (name ^ " output") expect y) outs
      | None -> Alcotest.fail (name ^ ": did not converge"))
    (all_inputs n)

let test_parity_to_ring () = ring_agrees "parity" (Bp.parity 4)
let test_equality_to_ring () = ring_agrees "equality" (Bp.equality 4)
let test_majority_to_ring () = ring_agrees "majority" (Bp.majority 3)

let test_roundtrip_bp_protocol_bp () =
  (* BP -> protocol -> BP preserves the function. *)
  let bp = Bp.parity 3 in
  let p = Bp.protocol_of_bp bp in
  let bp' = Bp.of_uni_protocol p ~start:(p.Protocol.space.Label.decode 0) in
  List.iter
    (fun x ->
      Alcotest.(check bool) "roundtrip" (Bp.eval bp x) (Bp.eval bp' x))
    (all_inputs 3)

let prop_random_dfa_roundtrip =
  (* Random 3-state DFA -> BP -> reduce -> ring protocol: the end-to-end
     Theorem 5.2 pipeline preserves the language on every input. *)
  QCheck.Test.make ~count:15 ~name:"random DFA through the full pipeline"
    (QCheck.make QCheck.Gen.(pair (int_bound 100_000) (int_bound 15)))
    (fun (spec, code) ->
      let states = 3 in
      let delta s b =
        (* Derive a transition table from the spec integer. *)
        (spec / ((if b then 9 else 1) * int_of_float (3. ** float_of_int s)))
        mod states
      in
      let accepting s = spec mod (s + 2) = 0 in
      let n = 4 in
      let bp = Bp.reduce (Bp.of_dfa ~states ~start:0 ~accepting ~delta n) in
      let x = Array.init n (fun i -> code land (1 lsl i) <> 0) in
      let dfa_run =
        let s = ref 0 in
        Array.iter (fun b -> s := delta !s b) x;
        accepting !s
      in
      if Bp.eval bp x <> dfa_run then false
      else begin
        let p = Bp.protocol_of_bp bp in
        let init =
          Protocol.uniform_config p (p.Protocol.space.Label.decode 0)
        in
        match
          Engine.outputs_after_convergence p ~input:x ~init
            ~schedule:(Schedule.synchronous n)
            ~max_steps:(2 * Bp.convergence_bound bp)
        with
        | Some outs -> Array.for_all (fun y -> (y = 1) = dfa_run) outs
        | None -> false
      end)

let prop_threshold_bp =
  QCheck.Test.make ~count:100 ~name:"threshold BP matches popcount"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 8) (int_range 0 9) (int_bound 255)))
    (fun (n, k, code) ->
      let x = Array.init n (fun i -> code land (1 lsl i) <> 0) in
      Bp.eval (Bp.threshold n k) x = (popcount x >= k))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_threshold_bp; prop_random_dfa_roundtrip ]

let () =
  Alcotest.run "stateless_bp"
    [
      ( "programs",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "sink programs" `Quick test_sink_programs;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "of_dfa" `Quick test_of_dfa;
          Alcotest.test_case "of_function" `Quick test_of_function;
          Alcotest.test_case "length <= size" `Quick test_length_le_size;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "preserves function" `Quick
            test_reduce_preserves_function;
          Alcotest.test_case "shrinks decision tree" `Quick
            test_reduce_shrinks_decision_tree;
          Alcotest.test_case "elides redundant tests" `Quick
            test_reduce_elides_redundant_tests;
          Alcotest.test_case "constant program" `Quick
            test_reduce_constant_program;
          Alcotest.test_case "idempotent" `Quick test_reduce_idempotent;
        ] );
      ( "thm-5.2-forward",
        [
          Alcotest.test_case "machine protocol as BP" `Slow
            test_of_uni_protocol_machine;
          Alcotest.test_case "or-collector as BP" `Quick
            test_of_uni_protocol_or_collector;
          Alcotest.test_case "rejects non-ring" `Quick
            test_of_uni_protocol_rejects_clique;
        ] );
      ( "thm-5.2-reverse",
        [
          Alcotest.test_case "parity to ring" `Slow test_parity_to_ring;
          Alcotest.test_case "equality to ring" `Slow test_equality_to_ring;
          Alcotest.test_case "majority to ring" `Slow test_majority_to_ring;
          Alcotest.test_case "roundtrip" `Slow test_roundtrip_bp_protocol_bp;
        ] );
      ("properties", qcheck_tests);
    ]
