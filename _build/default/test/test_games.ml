module Best_response = Stateless_games.Best_response
module Spp = Stateless_games.Spp
module Contagion = Stateless_games.Contagion
module Congestion = Stateless_games.Congestion
module Feedback = Stateless_games.Feedback
module Checker = Stateless_checker.Checker
module Builders = Stateless_graph.Builders
open Stateless_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Best-response dynamics                                              *)
(* ------------------------------------------------------------------ *)

let test_equilibria_matching_pennies () =
  check "no pure equilibrium" 0
    (List.length (Best_response.equilibria (Best_response.matching_pennies ())))

let test_equilibria_coordination () =
  let eqs = Best_response.equilibria (Best_response.coordination 4) in
  check "two equilibria" 2 (List.length eqs)

let test_equilibria_prisoners () =
  match Best_response.equilibria (Best_response.prisoners_dilemma ()) with
  | [ eq ] -> Alcotest.(check (array int)) "defect-defect" [| 1; 1 |] eq
  | _ -> Alcotest.fail "unique equilibrium expected"

let test_equilibria_are_stable_labelings () =
  (* Pure Nash equilibria coincide with the protocol's stable labelings. *)
  let game = Best_response.coordination 3 in
  let p = Best_response.protocol game () in
  check "stable labelings = equilibria" 2
    (Stability.count_stable_labelings p ~input:(Best_response.input game))

let test_matching_pennies_oscillates () =
  let game = Best_response.matching_pennies () in
  let p = Best_response.protocol game () in
  let init = Protocol.uniform_config p 0 in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.synchronous 2) ~max_steps:100
  with
  | Engine.Oscillating _ -> ()
  | _ -> Alcotest.fail "no equilibrium: dynamics must cycle"

let test_prisoners_converges_everywhere () =
  let game = Best_response.prisoners_dilemma () in
  let p = Best_response.protocol game () in
  match
    Checker.check_label p ~input:(Best_response.input game) ~r:3
      ~max_states:100_000
  with
  | Checker.Stabilizing -> ()
  | _ -> Alcotest.fail "dominant strategies converge under any schedule"

let test_coordination_thm31 () =
  (* Two equilibria => not (n-1)-stabilizing (Theorem 3.1), decided by the
     exhaustive checker on K_3. *)
  let game = Best_response.coordination 3 in
  let p = Best_response.protocol game () in
  let input = Best_response.input game in
  check_bool "two stable labelings" true
    (Stability.has_multiple_stable_labelings p ~input);
  match Checker.check_label p ~input ~r:2 ~max_states:2_000_000 with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "Theorem 3.1 violated"
  | Checker.Too_large _ -> Alcotest.fail "budget"

(* ------------------------------------------------------------------ *)
(* Stable Paths Problem / BGP                                          *)
(* ------------------------------------------------------------------ *)

let test_solutions_counts () =
  check "good gadget" 1 (List.length (Spp.solutions (Spp.good_gadget ())));
  check "disagree" 2 (List.length (Spp.solutions (Spp.disagree ())));
  check "bad gadget" 0 (List.length (Spp.solutions (Spp.bad_gadget ())))

let test_good_gadget_converges () =
  let spp = Spp.good_gadget () in
  let p = Spp.protocol spp in
  let init = Protocol.uniform_config p [] in
  match
    Engine.run_until_stable p ~input:(Spp.input spp) ~init
      ~schedule:(Schedule.synchronous spp.Spp.n) ~max_steps:500
  with
  | Engine.Stabilized { config; _ } ->
      (* Node 1 must have won its preferred path through 2. *)
      let g = p.Protocol.graph in
      let e = (Stateless_graph.Digraph.out_edges g 1).(0) in
      Alcotest.(check (list int)) "1's route" [ 1; 2; 0 ]
        config.Protocol.labels.(e)
  | _ -> Alcotest.fail "good gadget should converge"

let test_good_gadget_converges_round_robin () =
  let spp = Spp.good_gadget () in
  let p = Spp.protocol spp in
  let init = Protocol.uniform_config p [] in
  match
    Engine.run_until_stable p ~input:(Spp.input spp) ~init
      ~schedule:(Schedule.round_robin spp.Spp.n) ~max_steps:1000
  with
  | Engine.Stabilized _ -> ()
  | _ -> Alcotest.fail "good gadget under round robin"

let test_bad_gadget_oscillates () =
  let spp = Spp.bad_gadget () in
  let p = Spp.protocol spp in
  let init = Protocol.uniform_config p [] in
  match
    Engine.run_until_stable p ~input:(Spp.input spp) ~init
      ~schedule:(Schedule.synchronous spp.Spp.n) ~max_steps:2000
  with
  | Engine.Oscillating _ -> ()
  | _ -> Alcotest.fail "bad gadget must flap"

let test_disagree_two_stable_labelings () =
  let spp = Spp.disagree () in
  let p = Spp.protocol spp in
  check "stable labelings" 2
    (Stability.count_stable_labelings p ~input:(Spp.input spp))

let test_disagree_not_2_stabilizing () =
  (* n = 3: Theorem 3.1 says DISAGREE cannot be label 2-stabilizing; the
     checker finds the route-flapping schedule. *)
  let spp = Spp.disagree () in
  let p = Spp.protocol spp in
  let input = Spp.input spp in
  match Checker.check_label p ~input ~r:2 ~max_states:3_000_000 with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "DISAGREE must flap at r = 2"
  | Checker.Too_large { needed } ->
      Alcotest.fail (Printf.sprintf "budget: %d states" needed)

let test_disagree_oscillates_synchronously () =
  (* Even the synchronous schedule flaps DISAGREE: both nodes upgrade
     simultaneously, then both fall back, forever — the classic
     simultaneous-update BGP divergence, found exhaustively. *)
  let spp = Spp.disagree () in
  let p = Spp.protocol spp in
  let input = Spp.input spp in
  match Checker.check_label p ~input ~r:1 ~max_states:3_000_000 with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | Checker.Stabilizing -> Alcotest.fail "synchronous DISAGREE flaps"
  | Checker.Too_large _ -> Alcotest.fail "budget"

let test_random_instances_well_formed () =
  for seed = 1 to 15 do
    let spp = Spp.random_instance ~seed ~n:5 ~degree:3 ~paths_per_node:2 in
    check "n" 5 spp.Spp.n;
    check_bool "connected" true
      (Stateless_graph.Algorithms.is_strongly_connected spp.Spp.graph);
    (* Every permitted path is a valid loop-free route to 0. *)
    Array.iteri
      (fun v paths ->
        if v > 0 then begin
          check_bool "has a route" true (paths <> []);
          List.iter
            (fun path ->
              check_bool "starts at node" true (List.hd path = v);
              check_bool "ends at dest" true
                (List.nth path (List.length path - 1) = 0);
              check_bool "loop free" true
                (List.length (List.sort_uniq compare path)
                = List.length path))
            paths
        end)
      spp.Spp.permitted;
    (* The protocol built from it is runnable. *)
    let p = Spp.protocol spp in
    ignore
      (Engine.run p ~input:(Spp.input spp)
         ~init:(Protocol.uniform_config p [])
         ~schedule:(Schedule.synchronous 5) ~steps:20)
  done

let test_random_instance_deterministic () =
  let a = Spp.random_instance ~seed:3 ~n:5 ~degree:3 ~paths_per_node:2 in
  let b = Spp.random_instance ~seed:3 ~n:5 ~degree:3 ~paths_per_node:2 in
  check_bool "same permitted paths" true (a.Spp.permitted = b.Spp.permitted)

let test_spp_validation () =
  Alcotest.check_raises "path must start at node"
    (Invalid_argument "Spp: path must start at its node") (fun () ->
      ignore (Spp.create ~links:[ (0, 1) ] [| []; [ [ 0; 1 ] ] |]));
  Alcotest.check_raises "path must follow links"
    (Invalid_argument "Spp: path does not follow links") (fun () ->
      ignore (Spp.create ~links:[ (0, 1) ] [| []; [ [ 1; 2; 0 ] ]; [] |]))

(* ------------------------------------------------------------------ *)
(* Contagion                                                           *)
(* ------------------------------------------------------------------ *)

let test_contagion_full_adoption () =
  let g = Builders.grid 3 3 in
  let game = Contagion.make g ~threshold:0.5 in
  let p = Best_response.protocol game () in
  let init = Contagion.seeded_config p [ 0; 1; 3; 4 ] in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.synchronous 9) ~max_steps:200
  with
  | Engine.Stabilized { config; _ } ->
      check "everyone adopts" 9 (List.length (Contagion.adopters p config))
  | _ -> Alcotest.fail "monotone cascade should converge"

let test_contagion_no_seeds_no_adoption () =
  let g = Builders.ring_bi 6 in
  let game = Contagion.make g ~threshold:0.5 in
  let p = Best_response.protocol game () in
  let init = Contagion.seeded_config p [] in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.synchronous 6) ~max_steps:100
  with
  | Engine.Stabilized { config; _ } ->
      check "no adoption" 0 (List.length (Contagion.adopters p config))
  | _ -> Alcotest.fail "empty seeding is a fixed point"

let test_contagion_high_threshold_stalls () =
  (* With a strict-majority threshold on the ring a single seed retracts. *)
  let g = Builders.ring_bi 6 in
  let game = Contagion.make g ~threshold:0.9 in
  let p = Best_response.protocol game () in
  let init = Contagion.seeded_config p [ 0 ] in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.synchronous 6) ~max_steps:100
  with
  | Engine.Stabilized { config; _ } ->
      check "seed retracts" 0 (List.length (Contagion.adopters p config))
  | _ -> Alcotest.fail "should converge"

let test_contagion_two_equilibria () =
  let g = Builders.ring_bi 4 in
  let game = Contagion.make g ~threshold:0.5 in
  let p = Best_response.protocol game () in
  check_bool "two stable labelings" true
    (Stability.has_multiple_stable_labelings p
       ~input:(Best_response.input game))

(* ------------------------------------------------------------------ *)
(* Congestion control                                                  *)
(* ------------------------------------------------------------------ *)

let test_congestion_equilibria_partition_capacity () =
  (* Two flows, capacity 4: the equilibria are exactly the five exact
     partitions of the capacity. *)
  let game = Congestion.make ~flows:2 ~capacity:4 ~max_rate:4 in
  let eqs = Congestion.equilibria game in
  check "count" 5 (List.length eqs);
  List.iter
    (fun eq -> check "exact partition" 4 (Array.fold_left ( + ) 0 eq))
    eqs

let test_congestion_synchronous_oscillates () =
  (* The classic all-or-nothing rate oscillation under simultaneous
     updates. *)
  let game = Congestion.make ~flows:2 ~capacity:4 ~max_rate:4 in
  let p = Best_response.protocol game () in
  let init = Protocol.uniform_config p 0 in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.synchronous 2) ~max_steps:100
  with
  | Engine.Oscillating { period; _ } -> check "period" 2 period
  | _ -> Alcotest.fail "simultaneous rate updates must oscillate"

let test_congestion_round_robin_converges () =
  (* One-at-a-time updates settle: each flow grabs what is left. *)
  let game = Congestion.make ~flows:3 ~capacity:6 ~max_rate:6 in
  let p = Best_response.protocol game () in
  let init = Protocol.uniform_config p 0 in
  match
    Engine.run_until_stable p ~input:(Best_response.input game) ~init
      ~schedule:(Schedule.round_robin 3) ~max_steps:200
  with
  | Engine.Stabilized { config; _ } ->
      check "capacity fully used" 6 (Congestion.total_rate p config)
  | _ -> Alcotest.fail "round robin should converge"

let test_congestion_thm31_instability () =
  (* Many equilibria: not (n-1)-stabilizing; the checker finds rate
     flapping on a small instance. *)
  let game = Congestion.make ~flows:2 ~capacity:2 ~max_rate:2 in
  let p = Best_response.protocol game () in
  let input = Best_response.input game in
  check_bool "multiple equilibria" true
    (List.length (Congestion.equilibria game) >= 2);
  match Checker.check_label p ~input ~r:1 ~max_states:500_000 with
  | Checker.Oscillating w ->
      check_bool "witness replays" true (Checker.replay p ~input w)
  | _ -> Alcotest.fail "rate oscillation expected"

(* ------------------------------------------------------------------ *)
(* Feedback circuits                                                   *)
(* ------------------------------------------------------------------ *)

let test_ring_oscillator_no_stable_labeling () =
  let p = Feedback.ring_oscillator 3 in
  check "no stable labeling" 0
    (Stability.count_stable_labelings p ~input:(Array.make 3 ()))

let test_ring_oscillator_oscillates () =
  let p = Feedback.ring_oscillator 5 in
  let init = Protocol.uniform_config p false in
  match
    Engine.run_until_stable p ~input:(Array.make 5 ()) ~init
      ~schedule:(Schedule.synchronous 5) ~max_steps:200
  with
  | Engine.Oscillating _ -> ()
  | _ -> Alcotest.fail "odd inverter ring oscillates"

let test_even_inverter_ring_has_stable_labelings () =
  let p = Feedback.ring_oscillator 4 in
  check_bool "even ring has stable labelings" true
    (Stability.count_stable_labelings p ~input:(Array.make 4 ()) > 0)

let test_nor_latch_metastability () =
  let p = Feedback.nor_latch () in
  (* R = S = 0: two stable labelings; Theorem 3.1 at n = 2 means not even
     1-stabilizing — the checker exhibits synchronous metastability. *)
  check "holds either bit" 2
    (Stability.count_stable_labelings p ~input:[| false; false |]);
  (match
     Checker.check_label p ~input:[| false; false |] ~r:1 ~max_states:100_000
   with
  | Checker.Oscillating _ -> ()
  | _ -> Alcotest.fail "latch metastability expected");
  (* R = 1: the latch is forced; unique stable labeling and convergence. *)
  check "forced" 1
    (Stability.count_stable_labelings p ~input:[| true; false |]);
  match
    Checker.check_label p ~input:[| true; false |] ~r:2 ~max_states:100_000
  with
  | Checker.Stabilizing -> ()
  | _ -> Alcotest.fail "forced latch converges"

let prop_contagion_monotone_under_zero_threshold_seeds =
  QCheck.Test.make ~count:20
    ~name:"threshold 1.0 cascade only shrinks"
    (QCheck.make QCheck.Gen.(int_bound 63))
    (fun code ->
      let g = Builders.ring_bi 6 in
      let game = Contagion.make g ~threshold:1.0 in
      let p = Best_response.protocol game () in
      let seeds =
        List.filter (fun i -> code land (1 lsl i) <> 0) (List.init 6 Fun.id)
      in
      let init = Contagion.seeded_config p seeds in
      match
        Engine.run_until_stable p ~input:(Best_response.input game) ~init
          ~schedule:(Schedule.synchronous 6) ~max_steps:100
      with
      | Engine.Stabilized { config; _ } ->
          List.for_all
            (fun a -> List.mem a seeds)
            (Contagion.adopters p config)
      | Engine.Oscillating _ -> true (* bipartite 2-cycles are possible *)
      | Engine.Exhausted _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_contagion_monotone_under_zero_threshold_seeds ]

let () =
  Alcotest.run "stateless_games"
    [
      ( "best-response",
        [
          Alcotest.test_case "matching pennies equilibria" `Quick
            test_equilibria_matching_pennies;
          Alcotest.test_case "coordination equilibria" `Quick
            test_equilibria_coordination;
          Alcotest.test_case "prisoners equilibrium" `Quick
            test_equilibria_prisoners;
          Alcotest.test_case "equilibria = stable labelings" `Quick
            test_equilibria_are_stable_labelings;
          Alcotest.test_case "matching pennies oscillates" `Quick
            test_matching_pennies_oscillates;
          Alcotest.test_case "prisoners converges (checker)" `Quick
            test_prisoners_converges_everywhere;
          Alcotest.test_case "coordination: Theorem 3.1" `Slow
            test_coordination_thm31;
        ] );
      ( "spp",
        [
          Alcotest.test_case "solution counts" `Quick test_solutions_counts;
          Alcotest.test_case "good gadget converges" `Quick
            test_good_gadget_converges;
          Alcotest.test_case "good gadget round robin" `Quick
            test_good_gadget_converges_round_robin;
          Alcotest.test_case "bad gadget oscillates" `Quick
            test_bad_gadget_oscillates;
          Alcotest.test_case "disagree stable labelings" `Quick
            test_disagree_two_stable_labelings;
          Alcotest.test_case "disagree not 2-stabilizing" `Slow
            test_disagree_not_2_stabilizing;
          Alcotest.test_case "disagree flaps synchronously" `Slow
            test_disagree_oscillates_synchronously;
          Alcotest.test_case "validation" `Quick test_spp_validation;
          Alcotest.test_case "random instances well-formed" `Quick
            test_random_instances_well_formed;
          Alcotest.test_case "random instance deterministic" `Quick
            test_random_instance_deterministic;
        ] );
      ( "contagion",
        [
          Alcotest.test_case "full adoption" `Quick test_contagion_full_adoption;
          Alcotest.test_case "no seeds" `Quick test_contagion_no_seeds_no_adoption;
          Alcotest.test_case "high threshold stalls" `Quick
            test_contagion_high_threshold_stalls;
          Alcotest.test_case "two equilibria" `Quick
            test_contagion_two_equilibria;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "equilibria partition capacity" `Quick
            test_congestion_equilibria_partition_capacity;
          Alcotest.test_case "synchronous oscillates" `Quick
            test_congestion_synchronous_oscillates;
          Alcotest.test_case "round robin converges" `Quick
            test_congestion_round_robin_converges;
          Alcotest.test_case "Theorem 3.1 instability" `Quick
            test_congestion_thm31_instability;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "ring oscillator no stable labeling" `Quick
            test_ring_oscillator_no_stable_labeling;
          Alcotest.test_case "ring oscillator oscillates" `Quick
            test_ring_oscillator_oscillates;
          Alcotest.test_case "even inverter ring" `Quick
            test_even_inverter_ring_has_stable_labelings;
          Alcotest.test_case "nor latch metastability" `Quick
            test_nor_latch_metastability;
        ] );
      ("properties", qcheck_tests);
    ]
