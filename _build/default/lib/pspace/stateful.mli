(** Stateful clique protocols — the intermediate model of Theorem 4.2.

    The proof of PSPACE-completeness goes through protocols on the clique
    [K_n] whose reaction functions may read the node's {e own} outgoing
    label in addition to everyone else's (i.e., one register of state).
    Every node sends the same label to all neighbours, so a configuration is
    simply one label per node.

    This module provides the model, a mini-engine with the same outcome
    analysis as the stateless engine, the String-Oscillation reduction of
    Theorem B.11, and exhaustive synchronous stabilization checking. *)

type 'l t = {
  name : string;
  n : int;
  space : 'l Stateless_core.Label.t;
  react : int -> 'l array -> 'l;
      (** [react i config] reads the whole configuration — including
          [config.(i)], the node's own label (that is what makes it
          stateful) — and returns [i]'s next label. *)
}

(** [step t config ~active] applies the scheduled reactions atomically. *)
val step : 'l t -> 'l array -> active:int list -> 'l array

(** [is_stable t config]. *)
val is_stable : 'l t -> 'l array -> bool

(** [run_until_stable t ~init ~schedule ~max_steps] mirrors
    [Engine.run_until_stable]. *)
val run_until_stable :
  'l t ->
  init:'l array ->
  schedule:Stateless_core.Schedule.t ->
  max_steps:int ->
  [ `Stabilized of int | `Oscillating | `Exhausted ]

(** [synchronous_stabilizing t] — exhaustively checks every initial
    configuration under the synchronous schedule.
    @raise Invalid_argument if [|Σ|^n] is too large. *)
val synchronous_stabilizing : 'l t -> bool

(** {2 Theorem B.11: String-Oscillation → stateful label stabilization} *)

(** [of_instance inst] builds the stateful protocol on [K_{m+1}] with
    Σ = [m] × (Γ ∪ halt): nodes [0..m-1] hold the string symbols, node [m]
    is the controller that applies [g] and walks the rotating index. The
    protocol fails to label-stabilize (for any r) iff the instance
    oscillates. *)
val of_instance : String_oscillation.t -> (int * int option) t

(** The initial configuration of Claim B.12 that witnesses oscillation for
    an oscillating start string [s]: node [i < m] holds [(0, Γ s_i)], the
    controller holds [(1, g s)] — adjusted to this implementation's
    indexing. Returns [None] when [g s] halts immediately. *)
val oscillation_seed :
  String_oscillation.t -> int array -> (int * int option) array option
