(** The String-Oscillation problem — the PSPACE-complete source problem of
    Theorem 4.2.

    An instance is a function [g : Γ^m → Γ ∪ {halt}]. The procedure holds a
    string [T ∈ Γ^m] and a rotating index [i]: while [g T ≠ halt], it sets
    [T_i ← g T] and advances [i] cyclically. The question: does some initial
    string make the procedure run forever?

    For the reduction experiments we decide the question exactly on small
    instances by running the procedure with cycle detection: the procedure
    state [(T, i)] lives in a space of size [m·|Γ|^m], so it either halts or
    revisits a state within that many steps. *)

type t = {
  alphabet : int;  (** |Γ|; symbols are [0 .. alphabet-1]. *)
  m : int;
  g : int array -> int option;  (** [None] means halt. *)
}

(** [state_space t] = [m · |Γ|^m], the cycle-detection bound. *)
val state_space : t -> int

(** [oscillates_from t start] — runs the procedure from string [start]. *)
val oscillates_from : t -> int array -> bool

(** [oscillating_start t] — searches all [|Γ|^m] initial strings. *)
val oscillating_start : t -> int array option

(** [oscillates t]. *)
val oscillates : t -> bool

(** {2 Example instances} *)

(** Never halts: [g] always rewrites symbol 0. Oscillates from every
    start. *)
val always_loop : m:int -> t

(** Halts immediately on every string. *)
val always_halt : m:int -> t

(** Oscillates exactly from the all-zeros string (binary alphabet): halts
    whenever a 1 is present, rewrites 0 over 0 otherwise. *)
val zero_loop : m:int -> t

(** A pseudorandom table-based instance (binary alphabet), for stress
    tests. *)
val random : m:int -> seed:int -> t
