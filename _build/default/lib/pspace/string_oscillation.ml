type t = { alphabet : int; m : int; g : int array -> int option }

let ipow base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let state_space t = t.m * ipow t.alphabet t.m

let oscillates_from t start =
  if Array.length start <> t.m then
    invalid_arg "String_oscillation: wrong string length";
  let bound = state_space t in
  let str = Array.copy start in
  let i = ref 0 in
  let rec loop fuel =
    if fuel = 0 then true (* state space exhausted: a state repeated *)
    else
      match t.g str with
      | None -> false
      | Some v ->
          str.(!i) <- v;
          i := (!i + 1) mod t.m;
          loop (fuel - 1)
  in
  loop (bound + 1)

let all_strings t =
  let total = ipow t.alphabet t.m in
  List.init total (fun code ->
      Array.init t.m (fun k ->
          code / ipow t.alphabet (t.m - 1 - k) mod t.alphabet))

let oscillating_start t =
  List.find_opt (fun s -> oscillates_from t s) (all_strings t)

let oscillates t = oscillating_start t <> None

let always_loop ~m = { alphabet = 2; m; g = (fun _ -> Some 0) }
let always_halt ~m = { alphabet = 2; m; g = (fun _ -> None) }

let zero_loop ~m =
  {
    alphabet = 2;
    m;
    g = (fun s -> if Array.exists (fun v -> v <> 0) s then None else Some 0);
  }

let random ~m ~seed =
  let table = Hashtbl.create 64 in
  let state = Random.State.make [| seed |] in
  let g s =
    let key = Array.to_list s in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v =
          match Random.State.int state 3 with
          | 0 -> None
          | k -> Some (k - 1)
        in
        Hashtbl.replace table key v;
        v
  in
  { alphabet = 2; m; g }
