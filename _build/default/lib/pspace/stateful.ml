module Label = Stateless_core.Label
module Schedule = Stateless_core.Schedule

type 'l t = {
  name : string;
  n : int;
  space : 'l Label.t;
  react : int -> 'l array -> 'l;
}

let step t config ~active =
  let next = Array.copy config in
  List.iter (fun i -> next.(i) <- t.react i config) active;
  next

let is_stable t config =
  let rec check i =
    if i >= t.n then true
    else if t.space.Label.encode (t.react i config)
            = t.space.Label.encode config.(i)
    then check (i + 1)
    else false
  in
  check 0

let key_of t config = Array.to_list (Array.map t.space.Label.encode config)

let run_until_stable t ~init ~schedule ~max_steps =
  let seen = Hashtbl.create 64 in
  let period_opt = schedule.Schedule.period in
  let rec loop step_idx config last_change =
    if is_stable t config then `Stabilized step_idx
    else if step_idx >= max_steps then `Exhausted
    else begin
      let verdict = ref None in
      (match period_opt with
      | Some period when step_idx mod period = 0 -> (
          let key = key_of t config in
          match Hashtbl.find_opt seen key with
          | Some t0 ->
              if last_change > t0 then verdict := Some `Oscillating
              else verdict := Some (`Stabilized last_change)
          | None -> Hashtbl.replace seen key step_idx)
      | _ -> ());
      match !verdict with
      | Some v -> v
      | None ->
          let next =
            step t config ~active:(schedule.Schedule.active step_idx)
          in
          let changed = key_of t next <> key_of t config in
          loop (step_idx + 1) next
            (if changed then step_idx + 1 else last_change)
    end
  in
  loop 0 init 0

let synchronous_stabilizing t =
  let card = t.space.Label.card in
  let total =
    let rec pow acc k =
      if k = 0 then acc
      else if acc > 20_000_000 / card then
        invalid_arg "Stateful.synchronous_stabilizing: space too large"
      else pow (acc * card) (k - 1)
    in
    pow 1 t.n
  in
  let schedule = Schedule.synchronous t.n in
  let ok = ref true in
  let code = ref 0 in
  while !ok && !code < total do
    let config =
      Array.init t.n (fun i ->
          let rec digit k rest = if k = 0 then rest mod card
            else digit (k - 1) (rest / card) in
          t.space.Label.decode (digit (t.n - 1 - i) !code))
    in
    (match
       run_until_stable t ~init:config ~schedule ~max_steps:(4 * total * t.n)
     with
    | `Stabilized _ -> ()
    | `Oscillating | `Exhausted -> ok := false);
    incr code
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Theorem B.11                                                        *)
(* ------------------------------------------------------------------ *)

let of_instance (inst : String_oscillation.t) =
  let m = inst.String_oscillation.m in
  let gamma = inst.String_oscillation.alphabet in
  let n = m + 1 in
  let space = Label.pair (Label.int m) (Label.option (Label.int gamma)) in
  let symbol_of (_, a) = a in
  let react i (config : (int * int option) array) =
    let j, gamma_sym = config.(m) in
    if i < m then
      match gamma_sym with
      | None -> (0, None)
      | Some v -> if j = i then (0, Some v) else (0, snd config.(i))
    else
      (* The controller: wait for node j to have adopted γ, then write the
         next symbol at the next index. *)
      match gamma_sym with
      | None -> (0, None)
      | Some v ->
          let symbols = Array.init m (fun k -> symbol_of config.(k)) in
          if Array.exists (fun s -> s = None) symbols then (0, None)
          else
            let str = Array.map Option.get symbols in
            if symbols.(j) = Some v then
              ((j + 1) mod m, inst.String_oscillation.g str)
            else (j, Some v)
  in
  { name = "string-oscillation"; n; space; react }

let oscillation_seed (inst : String_oscillation.t) start =
  match inst.String_oscillation.g start with
  | None -> None
  | Some v ->
      let m = inst.String_oscillation.m in
      Some
        (Array.init (m + 1) (fun i ->
             if i < m then (0, Some start.(i)) else (0, Some v)))
